// Quickstart: compile a guarded firmware with GlitchResistor, run it
// cleanly, then fire a single instruction-skip glitch at every cycle of
// the guard window and watch the defenses catch the attack.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"glitchlab/internal/core"
	"glitchlab/internal/passes"
	"glitchlab/internal/pipeline"
)

// firmware guards a privileged operation behind a comparison against a
// constant — the pattern the paper's attacks bypass by skipping the branch.
const firmware = `
enum permission { DENIED, GRANTED };

volatile unsigned int request;

unsigned int authorize(unsigned int req) {
	if (req == 0x42) {
		return GRANTED;
	}
	return DENIED;
}

void main(void) {
	request = 7;           // not the magic request
	trigger();
	if (authorize(request) == GRANTED) {
		success();         // the protected operation
	}
	halt();
}
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	for _, cfg := range []passes.Config{passes.None(), passes.All()} {
		res, err := core.Compile(firmware, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("=== defenses: %s ===\n", cfg.Name())
		fmt.Printf("instrumented: %s\n", res.Report.String())
		fmt.Printf("image: text=%d data=%d bss=%d bytes\n",
			res.Image.Sizes.Text, res.Image.Sizes.Data, res.Image.Sizes.BSS)

		clean, err := core.RunClean(res.Image, 10_000_000)
		if err != nil {
			return err
		}
		fmt.Printf("clean run: reached %q after %d cycles\n", clean.Tag, clean.Cycles)

		// Attack: skip one issue slot at every cycle offset after the
		// trigger, one run per offset (an idealized single glitch with a
		// perfect trigger, as in the paper's Section V).
		m, err := core.NewMachine(res.Image)
		if err != nil {
			return err
		}
		var bypassed, detected, unaffected int
		for cycle := 0; cycle < 200; cycle++ {
			m.Board.Reset()
			c := cycle
			m.Glitch = func(rel, window int) (pipeline.Event, bool) {
				if rel == c {
					return pipeline.Event{Kind: pipeline.EventSkip}, true
				}
				return pipeline.Event{}, false
			}
			r := m.Run(10_000_000)
			switch r.Tag {
			case "success":
				bypassed++
			case passes.DetectFunc:
				detected++
			default:
				unaffected++
			}
		}
		fmt.Printf("200 single-skip attacks: %d bypassed the guard, %d detected, %d had no effect\n\n",
			bypassed, detected, unaffected)
	}
	fmt.Println("The unprotected build is bypassed by skipping its guard branch;")
	fmt.Println("the protected build detects those same attacks instead.")
	return nil
}
