// Secureboot: the paper's motivating scenario. A boot loader verifies a
// firmware signature before jumping to it; glitching the verification is
// one of the only ways to compromise it (paper Section II-A). This example
// first triages each build statically with glitchlint, then attacks an
// unprotected and a GlitchResistor-protected boot check with the full
// deterministic clock-glitch parameter scan from Section V and compares
// success and detection rates.
//
//	go run ./examples/secureboot
package main

import (
	"fmt"
	"log"

	"glitchlab/internal/analyze"
	"glitchlab/internal/core"
	"glitchlab/internal/glitcher"
	"glitchlab/internal/passes"
	"glitchlab/internal/pipeline"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	model := glitcher.NewModel(core.DefaultSeed)
	sens := core.SecureBootSensitive
	lintOpts := analyze.Options{Sensitive: sens}
	for _, cfg := range []passes.Config{
		passes.None(), passes.AllButDelay(sens...), passes.All(sens...),
	} {
		res, audit, err := core.CompileAudited(core.SecureBootSource, cfg, lintOpts)
		if err != nil {
			return err
		}
		if err := audit.Err(); err != nil {
			return err
		}
		m, err := core.NewMachine(res.Image)
		if err != nil {
			return err
		}
		// Sanity: without a glitch the loader must refuse to boot.
		clean, err := core.RunClean(res.Image, 10_000_000)
		if err != nil {
			return err
		}
		if clean.Tag != "halt" {
			return fmt.Errorf("%s: clean run booted?! (%v/%q)",
				cfg.Name(), clean.Reason, clean.Tag)
		}

		// Static triage: what the campaign below will confirm dynamically.
		fmt.Printf("%-10s  glitchlint: %s\n", cfg.Name(), audit.Post.Summary())

		// Attack: a 10-cycle glitch burst at each of 11 window starts,
		// across the full ChipWhisperer-style parameter grid.
		var total, booted, detected uint64
		for start := 0; start <= 100; start += 10 {
			s := start
			glitcher.Grid(func(p glitcher.Params) {
				total++
				any := false
				for rel := s; rel < s+10 && !any; rel++ {
					_, any = model.EventInContext(p, rel, 0, rel-s)
				}
				if !any {
					return
				}
				m.Board.Reset()
				m.Glitch = model.RangePlan(p, s, s+10)
				r := m.Run(m.Board.CPU.Cycles + 10_000_000)
				switch {
				case r.Reason == pipeline.StopHit && r.Tag == "success":
					booted++
				case r.Reason == pipeline.StopHit && r.Tag == passes.DetectFunc:
					detected++
				}
			})
		}
		fmt.Printf("%-10s  %7d attacks: unsigned image booted %4d times (%.4f%%), %5d detected\n",
			cfg.Name(), total, booted, 100*float64(booted)/float64(total), detected)
	}
	fmt.Println("\nThe checksum guard already compares against a large-Hamming-distance")
	fmt.Println("constant, so even the unprotected loader is hard to glitch — but its")
	fmt.Println("rare bypasses are silent. glitchlint flags every weak shape statically;")
	fmt.Println("the protected builds clear the findings and detect hundreds to")
	fmt.Println("thousands of attempts, turning a tuning campaign into an observable")
	fmt.Println("event the loader can react to (wipe keys, lock updates, back off).")
	return nil
}
