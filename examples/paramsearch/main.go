// Paramsearch: the paper's Section V-B glitch-parameter tuning. Starting
// from zero knowledge, the attacker scans the (width, offset) space with a
// coarse 10-cycle glitch, then narrows to a single clock cycle until a
// parameter set works 10 times out of 10 — the paper converged in under an
// hour against while(a) and in 16 minutes against the large-Hamming
// comparison.
//
//	go run ./examples/paramsearch
package main

import (
	"fmt"
	"log"

	"glitchlab/internal/core"
	"glitchlab/internal/glitcher"
	"glitchlab/internal/pipeline"
	"glitchlab/internal/search"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	model := glitcher.NewModel(core.DefaultSeed)
	for _, guard := range []glitcher.Guard{glitcher.GuardWhileA, glitcher.GuardWhileNeq} {
		s, err := search.New(model, guard)
		if err != nil {
			return err
		}
		res := s.Find()
		fmt.Println(res)
		if !res.Found {
			continue
		}
		// Demonstrate the tuned parameters: ten consecutive shots.
		tgt, err := glitcher.NewTarget(guard, guard.SingleLoopSource())
		if err != nil {
			return err
		}
		hits := 0
		for i := 0; i < 10; i++ {
			r := tgt.Attempt(model.Plan(res.Params, res.Cycle))
			if r.Reason == pipeline.StopHit {
				hits++
			}
		}
		fmt.Printf("  replay: %d/10 successful glitches with width=%d%% offset=%d%% cycle=%d\n\n",
			hits, res.Params.Width, res.Params.Offset, res.Cycle)
	}
	fmt.Println("Tuned parameters are perfectly repeatable with a perfect trigger —")
	fmt.Println("which is exactly the repeatability the random-delay defense destroys.")
	return nil
}
