// Enumhardening: constant diversification in isolation. A state machine's
// enum constants default to 0,1,2,... — one bit flip away from each other.
// GlitchResistor's ENUM rewriter replaces them with Reed-Solomon codes at
// minimum pairwise Hamming distance 8. This example shows the rewritten
// values (including the paper's own 0xE7D25763 / 0xD3B9AEC6 pair, which
// are exactly the codes for indices 1 and 2) and counts how many
// single-bit and double-bit flips turn one valid state into another.
//
//	go run ./examples/enumhardening
package main

import (
	"fmt"
	"log"
	"math/bits"

	"glitchlab/internal/minic"
	"glitchlab/internal/passes"
	"glitchlab/internal/rs"
)

const machine = `
enum state { IDLE, AUTHENTICATING, AUTHORIZED, LOCKED };
void main(void) { halt(); }
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func values(src string, rewrite bool) ([]string, []uint32, error) {
	prog, err := minic.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	chk, err := minic.Check(prog)
	if err != nil {
		return nil, nil, err
	}
	if rewrite {
		var rep passes.Report
		if err := passes.RewriteEnums(chk, &rep); err != nil {
			return nil, nil, err
		}
	}
	var names []string
	var vals []uint32
	for _, m := range chk.Prog.Enums[0].Members {
		names = append(names, m.Name)
		vals = append(vals, m.Value)
	}
	return names, vals, nil
}

// confusable counts ordered pairs (i, j) where flipping at most maxFlips
// bits of value i yields value j — i.e. faults that silently change one
// valid state into another.
func confusable(vals []uint32, maxFlips int) int {
	n := 0
	for i := range vals {
		for j := range vals {
			if i == j {
				continue
			}
			if bits.OnesCount32(vals[i]^vals[j]) <= maxFlips {
				n++
			}
		}
	}
	return n
}

func run() error {
	for _, rewrite := range []bool{false, true} {
		names, vals, err := values(machine, rewrite)
		if err != nil {
			return err
		}
		title := "C-default values"
		if rewrite {
			title = "Reed-Solomon diversified values"
		}
		fmt.Printf("=== %s ===\n", title)
		for i, name := range names {
			fmt.Printf("  %-16s = %#010x\n", name, vals[i])
		}
		fmt.Printf("  min pairwise Hamming distance: %d bits\n",
			rs.MinPairwiseDistance(vals))
		fmt.Printf("  state pairs confusable by 1 flipped bit:  %d\n",
			confusable(vals, 1))
		fmt.Printf("  state pairs confusable by 2 flipped bits: %d\n",
			confusable(vals, 2))
		fmt.Printf("  state pairs confusable by 4 flipped bits: %d\n\n",
			confusable(vals, 4))
	}
	fmt.Println("With default values, a single bit flip moves the machine between")
	fmt.Println("valid states (e.g. AUTHENTICATING -> AUTHORIZED). After the rewrite,")
	fmt.Println("no fault below 8 flipped bits can produce another valid state.")
	return nil
}
