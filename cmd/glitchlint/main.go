// Command glitchlint statically analyzes mini-C firmware for the
// glitchable code shapes the paper identifies (Sections II and VI):
// single-point-of-failure branches, low-Hamming-distance constants,
// fail-open defaults, unshadowed sensitive loads, unhardened loop exits,
// and branch encodings one bit flip away from a different control
// transfer. It is the static counterpart of the exhaustive emulation
// campaigns — triage before the glitcher runs.
//
// Usage:
//
//	glitchlint firmware.c                          # lint the unprotected build
//	glitchlint -sensitive uwTick firmware.c        # also check integrity coverage
//	glitchlint -defenses all -audit firmware.c     # verify the defenses fix what they own
//	glitchlint -json firmware.c                    # machine-readable findings
//	glitchlint -rules                              # print the rule catalog
//
// Corpus mode lints a whole directory tree of firmware units under the
// full defense matrix and aggregates one fleet report; with -cache,
// re-lints are incremental (only changed units recompile):
//
//	glitchlint -corpus fleet/ -sensitive state              # fleet lint
//	glitchlint -corpus fleet/ -cache lint.cache -workers 8  # warm, sharded
//	glitchlint -corpus fleet/ -json > fleet.json            # fleet-report JSON
//	glitchlint -corpus fleet/ -gen 200 -gen-seed 1          # (re)generate corpus
//
// Exit status: 0 clean, 1 usage or build error, 2 findings at or above
// -fail-on (or an -audit violation), 3 interrupted (corpus progress is
// flushed to the cache; rerunning resumes).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"glitchlab/internal/analyze"
	"glitchlab/internal/analyze/corpus"
	"glitchlab/internal/core"
	"glitchlab/internal/difftest"
	"glitchlab/internal/passes"
	"glitchlab/internal/report"
	"glitchlab/internal/runctl"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "glitchlint:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

func run() (int, error) {
	defenses := flag.String("defenses", "none",
		"defense configuration to build under before linting (see glitchresistor)")
	sensitive := flag.String("sensitive", "",
		"comma-separated globals whose loads must be integrity-verified")
	privileged := flag.String("privileged", "",
		"comma-separated privileged callees (default: success)")
	minHamming := flag.Int("min-hamming", 0,
		"minimum acceptable pairwise Hamming distance for constant sets (default 8)")
	disable := flag.String("disable", "",
		"comma-separated rule IDs or slugs to skip")
	failOn := flag.String("fail-on", "low",
		"exit nonzero when a finding is at or above this severity (info|low|medium|high|none)")
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	audit := flag.Bool("audit", false,
		"also fail when an enabled defense pass left a finding it owns")
	rules := flag.Bool("rules", false, "print the rule catalog and exit")
	corpusDir := flag.String("corpus", "",
		"lint every *.c unit under this directory instead of a single file")
	cachePath := flag.String("cache", "",
		"corpus mode: persist per-unit findings here; warm runs re-lint only changed units")
	workers := flag.Int("workers", 1,
		"corpus mode: shard units across this many workers (output is byte-identical)")
	configs := flag.String("configs", "matrix",
		"corpus mode: semicolon-separated defense configs to lint each unit under, or \"matrix\" for the paper's full matrix")
	genN := flag.Int("gen", 0,
		"corpus mode: write this many seeded mini-C units into -corpus and exit")
	genSeed := flag.Int64("gen-seed", 1, "corpus mode: base seed for -gen")
	flag.Parse()

	if *rules {
		printRules()
		return 0, nil
	}
	var threshold analyze.Severity
	if *failOn != "none" {
		var err error
		if threshold, err = analyze.ParseSeverity(*failOn); err != nil {
			return 1, err
		}
	}
	if *corpusDir != "" {
		return runCorpus(corpusOptions{
			dir: *corpusDir, cache: *cachePath, workers: *workers,
			configs: *configs, sensitive: splitList(*sensitive),
			privileged: splitList(*privileged), minHamming: *minHamming,
			disable: splitList(*disable), failOn: *failOn, threshold: threshold,
			jsonOut: *jsonOut, audit: *audit, genN: *genN, genSeed: *genSeed,
		})
	}
	if flag.NArg() != 1 {
		return 1, fmt.Errorf("usage: glitchlint [flags] <firmware.c>")
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return 1, err
	}
	cfg, err := passes.Parse(*defenses, splitList(*sensitive))
	if err != nil {
		return 1, err
	}
	opts := analyze.Options{
		Sensitive:  splitList(*sensitive),
		Privileged: splitList(*privileged),
		MinHamming: *minHamming,
		Disabled:   splitList(*disable),
	}
	_, auditRes, err := core.CompileAudited(string(src), cfg, opts)
	if err != nil {
		return 1, err
	}
	res := auditRes.Post

	if *jsonOut {
		data, err := res.JSON()
		if err != nil {
			return 1, err
		}
		fmt.Println(string(data))
	} else {
		fmt.Print(report.Findings(res))
	}

	code := 0
	if *failOn != "none" {
		for _, f := range res.Findings {
			if f.Severity >= threshold {
				code = 2
				break
			}
		}
	}
	if *audit {
		if err := auditRes.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "glitchlint: audit:", err)
			code = 2
		} else if !*jsonOut {
			fmt.Printf("audit: every enabled pass removed its findings (pre: %s)\n",
				auditRes.Pre.Summary())
		}
	}
	return code, nil
}

// corpusOptions carries the flag set of a corpus-mode invocation.
type corpusOptions struct {
	dir, cache, configs, failOn string
	sensitive, privileged       []string
	disable                     []string
	minHamming, workers         int
	threshold                   analyze.Severity
	jsonOut, audit              bool
	genN                        int
	genSeed                     int64
}

// runCorpus is glitchlint's fleet mode: generate, or walk + lint + report.
// The report goes to stdout; cache statistics go to stderr so -json output
// stays pure. SIGINT flushes completed units to the cache and exits 3.
func runCorpus(o corpusOptions) (int, error) {
	if o.genN > 0 {
		if err := difftest.WriteCorpus(o.dir, o.genN, o.genSeed); err != nil {
			return 1, err
		}
		fmt.Fprintf(os.Stderr, "glitchlint: corpus: wrote %d units (seed %d) to %s\n",
			o.genN, o.genSeed, o.dir)
		return 0, nil
	}
	cfgs, err := parseConfigs(o.configs, o.sensitive)
	if err != nil {
		return 1, err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := corpus.Lint(ctx, corpus.Options{
		Root:    o.dir,
		Configs: cfgs,
		Analyze: analyze.Options{
			Sensitive: o.sensitive, Privileged: o.privileged,
			MinHamming: o.minHamming, Disabled: o.disable,
		},
		Workers:   o.workers,
		CachePath: o.cache,
	})
	if res != nil {
		fmt.Fprintf(os.Stderr, "glitchlint: corpus: %s\n", res.Stats)
	}
	if err != nil {
		return runctl.ExitCode(err), err
	}
	rep := res.Report

	if o.jsonOut {
		data, err := rep.JSON()
		if err != nil {
			return 1, err
		}
		os.Stdout.Write(data)
	} else {
		fmt.Print(report.Corpus(rep))
	}

	code := 0
	if o.failOn != "none" {
		for sev, n := range rep.Totals.BySeverity {
			if s, err := analyze.ParseSeverity(sev); err == nil && s >= o.threshold && n > 0 {
				code = 2
			}
		}
	}
	if o.audit && rep.Totals.Unremoved > 0 {
		fmt.Fprintf(os.Stderr,
			"glitchlint: audit: %d findings survived a defense pass that owns them\n",
			rep.Totals.Unremoved)
		code = 2
	}
	return code, nil
}

// parseConfigs resolves the -configs spec: "matrix" defers to the paper's
// full defense matrix; otherwise each semicolon-separated segment is a
// -defenses spec (e.g. "none;branches,loops;all").
func parseConfigs(spec string, sensitive []string) ([]passes.Config, error) {
	if spec == "" || spec == "matrix" {
		return nil, nil // corpus.Options defaults to core.DefenseConfigs
	}
	var cfgs []passes.Config
	for _, seg := range strings.Split(spec, ";") {
		cfg, err := passes.Parse(seg, sensitive)
		if err != nil {
			return nil, fmt.Errorf("-configs %q: %w", seg, err)
		}
		cfgs = append(cfgs, cfg)
	}
	return cfgs, nil
}

func printRules() {
	fmt.Println("glitchlint rule catalog:")
	for _, r := range analyze.Rules() {
		m := r.Meta()
		scope := "IR"
		if m.NeedsImage {
			scope = "Thumb-16"
		}
		fixed := m.FixedBy
		if fixed == "" {
			fixed = "source change"
		}
		fmt.Printf("  %s %-26s %-7s %-8s fixed by: %-13s %s\n",
			m.ID, m.Slug, m.Severity, scope, fixed, m.Doc)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}
