// Command glitchlint statically analyzes mini-C firmware for the
// glitchable code shapes the paper identifies (Sections II and VI):
// single-point-of-failure branches, low-Hamming-distance constants,
// fail-open defaults, unshadowed sensitive loads, unhardened loop exits,
// and branch encodings one bit flip away from a different control
// transfer. It is the static counterpart of the exhaustive emulation
// campaigns — triage before the glitcher runs.
//
// Usage:
//
//	glitchlint firmware.c                          # lint the unprotected build
//	glitchlint -sensitive uwTick firmware.c        # also check integrity coverage
//	glitchlint -defenses all -audit firmware.c     # verify the defenses fix what they own
//	glitchlint -json firmware.c                    # machine-readable findings
//	glitchlint -rules                              # print the rule catalog
//
// Exit status: 0 clean, 1 usage or build error, 2 findings at or above
// -fail-on (or an -audit violation).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"glitchlab/internal/analyze"
	"glitchlab/internal/core"
	"glitchlab/internal/passes"
	"glitchlab/internal/report"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "glitchlint:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

func run() (int, error) {
	defenses := flag.String("defenses", "none",
		"defense configuration to build under before linting (see glitchresistor)")
	sensitive := flag.String("sensitive", "",
		"comma-separated globals whose loads must be integrity-verified")
	privileged := flag.String("privileged", "",
		"comma-separated privileged callees (default: success)")
	minHamming := flag.Int("min-hamming", 0,
		"minimum acceptable pairwise Hamming distance for constant sets (default 8)")
	disable := flag.String("disable", "",
		"comma-separated rule IDs or slugs to skip")
	failOn := flag.String("fail-on", "low",
		"exit nonzero when a finding is at or above this severity (info|low|medium|high|none)")
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	audit := flag.Bool("audit", false,
		"also fail when an enabled defense pass left a finding it owns")
	rules := flag.Bool("rules", false, "print the rule catalog and exit")
	flag.Parse()

	if *rules {
		printRules()
		return 0, nil
	}
	if flag.NArg() != 1 {
		return 1, fmt.Errorf("usage: glitchlint [flags] <firmware.c>")
	}
	var threshold analyze.Severity
	if *failOn != "none" {
		var err error
		if threshold, err = analyze.ParseSeverity(*failOn); err != nil {
			return 1, err
		}
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return 1, err
	}
	cfg, err := passes.Parse(*defenses, splitList(*sensitive))
	if err != nil {
		return 1, err
	}
	opts := analyze.Options{
		Sensitive:  splitList(*sensitive),
		Privileged: splitList(*privileged),
		MinHamming: *minHamming,
		Disabled:   splitList(*disable),
	}
	_, auditRes, err := core.CompileAudited(string(src), cfg, opts)
	if err != nil {
		return 1, err
	}
	res := auditRes.Post

	if *jsonOut {
		data, err := res.JSON()
		if err != nil {
			return 1, err
		}
		fmt.Println(string(data))
	} else {
		fmt.Print(report.Findings(res))
	}

	code := 0
	if *failOn != "none" {
		for _, f := range res.Findings {
			if f.Severity >= threshold {
				code = 2
				break
			}
		}
	}
	if *audit {
		if err := auditRes.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "glitchlint: audit:", err)
			code = 2
		} else if !*jsonOut {
			fmt.Printf("audit: every enabled pass removed its findings (pre: %s)\n",
				auditRes.Pre.Summary())
		}
	}
	return code, nil
}

func printRules() {
	fmt.Println("glitchlint rule catalog:")
	for _, r := range analyze.Rules() {
		m := r.Meta()
		scope := "IR"
		if m.NeedsImage {
			scope = "Thumb-16"
		}
		fixed := m.FixedBy
		if fixed == "" {
			fixed = "source change"
		}
		fmt.Printf("  %s %-26s %-7s %-8s fixed by: %-13s %s\n",
			m.ID, m.Slug, m.Severity, scope, fixed, m.Doc)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}
