// Command glitchemu runs the paper's Section IV emulation campaigns: it
// exhaustively perturbs every conditional-branch encoding of ARM Thumb with
// bit flips and reports the Figure 2 success rates and failure histograms.
//
// Usage:
//
//	glitchemu                      # all variants (Figure 2a, 2b, 2c, XOR)
//	glitchemu -model and           # one model
//	glitchemu -model and -zero-invalid
//	glitchemu -max-flips 4         # partial sweep (cheaper)
//	glitchemu -workers 1           # serial run (default: one worker per CPU)
//	glitchemu -metrics             # print a metrics snapshot afterwards
//	glitchemu -profile             # phase-attribution report (sampled)
//	glitchemu -trace c.jsonl       # structured JSONL trace of the campaign
//	glitchemu -serve :8080         # live /metrics and /debug/pprof
//	glitchemu -out results.txt     # write the tables atomically to a file
//	glitchemu -run-dir d -deadline 30m   # crash-safe checkpointed run
//	glitchemu -run-dir d -resume   # pick an interrupted run back up
//
// A run with -run-dir checkpoints every completed (condition, flip-count)
// work unit; SIGINT, SIGTERM or -deadline drain the workers, flush the
// checkpoint and exit with status 3, and -resume skips the completed units
// and produces byte-identical results to an uninterrupted run.
//
// The campaign itself executes through internal/serve's flag-free Exec —
// the same entry point the glitchd daemon uses — so a daemon-served
// campaign result is byte-identical to this CLI's -out file by
// construction.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"glitchlab/internal/campaign"
	"glitchlab/internal/obs"
	"glitchlab/internal/obs/profile"
	"glitchlab/internal/report"
	"glitchlab/internal/runctl"
	"glitchlab/internal/serve"
)

func main() {
	err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "glitchemu:", err)
	}
	os.Exit(runctl.ExitCode(err))
}

func run() error {
	modelFlag := flag.String("model", "", "mutation model: and, or, xor (default: all)")
	zeroInvalid := flag.Bool("zero-invalid", false,
		"treat the all-zero encoding as invalid (Figure 2c)")
	padUDF := flag.Bool("pad-udf", false,
		"fill unreachable slots with UDF (Section IV hardening hypothesis)")
	maxFlips := flag.Int("max-flips", 16, "maximum number of flipped bits per mask")
	workers := flag.Int("workers", campaign.DefaultWorkers(),
		"worker goroutines sharding the campaign (1 = serial; results are identical)")
	fullRun := flag.Bool("full-run", false,
		"re-simulate the harness prologue on every execution instead of replaying "+
			"from the trigger-point snapshot (slower; results are byte-identical)")
	profFlag := flag.Bool("profile", false,
		"sample phase attribution on the hot path and print the cost report")
	profEvery := flag.Int("profile-every", profile.DefaultSample,
		"time one execution in every N when -profile is set")
	cli := obs.RegisterCLIFlags(flag.CommandLine)
	rcli := runctl.RegisterCLIFlags(flag.CommandLine)
	flag.Parse()

	sess, err := cli.Start(obs.Default)
	if err != nil {
		return err
	}
	defer sess.Close()

	spec, err := serve.Spec{
		Kind:        serve.KindCampaign,
		Model:       *modelFlag,
		ZeroInvalid: *zeroInvalid,
		PadUDF:      *padUDF,
		MaxFlips:    *maxFlips,
	}.Normalize()
	if err != nil {
		return err
	}

	// The config hash covers everything that shapes the results; the worker
	// count and -full-run only shape the schedule and the execution engine,
	// never the counts, so they are deliberately excluded and a run may be
	// resumed with different values for either.
	rn, cancel, err := rcli.Start("glitchemu", spec.ConfigHash(), 0)
	if err != nil {
		return err
	}
	defer cancel()
	defer rn.Close()
	rn.Tracer = sess.Tracer

	var prof *profile.Profile
	if *profFlag {
		prof = profile.New(*profEvery)
	}

	env := serve.Env{
		Workers:  *workers,
		FullRun:  *fullRun,
		Tracer:   sess.Tracer,
		Progress: sess.Progress,
		Prof:     prof,
		Run:      rn,
	}
	if cli.Enabled() {
		env.Reg = obs.Default
	}

	out := rcli.NewOutput()
	if err := serve.Exec(spec, env, out.Writer()); err != nil {
		if errors.Is(err, runctl.ErrInterrupted) {
			fmt.Fprintln(os.Stderr, rcli.ResumeHint("glitchemu"))
		}
		return err
	}
	if err := out.Commit(); err != nil {
		return err
	}
	if prof != nil {
		fmt.Println(report.Profile(prof.Report()))
	}
	sess.DumpMetrics(os.Stdout, report.Metrics)
	return nil
}
