// Command glitchemu runs the paper's Section IV emulation campaigns: it
// exhaustively perturbs every conditional-branch encoding of ARM Thumb with
// bit flips and reports the Figure 2 success rates and failure histograms.
//
// Usage:
//
//	glitchemu                      # all variants (Figure 2a, 2b, 2c, XOR)
//	glitchemu -model and           # one model
//	glitchemu -model and -zero-invalid
//	glitchemu -max-flips 4         # partial sweep (cheaper)
//	glitchemu -workers 1           # serial run (default: one worker per CPU)
//	glitchemu -metrics             # print a metrics snapshot afterwards
//	glitchemu -trace c.jsonl       # structured JSONL trace of the campaign
//	glitchemu -serve :8080         # live /metrics and /debug/pprof
package main

import (
	"flag"
	"fmt"
	"os"

	"glitchlab/internal/campaign"
	"glitchlab/internal/core"
	"glitchlab/internal/mutate"
	"glitchlab/internal/obs"
	"glitchlab/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "glitchemu:", err)
		os.Exit(1)
	}
}

func run() error {
	modelFlag := flag.String("model", "", "mutation model: and, or, xor (default: all)")
	zeroInvalid := flag.Bool("zero-invalid", false,
		"treat the all-zero encoding as invalid (Figure 2c)")
	padUDF := flag.Bool("pad-udf", false,
		"fill unreachable slots with UDF (Section IV hardening hypothesis)")
	maxFlips := flag.Int("max-flips", 16, "maximum number of flipped bits per mask")
	workers := flag.Int("workers", campaign.DefaultWorkers(),
		"worker goroutines sharding the campaign (1 = serial; results are identical)")
	cli := obs.RegisterCLIFlags(flag.CommandLine)
	flag.Parse()

	sess, err := cli.Start(obs.Default)
	if err != nil {
		return err
	}
	defer sess.Close()

	type variant struct {
		model       mutate.Model
		zeroInvalid bool
	}
	var variants []variant
	if *modelFlag == "" {
		variants = []variant{
			{mutate.AND, false},
			{mutate.OR, false},
			{mutate.AND, true},
			{mutate.XOR, false},
		}
	} else {
		m, err := mutate.ParseModel(*modelFlag)
		if err != nil {
			return err
		}
		variants = []variant{{m, *zeroInvalid}}
	}

	for _, v := range variants {
		var o *campaign.Observer
		if cli.Enabled() {
			o = campaign.NewObserver(obs.Default, sess.Tracer)
			o.OnProgress(0, sess.Progress("campaign "+v.model.String()))
		}
		var results []campaign.CondResult
		var err error
		if *padUDF {
			results, err = core.RunUDFHardening(v.model, *maxFlips, *workers, o)
		} else {
			results, err = core.RunFigure2(v.model, v.zeroInvalid, *maxFlips, *workers, o)
		}
		if err != nil {
			return err
		}
		fmt.Println(report.Figure2(results, v.model, v.zeroInvalid))
	}
	sess.DumpMetrics(os.Stdout, report.Metrics)
	return nil
}
