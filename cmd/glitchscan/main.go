// Command glitchscan runs the paper's Section V "real-world" glitching
// experiments against the simulated STM32 target: Table I single-glitch
// scans, Table II multi-glitch, Table III long-glitch, and the Section V-B
// optimal-parameter search.
//
// Usage:
//
//	glitchscan                 # everything
//	glitchscan -exp table1a    # one experiment
//	glitchscan -seed 7         # a different fault-model landscape
//
// Experiments: table1a table1b table1c table1 table2 table3 search
package main

import (
	"flag"
	"fmt"
	"os"

	"glitchlab/internal/core"
	"glitchlab/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "glitchscan:", err)
		os.Exit(1)
	}
}

func run() error {
	exp := flag.String("exp", "all",
		"experiment: table1a, table1b, table1c, table1, table2, table3, search, all")
	seed := flag.Uint64("seed", core.DefaultSeed, "fault-model seed")
	flag.Parse()

	wantT1 := map[string]int{"table1a": 0, "table1b": 1, "table1c": 2}
	switch *exp {
	case "table1a", "table1b", "table1c":
		results, err := core.RunTable1(*seed)
		if err != nil {
			return err
		}
		fmt.Println(report.Table1(results[wantT1[*exp]]))
		return nil
	case "table1":
		return printTable1(*seed)
	case "table2":
		return printTable2(*seed)
	case "table3":
		return printTable3(*seed)
	case "search":
		return printSearch(*seed)
	case "all":
		if err := printTable1(*seed); err != nil {
			return err
		}
		if err := printTable2(*seed); err != nil {
			return err
		}
		if err := printTable3(*seed); err != nil {
			return err
		}
		return printSearch(*seed)
	default:
		return fmt.Errorf("unknown experiment %q", *exp)
	}
}

func printTable1(seed uint64) error {
	results, err := core.RunTable1(seed)
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Println(report.Table1(r))
	}
	return nil
}

func printTable2(seed uint64) error {
	results, err := core.RunTable2(seed)
	if err != nil {
		return err
	}
	fmt.Println(report.Table2(results))
	return nil
}

func printTable3(seed uint64) error {
	results, err := core.RunTable3(seed)
	if err != nil {
		return err
	}
	fmt.Println(report.Table3(results))
	return nil
}

func printSearch(seed uint64) error {
	results, err := core.RunSearch(seed)
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Println(report.Search(r))
	}
	return nil
}
