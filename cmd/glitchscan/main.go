// Command glitchscan runs the paper's Section V "real-world" glitching
// experiments against the simulated STM32 target: Table I single-glitch
// scans, Table II multi-glitch, Table III long-glitch, and the Section V-B
// optimal-parameter search.
//
// Usage:
//
//	glitchscan                 # everything
//	glitchscan -exp table1a    # one experiment
//	glitchscan -seed 7         # a different fault-model landscape
//	glitchscan -workers 1      # serial scans (default: one worker per CPU)
//	glitchscan -metrics        # print a metrics snapshot afterwards
//	glitchscan -profile        # phase-attribution report (sampled)
//	glitchscan -trace s.jsonl  # structured JSONL trace of the scan
//	glitchscan -serve :8080    # live /metrics and /debug/pprof
//	glitchscan -out results.txt          # write the tables atomically
//	glitchscan -run-dir d -deadline 30m  # crash-safe checkpointed run
//	glitchscan -run-dir d -resume        # pick an interrupted run back up
//
// Experiments: table1a table1b table1c table1 table2 table3 search
//
// A run with -run-dir checkpoints every completed grid width row; SIGINT,
// SIGTERM or -deadline drain the scan, flush the checkpoint and exit with
// status 3, and -resume skips the completed rows and produces
// byte-identical results to an uninterrupted run.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"glitchlab/internal/campaign"
	"glitchlab/internal/core"
	"glitchlab/internal/glitcher"
	"glitchlab/internal/obs"
	"glitchlab/internal/obs/profile"
	"glitchlab/internal/report"
	"glitchlab/internal/runctl"
)

func main() {
	err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "glitchscan:", err)
	}
	os.Exit(runctl.ExitCode(err))
}

func run() error {
	exp := flag.String("exp", "all",
		"experiment: table1a, table1b, table1c, table1, table2, table3, search, all")
	seed := flag.Uint64("seed", core.DefaultSeed, "fault-model seed")
	workers := flag.Int("workers", campaign.DefaultWorkers(),
		"worker goroutines sharding each grid scan (1 = serial; results are identical)")
	fullRun := flag.Bool("full-run", false,
		"reset and re-run the boot prologue on every attempt instead of replaying "+
			"from the trigger-point snapshot (slower; results are byte-identical)")
	profFlag := flag.Bool("profile", false,
		"sample phase attribution on the hot path and print the cost report")
	profEvery := flag.Int("profile-every", profile.DefaultSample,
		"time one attempt in every N when -profile is set")
	cli := obs.RegisterCLIFlags(flag.CommandLine)
	rcli := runctl.RegisterCLIFlags(flag.CommandLine)
	flag.Parse()

	sess, err := cli.Start(obs.Default)
	if err != nil {
		return err
	}
	defer sess.Close()

	// Worker count and -full-run excluded: they shape only the schedule
	// and the execution engine, never the counts.
	hash := runctl.ConfigHash(struct {
		Exp  string
		Seed uint64
	}{*exp, *seed})
	rn, cancel, err := rcli.Start("glitchscan", hash, *seed)
	if err != nil {
		return err
	}
	defer cancel()
	defer rn.Close()
	rn.Tracer = sess.Tracer

	m := glitcher.NewModel(*seed)
	m.FullRun = *fullRun
	if cli.Enabled() {
		m.Obs = glitcher.NewObs(obs.Default, sess.Tracer)
	}
	if *profFlag {
		m.Prof = profile.New(*profEvery)
	}

	out := runctl.NewOutput(rcli.OutPath)
	if err := runExp(*exp, m, *workers, rn, out.Writer()); err != nil {
		if errors.Is(err, runctl.ErrInterrupted) {
			fmt.Fprintln(os.Stderr, rcli.ResumeHint("glitchscan"))
		}
		return err
	}
	if err := out.Commit(); err != nil {
		return err
	}
	if m.Prof != nil {
		fmt.Println(report.Profile(m.Prof.Report()))
	}
	if cli.Metrics {
		sess.DumpMetrics(os.Stdout, report.Metrics)
	}
	return nil
}

func runExp(exp string, m *glitcher.Model, workers int, rn *runctl.Run, w io.Writer) error {
	wantT1 := map[string]int{"table1a": 0, "table1b": 1, "table1c": 2}
	switch exp {
	case "table1a", "table1b", "table1c":
		results, err := core.RunTable1(m, workers, rn)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, report.Table1(results[wantT1[exp]]))
		return nil
	case "table1":
		return printTable1(m, workers, rn, w)
	case "table2":
		return printTable2(m, workers, rn, w)
	case "table3":
		return printTable3(m, workers, rn, w)
	case "search":
		return printSearch(m, rn, w)
	case "all":
		if err := printTable1(m, workers, rn, w); err != nil {
			return err
		}
		if err := printTable2(m, workers, rn, w); err != nil {
			return err
		}
		if err := printTable3(m, workers, rn, w); err != nil {
			return err
		}
		return printSearch(m, rn, w)
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}

func printTable1(m *glitcher.Model, workers int, rn *runctl.Run, w io.Writer) error {
	results, err := core.RunTable1(m, workers, rn)
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Fprintln(w, report.Table1(r))
	}
	return nil
}

func printTable2(m *glitcher.Model, workers int, rn *runctl.Run, w io.Writer) error {
	results, err := core.RunTable2(m, workers, rn)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, report.Table2(results))
	return nil
}

func printTable3(m *glitcher.Model, workers int, rn *runctl.Run, w io.Writer) error {
	results, err := core.RunTable3(m, workers, rn)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, report.Table3(results))
	return nil
}

func printSearch(m *glitcher.Model, rn *runctl.Run, w io.Writer) error {
	results, err := core.RunSearch(m, rn)
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Fprintln(w, report.Search(r))
	}
	return nil
}
