// Command glitchscan runs the paper's Section V "real-world" glitching
// experiments against the simulated STM32 target: Table I single-glitch
// scans, Table II multi-glitch, Table III long-glitch, and the Section V-B
// optimal-parameter search.
//
// Usage:
//
//	glitchscan                 # everything
//	glitchscan -exp table1a    # one experiment
//	glitchscan -seed 7         # a different fault-model landscape
//	glitchscan -workers 1      # serial scans (default: one worker per CPU)
//	glitchscan -metrics        # print a metrics snapshot afterwards
//	glitchscan -trace s.jsonl  # structured JSONL trace of the scan
//	glitchscan -serve :8080    # live /metrics and /debug/pprof
//
// Experiments: table1a table1b table1c table1 table2 table3 search
package main

import (
	"flag"
	"fmt"
	"os"

	"glitchlab/internal/campaign"
	"glitchlab/internal/core"
	"glitchlab/internal/glitcher"
	"glitchlab/internal/obs"
	"glitchlab/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "glitchscan:", err)
		os.Exit(1)
	}
}

func run() error {
	exp := flag.String("exp", "all",
		"experiment: table1a, table1b, table1c, table1, table2, table3, search, all")
	seed := flag.Uint64("seed", core.DefaultSeed, "fault-model seed")
	workers := flag.Int("workers", campaign.DefaultWorkers(),
		"worker goroutines sharding each grid scan (1 = serial; results are identical)")
	cli := obs.RegisterCLIFlags(flag.CommandLine)
	flag.Parse()

	sess, err := cli.Start(obs.Default)
	if err != nil {
		return err
	}
	defer sess.Close()

	m := glitcher.NewModel(*seed)
	if cli.Enabled() {
		m.Obs = glitcher.NewObs(obs.Default, sess.Tracer)
	}

	if err := runExp(*exp, m, *workers); err != nil {
		return err
	}
	if cli.Metrics {
		sess.DumpMetrics(os.Stdout, report.Metrics)
	}
	return nil
}

func runExp(exp string, m *glitcher.Model, workers int) error {
	wantT1 := map[string]int{"table1a": 0, "table1b": 1, "table1c": 2}
	switch exp {
	case "table1a", "table1b", "table1c":
		results, err := core.RunTable1(m, workers)
		if err != nil {
			return err
		}
		fmt.Println(report.Table1(results[wantT1[exp]]))
		return nil
	case "table1":
		return printTable1(m, workers)
	case "table2":
		return printTable2(m, workers)
	case "table3":
		return printTable3(m, workers)
	case "search":
		return printSearch(m)
	case "all":
		if err := printTable1(m, workers); err != nil {
			return err
		}
		if err := printTable2(m, workers); err != nil {
			return err
		}
		if err := printTable3(m, workers); err != nil {
			return err
		}
		return printSearch(m)
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}

func printTable1(m *glitcher.Model, workers int) error {
	results, err := core.RunTable1(m, workers)
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Println(report.Table1(r))
	}
	return nil
}

func printTable2(m *glitcher.Model, workers int) error {
	results, err := core.RunTable2(m, workers)
	if err != nil {
		return err
	}
	fmt.Println(report.Table2(results))
	return nil
}

func printTable3(m *glitcher.Model, workers int) error {
	results, err := core.RunTable3(m, workers)
	if err != nil {
		return err
	}
	fmt.Println(report.Table3(results))
	return nil
}

func printSearch(m *glitcher.Model) error {
	results, err := core.RunSearch(m)
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Println(report.Search(r))
	}
	return nil
}
