// Command glitchscan runs the paper's Section V "real-world" glitching
// experiments against the simulated STM32 target: Table I single-glitch
// scans, Table II multi-glitch, Table III long-glitch, and the Section V-B
// optimal-parameter search.
//
// Usage:
//
//	glitchscan                 # everything
//	glitchscan -exp table1a    # one experiment
//	glitchscan -seed 7         # a different fault-model landscape
//	glitchscan -workers 1      # serial scans (default: one worker per CPU)
//	glitchscan -metrics        # print a metrics snapshot afterwards
//	glitchscan -profile        # phase-attribution report (sampled)
//	glitchscan -trace s.jsonl  # structured JSONL trace of the scan
//	glitchscan -serve :8080    # live /metrics and /debug/pprof
//	glitchscan -out results.txt          # write the tables atomically
//	glitchscan -run-dir d -deadline 30m  # crash-safe checkpointed run
//	glitchscan -run-dir d -resume        # pick an interrupted run back up
//
// Experiments: table1a table1b table1c table1 table2 table3 search
//
// A run with -run-dir checkpoints every completed grid width row; SIGINT,
// SIGTERM or -deadline drain the scan, flush the checkpoint and exit with
// status 3, and -resume skips the completed rows and produces
// byte-identical results to an uninterrupted run.
//
// The scans execute through internal/serve's flag-free Exec — the same
// entry point the glitchd daemon uses — so a daemon-served scan result is
// byte-identical to this CLI's -out file by construction.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"glitchlab/internal/campaign"
	"glitchlab/internal/core"
	"glitchlab/internal/obs"
	"glitchlab/internal/obs/profile"
	"glitchlab/internal/report"
	"glitchlab/internal/runctl"
	"glitchlab/internal/serve"
)

func main() {
	err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "glitchscan:", err)
	}
	os.Exit(runctl.ExitCode(err))
}

func run() error {
	exp := flag.String("exp", "all",
		"experiment: table1a, table1b, table1c, table1, table2, table3, search, all")
	seed := flag.Uint64("seed", core.DefaultSeed, "fault-model seed")
	workers := flag.Int("workers", campaign.DefaultWorkers(),
		"worker goroutines sharding each grid scan (1 = serial; results are identical)")
	fullRun := flag.Bool("full-run", false,
		"reset and re-run the boot prologue on every attempt instead of replaying "+
			"from the trigger-point snapshot (slower; results are byte-identical)")
	profFlag := flag.Bool("profile", false,
		"sample phase attribution on the hot path and print the cost report")
	profEvery := flag.Int("profile-every", profile.DefaultSample,
		"time one attempt in every N when -profile is set")
	cli := obs.RegisterCLIFlags(flag.CommandLine)
	rcli := runctl.RegisterCLIFlags(flag.CommandLine)
	flag.Parse()

	sess, err := cli.Start(obs.Default)
	if err != nil {
		return err
	}
	defer sess.Close()

	spec, err := serve.Spec{
		Kind: serve.KindScan,
		Exp:  *exp,
		Seed: *seed,
	}.Normalize()
	if err != nil {
		return err
	}

	// Worker count and -full-run excluded from the config hash: they shape
	// only the schedule and the execution engine, never the counts.
	rn, cancel, err := rcli.Start("glitchscan", spec.ConfigHash(), spec.Seed)
	if err != nil {
		return err
	}
	defer cancel()
	defer rn.Close()
	rn.Tracer = sess.Tracer

	var prof *profile.Profile
	if *profFlag {
		prof = profile.New(*profEvery)
	}

	env := serve.Env{
		Workers:  *workers,
		FullRun:  *fullRun,
		Tracer:   sess.Tracer,
		Progress: sess.Progress,
		Prof:     prof,
		Run:      rn,
	}
	if cli.Enabled() {
		env.Reg = obs.Default
	}

	out := rcli.NewOutput()
	if err := serve.Exec(spec, env, out.Writer()); err != nil {
		if errors.Is(err, runctl.ErrInterrupted) {
			fmt.Fprintln(os.Stderr, rcli.ResumeHint("glitchscan"))
		}
		return err
	}
	if err := out.Commit(); err != nil {
		return err
	}
	if prof != nil {
		fmt.Println(report.Profile(prof.Report()))
	}
	if cli.Metrics {
		sess.DumpMetrics(os.Stdout, report.Metrics)
	}
	return nil
}
