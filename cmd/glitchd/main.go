// Command glitchd is the campaign-as-a-service daemon: a long-running
// HTTP server that accepts campaign/scan/eval jobs as JSON, admits them
// through a bounded queue, executes them on the sharded engines under
// runctl checkpoints (a killed daemon resumes every in-flight job on the
// next start), streams progress and partial results as JSONL events, and
// serves identical submissions byte-identically from a stamped LRU result
// cache.
//
// Usage:
//
//	glitchd -state /var/lib/glitchd             # serve on 127.0.0.1:8473
//	glitchd -state d -addr 127.0.0.1:0          # ephemeral port (printed)
//	glitchd -state d -queue 16 -executors 2     # admission + concurrency
//	glitchd -state d -job-workers 2             # per-job worker budget
//	glitchd -state d -cache-mb 128              # result-cache size cap
//
// API (also on the same listener: /metrics, /metrics.json, /debug/pprof):
//
//	POST /v1/jobs               {"kind":"campaign","model":"and",...}
//	GET  /v1/jobs[?format=text] job list
//	GET  /v1/jobs/{id}          status (units done, state, cache key)
//	GET  /v1/jobs/{id}/result   rendered result (byte-identical to the
//	                            equivalent CLI's -out file)
//	GET  /v1/jobs/{id}/events   JSONL progress stream (?offset=, ?wait=1)
//	GET  /v1/jobs/{id}/metrics  per-job metric deltas (obs.SnapshotDiff)
//	GET  /healthz               liveness + queue occupancy
//
// SIGINT/SIGTERM drain the daemon: in-flight jobs checkpoint at the next
// work-unit boundary and the process exits; restarting with the same
// -state resumes them to byte-identical results.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"glitchlab/internal/obs"
	"glitchlab/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "glitchd:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:8473", "HTTP listen address (use :0 for an ephemeral port)")
	state := flag.String("state", "", "durable state directory (required)")
	queue := flag.Int("queue", 8, "admission bound: max queued+running jobs before 429")
	executors := flag.Int("executors", 2, "jobs executed concurrently")
	jobWorkers := flag.Int("job-workers", 0, "per-job engine worker budget (0 = GOMAXPROCS/executors)")
	cacheMB := flag.Int64("cache-mb", 64, "result cache size cap in MiB")
	flag.Parse()

	if *state == "" {
		return fmt.Errorf("-state is required")
	}

	d, err := serve.Open(serve.Config{
		StateDir:   *state,
		QueueCap:   *queue,
		Executors:  *executors,
		JobWorkers: *jobWorkers,
		CacheBytes: *cacheMB << 20,
		Reg:        obs.Default,
	})
	if err != nil {
		return err
	}

	obs.Default.PublishExpvar("glitchlab")
	mux := obs.Default.Mux()
	d.Register(mux)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		d.Close()
		return err
	}
	srv := &http.Server{Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "glitchd: serving on http://%s (state %s, stamp %q)\n",
		ln.Addr(), *state, d.Stamp())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "glitchd: %v: draining (in-flight jobs checkpoint and resume on restart)\n", s)
		// Keep the listener up through the drain: late submissions get
		// 503 + Retry-After (a back-off hint) instead of a connection
		// error, and status/result reads still succeed.
		d.BeginDrain()
		err := d.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		if serr := srv.Shutdown(ctx); err == nil {
			err = serr
		}
		return err
	case err := <-errc:
		d.Close()
		return err
	}
}
