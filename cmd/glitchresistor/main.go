// Command glitchresistor is the defense tool itself: it compiles mini-C
// firmware with a selected set of glitching defenses and reports what was
// instrumented and what it cost, like running the paper's LLVM passes over
// a project.
//
// Usage:
//
//	glitchresistor -defenses all -sensitive uwTick firmware.c
//	glitchresistor -defenses branches,loops,delay firmware.c
//	glitchresistor -defenses none firmware.c        # baseline sizes
//	glitchresistor -run firmware.c                  # also execute cleanly
//
// Defense names: enums, returns, integrity, branches, loops, delay, and
// the shorthands all, all-but-delay, none.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"glitchlab/internal/core"
	"glitchlab/internal/passes"
	"glitchlab/internal/pipeline"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "glitchresistor:", err)
		os.Exit(1)
	}
}

func run() error {
	defenses := flag.String("defenses", "all", "comma-separated defense list")
	sensitive := flag.String("sensitive", "",
		"comma-separated globals to protect with data integrity")
	delayOptIn := flag.String("delay-opt-in", "",
		"restrict random delays to these functions (comma-separated)")
	delayOptOut := flag.String("delay-opt-out", "",
		"exempt these functions from random delays (comma-separated)")
	execute := flag.Bool("run", false, "run the firmware cleanly after building")
	maxCycles := flag.Uint64("max-cycles", 10_000_000, "clean-run cycle budget")
	flag.Parse()

	if flag.NArg() != 1 {
		return fmt.Errorf("usage: glitchresistor [flags] <firmware.c>")
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}

	cfg, err := passes.Parse(*defenses, splitList(*sensitive))
	if err != nil {
		return err
	}
	if *delayOptIn != "" {
		cfg.DelayOptIn = strings.Split(*delayOptIn, ",")
	}
	if *delayOptOut != "" {
		cfg.DelayOptOut = strings.Split(*delayOptOut, ",")
	}
	res, err := core.Compile(string(src), cfg)
	if err != nil {
		return err
	}
	fmt.Printf("defenses:     %s\n", cfg.Name())
	fmt.Printf("instrumented: %s\n", res.Report.String())
	fmt.Printf("sizes:        text=%d data=%d bss=%d total=%d bytes\n",
		res.Image.Sizes.Text, res.Image.Sizes.Data, res.Image.Sizes.BSS,
		res.Image.Sizes.Total())

	if *execute {
		r, err := core.RunClean(res.Image, *maxCycles)
		if err != nil {
			return err
		}
		switch r.Reason {
		case pipeline.StopHit:
			fmt.Printf("clean run:    reached %q after %d cycles (%d instructions)\n",
				r.Tag, r.Cycles, r.Steps)
		case pipeline.StopHung:
			fmt.Printf("clean run:    still running after %d cycles\n", r.Cycles)
		default:
			fmt.Printf("clean run:    fault %v\n", r.Fault)
		}
	}
	return nil
}

// splitList splits a comma-separated flag value, returning nil for "".
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}
