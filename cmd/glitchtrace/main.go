// Command glitchtrace analyzes the observability artifacts the
// experiment CLIs produce: JSONL execution traces (-trace), metrics
// snapshots (/metrics.json) and benchmark baselines (BENCH_*.json).
//
// Usage:
//
//	glitchtrace rollup c.jsonl            # per-span/per-event aggregates
//	glitchtrace critical c.jsonl          # longest span chain with self times
//	glitchtrace failures c.jsonl          # failures with span/event context
//	glitchtrace diff before.json after.json   # metrics snapshot delta
//	glitchtrace bench -baseline BENCH_obs.json bench.txt   # regression check
//	glitchtrace bench -baseline B.json -emit new.json bench.txt
//
// Every subcommand takes -json for machine-readable output instead of
// the table rendering. Trace loading tolerates a torn final line (the
// writer crashed mid-append), matching the run controller's manifest
// discipline; `bench` exits non-zero when a baseline benchmark regressed
// beyond the noise band (-noise, percent, default 25).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"glitchlab/internal/obs"
	"glitchlab/internal/obs/benchdiff"
	"glitchlab/internal/obs/query"
	"glitchlab/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "glitchtrace:", err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: glitchtrace <rollup|critical|failures|diff|bench> [flags] <files>")
}

func run(args []string) error {
	if len(args) == 0 {
		return usage()
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "rollup", "critical", "failures":
		return runTrace(cmd, rest)
	case "diff":
		return runDiff(rest)
	case "bench":
		return runBench(rest)
	default:
		return usage()
	}
}

// emit writes v as indented JSON when jsonOut is set, else the rendered
// table.
func emit(jsonOut bool, v any, table string) error {
	if !jsonOut {
		fmt.Print(table)
		return nil
	}
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(b))
	return nil
}

func runTrace(cmd string, args []string) error {
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit JSON instead of a table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: glitchtrace %s [-json] <trace.jsonl>", cmd)
	}
	tr, err := query.LoadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	if tr.Torn {
		fmt.Fprintln(os.Stderr, "glitchtrace: warning: torn final line dropped")
	}
	switch cmd {
	case "rollup":
		rows := tr.Rollup()
		return emit(*jsonOut, rows, report.TraceRollup(rows, tr.Torn))
	case "critical":
		path := tr.CriticalPath()
		return emit(*jsonOut, path, report.TraceCriticalPath(path))
	default: // failures
		fcs := tr.CorrelateFailures()
		return emit(*jsonOut, fcs, report.TraceFailures(fcs))
	}
}

func runDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit JSON instead of a table")
	all := fs.Bool("all", false, "show unchanged metrics too")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: glitchtrace diff [-json] [-all] <before.json> <after.json>")
	}
	before, err := loadSnapshot(fs.Arg(0))
	if err != nil {
		return err
	}
	after, err := loadSnapshot(fs.Arg(1))
	if err != nil {
		return err
	}
	d := obs.SnapshotDiff(before, after)
	if !*all {
		d = obs.Diff{Entries: d.Changed()}
	}
	return emit(*jsonOut, d, d.Text())
}

// loadSnapshot reads a metrics snapshot as served by /metrics.json.
func loadSnapshot(path string) (obs.Snapshot, error) {
	var s obs.Snapshot
	b, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(b, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

func runBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	baseline := fs.String("baseline", "", "committed BENCH_*.json baseline (required)")
	noise := fs.Float64("noise", 25, "noise band in percent; deltas inside it are ok")
	emitPath := fs.String("emit", "", "also write a fresh baseline file from the run")
	jsonOut := fs.Bool("json", false, "emit JSON instead of a table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *baseline == "" || fs.NArg() > 1 {
		return fmt.Errorf("usage: glitchtrace bench -baseline BENCH_x.json [-noise pct] [-emit new.json] [bench.txt]")
	}
	base, err := benchdiff.LoadFile(*baseline)
	if err != nil {
		return err
	}
	in := os.Stdin
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	fresh, err := benchdiff.ParseGoBench(in)
	if err != nil {
		return err
	}
	if *emitPath != "" {
		out := benchdiff.Emit(base.Date, base.Goos, base.Goarch, fresh)
		out.Description = base.Description
		out.CPU = base.CPU
		if err := out.WriteFile(*emitPath); err != nil {
			return err
		}
	}
	verdicts := benchdiff.Compare(base, fresh, *noise)
	if err := emit(*jsonOut, verdicts, benchdiff.Render(verdicts)); err != nil {
		return err
	}
	return benchdiff.Gate(verdicts)
}
