// Command glitcheval runs the paper's Section VII defense evaluation:
// Table IV (boot-time overhead), Table V (size overhead), Table VI
// (defense efficacy under single, long and windowed glitch attacks), and
// prints the Table VII defense comparison.
//
// It also renders the glitchlint findings table for the evaluation
// firmware (-exp lint): the static triage of the same build Tables IV-VI
// measure dynamically. -exp figure2 reruns a Section IV emulation
// campaign from here so its outcome counters and the rendered figure can
// be cross-checked in one process.
//
// Usage:
//
//	glitcheval                  # everything (Table VI takes ~1 minute)
//	glitcheval -exp table4
//	glitcheval -exp table6 -seed 7
//	glitcheval -exp lint
//	glitcheval -exp figure2 -metrics -trace run.jsonl
//	glitcheval -exp table6 -out results.txt      # atomic results file
//	glitcheval -exp table6 -run-dir d -deadline 30m
//	glitcheval -exp table6 -run-dir d -resume
//
// A run with -run-dir checkpoints completed work units (Table VI
// scenario/defense/attack cells, figure2 campaign units); SIGINT, SIGTERM
// or -deadline drain the run, flush the checkpoint and exit with status
// 3, and -resume skips the completed units and produces byte-identical
// results to an uninterrupted run.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"glitchlab/internal/analyze"
	"glitchlab/internal/campaign"
	"glitchlab/internal/core"
	"glitchlab/internal/glitcher"
	"glitchlab/internal/mutate"
	"glitchlab/internal/obs"
	"glitchlab/internal/passes"
	"glitchlab/internal/report"
	"glitchlab/internal/runctl"
)

func main() {
	err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "glitcheval:", err)
	}
	os.Exit(runctl.ExitCode(err))
}

func run() error {
	exp := flag.String("exp", "all",
		"experiment: table4, table5, table6, table7, lint, figure2, all")
	seed := flag.Uint64("seed", core.DefaultSeed, "fault-model seed (table6)")
	verbose := flag.Bool("v", false, "print table6 progress per cell")
	modelFlag := flag.String("model", "and", "figure2 mutation model: and, or, xor")
	zeroInvalid := flag.Bool("zero-invalid", false,
		"figure2: treat the all-zero encoding as invalid (Figure 2c)")
	maxFlips := flag.Int("max-flips", 16,
		"figure2: maximum number of flipped bits per mask")
	workers := flag.Int("workers", campaign.DefaultWorkers(),
		"figure2: worker goroutines sharding the campaign (1 = serial)")
	fullRun := flag.Bool("full-run", false,
		"figure2: re-simulate the prologue per execution instead of trigger-point replay")
	cli := obs.RegisterCLIFlags(flag.CommandLine)
	rcli := runctl.RegisterCLIFlags(flag.CommandLine)
	flag.Parse()

	sess, err := cli.Start(obs.Default)
	if err != nil {
		return err
	}
	defer sess.Close()

	// Worker count and -full-run excluded: they shape only the schedule
	// and the execution engine, never the counts.
	hash := runctl.ConfigHash(struct {
		Exp         string
		Seed        uint64
		Model       string
		ZeroInvalid bool
		MaxFlips    int
	}{*exp, *seed, *modelFlag, *zeroInvalid, *maxFlips})
	rn, cancel, err := rcli.Start("glitcheval", hash, *seed)
	if err != nil {
		return err
	}
	defer cancel()
	defer rn.Close()
	rn.Tracer = sess.Tracer

	out := runctl.NewOutput(rcli.OutPath)
	w := out.Writer()

	runT4 := func() error {
		t4, err := core.RunTable4()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, report.Table4(t4))
		return nil
	}
	runT5 := func() error {
		t5, err := core.RunTable5()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, report.Table5(t5))
		return nil
	}
	runT6 := func() error {
		var progress func(sc, cfg string, a core.Attack, cell core.Table6Cell)
		if *verbose {
			progress = func(sc, cfg string, a core.Attack, cell core.Table6Cell) {
				fmt.Fprintf(os.Stderr, "  %s / %s / %s: %d successes, %d detections\n",
					sc, cfg, a, cell.Successes, cell.Detections)
			}
		}
		m := glitcher.NewModel(*seed)
		if cli.Enabled() {
			m.Obs = glitcher.NewObs(obs.Default, sess.Tracer)
		}
		t6, err := core.RunTable6(m, progress, rn)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, report.Table6(t6))
		return nil
	}

	runLint := func() error {
		_, audit, err := core.CompileAudited(core.EvalFirmware,
			passes.All(core.EvalSensitive...),
			analyze.Options{Sensitive: core.EvalSensitive})
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Static triage of the evaluation firmware (unprotected):")
		fmt.Fprintln(w, report.Findings(audit.Pre))
		fmt.Fprintln(w, "After the full defense set:")
		fmt.Fprintln(w, report.Findings(audit.Post))
		return audit.Err()
	}

	runFig2 := func() error {
		model, err := mutate.ParseModel(*modelFlag)
		if err != nil {
			return err
		}
		var o *campaign.Observer
		if cli.Enabled() {
			o = campaign.NewObserver(obs.Default, sess.Tracer)
			o.OnProgress(0, sess.Progress("figure2 "+model.String()))
		}
		results, err := core.RunFigure2(model, *zeroInvalid, *maxFlips, *workers, *fullRun, o, nil, rn)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, report.Figure2(results, model, *zeroInvalid))
		return nil
	}

	defer sess.DumpMetrics(os.Stdout, report.Metrics)
	runSelected := func() error {
		switch *exp {
		case "table4":
			return runT4()
		case "table5":
			return runT5()
		case "table6":
			return runT6()
		case "table7":
			fmt.Fprintln(w, report.Table7())
			return nil
		case "lint":
			return runLint()
		case "figure2":
			return runFig2()
		case "all":
			if err := runLint(); err != nil {
				return err
			}
			if err := runT4(); err != nil {
				return err
			}
			if err := runT5(); err != nil {
				return err
			}
			if err := runT6(); err != nil {
				return err
			}
			fmt.Fprintln(w, report.Table7())
			return nil
		default:
			return fmt.Errorf("unknown experiment %q", *exp)
		}
	}
	if err := runSelected(); err != nil {
		if errors.Is(err, runctl.ErrInterrupted) {
			fmt.Fprintln(os.Stderr, rcli.ResumeHint("glitcheval"))
		}
		return err
	}
	return out.Commit()
}
