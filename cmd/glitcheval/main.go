// Command glitcheval runs the paper's Section VII defense evaluation:
// Table IV (boot-time overhead), Table V (size overhead), Table VI
// (defense efficacy under single, long and windowed glitch attacks), and
// prints the Table VII defense comparison.
//
// Usage:
//
// It also renders the glitchlint findings table for the evaluation
// firmware (-exp lint): the static triage of the same build Tables IV-VI
// measure dynamically.
//
//	glitcheval                  # everything (Table VI takes ~1 minute)
//	glitcheval -exp table4
//	glitcheval -exp table6 -seed 7
//	glitcheval -exp lint
package main

import (
	"flag"
	"fmt"
	"os"

	"glitchlab/internal/analyze"
	"glitchlab/internal/core"
	"glitchlab/internal/glitcher"
	"glitchlab/internal/passes"
	"glitchlab/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "glitcheval:", err)
		os.Exit(1)
	}
}

func run() error {
	exp := flag.String("exp", "all", "experiment: table4, table5, table6, table7, lint, all")
	seed := flag.Uint64("seed", core.DefaultSeed, "fault-model seed (table6)")
	verbose := flag.Bool("v", false, "print table6 progress per cell")
	flag.Parse()

	runT4 := func() error {
		t4, err := core.RunTable4()
		if err != nil {
			return err
		}
		fmt.Println(report.Table4(t4))
		return nil
	}
	runT5 := func() error {
		t5, err := core.RunTable5()
		if err != nil {
			return err
		}
		fmt.Println(report.Table5(t5))
		return nil
	}
	runT6 := func() error {
		var progress func(sc, cfg string, a core.Attack, cell core.Table6Cell)
		if *verbose {
			progress = func(sc, cfg string, a core.Attack, cell core.Table6Cell) {
				fmt.Fprintf(os.Stderr, "  %s / %s / %s: %d successes, %d detections\n",
					sc, cfg, a, cell.Successes, cell.Detections)
			}
		}
		t6, err := core.RunTable6(glitcher.NewModel(*seed), progress)
		if err != nil {
			return err
		}
		fmt.Println(report.Table6(t6))
		return nil
	}

	runLint := func() error {
		_, audit, err := core.CompileAudited(core.EvalFirmware,
			passes.All(core.EvalSensitive...),
			analyze.Options{Sensitive: core.EvalSensitive})
		if err != nil {
			return err
		}
		fmt.Println("Static triage of the evaluation firmware (unprotected):")
		fmt.Println(report.Findings(audit.Pre))
		fmt.Println("After the full defense set:")
		fmt.Println(report.Findings(audit.Post))
		return audit.Err()
	}

	switch *exp {
	case "table4":
		return runT4()
	case "table5":
		return runT5()
	case "table6":
		return runT6()
	case "table7":
		fmt.Println(report.Table7())
		return nil
	case "lint":
		return runLint()
	case "all":
		if err := runLint(); err != nil {
			return err
		}
		if err := runT4(); err != nil {
			return err
		}
		if err := runT5(); err != nil {
			return err
		}
		if err := runT6(); err != nil {
			return err
		}
		fmt.Println(report.Table7())
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", *exp)
	}
}
