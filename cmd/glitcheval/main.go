// Command glitcheval runs the paper's Section VII defense evaluation:
// Table IV (boot-time overhead), Table V (size overhead), Table VI
// (defense efficacy under single, long and windowed glitch attacks), and
// prints the Table VII defense comparison.
//
// It also renders the glitchlint findings table for the evaluation
// firmware (-exp lint): the static triage of the same build Tables IV-VI
// measure dynamically. -exp figure2 reruns a Section IV emulation
// campaign from here so its outcome counters and the rendered figure can
// be cross-checked in one process.
//
// Usage:
//
//	glitcheval                  # everything (Table VI takes ~1 minute)
//	glitcheval -exp table4
//	glitcheval -exp table6 -seed 7
//	glitcheval -exp lint
//	glitcheval -exp figure2 -metrics -trace run.jsonl
//	glitcheval -exp table6 -out results.txt      # atomic results file
//	glitcheval -exp table6 -run-dir d -deadline 30m
//	glitcheval -exp table6 -run-dir d -resume
//
// A run with -run-dir checkpoints completed work units (Table VI
// scenario/defense/attack cells, figure2 campaign units); SIGINT, SIGTERM
// or -deadline drain the run, flush the checkpoint and exit with status
// 3, and -resume skips the completed units and produces byte-identical
// results to an uninterrupted run.
//
// The evaluation executes through internal/serve's flag-free Exec — the
// same entry point the glitchd daemon uses — so a daemon-served eval
// result is byte-identical to this CLI's -out file by construction.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"glitchlab/internal/campaign"
	"glitchlab/internal/core"
	"glitchlab/internal/obs"
	"glitchlab/internal/report"
	"glitchlab/internal/runctl"
	"glitchlab/internal/serve"
)

func main() {
	err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "glitcheval:", err)
	}
	os.Exit(runctl.ExitCode(err))
}

func run() error {
	exp := flag.String("exp", "all",
		"experiment: table4, table5, table6, table7, lint, figure2, all")
	seed := flag.Uint64("seed", core.DefaultSeed, "fault-model seed (table6)")
	verbose := flag.Bool("v", false, "print table6 progress per cell")
	modelFlag := flag.String("model", "and", "figure2 mutation model: and, or, xor")
	zeroInvalid := flag.Bool("zero-invalid", false,
		"figure2: treat the all-zero encoding as invalid (Figure 2c)")
	maxFlips := flag.Int("max-flips", 16,
		"figure2: maximum number of flipped bits per mask")
	workers := flag.Int("workers", campaign.DefaultWorkers(),
		"figure2: worker goroutines sharding the campaign (1 = serial)")
	fullRun := flag.Bool("full-run", false,
		"figure2: re-simulate the prologue per execution instead of trigger-point replay")
	cli := obs.RegisterCLIFlags(flag.CommandLine)
	rcli := runctl.RegisterCLIFlags(flag.CommandLine)
	flag.Parse()

	sess, err := cli.Start(obs.Default)
	if err != nil {
		return err
	}
	defer sess.Close()

	spec, err := serve.Spec{
		Kind:        serve.KindEval,
		Exp:         *exp,
		Seed:        *seed,
		Model:       *modelFlag,
		ZeroInvalid: *zeroInvalid,
		MaxFlips:    *maxFlips,
	}.Normalize()
	if err != nil {
		return err
	}

	// Worker count and -full-run excluded from the config hash: they shape
	// only the schedule and the execution engine, never the counts.
	rn, cancel, err := rcli.Start("glitcheval", spec.ConfigHash(), spec.Seed)
	if err != nil {
		return err
	}
	defer cancel()
	defer rn.Close()
	rn.Tracer = sess.Tracer

	env := serve.Env{
		Workers:  *workers,
		FullRun:  *fullRun,
		Tracer:   sess.Tracer,
		Progress: sess.Progress,
		Run:      rn,
	}
	if cli.Enabled() {
		env.Reg = obs.Default
	}
	if *verbose {
		env.EvalProgress = func(sc, cfg string, a core.Attack, cell core.Table6Cell) {
			fmt.Fprintf(os.Stderr, "  %s / %s / %s: %d successes, %d detections\n",
				sc, cfg, a, cell.Successes, cell.Detections)
		}
	}

	defer sess.DumpMetrics(os.Stdout, report.Metrics)
	out := rcli.NewOutput()
	if err := serve.Exec(spec, env, out.Writer()); err != nil {
		if errors.Is(err, runctl.ErrInterrupted) {
			fmt.Fprintln(os.Stderr, rcli.ResumeHint("glitcheval"))
		}
		return err
	}
	return out.Commit()
}
