package glitchlab

// One benchmark per table and figure of the paper's evaluation. Each
// benchmark exercises the exact code path that regenerates its artifact;
// where a full regeneration takes seconds to minutes, the benchmark runs a
// representative slice per iteration (one branch condition, one clock
// cycle, one parameter-grid row) so `go test -bench=.` stays tractable.
// The cmd/ tools run the full versions.

import (
	"fmt"
	"testing"

	"glitchlab/internal/campaign"
	"glitchlab/internal/core"
	"glitchlab/internal/glitcher"
	"glitchlab/internal/isa"
	"glitchlab/internal/mutate"
	"glitchlab/internal/obs"
	"glitchlab/internal/obs/profile"
	"glitchlab/internal/passes"
	"glitchlab/internal/pipeline"
	"glitchlab/internal/search"
)

// skipIfShort keeps `go test -short -bench .` quick in CI: the campaign
// benchmarks emulate full parameter grids or boots per iteration.
func skipIfShort(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("exhaustive campaign benchmark skipped in -short mode")
	}
}

// benchSweep runs one conditional branch's mutation sweep up to maxFlips.
func benchSweep(b *testing.B, model mutate.Model, zeroInvalid bool) {
	b.Helper()
	skipIfShort(b)
	r, err := campaign.NewRunner(isa.EQ, zeroInvalid)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := r.Sweep(model, 2) // k = 0..2: 137 mutated executions
		if res.Runs == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// Figure 2a: AND (1→0) flips over every conditional branch encoding.
func BenchmarkFigure2AND(b *testing.B) { benchSweep(b, mutate.AND, false) }

// Figure 2b: OR (0→1) flips.
func BenchmarkFigure2OR(b *testing.B) { benchSweep(b, mutate.OR, false) }

// Figure 2c: AND flips with the all-zero encoding made invalid.
func BenchmarkFigure2ANDZeroInvalid(b *testing.B) { benchSweep(b, mutate.AND, true) }

// Section IV text: the bidirectional XOR control.
func BenchmarkFigure2XOR(b *testing.B) { benchSweep(b, mutate.XOR, false) }

// BenchmarkCampaignBare is the uninstrumented baseline: one branch's
// k = 0..2 sweep with no observer attached, the exact hot path Figure 2
// regeneration uses — trigger-point snapshot replay with per-halfword
// outcome memoization, so repeat sweeps are mostly memo lookups.
func BenchmarkCampaignBare(b *testing.B) {
	skipIfShort(b)
	r, err := campaign.NewRunner(isa.EQ, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := r.Sweep(mutate.AND, 2); res.Runs == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// BenchmarkCampaignInstrumented is the same sweep with a full observer
// (counters, histogram, fault hook) but no trace sink — the configuration
// `-metrics` runs in. An observed run executes every mask for real (each
// must emit a genuine record), forfeiting the bare path's memoization, so
// the gap to BenchmarkCampaignBare is dominated by that forfeit rather
// than the observer's bookkeeping (see BENCH_obs.json).
func BenchmarkCampaignInstrumented(b *testing.B) {
	skipIfShort(b)
	r, err := campaign.NewRunner(isa.EQ, false)
	if err != nil {
		b.Fatal(err)
	}
	r.Obs = campaign.NewObserver(obs.NewRegistry(), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := r.Sweep(mutate.AND, 2); res.Runs == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// BenchmarkCampaignProfiled is the same sweep with phase attribution
// sampling at the default 1-in-64 rate — the configuration `-profile`
// runs in. A profiled run executes every mask for real (a sampled
// execution's cost stands in for 63 unsampled ones, so none may be a
// memo hit); the profiler's own cost on top of that is one increment and
// one compare per execution plus four clock reads per sampled one —
// compare against BenchmarkCampaignInstrumented, which runs the same
// unmemoized replay (see BENCH_profile.json).
func BenchmarkCampaignProfiled(b *testing.B) {
	skipIfShort(b)
	r, err := campaign.NewRunner(isa.EQ, false)
	if err != nil {
		b.Fatal(err)
	}
	p := profile.New(0) // calibrates before the timer starts
	sh := p.Shard()
	r.Prof = sh
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := r.Sweep(mutate.AND, 2); res.Runs == 0 {
			b.Fatal("empty sweep")
		}
	}
	b.StopTimer()
	sh.Flush()
	if rep := p.Report(); rep.Execs == 0 {
		b.Fatal("profiler saw no executions")
	}
}

// BenchmarkCampaignParallel measures the worker-sharded campaign engine
// against its serial baseline: the full Figure 2 pipeline (all 14 branch
// conditions, k = 0..5, ~96k mutated executions) at 1, 2, 4 and 8
// workers. The sub-benchmark results feed BENCH_parallel.json
// (BENCH_parallel_pre_hotpath.json preserves the pre-overhaul numbers;
// TestHotPathSpeedupClaim pins the >=5x ratio between the two). Since
// snapshot replay and memoization shrank a full unit to ~1ms, sharding
// overhead roughly cancels the parallel win on this workload; -workers
// still pays off for -full-run, observed and profiled runs.
func BenchmarkCampaignParallel(b *testing.B) {
	skipIfShort(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results, err := campaign.Run(campaign.Config{
					Model:    mutate.AND,
					MaxFlips: 5,
					Workers:  workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(results) == 0 {
					b.Fatal("empty campaign")
				}
			}
		})
	}
}

// BenchmarkScanParallel measures the band-sharded grid-scan engine: one
// guard's full Table I scan (8 cycles x 9,801 points) at 1, 2 and 4
// workers.
func BenchmarkScanParallel(b *testing.B) {
	skipIfShort(b)
	m := glitcher.NewModel(core.DefaultSeed)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := m.RunTable1Workers(glitcher.GuardWhileA, workers, nil)
				if err != nil {
					b.Fatal(err)
				}
				if res.Attempts == 0 {
					b.Fatal("empty scan")
				}
			}
		})
	}
}

// benchTable1 scans one clock cycle of one guard over the parameter grid.
func benchTable1(b *testing.B, g glitcher.Guard) {
	b.Helper()
	skipIfShort(b)
	m := glitcher.NewModel(core.DefaultSeed)
	t, err := glitcher.NewTarget(g, g.SingleLoopSource())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		attempts := 0
		glitcher.Grid(func(p glitcher.Params) {
			if _, hit := m.EventAt(p, 4, 0); !hit {
				return
			}
			attempts++
			t.Attempt(m.Plan(p, 4))
		})
		if attempts == 0 {
			b.Fatal("no events in grid")
		}
	}
}

// Table Ia: single-glitch scan against while(!a).
func BenchmarkTable1WhileNotA(b *testing.B) { benchTable1(b, glitcher.GuardWhileNotA) }

// Table Ib: single-glitch scan against while(a).
func BenchmarkTable1WhileA(b *testing.B) { benchTable1(b, glitcher.GuardWhileA) }

// Table Ic: single-glitch scan against while(a != 0xD3B9AEC6).
func BenchmarkTable1WhileNeq(b *testing.B) { benchTable1(b, glitcher.GuardWhileNeq) }

// Table II: multi-glitch (two triggers, same parameters) for one cycle.
func BenchmarkTable2MultiGlitch(b *testing.B) {
	skipIfShort(b)
	m := glitcher.NewModel(core.DefaultSeed)
	g := glitcher.GuardWhileNotA
	t, err := glitcher.NewTarget(g, g.DoubleLoopSource())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		glitcher.Grid(func(p glitcher.Params) {
			if _, hit := m.EventAt(p, 5, 0); !hit {
				return
			}
			t.Attempt(m.Plan(p, 5))
		})
	}
}

// Table III: long glitch (cycles 0-10) over two subsequent loops.
func BenchmarkTable3LongGlitch(b *testing.B) {
	skipIfShort(b)
	m := glitcher.NewModel(core.DefaultSeed)
	g := glitcher.GuardWhileA
	t, err := glitcher.NewTarget(g, g.LongGlitchSource())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		glitcher.Grid(func(p glitcher.Params) {
			any := false
			for rel := 0; rel < 10 && !any; rel++ {
				_, any = m.EventInContext(p, rel, 0, rel)
			}
			if !any {
				return
			}
			t.Attempt(m.RangePlan(p, 0, 10))
		})
	}
}

// Section V-B: the full optimal-parameter search to 10/10 reliability.
func BenchmarkParamSearch(b *testing.B) {
	skipIfShort(b)
	m := glitcher.NewModel(core.DefaultSeed)
	for i := 0; i < b.N; i++ {
		s, err := search.New(m, glitcher.GuardWhileA)
		if err != nil {
			b.Fatal(err)
		}
		if res := s.Find(); !res.Found {
			b.Fatal("search failed")
		}
	}
}

// Table IV: boot-cycle measurement of the fully defended firmware.
func BenchmarkTable4BootOverhead(b *testing.B) {
	skipIfShort(b)
	res, err := core.Compile(core.EvalFirmware, passes.All(core.EvalSensitive...))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := core.NewMachine(res.Image)
		if err != nil {
			b.Fatal(err)
		}
		r := m.Run(50_000_000)
		if r.Tag != "boot_done" {
			b.Fatalf("boot ended %v/%q", r.Reason, r.Tag)
		}
		b.ReportMetric(float64(r.Cycles), "bootcycles")
	}
}

// Table V: building the firmware under every defense set and measuring
// section sizes.
func BenchmarkTable5SizeOverhead(b *testing.B) {
	skipIfShort(b)
	for i := 0; i < b.N; i++ {
		t5, err := core.RunTable5()
		if err != nil {
			b.Fatal(err)
		}
		all := t5.Rows[len(t5.Rows)-1]
		b.ReportMetric(float64(all.Sizes.Total()), "allbytes")
	}
}

// Table VI: one parameter-grid row (99 offsets at one width) of the
// best-case single-glitch cell.
func BenchmarkTable6Defenses(b *testing.B) {
	skipIfShort(b)
	model := glitcher.NewModel(core.DefaultSeed)
	res, err := core.Compile(core.IfSuccessFirmware, passes.AllButDelay())
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.NewMachine(res.Image)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for o := -glitcher.ParamRange; o <= glitcher.ParamRange; o++ {
			p := glitcher.Params{Width: -38, Offset: o}
			if _, hit := model.EventAt(p, 8, 0); !hit {
				continue
			}
			m.Board.Reset()
			m.Glitch = model.Plan(p, 8)
			m.Run(200_000)
		}
	}
}

// Ablation: how much each individual defense costs to compile and boot.
func BenchmarkAblationDefenseConfigs(b *testing.B) {
	skipIfShort(b)
	for _, cfg := range core.DefenseConfigs(core.EvalSensitive...) {
		cfg := cfg
		b.Run(cfg.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Compile(core.EvalFirmware, cfg)
				if err != nil {
					b.Fatal(err)
				}
				m, err := core.NewMachine(res.Image)
				if err != nil {
					b.Fatal(err)
				}
				r := m.Run(50_000_000)
				if r.Tag != "boot_done" {
					b.Fatalf("boot ended %v/%q", r.Reason, r.Tag)
				}
				b.ReportMetric(float64(r.Cycles), "bootcycles")
				b.ReportMetric(float64(res.Image.Sizes.Total()), "imagebytes")
			}
		})
	}
}

// Ablation: raw emulator speed (instructions per second), the substrate
// every experiment stands on.
func BenchmarkEmulatorThroughput(b *testing.B) {
	skipIfShort(b)
	g := glitcher.GuardWhileNotA
	t, err := glitcher.NewTarget(g, g.SingleLoopSource())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := t.CleanRun()
		if r.Reason != pipeline.StopHung {
			b.Fatal("guard exited")
		}
		b.ReportMetric(float64(r.Steps), "instructions")
	}
}

// Ablation: decoder throughput over the full 16-bit encoding space.
func BenchmarkDecoderFullSpace(b *testing.B) {
	skipIfShort(b)
	for i := 0; i < b.N; i++ {
		valid := 0
		for hw := 0; hw < 0x10000; hw++ {
			if isa.Is32Bit(uint16(hw)) {
				continue
			}
			if in := isa.Decode(uint16(hw), 0); in.Op != isa.OpInvalid {
				valid++
			}
		}
		if valid == 0 {
			b.Fatal("no valid encodings")
		}
	}
}
