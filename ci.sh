#!/bin/sh
# CI gate: formatting, vet, build, and the race-enabled test suite.
# -short skips the exhaustive bit-flip campaigns (see campaign tests and
# bench_test.go); run `go test ./...` for the full tier-1 suite.
set -eu
cd "$(dirname "$0")"

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
	echo "ci: gofmt needed on:" >&2
	echo "$fmt" >&2
	exit 1
fi

go vet ./...
go build ./...
go test -race -short ./...

# Observability gates: hammer the metrics registry, tracer, profiler and
# trace analytics under the race detector (this includes
# TestServeDuringShardedCampaign, which scrapes the live /metrics
# endpoints while a worker-sharded campaign flushes its observer shards)
# and smoke-test the -serve HTTP surface end to end.
go test -race ./internal/obs/... ./internal/campaign/ ./internal/report/
go test -run TestMetricsEndpoint ./internal/obs/

# Parallel-engine gates under the race detector: a sharded campaign slice
# with an attached observer (worker shards, progress ticks, accounting)
# and the sharded-scan observer merge. The full-grid golden-equivalence
# tests stay in the non-short suite; these small slices keep CI fast.
go test -race -run 'TestParallelObserverAccounting|TestParallelMoreWorkersThanUnits|TestRunNilObs' ./internal/campaign/
go test -race -run 'TestObsShardFlushMatchesSerial|TestWidthBands|TestGridBand' ./internal/glitcher/
go run ./cmd/glitchemu -model and -max-flips 2 -workers 4 >/dev/null

# Crash-safe run-controller gates: the runctl suite and a campaign
# kill/resume + panic-quarantine slice under the race detector.
go test -race ./internal/runctl/
go test -race -short -run 'TestResumeByteIdentical|TestPanicQuarantine' ./internal/campaign/

# End-to-end kill/resume smoke: a deadline-interrupted campaign must exit
# with status 3, publish no results file, and leave a resumable
# checkpoint; the resumed run must complete and write results
# byte-identical to an uninterrupted run's. The binary is built once so
# the exit status is the campaign's own, not `go run` relaying it.
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/glitchemu" ./cmd/glitchemu
"$tmp/glitchemu" -workers 2 -out "$tmp/golden.txt"
status=0
"$tmp/glitchemu" -workers 2 -run-dir "$tmp/run" -deadline 250ms \
	-out "$tmp/partial.txt" 2>/dev/null || status=$?
if [ "$status" -ne 3 ]; then
	echo "ci: deadline-interrupted run exited $status, want 3" >&2
	exit 1
fi
if [ -e "$tmp/partial.txt" ]; then
	echo "ci: interrupted run must not publish a results file" >&2
	exit 1
fi
if [ ! -s "$tmp/run/manifest.json" ] || [ ! -e "$tmp/run/checkpoint.jsonl" ]; then
	echo "ci: interrupted run left no checkpoint in $tmp/run" >&2
	exit 1
fi
"$tmp/glitchemu" -workers 2 -run-dir "$tmp/run" -resume -out "$tmp/resumed.txt"
cmp "$tmp/golden.txt" "$tmp/resumed.txt"

# Trigger-point replay gate: a seeded Figure 2 campaign slice run with the
# default snapshot/replay engine must render byte-identically to the same
# campaign re-simulating the prologue from reset on every execution
# (-full-run), serial and sharded. This is the end-to-end proof that the
# hot-path overhaul changed no observable number.
"$tmp/glitchemu" -max-flips 3 -out "$tmp/replay.txt"
"$tmp/glitchemu" -max-flips 3 -full-run -out "$tmp/fullrun.txt"
cmp "$tmp/replay.txt" "$tmp/fullrun.txt"
"$tmp/glitchemu" -max-flips 3 -workers 4 -out "$tmp/replay_par.txt"
cmp "$tmp/replay.txt" "$tmp/replay_par.txt"

# Differential-fuzzing gates. First sanity-check the committed seed corpora
# (directory names must be Fuzz* harnesses, every file must carry the native
# corpus header), then give each harness a short coverage-guided smoke run.
# The runs are serialized: this host has two vCPUs and each fuzz run already
# forks GOMAXPROCS workers.
corpus=internal/difftest/testdata/fuzz
for dir in "$corpus"/*/; do
	name=$(basename "$dir")
	case "$name" in
	Fuzz*) ;;
	*)
		echo "ci: corpus dir $name does not name a fuzz harness" >&2
		exit 1
		;;
	esac
	if ! grep -q "func $name(" internal/difftest/fuzz_test.go; then
		echo "ci: corpus dir $name has no matching harness in fuzz_test.go" >&2
		exit 1
	fi
	for f in "$dir"*; do
		if [ "$(head -n 1 "$f")" != "go test fuzz v1" ]; then
			echo "ci: corpus file $f lacks the 'go test fuzz v1' header" >&2
			exit 1
		fi
	done
done
for fz in FuzzEmuVsPipeline FuzzISARoundTrip FuzzDecode FuzzDefenseTransparency FuzzRSCodes; do
	go test ./internal/difftest/ -run '^$' -fuzz "^${fz}\$" -fuzztime 5s >/dev/null
done

# Corpus-lint gates: a cold fleet lint of the committed 200-unit corpus
# must reproduce the expected per-rule totals, a warm re-lint must be
# all-hits and byte-identical to the cold report, and a sharded warm lint
# must match too. The stats line (stderr) is machine-parsed for the
# hit-ratio assertion; the report (stdout) stays pure JSON.
go build -o "$tmp/glitchlint" ./cmd/glitchlint
units=internal/analyze/corpus/testdata/units
"$tmp/glitchlint" -corpus "$units" -sensitive state -fail-on none \
	-cache "$tmp/lint.cache" -json >"$tmp/lint_cold.json" 2>"$tmp/lint_cold.err"
for want in '"units": 200' '"builds": 1600' '"failed_builds": 0' \
	'"unremoved": 0' '"GL001": 4795' '"GL006": 9590' '"GL007": 8000'; do
	if ! grep -qF "$want" "$tmp/lint_cold.json"; then
		echo "ci: corpus lint totals missing $want" >&2
		exit 1
	fi
done
"$tmp/glitchlint" -corpus "$units" -sensitive state -fail-on none \
	-cache "$tmp/lint.cache" -json >"$tmp/lint_warm.json" 2>"$tmp/lint_warm.err"
cmp "$tmp/lint_cold.json" "$tmp/lint_warm.json"
hits=$(sed -n 's/.*cache_hits=\([0-9]*\).*/\1/p' "$tmp/lint_warm.err")
if [ "$hits" -lt 180 ]; then
	echo "ci: warm corpus lint hit only $hits/200 cached units (< 90%)" >&2
	exit 1
fi
"$tmp/glitchlint" -corpus "$units" -sensitive state -fail-on none \
	-cache "$tmp/lint.cache" -workers 4 -json >"$tmp/lint_par.json" 2>/dev/null
cmp "$tmp/lint_cold.json" "$tmp/lint_par.json"

# Benchmark-regression gate: the committed 2x-slowdown fixture must fail
# the glitchtrace bench gate, and a fresh run replaying the fixture
# baseline's own minimum must pass. Both are pure-data contracts,
# independent of host speed (the committed BENCH_*.json baselines
# self-check the same way in TestCommittedBaselinesSelfConsistent).
go build -o "$tmp/glitchtrace" ./cmd/glitchtrace
fixtures=internal/obs/benchdiff/testdata
if "$tmp/glitchtrace" bench -baseline "$fixtures/baseline.json" \
	"$fixtures/slowdown_2x.txt" >/dev/null 2>&1; then
	echo "ci: benchdiff gate accepted the 2x slowdown fixture" >&2
	exit 1
fi
printf 'BenchmarkCampaignBare 100 34200 ns/op\nBenchmarkCampaignProfiled 100 35950 ns/op\n' \
	>"$tmp/steady.txt"
"$tmp/glitchtrace" bench -baseline "$fixtures/baseline.json" "$tmp/steady.txt" >/dev/null

# Trace-analytics end-to-end smoke: a tiny fully-sampled campaign's
# trace must load and roll up to exactly its execution count (AND k=0..2
# is 1918 executions including controls), and the critical-path and
# failure views must render.
"$tmp/glitchemu" -model and -max-flips 2 -trace "$tmp/trace.jsonl" \
	-trace-sample 1 >/dev/null
"$tmp/glitchtrace" rollup "$tmp/trace.jsonl" >"$tmp/rollup.txt"
if ! grep -Eq 'event +campaign\.exec +1918$' "$tmp/rollup.txt"; then
	echo "ci: trace rollup lost executions, want 1918:" >&2
	cat "$tmp/rollup.txt" >&2
	exit 1
fi
"$tmp/glitchtrace" critical "$tmp/trace.jsonl" >/dev/null
"$tmp/glitchtrace" failures "$tmp/trace.jsonl" >/dev/null

# glitchd serving gates. First the in-process load and crash/resume
# harnesses under the race detector, full-size (their short variants
# already ran in the suite above): the hammer floods a tiny admission
# queue with concurrent mixed submissions and asserts prompt 429s on
# queue-full, a 100% cache-hit ratio on the second wave, and consistent
# /metrics and /healthz mid-flight.
go test -race -run 'TestGlitchdHammer|TestDaemonCrashResumeByteIdentical' \
	./internal/serve/

# Then the daemon end to end over real HTTP: a served campaign result
# must be byte-identical to the glitchemu CLI's -out file, and an
# identical resubmission must be a cache hit.
go build -o "$tmp/glitchd" ./cmd/glitchd
"$tmp/glitchemu" -model and -max-flips 2 -out "$tmp/cli_campaign.txt" >/dev/null
"$tmp/glitchd" -addr 127.0.0.1:0 -state "$tmp/glitchd-state" 2>"$tmp/glitchd.log" &
glitchd_pid=$!
addr=""
for _ in $(seq 1 50); do
	addr=$(sed -n 's|^glitchd: serving on http://\([^ ]*\).*|\1|p' "$tmp/glitchd.log")
	[ -n "$addr" ] && break
	sleep 0.1
done
if [ -z "$addr" ]; then
	echo "ci: glitchd never announced its address:" >&2
	cat "$tmp/glitchd.log" >&2
	exit 1
fi
job=$(curl -sf -X POST -d '{"kind":"campaign","model":"and","max_flips":2}' \
	"http://$addr/v1/jobs")
id=$(printf '%s' "$job" | sed -n 's/.*"id": "\(j[0-9]*\)".*/\1/p' | head -n 1)
if [ -z "$id" ]; then
	echo "ci: glitchd submission returned no job id: $job" >&2
	exit 1
fi
curl -sf "http://$addr/v1/jobs/$id/result?wait=1" >"$tmp/served_campaign.txt"
cmp "$tmp/cli_campaign.txt" "$tmp/served_campaign.txt"
resubmit=$(curl -sf -X POST -d '{"kind":"campaign","model":"and","max_flips":2}' \
	"http://$addr/v1/jobs")
case "$resubmit" in
*'"cache_hit": true'*) ;;
*)
	echo "ci: identical resubmission was not a cache hit: $resubmit" >&2
	exit 1
	;;
esac
curl -sf "http://$addr/healthz" | grep -q '"ok": true'
kill -TERM "$glitchd_pid"
wait "$glitchd_pid"

# Chaos gates. Full-size deterministic fault-injection sweeps under the
# race detector (their short variants already ran in the suite above):
# the daemon crash-op and seeded mixed-fault sweeps prove restart-over-
# battered-state reaches golden bytes, and the client hammer drives
# concurrent resilient clients through a fault-injecting daemon with a
# tiny admission queue — every job must complete byte-identical.
go test -race -run 'TestDaemonCrashOpSweep|TestDaemonSeededFaultSweep' \
	./internal/serve/
go test -race -run TestClientHammerUnderChaos ./internal/serve/client/

# Chaos end-to-end: a campaign with a simulated power loss at a fixed
# filesystem op must exit with the chaos status (4), publish no results
# file, and leave a state the unfaulted resume completes from with bytes
# identical to the clean golden — the crash-consistency contract at the
# CLI surface.
status=0
"$tmp/glitchemu" -workers 2 -run-dir "$tmp/chaosrun" -chaos-crash-op 60 \
	-out "$tmp/chaos_partial.txt" 2>/dev/null || status=$?
if [ "$status" -ne 4 ]; then
	echo "ci: chaos-crashed run exited $status, want 4" >&2
	exit 1
fi
if [ -e "$tmp/chaos_partial.txt" ]; then
	echo "ci: chaos-crashed run must not publish a results file" >&2
	exit 1
fi
"$tmp/glitchemu" -workers 2 -run-dir "$tmp/chaosrun" -resume \
	-out "$tmp/chaos_resumed.txt"
cmp "$tmp/golden.txt" "$tmp/chaos_resumed.txt"

echo "ci: OK"
