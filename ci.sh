#!/bin/sh
# CI gate: formatting, vet, build, and the race-enabled test suite.
# -short skips the exhaustive bit-flip campaigns (see campaign tests and
# bench_test.go); run `go test ./...` for the full tier-1 suite.
set -eu
cd "$(dirname "$0")"

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
	echo "ci: gofmt needed on:" >&2
	echo "$fmt" >&2
	exit 1
fi

go vet ./...
go build ./...
go test -race -short ./...

# Observability gates: hammer the metrics registry and tracer under the
# race detector and smoke-test the -serve HTTP surface end to end.
go test -race ./internal/obs/ ./internal/campaign/ ./internal/report/
go test -run TestMetricsEndpoint ./internal/obs/

# Parallel-engine gates under the race detector: a sharded campaign slice
# with an attached observer (worker shards, progress ticks, accounting)
# and the sharded-scan observer merge. The full-grid golden-equivalence
# tests stay in the non-short suite; these small slices keep CI fast.
go test -race -run 'TestParallelObserverAccounting|TestParallelMoreWorkersThanUnits|TestRunNilObs' ./internal/campaign/
go test -race -run 'TestObsShardFlushMatchesSerial|TestWidthBands|TestGridBand' ./internal/glitcher/
go run ./cmd/glitchemu -model and -max-flips 2 -workers 4 >/dev/null

echo "ci: OK"
