module glitchlab

go 1.22
