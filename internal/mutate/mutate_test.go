package mutate

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestBinomial(t *testing.T) {
	tests := []struct {
		n, k int
		want uint64
	}{
		{16, 0, 1}, {16, 1, 16}, {16, 2, 120}, {16, 8, 12870},
		{16, 15, 16}, {16, 16, 1}, {16, 17, 0}, {16, -1, 0},
		{0, 0, 1}, {5, 3, 10},
	}
	for _, tt := range tests {
		if got := Binomial(tt.n, tt.k); got != tt.want {
			t.Errorf("Binomial(%d,%d) = %d, want %d", tt.n, tt.k, got, tt.want)
		}
	}
}

func TestBinomialRowSum(t *testing.T) {
	// Sum over k of C(16,k) must be 2^16.
	var sum uint64
	for k := 0; k <= 16; k++ {
		sum += Binomial(16, k)
	}
	if sum != 1<<16 {
		t.Fatalf("sum = %d, want 65536", sum)
	}
}

func TestMasksCountAndPopcount(t *testing.T) {
	for k := 0; k <= 16; k++ {
		var n uint64
		seen := map[uint16]bool{}
		got := Masks(16, k, func(mask uint16) bool {
			n++
			if bits.OnesCount16(mask) != k {
				t.Fatalf("mask %#x has popcount %d, want %d",
					mask, bits.OnesCount16(mask), k)
			}
			if seen[mask] {
				t.Fatalf("duplicate mask %#x for k=%d", mask, k)
			}
			seen[mask] = true
			return true
		})
		if want := Binomial(16, k); n != want || got != want {
			t.Errorf("Masks(16,%d) produced %d (reported %d), want %d",
				k, n, got, want)
		}
	}
}

func TestMasksEarlyStop(t *testing.T) {
	var n int
	got := Masks(16, 2, func(mask uint16) bool {
		n++
		return n < 5
	})
	if n != 5 || got != 5 {
		t.Errorf("early stop: n=%d reported=%d, want 5", n, got)
	}
}

func TestMasksZeroFlipsEarlyStop(t *testing.T) {
	// Regression: the k == 0 branch used to discard fn's verdict entirely.
	// fn must be called exactly once, the aborting mask counted, and the
	// stop honored (observable through AllMasks below).
	calls := 0
	got := Masks(16, 0, func(mask uint16) bool {
		calls++
		if mask != 0 {
			t.Fatalf("k=0 produced mask %#x", mask)
		}
		return false
	})
	if calls != 1 || got != 1 {
		t.Errorf("Masks(16,0) with aborting fn: calls=%d reported=%d, want 1, 1", calls, got)
	}
}

func TestAllMasksEarlyStopAcrossFlipCounts(t *testing.T) {
	// Regression: a false from fn used to end only the current flip count,
	// with enumeration resuming at k+1. The stop must end everything, and
	// the reported total must stop at the aborting mask.
	tests := []struct {
		name  string
		abort uint64 // 1-based index of the mask fn rejects
	}{
		{"first mask (k=0)", 1},
		{"inside k=1", 9},
		{"k boundary (last k=1 mask)", 17},
		{"inside k=2", 40},
	}
	for _, tt := range tests {
		var n, maxK uint64
		total := AllMasks(16, func(k int, mask uint16) bool {
			n++
			maxK = uint64(k)
			return n < tt.abort
		})
		if n != tt.abort || total != tt.abort {
			t.Errorf("%s: fn saw %d masks (reported %d), want stop at %d",
				tt.name, n, total, tt.abort)
		}
		// No flip count beyond the aborting one may be visited: mask
		// index i (1-based) within k's block bounds maxK.
		var wantK uint64
		for sum, k := uint64(0), 0; k <= 16; k++ {
			sum += Binomial(16, k)
			if tt.abort <= sum {
				wantK = uint64(k)
				break
			}
		}
		if maxK != wantK {
			t.Errorf("%s: enumeration reached k=%d, want stop in k=%d",
				tt.name, maxK, wantK)
		}
	}
}

func TestAllMasksTotal(t *testing.T) {
	var n uint64
	total := AllMasks(16, func(k int, mask uint16) bool {
		n++
		return true
	})
	if total != 1<<16 || n != 1<<16 {
		t.Errorf("AllMasks covered %d (reported %d), want 65536", n, total)
	}
}

func TestApplyDirections(t *testing.T) {
	// AND only clears bits, OR only sets bits, XOR inverts exactly the
	// mask bits — property-checked over random words and masks.
	f := func(word, mask uint16) bool {
		a := AND.Apply(word, mask)
		o := OR.Apply(word, mask)
		x := XOR.Apply(word, mask)
		if a&^word != 0 { // AND must not set bits
			return false
		}
		if o&word != word { // OR must not clear bits
			return false
		}
		if x^word != mask { // XOR flips exactly mask
			return false
		}
		// AND clears exactly mask&word; OR sets exactly mask&^word.
		return word&^a == word&mask && o&^word == mask&^word
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseModel(t *testing.T) {
	for _, m := range []Model{AND, OR, XOR} {
		got, err := ParseModel(m.String())
		if err != nil || got != m {
			t.Errorf("ParseModel(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseModel("nand"); err == nil {
		t.Error("ParseModel(nand) succeeded")
	}
}
