// Package mutate generates the exhaustive bit-flip mutations the paper's
// emulation campaign applies to instruction encodings: for an n-bit word and
// each k in 0..n, every C(n,k) combination of bit positions, applied as a
// unidirectional AND (1→0) or OR (0→1) flip, or a bidirectional XOR flip.
package mutate

import "fmt"

// Model selects the direction of the induced bit flips.
type Model uint8

// Mutation models. The paper's Figure 2 evaluates AND and OR; XOR is the
// bidirectional control the text reports as falling between the two.
const (
	AND Model = iota + 1 // flip selected 1s to 0s
	OR                   // flip selected 0s to 1s
	XOR                  // invert selected bits
)

// String returns the model name.
func (m Model) String() string {
	switch m {
	case AND:
		return "and"
	case OR:
		return "or"
	case XOR:
		return "xor"
	}
	return fmt.Sprintf("model%d", uint8(m))
}

// ParseModel converts a model name to a Model.
func ParseModel(s string) (Model, error) {
	switch s {
	case "and":
		return AND, nil
	case "or":
		return OR, nil
	case "xor":
		return XOR, nil
	}
	return 0, fmt.Errorf("mutate: unknown model %q", s)
}

// Apply perturbs word with the k-bit mask under the model. The mask's set
// bits are the positions being flipped.
func (m Model) Apply(word, mask uint16) uint16 {
	switch m {
	case AND:
		return word &^ mask
	case OR:
		return word | mask
	case XOR:
		return word ^ mask
	}
	return word
}

// Binomial returns C(n, k).
func Binomial(n, k int) uint64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := uint64(1)
	for i := 0; i < k; i++ {
		r = r * uint64(n-i) / uint64(i+1)
	}
	return r
}

// Masks calls fn with every n-bit mask having exactly k set bits, in
// ascending numeric order. It reports the number of masks generated.
// fn returning false stops the enumeration early.
func Masks(n, k int, fn func(mask uint16) bool) uint64 {
	if k < 0 || k > n || n > 16 {
		return 0
	}
	// Gosper's hack: iterate k-subsets as bit patterns. k = 0 starts at
	// v = 0, whose successor is undefined (v & -v = 0), so it is the sole
	// mask of its flip count — but it still goes through the same call
	// site, so fn's early-stop verdict is honored uniformly (wrappers such
	// as AllMasks depend on that contract holding for every k).
	count := uint64(0)
	v := uint32(1<<k - 1)
	limit := uint32(1) << n
	for v < limit {
		count++
		if !fn(uint16(v)) {
			return count
		}
		if v == 0 {
			break // k == 0: no successor
		}
		c := v & -v
		r := v + c
		v = (((r ^ v) >> 2) / c) | r
	}
	return count
}

// AllMasks calls fn with every one of the 2^n masks, grouped by ascending
// popcount k (so the campaign can attribute each run to its flip count).
// fn returning false stops the whole enumeration — no later flip counts
// are visited — and the reported total includes the aborting mask.
func AllMasks(n int, fn func(k int, mask uint16) bool) uint64 {
	total := uint64(0)
	stopped := false
	for k := 0; k <= n && !stopped; k++ {
		total += Masks(n, k, func(mask uint16) bool {
			if !fn(k, mask) {
				// Masks can only signal the end of the current flip
				// count; record the stop here so the k loop ends too.
				stopped = true
				return false
			}
			return true
		})
	}
	return total
}
