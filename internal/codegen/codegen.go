// Package codegen lowers GlitchResistor IR to ARMv6-M Thumb-16 firmware
// for the simulated STM32 board: it emits the boot sequence (.data copy,
// .bss zeroing, shadow initialization, PRNG seed update), the compiled
// functions, the runtime (__gr_delay, __gr_detected, trigger, unsigned
// divide), lays out the .text/.data/.bss sections whose sizes Table V
// reports, and assembles the result into a loadable image.
//
// Code generation is deliberately naive — every IR value lives in a stack
// slot — because the evaluation measures *relative* overheads between a
// baseline and defense-instrumented builds of the same generator, exactly
// as the paper compares -Og builds of the same firmware.
package codegen

import (
	"fmt"
	"strings"

	"glitchlab/internal/firmware"
	"glitchlab/internal/ir"
	"glitchlab/internal/isa"
)

// Section layout inside the board's SRAM.
const (
	dataBase   = firmware.RAMBase          // .data then .bss
	shadowBase = firmware.RAMBase + 0x1800 // integrity shadows live apart
)

// Sizes reports segment sizes in bytes, as Table V does.
type Sizes struct {
	Text int
	Data int
	BSS  int
}

// Total returns the flash+RAM footprint (text + data + bss), matching the
// "total" column of the paper's size table.
func (s Sizes) Total() int { return s.Text + s.Data + s.BSS }

// Image is a compiled firmware image.
type Image struct {
	Prog   *isa.Program
	Sizes  Sizes
	Module *ir.Module
	// GlobalAddrs maps each global to its RAM address.
	GlobalAddrs map[string]uint32
}

// Symbol returns a linked symbol address.
func (im *Image) Symbol(name string) (uint32, bool) {
	return im.Prog.SymbolAddr(name)
}

// Options configures code generation.
type Options struct {
	// Delay emits the random-delay runtime and the boot-time seed update
	// (set when the delay defense is enabled).
	Delay bool
}

// Build compiles a module to a firmware image.
func Build(m *ir.Module, opts Options) (*Image, error) {
	if _, ok := m.Func("main"); !ok {
		return nil, fmt.Errorf("codegen: module has no main")
	}
	g := &gen{
		m:       m,
		opts:    opts,
		addrs:   map[string]uint32{},
		needDiv: moduleUsesDiv(m),
	}
	if err := g.layoutGlobals(); err != nil {
		return nil, err
	}
	g.emitBoot()
	for _, f := range m.Funcs {
		if err := g.emitFunc(f); err != nil {
			return nil, err
		}
	}
	g.emitRuntime()
	g.line(".align 4")
	g.label("_text_end")
	g.emitDataImage()

	prog, err := isa.Assemble(firmware.FlashBase, g.sb.String())
	if err != nil {
		return nil, fmt.Errorf("codegen: assemble: %w\n%s", err, numbered(g.sb.String()))
	}
	textEnd, _ := prog.SymbolAddr("_text_end")
	im := &Image{
		Prog:        prog,
		Module:      m,
		GlobalAddrs: g.addrs,
		Sizes: Sizes{
			Text: int(textEnd - firmware.FlashBase),
			Data: 4 * g.nData,
			BSS:  4 * (g.nBSS + g.nShadow),
		},
	}
	return im, nil
}

func numbered(src string) string {
	lines := strings.Split(src, "\n")
	for i := range lines {
		lines[i] = fmt.Sprintf("%4d\t%s", i+1, lines[i])
	}
	return strings.Join(lines, "\n")
}

func moduleUsesDiv(m *ir.Module) bool {
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpBin && (in.BinOp == ir.BinDiv || in.BinOp == ir.BinRem) {
					return true
				}
			}
		}
	}
	return false
}

type gen struct {
	m    *ir.Module
	opts Options
	sb   strings.Builder

	addrs   map[string]uint32
	dataG   []*ir.Global // initialized globals in layout order
	nData   int
	nBSS    int
	nShadow int
	needDiv bool
	tmp     int
	// sinceFlush approximates bytes emitted since the last literal-pool
	// flush; emitFunc inserts pool islands between blocks to keep every
	// ldr-literal within its 1020-byte forward range.
	sinceFlush int
}

func (g *gen) line(format string, args ...any) {
	fmt.Fprintf(&g.sb, format+"\n", args...)
	// Conservative size estimate (BL and pool entries are 4 bytes, the
	// rest 2; counting 4 for everything keeps the pool-distance bound
	// safe).
	g.sinceFlush += 4
}

// flushPool emits a literal-pool island. Callers must ensure execution
// cannot fall into it (every IR block ends in a terminator, so between
// blocks is safe).
func (g *gen) flushPool() {
	g.line("	.pool")
	g.sinceFlush = 0
}

func (g *gen) label(name string) { g.line("%s:", name) }

func (g *gen) uniq(hint string) string {
	g.tmp++
	return fmt.Sprintf(".L%s%d", hint, g.tmp)
}

// layoutGlobals assigns RAM addresses: .data, then .bss, then (if the
// delay runtime is present) the seed word, with shadows in their own area.
func (g *gen) layoutGlobals() error {
	dataOff, bssOff, shadowOff := uint32(0), uint32(0), uint32(0)
	var bssG []*ir.Global
	for _, gl := range g.m.Globals {
		if gl.IsShadow {
			g.addrs[gl.Name] = shadowBase + shadowOff
			shadowOff += 4
			g.nShadow++
			continue
		}
		if gl.HasInit {
			g.dataG = append(g.dataG, gl)
			g.nData++
			continue
		}
		bssG = append(bssG, gl)
		g.nBSS++
	}
	for _, gl := range g.dataG {
		g.addrs[gl.Name] = dataBase + dataOff
		dataOff += 4
	}
	bssBase := dataBase + dataOff
	for _, gl := range bssG {
		g.addrs[gl.Name] = bssBase + bssOff
		bssOff += 4
	}
	if g.opts.Delay {
		// The in-RAM PRNG state lives at the end of .bss.
		g.addrs["__gr_seed_ram"] = bssBase + bssOff
		g.nBSS++
		bssOff += 4
	}
	if shadowOff > 0 && bssBase+bssOff > shadowBase {
		return fmt.Errorf("codegen: data+bss collide with shadow section")
	}
	return nil
}

// emitBoot writes the reset entry: copy .data, zero .bss, initialize
// integrity shadows, update the PRNG seed, call main, park at halt.
func (g *gen) emitBoot() {
	g.label("_start")
	if g.nData > 0 {
		g.line("	ldr r0, =_data_load")
		g.line("	ldr r1, =%#x", dataBase)
		g.line("	ldr r2, =%#x", dataBase+uint32(4*g.nData))
		g.label(".Ldatacopy")
		g.line("	cmp r1, r2")
		g.line("	beq .Ldatadone")
		g.line("	ldr r3, [r0]")
		g.line("	str r3, [r1]")
		g.line("	adds r0, #4")
		g.line("	adds r1, #4")
		g.line("	b .Ldatacopy")
		g.label(".Ldatadone")
	}
	if n := g.nBSS; n > 0 {
		g.line("	ldr r1, =%#x", dataBase+uint32(4*g.nData))
		g.line("	ldr r2, =%#x", dataBase+uint32(4*(g.nData+n)))
		g.line("	movs r3, #0")
		g.label(".Lbsszero")
		g.line("	cmp r1, r2")
		g.line("	beq .Lbssdone")
		g.line("	str r3, [r1]")
		g.line("	adds r1, #4")
		g.line("	b .Lbsszero")
		g.label(".Lbssdone")
	}
	// Initialize integrity shadows to the complement of their primary.
	for _, gl := range g.m.Globals {
		if gl.Shadow == "" {
			continue
		}
		g.line("	ldr r0, =%#x", g.addrs[gl.Name])
		g.line("	ldr r1, [r0]")
		g.line("	mvns r1, r1")
		g.line("	ldr r0, =%#x", g.addrs[gl.Shadow])
		g.line("	str r1, [r0]")
	}
	if g.opts.Delay {
		// Update the persisted seed before anything observable happens,
		// as the paper's defense does (Section VI-B1).
		g.line("	bl __gr_seed_init")
	}
	g.line("	bl main")
	// BL rather than B: halt sits after every function and can be out of
	// a 16-bit branch's range; it never returns anyway.
	g.line("	bl halt")
	g.line("	.pool")
}

// emitRuntime writes the builtin entry points and defense runtime.
func (g *gen) emitRuntime() {
	// success/halt/__gr_detected are stop symbols: the experiment
	// machinery watches for PC reaching them.
	g.label("success")
	g.line("	b success")
	g.label("halt")
	g.line("	b halt")
	g.label("__gr_detected")
	g.line("	b __gr_detected")
	g.label("glitch_detected")
	g.line("	b __gr_detected")
	g.label("boot_done")
	g.line("	bx lr")
	g.label("trigger")
	g.line("	ldr r0, =%#x", uint32(firmware.TriggerAddr))
	g.line("	movs r1, #1")
	g.line("	str r1, [r0]")
	g.line("	bx lr")

	if g.needDiv {
		// Unsigned divide/modulo by binary long division (bounded by 32
		// normalize + 32 subtract steps): quotient in r0, remainder in
		// r1. Division by zero yields q=0, rem=r0.
		g.label("__gr_udivmod")
		g.line("	push {r4}")
		g.line("	movs r2, #0") // quotient
		g.line("	cmp r1, #0")
		g.line("	beq .Ldmdone")
		g.line("	movs r3, #1") // current bit
		g.label(".Ldmnorm")
		g.line("	lsrs r4, r1, #31")
		g.line("	cmp r4, #0")
		g.line("	bne .Ldmloop")
		g.line("	cmp r1, r0")
		g.line("	bhs .Ldmloop")
		g.line("	lsls r1, r1, #1")
		g.line("	lsls r3, r3, #1")
		g.line("	b .Ldmnorm")
		g.label(".Ldmloop")
		g.line("	cmp r0, r1")
		g.line("	bcc .Ldmskip")
		g.line("	subs r0, r0, r1")
		g.line("	orrs r2, r3")
		g.label(".Ldmskip")
		g.line("	lsrs r1, r1, #1")
		g.line("	lsrs r3, r3, #1")
		g.line("	bne .Ldmloop")
		g.label(".Ldmdone")
		g.line("	movs r1, r0") // remainder
		g.line("	movs r0, r2")
		g.line("	pop {r4}")
		g.line("	bx lr")
	}

	if g.opts.Delay {
		// The glibc-parameter LCG with a flash-persisted seed; executes
		// 0-10 NOPs (paper Section VI-B1).
		g.label("__gr_delay")
		g.line("	ldr r0, =%#x", g.addrs["__gr_seed_ram"])
		g.line("	ldr r1, [r0]")
		g.line("	ldr r2, =1103515245")
		g.line("	muls r1, r2")
		g.line("	ldr r2, =12345")
		g.line("	adds r1, r1, r2")
		g.line("	ldr r2, =0x7fffffff")
		g.line("	ands r1, r2")
		g.line("	str r1, [r0]")
		g.line("	lsrs r3, r1, #16")
		g.line("	movs r2, #15")
		g.line("	ands r3, r2")
		g.line("	cmp r3, #11")
		g.line("	bcc .Ldelayloop")
		g.line("	subs r3, #11")
		g.label(".Ldelayloop")
		g.line("	cmp r3, #0")
		g.line("	beq .Ldelaydone")
		g.line("	nop")
		g.line("	subs r3, #1")
		g.line("	b .Ldelayloop")
		g.label(".Ldelaydone")
		g.line("	bx lr")

		g.label("__gr_seed_init")
		g.line("	ldr r0, =%#x", uint32(firmware.SeedAddr))
		g.line("	ldr r1, [r0]")
		g.line("	adds r1, #1")
		g.line("	str r1, [r0]") // flash program: slow, by design
		g.line("	ldr r2, =%#x", g.addrs["__gr_seed_ram"])
		g.line("	str r1, [r2]")
		g.line("	bx lr")
	}
	g.line("	.pool")
}

// emitDataImage writes the flash copy of .data.
func (g *gen) emitDataImage() {
	if g.nData == 0 {
		return
	}
	g.label("_data_load")
	for _, gl := range g.dataG {
		g.line("	.word %#x", gl.Init)
	}
}
