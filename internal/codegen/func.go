package codegen

import (
	"fmt"

	"glitchlab/internal/ir"
)

// maxFrame bounds the stack frame so every slot stays addressable with
// Thumb's sp-relative 8-bit scaled offsets.
const maxFrame = 1020

// readValues returns the values an instruction reads (fields not used by
// the op are ignored — their zero values are meaningless).
func readValues(in *ir.Instr) []ir.Value {
	switch in.Op {
	case ir.OpStoreSlot, ir.OpStoreG, ir.OpNot, ir.OpCondBr:
		return []ir.Value{in.A}
	case ir.OpBin:
		return []ir.Value{in.A, in.B}
	case ir.OpCall:
		return in.Args
	case ir.OpRet:
		if in.A == ir.NoValue {
			return nil
		}
		return []ir.Value{in.A}
	default:
		return nil
	}
}

// allocValueSlots assigns each virtual register a spill slot, reusing
// slots once a value's last (linearized) use has passed. Lowering and the
// passes emit defs before uses in layout order, so linearized live ranges
// are sound; values whose range is unknown keep a dedicated slot.
func allocValueSlots(f *ir.Func) (map[ir.Value]int, int) {
	lastUse := map[ir.Value]int{}
	idx := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, v := range readValues(in) {
				if v != ir.NoValue {
					lastUse[v] = idx
				}
			}
			idx++
		}
	}
	assign := map[ir.Value]int{}
	next := 0
	var free []int
	type expiry struct {
		at   int
		slot int
	}
	var live []expiry
	idx = 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			// Release slots whose values die at or before this point.
			kept := live[:0]
			for _, e := range live {
				if e.at < idx {
					free = append(free, e.slot)
				} else {
					kept = append(kept, e)
				}
			}
			live = kept
			if defines(in) {
				var slot int
				if n := len(free); n > 0 {
					slot = free[n-1]
					free = free[:n-1]
				} else {
					slot = next
					next++
				}
				assign[in.Dst] = slot
				end, used := lastUse[in.Dst]
				if !used {
					end = idx // dead value: slot frees immediately
				}
				live = append(live, expiry{at: end, slot: slot})
			}
			idx++
		}
	}
	return assign, next
}

// defines mirrors the passes package's notion of defining instructions.
func defines(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpConst, ir.OpLoadSlot, ir.OpLoadG, ir.OpBin, ir.OpNot:
		return true
	case ir.OpCall:
		return in.Dst != ir.NoValue
	default:
		return false
	}
}

func (g *gen) emitFunc(f *ir.Func) error {
	valSlots, nValSlots := allocValueSlots(f)
	frame := 4 * (f.NumSlots + nValSlots)
	if frame > maxFrame {
		return fmt.Errorf("codegen: func %s frame %d bytes exceeds %d "+
			"(too many values for sp-relative addressing)",
			f.Name, frame, maxFrame)
	}
	slotOff := func(slot int) int { return 4 * slot }
	valOff := func(v ir.Value) int { return 4 * (f.NumSlots + valSlots[v]) }
	blockLabel := func(name string) string {
		return fmt.Sprintf("f_%s_%s", f.Name, name)
	}

	g.label(f.Name)
	g.line("	push {r7, lr}")
	for rem := frame; rem > 0; {
		chunk := rem
		if chunk > 508 {
			chunk = 508
		}
		g.line("	sub sp, #%d", chunk)
		rem -= chunk
	}
	if f.Params > 4 {
		return fmt.Errorf("codegen: func %s has %d params (max 4)", f.Name, f.Params)
	}
	for i := 0; i < f.Params; i++ {
		g.line("	str r%d, [sp, #%d]", i, slotOff(i))
	}

	// loadVal/storeVal move between stack slots and scratch registers.
	loadVal := func(reg int, v ir.Value) {
		g.line("	ldr r%d, [sp, #%d]", reg, valOff(v))
	}
	storeVal := func(reg int, v ir.Value) {
		g.line("	str r%d, [sp, #%d]", reg, valOff(v))
	}
	epilogue := func() {
		for rem := frame; rem > 0; {
			chunk := rem
			if chunk > 508 {
				chunk = 508
			}
			g.line("	add sp, #%d", chunk)
			rem -= chunk
		}
		g.line("	pop {r7, pc}")
	}

	for _, b := range f.Blocks {
		// Keep pending literals within ldr-literal range: a pool island
		// between blocks is unreachable (blocks end in terminators).
		if g.sinceFlush > 500 {
			g.flushPool()
		}
		g.label(blockLabel(b.Name))
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpConst:
				if in.Imm < 256 {
					g.line("	movs r0, #%d", in.Imm)
				} else {
					g.line("	ldr r0, =%#x", in.Imm)
				}
				storeVal(0, in.Dst)
			case ir.OpLoadSlot:
				g.line("	ldr r0, [sp, #%d]", slotOff(in.Slot))
				storeVal(0, in.Dst)
			case ir.OpStoreSlot:
				loadVal(0, in.A)
				g.line("	str r0, [sp, #%d]", slotOff(in.Slot))
			case ir.OpLoadG:
				addr, ok := g.addrs[in.GName]
				if !ok {
					return fmt.Errorf("codegen: unknown global %q", in.GName)
				}
				g.line("	ldr r0, =%#x", addr)
				g.line("	ldr r0, [r0]")
				storeVal(0, in.Dst)
			case ir.OpStoreG:
				addr, ok := g.addrs[in.GName]
				if !ok {
					return fmt.Errorf("codegen: unknown global %q", in.GName)
				}
				g.line("	ldr r0, =%#x", addr)
				loadVal(1, in.A)
				g.line("	str r1, [r0]")
			case ir.OpBin:
				if err := g.emitBin(in, loadVal, storeVal); err != nil {
					return err
				}
			case ir.OpNot:
				loadVal(0, in.A)
				one := g.uniq("nt")
				done := g.uniq("nd")
				g.line("	cmp r0, #0")
				g.line("	beq %s", one)
				g.line("	movs r0, #0")
				g.line("	b %s", done)
				g.label(one)
				g.line("	movs r0, #1")
				g.label(done)
				storeVal(0, in.Dst)
			case ir.OpCall:
				for i, a := range in.Args {
					loadVal(i, a)
				}
				g.line("	bl %s", in.Callee)
				if in.Dst != ir.NoValue {
					storeVal(0, in.Dst)
				}
			case ir.OpRet:
				if in.A != ir.NoValue {
					loadVal(0, in.A)
				}
				epilogue()
			case ir.OpJmp:
				g.line("	b %s", blockLabel(in.Target))
			case ir.OpCondBr:
				loadVal(0, in.A)
				taken := g.uniq("br")
				g.line("	cmp r0, #0")
				g.line("	bne %s", taken)
				g.line("	b %s", blockLabel(in.FalseBlk))
				g.label(taken)
				g.line("	b %s", blockLabel(in.TrueBlk))
			default:
				return fmt.Errorf("codegen: unknown op %v", in.Op)
			}
		}
	}
	g.flushPool()
	return nil
}

// condBranches maps comparison operators to (unsigned) condition codes.
var condBranches = map[ir.BinOp]string{
	ir.BinEq: "beq", ir.BinNe: "bne",
	ir.BinLt: "bcc", ir.BinGe: "bcs",
	ir.BinGt: "bhi", ir.BinLe: "bls",
}

func (g *gen) emitBin(in *ir.Instr,
	loadVal func(int, ir.Value), storeVal func(int, ir.Value)) error {
	loadVal(0, in.A)
	loadVal(1, in.B)
	switch in.BinOp {
	case ir.BinAdd:
		g.line("	adds r0, r0, r1")
	case ir.BinSub:
		g.line("	subs r0, r0, r1")
	case ir.BinMul:
		g.line("	muls r0, r1")
	case ir.BinAnd:
		g.line("	ands r0, r1")
	case ir.BinOr:
		g.line("	orrs r0, r1")
	case ir.BinXor:
		g.line("	eors r0, r1")
	case ir.BinShl:
		g.line("	lsls r0, r1")
	case ir.BinShr:
		g.line("	lsrs r0, r1")
	case ir.BinDiv:
		g.line("	bl __gr_udivmod")
	case ir.BinRem:
		g.line("	bl __gr_udivmod")
		g.line("	movs r0, r1")
	case ir.BinEq, ir.BinNe, ir.BinLt, ir.BinGt, ir.BinLe, ir.BinGe:
		bcc := condBranches[in.BinOp]
		one := g.uniq("ct")
		done := g.uniq("cd")
		g.line("	cmp r0, r1")
		g.line("	%s %s", bcc, one)
		g.line("	movs r0, #0")
		g.line("	b %s", done)
		g.label(one)
		g.line("	movs r0, #1")
		g.label(done)
	default:
		return fmt.Errorf("codegen: unknown binop %v", in.BinOp)
	}
	storeVal(0, in.Dst)
	return nil
}
