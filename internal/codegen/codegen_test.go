package codegen

import (
	"strings"
	"testing"

	"glitchlab/internal/firmware"
	"glitchlab/internal/ir"
	"glitchlab/internal/minic"
	"glitchlab/internal/pipeline"
)

// compile builds an image from mini-C source without any defenses.
func compile(t *testing.T, src string) *Image {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	chk, err := minic.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	m, err := ir.Lower(chk)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	img, err := Build(m, Options{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return img
}

// run executes an image until a stop symbol and returns the result plus the
// board for post-mortem memory inspection.
func run(t *testing.T, img *Image, maxCycles uint64) (pipeline.Result, *firmware.Board) {
	t.Helper()
	b, err := firmware.NewBoard()
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Load(img.Prog); err != nil {
		t.Fatal(err)
	}
	m := pipeline.NewMachine(b)
	for _, s := range []string{"success", "halt", "__gr_detected"} {
		if addr, ok := img.Symbol(s); ok {
			m.AddStop(addr, s)
		}
	}
	b.Reset()
	return m.Run(maxCycles), b
}

func globalWord(t *testing.T, img *Image, b *firmware.Board, name string) uint32 {
	t.Helper()
	addr, ok := img.GlobalAddrs[name]
	if !ok {
		t.Fatalf("no global %q", name)
	}
	v, ok := b.Mem.ReadWord(addr)
	if !ok {
		t.Fatalf("global %q at %#x unreadable", name, addr)
	}
	return v
}

func TestComputationalCorrectness(t *testing.T) {
	// Each program stores its result into `out` and halts; the test
	// reads it back from RAM. This pins down the whole chain: parser,
	// lowering, codegen, assembler, emulator.
	tests := []struct {
		name string
		body string
		want uint32
	}{
		{"arith", "out = (7 + 3) * 6 - 100 / 4;", 35},
		{"precedence", "out = 2 + 3 * 4 - 1;", 13},
		{"bitops", "out = (0xF0 | 0x0F) & ~0x18 ^ 0x100;", 0x1E7},
		{"shifts", "out = (1 << 10) >> 2;", 256},
		{"mod", "out = 1234 % 100;", 34},
		{"divzero", "out = 5 / 0;", 0}, // defined as 0 by the runtime
		{"compare", "out = (3 < 5) + (5 <= 5) + (7 > 9) + (2 != 2) + (4 == 4);", 3},
		{"logical", "out = (1 && 2) + (0 || 3) + !5 + !0;", 3},
		{"unary", "out = -1;", 0xFFFFFFFF},
		{"loop sum", `
			unsigned int s = 0;
			for (unsigned int i = 1; i <= 10; i = i + 1) { s = s + i; }
			out = s;`, 55},
		{"while countdown", `
			unsigned int n = 100;
			while (n > 3) { n = n - 7; }
			out = n;`, 2},
		{"nested break continue", `
			unsigned int c = 0;
			for (unsigned int i = 0; i < 10; i = i + 1) {
				if (i == 7) { break; }
				if (i % 2 == 0) { continue; }
				c = c + i;
			}
			out = c;`, 1 + 3 + 5},
		{"wraparound", "out = 0xFFFFFFFF + 2;", 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			src := "unsigned int out;\nvoid main(void) {\n" + tt.body + "\nhalt();\n}"
			img := compile(t, src)
			r, b := run(t, img, 1_000_000)
			if r.Reason != pipeline.StopHit || r.Tag != "halt" {
				t.Fatalf("run ended %v/%q fault=%v", r.Reason, r.Tag, r.Fault)
			}
			if got := globalWord(t, img, b, "out"); got != tt.want {
				t.Errorf("out = %d (%#x), want %d", got, got, tt.want)
			}
		})
	}
}

func TestFunctionCalls(t *testing.T) {
	img := compile(t, `
	unsigned int out;
	unsigned int fib(unsigned int n) {
		if (n < 2) { return n; }
		return fib(n - 1) + fib(n - 2);
	}
	void main(void) {
		out = fib(10);
		halt();
	}
	`)
	r, b := run(t, img, 10_000_000)
	if r.Tag != "halt" {
		t.Fatalf("run ended %v/%q fault=%v", r.Reason, r.Tag, r.Fault)
	}
	if got := globalWord(t, img, b, "out"); got != 55 {
		t.Errorf("fib(10) = %d, want 55", got)
	}
}

func TestMultipleArgs(t *testing.T) {
	img := compile(t, `
	unsigned int out;
	unsigned int mix(unsigned int a, unsigned int b, unsigned int c, unsigned int d) {
		return a * 1000 + b * 100 + c * 10 + d;
	}
	void main(void) {
		out = mix(1, 2, 3, 4);
		halt();
	}
	`)
	r, b := run(t, img, 1_000_000)
	if r.Tag != "halt" {
		t.Fatalf("run ended %v/%q", r.Reason, r.Tag)
	}
	if got := globalWord(t, img, b, "out"); got != 1234 {
		t.Errorf("mix = %d, want 1234", got)
	}
}

func TestGlobalInitialization(t *testing.T) {
	img := compile(t, `
	unsigned int a = 0xCAFE;
	unsigned int b;
	unsigned int out;
	void main(void) {
		out = a + b;   // b must be zeroed by boot despite SRAM garbage
		halt();
	}
	`)
	r, b := run(t, img, 1_000_000)
	if r.Tag != "halt" {
		t.Fatalf("run ended %v/%q", r.Reason, r.Tag)
	}
	if got := globalWord(t, img, b, "out"); got != 0xCAFE {
		t.Errorf("out = %#x, want 0xCAFE", got)
	}
	if img.Sizes.Data != 4 {
		t.Errorf("data size = %d, want 4 (one initialized word)", img.Sizes.Data)
	}
	if img.Sizes.BSS != 8 {
		t.Errorf("bss size = %d, want 8 (two uninitialized words)", img.Sizes.BSS)
	}
}

func TestTriggerBuiltin(t *testing.T) {
	img := compile(t, `
	void main(void) {
		trigger();
		halt();
	}
	`)
	r, b := run(t, img, 1_000_000)
	if r.Tag != "halt" {
		t.Fatalf("run ended %v/%q", r.Reason, r.Tag)
	}
	if b.TriggerCount != 1 {
		t.Errorf("trigger count = %d, want 1", b.TriggerCount)
	}
}

func TestStopSymbols(t *testing.T) {
	img := compile(t, `void main(void) { success(); }`)
	for _, sym := range []string{"main", "success", "halt", "__gr_detected", "boot_done", "_start"} {
		if _, ok := img.Symbol(sym); !ok {
			t.Errorf("symbol %q missing", sym)
		}
	}
	r, _ := run(t, img, 1_000_000)
	if r.Tag != "success" {
		t.Errorf("run ended %v/%q, want success", r.Reason, r.Tag)
	}
}

func TestNoMainRejected(t *testing.T) {
	prog, _ := minic.Parse(`void notmain(void) { halt(); }`)
	chk, _ := minic.Check(prog)
	m, _ := ir.Lower(chk)
	if _, err := Build(m, Options{}); err == nil ||
		!strings.Contains(err.Error(), "main") {
		t.Fatalf("Build without main: %v", err)
	}
}

func TestLargeFunctionSlotReuse(t *testing.T) {
	// Hundreds of statements must compile thanks to value-slot reuse,
	// and still compute the right answer.
	var sb strings.Builder
	sb.WriteString("unsigned int out;\nvoid main(void) {\nunsigned int x = 1;\n")
	for i := 0; i < 300; i++ {
		sb.WriteString("x = x + 1;\n")
	}
	sb.WriteString("out = x;\nhalt();\n}")
	img := compile(t, sb.String())
	r, b := run(t, img, 10_000_000)
	if r.Tag != "halt" {
		t.Fatalf("run ended %v/%q fault=%v", r.Reason, r.Tag, r.Fault)
	}
	if got := globalWord(t, img, b, "out"); got != 301 {
		t.Errorf("out = %d, want 301", got)
	}
}

func TestFrameOverflowRejected(t *testing.T) {
	// A function whose locals alone exceed the addressable frame must be
	// rejected, not silently miscompiled.
	m := &ir.Module{}
	f := &ir.Func{Name: "main", NumSlots: 300}
	v := f.NewValue()
	f.AddBlock(&ir.Block{Name: "entry", Instrs: []*ir.Instr{
		{Op: ir.OpConst, Dst: v, Imm: 1, A: ir.NoValue, B: ir.NoValue},
		{Op: ir.OpRet, A: ir.NoValue},
	}})
	m.Funcs = []*ir.Func{f}
	if _, err := Build(m, Options{}); err == nil ||
		!strings.Contains(err.Error(), "frame") {
		t.Fatalf("oversized frame: %v", err)
	}
}

func TestBootDoneBuiltin(t *testing.T) {
	img := compile(t, `
	void main(void) {
		boot_done();
		halt();
	}
	`)
	b, err := firmware.NewBoard()
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Load(img.Prog); err != nil {
		t.Fatal(err)
	}
	m := pipeline.NewMachine(b)
	addr, _ := img.Symbol("boot_done")
	m.AddStop(addr, "boot_done")
	b.Reset()
	r := m.Run(1_000_000)
	if r.Tag != "boot_done" {
		t.Fatalf("run ended %v/%q", r.Reason, r.Tag)
	}
}
