package codegen

import (
	"testing"

	"glitchlab/internal/pipeline"
)

// TestProgramCorpus runs a table of complete programs through the whole
// toolchain and checks the value each stores into `out`. These pin down
// control-flow lowering, call conventions and the runtime helpers on
// realistic firmware shapes.
func TestProgramCorpus(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want uint32
	}{
		{
			"collatz steps",
			`unsigned int out;
			void main(void) {
				unsigned int n = 27;
				unsigned int steps = 0;
				while (n != 1) {
					if (n % 2 == 0) { n = n / 2; }
					else { n = 3 * n + 1; }
					steps = steps + 1;
				}
				out = steps;
				halt();
			}`,
			111,
		},
		{
			"gcd",
			`unsigned int out;
			unsigned int gcd(unsigned int a, unsigned int b) {
				while (b != 0) {
					unsigned int t = b;
					b = a % b;
					a = t;
				}
				return a;
			}
			void main(void) {
				out = gcd(1071, 462);
				halt();
			}`,
			21,
		},
		{
			"crc-ish hash",
			`unsigned int out;
			void main(void) {
				unsigned int h = 0x811C9DC5;
				for (unsigned int i = 0; i < 8; i = i + 1) {
					h = (h ^ i) * 0x01000193;
				}
				out = h;
				halt();
			}`,
			func() uint32 {
				h := uint32(0x811C9DC5)
				for i := uint32(0); i < 8; i++ {
					h = (h ^ i) * 0x01000193
				}
				return h
			}(),
		},
		{
			"nested loops with continue",
			`unsigned int out;
			void main(void) {
				unsigned int acc = 0;
				for (unsigned int i = 0; i < 5; i = i + 1) {
					for (unsigned int j = 0; j < 5; j = j + 1) {
						if (i == j) { continue; }
						acc = acc + i * 10 + j;
					}
				}
				out = acc;
				halt();
			}`,
			func() uint32 {
				acc := uint32(0)
				for i := uint32(0); i < 5; i++ {
					for j := uint32(0); j < 5; j++ {
						if i == j {
							continue
						}
						acc += i*10 + j
					}
				}
				return acc
			}(),
		},
		{
			"enum state machine",
			`enum state { IDLE = 10, RUN = 20, DONE = 30 };
			unsigned int out;
			unsigned int step(unsigned int s) {
				if (s == IDLE) { return RUN; }
				if (s == RUN) { return DONE; }
				return s;
			}
			void main(void) {
				unsigned int s = IDLE;
				s = step(s);
				s = step(s);
				s = step(s);
				out = s;
				halt();
			}`,
			30,
		},
		{
			"short circuit side effects",
			`unsigned int out;
			unsigned int calls;
			unsigned int bump(void) {
				calls = calls + 1;
				return 1;
			}
			void main(void) {
				unsigned int a = 0;
				if (a != 0 && bump() == 1) { a = 9; }
				if (a == 0 || bump() == 1) { a = 5; }
				out = a * 100 + calls;
				halt();
			}`,
			500, // && short-circuits (no call); || short-circuits (no call)
		},
		{
			"mutual recursion parity",
			// No forward declaration needed: the checker resolves calls
			// after the whole unit is parsed.
			`unsigned int out;
			unsigned int isEven(unsigned int n) {
				if (n == 0) { return 1; }
				return isOdd(n - 1);
			}
			unsigned int isOdd(unsigned int n) {
				if (n == 0) { return 0; }
				return isEven(n - 1);
			}
			void main(void) {
				out = isEven(10) * 10 + isOdd(7);
				halt();
			}`,
			11,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			img := compileMaybeForward(t, tt.src)
			if img == nil {
				return
			}
			r, b := run(t, img, 100_000_000)
			if r.Reason != pipeline.StopHit || r.Tag != "halt" {
				t.Fatalf("ended %v/%q fault=%v", r.Reason, r.Tag, r.Fault)
			}
			if got := globalWord(t, img, b, "out"); got != tt.want {
				t.Errorf("out = %d (%#x), want %d", got, got, tt.want)
			}
		})
	}
}

// compileMaybeForward compiles, skipping tests whose source needs forward
// declarations if the front end rejects them (documenting the limitation
// rather than hiding it).
func compileMaybeForward(t *testing.T, src string) *Image {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panic: %v", r)
		}
	}()
	return compile(t, src)
}
