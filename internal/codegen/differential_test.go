package codegen

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"glitchlab/internal/pipeline"
)

// TestDifferentialExpressions generates random expression programs,
// evaluates them with a Go-side oracle, and checks the compiled Thumb
// firmware computes the same value on the emulator. This cross-checks the
// whole stack — parser, lowering, instruction selection, encodings and the
// emulator's ALU semantics — against an independent implementation.
func TestDifferentialExpressions(t *testing.T) {
	rng := rand.New(rand.NewSource(0x61175C4))
	for i := 0; i < 60; i++ {
		g := &exprGen{rng: rng, vars: []uint32{}}
		expr, want := g.gen(4)
		var decls strings.Builder
		for vi, v := range g.vars {
			fmt.Fprintf(&decls, "unsigned int v%d = %#x;\n", vi, v)
		}
		src := fmt.Sprintf(`
unsigned int out;
%s
void main(void) {
	out = %s;
	halt();
}`, decls.String(), expr)
		img := compile(t, src)
		r, b := run(t, img, 50_000_000)
		if r.Reason != pipeline.StopHit || r.Tag != "halt" {
			t.Fatalf("program %d ended %v/%q fault=%v\nexpr: %s",
				i, r.Reason, r.Tag, r.Fault, expr)
		}
		if got := globalWord(t, img, b, "out"); got != want {
			t.Fatalf("program %d: out = %#x, want %#x\nexpr: %s\nsrc:%s",
				i, got, want, expr, src)
		}
	}
}

// exprGen builds random expressions and their oracle values in lockstep.
type exprGen struct {
	rng  *rand.Rand
	vars []uint32
}

func (g *exprGen) gen(depth int) (string, uint32) {
	if depth == 0 || g.rng.Intn(4) == 0 {
		return g.leaf()
	}
	switch g.rng.Intn(10) {
	case 0: // unary
		x, xv := g.gen(depth - 1)
		switch g.rng.Intn(3) {
		case 0:
			return "(~" + x + ")", ^xv
		case 1:
			if xv == 0 {
				return "(!" + x + ")", 1
			}
			return "(!" + x + ")", 0
		default:
			return "(-" + x + ")", -xv
		}
	default:
		l, lv := g.gen(depth - 1)
		r, rv := g.gen(depth - 1)
		ops := []struct {
			tok  string
			eval func(a, b uint32) uint32
		}{
			{"+", func(a, b uint32) uint32 { return a + b }},
			{"-", func(a, b uint32) uint32 { return a - b }},
			{"*", func(a, b uint32) uint32 { return a * b }},
			{"&", func(a, b uint32) uint32 { return a & b }},
			{"|", func(a, b uint32) uint32 { return a | b }},
			{"^", func(a, b uint32) uint32 { return a ^ b }},
			{"<<", func(a, b uint32) uint32 { return a << (b & 31) }},
			{">>", func(a, b uint32) uint32 { return a >> (b & 31) }},
			{"==", b2u(func(a, b uint32) bool { return a == b })},
			{"!=", b2u(func(a, b uint32) bool { return a != b })},
			{"<", b2u(func(a, b uint32) bool { return a < b })},
			{">", b2u(func(a, b uint32) bool { return a > b })},
			{"<=", b2u(func(a, b uint32) bool { return a <= b })},
			{">=", b2u(func(a, b uint32) bool { return a >= b })},
			{"/", func(a, b uint32) uint32 {
				if b == 0 {
					return 0 // runtime-defined
				}
				return a / b
			}},
			{"%", func(a, b uint32) uint32 {
				if b == 0 {
					return a // runtime-defined: remainder of div-by-zero
				}
				return a % b
			}},
		}
		op := ops[g.rng.Intn(len(ops))]
		if op.tok == "<<" || op.tok == ">>" {
			// Keep shift amounts in range like well-defined C.
			r, rv = fmt.Sprintf("%d", g.rng.Intn(32)), uint32(g.rng.Intn(32))
			// Note: value regenerated; parse r back for the oracle.
			var shift uint32
			fmt.Sscanf(r, "%d", &shift)
			rv = shift
		}
		if (op.tok == "/" || op.tok == "%") && g.rng.Intn(2) == 0 {
			// Mostly divide by small non-zero constants: the subtractive
			// divider is O(quotient).
			d := uint32(g.rng.Intn(9) + 1)
			r, rv = fmt.Sprintf("%d", d), d
		}
		if op.tok == "/" || op.tok == "%" {
			// Bound the dividend so the subtractive runtime stays fast.
			l, lv = fmt.Sprintf("%d", lv%100000), lv%100000
		}
		return "(" + l + " " + op.tok + " " + r + ")", op.eval(lv, rv)
	}
}

func (g *exprGen) leaf() (string, uint32) {
	if len(g.vars) < 4 && g.rng.Intn(2) == 0 {
		v := g.rng.Uint32()
		g.vars = append(g.vars, v)
		return fmt.Sprintf("v%d", len(g.vars)-1), v
	}
	if len(g.vars) > 0 && g.rng.Intn(2) == 0 {
		i := g.rng.Intn(len(g.vars))
		return fmt.Sprintf("v%d", i), g.vars[i]
	}
	v := uint32(g.rng.Intn(1 << 16))
	return fmt.Sprintf("%#x", v), v
}

func b2u(f func(a, b uint32) bool) func(a, b uint32) uint32 {
	return func(a, b uint32) uint32 {
		if f(a, b) {
			return 1
		}
		return 0
	}
}
