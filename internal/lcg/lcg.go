// Package lcg implements the linear congruential generator GlitchResistor's
// random-delay defense uses: the paper specifies "a simple linear
// congruential generator (LCG) with the input parameters used by glibc"
// (Section VI-B1), i.e. glibc's TYPE_0 rand(): state = state*1103515245 +
// 12345 (mod 2^31).
//
// The same generator runs in two places: compiled into the protected
// firmware (emitted by internal/codegen as the __gr_delay runtime) and on
// the host side for tests that predict the firmware's delay schedule.
package lcg

// Parameters of glibc's TYPE_0 rand().
const (
	Multiplier = 1103515245
	Increment  = 12345
	Mask       = 0x7fffffff
)

// LCG is a glibc-parameter linear congruential generator. The zero value is
// a generator seeded with 0.
type LCG struct {
	state uint32
}

// New returns a generator with the given seed.
func New(seed uint32) *LCG {
	return &LCG{state: seed & Mask}
}

// Next advances the generator and returns the next value in [0, 2^31).
func (l *LCG) Next() uint32 {
	l.state = (l.state*Multiplier + Increment) & Mask
	return l.state
}

// State returns the current state without advancing.
func (l *LCG) State() uint32 { return l.state }

// Seed resets the generator state.
func (l *LCG) Seed(seed uint32) { l.state = seed & Mask }

// DelaySlots is the number of distinct delay lengths the defense draws
// from: each invocation executes between 0 and 10 NOPs (paper VI-B1).
const DelaySlots = 11

// Delay returns the next delay length in [0, DelaySlots).
func (l *LCG) Delay() uint32 {
	return l.Next() % DelaySlots
}
