package lcg

import "testing"

func TestKnownSequence(t *testing.T) {
	// The canonical ANSI C / glibc TYPE_0 sequence for seed 1.
	want := []uint32{1103527590, 377401575, 662824084, 1147902781, 2035015474}
	l := New(1)
	for i, w := range want {
		if got := l.Next(); got != w {
			t.Fatalf("Next()#%d = %d, want %d", i, got, w)
		}
	}
}

func TestSeedAndState(t *testing.T) {
	l := New(7)
	if l.State() != 7 {
		t.Fatalf("initial state = %d", l.State())
	}
	first := l.Next()
	l.Seed(7)
	if again := l.Next(); again != first {
		t.Fatalf("reseeded sequence diverges: %d vs %d", again, first)
	}
}

func TestMaskKeeps31Bits(t *testing.T) {
	l := New(0xFFFFFFFF)
	if l.State()>>31 != 0 {
		t.Fatal("seed not masked to 31 bits")
	}
	for i := 0; i < 1000; i++ {
		if v := l.Next(); v>>31 != 0 {
			t.Fatalf("value %d has bit 31 set", v)
		}
	}
}

func TestDelayRange(t *testing.T) {
	l := New(1)
	seen := map[uint32]bool{}
	for i := 0; i < 1000; i++ {
		d := l.Delay()
		if d >= DelaySlots {
			t.Fatalf("delay %d out of range", d)
		}
		seen[d] = true
	}
	// All 11 slots should appear over 1000 draws.
	if len(seen) != DelaySlots {
		t.Errorf("only %d of %d delay slots seen", len(seen), DelaySlots)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var l LCG
	if l.Next() != Increment {
		t.Error("zero-value generator must behave as seed 0")
	}
}
