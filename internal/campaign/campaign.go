// Package campaign implements the paper's Section IV emulation study: it
// exhaustively perturbs each conditional-branch encoding with every possible
// bit mask, executes the resulting program on the Thumb emulator, and
// classifies the outcome into the same taxonomy as Figure 2 (success, bad
// read, invalid instruction, bad fetch, failed, no effect).
package campaign

import (
	"errors"
	"fmt"

	"glitchlab/internal/emu"
	"glitchlab/internal/isa"
	"glitchlab/internal/mutate"
	"glitchlab/internal/obs/profile"
	"glitchlab/internal/runctl"
)

// Outcome classifies a single perturbed execution, matching Figure 2's
// categories.
type Outcome uint8

// Outcomes in the order Figure 2's legends list them.
const (
	Success     Outcome = iota // the guarded (normally skipped) path ran
	BadRead                    // read from unmapped memory
	InvalidInst                // perturbed encoding was not a valid instruction
	BadFetch                   // instruction fetch left mapped memory
	Failed                     // any other error (hang, bad write, trap...)
	NoEffect                   // program behaved as if unmodified
	numOutcomes
)

// NumOutcomes is the number of outcome categories.
const NumOutcomes = int(numOutcomes)

var outcomeNames = [...]string{
	"Success", "Bad Read", "Invalid Instruction", "Bad Fetch",
	"Failed", "No Effect",
}

// String returns the Figure 2 legend name of the outcome.
func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return fmt.Sprintf("outcome%d", uint8(o))
}

// Markers the snippets place in registers, as in the paper: a successful
// glitch leaves 0xdead in R6, a normal execution leaves 0xaaaa in R7.
const (
	SuccessMarker = 0xdead
	NormalMarker  = 0xaaaa
	markerSuccess = isa.R6
	markerNormal  = isa.R7
)

// condSetup returns assembly that establishes flags making the condition
// true, so the branch is architecturally taken in the unmodified program.
func condSetup(c isa.Cond) string {
	switch c {
	case isa.EQ, isa.VC, isa.LS, isa.LE:
		return "movs r0, #0\n cmp r0, #0"
	case isa.NE, isa.CS, isa.PL, isa.GE:
		return "movs r0, #1\n cmp r0, #0"
	case isa.CC, isa.MI, isa.LT:
		return "movs r0, #0\n cmp r0, #1"
	case isa.HI, isa.GT:
		return "movs r0, #2\n cmp r0, #1"
	case isa.VS:
		// 0x80000000 - 1 overflows: N clear, V set.
		return "movs r0, #1\n lsls r0, r0, #31\n cmp r0, #1"
	default:
		return "movs r0, #0\n cmp r0, #0"
	}
}

// Snippet returns the paper-style test program for one conditional branch:
// the branch is taken under normal execution; the fall-through path (the
// code a glitch would illegitimately execute) builds the success marker.
func Snippet(c isa.Cond) string {
	return condSetup(c) + "\n" +
		"	b" + c.String() + " taken\n" +
		"	movs r6, #0xde\n" +
		"	lsls r6, r6, #8\n" +
		"	adds r6, #0xad\n" +
		"	b end\n" +
		"taken:\n" +
		"	movs r7, #0xaa\n" +
		"	lsls r7, r7, #8\n" +
		"	adds r7, #0xaa\n" +
		"end:\n" +
		"	nop\n"
}

// PaddedSnippet is Snippet with permanently-undefined (UDF) words filling
// every position straight-line execution does not reach: behind the
// unconditional branch, around the landing pads, and after the stop
// address. It tests the paper's second ISA-hardening hypothesis from
// Section IV — "adding invalid instructions in between valid instructions
// would likely thwart many glitching attempts" — which the paper could
// not evaluate without fabricating a chip, but emulation can.
func PaddedSnippet(c isa.Cond) string {
	return condSetup(c) + "\n" +
		"	b" + c.String() + " taken\n" +
		"	movs r6, #0xde\n" +
		"	lsls r6, r6, #8\n" +
		"	adds r6, #0xad\n" +
		"	b end\n" +
		"	udf 0\n	udf 0\n	udf 0\n	udf 0\n" +
		"taken:\n" +
		"	movs r7, #0xaa\n" +
		"	lsls r7, r7, #8\n" +
		"	adds r7, #0xaa\n" +
		"	b end\n" +
		"	udf 0\n	udf 0\n	udf 0\n	udf 0\n" +
		"end:\n" +
		"	nop\n" +
		"	udf 0\n	udf 0\n	udf 0\n	udf 0\n" +
		"	udf 0\n	udf 0\n	udf 0\n	udf 0\n"
}

// Target memory layout for campaign programs. Flash is a single small
// page, as in the paper's Unicorn setup: corrupted branches whose targets
// leave the page raise a bad fetch (conditional-branch range is +-256
// bytes, so a 256-byte page makes out-of-page targets reachable).
const (
	flashBase = 0x0000_0000
	flashSize = 0x100
	ramBase   = 0x2000_0000
	ramSize   = 0x1000
	stackTop  = ramBase + ramSize
	maxSteps  = 512
)

// Runner executes mutation campaigns for one conditional branch.
//
// The runner replays every mutated execution from a snapshot taken at the
// branch under test (the trigger point): the harness prologue — condition
// setup through the instruction before the branch — is architecturally
// identical across all 65536 mutations of the branch halfword, so it is
// simulated once in newRunner and each execution restores the captured
// registers/flags/counters plus any dirtied RAM pages and runs only the
// glitched window. Outcomes, retired-step counts and post-mortem registers
// are byte-identical to running the whole program from reset (the replay
// equivalence tests pin this); FullRun switches back to from-reset runs
// for verification.
type Runner struct {
	cond       isa.Cond
	prog       *isa.Program
	branchAddr uint32
	branchOff  uint32 // offset of the branch halfword in prog.Code
	original   uint16
	stop       uint32
	cpu        *emu.CPU
	mem        *emu.Memory
	flash      *emu.Region

	snap    emu.CPUState     // CPU state at the branch, post-prologue
	memSnap *emu.MemSnapshot // RAM copy at the branch, dirty-page tracked

	// memo caches outcomes per mutated word (ARMORY-style convergence
	// pruning, ROADMAP item 2c at word granularity): under replay every
	// execution of the same word starts from the identical snapshot, so
	// its outcome is a pure function of the word. Only the bare path uses
	// it — observed or profiled runs execute every mask for real, so
	// traces, histograms and phase attribution are never synthesized.
	memo []uint8 // word -> Outcome+1; 0 = not yet simulated

	// FullRun disables trigger-point replay and memoization: every
	// execution reruns the prologue from reset. Results are identical
	// either way; the flag exists so CI can prove that cheaply.
	FullRun bool

	// Obs instruments every execution when non-nil; the nil default keeps
	// the sweep hot path bare.
	Obs *Observer

	// Prof, when non-nil, samples phase attribution: one execution in
	// every profile.DefaultSample (or the profile's own interval) is
	// timed through assemble/execute/classify with the decode share
	// split out by calibrated unit cost. The unsampled path pays one
	// plain increment.
	Prof *profile.Shard
}

// NewRunner assembles the snippet for cond and prepares an emulator.
// zeroInvalid applies Figure 2c's hypothetical ISA hardening, where the
// all-zero encoding is an invalid instruction.
func NewRunner(cond isa.Cond, zeroInvalid bool) (*Runner, error) {
	return newRunner(cond, Snippet(cond), zeroInvalid)
}

// NewPaddedRunner builds a runner over PaddedSnippet, the Section IV
// UDF-interleaving hardening experiment.
func NewPaddedRunner(cond isa.Cond, zeroInvalid bool) (*Runner, error) {
	return newRunner(cond, PaddedSnippet(cond), zeroInvalid)
}

func newRunner(cond isa.Cond, src string, zeroInvalid bool) (*Runner, error) {
	prog, err := isa.Assemble(flashBase, src)
	if err != nil {
		return nil, fmt.Errorf("campaign: assemble %v snippet: %w", cond, err)
	}
	stop, ok := prog.SymbolAddr("end")
	if !ok {
		return nil, errors.New("campaign: snippet has no end label")
	}
	// The branch under test is the instruction before the success path,
	// i.e. the first b<cond>. Find it by decoding.
	var branchAddr uint32
	found := false
	for _, addr := range prog.InstAddrs {
		off := addr - flashBase
		hw := uint16(prog.Code[off]) | uint16(prog.Code[off+1])<<8
		in := isa.Decode(hw, 0)
		if in.Op == isa.OpBCond && in.Cond == cond {
			branchAddr = addr
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("campaign: no b%v in snippet", cond)
	}

	mem := emu.NewMemory()
	flash, err := mem.Map("flash", flashBase, flashSize, emu.PermRead|emu.PermExec)
	if err != nil {
		return nil, err
	}
	if _, err := mem.Map("ram", ramBase, ramSize, emu.PermRead|emu.PermWrite); err != nil {
		return nil, err
	}
	if err := mem.Write(flashBase, prog.Code); err != nil {
		return nil, err
	}
	off := branchAddr - flashBase
	r := &Runner{
		cond:       cond,
		prog:       prog,
		branchAddr: branchAddr,
		branchOff:  off,
		original:   uint16(prog.Code[off]) | uint16(prog.Code[off+1])<<8,
		stop:       stop,
		cpu:        emu.New(mem),
		mem:        mem,
		flash:      flash,
	}
	r.cpu.ZeroIsInvalid = zeroInvalid

	// Run the harness prologue once and snapshot at the branch: cpu.Run
	// stops when PC reaches the branch address, before the (to-be-mutated)
	// branch itself executes. The prologue is pure register/flag setup, so
	// this cannot fault; a step-limit error would mean the snippet changed
	// shape and is a programming error.
	r.cpu.Reset(stackTop, flashBase)
	if err := r.cpu.Run(branchAddr, maxSteps); err != nil {
		return nil, fmt.Errorf("campaign: %v prologue failed: %w", cond, err)
	}
	r.snap = r.cpu.State()
	r.memSnap = mem.Snapshot()
	return r, nil
}

// BranchEncoding returns the unperturbed encoding of the branch under test.
func (r *Runner) BranchEncoding() uint16 { return r.original }

// RunOne executes the snippet with the branch halfword replaced by word and
// classifies the result. The pristine image is restored before returning —
// even if the execution panics — so callers can interleave RunOne with
// direct flash inspection.
func (r *Runner) RunOne(word uint16) Outcome {
	defer r.restoreBranch()
	out, _ := r.runOne(word)
	return out
}

// restoreBranch puts the unperturbed branch encoding back into flash. The
// sweep loop mutates flash directly (bypassing the CPU store path, so
// dirty-page tracking cannot see it); every unit of work defers exactly
// one restoreBranch so a panicking execution — quarantined and resumed by
// runctl — can never leak a corrupted image into later executions.
func (r *Runner) restoreBranch() {
	r.flash.Data[r.branchOff] = byte(r.original)
	r.flash.Data[r.branchOff+1] = byte(r.original >> 8)
}

// runOne executes one mutation and additionally returns the raising fault
// (nil for clean or hung executions), which the observer records as the
// trace fault class. It deliberately does NOT restore the branch halfword:
// the next mutation overwrites it anyway, and the enclosing unit of work
// (sweepFlips, RunOne) holds the single deferred restoreBranch that makes
// restoration panic-safe without a per-execution defer closure.
func (r *Runner) runOne(word uint16) (Outcome, *emu.Fault) {
	if r.Prof.Sample() {
		return r.runOneProfiled(word)
	}
	// Memoization would falsify observation and attribution: observed runs
	// must produce a real trace record per mask, and a profiler's sampled
	// executions extrapolate over the unsampled ones, which must therefore
	// cost the same. Both modes run every mask for real.
	memo := !r.FullRun && r.Obs == nil && r.Prof == nil
	if memo {
		if r.memo == nil {
			r.memo = make([]uint8, 1<<16)
		} else if o := r.memo[word]; o != 0 {
			return Outcome(o - 1), nil
		}
	}
	r.flash.Data[r.branchOff] = byte(word)
	r.flash.Data[r.branchOff+1] = byte(word >> 8)
	out, fault := r.execute()
	if memo {
		r.memo[word] = uint8(out) + 1
	}
	return out, fault
}

// execute runs the mutated image — from the trigger-point snapshot, or
// from reset when FullRun — and classifies the result.
func (r *Runner) execute() (Outcome, *emu.Fault) {
	var err error
	if r.FullRun {
		r.cpu.Reset(stackTop, flashBase)
		err = r.cpu.Run(r.stop, maxSteps)
	} else {
		r.cpu.SetState(r.snap)
		r.memSnap.Restore()
		err = r.cpu.Run(r.stop, maxSteps-r.snap.Steps)
	}
	return classify(r.cpu, err)
}

// runOneProfiled is runOne with phase timing: the mutated-image write plus
// snapshot restore (or CPU reset under FullRun) is the assemble phase, the
// emulator run the execute phase (with the decode share split out by
// calibrated unit cost times the instructions this run actually retired,
// capped by the measured run time), and outcome classification the
// classify phase. Only sampled executions come here; memoization never
// does — a profiled sample must measure a real execution.
func (r *Runner) runOneProfiled(word uint16) (Outcome, *emu.Fault) {
	t := r.Prof.Start()
	r.flash.Data[r.branchOff] = byte(word)
	r.flash.Data[r.branchOff+1] = byte(word >> 8)
	var err error
	if r.FullRun {
		r.cpu.Reset(stackTop, flashBase)
		t.Mark(profile.PhaseAssemble)
		err = r.cpu.Run(r.stop, maxSteps)
	} else {
		r.cpu.SetState(r.snap)
		r.memSnap.Restore()
		t.Mark(profile.PhaseAssemble)
		err = r.cpu.Run(r.stop, maxSteps-r.snap.Steps)
	}
	execNs := t.Mark(profile.PhaseExecute)
	out, fault := classify(r.cpu, err)
	t.Mark(profile.PhaseClassify)
	steps := r.cpu.Steps
	if !r.FullRun {
		steps -= r.snap.Steps // only the replayed window was decoded
	}
	r.Prof.Split(profile.PhaseExecute, profile.PhaseDecode,
		r.Prof.DecodeEst(steps), execNs)
	return out, fault
}

func classify(c *emu.CPU, err error) (Outcome, *emu.Fault) {
	if err != nil {
		// Run returns bare *emu.Fault values; the type assertion keeps the
		// per-execution path off errors.As's reflection (which profiled at
		// a measurable share of whole campaigns). The errors.As fallback
		// stays for wrapped errors from future callers.
		fault, ok := err.(*emu.Fault)
		if !ok && !errors.As(err, &fault) {
			return Failed, nil // step limit or other unrecognized error
		}
		switch fault.Kind {
		case emu.FaultBadRead:
			return BadRead, fault
		case emu.FaultBadFetch:
			return BadFetch, fault
		case emu.FaultInvalidInst, emu.FaultUndefined:
			return InvalidInst, fault
		default:
			return Failed, fault
		}
	}
	switch {
	case c.R[markerSuccess] == SuccessMarker:
		return Success, nil
	case c.R[markerNormal] == NormalMarker:
		return NoEffect, nil
	default:
		return Failed, nil
	}
}

// FlipResult accumulates outcome counts for one flip count k.
type FlipResult struct {
	Flips  int // number of bits flipped (k)
	Counts [NumOutcomes]uint64
	Total  uint64
}

// SuccessRate returns the fraction of runs classified Success.
func (f FlipResult) SuccessRate() float64 {
	if f.Total == 0 {
		return 0
	}
	return float64(f.Counts[Success]) / float64(f.Total)
}

// CondResult holds the full sweep for one conditional branch.
type CondResult struct {
	Cond    isa.Cond
	Model   mutate.Model
	ByFlips []FlipResult // index k = 0..16
	Totals  [NumOutcomes]uint64
	Runs    uint64
}

// SuccessRate returns the overall success fraction across all masks with at
// least one flipped bit (k=0 is the unmodified control and excluded, as in
// the paper's figure).
func (c CondResult) SuccessRate() float64 {
	var succ, total uint64
	for k := 1; k < len(c.ByFlips); k++ {
		succ += c.ByFlips[k].Counts[Success]
		total += c.ByFlips[k].Total
	}
	if total == 0 {
		return 0
	}
	return float64(succ) / float64(total)
}

// Sweep runs the exhaustive mutation campaign for one condition under one
// model. maxFlips bounds k (pass 16 for the full sweep; smaller values give
// proportionally cheaper partial sweeps for benchmarks).
func (r *Runner) Sweep(model mutate.Model, maxFlips int) CondResult {
	if maxFlips > 16 {
		maxFlips = 16
	}
	if r.Obs != nil {
		r.Obs.attach(r.cpu)
		defer r.Obs.flush()
		defer r.Obs.span("campaign.sweep", map[string]any{
			"cond": "b" + r.cond.String(), "model": model.String(),
		}).End()
	}
	res := CondResult{Cond: r.cond, Model: model}
	for k := 0; k <= maxFlips; k++ {
		res.merge(r.sweepFlips(model, k))
	}
	return res
}

// sweepFlips runs every mask of one flip count — the unit of work the
// parallel campaign engine shards by. The single deferred restoreBranch
// is what makes mutation restore panic-safe: each execution's flash write
// overwrites the previous one, so only the last mutation is ever live, and
// the defer runs during unwinding before runctl's Protect recovers — a
// quarantined unit can never leave a corrupted image behind.
func (r *Runner) sweepFlips(model mutate.Model, k int) FlipResult {
	defer r.restoreBranch()
	fr := FlipResult{Flips: k}
	mutate.Masks(16, k, func(mask uint16) bool {
		word := model.Apply(r.original, mask)
		out, fault := r.runOne(word)
		fr.Counts[out]++
		fr.Total++
		if r.Obs != nil {
			r.Obs.record(r, model, k, mask, word, out, fault)
		}
		return true
	})
	return fr
}

// merge appends one flip count's results. FlipResults must arrive in
// ascending-k order, which is what makes sharded sweeps byte-identical to
// serial ones after the ordered merge.
func (c *CondResult) merge(fr FlipResult) {
	for o, n := range fr.Counts {
		c.Totals[o] += n
	}
	c.Runs += fr.Total
	c.ByFlips = append(c.ByFlips, fr)
}

// Config selects a Figure 2 campaign variant.
type Config struct {
	Model       mutate.Model
	ZeroInvalid bool // Figure 2c: treat all-zero encoding as invalid
	PadUDF      bool // Section IV hypothesis: UDF-fill unreachable slots
	MaxFlips    int  // bound on flipped bits (16 = exhaustive)

	// FullRun disables trigger-point snapshot replay (and the word-level
	// outcome memoization that depends on it): every mutated execution
	// reruns the harness prologue from reset. Results are byte-identical
	// either way — the ci.sh replay gate cmp-proves it — so the flag is
	// excluded from the runctl config hash, like Workers.
	FullRun bool

	// Workers shards the campaign across goroutines by (condition,
	// flip-count) work units; each unit runs on its own emulator, and the
	// merge preserves BranchConds/ascending-k order, so results are
	// byte-identical to a serial run. <= 1 runs serially.
	Workers int

	// Obs, when non-nil, instruments every execution of the campaign
	// (counters, steps histogram, progress ticks, trace records). Parallel
	// campaigns record through per-worker shards of this observer; counter
	// totals match the serial numbers exactly.
	Obs *Observer

	// Profile, when non-nil, attributes the campaign's cost to execution
	// phases by sampling (see internal/obs/profile): every worker records
	// into its own shard and the wall-clock bracket spans exactly this
	// Run call, so Profile.Report's coverage check is meaningful. The
	// same Profile may accumulate several Run calls.
	Profile *profile.Profile

	// Run, when non-nil, is the run controller: cancellation is checked
	// between (condition, flip-count) work units, every completed unit is
	// checkpointed (and skipped on resume), and a panicking unit is
	// quarantined instead of crashing the campaign. nil keeps the bare
	// library behavior: no checkpoints, panics propagate.
	Run *runctl.Run
}

// unitKey names one (condition, flip-count) work unit in the checkpoint.
// The campaign variant is part of the key, so several variants (e.g.
// glitchemu's four Figure 2 configurations) can share one run directory.
func (cfg Config) unitKey(cond isa.Cond, k int) string {
	return fmt.Sprintf("campaign model=%s zero=%t pad=%t cond=b%v k=%d",
		cfg.Model, cfg.ZeroInvalid, cfg.PadUDF, cond, k)
}

// PlannedRuns returns the number of executions a campaign over all
// conditional branches will perform — the progress denominator.
func PlannedRuns(maxFlips int) uint64 {
	if maxFlips <= 0 || maxFlips > 16 {
		maxFlips = 16
	}
	var perCond uint64
	for k := 0; k <= maxFlips; k++ {
		perCond += mutate.Binomial(16, k)
	}
	return perCond * uint64(len(isa.BranchConds()))
}

// Run executes the campaign for every conditional branch and returns
// results in the BranchConds order. Before returning it asserts the
// outcome accounting invariant on every result, so rendered totals and
// observer counters can never drift apart silently.
//
// With cfg.Run set, an interrupted campaign returns the conditions whose
// units all completed, together with an error wrapping runctl.ErrInterrupted;
// a campaign with quarantined (panicked) units returns the clean conditions
// plus a *runctl.QuarantineError naming the poisoned units. Both kinds of
// partial result sets skip the accounting check — it holds only for
// complete sweeps.
func Run(cfg Config) ([]CondResult, error) {
	if cfg.MaxFlips <= 0 {
		cfg.MaxFlips = 16
	}
	if cfg.Obs != nil {
		cfg.Obs.setTotal(PlannedRuns(cfg.MaxFlips))
		defer cfg.Obs.finish()
		defer cfg.Obs.span("campaign.run", map[string]any{
			"model":        cfg.Model.String(),
			"zero_invalid": cfg.ZeroInvalid,
			"pad_udf":      cfg.PadUDF,
			"max_flips":    cfg.MaxFlips,
			"workers":      cfg.Workers,
		}).End()
	}
	cfg.Profile.Begin()
	defer cfg.Profile.End()
	var results []CondResult
	var err error
	if cfg.Workers > 1 {
		results, err = runParallel(cfg)
	} else {
		results, err = runSerial(cfg)
	}
	if err != nil {
		return results, err
	}
	if err := cfg.Run.FinishErr(); err != nil {
		return results, err
	}
	if err := VerifyAccounting(results); err != nil {
		return nil, err
	}
	return results, nil
}

// newRunnerFor builds the campaign variant's runner for one condition.
func newRunnerFor(cfg Config, cond isa.Cond) (*Runner, error) {
	var r *Runner
	var err error
	if cfg.PadUDF {
		r, err = NewPaddedRunner(cond, cfg.ZeroInvalid)
	} else {
		r, err = NewRunner(cond, cfg.ZeroInvalid)
	}
	if r != nil {
		r.FullRun = cfg.FullRun
	}
	return r, err
}

// runSerial walks the campaign one (condition, flip-count) unit at a time
// — the same work units the parallel engine shards by, so checkpoints are
// interchangeable between serial and parallel runs and the merge order
// (BranchConds, then ascending k) is identical.
func runSerial(cfg Config) ([]CondResult, error) {
	rn := cfg.Run
	conds := isa.BranchConds()
	psh := cfg.Profile.Shard()
	defer psh.Flush()
	results := make([]CondResult, 0, len(conds))
	for _, cond := range conds {
		res := CondResult{Cond: cond, Model: cfg.Model}
		var r *Runner
		condOK := true
		for k := 0; k <= cfg.MaxFlips; k++ {
			if err := rn.Err(); err != nil {
				return results, err
			}
			key := cfg.unitKey(cond, k)
			var fr FlipResult
			if rn.Lookup(key, &fr) {
				res.merge(fr)
				continue
			}
			if r == nil {
				var err error
				if r, err = newRunnerFor(cfg, cond); err != nil {
					return nil, err
				}
				r.Obs = cfg.Obs
				r.Prof = psh
				if cfg.Obs != nil {
					cfg.Obs.attach(r.cpu)
				}
			}
			err := rn.Protect(key, func() error {
				fr = r.sweepFlips(cfg.Model, k)
				return rn.Complete(key, fr)
			})
			var pe *runctl.PanicError
			if errors.As(err, &pe) {
				// The unit is quarantined and the emulator may be wedged
				// mid-execution: rebuild the runner for the next unit and
				// leave this condition out of the merged results.
				r = nil
				condOK = false
				continue
			}
			if err != nil {
				return nil, err
			}
			res.merge(fr)
		}
		cfg.Obs.flush()
		if condOK {
			results = append(results, res)
		}
	}
	return results, nil
}

// CheckAccounting verifies the result's internal bookkeeping: every
// FlipResult's per-outcome counts sum to the number of masks tried for
// that flip count (C(16, k)), the outcome totals equal the per-k sums,
// and Runs equals the grand total. This is the invariant that keeps
// observer counters and Figure 2 totals in lockstep.
func (c CondResult) CheckAccounting() error {
	var totals [NumOutcomes]uint64
	var runs uint64
	for _, fr := range c.ByFlips {
		var sum uint64
		for o, n := range fr.Counts {
			sum += n
			totals[o] += n
		}
		if sum != fr.Total {
			return fmt.Errorf("campaign: b%v k=%d outcome counts sum to %d, %d masks tried",
				c.Cond, fr.Flips, sum, fr.Total)
		}
		if want := mutate.Binomial(16, fr.Flips); fr.Total != want {
			return fmt.Errorf("campaign: b%v k=%d tried %d masks, want C(16,%d)=%d",
				c.Cond, fr.Flips, fr.Total, fr.Flips, want)
		}
		runs += fr.Total
	}
	if totals != c.Totals {
		return fmt.Errorf("campaign: b%v outcome totals %v drifted from per-k sums %v",
			c.Cond, c.Totals, totals)
	}
	if runs != c.Runs {
		return fmt.Errorf("campaign: b%v runs=%d but per-k totals sum to %d",
			c.Cond, c.Runs, runs)
	}
	return nil
}

// VerifyAccounting checks the accounting invariant across a whole campaign.
func VerifyAccounting(results []CondResult) error {
	for _, res := range results {
		if err := res.CheckAccounting(); err != nil {
			return err
		}
	}
	return nil
}
