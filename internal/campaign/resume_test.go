package campaign

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"glitchlab/internal/isa"
	"glitchlab/internal/mutate"
	"glitchlab/internal/runctl"
)

func resumeManifest() runctl.Manifest {
	return runctl.Manifest{Tool: "campaign-test", ConfigHash: "sha256:test", Seed: 1}
}

// TestResumeByteIdentical is the crash/resume equivalence property test:
// a sharded campaign killed by injected cancellation after a random prefix
// of completed work units, then resumed from its checkpoint (with a
// different worker count, to prove the checkpoint is schedule-independent),
// must produce results deeply equal to an uninterrupted serial run.
func TestResumeByteIdentical(t *testing.T) {
	maxFlips, trials := 5, 3
	if testing.Short() {
		maxFlips, trials = 3, 2
	}
	cfg := func(workers int) Config {
		return Config{Model: mutate.AND, MaxFlips: maxFlips, Workers: workers}
	}
	baseline, err := Run(cfg(1))
	if err != nil {
		t.Fatal(err)
	}
	totalUnits := len(isa.BranchConds()) * (maxFlips + 1)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < trials; trial++ {
		dir := t.TempDir()
		killAfter := 1 + rng.Intn(totalUnits-1)
		interruptedWorkers := 3
		if trial%2 == 1 {
			interruptedWorkers = 1 // serial runs share the same checkpoint units
		}

		ctx, cancel := context.WithCancel(context.Background())
		rn, err := runctl.Open(ctx, dir, resumeManifest(), false)
		if err != nil {
			t.Fatal(err)
		}
		var done atomic.Int64
		rn.Hooks.AfterUnit = func(string) {
			if done.Add(1) == int64(killAfter) {
				cancel()
			}
		}
		icfg := cfg(interruptedWorkers)
		icfg.Run = rn
		partial, runErr := Run(icfg)
		cancel()
		if err := rn.Close(); err != nil {
			t.Fatal(err)
		}
		if !errors.Is(runErr, runctl.ErrInterrupted) {
			t.Fatalf("trial %d: killed run returned %v, want ErrInterrupted", trial, runErr)
		}
		if len(partial) >= len(baseline) {
			t.Fatalf("trial %d: interrupted run returned %d conds, want fewer than %d",
				trial, len(partial), len(baseline))
		}

		rn2, err := runctl.Open(context.Background(), dir, resumeManifest(), true)
		if err != nil {
			t.Fatal(err)
		}
		if rn2.Loaded() < killAfter {
			t.Fatalf("trial %d: checkpoint lost units: loaded %d, completed at least %d",
				trial, rn2.Loaded(), killAfter)
		}
		rcfg := cfg(2)
		rcfg.Run = rn2
		resumed, err := Run(rcfg)
		if err != nil {
			t.Fatalf("trial %d: resume failed: %v", trial, err)
		}
		if err := rn2.Close(); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(resumed, baseline) {
			t.Fatalf("trial %d (killed after %d units, %d workers): resumed results differ from uninterrupted run",
				trial, killAfter, interruptedWorkers)
		}
	}
}

// TestPanicQuarantine is the panic-isolation regression test: one poisoned
// work unit must yield a quarantine record and a QuarantineError naming
// it — not a process crash — while every other condition completes; a
// resume without the fault retries the unit and recovers the full results.
func TestPanicQuarantine(t *testing.T) {
	const poisoned = "cond=beq k=2"
	cfg := func(workers int) Config {
		return Config{Model: mutate.AND, MaxFlips: 3, Workers: workers}
	}
	baseline, err := Run(cfg(1))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	rn, err := runctl.Open(context.Background(), dir, resumeManifest(), false)
	if err != nil {
		t.Fatal(err)
	}
	rn.Hooks.BeforeUnit = func(unit string) {
		if strings.Contains(unit, poisoned) {
			panic("injected fault")
		}
	}
	pcfg := cfg(3)
	pcfg.Run = rn
	results, err := Run(pcfg)
	var qe *runctl.QuarantineError
	if !errors.As(err, &qe) {
		t.Fatalf("poisoned run returned %v, want QuarantineError", err)
	}
	if len(qe.Units) != 1 || !strings.Contains(qe.Units[0].Unit, poisoned) {
		t.Fatalf("quarantine = %+v, want exactly the poisoned unit", qe.Units)
	}
	if !strings.Contains(err.Error(), poisoned) {
		t.Fatalf("error must name the poisoned unit: %v", err)
	}
	if len(results) != len(baseline)-1 {
		t.Fatalf("poisoned run returned %d conds, want all but one (%d)",
			len(results), len(baseline)-1)
	}
	for _, res := range results {
		if res.Cond == isa.EQ {
			t.Fatal("the poisoned condition must be excluded from the results")
		}
	}
	if err := rn.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume without the fault: the quarantined unit reruns cleanly.
	rn2, err := runctl.Open(context.Background(), dir, resumeManifest(), true)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := cfg(2)
	rcfg.Run = rn2
	resumed, err := Run(rcfg)
	if err != nil {
		t.Fatalf("resume after quarantine failed: %v", err)
	}
	if err := rn2.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, baseline) {
		t.Fatal("resumed results differ from uninterrupted run")
	}
}
