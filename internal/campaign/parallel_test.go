package campaign

import (
	"reflect"
	"sync/atomic"
	"testing"

	"glitchlab/internal/mutate"
	"glitchlab/internal/obs"
)

// runBoth executes the same campaign serially and with the given worker
// count, each against its own registry-backed observer, and returns both
// sides for comparison.
func runBoth(t *testing.T, cfg Config, workers int) (serial, parallel []CondResult, sreg, preg *obs.Registry) {
	t.Helper()
	sreg, preg = obs.NewRegistry(), obs.NewRegistry()

	scfg := cfg
	scfg.Workers = 1
	scfg.Obs = NewObserver(sreg, nil)
	serial, err := Run(scfg)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}

	pcfg := cfg
	pcfg.Workers = workers
	pcfg.Obs = NewObserver(preg, nil)
	parallel, err = Run(pcfg)
	if err != nil {
		t.Fatalf("parallel run (workers=%d): %v", workers, err)
	}
	return serial, parallel, sreg, preg
}

// TestParallelMatchesSerial is the campaign's golden-equivalence contract:
// a sharded run must reproduce the serial results field for field — same
// conditions in the same order, same per-flip-count outcome counts — and
// its observer must land on the identical registry state (counters,
// histogram buckets and sums included).
func TestParallelMatchesSerial(t *testing.T) {
	for _, variant := range []Config{
		{Model: mutate.AND, MaxFlips: 3},
		{Model: mutate.OR, MaxFlips: 2, ZeroInvalid: true},
		{Model: mutate.XOR, MaxFlips: 2, PadUDF: true},
	} {
		serial, parallel, sreg, preg := runBoth(t, variant, 4)
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("%v variant: parallel results differ from serial", variant.Model)
		}
		if ss, ps := sreg.Snapshot(), preg.Snapshot(); !reflect.DeepEqual(ss, ps) {
			t.Errorf("%v variant: parallel observer state differs from serial:\n%s\nvs\n%s",
				variant.Model, ss.Text(), ps.Text())
		}
	}
}

// TestParallelMoreWorkersThanUnits covers the degenerate split where the
// worker count exceeds the number of (condition, flip-count) units.
func TestParallelMoreWorkersThanUnits(t *testing.T) {
	serial, parallel, _, _ := runBoth(t, Config{Model: mutate.AND, MaxFlips: 1}, 64)
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("parallel results differ from serial with surplus workers")
	}
}

// TestParallelObserverAccounting hammers the sharded engine with an
// attached observer and frequent progress ticks (run under -race in CI):
// accounting must hold, the counters must add up to the planned totals,
// and the progress callback must observe the final done == total tick.
func TestParallelObserverAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	o := NewObserver(reg, nil)
	var lastDone, ticks atomic.Uint64
	o.OnProgress(8, func(done, total uint64) {
		ticks.Add(1)
		lastDone.Store(done)
		if total != PlannedRuns(2) {
			t.Errorf("progress total = %d, want %d", total, PlannedRuns(2))
		}
	})
	results, err := Run(Config{Model: mutate.AND, MaxFlips: 2, Workers: 8, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAccounting(results); err != nil {
		t.Fatal(err)
	}
	want := PlannedRuns(2)
	if got := reg.Counter(MetricRuns).Value(); got != want {
		t.Errorf("%s = %d, want %d", MetricRuns, got, want)
	}
	nConds := uint64(len(results))
	if got := reg.Counter(MetricControls).Value(); got != nConds {
		t.Errorf("%s = %d, want %d", MetricControls, got, nConds)
	}
	var outcomes uint64
	for i := 0; i < NumOutcomes; i++ {
		outcomes += reg.Counter(OutcomeMetric(Outcome(i))).Value()
	}
	if outcomes != want-nConds {
		t.Errorf("outcome counters sum to %d, want %d (runs minus controls)", outcomes, want-nConds)
	}
	if ticks.Load() == 0 {
		t.Error("progress callback never fired")
	}
	if got := lastDone.Load(); got != want {
		t.Errorf("final progress tick done = %d, want %d", got, want)
	}
}

// TestRunNilObs is the regression test for the unguarded setTotal call:
// a campaign with no observer must run clean both serially and sharded.
func TestRunNilObs(t *testing.T) {
	for _, workers := range []int{1, 4} {
		results, err := Run(Config{Model: mutate.AND, MaxFlips: 1, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := VerifyAccounting(results); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
}
