package campaign

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"glitchlab/internal/isa"
	"glitchlab/internal/mutate"
	"glitchlab/internal/obs/profile"
	"glitchlab/internal/runctl"
)

// TestReplayMatchesFullRunPerWord is the strongest form of the replay
// equivalence claim: for every one of the 65536 possible branch words, a
// trigger-point replay must classify the execution identically to a
// from-reset full run AND leave the emulator in the same architectural
// state (registers, flags, PC, retired-step and cycle counters) — the
// state the observer's trace records are built from. Each word is executed
// exactly once per runner, so the outcome memo never synthesizes a result
// and the comparison always sees a live execution.
func TestReplayMatchesFullRunPerWord(t *testing.T) {
	conds := []isa.Cond{isa.EQ, isa.GT}
	if testing.Short() {
		conds = conds[:1]
	}
	for _, cond := range conds {
		for _, pad := range []bool{false, true} {
			newR := func() (*Runner, error) {
				if pad {
					return NewPaddedRunner(cond, false)
				}
				return NewRunner(cond, false)
			}
			replay, err := newR()
			if err != nil {
				t.Fatal(err)
			}
			full, err := newR()
			if err != nil {
				t.Fatal(err)
			}
			full.FullRun = true
			for w := 0; w < 1<<16; w++ {
				word := uint16(w)
				ro := replay.RunOne(word)
				fo := full.RunOne(word)
				if ro != fo {
					t.Fatalf("b%v pad=%t word %#04x: replay=%v full=%v",
						cond, pad, word, ro, fo)
				}
				if rs, fs := replay.cpu.State(), full.cpu.State(); rs != fs {
					t.Fatalf("b%v pad=%t word %#04x: post-run CPU state diverged:\nreplay %+v\nfull   %+v",
						cond, pad, word, rs, fs)
				}
			}
		}
	}
}

// TestReplayMatchesFullRunCampaign pins whole-campaign equivalence across
// every conditional branch and both execution engines: replayed campaigns
// (serial and sharded) must be deeply equal to full-run campaigns, for the
// plain and UDF-padded variants. This is what lets FullRun default to off
// everywhere without any golden file changing.
func TestReplayMatchesFullRunCampaign(t *testing.T) {
	maxFlips := 4
	if testing.Short() {
		maxFlips = 3
	}
	for _, model := range []mutate.Model{mutate.AND, mutate.OR} {
		for _, pad := range []bool{false, true} {
			base := Config{Model: model, PadUDF: pad, MaxFlips: maxFlips}

			fullCfg := base
			fullCfg.FullRun = true
			want, err := Run(fullCfg)
			if err != nil {
				t.Fatal(err)
			}

			replayCfg := base
			got, err := Run(replayCfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("model=%v pad=%t: serial replay campaign differs from full-run campaign",
					model, pad)
			}

			parCfg := base
			parCfg.Workers = 4
			got, err = Run(parCfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("model=%v pad=%t: sharded replay campaign differs from full-run campaign",
					model, pad)
			}
		}
	}
}

// panicHookRunner builds a runner whose OnExec hook panics the first time
// the (mutated) branch executes, simulating an emulator bug mid-execution.
func panicHookRunner(t *testing.T) *Runner {
	t.Helper()
	r, err := NewRunner(isa.EQ, false)
	if err != nil {
		t.Fatal(err)
	}
	armed := true
	r.cpu.Hooks.OnExec = func(addr uint32, _ isa.Inst) {
		if armed && addr == r.branchAddr {
			armed = false
			panic("injected emulator fault")
		}
	}
	return r
}

// checkPristine asserts the branch halfword in flash is the unperturbed
// encoding.
func checkPristine(t *testing.T, r *Runner, path string) {
	t.Helper()
	got := uint16(r.flash.Data[r.branchOff]) | uint16(r.flash.Data[r.branchOff+1])<<8
	if got != r.original {
		t.Fatalf("%s: flash holds %#04x after recovered panic, want pristine %#04x",
			path, got, r.original)
	}
}

// TestPanicRestoresPristineImageProfiled is the mutation-restore regression
// test for the profiled path: a panic raised mid-execution (from a CPU
// hook) while a sampled, profiled execution is running must not leak the
// mutated branch halfword into flash once runctl's Protect has recovered
// the unit. The pre-fix runOneProfiled restored the halfword only on the
// non-panicking path, so this test fails against it.
func TestPanicRestoresPristineImageProfiled(t *testing.T) {
	r := panicHookRunner(t)
	p := profile.New(1) // every execution sampled -> profiled path
	r.Prof = p.Shard()

	rn, err := runctl.Open(context.Background(), t.TempDir(), resumeManifest(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer rn.Close()
	err = rn.Protect("campaign-test poisoned unit", func() error {
		r.sweepFlips(mutate.AND, 1)
		return nil
	})
	var pe *runctl.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Protect returned %v, want PanicError", err)
	}
	checkPristine(t, r, "profiled sweep")
}

// TestPanicRestoresPristineImageBare covers the same invariant on the
// unprofiled paths, which now share the unit-level deferred restore instead
// of a per-execution defer closure: both a sweep unit and a lone RunOne
// must leave flash pristine when the execution panics.
func TestPanicRestoresPristineImageBare(t *testing.T) {
	r := panicHookRunner(t)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("hook did not panic")
			}
		}()
		r.sweepFlips(mutate.AND, 1)
	}()
	checkPristine(t, r, "bare sweep")

	r = panicHookRunner(t)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("hook did not panic")
			}
		}()
		r.RunOne(0x0000) // AND-all mask; hook panics at the branch
	}()
	checkPristine(t, r, "RunOne")
}
