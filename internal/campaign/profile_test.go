package campaign

import (
	"reflect"
	"testing"

	"glitchlab/internal/isa"
	"glitchlab/internal/mutate"
	"glitchlab/internal/obs/profile"
)

// totalExecs is the mutated-execution count of a campaign with the given
// flip budget: every mask of every flip count, per condition.
func totalExecs(maxFlips int) uint64 {
	var perCond uint64
	for k := 0; k <= maxFlips; k++ {
		perCond += mutate.Binomial(16, k)
	}
	return perCond * uint64(len(isa.BranchConds()))
}

func TestProfileAccountsEveryExecution(t *testing.T) {
	for _, workers := range []int{1, 4} {
		prof := profile.New(64)
		_, err := Run(Config{Model: mutate.AND, MaxFlips: 2, Workers: workers, Profile: prof})
		if err != nil {
			t.Fatal(err)
		}
		r := prof.Report()
		want := totalExecs(2)
		if r.Execs != want {
			t.Errorf("workers=%d: profiled %d execs, want %d", workers, r.Execs, want)
		}
		// Each shard samples independently, so the total can fall short of
		// execs/64 by at most one per shard (serial: one shard per
		// condition runner set; parallel: one per worker).
		if r.Sampled == 0 || r.Sampled > want/64+uint64(workers*len(isa.BranchConds())) {
			t.Errorf("workers=%d: sampled %d of %d at every=64", workers, r.Sampled, r.Execs)
		}
		if r.WallNs <= 0 {
			t.Errorf("workers=%d: wall clock not bracketed: %d", workers, r.WallNs)
		}
	}
}

func TestProfileDoesNotPerturbResults(t *testing.T) {
	bare, err := Run(Config{Model: mutate.AND, MaxFlips: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	prof := profile.New(8)
	profiled, err := Run(Config{Model: mutate.AND, MaxFlips: 2, Workers: 1, Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, profiled) {
		t.Error("profiled campaign results differ from bare results")
	}
}

// TestProfileCoverageFigure2 is the acceptance check for the phase
// profiler: over a full Figure 2 campaign (every mask of every flip
// count) the extrapolated per-phase costs must account for at least 95%
// of the campaign's measured wall-clock time — anything less means the
// attribution lost track of where the time goes. The host is shared, so
// a couple of retries absorb scheduling noise; the check is on the best
// observed run (contention only ever pushes coverage away from truth).
func TestProfileCoverageFigure2(t *testing.T) {
	if testing.Short() {
		t.Skip("full Figure 2 campaign in -short mode")
	}
	const tries = 3
	best := 0.0
	var last profile.Report
	for i := 0; i < tries; i++ {
		prof := profile.New(0) // DefaultSample
		if _, err := Run(Config{Model: mutate.AND, MaxFlips: 16, Workers: 1, Profile: prof}); err != nil {
			t.Fatal(err)
		}
		last = prof.Report()
		if last.Execs != totalExecs(16) {
			t.Fatalf("profiled %d execs, want %d", last.Execs, totalExecs(16))
		}
		cov := last.CoveragePct
		if cov > best {
			best = cov
		}
		if best >= 95 {
			break
		}
	}
	if best < 95 {
		t.Errorf("phase attribution covers %.1f%% of wall clock, want >= 95%%\nreport: %+v", best, last)
	}
	if best > 140 {
		t.Errorf("phase attribution covers %.1f%% of wall clock: extrapolation overshoots", best)
	}
	// The campaign hot path must attribute the bulk of its time to
	// execution (emulator + decode), not to the profiler's bookkeeping
	// phases.
	var execute, decode, total int64
	for _, ph := range last.Phases {
		total += ph.EstNs
		switch ph.Phase {
		case "execute":
			execute = ph.EstNs
		case "decode":
			decode = ph.EstNs
		}
	}
	if total > 0 && float64(execute+decode)/float64(total) < 0.5 {
		t.Errorf("execute+decode = %d of %d attributed ns; campaign hot path should be execution-dominated\nreport: %+v",
			execute+decode, total, last)
	}
}
