package campaign

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"glitchlab/internal/isa"
	"glitchlab/internal/mutate"
)

// DefaultWorkers is the default shard count for parallel campaigns and
// scans: one worker per schedulable CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// unit is one shard of a campaign: every mask of one flip count against
// one conditional branch. Units are fully independent — each gets its own
// Runner (private CPU and memory), so workers share no mutable state and
// the merge can place every FlipResult in its predetermined slot.
type unit struct {
	condIdx int
	flips   int
}

// runParallel executes the campaign sharded across cfg.Workers goroutines.
// Work units are handed out largest-first (C(16,k) peaks at k=8) so the
// expensive middle flip counts do not end up serialized on one worker; the
// merge reassembles results in BranchConds/ascending-k order, making the
// output byte-identical to runSerial's.
func runParallel(cfg Config) ([]CondResult, error) {
	conds := isa.BranchConds()
	units := make([]unit, 0, len(conds)*(cfg.MaxFlips+1))
	for ci := range conds {
		for k := 0; k <= cfg.MaxFlips; k++ {
			units = append(units, unit{condIdx: ci, flips: k})
		}
	}
	sort.SliceStable(units, func(i, j int) bool {
		return mutate.Binomial(16, units[i].flips) > mutate.Binomial(16, units[j].flips)
	})

	workers := cfg.Workers
	if workers > len(units) {
		workers = len(units)
	}

	// Every (condIdx, flips) slot is written by exactly one unit, so the
	// grid needs no locking; only the error slot is contended.
	grid := make([][]FlipResult, len(conds))
	for i := range grid {
		grid[i] = make([]FlipResult, cfg.MaxFlips+1)
	}
	var next atomic.Int64
	var firstErr atomic.Pointer[error]
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			shard := cfg.Obs.Shard()
			defer shard.flush()
			// One runner per (condition, variant) per worker; rebuilding
			// it for every flip-count unit of the same condition would
			// only redo the assembly.
			runners := make(map[int]*Runner, len(conds))
			for {
				i := int(next.Add(1)) - 1
				if i >= len(units) || firstErr.Load() != nil {
					return
				}
				u := units[i]
				r := runners[u.condIdx]
				if r == nil {
					var err error
					r, err = newRunnerFor(cfg, conds[u.condIdx])
					if err != nil {
						firstErr.CompareAndSwap(nil, &err)
						return
					}
					r.Obs = shard
					if shard != nil {
						shard.attach(r.cpu)
					}
					runners[u.condIdx] = r
				}
				grid[u.condIdx][u.flips] = r.sweepFlips(cfg.Model, u.flips)
			}
		}()
	}
	wg.Wait()
	if errp := firstErr.Load(); errp != nil {
		return nil, *errp
	}

	results := make([]CondResult, 0, len(conds))
	for ci, cond := range conds {
		res := CondResult{Cond: cond, Model: cfg.Model}
		for k := 0; k <= cfg.MaxFlips; k++ {
			res.merge(grid[ci][k])
		}
		results = append(results, res)
	}
	return results, nil
}
