package campaign

import (
	"errors"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"glitchlab/internal/isa"
	"glitchlab/internal/mutate"
	"glitchlab/internal/runctl"
)

// DefaultWorkers is the default shard count for parallel campaigns and
// scans: one worker per schedulable CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// unit is one shard of a campaign: every mask of one flip count against
// one conditional branch. Units are fully independent — each gets its own
// Runner (private CPU and memory), so workers share no mutable state and
// the merge can place every FlipResult in its predetermined slot.
type unit struct {
	condIdx int
	flips   int
}

// runParallel executes the campaign sharded across cfg.Workers goroutines.
// Work units are handed out largest-first (C(16,k) peaks at k=8) so the
// expensive middle flip counts do not end up serialized on one worker; the
// merge reassembles results in BranchConds/ascending-k order, making the
// output byte-identical to runSerial's.
func runParallel(cfg Config) ([]CondResult, error) {
	rn := cfg.Run
	conds := isa.BranchConds()

	// Every (condIdx, flips) slot is written by exactly one unit, so the
	// grid needs no locking; only the error slot is contended. Units
	// already in the checkpoint are restored here and never dispatched.
	grid := make([][]FlipResult, len(conds))
	have := make([][]bool, len(conds))
	for i := range grid {
		grid[i] = make([]FlipResult, cfg.MaxFlips+1)
		have[i] = make([]bool, cfg.MaxFlips+1)
	}
	units := make([]unit, 0, len(conds)*(cfg.MaxFlips+1))
	for ci := range conds {
		for k := 0; k <= cfg.MaxFlips; k++ {
			if rn.Lookup(cfg.unitKey(conds[ci], k), &grid[ci][k]) {
				have[ci][k] = true
				continue
			}
			units = append(units, unit{condIdx: ci, flips: k})
		}
	}
	sort.SliceStable(units, func(i, j int) bool {
		return mutate.Binomial(16, units[i].flips) > mutate.Binomial(16, units[j].flips)
	})

	workers := cfg.Workers
	if workers > len(units) {
		workers = len(units)
	}

	var next atomic.Int64
	var firstErr atomic.Pointer[error]
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			shard := cfg.Obs.Shard()
			defer shard.flush()
			psh := cfg.Profile.Shard()
			defer psh.Flush()
			// One runner per (condition, variant) per worker; rebuilding
			// it for every flip-count unit of the same condition would
			// only redo the assembly.
			runners := make(map[int]*Runner, len(conds))
			for {
				i := int(next.Add(1)) - 1
				if i >= len(units) || firstErr.Load() != nil || rn.Err() != nil {
					return
				}
				u := units[i]
				r := runners[u.condIdx]
				if r == nil {
					var err error
					r, err = newRunnerFor(cfg, conds[u.condIdx])
					if err != nil {
						firstErr.CompareAndSwap(nil, &err)
						return
					}
					r.Obs = shard
					r.Prof = psh
					if shard != nil {
						shard.attach(r.cpu)
					}
					runners[u.condIdx] = r
				}
				key := cfg.unitKey(conds[u.condIdx], u.flips)
				err := rn.Protect(key, func() error {
					fr := r.sweepFlips(cfg.Model, u.flips)
					if err := rn.Complete(key, fr); err != nil {
						return err
					}
					grid[u.condIdx][u.flips] = fr
					have[u.condIdx][u.flips] = true
					return nil
				})
				if err != nil {
					var pe *runctl.PanicError
					if errors.As(err, &pe) {
						// Quarantined: the worker's emulator for this
						// condition may be wedged mid-execution, so drop it
						// and move on to the next unit.
						delete(runners, u.condIdx)
						continue
					}
					firstErr.CompareAndSwap(nil, &err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if errp := firstErr.Load(); errp != nil {
		return nil, *errp
	}

	// Merge in BranchConds/ascending-k order — byte-identical to a serial
	// run. On interruption or quarantine only the conditions whose every
	// unit completed are assembled; the rest live on in the checkpoint.
	results := make([]CondResult, 0, len(conds))
	for ci, cond := range conds {
		complete := true
		for k := 0; k <= cfg.MaxFlips; k++ {
			if !have[ci][k] {
				complete = false
				break
			}
		}
		if !complete {
			continue
		}
		res := CondResult{Cond: cond, Model: cfg.Model}
		for k := 0; k <= cfg.MaxFlips; k++ {
			res.merge(grid[ci][k])
		}
		results = append(results, res)
	}
	if err := rn.Err(); err != nil {
		return results, err
	}
	return results, nil
}
