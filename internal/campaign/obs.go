package campaign

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"glitchlab/internal/emu"
	"glitchlab/internal/mutate"
	"glitchlab/internal/obs"
)

// Metric names the campaign observer maintains. Per-outcome counters hold
// mutated executions only (k >= 1), so they always match the Figure 2
// outcome histogram exactly; the k = 0 controls are counted separately.
const (
	MetricRuns     = "campaign.runs_total"         // every execution, controls included
	MetricControls = "campaign.control_runs_total" // k = 0 unmodified controls
	MetricSteps    = "campaign.steps"              // retired instructions per execution
	MetricRetired  = "emu.instructions_retired"
	outcomePrefix  = "campaign.outcome."
	faultPrefix    = "emu.faults."
)

// DefaultProgressEvery is how many executions pass between progress ticks.
const DefaultProgressEvery = 1 << 16

// metricName lowercases a display name into a metric-name segment
// ("Bad Read" -> "bad_read").
func metricName(s string) string {
	return strings.ReplaceAll(strings.ToLower(s), " ", "_")
}

// OutcomeMetric returns the counter name for an outcome
// ("campaign.outcome.bad_read").
func OutcomeMetric(o Outcome) string {
	return outcomePrefix + metricName(o.String())
}

// Observer instruments campaign sweeps: per-outcome counters, a
// steps-per-execution histogram, emulator fault counters, progress ticks
// and sampled per-execution trace records with a last-N-failures ring.
// A nil *Observer disables all instrumentation (the bare hot path).
//
// The per-execution path writes only plain (non-atomic) fields plus one
// atomic add on the shared progress counter; the shared registry metrics
// are updated at every progress boundary (OnProgress's interval,
// DefaultProgressEvery unless changed), at the end of each branch sweep
// and when the campaign finishes. A live /metrics scrape therefore lags
// the campaign by at most one progress interval — the cost of keeping
// instrumented sweeps within a few percent of bare ones (see
// BenchmarkCampaignInstrumented).
//
// An Observer is single-goroutine; parallel campaigns give every worker
// its own Shard. Shards share the registry counters, the tracer and the
// progress accounting, so flushed totals are exactly the serial numbers
// no matter how the work was split.
type Observer struct {
	reg    *obs.Registry
	tracer *obs.Tracer

	runs     *obs.Counter
	controls *obs.Counter
	retired  *obs.Counter
	outcomes [NumOutcomes]*obs.Counter
	faults   [emu.FaultSupervisor + 1]*obs.Counter
	hist     *obs.Histogram
	steps    *obs.HistShard

	// local accumulation since the last flush
	lruns, lcontrols, lretired uint64
	loutcomes                  [NumOutcomes]uint64
	lfaults                    [emu.FaultSupervisor + 1]uint64

	progress      func(done, total uint64)
	progressEvery uint64
	prog          *progressState
}

// progressState is the campaign-wide progress accounting, shared by every
// shard of one Observer so ticks and denominators stay coherent when the
// campaign is split across workers.
type progressState struct {
	done  atomic.Uint64
	total atomic.Uint64
	mu    sync.Mutex // serializes the user progress callback
}

// NewObserver builds an observer recording into reg and, when tracer is
// non-nil, emitting trace records. Metric pointers are resolved once here
// so the per-execution path stays lock-free.
func NewObserver(reg *obs.Registry, tracer *obs.Tracer) *Observer {
	o := &Observer{
		reg:           reg,
		tracer:        tracer,
		runs:          reg.Counter(MetricRuns),
		controls:      reg.Counter(MetricControls),
		retired:       reg.Counter(MetricRetired),
		hist:          reg.Histogram(MetricSteps, obs.ExpBuckets(1, 2, 10)),
		progressEvery: DefaultProgressEvery,
		prog:          &progressState{},
	}
	o.steps = o.hist.Shard()
	for i := range o.outcomes {
		o.outcomes[i] = reg.Counter(OutcomeMetric(Outcome(i)))
	}
	for k := 1; k < len(o.faults); k++ { // skip FaultNone: it never fires
		o.faults[k] = reg.Counter(faultPrefix + metricName(emu.FaultKind(k).String()))
	}
	return o
}

// OnProgress installs a progress callback invoked every `every` executions
// and once at the end of the campaign. every <= 0 keeps the default.
func (o *Observer) OnProgress(every uint64, fn func(done, total uint64)) {
	if every > 0 {
		o.progressEvery = every
	}
	o.progress = fn
}

// setTotal announces the campaign's planned execution count (progress
// denominators; 0 means unknown).
func (o *Observer) setTotal(total uint64) {
	o.prog.total.Store(total)
}

// Shard returns an observer that records into the same registry metrics,
// tracer and progress accounting as o but buffers its per-execution
// accumulation privately, so each campaign worker can instrument its own
// runners without locks. Flush boundaries are unchanged (progress ticks
// and sweep ends); the parent's finish flushes only the parent, so every
// shard must be flushed before the campaign's results are merged. A nil
// receiver shards to nil, keeping the bare hot path bare.
func (o *Observer) Shard() *Observer {
	if o == nil {
		return nil
	}
	s := *o
	s.lruns, s.lcontrols, s.lretired = 0, 0, 0
	s.loutcomes = [NumOutcomes]uint64{}
	s.lfaults = [emu.FaultSupervisor + 1]uint64{}
	s.steps = o.hist.Shard()
	return &s
}

// attach wires the observer's fault accounting into a runner's CPU.
func (o *Observer) attach(cpu *emu.CPU) {
	cpu.Hooks.OnFault = func(f *emu.Fault) {
		if int(f.Kind) < len(o.lfaults) {
			o.lfaults[f.Kind]++
		}
	}
}

// flush publishes the local accumulation into the shared registry metrics.
func (o *Observer) flush() {
	if o == nil {
		return
	}
	if o.lruns != 0 {
		o.runs.Add(o.lruns)
		o.lruns = 0
	}
	if o.lcontrols != 0 {
		o.controls.Add(o.lcontrols)
		o.lcontrols = 0
	}
	if o.lretired != 0 {
		o.retired.Add(o.lretired)
		o.lretired = 0
	}
	for i, n := range o.loutcomes {
		if n != 0 {
			o.outcomes[i].Add(n)
			o.loutcomes[i] = 0
		}
	}
	for k, n := range o.lfaults {
		if n != 0 && o.faults[k] != nil {
			o.faults[k].Add(n)
			o.lfaults[k] = 0
		}
	}
	o.steps.Flush()
}

// record accounts one perturbed execution.
func (o *Observer) record(r *Runner, model mutate.Model, flips int, mask, word uint16, out Outcome, fault *emu.Fault) {
	o.lruns++
	if flips == 0 {
		o.lcontrols++
	} else {
		o.loutcomes[out]++
	}
	steps := r.cpu.Steps
	o.steps.ObservePow2(steps) // MetricSteps uses ExpBuckets(1, 2, 10)
	o.lretired += steps

	done := o.prog.done.Add(1)
	if done%o.progressEvery == 0 {
		o.flush()
		o.tick(done)
	}

	if o.tracer == nil {
		return
	}
	faultName := "none"
	if fault != nil {
		faultName = fault.Kind.String()
	}
	attrs := map[string]any{
		"cond":    "b" + r.cond.String(),
		"model":   model.String(),
		"flips":   flips,
		"mask":    fmt.Sprintf("%#04x", mask),
		"word":    fmt.Sprintf("%#04x", word),
		"outcome": out.String(),
		"fault":   faultName,
		"steps":   steps,
		"regs": fmt.Sprintf("%#x %#x %#x %#x %#x %#x %#x %#x",
			r.cpu.R[0], r.cpu.R[1], r.cpu.R[2], r.cpu.R[3],
			r.cpu.R[4], r.cpu.R[5], r.cpu.R[6], r.cpu.R[7]),
		"pc": fmt.Sprintf("%#x", r.cpu.PC()),
	}
	o.tracer.Event("campaign.exec", attrs)
	if out == Failed {
		o.tracer.Failure("campaign.exec", attrs)
	}
}

// tick reports progress to the user callback, serialized across shards.
func (o *Observer) tick(done uint64) {
	if o.progress == nil {
		return
	}
	o.prog.mu.Lock()
	o.progress(done, o.prog.total.Load())
	o.prog.mu.Unlock()
}

// finish flushes the accumulation and emits the final progress tick.
func (o *Observer) finish() {
	if o == nil {
		return
	}
	o.flush()
	o.tick(o.prog.done.Load())
}

// span opens a tracer span (nil-safe passthrough).
func (o *Observer) span(name string, attrs map[string]any) *obs.Span {
	if o == nil {
		return nil
	}
	return o.tracer.StartSpan(name, attrs)
}
