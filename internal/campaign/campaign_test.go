package campaign

import (
	"testing"

	"glitchlab/internal/isa"
	"glitchlab/internal/mutate"
)

func mustRunner(t *testing.T, cond isa.Cond, zeroInvalid bool) *Runner {
	t.Helper()
	r, err := NewRunner(cond, zeroInvalid)
	if err != nil {
		t.Fatalf("NewRunner(%v): %v", cond, err)
	}
	return r
}

func TestBranchEncodings(t *testing.T) {
	for _, cond := range isa.BranchConds() {
		r := mustRunner(t, cond, false)
		enc := r.BranchEncoding()
		if enc>>12 != 0b1101 || isa.Cond(enc>>8&0xf) != cond {
			t.Errorf("b%v encoding = %#04x", cond, enc)
		}
	}
}

func TestUnmodifiedIsNoEffect(t *testing.T) {
	// Running the original encoding must take the branch and land in the
	// normal path for every condition: the snippet setups make every
	// condition true.
	for _, cond := range isa.BranchConds() {
		r := mustRunner(t, cond, false)
		if out := r.RunOne(r.BranchEncoding()); out != NoEffect {
			t.Errorf("b%v unmodified: %v, want No Effect", cond, out)
		}
	}
}

func TestAllZeroWordSkipsBranch(t *testing.T) {
	// 0x0000 decodes as movs r0, r0, so the branch is skipped and the
	// success path runs — the effect the paper highlights.
	for _, cond := range isa.BranchConds() {
		r := mustRunner(t, cond, false)
		if out := r.RunOne(0); out != Success {
			t.Errorf("b%v zeroed: %v, want Success", cond, out)
		}
	}
}

func TestAllZeroWordInvalidVariant(t *testing.T) {
	// Figure 2c: with the hypothetical ISA hardening, 0x0000 faults.
	r := mustRunner(t, isa.EQ, true)
	if out := r.RunOne(0); out != InvalidInst {
		t.Errorf("zeroed with ZeroInvalid: %v, want Invalid Instruction", out)
	}
	// The hardening must not change the unmodified behaviour.
	if out := r.RunOne(r.BranchEncoding()); out != NoEffect {
		t.Errorf("unmodified with ZeroInvalid: %v, want No Effect", out)
	}
}

func TestNopIsSuccess(t *testing.T) {
	r := mustRunner(t, isa.EQ, false)
	if out := r.RunOne(0xbf00); out != Success {
		t.Errorf("nop substitution: %v, want Success", out)
	}
}

func TestUDFIsInvalid(t *testing.T) {
	r := mustRunner(t, isa.EQ, false)
	if out := r.RunOne(0xde00); out != InvalidInst {
		t.Errorf("udf substitution: %v, want Invalid Instruction", out)
	}
}

func TestInvertedConditionIsSuccess(t *testing.T) {
	// Flipping the condition to its complement makes the branch fall
	// through, executing the success path.
	r := mustRunner(t, isa.EQ, false)
	bne := r.BranchEncoding() ^ 0x0100 // EQ -> NE
	if out := r.RunOne(bne); out != Success {
		t.Errorf("bne substitution: %v, want Success", out)
	}
}

func TestSweepCountsExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("full 65536-encoding sweep skipped in -short mode")
	}
	r := mustRunner(t, isa.EQ, false)
	res := r.Sweep(mutate.AND, 16)
	if res.Runs != 1<<16 {
		t.Fatalf("runs = %d, want 65536", res.Runs)
	}
	if len(res.ByFlips) != 17 {
		t.Fatalf("ByFlips has %d entries, want 17", len(res.ByFlips))
	}
	for k, fr := range res.ByFlips {
		if want := mutate.Binomial(16, k); fr.Total != want {
			t.Errorf("k=%d total = %d, want %d", k, fr.Total, want)
		}
	}
	// k=0 is the unmodified control.
	if res.ByFlips[0].Counts[NoEffect] != 1 {
		t.Errorf("k=0 outcome = %+v, want one No Effect", res.ByFlips[0].Counts)
	}
	var sum uint64
	for _, n := range res.Totals {
		sum += n
	}
	if sum != res.Runs {
		t.Errorf("outcome totals sum %d != runs %d", sum, res.Runs)
	}
}

func TestANDBeatsORHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("two full 65536-encoding sweeps skipped in -short mode")
	}
	// The paper's central emulation finding: 1→0 flips (AND) skip
	// branches far more often than 0→1 flips (OR).
	rAnd := mustRunner(t, isa.EQ, false)
	rOr := mustRunner(t, isa.EQ, false)
	and := rAnd.Sweep(mutate.AND, 16)
	or := rOr.Sweep(mutate.OR, 16)
	if and.SuccessRate() <= or.SuccessRate() {
		t.Errorf("AND success %.3f <= OR success %.3f",
			and.SuccessRate(), or.SuccessRate())
	}
	if and.SuccessRate() < 0.25 {
		t.Errorf("AND success %.3f unexpectedly low", and.SuccessRate())
	}
}

func TestZeroInvalidBarelyChangesANDRate(t *testing.T) {
	if testing.Short() {
		t.Skip("two full 65536-encoding sweeps skipped in -short mode")
	}
	// Figure 2c's debunking result: making 0x0000 invalid leaves the AND
	// success rate essentially unchanged, because many other corrupted
	// encodings still skip the branch.
	plain := mustRunner(t, isa.EQ, false).Sweep(mutate.AND, 16)
	hardened := mustRunner(t, isa.EQ, true).Sweep(mutate.AND, 16)
	diff := plain.SuccessRate() - hardened.SuccessRate()
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.05 {
		t.Errorf("AND success changed by %.3f (%.3f -> %.3f); paper found it unchanged",
			diff, plain.SuccessRate(), hardened.SuccessRate())
	}
}

func TestRunAllConds(t *testing.T) {
	results, err := Run(Config{Model: mutate.AND, MaxFlips: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 14 {
		t.Fatalf("got %d results, want 14", len(results))
	}
	want := mutate.Binomial(16, 0) + mutate.Binomial(16, 1) + mutate.Binomial(16, 2)
	for _, res := range results {
		if res.Runs != want {
			t.Errorf("%v runs = %d, want %d", res.Cond, res.Runs, want)
		}
	}
}

func TestOutcomeStrings(t *testing.T) {
	names := map[Outcome]string{
		Success: "Success", BadRead: "Bad Read",
		InvalidInst: "Invalid Instruction", BadFetch: "Bad Fetch",
		Failed: "Failed", NoEffect: "No Effect",
	}
	for o, want := range names {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", o, o.String(), want)
		}
	}
}

// TestUDFPaddingHypothesis evaluates the paper's second ISA-hardening idea
// from Section IV: filling unreachable code slots with invalid
// instructions should convert a meaningful share of would-be effects into
// detected invalid-instruction faults (and must never help the attacker).
func TestUDFPaddingHypothesis(t *testing.T) {
	if testing.Short() {
		t.Skip("two full 65536-encoding sweeps skipped in -short mode")
	}
	plainR := mustRunner(t, isa.EQ, false)
	padded, err := NewPaddedRunner(isa.EQ, false)
	if err != nil {
		t.Fatal(err)
	}
	// Padding must not change clean behaviour.
	if out := padded.RunOne(padded.BranchEncoding()); out != NoEffect {
		t.Fatalf("padded unmodified run: %v", out)
	}
	plain := plainR.Sweep(mutate.AND, 16)
	hard := padded.Sweep(mutate.AND, 16)
	if hard.SuccessRate() > plain.SuccessRate() {
		t.Errorf("padding increased success: %.4f -> %.4f",
			plain.SuccessRate(), hard.SuccessRate())
	}
	if hard.Totals[InvalidInst] <= plain.Totals[InvalidInst] {
		t.Errorf("padding did not raise invalid-instruction detections: %d -> %d",
			plain.Totals[InvalidInst], hard.Totals[InvalidInst])
	}
	t.Logf("AND success %.2f%% -> %.2f%%; invalid-instruction outcomes %d -> %d",
		100*plain.SuccessRate(), 100*hard.SuccessRate(),
		plain.Totals[InvalidInst], hard.Totals[InvalidInst])
}
