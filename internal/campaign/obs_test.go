package campaign

import (
	"strings"
	"testing"

	"glitchlab/internal/isa"
	"glitchlab/internal/mutate"
	"glitchlab/internal/obs"
)

// TestAccountingInvariant is the satellite fix for the outcome-accounting
// edge case: per-outcome counts must always sum to the number of masks
// tried, per flip count and in total, so metrics and Figure 2 totals can
// never drift apart.
func TestAccountingInvariant(t *testing.T) {
	results, err := Run(Config{Model: mutate.XOR, MaxFlips: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAccounting(results); err != nil {
		t.Errorf("fresh campaign violates accounting: %v", err)
	}

	// Every class of drift must be caught.
	corrupt := func(name string, mutate func(*CondResult)) {
		c := results[0]
		c.ByFlips = append([]FlipResult(nil), c.ByFlips...)
		mutate(&c)
		if err := c.CheckAccounting(); err == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
	corrupt("outcome count drift", func(c *CondResult) {
		fr := c.ByFlips[1]
		fr.Counts[Success]++
		c.ByFlips[1] = fr
	})
	corrupt("total drift", func(c *CondResult) {
		fr := c.ByFlips[2]
		fr.Total++
		c.ByFlips[2] = fr
	})
	corrupt("grand total drift", func(c *CondResult) { c.Runs++ })
	corrupt("per-outcome total drift", func(c *CondResult) { c.Totals[Failed]++ })
}

// TestObserverMatchesResults pins the acceptance invariant: the observer's
// per-outcome counters must equal the campaign's k >= 1 outcome totals
// exactly, with the k = 0 controls counted separately.
func TestObserverMatchesResults(t *testing.T) {
	reg := obs.NewRegistry()
	o := NewObserver(reg, nil)
	var ticks int
	o.OnProgress(100, func(done, total uint64) { ticks++ })

	const maxFlips = 2
	results, err := Run(Config{Model: mutate.AND, MaxFlips: maxFlips, Obs: o})
	if err != nil {
		t.Fatal(err)
	}

	var want [NumOutcomes]uint64
	var controls, runs uint64
	for _, res := range results {
		runs += res.Runs
		for _, fr := range res.ByFlips {
			if fr.Flips == 0 {
				for _, n := range fr.Counts {
					controls += n
				}
				continue
			}
			for oc, n := range fr.Counts {
				want[oc] += n
			}
		}
	}
	for oc := 0; oc < NumOutcomes; oc++ {
		if got := reg.Counter(OutcomeMetric(Outcome(oc))).Value(); got != want[oc] {
			t.Errorf("%s counter = %d, want %d", Outcome(oc), got, want[oc])
		}
	}
	if got := reg.Counter(MetricControls).Value(); got != controls {
		t.Errorf("control counter = %d, want %d", got, controls)
	}
	if got := reg.Counter(MetricRuns).Value(); got != runs {
		t.Errorf("runs counter = %d, want %d", got, runs)
	}
	if planned := PlannedRuns(maxFlips); runs != planned {
		t.Errorf("runs = %d, PlannedRuns = %d", runs, planned)
	}
	if ticks == 0 {
		t.Error("no progress ticks delivered")
	}
	h := reg.Histogram(MetricSteps, nil)
	if h.Count() != runs {
		t.Errorf("steps histogram count = %d, want %d", h.Count(), runs)
	}
	if reg.Counter(MetricRetired).Value() == 0 {
		t.Error("no retired instructions counted")
	}
}

// TestObserverFaultCounters checks the emu OnFault hook wiring: an
// invalid-instruction substitution must land in the fault counter.
func TestObserverFaultCounters(t *testing.T) {
	reg := obs.NewRegistry()
	r := mustRunner(t, isa.EQ, false)
	r.Obs = NewObserver(reg, nil)
	res := r.Sweep(mutate.AND, 1)
	if res.Runs != 17 {
		t.Fatalf("runs = %d, want 17", res.Runs)
	}
	snap := reg.Snapshot()
	var faults uint64
	for _, c := range snap.Counters {
		if strings.HasPrefix(c.Name, "emu.faults.") {
			faults += c.Value
		}
	}
	if res.Totals[InvalidInst]+res.Totals[BadRead]+res.Totals[BadFetch] > 0 && faults == 0 {
		t.Error("fault outcomes observed but no emu.faults counters incremented")
	}
}

// TestObserverTrace checks per-execution records land in the sink and
// failures in the post-mortem ring.
func TestObserverTrace(t *testing.T) {
	var sb strings.Builder
	tr := obs.NewTracer(&sb)
	tr.SetSampling(1)
	reg := obs.NewRegistry()
	r := mustRunner(t, isa.EQ, false)
	r.Obs = NewObserver(reg, tr)
	res := r.Sweep(mutate.AND, 2)
	tr.Close()
	out := sb.String()
	if n := strings.Count(out, `"type":"event"`); uint64(n) != res.Runs {
		t.Errorf("trace has %d event records, want %d", n, res.Runs)
	}
	if res.Totals[Failed] > 0 && strings.Count(out, `"type":"failure"`) == 0 {
		t.Error("failures classified but none captured in the ring")
	}
	if !strings.Contains(out, `"type":"span"`) {
		t.Error("no sweep span recorded")
	}
}
