package campaign

import (
	"io"
	"net/http"
	"sync"
	"testing"

	"glitchlab/internal/mutate"
	"glitchlab/internal/obs"
)

// TestServeDuringShardedCampaign scrapes the live /metrics and
// /metrics.json endpoints continuously while a worker-sharded campaign
// flushes its observer shards into the same registry. Run under -race
// (ci.sh does) this pins the concurrency contract between obs.Serve's
// snapshot reads and the campaign's atomic shard merges; without -race
// it still checks that mid-run scrapes parse and the final counters add
// up.
func TestServeDuringShardedCampaign(t *testing.T) {
	reg := obs.NewRegistry()
	srv, addr, err := obs.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	scrape := func(path string) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get("http://" + addr + path)
			if err != nil {
				continue // server teardown races the last scrape
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err == nil && resp.StatusCode != http.StatusOK {
				t.Errorf("%s: status %d: %s", path, resp.StatusCode, body)
				return
			}
		}
	}
	wg.Add(2)
	go scrape("/metrics")
	go scrape("/metrics.json")

	o := NewObserver(reg, nil)
	results, err := Run(Config{Model: mutate.AND, MaxFlips: 2, Workers: 4, Obs: o})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("empty campaign")
	}

	// The final snapshot must account every execution exactly once.
	var runs uint64
	var want uint64
	for _, res := range results {
		want += res.Runs // controls included
	}
	for _, c := range reg.Snapshot().Counters {
		if c.Name == MetricRuns {
			runs = c.Value
		}
	}
	if runs != want {
		t.Errorf("%s = %d after concurrent scraping, want %d", MetricRuns, runs, want)
	}
}
