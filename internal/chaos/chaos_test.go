package chaos

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"glitchlab/internal/obs"
)

// writeThrough opens path on fsys, writes data, optionally syncs, closes.
func writeThrough(t *testing.T, fsys FS, path string, data []byte, sync bool) error {
	t.Helper()
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	fsys := OS{}
	path := filepath.Join(dir, "a.txt")
	if err := writeThrough(t, fsys, path, []byte("hello"), true); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	got, err := fsys.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	if err := fsys.Rename(path, filepath.Join(dir, "b.txt")); err != nil {
		t.Fatal(err)
	}
	ents, err := fsys.ReadDir(dir)
	if err != nil || len(ents) != 1 || ents[0].Name() != "b.txt" {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
}

func TestInjectorNilSchedulePassthrough(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{}, nil)
	path := filepath.Join(dir, "a.txt")
	if err := writeThrough(t, in, path, []byte("hello"), true); err != nil {
		t.Fatal(err)
	}
	if in.Ops() == 0 {
		t.Fatal("expected ops to be counted")
	}
	got, err := in.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
}

func TestInjectorAtOpENOSPC(t *testing.T) {
	dir := t.TempDir()
	// Learn the workload's op layout with a counting pass.
	probe := NewInjector(OS{}, nil)
	if err := writeThrough(t, probe, filepath.Join(dir, "p.txt"), []byte("x"), true); err != nil {
		t.Fatal(err)
	}
	total := probe.Ops() // open, write, sync

	sawFault := false
	for n := uint64(0); n < total; n++ {
		in := NewInjector(OS{}, FaultAt(n, FaultENOSPC))
		err := writeThrough(t, in, filepath.Join(dir, "q.txt"), []byte("x"), true)
		os.Remove(filepath.Join(dir, "q.txt"))
		if err != nil {
			if !errors.Is(err, syscall.ENOSPC) {
				t.Fatalf("op %d: err = %v, want ENOSPC", n, err)
			}
			sawFault = true
		}
	}
	if !sawFault {
		t.Fatal("no op was eligible for ENOSPC")
	}
}

func TestInjectorTornWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn.txt")
	// Op 0 = open, op 1 = write: tear the write at 3 bytes.
	in := NewInjector(OS{}, AtOp{N: 1, Fault: FaultTorn, Torn: 3})
	err := writeThrough(t, in, path, []byte("abcdef"), false)
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("err = %v, want EIO", err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil || string(got) != "abc" {
		t.Fatalf("file = %q, %v; want torn prefix \"abc\"", got, rerr)
	}
}

func TestInjectorPowerLossUnsynced(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log.txt")
	in := NewInjector(OS{}, nil)
	// Synced prefix survives; unsynced suffix is rolled back (to a torn
	// prefix of itself at most).
	f, err := in.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("durable|")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := in.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("volatile")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	in.PowerLoss()
	if !in.Crashed() {
		t.Fatal("Crashed() = false after PowerLoss")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) < len("durable|") || string(got[:8]) != "durable|" {
		t.Fatalf("synced prefix lost: %q", got)
	}
	if len(got) > len("durable|volatile") {
		t.Fatalf("file grew: %q", got)
	}
	// Every subsequent op must fail with ErrCrashed.
	if _, err := in.ReadFile(path); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash ReadFile err = %v", err)
	}
}

func TestInjectorDropSyncLosesData(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log.txt")
	// Ops: open(0), write(1), sync(2) -> drop the sync.
	in := NewInjector(OS{}, AtOp{N: 2, Fault: FaultDropSync}).WithSeed(7)
	if err := writeThrough(t, in, path, []byte("abcdefgh"), true); err != nil {
		t.Fatalf("dropped sync must report success, got %v", err)
	}
	in.PowerLoss()
	got, err := os.ReadFile(path)
	// The file entry itself was never dir-synced, so it may be gone
	// entirely; if present it must hold at most a torn prefix.
	if err == nil && len(got) == len("abcdefgh") {
		// A seeded draw can legitimately keep everything; re-check with a
		// seed that does not. Determinism makes this stable.
		in2 := NewInjector(OS{}, AtOp{N: 2, Fault: FaultDropSync}).WithSeed(1)
		path2 := filepath.Join(dir, "log2.txt")
		if err := writeThrough(t, in2, path2, []byte("abcdefgh"), true); err != nil {
			t.Fatal(err)
		}
		in2.PowerLoss()
		got2, err2 := os.ReadFile(path2)
		if err2 == nil && len(got2) == len("abcdefgh") {
			t.Fatalf("dropped fsync preserved all data for two seeds: %q / %q", got, got2)
		}
	}
}

func TestInjectorRenameRollbackWithoutDirSync(t *testing.T) {
	dir := t.TempDir()
	old := filepath.Join(dir, "tmp")
	target := filepath.Join(dir, "manifest.json")
	if err := os.WriteFile(target, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}

	run := func(syncDir bool) string {
		in := NewInjector(OS{}, nil)
		if err := writeThrough(t, in, old, []byte("v2"), true); err != nil {
			t.Fatal(err)
		}
		if err := in.Rename(old, target); err != nil {
			t.Fatal(err)
		}
		if syncDir {
			if err := in.SyncDir(dir); err != nil {
				t.Fatal(err)
			}
		}
		in.PowerLoss()
		got, err := os.ReadFile(target)
		if err != nil {
			t.Fatalf("target unreadable after rollback: %v", err)
		}
		return string(got)
	}

	if got := run(false); got != "v1" {
		t.Fatalf("without dir sync, crash should revert rename: got %q, want v1", got)
	}
	if err := os.WriteFile(target, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := run(true); got != "v2" {
		t.Fatalf("with dir sync, rename is durable: got %q, want v2", got)
	}
}

func TestInjectorCreateRollbackWithoutDirSync(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fresh.txt")
	in := NewInjector(OS{}, nil)
	if err := writeThrough(t, in, path, []byte("data"), true); err != nil {
		t.Fatal(err)
	}
	in.PowerLoss()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("un-dir-synced create must vanish on power loss; stat err = %v", err)
	}
}

func TestInjectorCrashAtOp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.txt")
	in := NewInjector(OS{}, FaultAt(1, FaultCrash)) // crash at the write
	err := writeThrough(t, in, path, []byte("abc"), true)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	if !in.Crashed() {
		t.Fatal("Crashed() = false")
	}
	called := false
	in2 := NewInjector(OS{}, FaultAt(0, FaultCrash)).OnCrash(func() { called = true })
	_ = writeThrough(t, in2, path, []byte("abc"), true)
	if !called {
		t.Fatal("OnCrash hook not invoked")
	}
}

func TestSeededDeterminism(t *testing.T) {
	draw := func(seed uint64) []Fault {
		s := Seeded{Seed: seed, Every: 3}
		out := make([]Fault, 64)
		for n := range out {
			out[n] = s.Draw(uint64(n), OpWrite).Fault
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 42 not deterministic at op %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := draw(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical schedules")
	}
	injected := 0
	for _, f := range a {
		if f != FaultNone {
			injected++
		}
	}
	if injected == 0 {
		t.Fatal("Every=3 over 64 ops injected nothing")
	}
}

func TestIsDiskFault(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{faultErr(OpWrite, "x", FaultENOSPC), true},
		{faultErr(OpSync, "x", FaultEIO), true},
		{ErrCrashed, true},
		{os.ErrNotExist, false},
		{errors.New("boom"), false},
		{nil, false},
	}
	for _, c := range cases {
		if got := IsDiskFault(c.err); got != c.want {
			t.Errorf("IsDiskFault(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestToggle(t *testing.T) {
	var tg Toggle
	if d := tg.Draw(0, OpWrite); d.Fault != FaultNone {
		t.Fatalf("zero Toggle injected %v", d.Fault)
	}
	tg.Set(FaultENOSPC)
	if d := tg.Draw(1, OpWrite); d.Fault != FaultENOSPC {
		t.Fatalf("Toggle(ENOSPC) drew %v", d.Fault)
	}
	if d := tg.Draw(2, OpSync); d.Fault != FaultNone {
		t.Fatalf("ENOSPC must not be eligible on sync, drew %v", d.Fault)
	}
	tg.Set(FaultNone)
	if d := tg.Draw(3, OpWrite); d.Fault != FaultNone {
		t.Fatalf("cleared Toggle injected %v", d.Fault)
	}
}

func TestInjectorRegistryCounters(t *testing.T) {
	reg := obs.NewRegistry()
	dir := t.TempDir()
	in := NewInjector(OS{}, After{N: 0, Fault: FaultEIO}).WithRegistry(reg)
	err := writeThrough(t, in, filepath.Join(dir, "x"), []byte("x"), false)
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("err = %v, want EIO", err)
	}
	if reg.Counter(MetricInjected).Value() == 0 {
		t.Fatal("no injections recorded")
	}
	if reg.Counter("chaos.injected_eio_total").Value() == 0 {
		t.Fatal("per-class counter missing")
	}
}
