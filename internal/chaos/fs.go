// Package chaos is glitchlab's environment-fault injector: the glitching
// discipline of the paper, applied to the toolchain itself. The paper's
// campaigns perturb a target's control flow at a chosen trigger point and
// observe whether its defenses hold; chaos perturbs the *durability
// layer's* I/O at a chosen operation and observes whether the
// checkpoint/resume machinery holds. The fault classes mirror what real
// disks and kernels do under pressure or power loss:
//
//   - ENOSPC / EIO: an allocating or transferring syscall fails outright;
//   - torn writes: only a prefix of a write reaches the file before the
//     error (the JSONL torn-tail case every loader must tolerate);
//   - dropped fsyncs: Sync returns success without making anything
//     durable (a lying disk cache), observable only at the next crash;
//   - simulated power loss ("crash at op N", the trigger-point idea):
//     every byte not covered by a successful fsync is rolled back, torn
//     mid-write tails included, and renames or creates in directories
//     that were never fsynced are undone.
//
// The package has two halves: an FS interface over exactly the I/O
// surface runctl and internal/serve use for durable state, with OS as the
// passthrough implementation (plain os calls plus a real directory
// fsync), and Injector, a deterministic fault-injecting FS driven by a
// Schedule (a pure function of the global operation index, so a seed
// reproduces a campaign of faults exactly). Production code takes an FS
// and defaults to OS; only tests and the -chaos-* CLI knobs ever hand it
// an Injector.
package chaos

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// File is the writable-file surface the durability layer uses: sequential
// (append-style) writes, fsync, and the metadata calls WriteFileAtomic
// needs. *os.File implements it.
type File interface {
	io.Writer
	io.Closer
	// Sync flushes the file's data to stable storage.
	Sync() error
	// Chmod sets the file mode.
	Chmod(mode os.FileMode) error
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the filesystem surface glitchlab's durability layer (runctl
// checkpoints and manifests, serve job state, event streams, atomic
// result files) performs its I/O through. Implementations: OS (the real
// filesystem) and *Injector (fault-injecting wrapper around another FS).
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	ReadFile(path string) ([]byte, error)
	ReadDir(path string) ([]os.DirEntry, error)
	Stat(path string) (os.FileInfo, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
	Truncate(path string, size int64) error
	// SyncDir fsyncs a directory, making its entries (freshly created
	// files, renames) durable. File fsync alone does not persist the
	// *entry*: after a power loss a file whose directory was never synced
	// can simply not be there.
	SyncDir(dir string) error
}

// OS is the passthrough FS: direct os-package calls. It is the default
// everywhere an FS is threaded, and adds no behavior beyond the directory
// fsync primitive the os package does not expose.
type OS struct{}

func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (OS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(path, flag, perm)
}

func (OS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

func (OS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (OS) ReadDir(path string) ([]os.DirEntry, error) { return os.ReadDir(path) }

func (OS) Stat(path string) (os.FileInfo, error) { return os.Stat(path) }

func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OS) Remove(path string) error { return os.Remove(path) }

func (OS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("chaos: sync dir %s: %w", dir, err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("chaos: sync dir %s: %w", dir, err)
	}
	return nil
}

// writeAll replaces path's content on fsys with data (create or truncate).
// The Injector uses it to restore a rename target during power-loss
// rollback; it is not part of the injected op stream.
func writeAll(fsys FS, path string, data []byte, perm os.FileMode) error {
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// dirOf is filepath.Dir, named for readability at call sites that group
// namespace operations by parent directory.
func dirOf(path string) string { return filepath.Dir(path) }
