package chaos

import (
	"errors"
	"os"
	"sync/atomic"
	"syscall"
)

// Op classifies one filesystem operation for scheduling purposes. The
// Injector assigns every call a global, monotonically increasing op index
// and asks its Schedule what to do at (index, op).
type Op uint8

const (
	OpMkdir Op = iota
	OpOpen
	OpCreate
	OpRead
	OpReadDir
	OpStat
	OpWrite
	OpSync
	OpRename
	OpRemove
	OpTruncate
	OpSyncDir

	numOps
)

var opNames = [numOps]string{
	"mkdir", "open", "create", "read", "readdir", "stat",
	"write", "sync", "rename", "remove", "truncate", "syncdir",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "op?"
}

// Fault is one injectable fault class.
type Fault uint8

const (
	// FaultNone injects nothing.
	FaultNone Fault = iota
	// FaultENOSPC fails an allocating op (write, create, mkdir, rename)
	// with syscall.ENOSPC.
	FaultENOSPC
	// FaultEIO fails an op with syscall.EIO.
	FaultEIO
	// FaultTorn performs a short write: a prefix of the buffer reaches the
	// file, then the write fails with syscall.EIO. This is how torn JSONL
	// tails are born.
	FaultTorn
	// FaultDropSync makes Sync or SyncDir return success without syncing
	// anything — a lying disk cache. Silent until the next power loss.
	FaultDropSync
	// FaultCrash simulates power loss at this op: unsynced data and
	// un-fsynced directory entries are rolled back, and every op from this
	// one on fails with ErrCrashed (or the Injector's OnCrash hook fires,
	// e.g. os.Exit in the CLIs).
	FaultCrash

	numFaults
)

var faultNames = [numFaults]string{
	"none", "enospc", "eio", "torn", "dropsync", "crash",
}

func (f Fault) String() string {
	if int(f) < len(faultNames) {
		return faultNames[f]
	}
	return "fault?"
}

// eligible reports whether fault f is meaningful at op o; the Seeded
// schedule redraws ineligible pairings as no-ops so a seed sweep never
// "injects" a fault the op cannot express.
func (f Fault) eligible(o Op) bool {
	switch f {
	case FaultENOSPC:
		return o == OpWrite || o == OpCreate || o == OpOpen || o == OpMkdir || o == OpRename
	case FaultEIO:
		return o == OpWrite || o == OpSync || o == OpSyncDir || o == OpRead ||
			o == OpReadDir || o == OpRename || o == OpOpen || o == OpCreate || o == OpTruncate
	case FaultTorn:
		return o == OpWrite
	case FaultDropSync:
		return o == OpSync || o == OpSyncDir
	case FaultCrash:
		return true
	}
	return false
}

// errno returns the error a non-crash fault surfaces as.
func (f Fault) errno() error {
	if f == FaultENOSPC {
		return syscall.ENOSPC
	}
	return syscall.EIO
}

// ErrCrashed is the error every op returns at and after a simulated power
// loss. A workload that sees it must treat the process as dead: nothing
// after the crash point reached the disk.
var ErrCrashed = errors.New("chaos: simulated power loss")

// IsDiskFault reports whether err is a disk-level fault — injected or
// real ENOSPC/EIO, or a simulated power loss. The serve daemon uses it to
// classify job failures as retryable and to trip degraded mode.
func IsDiskFault(err error) bool {
	return errors.Is(err, syscall.ENOSPC) || errors.Is(err, syscall.EIO) ||
		errors.Is(err, ErrCrashed)
}

// Decision is a Schedule's verdict for one op.
type Decision struct {
	Fault Fault
	// Torn is the exact prefix length a FaultTorn (or the final in-flight
	// write of a FaultCrash) persists; -1 draws it from the Injector's
	// seeded generator.
	Torn int
}

// Schedule decides which fault, if any, to inject at the n-th I/O op. A
// Schedule must be a pure function of (n, op) — no internal state — so it
// is safe for concurrent use and a fixed seed replays the identical fault
// campaign.
type Schedule interface {
	Draw(n uint64, op Op) Decision
}

// AtOp injects exactly one fault, at global op index N. It is the
// syscall-level analogue of the glitcher's trigger point: sweep N across
// a workload's op count and every I/O instant gets its turn.
type AtOp struct {
	N     uint64
	Fault Fault
	Torn  int // exact torn prefix; -1 = seeded draw
}

// Draw implements Schedule.
func (a AtOp) Draw(n uint64, _ Op) Decision {
	if n == a.N {
		return Decision{Fault: a.Fault, Torn: a.Torn}
	}
	return Decision{Torn: -1}
}

// FaultAt is AtOp with a seeded torn draw.
func FaultAt(n uint64, f Fault) AtOp { return AtOp{N: n, Fault: f, Torn: -1} }

// Plan composes pinned faults: the first member claiming an op index
// wins. It expresses multi-fault scenarios like "drop the directory fsync
// at op 4, then lose power at op 9".
type Plan []AtOp

// Draw implements Schedule.
func (p Plan) Draw(n uint64, op Op) Decision {
	for _, a := range p {
		if d := a.Draw(n, op); d.Fault != FaultNone {
			return d
		}
	}
	return Decision{Torn: -1}
}

// Overlay composes heterogeneous schedules: the first member injecting at
// an op wins. Use it to pin a crash on top of a seeded background mix.
type Overlay []Schedule

// Draw implements Schedule.
func (o Overlay) Draw(n uint64, op Op) Decision {
	for _, s := range o {
		if d := s.Draw(n, op); d.Fault != FaultNone {
			return d
		}
	}
	return Decision{Torn: -1}
}

// After injects Fault on every eligible op from index N on — a disk that
// fills up (persistent ENOSPC) or goes bad (persistent EIO) and stays
// that way. This is the schedule behind the daemon's degraded-mode tests.
type After struct {
	N     uint64
	Fault Fault
}

// Draw implements Schedule.
func (a After) Draw(n uint64, op Op) Decision {
	if n >= a.N && a.Fault.eligible(op) {
		return Decision{Fault: a.Fault, Torn: -1}
	}
	return Decision{Torn: -1}
}

// Seeded injects faults on a deterministic pseudo-random schedule: on
// average one fault per Every eligible ops, the class drawn uniformly
// from Classes. The draw is a stateless LCG-based mix of (Seed, n), so
// concurrent ops and resumed runs see the same schedule.
type Seeded struct {
	Seed  uint64
	Every uint64 // mean ops between injections; 0 disables
	// Classes to draw from; nil = ENOSPC, EIO, torn and dropped-fsync
	// (crash excluded: a seeded sweep that kills the process is usually a
	// separate, pinned experiment).
	Classes []Fault
}

// DefaultClasses is the Seeded schedule's default fault mix.
var DefaultClasses = []Fault{FaultENOSPC, FaultEIO, FaultTorn, FaultDropSync}

// Draw implements Schedule.
func (s Seeded) Draw(n uint64, op Op) Decision {
	if s.Every == 0 {
		return Decision{Torn: -1}
	}
	h := Mix(s.Seed, n)
	if h%s.Every != 0 {
		return Decision{Torn: -1}
	}
	classes := s.Classes
	if classes == nil {
		classes = DefaultClasses
	}
	f := classes[(h>>32)%uint64(len(classes))]
	if !f.eligible(op) {
		return Decision{Torn: -1}
	}
	return Decision{Fault: f, Torn: -1}
}

// Mix hashes (seed, n) to a well-distributed 64-bit value: one Knuth
// MMIX LCG step over the seed/index blend, then an xorshift-multiply
// finalizer. Stateless, so schedules built on it are pure functions of
// the op index.
func Mix(seed, n uint64) uint64 {
	x := seed ^ (n+1)*0x9E3779B97F4A7C15
	x = x*6364136223846793005 + 1442695040888963407
	x ^= x >> 29
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 32
	return x
}

// Toggle is a mutable schedule for tests that flip a persistent fault on
// and off mid-workload (e.g. "disk fills up while the daemon is running,
// then recovers"). The zero value injects nothing. Unlike the pure
// schedules it carries state, held atomically for concurrent use.
type Toggle struct {
	fault atomic.Uint32
}

// Set makes every eligible op from now on fail with f (FaultNone clears).
func (t *Toggle) Set(f Fault) { t.fault.Store(uint32(f)) }

// Draw implements Schedule.
func (t *Toggle) Draw(_ uint64, op Op) Decision {
	f := Fault(t.fault.Load())
	if f != FaultNone && f.eligible(op) {
		return Decision{Fault: f, Torn: -1}
	}
	return Decision{Torn: -1}
}

// faultErr wraps an injected errno with op/path context while keeping
// errors.Is(err, syscall.ENOSPC/EIO) working for classification.
func faultErr(op Op, path string, f Fault) error {
	return &os.PathError{Op: "chaos " + op.String(), Path: path, Err: f.errno()}
}
