package chaos

import (
	"os"
	"sync"

	"glitchlab/internal/obs"
)

// Metric names the injector maintains when given a registry. Per-class
// injection counts live under "chaos.injected_<class>_total".
const (
	MetricInjected = "chaos.faults_injected_total"
	MetricCrashes  = "chaos.crashes_total"
	MetricOps      = "chaos.fs_ops_total"
)

// Injector is a fault-injecting FS. It forwards every op to an inner FS
// (normally OS), assigning each a global op index and consulting its
// Schedule; on top of error injection it maintains a durability model of
// the bytes and directory entries a power loss would preserve, so
// FaultCrash (or PowerLoss) rolls the real directory tree back to exactly
// the state a kill at that syscall would have left on disk:
//
//   - file bytes written since the last successful Sync are truncated
//     away, except for a deterministically drawn prefix (the torn tail a
//     partially flushed page cache leaves behind);
//   - a Sync that was hit by FaultDropSync reported success but made
//     nothing durable, so its bytes are lost too;
//   - renames and file creations in a directory with no successful
//     SyncDir since are undone (the rename target reverts to its previous
//     content; the created file vanishes).
//
// Deliberate simplifications, documented so tests don't chase ghosts:
// directory creation (MkdirAll) and Remove are treated as immediately
// durable, file content that predates the Injector is treated as durable,
// and only append-style writes are modeled (every writer in runctl and
// serve appends or writes fresh temp files).
//
// All methods are safe for concurrent use; the whole injector serializes
// on one mutex, which is fine for the checkpoint-grade I/O rates it
// wraps.
type Injector struct {
	inner FS
	sched Schedule

	mu      sync.Mutex
	ops     uint64
	crashed bool
	rng     uint64
	files   map[string]*tailState
	pending map[string][]nsOp // per-directory namespace ops not yet dir-synced
	onCrash func()

	injected map[Fault]*obs.Counter
	injTotal *obs.Counter
	crashes  *obs.Counter
	opsTotal *obs.Counter
}

// tailState tracks one file's durability: how many bytes a power loss is
// guaranteed to preserve versus how many exist right now.
type tailState struct {
	durable int64
	size    int64
}

// nsOp is one namespace operation (create or rename) whose directory
// entry is not yet durable.
type nsOp struct {
	rename      bool
	path        string // created path, or rename target
	old         string // rename source
	prevData    []byte // rename target's prior content
	prevExisted bool
	prevMode    os.FileMode
}

// NewInjector wraps inner with the given fault schedule (nil injects
// nothing — useful for counting a workload's ops).
func NewInjector(inner FS, sched Schedule) *Injector {
	return &Injector{
		inner:   inner,
		sched:   sched,
		rng:     0x9E3779B97F4A7C15,
		files:   map[string]*tailState{},
		pending: map[string][]nsOp{},
	}
}

// WithRegistry reports per-class injection counters into reg. Returns the
// injector for chaining.
func (in *Injector) WithRegistry(reg *obs.Registry) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.injected = map[Fault]*obs.Counter{}
	for f := FaultENOSPC; f < numFaults; f++ {
		in.injected[f] = reg.Counter("chaos.injected_" + f.String() + "_total")
	}
	in.injTotal = reg.Counter(MetricInjected)
	in.crashes = reg.Counter(MetricCrashes)
	in.opsTotal = reg.Counter(MetricOps)
	return in
}

// WithSeed reseeds the injector's internal generator (torn-length draws).
func (in *Injector) WithSeed(seed uint64) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rng = seed | 1
	return in
}

// OnCrash installs a hook invoked after a FaultCrash has rolled the disk
// state back. The CLIs pass os.Exit here so "crash at op N" genuinely
// kills the process; in-process tests leave it nil and observe ErrCrashed
// instead.
func (in *Injector) OnCrash(fn func()) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.onCrash = fn
	return in
}

// Ops returns how many operations have been issued so far — run a
// workload once over a fault-free Injector to learn its op count, then
// sweep AtOp across [0, Ops()).
func (in *Injector) Ops() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops
}

// Crashed reports whether a simulated power loss has occurred.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// PowerLoss forces the power-loss rollback immediately, outside the
// schedule — tests use it to observe what a fault made (or failed to
// make) durable after the workload finished.
func (in *Injector) PowerLoss() {
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.crashed {
		in.powerLossLocked()
	}
}

// draw advances the op counter and fetches the schedule's decision.
// Caller holds in.mu.
func (in *Injector) drawLocked(op Op) Decision {
	n := in.ops
	in.ops++
	if in.opsTotal != nil {
		in.opsTotal.Inc()
	}
	if in.sched == nil {
		return Decision{Torn: -1}
	}
	d := in.sched.Draw(n, op)
	if d.Fault != FaultNone {
		if in.injTotal != nil {
			in.injTotal.Inc()
			in.injected[d.Fault].Inc()
		}
	}
	return d
}

// nextLocked advances the internal LCG. Caller holds in.mu.
func (in *Injector) nextLocked() uint64 {
	in.rng = in.rng*6364136223846793005 + 1442695040888963407
	return in.rng >> 11
}

// crashLocked applies the power loss and surfaces it. Caller holds in.mu.
func (in *Injector) crashLocked() error {
	in.powerLossLocked()
	if in.onCrash != nil {
		in.onCrash()
	}
	return ErrCrashed
}

// powerLossLocked rolls the inner filesystem back to the durable image:
// truncate every tracked file to its durable length plus a drawn torn
// prefix, then undo un-fsynced namespace ops newest-first.
func (in *Injector) powerLossLocked() {
	in.crashed = true
	if in.crashes != nil {
		in.crashes.Inc()
	}
	for path, st := range in.files {
		if st.size <= st.durable {
			continue
		}
		keep := st.durable + int64(in.nextLocked()%uint64(st.size-st.durable+1))
		_ = in.inner.Truncate(path, keep)
		st.size, st.durable = keep, keep
	}
	for dir, ops := range in.pending {
		for i := len(ops) - 1; i >= 0; i-- {
			op := ops[i]
			if op.rename {
				_ = in.inner.Rename(op.path, op.old)
				if st, ok := in.files[op.path]; ok {
					in.files[op.old] = st
					delete(in.files, op.path)
				}
				if op.prevExisted {
					_ = writeAll(in.inner, op.path, op.prevData, op.prevMode)
				}
			} else {
				_ = in.inner.Remove(op.path)
				delete(in.files, op.path)
			}
		}
		delete(in.pending, dir)
	}
}

// FS interface.

func (in *Injector) MkdirAll(path string, perm os.FileMode) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return ErrCrashed
	}
	switch d := in.drawLocked(OpMkdir); d.Fault {
	case FaultENOSPC, FaultEIO:
		return faultErr(OpMkdir, path, d.Fault)
	case FaultCrash:
		return in.crashLocked()
	}
	return in.inner.MkdirAll(path, perm)
}

func (in *Injector) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return nil, ErrCrashed
	}
	switch d := in.drawLocked(OpOpen); d.Fault {
	case FaultENOSPC, FaultEIO:
		return nil, faultErr(OpOpen, path, d.Fault)
	case FaultCrash:
		return nil, in.crashLocked()
	}
	var size int64
	existed := false
	if info, err := in.inner.Stat(path); err == nil {
		size, existed = info.Size(), true
	}
	f, err := in.inner.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	if !existed && flag&os.O_CREATE != 0 {
		dir := dirOf(path)
		in.pending[dir] = append(in.pending[dir], nsOp{path: path})
	}
	if st, ok := in.files[path]; ok {
		// A second handle on a tracked path (append streams reopened by
		// lifecycle events): keep the existing durability state.
		return &injFile{in: in, f: f, path: path, st: st}, nil
	}
	st := &tailState{durable: size, size: size}
	in.files[path] = st
	return &injFile{in: in, f: f, path: path, st: st}, nil
}

func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return nil, ErrCrashed
	}
	switch d := in.drawLocked(OpCreate); d.Fault {
	case FaultENOSPC, FaultEIO:
		return nil, faultErr(OpCreate, dir+"/"+pattern, d.Fault)
	case FaultCrash:
		return nil, in.crashLocked()
	}
	f, err := in.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	path := f.Name()
	in.pending[dir] = append(in.pending[dir], nsOp{path: path})
	st := &tailState{}
	in.files[path] = st
	return &injFile{in: in, f: f, path: path, st: st}, nil
}

func (in *Injector) ReadFile(path string) ([]byte, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return nil, ErrCrashed
	}
	switch d := in.drawLocked(OpRead); d.Fault {
	case FaultENOSPC, FaultEIO:
		return nil, faultErr(OpRead, path, d.Fault)
	case FaultCrash:
		return nil, in.crashLocked()
	}
	return in.inner.ReadFile(path)
}

func (in *Injector) ReadDir(path string) ([]os.DirEntry, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return nil, ErrCrashed
	}
	switch d := in.drawLocked(OpReadDir); d.Fault {
	case FaultENOSPC, FaultEIO:
		return nil, faultErr(OpReadDir, path, d.Fault)
	case FaultCrash:
		return nil, in.crashLocked()
	}
	return in.inner.ReadDir(path)
}

func (in *Injector) Stat(path string) (os.FileInfo, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return nil, ErrCrashed
	}
	// Stat is counted but never faulted: the callers that probe existence
	// (resume detection, recovery) must misread state only through the
	// durability model, not through spurious metadata errors.
	if d := in.drawLocked(OpStat); d.Fault == FaultCrash {
		return nil, in.crashLocked()
	}
	return in.inner.Stat(path)
}

func (in *Injector) Rename(oldpath, newpath string) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return ErrCrashed
	}
	switch d := in.drawLocked(OpRename); d.Fault {
	case FaultENOSPC, FaultEIO:
		return faultErr(OpRename, newpath, d.Fault)
	case FaultCrash:
		return in.crashLocked()
	}
	op := nsOp{rename: true, path: newpath, old: oldpath, prevMode: 0o666}
	if info, err := in.inner.Stat(newpath); err == nil {
		op.prevExisted = true
		op.prevMode = info.Mode()
		if data, err := in.inner.ReadFile(newpath); err == nil {
			op.prevData = data
		}
	}
	if err := in.inner.Rename(oldpath, newpath); err != nil {
		return err
	}
	in.pending[dirOf(newpath)] = append(in.pending[dirOf(newpath)], op)
	if st, ok := in.files[oldpath]; ok {
		in.files[newpath] = st
		delete(in.files, oldpath)
	}
	return nil
}

func (in *Injector) Remove(path string) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return ErrCrashed
	}
	switch d := in.drawLocked(OpRemove); d.Fault {
	case FaultEIO:
		return faultErr(OpRemove, path, d.Fault)
	case FaultCrash:
		return in.crashLocked()
	}
	err := in.inner.Remove(path)
	if err == nil {
		delete(in.files, path)
		// Drop any pending create of the same path: the entry is gone
		// either way.
		dir := dirOf(path)
		ops := in.pending[dir]
		for i := len(ops) - 1; i >= 0; i-- {
			if !ops[i].rename && ops[i].path == path {
				in.pending[dir] = append(ops[:i:i], ops[i+1:]...)
				break
			}
		}
	}
	return err
}

func (in *Injector) Truncate(path string, size int64) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return ErrCrashed
	}
	switch d := in.drawLocked(OpTruncate); d.Fault {
	case FaultEIO:
		return faultErr(OpTruncate, path, d.Fault)
	case FaultCrash:
		return in.crashLocked()
	}
	err := in.inner.Truncate(path, size)
	if err == nil {
		if st, ok := in.files[path]; ok {
			if st.size > size {
				st.size = size
			}
			if st.durable > size {
				st.durable = size
			}
		}
	}
	return err
}

func (in *Injector) SyncDir(dir string) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return ErrCrashed
	}
	switch d := in.drawLocked(OpSyncDir); d.Fault {
	case FaultEIO:
		return faultErr(OpSyncDir, dir, d.Fault)
	case FaultDropSync:
		return nil // lies: entries stay pending, a crash still undoes them
	case FaultCrash:
		return in.crashLocked()
	}
	if err := in.inner.SyncDir(dir); err != nil {
		return err
	}
	delete(in.pending, dir)
	return nil
}

// injFile wraps an inner File with fault injection and durability
// tracking.
type injFile struct {
	in   *Injector
	f    File
	path string
	st   *tailState
}

func (f *injFile) Write(p []byte) (int, error) {
	in := f.in
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return 0, ErrCrashed
	}
	switch d := in.drawLocked(OpWrite); d.Fault {
	case FaultENOSPC, FaultEIO:
		return 0, faultErr(OpWrite, f.path, d.Fault)
	case FaultTorn:
		k := d.Torn
		if k < 0 || k > len(p) {
			k = int(in.nextLocked() % uint64(len(p)+1))
		}
		n, err := f.f.Write(p[:k])
		f.st.size += int64(n)
		if err == nil {
			err = faultErr(OpWrite, f.path, FaultEIO)
		}
		return n, err
	case FaultCrash:
		// The in-flight write's pages may partially reach the platter:
		// land a drawn (or pinned) prefix before the lights go out.
		k := d.Torn
		if k < 0 || k > len(p) {
			k = int(in.nextLocked() % uint64(len(p)+1))
		}
		n, _ := f.f.Write(p[:k])
		f.st.size += int64(n)
		return 0, in.crashLocked()
	}
	n, err := f.f.Write(p)
	f.st.size += int64(n)
	return n, err
}

func (f *injFile) Sync() error {
	in := f.in
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return ErrCrashed
	}
	switch d := in.drawLocked(OpSync); d.Fault {
	case FaultENOSPC, FaultEIO:
		return faultErr(OpSync, f.path, d.Fault)
	case FaultDropSync:
		return nil // lies: durable mark does not advance
	case FaultCrash:
		return in.crashLocked()
	}
	if err := f.f.Sync(); err != nil {
		return err
	}
	f.st.durable = f.st.size
	return nil
}

func (f *injFile) Close() error {
	// Close is passed through without an op draw: it neither allocates
	// nor makes anything durable, and keeping it out of the op space
	// keeps crash-point sweeps dense with meaningful faults.
	in := f.in
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return ErrCrashed
	}
	return f.f.Close()
}

func (f *injFile) Chmod(mode os.FileMode) error {
	in := f.in
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return ErrCrashed
	}
	return f.f.Chmod(mode)
}

func (f *injFile) Name() string { return f.f.Name() }
