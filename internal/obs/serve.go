package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns the registry's HTTP surface (see Mux).
func (r *Registry) Handler() http.Handler { return r.Mux() }

// Mux returns the registry's HTTP surface as a mutable mux, so a daemon
// (glitchd) can mount its own API next to the observability endpoints:
//
//	/metrics        text snapshot
//	/metrics.json   JSON snapshot
//	/debug/vars     standard expvar (includes this registry if published)
//	/debug/pprof/*  standard runtime profiling endpoints
func (r *Registry) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(r.Snapshot().Text()))
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		b, err := r.Snapshot().JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(b)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the registry's HTTP endpoint on addr in a background
// goroutine and returns the server and the bound address (useful with
// ":0"). The caller owns shutdown via srv.Close.
func Serve(addr string, r *Registry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: r.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
