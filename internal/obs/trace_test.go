package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// fixedClock advances 100µs per reading, making every t_us/dur_us in the
// trace deterministic for the golden file.
func fixedClock() func() time.Time {
	base := time.Unix(1700000000, 0)
	n := 0
	return func() time.Time {
		n++
		return base.Add(time.Duration(n) * 100 * time.Microsecond)
	}
}

func TestTracerGolden(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.SetClock(fixedClock())
	tr.SetSampling(2)
	tr.SetFailureRing(2)

	span := tr.StartSpan("campaign.run", map[string]any{"model": "AND"})
	tr.Event("campaign.exec", map[string]any{"mask": "0x0001", "outcome": "Success"})
	tr.Event("campaign.exec", map[string]any{"mask": "0x0002", "outcome": "Detected"})
	tr.Failure("campaign.exec", map[string]any{"mask": "0x0003", "outcome": "Failed"})
	tr.Failure("campaign.exec", map[string]any{"mask": "0x0004", "outcome": "Failed"})
	tr.Failure("campaign.exec", map[string]any{"mask": "0x0005", "outcome": "Failed"})
	span.End()
	tr.Close()

	// Every line must parse as a Record on its own.
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	lines := 0
	for sc.Scan() {
		lines++
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", lines, err, sc.Text())
		}
		if rec.Type == "" {
			t.Fatalf("line %d has no type: %s", lines, sc.Text())
		}
	}
	// 1 sampled event (2 of 2 seen, every=2) + 1 span + 2 ring failures
	// (ring size 2, oldest of 3 dropped) + 1 summary.
	if lines != 5 {
		t.Errorf("trace has %d lines, want 5:\n%s", lines, buf.String())
	}

	path := filepath.Join("testdata", "trace.golden")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace drifted from golden file.\n--- got ---\n%s--- want ---\n%s(run with -update to regenerate)",
			buf.String(), want)
	}
}

func TestTracerSampling(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.SetSampling(3)
	for i := 0; i < 10; i++ {
		tr.Event("e", nil)
	}
	if tr.emitted != 3 { // events 3, 6, 9
		t.Errorf("emitted = %d, want 3", tr.emitted)
	}
	tr.SetSampling(0)
	tr.Event("e", nil)
	if tr.emitted != 3 {
		t.Errorf("sampling 0 still emitted: %d", tr.emitted)
	}
}

func TestFailureRingEviction(t *testing.T) {
	tr := NewTracer(nil) // nil sink: ring still works
	tr.SetFailureRing(3)
	for i := 0; i < 5; i++ {
		tr.Failure("f", map[string]any{"i": i})
	}
	got := tr.Failures()
	if len(got) != 3 {
		t.Fatalf("ring holds %d, want 3", len(got))
	}
	for i, rec := range got {
		if want := i + 2; rec.Attrs["i"] != want { // oldest first: 2, 3, 4
			t.Errorf("ring[%d].i = %v, want %d", i, rec.Attrs["i"], want)
		}
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.SetClock(fixedClock())
	tr.SetSampling(5)
	tr.SetFailureRing(5)
	tr.Event("e", nil)
	tr.Failure("f", nil)
	span := tr.StartSpan("s", nil)
	span.End()
	if got := tr.Failures(); got != nil {
		t.Errorf("nil tracer failures = %v", got)
	}
	tr.Close()
}

func TestTracerCloseIdempotent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Close()
	n := buf.Len()
	tr.Close()
	tr.Event("e", nil) // after close: counted but never written
	if buf.Len() != n {
		t.Errorf("writes after Close: %q", buf.String())
	}
}
