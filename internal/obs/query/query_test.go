package query

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"glitchlab/internal/chaos"
)

const sample = `{"type":"span","v":2,"name":"campaign.run","t_us":0,"dur_us":1000}
{"type":"span","v":2,"name":"campaign.sweep","t_us":10,"dur_us":600}
{"type":"span","v":2,"name":"campaign.sweep","t_us":620,"dur_us":300}
{"type":"event","v":2,"name":"campaign.exec","t_us":100}
{"type":"event","v":2,"name":"campaign.exec","t_us":640}
{"type":"failure","v":2,"name":"campaign.exec","t_us":700,"attrs":{"mask":"0x0004"}}
{"type":"summary","v":2,"t_us":1001,"attrs":{"events_seen":3}}
`

func load(t *testing.T, s string) *Trace {
	t.Helper()
	tr, err := Load(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestLoad(t *testing.T) {
	tr := load(t, sample)
	if len(tr.Records) != 7 {
		t.Fatalf("loaded %d records, want 7", len(tr.Records))
	}
	if tr.Torn {
		t.Error("clean trace flagged as torn")
	}
	if tr.Summary == nil || tr.Summary.Attrs["events_seen"] != float64(3) {
		t.Errorf("summary = %+v", tr.Summary)
	}
}

func TestLoadV1RecordsAccepted(t *testing.T) {
	// v1 traces predate the "v" field entirely.
	tr := load(t, `{"type":"event","name":"e","t_us":5}`+"\n")
	if len(tr.Records) != 1 || tr.Records[0].V != 0 {
		t.Fatalf("v1 record: %+v", tr.Records)
	}
}

func TestLoadTornTail(t *testing.T) {
	tr := load(t, sample+`{"type":"event","name":"camp`)
	if !tr.Torn {
		t.Fatal("torn tail not flagged")
	}
	if len(tr.Records) != 7 {
		t.Errorf("torn load kept %d records, want 7", len(tr.Records))
	}
}

func TestLoadMidFileErrorFatal(t *testing.T) {
	bad := `{"type":"event","name":"a","t_us":1}` + "\n" +
		`{"type":"event","na` + "\n" +
		`{"type":"event","name":"b","t_us":2}` + "\n"
	if _, err := Load(strings.NewReader(bad)); err == nil {
		t.Fatal("mid-file garbage must fail the load")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error lacks line number: %v", err)
	}
}

func TestLoadMissingTypeFatal(t *testing.T) {
	bad := `{"name":"a","t_us":1}` + "\n" + `{"type":"event","name":"b","t_us":2}` + "\n"
	if _, err := Load(strings.NewReader(bad)); err == nil {
		t.Fatal("typeless mid-file record must fail the load")
	}
}

func TestRollup(t *testing.T) {
	rows := load(t, sample).Rollup()
	want := []struct {
		kind, name string
		count      uint64
	}{
		{"event", "campaign.exec", 2},
		{"failure", "campaign.exec", 1},
		{"span", "campaign.run", 1},
		{"span", "campaign.sweep", 2},
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d: %+v", len(rows), len(want), rows)
	}
	for i, w := range want {
		r := rows[i]
		if r.Kind != w.kind || r.Name != w.name || r.Count != w.count {
			t.Errorf("row[%d] = %+v, want %s/%s count=%d", i, r, w.kind, w.name, w.count)
		}
	}
	sweep := rows[3]
	if sweep.TotalUs != 900 || sweep.MinUs != 300 || sweep.MaxUs != 600 {
		t.Errorf("sweep stats = %+v", sweep)
	}
	if sweep.P50Us != 300 || sweep.P99Us != 600 {
		t.Errorf("sweep percentiles p50=%d p99=%d, want 300/600", sweep.P50Us, sweep.P99Us)
	}
}

func TestPercentile(t *testing.T) {
	vals := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	if got := percentile(vals, 50); got != 50 {
		t.Errorf("p50 = %d, want 50", got)
	}
	if got := percentile(vals, 99); got != 100 {
		t.Errorf("p99 = %d, want 100", got)
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("p50 of empty = %d", got)
	}
	if got := percentile([]int64{7}, 99); got != 7 {
		t.Errorf("p99 of singleton = %d", got)
	}
}

func TestCriticalPath(t *testing.T) {
	path := load(t, sample).CriticalPath()
	if len(path) != 2 {
		t.Fatalf("path has %d nodes, want 2: %+v", len(path), path)
	}
	if path[0].Name != "campaign.run" || path[0].Depth != 0 {
		t.Errorf("root = %+v", path[0])
	}
	// run's children: two sweeps (600 + 300); self = 1000 - 900.
	if path[0].SelfUs != 100 {
		t.Errorf("root self = %d, want 100", path[0].SelfUs)
	}
	// The longer sweep wins the path.
	if path[1].Name != "campaign.sweep" || path[1].DurUs != 600 || path[1].Depth != 1 {
		t.Errorf("leaf = %+v", path[1])
	}
	if path[1].SelfUs != 600 {
		t.Errorf("leaf self = %d, want 600 (no children)", path[1].SelfUs)
	}
}

func TestCriticalPathEmpty(t *testing.T) {
	if p := load(t, `{"type":"event","name":"e","t_us":1}`+"\n").CriticalPath(); p != nil {
		t.Errorf("no spans but path = %+v", p)
	}
}

func TestCorrelateFailures(t *testing.T) {
	fcs := load(t, sample).CorrelateFailures()
	if len(fcs) != 1 {
		t.Fatalf("got %d contexts, want 1", len(fcs))
	}
	fc := fcs[0]
	if fc.Failure.Attrs["mask"] != "0x0004" {
		t.Errorf("failure attrs = %+v", fc.Failure.Attrs)
	}
	// t=700 falls in the second sweep (620..920), the innermost span.
	if fc.Span != "campaign.sweep" || fc.SpanTUs != 620 {
		t.Errorf("enclosing span = %q @%d, want campaign.sweep @620", fc.Span, fc.SpanTUs)
	}
	// Nearest preceding event is the one at t=640.
	if fc.PrevEvent != "campaign.exec" || fc.PrevEventDtUs != 60 {
		t.Errorf("prev event = %q dt=%d, want campaign.exec dt=60", fc.PrevEvent, fc.PrevEventDtUs)
	}
}

func TestCorrelateFailureOutsideSpans(t *testing.T) {
	tr := load(t, `{"type":"failure","name":"f","t_us":5}`+"\n")
	fcs := tr.CorrelateFailures()
	if len(fcs) != 1 || fcs[0].Span != "" || fcs[0].PrevEvent != "" {
		t.Errorf("orphan failure context = %+v", fcs)
	}
}

func TestRollupOrderIndependent(t *testing.T) {
	// The same record multiset in a different order (a worker-sharded
	// run's interleaving) must roll up identically.
	lines := strings.Split(strings.TrimSpace(sample), "\n")
	reordered := strings.Join([]string{
		lines[4], lines[1], lines[6], lines[0], lines[5], lines[2], lines[3],
	}, "\n") + "\n"
	a := load(t, sample).Rollup()
	b := load(t, reordered).Rollup()
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("row[%d] differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestLoadTornTailEveryBoundary sweeps a chaos-injected short write over
// every byte boundary of the final record: whatever prefix of the last
// line a power loss leaves behind, Load must keep every whole preceding
// record, flag (and drop) any partial tail, and never fail.
func TestLoadTornTailEveryBoundary(t *testing.T) {
	idx := strings.LastIndex(strings.TrimSuffix(sample, "\n"), "\n")
	head, last := sample[:idx+1], sample[idx+1:] // last keeps its newline

	for k := 0; k <= len(last); k++ {
		path := filepath.Join(t.TempDir(), "trace.jsonl")
		if err := os.WriteFile(path, []byte(head), 0o666); err != nil {
			t.Fatal(err)
		}
		// Op 0 is the append open; op 1 is the write, torn to exactly k
		// bytes of the final record.
		inj := chaos.NewInjector(chaos.OS{},
			chaos.AtOp{N: 1, Fault: chaos.FaultTorn, Torn: k})
		f, err := inj.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o666)
		if err != nil {
			t.Fatalf("k=%d: open: %v", k, err)
		}
		_, werr := f.Write([]byte(last))
		_ = f.Close()
		if k < len(last) && werr == nil {
			t.Fatalf("k=%d: torn write reported success", k)
		}

		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := Load(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("k=%d: Load failed on torn tail: %v", k, err)
		}
		switch {
		case k >= len(last)-1:
			// The whole record landed (the missing byte at k==len-1 is
			// only the trailing newline): all 7 records, summary intact.
			if len(tr.Records) != 7 || tr.Summary == nil {
				t.Fatalf("k=%d: got %d records (summary %v), want 7 whole",
					k, len(tr.Records), tr.Summary != nil)
			}
		case k == 0:
			// Nothing of the final record landed: a clean 6-record trace.
			if len(tr.Records) != 6 || tr.Torn {
				t.Fatalf("k=0: got %d records torn=%v, want clean 6", len(tr.Records), tr.Torn)
			}
		default:
			// A strict partial prefix: dropped and flagged, never kept.
			if len(tr.Records) != 6 || !tr.Torn {
				t.Fatalf("k=%d: got %d records torn=%v, want 6 + torn flag",
					k, len(tr.Records), tr.Torn)
			}
		}
	}
}
