// Package query loads and analyzes the JSONL execution traces the obs
// tracer writes: per-span/per-event rollups with duration percentiles,
// critical-path reconstruction from span containment, and
// failure-to-span/event correlation. It is the analysis engine behind
// cmd/glitchtrace.
//
// Loading follows the run-controller manifest discipline (see
// internal/runctl): a torn, unparseable final line — the signature of a
// crash mid-append — is dropped and flagged rather than failing the
// load, while an unparseable line in the middle of the file is a real
// error. Both trace schema versions are accepted: v1 records predate the
// "v" field and read as version 0.
package query

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"glitchlab/internal/obs"
)

// Trace is one loaded JSONL trace file.
type Trace struct {
	Records []obs.Record
	// Torn reports that the final line was unparseable and dropped (the
	// trace's writer crashed mid-append).
	Torn bool
	// Summary points at the trace's summary record, if present.
	Summary *obs.Record
}

// Load reads a JSONL trace. A torn final line is tolerated (Trace.Torn);
// a malformed line anywhere else fails with its line number.
func Load(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	var pendingErr error
	pendingLine := 0
	for sc.Scan() {
		line++
		if pendingErr != nil {
			return nil, fmt.Errorf("trace line %d: %w", pendingLine, pendingErr)
		}
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec obs.Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			// Only fatal if another line follows; a bad last line is a
			// torn tail.
			pendingErr, pendingLine = err, line
			continue
		}
		if rec.Type == "" {
			pendingErr, pendingLine = fmt.Errorf("record has no type"), line
			continue
		}
		t.Records = append(t.Records, rec)
		if rec.Type == "summary" {
			t.Summary = &t.Records[len(t.Records)-1]
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if pendingErr != nil {
		t.Torn = true
	}
	return t, nil
}

// LoadFile loads a trace from disk.
func LoadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// RollupRow aggregates all records sharing one (kind, name). Duration
// statistics are only meaningful for spans — events and failures are
// points in time, so their duration fields stay zero.
type RollupRow struct {
	Kind    string `json:"kind"` // "span", "event" or "failure"
	Name    string `json:"name"`
	Count   uint64 `json:"count"`
	TotalUs int64  `json:"total_us,omitempty"`
	MinUs   int64  `json:"min_us,omitempty"`
	P50Us   int64  `json:"p50_us,omitempty"`
	P99Us   int64  `json:"p99_us,omitempty"`
	MaxUs   int64  `json:"max_us,omitempty"`
}

// Rollup aggregates the trace per (kind, name), sorted by kind then name
// so the output is deterministic for a given record multiset — and
// therefore identical for serial and worker-sharded runs of the same
// campaign, which emit the same records in different orders.
func (t *Trace) Rollup() []RollupRow {
	type key struct{ kind, name string }
	durs := map[key][]int64{}
	for _, rec := range t.Records {
		if rec.Type == "summary" {
			continue
		}
		k := key{rec.Type, rec.Name}
		durs[k] = append(durs[k], rec.DurUs)
	}
	rows := make([]RollupRow, 0, len(durs))
	for k, ds := range durs {
		row := RollupRow{Kind: k.kind, Name: k.name, Count: uint64(len(ds))}
		if k.kind == "span" {
			sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
			for _, d := range ds {
				row.TotalUs += d
			}
			row.MinUs = ds[0]
			row.MaxUs = ds[len(ds)-1]
			row.P50Us = percentile(ds, 50)
			row.P99Us = percentile(ds, 99)
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Kind != rows[j].Kind {
			return rows[i].Kind < rows[j].Kind
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}

// percentile returns the nearest-rank p-th percentile of sorted values.
func percentile(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := (len(sorted)*p + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// PathNode is one hop of the critical path: a span, its depth in the
// containment tree, and how much of its duration is its own (not covered
// by the child spans on the path's next level).
type PathNode struct {
	Name   string `json:"name"`
	Depth  int    `json:"depth"`
	TUs    int64  `json:"t_us"`
	DurUs  int64  `json:"dur_us"`
	SelfUs int64  `json:"self_us"`
}

// CriticalPath reconstructs the span containment tree (a span is a child
// of the smallest span whose [t_us, t_us+dur_us] interval contains its
// own) and walks from the longest root span down the longest child at
// each level. Ties break toward the earlier, then lexically smaller
// span, so the path is deterministic.
func (t *Trace) CriticalPath() []PathNode {
	type node struct {
		rec      obs.Record
		children []int
		childDur int64
	}
	var nodes []node
	for _, rec := range t.Records {
		if rec.Type == "span" {
			nodes = append(nodes, node{rec: rec})
		}
	}
	if len(nodes) == 0 {
		return nil
	}
	// Sort enclosing-first: by start ascending, then duration descending,
	// then name, so a stack walk assigns each span to its innermost
	// enclosing predecessor.
	sort.SliceStable(nodes, func(i, j int) bool {
		a, b := nodes[i].rec, nodes[j].rec
		if a.TUs != b.TUs {
			return a.TUs < b.TUs
		}
		if a.DurUs != b.DurUs {
			return a.DurUs > b.DurUs
		}
		return a.Name < b.Name
	})
	var roots []int
	var stack []int
	for i := range nodes {
		s := nodes[i].rec
		for len(stack) > 0 {
			p := nodes[stack[len(stack)-1]].rec
			if s.TUs >= p.TUs && s.TUs+s.DurUs <= p.TUs+p.DurUs {
				break
			}
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			roots = append(roots, i)
		} else {
			p := stack[len(stack)-1]
			nodes[p].children = append(nodes[p].children, i)
			nodes[p].childDur += s.DurUs
		}
		stack = append(stack, i)
	}

	longest := func(idxs []int) int {
		best := -1
		for _, i := range idxs {
			if best == -1 || nodes[i].rec.DurUs > nodes[best].rec.DurUs {
				best = i
			}
		}
		return best
	}

	var path []PathNode
	for depth, at := 0, longest(roots); at != -1; depth++ {
		n := nodes[at]
		self := n.rec.DurUs - n.childDur
		if self < 0 {
			self = 0
		}
		path = append(path, PathNode{
			Name:   n.rec.Name,
			Depth:  depth,
			TUs:    n.rec.TUs,
			DurUs:  n.rec.DurUs,
			SelfUs: self,
		})
		at = longest(n.children)
	}
	return path
}

// FailureContext correlates one failure record with its surroundings:
// the innermost span whose interval contains the failure's instant, and
// the nearest event at or before it.
type FailureContext struct {
	Failure obs.Record `json:"failure"`
	// Span is the innermost enclosing span's name ("" when the failure
	// falls outside every span).
	Span      string `json:"span,omitempty"`
	SpanTUs   int64  `json:"span_t_us,omitempty"`
	SpanDurUs int64  `json:"span_dur_us,omitempty"`
	// PrevEvent is the nearest sampled event at or before the failure
	// ("" when none precedes it), with the gap between them.
	PrevEvent     string `json:"prev_event,omitempty"`
	PrevEventDtUs int64  `json:"prev_event_dt_us,omitempty"`
}

// CorrelateFailures matches every failure record in the trace against
// the spans and sampled events around it, in trace order.
func (t *Trace) CorrelateFailures() []FailureContext {
	var spans, events []obs.Record
	for _, rec := range t.Records {
		switch rec.Type {
		case "span":
			spans = append(spans, rec)
		case "event":
			events = append(events, rec)
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].TUs < events[j].TUs })

	var out []FailureContext
	for _, rec := range t.Records {
		if rec.Type != "failure" {
			continue
		}
		fc := FailureContext{Failure: rec}
		// Innermost enclosing span: smallest containing interval; ties
		// break toward the later-starting (more deeply nested) span.
		bestDur := int64(-1)
		for _, s := range spans {
			if rec.TUs < s.TUs || rec.TUs > s.TUs+s.DurUs {
				continue
			}
			if bestDur == -1 || s.DurUs < bestDur ||
				(s.DurUs == bestDur && s.TUs > fc.SpanTUs) {
				fc.Span, fc.SpanTUs, fc.SpanDurUs = s.Name, s.TUs, s.DurUs
				bestDur = s.DurUs
			}
		}
		// Nearest event at or before the failure.
		lo, hi := 0, len(events)
		for lo < hi {
			mid := (lo + hi) / 2
			if events[mid].TUs <= rec.TUs {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo > 0 {
			ev := events[lo-1]
			fc.PrevEvent = ev.Name
			fc.PrevEventDtUs = rec.TUs - ev.TUs
		}
		out = append(out, fc)
	}
	return out
}
