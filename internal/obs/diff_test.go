package obs

import (
	"strings"
	"testing"
)

func TestSnapshotDiff(t *testing.T) {
	before := Snapshot{
		Counters: []CounterValue{
			{Name: "campaign.runs_total", Value: 100},
			{Name: "campaign.retired", Value: 5},
		},
		Gauges: []GaugeValue{{Name: "campaign.workers", Value: 1}},
		Histograms: []HistogramValue{
			{Name: "campaign.exec_cycles", Count: 100, Sum: 5000},
		},
	}
	after := Snapshot{
		Counters: []CounterValue{
			{Name: "campaign.runs_total", Value: 300},
			{Name: "campaign.faults", Value: 7},
		},
		Gauges: []GaugeValue{{Name: "campaign.workers", Value: 4}},
		Histograms: []HistogramValue{
			{Name: "campaign.exec_cycles", Count: 300, Sum: 20000},
		},
	}

	d := SnapshotDiff(before, after)

	byName := map[string]DiffEntry{}
	for _, e := range d.Entries {
		byName[e.Kind+"/"+e.Name] = e
	}

	runs := byName["counter/campaign.runs_total"]
	if runs.Delta != 200 || runs.Missing != "" {
		t.Errorf("runs_total = %+v, want delta 200", runs)
	}
	if e := byName["counter/campaign.retired"]; e.Missing != "after" || e.Delta != -5 {
		t.Errorf("retired (removed) = %+v", e)
	}
	if e := byName["counter/campaign.faults"]; e.Missing != "before" || e.Delta != 7 {
		t.Errorf("faults (added) = %+v", e)
	}
	if e := byName["gauge/campaign.workers"]; e.Delta != 3 {
		t.Errorf("workers = %+v, want delta 3", e)
	}
	h := byName["histogram/campaign.exec_cycles"]
	if h.Delta != 200 || h.SumDelta != 15000 {
		t.Errorf("exec_cycles = %+v, want count delta 200 sum delta 15000", h)
	}

	// Deterministic ordering: counters, gauges, histograms, names sorted
	// within each kind.
	wantOrder := []string{
		"counter/campaign.faults",
		"counter/campaign.retired",
		"counter/campaign.runs_total",
		"gauge/campaign.workers",
		"histogram/campaign.exec_cycles",
	}
	if len(d.Entries) != len(wantOrder) {
		t.Fatalf("got %d entries, want %d: %+v", len(d.Entries), len(wantOrder), d.Entries)
	}
	for i, e := range d.Entries {
		if got := e.Kind + "/" + e.Name; got != wantOrder[i] {
			t.Errorf("entry[%d] = %s, want %s", i, got, wantOrder[i])
		}
	}

	txt := d.Text()
	for _, want := range []string{
		"counter campaign.runs_total 100 -> 300 (+200)",
		"counter campaign.retired 5 -> 0 (-5) [only in before]",
		"histogram campaign.exec_cycles count 100 -> 300 (+200) sum +15000",
	} {
		if !strings.Contains(txt, want) {
			t.Errorf("Text() missing %q:\n%s", want, txt)
		}
	}
}

func TestSnapshotDiffIdentical(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Histogram("h", []float64{1, 10}).Observe(5)
	s := r.Snapshot()
	d := SnapshotDiff(s, s)
	if got := d.Changed(); len(got) != 0 {
		t.Errorf("self-diff has changes: %+v", got)
	}
	if len(d.Entries) != 2 {
		t.Errorf("self-diff has %d entries, want 2", len(d.Entries))
	}
}

func TestSnapshotDiffRoundTrip(t *testing.T) {
	d := SnapshotDiff(Snapshot{}, Snapshot{Counters: []CounterValue{{Name: "x", Value: 1}}})
	if _, err := d.JSON(); err != nil {
		t.Fatal(err)
	}
}
