package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// DiffEntry is one metric's change between two snapshots. For counters
// and gauges Before/After/Delta carry the metric value; for histograms
// they carry the observation count and SumDelta carries the change in the
// observation sum. Missing marks a metric present in only one snapshot
// ("before" or "after"); the absent side reads as zero.
type DiffEntry struct {
	Kind     string  `json:"kind"` // "counter", "gauge" or "histogram"
	Name     string  `json:"name"`
	Before   float64 `json:"before"`
	After    float64 `json:"after"`
	Delta    float64 `json:"delta"`
	SumDelta float64 `json:"sum_delta,omitempty"`
	Missing  string  `json:"missing,omitempty"`
}

// Diff is the metric-by-metric comparison of two snapshots, ordered like
// Snapshot itself (counters, gauges, histograms; each sorted by name) so
// renderings are deterministic. This type and SnapshotDiff are a stable
// interface: the glitchtrace CLI renders it today and the planned glitchd
// daemon will ship it between processes.
type Diff struct {
	Entries []DiffEntry `json:"entries"`
}

// Changed reports the entries whose Delta or SumDelta is non-zero or that
// exist in only one snapshot.
func (d Diff) Changed() []DiffEntry {
	var out []DiffEntry
	for _, e := range d.Entries {
		if e.Delta != 0 || e.SumDelta != 0 || e.Missing != "" {
			out = append(out, e)
		}
	}
	return out
}

// Text renders the diff one metric per line:
//
//	counter campaign.runs_total 1918 -> 3836 (+1918)
//	histogram campaign.exec_cycles count 137 -> 274 (+137) sum +12345
//
// Metrics present in only one snapshot are suffixed with
// "[only in before]" or "[only in after]".
func (d Diff) Text() string {
	var sb strings.Builder
	for _, e := range d.Entries {
		fmt.Fprintf(&sb, "%s %s ", e.Kind, e.Name)
		if e.Kind == "histogram" {
			fmt.Fprintf(&sb, "count ")
		}
		fmt.Fprintf(&sb, "%s -> %s (%s)", fmtFloat(e.Before), fmtFloat(e.After), fmtSigned(e.Delta))
		if e.Kind == "histogram" {
			fmt.Fprintf(&sb, " sum %s", fmtSigned(e.SumDelta))
		}
		if e.Missing != "" {
			fmt.Fprintf(&sb, " [only in %s]", missingSide(e.Missing))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func missingSide(m string) string {
	if m == "before" {
		return "after"
	}
	return "before"
}

func fmtSigned(v float64) string {
	if v >= 0 {
		return "+" + fmtFloat(v)
	}
	return fmtFloat(v)
}

// JSON renders the diff as indented JSON.
func (d Diff) JSON() ([]byte, error) {
	return json.MarshalIndent(d, "", "  ")
}

// SnapshotDiff compares two snapshots metric by metric. Metrics are
// matched by name within their kind; a metric present in only one
// snapshot appears with the absent side read as zero and Missing set.
func SnapshotDiff(before, after Snapshot) Diff {
	var d Diff

	bc := make(map[string]uint64, len(before.Counters))
	for _, c := range before.Counters {
		bc[c.Name] = c.Value
	}
	seen := make(map[string]bool, len(after.Counters))
	for _, c := range after.Counters {
		seen[c.Name] = true
		e := DiffEntry{Kind: "counter", Name: c.Name, After: float64(c.Value)}
		if v, ok := bc[c.Name]; ok {
			e.Before = float64(v)
		} else {
			e.Missing = "before"
		}
		e.Delta = e.After - e.Before
		d.Entries = append(d.Entries, e)
	}
	for _, c := range before.Counters {
		if !seen[c.Name] {
			d.Entries = append(d.Entries, DiffEntry{
				Kind: "counter", Name: c.Name,
				Before: float64(c.Value), Delta: -float64(c.Value),
				Missing: "after",
			})
		}
	}
	sortTail(&d, "counter")

	bg := make(map[string]float64, len(before.Gauges))
	for _, g := range before.Gauges {
		bg[g.Name] = g.Value
	}
	seen = make(map[string]bool, len(after.Gauges))
	for _, g := range after.Gauges {
		seen[g.Name] = true
		e := DiffEntry{Kind: "gauge", Name: g.Name, After: g.Value}
		if v, ok := bg[g.Name]; ok {
			e.Before = v
		} else {
			e.Missing = "before"
		}
		e.Delta = e.After - e.Before
		d.Entries = append(d.Entries, e)
	}
	for _, g := range before.Gauges {
		if !seen[g.Name] {
			d.Entries = append(d.Entries, DiffEntry{
				Kind: "gauge", Name: g.Name,
				Before: g.Value, Delta: -g.Value,
				Missing: "after",
			})
		}
	}
	sortTail(&d, "gauge")

	bh := make(map[string]HistogramValue, len(before.Histograms))
	for _, h := range before.Histograms {
		bh[h.Name] = h
	}
	seen = make(map[string]bool, len(after.Histograms))
	for _, h := range after.Histograms {
		seen[h.Name] = true
		e := DiffEntry{Kind: "histogram", Name: h.Name, After: float64(h.Count)}
		if v, ok := bh[h.Name]; ok {
			e.Before = float64(v.Count)
			e.SumDelta = h.Sum - v.Sum
		} else {
			e.Missing = "before"
			e.SumDelta = h.Sum
		}
		e.Delta = e.After - e.Before
		d.Entries = append(d.Entries, e)
	}
	for _, h := range before.Histograms {
		if !seen[h.Name] {
			d.Entries = append(d.Entries, DiffEntry{
				Kind: "histogram", Name: h.Name,
				Before: float64(h.Count), Delta: -float64(h.Count),
				SumDelta: -h.Sum, Missing: "after",
			})
		}
	}
	sortTail(&d, "histogram")

	return d
}

// sortTail sorts the run of entries of one kind at the end of d by name.
// Kinds are appended in snapshot order (counters, gauges, histograms), so
// sorting each tail as it completes yields the full deterministic order.
func sortTail(d *Diff, kind string) {
	i := len(d.Entries)
	for i > 0 && d.Entries[i-1].Kind == kind {
		i--
	}
	tail := d.Entries[i:]
	sort.SliceStable(tail, func(a, b int) bool { return tail[a].Name < tail[b].Name })
}
