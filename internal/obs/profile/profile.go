// Package profile attributes the cost of the campaign/scan hot path to
// execution phases. The paper's Figure 2 campaign retires ~96k mutated
// executions per run and ROADMAP item 2 targets a >=5x win on that path —
// but a win has to be scoped before it can be engineered, and a full
// tracer on a ~500 ns execution would cost more than the execution.
//
// The design follows the same batched-shard discipline that holds the
// observability layer's <5% overhead contract (see obs.HistShard): every
// execution pays one plain-field increment and compare to decide whether
// it is sampled; roughly one in every Sample executions (the cadence is
// jittered — see Shard.Sample — so a fixed stride cannot alias with
// periodic workload structure) is timed phase by phase with monotonic
// clock reads, and the nanosecond totals accumulate in per-worker shards
// that merge into the shared Profile with atomic adds at flush
// boundaries. The per-phase report extrapolates the sampled costs over
// the full execution count and checks itself against the measured wall
// clock (Report.CoveragePct), so a phase breakdown that lost track of
// where the time went is visible as such.
//
// Calibrations keep the sampled numbers honest:
//
//   - clock-read cost: each phase mark includes one monotonic clock read
//     (~20-40 ns on this class of host, a third of a whole execution's
//     decode budget). New measures the minimum observed back-to-back
//     read cost and every mark subtracts it, so phase totals converge on
//     the true cost instead of the cost plus the profiler's.
//   - decode unit cost: isa.Decode is a single table load for 16-bit
//     encodings (a few ns per instruction), far below the clock-read
//     floor, so timing it in the emulator's step loop would measure the
//     timer — and cost the hot path a branch per retired instruction.
//     Calibration is therefore entirely out-of-band: New times a full
//     2^16-encoding decode sweep (min of several rounds) and the decode
//     phase is attributed as unit-cost x instructions retired by the run
//     being profiled, capped by the measured execute time it is split
//     from. The package tests re-validate the unit cost against an
//     independently timed sweep.
//   - replay-pair cost: pipeline.ReplayProf times each glitch-window
//     issue slot with a time.Now/time.Since pair, which costs more than
//     two bare monotonic reads; New calibrates the pair so callers can
//     Discount the instrumentation out of the enclosing execute mark.
package profile

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"

	"glitchlab/internal/isa"
	"glitchlab/internal/lcg"
)

// Phase is one slice of a mutated execution's cost.
type Phase uint8

// Phases in hot-path order. Assemble covers preparing the perturbed
// image and resetting machine state; Decode is the instruction-decode
// share split out of Execute; Replay is the glitch-window mapping work
// the pipeline model performs per issue slot (trigger-relative cycle
// replay); Execute is the remaining emulation; Classify is outcome
// classification.
const (
	PhaseAssemble Phase = iota
	PhaseDecode
	PhaseReplay
	PhaseExecute
	PhaseClassify
	numPhases
)

// NumPhases is the number of attribution phases.
const NumPhases = int(numPhases)

var phaseNames = [NumPhases]string{
	"assemble", "decode", "trigger-replay", "execute", "classify",
}

// String returns the phase's report name.
func (p Phase) String() string {
	if int(p) < NumPhases {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase%d", uint8(p))
}

// DefaultSample is the default sampling interval: one fully-timed
// execution in every 64. At ~500 ns per execution and ~4 clock reads per
// sampled one, the amortized cost is a few nanoseconds per execution —
// well inside the observability layer's <5% overhead contract.
const DefaultSample = 64

// nsBuckets is the number of power-of-two duration buckets per phase
// (1 ns .. ~0.5 ms; longer marks land in the last bucket).
const nsBuckets = 20

// Profile is the shared attribution sink for one campaign or scan run.
// The hot path never touches it directly: workers record into Shards and
// merge with Flush. All Profile methods are safe for concurrent use and
// nil-safe, so instrumentation can call unconditionally.
type Profile struct {
	every   uint64
	clockNs int64 // calibrated cost of one monotonic clock read
	decNs   int64 // calibrated isa.Decode unit cost (per instruction)
	pairNs  int64 // calibrated cost of one time.Now/time.Since pair

	execs   atomic.Uint64
	samples atomic.Uint64
	ns      [NumPhases]atomic.Int64
	buckets [NumPhases][nsBuckets]atomic.Uint64

	wallNs atomic.Int64
	begun  atomic.Int64 // monotonic ns at Begin; 0 when not running

	shardSeq atomic.Uint32 // seeds each shard's sampling-jitter stream

	clock func() int64 // monotonic nanoseconds; replaced by tests
}

// New builds a profile sampling one execution in every `every` (<= 0
// uses DefaultSample). It calibrates the clock-read and decode unit
// costs once, which takes a few milliseconds.
func New(every int) *Profile {
	if every <= 0 {
		every = DefaultSample
	}
	p := &Profile{every: uint64(every), clock: monotonicNs}
	p.clockNs = calibrateClock()
	p.decNs = calibrateDecode()
	p.pairNs = calibratePair()
	return p
}

// monotonicNs reads the monotonic clock in nanoseconds.
func monotonicNs() int64 { return time.Since(baseline).Nanoseconds() }

var baseline = time.Now()

// calibrateClock measures the minimum observed cost of one back-to-back
// monotonic clock read. The minimum (not the mean) is the right
// estimator on a shared host: contention only ever inflates a sample.
func calibrateClock() int64 {
	best := int64(1 << 62)
	for round := 0; round < 8; round++ {
		const reads = 512
		start := monotonicNs()
		var last int64
		for i := 0; i < reads; i++ {
			last = monotonicNs()
		}
		if d := (last - start) / reads; d < best {
			best = d
		}
	}
	if best < 0 {
		best = 0
	}
	return best
}

// calibratePair measures the minimum cost of one time.Now/time.Since
// pair — the exact instrumentation pipeline.ReplayProf inserts per timed
// issue slot. time.Now reads both wall and monotonic clocks, so the
// pair costs more than two bare monotonic reads.
func calibratePair() int64 {
	best := int64(1 << 62)
	var sink int64
	for round := 0; round < 8; round++ {
		const pairs = 256
		start := monotonicNs()
		for i := 0; i < pairs; i++ {
			t0 := time.Now()
			sink += time.Since(t0).Nanoseconds()
		}
		if d := (monotonicNs() - start) / pairs; d < best {
			best = d
		}
	}
	if sink < 0 || best < 0 { // sink keeps the loop from being elided
		best = 0
	}
	return best
}

// calibrateDecode measures the per-instruction cost of isa.Decode by
// sweeping the full 16-bit encoding space, min of several rounds.
func calibrateDecode() int64 {
	best := int64(1 << 62)
	sink := 0
	for round := 0; round < 3; round++ {
		start := monotonicNs()
		for hw := 0; hw < 0x10000; hw++ {
			in := isa.Decode(uint16(hw), 0)
			sink += int(in.Size)
		}
		if d := (monotonicNs() - start) / 0x10000; d < best {
			best = d
		}
	}
	if sink == 0 || best < 0 { // sink keeps the sweep from being elided
		best = 0
	}
	return best
}

// SetClock replaces the monotonic time source (tests use a stepped fake)
// and zeroes the calibrations so fake-clocked marks are not "corrected"
// by real-host numbers.
func (p *Profile) SetClock(clock func() int64) {
	if p == nil {
		return
	}
	p.clock = clock
	p.clockNs = 0
}

// ClockOverheadNs returns the calibrated cost of one clock read.
func (p *Profile) ClockOverheadNs() int64 {
	if p == nil {
		return 0
	}
	return p.clockNs
}

// DecodeUnitNs returns the calibrated per-instruction decode cost.
func (p *Profile) DecodeUnitNs() int64 {
	if p == nil {
		return 0
	}
	return p.decNs
}

// Begin opens a wall-clock bracket; End accumulates it. Brackets from
// several runs (e.g. glitchemu's four Figure 2 variants) sum, so the
// coverage check spans exactly the instrumented work.
func (p *Profile) Begin() {
	if p == nil {
		return
	}
	p.begun.Store(p.clock())
}

// End closes the bracket opened by Begin.
func (p *Profile) End() {
	if p == nil {
		return
	}
	if t0 := p.begun.Swap(0); t0 != 0 {
		p.wallNs.Add(p.clock() - t0)
	}
}

// Shard returns a single-goroutine accumulation buffer recording into p,
// or nil when p is nil (keeping the bare hot path bare). Give each
// campaign/scan worker its own shard and Flush it before reading the
// report.
func (p *Profile) Shard() *Shard {
	if p == nil {
		return nil
	}
	s := &Shard{p: p, every: p.every}
	// Decorrelate the shards' jitter streams (Weyl-style seed spacing);
	// a fresh Profile always deals the same seeds, so reports stay
	// deterministic for a fixed work split.
	s.rng.Seed(p.shardSeq.Add(1) * 0x9e3779b9)
	s.next = s.gap()
	return s
}

// Shard buffers one worker's attribution at plain-memory cost. Not safe
// for concurrent use. A nil *Shard is valid and disables everything.
type Shard struct {
	p     *Profile
	every uint64
	next  uint64 // execution index of the next sample
	rng   lcg.LCG

	execs   uint64
	samples uint64
	ns      [NumPhases]int64
	buckets [NumPhases][nsBuckets]uint64
}

// Sample accounts one execution and reports whether this one should be
// timed phase by phase. The unsampled path is one increment and one
// compare — the whole per-execution cost of an attached profiler.
//
// The cadence is jittered, not a fixed stride: gaps are drawn uniformly
// from [1, 2*every-1] (mean every, so the nominal 1-in-every rate
// holds), because a fixed every-N stride aliases with periodic structure
// in the workload — a scan's grid walk would sample the same grid column
// every time and extrapolate its cost over the whole run.
func (s *Shard) Sample() bool {
	if s == nil {
		return false
	}
	s.execs++
	if s.execs < s.next {
		return false
	}
	s.samples++
	s.next = s.execs + s.gap()
	return true
}

// gap draws the next sampling gap, uniform in [1, 2*every-1].
func (s *Shard) gap() uint64 {
	if s.every <= 1 {
		return 1
	}
	return 1 + uint64(s.rng.Next())%(2*s.every-1)
}

// Timer marks phase boundaries of one sampled execution. The zero value
// is inert; obtain one from Shard.Start.
type Timer struct {
	s    *Shard
	last int64
}

// Start opens a phase timer at the current instant. Safe on a nil shard
// (returns an inert timer).
func (s *Shard) Start() Timer {
	if s == nil {
		return Timer{}
	}
	return Timer{s: s, last: s.p.clock()}
}

// Mark closes the current phase, attributing the time since the previous
// mark (or Start) minus the calibrated clock-read cost, and returns the
// attributed nanoseconds.
func (t *Timer) Mark(phase Phase) int64 {
	if t.s == nil {
		return 0
	}
	now := t.s.p.clock()
	d := now - t.last - t.s.p.clockNs
	if d < 0 {
		d = 0
	}
	t.last = now
	t.s.observe(phase, d)
	return d
}

// observe adds d nanoseconds to a phase total and its duration bucket.
func (s *Shard) observe(phase Phase, d int64) {
	s.ns[phase] += d
	i := 0
	if d > 1 {
		i = bits.Len64(uint64(d - 1))
	}
	if i >= nsBuckets {
		i = nsBuckets - 1
	}
	s.buckets[phase][i]++
}

// Split re-attributes up to ns nanoseconds from one phase to another,
// capped at cap (pass the measured duration of the donor mark so a
// calibrated estimate can never move more time than was observed). It
// returns the amount moved. Campaign executions use it to split the
// decode share out of the execute mark; scans use it for the pipeline's
// trigger-replay share.
func (s *Shard) Split(from, to Phase, ns, max int64) int64 {
	if s == nil || ns <= 0 {
		return 0
	}
	if ns > max {
		ns = max
	}
	if ns <= 0 {
		return 0
	}
	s.ns[from] -= ns
	s.ns[to] += ns
	return ns
}

// Discount removes up to max nanoseconds of known instrumentation
// overhead from a phase's accumulated time — e.g. the per-slot
// clock-read pairs that a sampled attempt's replay measurement inserts
// into the enclosing execute mark. Returns the nanoseconds removed.
func (s *Shard) Discount(phase Phase, ns, max int64) int64 {
	if s == nil || ns <= 0 {
		return 0
	}
	if ns > max {
		ns = max
	}
	if ns > s.ns[phase] {
		ns = s.ns[phase]
	}
	if ns <= 0 {
		return 0
	}
	s.ns[phase] -= ns
	return ns
}

// DecodeEst returns the calibrated decode cost of `steps` retired
// instructions.
func (s *Shard) DecodeEst(steps uint64) int64 {
	if s == nil {
		return 0
	}
	return s.p.decNs * int64(steps)
}

// ClockOverheadNs returns the parent profile's calibrated clock-read
// cost (nil-safe), for callers correcting their own sub-measurements.
func (s *Shard) ClockOverheadNs() int64 {
	if s == nil {
		return 0
	}
	return s.p.clockNs
}

// PairOverheadNs returns the parent profile's calibrated cost of one
// time.Now/time.Since pair — the instrumentation overhead a
// pipeline.ReplayProf-timed issue slot adds to its enclosing mark.
func (s *Shard) PairOverheadNs() int64 {
	if s == nil {
		return 0
	}
	return s.p.pairNs
}

// Flush merges the shard into its profile and resets it.
func (s *Shard) Flush() {
	if s == nil || s.execs == 0 {
		return
	}
	s.p.execs.Add(s.execs)
	if s.next > s.execs {
		s.next -= s.execs // rebase the next-sample index with the counter
	} else {
		s.next = 0
	}
	s.execs = 0
	if s.samples != 0 {
		s.p.samples.Add(s.samples)
		s.samples = 0
	}
	for ph := 0; ph < NumPhases; ph++ {
		if s.ns[ph] != 0 {
			s.p.ns[ph].Add(s.ns[ph])
			s.ns[ph] = 0
		}
		for b, n := range s.buckets[ph] {
			if n != 0 {
				s.p.buckets[ph][b].Add(n)
				s.buckets[ph][b] = 0
			}
		}
	}
}

// PhaseReport is one phase's share of the attribution report.
type PhaseReport struct {
	Phase     string   `json:"phase"`
	SampledNs int64    `json:"sampled_ns"` // measured across sampled executions
	SharePct  float64  `json:"share_pct"`  // of the sampled total
	EstNs     int64    `json:"est_ns"`     // extrapolated over every execution
	Buckets   []uint64 `json:"buckets_pow2_ns,omitempty"`
}

// Report is the rendered attribution of one profiled run.
type Report struct {
	Execs       uint64        `json:"execs"`
	Sampled     uint64        `json:"sampled"`
	SampleEvery uint64        `json:"sample_every"`
	WallNs      int64         `json:"wall_ns"`
	EstTotalNs  int64         `json:"est_total_ns"`
	CoveragePct float64       `json:"coverage_pct"` // est_total / wall
	ClockNs     int64         `json:"clock_overhead_ns"`
	DecodeNs    int64         `json:"decode_unit_ns"`
	Phases      []PhaseReport `json:"phases"`
}

// Report extrapolates the sampled phase costs over the full execution
// count and compares them to the measured wall clock. Flush every shard
// first. Safe on a nil profile (returns a zero report).
func (p *Profile) Report() Report {
	if p == nil {
		return Report{}
	}
	r := Report{
		Execs:       p.execs.Load(),
		SampleEvery: p.every,
		WallNs:      p.wallNs.Load(),
		ClockNs:     p.clockNs,
		DecodeNs:    p.decNs,
	}
	sampled := p.samples.Load()
	r.Sampled = sampled

	var totalNs int64
	phaseNs := [NumPhases]int64{}
	for ph := 0; ph < NumPhases; ph++ {
		phaseNs[ph] = p.ns[ph].Load()
		totalNs += phaseNs[ph]
	}
	scale := 0.0
	if sampled > 0 {
		scale = float64(r.Execs) / float64(sampled)
	}
	for ph := 0; ph < NumPhases; ph++ {
		pr := PhaseReport{
			Phase:     Phase(ph).String(),
			SampledNs: phaseNs[ph],
			EstNs:     int64(float64(phaseNs[ph]) * scale),
		}
		if totalNs > 0 {
			pr.SharePct = 100 * float64(phaseNs[ph]) / float64(totalNs)
		}
		for b := 0; b < nsBuckets; b++ {
			if n := p.buckets[ph][b].Load(); n != 0 {
				bs := make([]uint64, nsBuckets)
				for i := 0; i < nsBuckets; i++ {
					bs[i] = p.buckets[ph][i].Load()
				}
				pr.Buckets = bs
				break
			}
		}
		r.EstTotalNs += pr.EstNs
		r.Phases = append(r.Phases, pr)
	}
	if r.WallNs > 0 {
		r.CoveragePct = 100 * float64(r.EstTotalNs) / float64(r.WallNs)
	}
	return r
}
