package profile

import (
	"sync/atomic"
	"testing"
	"time"

	"glitchlab/internal/isa"
)

// fakeClock returns a stepped monotonic clock advancing by `step`
// nanoseconds per read. Atomic because shards on different goroutines
// share the profile's single clock, exactly as with the real one.
func fakeClock(step int64) func() int64 {
	var now atomic.Int64
	return func() int64 {
		return now.Add(step)
	}
}

func TestSampleCadence(t *testing.T) {
	// The cadence is jittered (gaps uniform in [1, 2*every-1], mean
	// every) so a fixed stride cannot alias with periodic workload
	// structure; over 10k draws at every=4 the realized rate must sit
	// close to the nominal 1-in-4.
	p := New(4)
	p.SetClock(fakeClock(10))
	s := p.Shard()
	var sampled int
	const n = 10000
	for i := 0; i < n; i++ {
		if s.Sample() {
			sampled++
		}
	}
	if sampled < n/5 || sampled > n/3 {
		t.Errorf("sampled %d of %d at every=4, want ~%d", sampled, n, n/4)
	}
	s.Flush()
	r := p.Report()
	if r.Execs != n || r.Sampled != uint64(sampled) {
		t.Errorf("report execs=%d sampled=%d, want %d/%d", r.Execs, r.Sampled, n, sampled)
	}
}

// TestSampleCadenceDeterministic pins that a fresh Profile deals the
// same jitter seeds in shard order, so a fixed work split reproduces the
// same sampling pattern run to run.
func TestSampleCadenceDeterministic(t *testing.T) {
	pattern := func() []bool {
		p := New(8)
		p.SetClock(fakeClock(10))
		s := p.Shard()
		out := make([]bool, 200)
		for i := range out {
			out[i] = s.Sample()
		}
		return out
	}
	a, b := pattern(), pattern()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sampling pattern diverged at execution %d", i)
		}
	}
}

// TestSampleCadenceNoAliasing drives a workload whose cost is periodic
// with the same period as the nominal sampling interval: with a fixed
// every-N stride every sample would land on the one expensive iteration
// in each period and extrapolation would overstate the total by ~16x.
// The jittered cadence must keep the sampled mean close to the true
// mean.
func TestSampleCadenceNoAliasing(t *testing.T) {
	p := New(16)
	p.SetClock(fakeClock(0)) // timers unused; we count sampled indices
	s := p.Shard()
	var sampledExpensive, sampled int
	for i := 0; i < 16000; i++ {
		if s.Sample() {
			sampled++
			if i%16 == 0 { // the "expensive column" of each period
				sampledExpensive++
			}
		}
	}
	if sampled == 0 {
		t.Fatal("nothing sampled")
	}
	// True share of expensive iterations is 1/16; a fixed stride hits
	// either 0% or 100%. Allow generous slack around 1/16.
	share := float64(sampledExpensive) / float64(sampled)
	if share > 0.25 {
		t.Errorf("expensive-column share of samples = %.2f, aliased (true share 0.0625)", share)
	}
}

func TestMarkAttributesPhases(t *testing.T) {
	p := New(1)
	p.SetClock(fakeClock(10)) // every mark sees 10ns since the last read
	s := p.Shard()
	if !s.Sample() {
		t.Fatal("every=1 must sample")
	}
	tm := s.Start()
	if got := tm.Mark(PhaseAssemble); got != 10 {
		t.Errorf("assemble mark = %d, want 10", got)
	}
	if got := tm.Mark(PhaseExecute); got != 10 {
		t.Errorf("execute mark = %d, want 10", got)
	}
	tm.Mark(PhaseClassify)
	s.Flush()
	r := p.Report()
	for _, ph := range r.Phases {
		switch ph.Phase {
		case "assemble", "execute", "classify":
			if ph.SampledNs != 10 {
				t.Errorf("%s sampled = %d, want 10", ph.Phase, ph.SampledNs)
			}
		default:
			if ph.SampledNs != 0 {
				t.Errorf("%s sampled = %d, want 0", ph.Phase, ph.SampledNs)
			}
		}
	}
}

func TestSplitCapped(t *testing.T) {
	p := New(1)
	p.SetClock(fakeClock(100))
	s := p.Shard()
	s.Sample()
	tm := s.Start()
	execNs := tm.Mark(PhaseExecute) // 100ns
	if moved := s.Split(PhaseExecute, PhaseDecode, 250, execNs); moved != 100 {
		t.Errorf("split moved %d, want capped at 100", moved)
	}
	s.Flush()
	r := p.Report()
	var dec, exec int64
	for _, ph := range r.Phases {
		switch ph.Phase {
		case "decode":
			dec = ph.SampledNs
		case "execute":
			exec = ph.SampledNs
		}
	}
	if dec != 100 || exec != 0 {
		t.Errorf("after capped split: decode=%d execute=%d, want 100/0", dec, exec)
	}
	if moved := s.Split(PhaseExecute, PhaseDecode, -5, 100); moved != 0 {
		t.Errorf("negative split moved %d", moved)
	}
	if moved := s.Split(PhaseExecute, PhaseDecode, 5, 0); moved != 0 {
		t.Errorf("zero-cap split moved %d", moved)
	}
}

func TestExtrapolationAndCoverage(t *testing.T) {
	p := New(10)
	p.SetClock(fakeClock(50))
	p.wallNs.Store(100 * 50 * 3) // pretend wall = execs * 3 marks * 50ns
	s := p.Shard()
	for i := 0; i < 100; i++ {
		if !s.Sample() {
			continue
		}
		tm := s.Start()
		tm.Mark(PhaseAssemble)
		tm.Mark(PhaseExecute)
		tm.Mark(PhaseClassify)
	}
	s.Flush()
	r := p.Report()
	if r.Sampled != 10 {
		t.Fatalf("sampled = %d, want 10", r.Sampled)
	}
	// Each sampled exec: 3 phases x 50ns = 150ns; extrapolated x10.
	if r.EstTotalNs != 15000 {
		t.Errorf("est total = %d, want 15000", r.EstTotalNs)
	}
	if r.CoveragePct != 100 {
		t.Errorf("coverage = %v%%, want 100", r.CoveragePct)
	}
}

func TestBeginEndAccumulates(t *testing.T) {
	p := New(1)
	p.SetClock(fakeClock(1000))
	p.Begin()
	p.End() // 1000ns bracket
	p.Begin()
	p.End() // another 1000ns
	if got := p.Report().WallNs; got != 2000 {
		t.Errorf("wall = %d, want 2000 (brackets must sum)", got)
	}
	p.End() // unmatched End is a no-op
	if got := p.Report().WallNs; got != 2000 {
		t.Errorf("wall after unmatched End = %d, want 2000", got)
	}
}

func TestNilSafety(t *testing.T) {
	var p *Profile
	p.Begin()
	p.End()
	p.SetClock(fakeClock(1))
	if p.ClockOverheadNs() != 0 || p.DecodeUnitNs() != 0 {
		t.Error("nil profile calibration not zero")
	}
	s := p.Shard()
	if s != nil {
		t.Fatal("nil profile must hand out nil shards")
	}
	if s.Sample() {
		t.Error("nil shard sampled")
	}
	tm := s.Start()
	if tm.Mark(PhaseExecute) != 0 {
		t.Error("nil-shard timer attributed time")
	}
	if s.Split(PhaseExecute, PhaseDecode, 5, 5) != 0 {
		t.Error("nil shard split moved time")
	}
	if s.DecodeEst(100) != 0 || s.ClockOverheadNs() != 0 {
		t.Error("nil shard estimates non-zero")
	}
	s.Flush()
	if r := p.Report(); r.Execs != 0 {
		t.Error("nil profile report non-zero")
	}
}

func TestBuckets(t *testing.T) {
	p := New(1)
	s := p.Shard()
	s.Sample()                     // Flush only merges shards that accounted executions
	s.observe(PhaseExecute, 1)     // bucket 0 (<=1ns)
	s.observe(PhaseExecute, 2)     // bucket 1 (<=2ns)
	s.observe(PhaseExecute, 1000)  // bucket 10 (<=1024ns)
	s.observe(PhaseExecute, 1<<40) // clamps to last bucket
	s.Flush()
	r := p.Report()
	for _, ph := range r.Phases {
		if ph.Phase != "execute" {
			if ph.Buckets != nil {
				t.Errorf("%s has buckets despite no observations", ph.Phase)
			}
			continue
		}
		if len(ph.Buckets) != nsBuckets {
			t.Fatalf("execute buckets len = %d, want %d", len(ph.Buckets), nsBuckets)
		}
		want := map[int]uint64{0: 1, 1: 1, 10: 1, nsBuckets - 1: 1}
		for i, n := range ph.Buckets {
			if n != want[i] {
				t.Errorf("bucket[%d] = %d, want %d", i, n, want[i])
			}
		}
	}
}

func TestConcurrentFlush(t *testing.T) {
	p := New(1)
	p.SetClock(fakeClock(7))
	done := make(chan struct{})
	const workers, execs = 4, 250
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			s := p.Shard()
			for i := 0; i < execs; i++ {
				if s.Sample() {
					tm := s.Start()
					tm.Mark(PhaseExecute)
				}
				if i%100 == 0 {
					s.Flush()
				}
			}
			s.Flush()
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	r := p.Report()
	if r.Execs != workers*execs {
		t.Errorf("execs = %d, want %d", r.Execs, workers*execs)
	}
	if r.Sampled != workers*execs {
		t.Errorf("sampled = %d, want %d", r.Sampled, workers*execs)
	}
}

// TestDecodeCalibrationOutOfBand validates the decode unit-cost model
// without touching the emulator's step loop: an independently timed
// 2^16-encoding isa.Decode sweep should land within an order of magnitude
// of the calibrated unit cost. The in-loop measurement embeds a clock-read
// pair per call, so it only bounds the model from above; the check is
// deliberately loose — the calibration must be the right order of
// magnitude, not exact. (The emulator used to carry a per-step wall-timing
// hook for this validation; it cost a branch on every retired instruction
// and measured mostly the timer, which is why calibration is out-of-band.)
func TestDecodeCalibrationOutOfBand(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration timing in -short mode")
	}
	p := New(1)
	unit := p.DecodeUnitNs()
	if unit < 0 {
		t.Fatalf("decode unit cost negative: %d", unit)
	}
	if unit > 1000 {
		t.Fatalf("decode unit cost implausibly high: %dns", unit)
	}

	// Time isa.Decode per call with an explicit clock-read pair and
	// confirm the measured cost (pure cost plus the pair) is >= the
	// calibrated pure cost.
	var measured int64
	const n = 0x10000
	for hw := 0; hw < n; hw++ {
		t0 := time.Now()
		in := isa.Decode(uint16(hw), 0)
		measured += time.Since(t0).Nanoseconds()
		_ = in
	}
	perCall := measured / n
	if perCall < unit {
		t.Errorf("in-loop measured decode %dns/call below calibrated %dns/call; calibration overestimates", perCall, unit)
	}
	if unit > 0 && perCall > 100*unit {
		t.Errorf("in-loop measured decode %dns/call vs calibrated %dns/call: model off by >100x", perCall, unit)
	}
}
