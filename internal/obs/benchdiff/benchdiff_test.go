package benchdiff

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestEstimateMinOfSamples(t *testing.T) {
	e := Entry{Samples: []float64{74128, 62802, 64291, 60129, 41841}}
	if got := e.Estimate(); got != 41841 {
		t.Errorf("estimate = %v, want min 41841", got)
	}
	if got := (Entry{Min: 100}).Estimate(); got != 100 {
		t.Errorf("min fallback = %v", got)
	}
	if got := (Entry{Median: 200}).Estimate(); got != 200 {
		t.Errorf("median fallback = %v", got)
	}
}

const goBenchOutput = `goos: linux
goarch: amd64
pkg: glitchlab
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkCampaignBare-2     	    9432	     36115 ns/op
BenchmarkCampaignBare-2     	    9800	     34200 ns/op
BenchmarkCampaignProfiled-2 	   10000	     36781 ns/op
BenchmarkCampaignParallel/workers=2-2   	       3	  47918764 ns/op
BenchmarkTable4BootOverhead-2	       5	 226000000 ns/op	   1130000 bootcycles
PASS
ok  	glitchlab	1.030s
`

func TestParseGoBench(t *testing.T) {
	got, err := ParseGoBench(strings.NewReader(goBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if s := got["BenchmarkCampaignBare"]; len(s) != 2 || s[0] != 36115 || s[1] != 34200 {
		t.Errorf("bare samples = %v", s)
	}
	if s := got["BenchmarkCampaignProfiled"]; len(s) != 1 || s[0] != 36781 {
		t.Errorf("profiled samples = %v", s)
	}
	// Sub-benchmark names keep their slash path, lose only the -P suffix.
	if s := got["BenchmarkCampaignParallel/workers=2"]; len(s) != 1 || s[0] != 47918764 {
		t.Errorf("parallel samples = %v", s)
	}
	// Extra metrics after ns/op don't confuse the parser.
	if s := got["BenchmarkTable4BootOverhead"]; len(s) != 1 || s[0] != 226000000 {
		t.Errorf("boot samples = %v", s)
	}
}

func TestParseGoBenchEmpty(t *testing.T) {
	if _, err := ParseGoBench(strings.NewReader("PASS\nok\n")); err == nil {
		t.Fatal("no benchmark lines must be an error")
	}
}

func baselineFile() *File {
	return &File{
		Schema: SchemaVersion,
		Benchmarks: map[string]Entry{
			"BenchmarkA": {Samples: []float64{1000, 1100, 950}},
			"BenchmarkB": {Samples: []float64{2000, 2200}},
		},
	}
}

func TestCompareVerdicts(t *testing.T) {
	fresh := map[string][]float64{
		"BenchmarkA": {1900, 2100}, // 2x slower than 950: regression
		"BenchmarkB": {1000, 1050}, // 2x faster than 2000: improvement
		"BenchmarkC": {1, 2},       // not in baseline: ignored
	}
	vs := Compare(baselineFile(), fresh, 25)
	if len(vs) != 2 {
		t.Fatalf("got %d verdicts, want 2 (baseline-driven): %+v", len(vs), vs)
	}
	if vs[0].Name != "BenchmarkA" || vs[0].Status != StatusRegression {
		t.Errorf("A = %+v, want regression", vs[0])
	}
	if vs[0].FreshNs != 1900 {
		t.Errorf("A fresh = %v, want min-of-samples 1900", vs[0].FreshNs)
	}
	if vs[1].Name != "BenchmarkB" || vs[1].Status != StatusImprovement {
		t.Errorf("B = %+v, want improvement", vs[1])
	}
	if err := Gate(vs); err == nil {
		t.Error("gate must fail on a regression")
	}
}

func TestCompareWithinBand(t *testing.T) {
	fresh := map[string][]float64{
		"BenchmarkA": {1100}, // +15.8% vs 950: inside a 25% band
		"BenchmarkB": {1700}, // -15% vs 2000: inside
	}
	vs := Compare(baselineFile(), fresh, 25)
	for _, v := range vs {
		if v.Status != StatusOK {
			t.Errorf("%s = %s (%+.1f%%), want ok inside the band", v.Name, v.Status, v.DeltaPct)
		}
	}
	if err := Gate(vs); err != nil {
		t.Errorf("gate failed inside the band: %v", err)
	}
}

func TestCompareMissingFresh(t *testing.T) {
	vs := Compare(baselineFile(), map[string][]float64{"BenchmarkA": {950}}, 25)
	var missing *Verdict
	for i := range vs {
		if vs[i].Name == "BenchmarkB" {
			missing = &vs[i]
		}
	}
	if missing == nil || missing.Status != StatusMissingNew {
		t.Fatalf("B verdict = %+v, want missing-new", missing)
	}
	if err := Gate(vs); err == nil {
		t.Error("gate must fail when a protected benchmark vanishes")
	}
}

// TestFixtureSlowdownFailsGate is the committed-fixture contract the
// ci.sh gate relies on: a synthetic 2x slowdown must always fail, and a
// baseline compared against its own samples must always pass, both
// independent of host speed.
func TestFixtureSlowdownFailsGate(t *testing.T) {
	base, err := LoadFile(filepath.Join("testdata", "baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := os.Open(filepath.Join("testdata", "slowdown_2x.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	fresh, err := ParseGoBench(slow)
	if err != nil {
		t.Fatal(err)
	}
	if err := Gate(Compare(base, fresh, 25)); err == nil {
		t.Error("2x slowdown fixture passed the gate")
	}

	// Self-comparison: replay the baseline's own samples as the fresh run.
	self := map[string][]float64{}
	for name, e := range base.Benchmarks {
		self[name] = e.Samples
	}
	if err := Gate(Compare(base, self, 25)); err != nil {
		t.Errorf("baseline self-comparison failed the gate: %v", err)
	}
}

// TestCommittedBaselinesSelfConsistent loads every BENCH_*.json at the
// repo root and replays each file's own samples as the fresh run: the
// gate must pass. This is the "committed baselines pass" half of the
// ci.sh contract and also pins that every committed file carries the
// schema marker and parses under the current loader.
func TestCommittedBaselinesSelfConsistent(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "..", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no BENCH_*.json files found at the repo root")
	}
	for _, path := range files {
		base, err := LoadFile(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if base.Schema != SchemaVersion {
			t.Errorf("%s: schema = %d, want %d (min-of-samples model)",
				path, base.Schema, SchemaVersion)
		}
		self := map[string][]float64{}
		for name, e := range base.Benchmarks {
			if len(e.Samples) == 0 {
				t.Errorf("%s: %s has no samples", path, name)
			}
			self[name] = e.Samples
		}
		if err := Gate(Compare(base, self, 25)); err != nil {
			t.Errorf("%s: self-comparison failed the gate: %v", path, err)
		}
	}
}

// TestHotPathSpeedupClaim pins the hot-path overhaul's headline number as
// a pure-data contract, independent of host speed: the committed
// BENCH_parallel.json must be at least 5x faster, min-of-samples, than the
// preserved pre-overhaul baseline for every protected worker count
// (ROADMAP item 2's acceptance bar). Both files were measured on the same
// host class; regenerating BENCH_parallel.json on a faster machine only
// widens the margin, and regenerating the _pre_hotpath denominator is a
// test failure by design — the engine it measured no longer exists.
func TestHotPathSpeedupClaim(t *testing.T) {
	root := filepath.Join("..", "..", "..")
	pre, err := LoadFile(filepath.Join(root, "BENCH_parallel_pre_hotpath.json"))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := LoadFile(filepath.Join(root, "BENCH_parallel.json"))
	if err != nil {
		t.Fatal(err)
	}
	const wantSpeedup = 5.0
	for name, e := range cur.Benchmarks {
		base, ok := pre.Benchmarks[name]
		if !ok {
			t.Errorf("%s: in BENCH_parallel.json but not in the pre-hotpath baseline", name)
			continue
		}
		got, was := e.Estimate(), base.Estimate()
		if got <= 0 || was <= 0 {
			t.Errorf("%s: non-positive estimate (pre %v, current %v)", name, was, got)
			continue
		}
		if speedup := was / got; speedup < wantSpeedup {
			t.Errorf("%s: %.0fns -> %.0fns is %.1fx, want >= %.0fx",
				name, was, got, speedup, wantSpeedup)
		}
	}
	if len(cur.Benchmarks) < 4 {
		t.Errorf("BENCH_parallel.json protects %d benchmarks, want the 1/2/4/8-worker quartet",
			len(cur.Benchmarks))
	}
}

func TestEmitRoundTrip(t *testing.T) {
	f := Emit("2026-08-07", "linux", "amd64", map[string][]float64{
		"BenchmarkX": {300, 200, 250},
	})
	if f.Schema != SchemaVersion {
		t.Errorf("schema = %d", f.Schema)
	}
	if f.Benchmarks["BenchmarkX"].Min != 200 {
		t.Errorf("emitted min = %v, want 200", f.Benchmarks["BenchmarkX"].Min)
	}
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	if err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Benchmarks["BenchmarkX"].Estimate() != 200 {
		t.Errorf("round-trip estimate = %v", back.Benchmarks["BenchmarkX"].Estimate())
	}
}

func TestRenderDeterministic(t *testing.T) {
	fresh := map[string][]float64{"BenchmarkA": {1900}, "BenchmarkB": {1000}}
	a := Render(Compare(baselineFile(), fresh, 25))
	b := Render(Compare(baselineFile(), fresh, 25))
	if a != b {
		t.Error("render not deterministic")
	}
	for _, want := range []string{"BenchmarkA", "regression", "improvement", "±25%"} {
		if !strings.Contains(a, want) {
			t.Errorf("render missing %q:\n%s", want, a)
		}
	}
}
