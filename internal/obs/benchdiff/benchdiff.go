// Package benchdiff compares committed benchmark baselines (the repo's
// BENCH_*.json files) against fresh `go test -bench` output under one
// explicit measurement model:
//
//   - min-of-samples: the recorded estimate for a benchmark is the
//     minimum ns/op across its samples, not the mean or median. The
//     reference hosts are shared-vCPU VMs whose load spikes only ever
//     inflate a sample, so the minimum is the least-contended run —
//     the closest observable to the true cost.
//   - explicit noise band: two min-of-samples estimates of the same code
//     on the same host still differ run to run; a comparison only
//     becomes a verdict when the delta leaves the band. Deltas inside
//     the band are "ok" regardless of sign.
//
// The package parses both the committed JSON schema and raw `go test
// -bench` text, so the CI gate can compare a fresh run against a
// baseline without intermediate tooling, and -emit can regenerate a
// baseline file from the same run.
package benchdiff

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// SchemaVersion is the BENCH_*.json schema written by Emit. Version 1
// added the schema field itself; files without it predate versioning.
const SchemaVersion = 1

// Entry is one benchmark's recorded samples.
type Entry struct {
	// Samples are the per-run ns/op values, in run order.
	Samples []float64 `json:"ns_per_op_samples"`
	// Min is the min-of-samples estimate. Older files recorded a median
	// instead; Estimate prefers recomputing from Samples so both read
	// consistently.
	Min    float64 `json:"ns_per_op_min,omitempty"`
	Median float64 `json:"ns_per_op_median,omitempty"`
}

// Estimate returns the entry's min-of-samples estimate, falling back to
// the recorded min (then median) when the samples are absent.
func (e Entry) Estimate() float64 {
	if len(e.Samples) > 0 {
		m := e.Samples[0]
		for _, s := range e.Samples[1:] {
			if s < m {
				m = s
			}
		}
		return m
	}
	if e.Min > 0 {
		return e.Min
	}
	return e.Median
}

// File is one committed baseline (BENCH_*.json). Fields beyond the
// benchmarks themselves are documentation carried with the numbers.
type File struct {
	Schema      int              `json:"schema,omitempty"`
	Description string           `json:"description"`
	Date        string           `json:"date"`
	Goos        string           `json:"goos"`
	Goarch      string           `json:"goarch"`
	CPU         string           `json:"cpu"`
	Benchmarks  map[string]Entry `json:"benchmarks"`
	Notes       string           `json:"notes,omitempty"`
}

// LoadFile reads a committed baseline.
func LoadFile(path string) (*File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &f, nil
}

// ParseGoBench extracts ns/op samples per benchmark from `go test
// -bench` output. The trailing -N GOMAXPROCS suffix is stripped, so
// "BenchmarkCampaignBare-2" records as "BenchmarkCampaignBare"; repeated
// lines (from -count) accumulate as samples in run order.
func ParseGoBench(r io.Reader) (map[string][]float64, error) {
	out := map[string][]float64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Benchmark lines read: Name-P  N  ns/op-value "ns/op" [more...]
		nsIdx := -1
		for i, f := range fields {
			if f == "ns/op" {
				nsIdx = i - 1
				break
			}
		}
		if nsIdx < 2 {
			continue
		}
		ns, err := strconv.ParseFloat(fields[nsIdx], 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		out[name] = append(out[name], ns)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark lines found")
	}
	return out, nil
}

// Status is one comparison's verdict.
type Status string

// Verdict statuses.
const (
	StatusOK          Status = "ok"          // delta within the noise band
	StatusRegression  Status = "regression"  // slower beyond the band
	StatusImprovement Status = "improvement" // faster beyond the band
	StatusMissingNew  Status = "missing-new" // in the baseline, not in the fresh run
)

// Verdict is one benchmark's baseline-versus-fresh comparison.
type Verdict struct {
	Name       string  `json:"name"`
	BaselineNs float64 `json:"baseline_ns"`
	FreshNs    float64 `json:"fresh_ns,omitempty"`
	DeltaPct   float64 `json:"delta_pct"`
	NoisePct   float64 `json:"noise_pct"`
	Status     Status  `json:"status"`
}

// Compare evaluates every baseline benchmark against the fresh samples
// under min-of-samples with the given noise band (in percent). Fresh
// benchmarks absent from the baseline are ignored — a baseline states
// what is protected, not what exists. Verdicts are sorted by name.
func Compare(baseline *File, fresh map[string][]float64, noisePct float64) []Verdict {
	names := make([]string, 0, len(baseline.Benchmarks))
	for name := range baseline.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Verdict, 0, len(names))
	for _, name := range names {
		v := Verdict{
			Name:       name,
			BaselineNs: baseline.Benchmarks[name].Estimate(),
			NoisePct:   noisePct,
		}
		samples, ok := fresh[name]
		if !ok || len(samples) == 0 {
			v.Status = StatusMissingNew
			out = append(out, v)
			continue
		}
		v.FreshNs = Entry{Samples: samples}.Estimate()
		if v.BaselineNs > 0 {
			v.DeltaPct = 100 * (v.FreshNs - v.BaselineNs) / v.BaselineNs
		}
		switch {
		case v.DeltaPct > noisePct:
			v.Status = StatusRegression
		case v.DeltaPct < -noisePct:
			v.Status = StatusImprovement
		default:
			v.Status = StatusOK
		}
		out = append(out, v)
	}
	return out
}

// Gate returns an error naming every regression (and every baseline
// benchmark the fresh run did not produce), or nil when the comparison
// passes. Improvements pass: the gate protects against getting slower.
func Gate(verdicts []Verdict) error {
	var bad []string
	for _, v := range verdicts {
		switch v.Status {
		case StatusRegression:
			bad = append(bad, fmt.Sprintf("%s: %.0fns -> %.0fns (%+.1f%%, band ±%.0f%%)",
				v.Name, v.BaselineNs, v.FreshNs, v.DeltaPct, v.NoisePct))
		case StatusMissingNew:
			bad = append(bad, fmt.Sprintf("%s: in baseline but not in fresh run", v.Name))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("benchmark regression gate failed:\n  %s", strings.Join(bad, "\n  "))
	}
	return nil
}

// Render writes the verdicts as a readable table.
func Render(verdicts []Verdict) string {
	var sb strings.Builder
	title := "Benchmark comparison (min-of-samples)"
	fmt.Fprintf(&sb, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	if len(verdicts) == 0 {
		sb.WriteString("nothing to compare\n")
		return sb.String()
	}
	width := len("benchmark")
	for _, v := range verdicts {
		width = max(width, len(v.Name))
	}
	fmt.Fprintf(&sb, "  %-*s %14s %14s %9s  %s\n",
		width, "benchmark", "baseline", "fresh", "delta", "verdict")
	for _, v := range verdicts {
		if v.Status == StatusMissingNew {
			fmt.Fprintf(&sb, "  %-*s %14.0f %14s %9s  %s\n",
				width, v.Name, v.BaselineNs, "-", "-", v.Status)
			continue
		}
		fmt.Fprintf(&sb, "  %-*s %14.0f %14.0f %+8.1f%%  %s\n",
			width, v.Name, v.BaselineNs, v.FreshNs, v.DeltaPct, v.Status)
	}
	fmt.Fprintf(&sb, "noise band ±%.0f%%: deltas inside the band are ok by construction\n",
		verdicts[0].NoisePct)
	return sb.String()
}

// Emit builds a baseline file from fresh samples under the current
// schema, recording both the raw samples and the min-of-samples
// estimate. Callers fill Description/CPU/Notes before writing.
func Emit(date, goos, goarch string, fresh map[string][]float64) *File {
	f := &File{
		Schema:     SchemaVersion,
		Date:       date,
		Goos:       goos,
		Goarch:     goarch,
		Benchmarks: map[string]Entry{},
	}
	for name, samples := range fresh {
		e := Entry{Samples: samples}
		e.Min = e.Estimate()
		f.Benchmarks[name] = e
	}
	return f
}

// WriteFile writes the baseline as indented JSON.
func (f *File) WriteFile(path string) error {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
