package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(1.5)
	g.Add(-0.5)
	if got := g.Value(); got != 1.0 {
		t.Fatalf("gauge = %v, want 1", got)
	}
}

func TestHistogramBucketPlacement(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 2, 10, 11, 1000} {
		h.Observe(v)
	}
	// Bounds are inclusive: 0.5 and 1 -> le 1; 2 and 10 -> le 10;
	// 11 -> le 100; 1000 -> overflow.
	want := []uint64{2, 2, 1}
	for i, w := range want {
		if got := h.buckets[i].Load(); got != w {
			t.Errorf("bucket[%d] = %d, want %d", i, got, w)
		}
	}
	if got := h.buckets[3].Load(); got != 1 {
		t.Errorf("overflow = %d, want 1", got)
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 0.5+1+2+10+11+1000 {
		t.Errorf("sum = %v", h.Sum())
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	if want := []float64{1, 2, 4, 8}; !equalFloats(exp, want) {
		t.Errorf("ExpBuckets = %v, want %v", exp, want)
	}
	lin := LinearBuckets(0, 5, 3)
	if want := []float64{0, 5, 10}; !equalFloats(lin, want) {
		t.Errorf("LinearBuckets = %v, want %v", lin, want)
	}
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Error("Counter not idempotent")
	}
	if r.Gauge("x") != r.Gauge("x") {
		t.Error("Gauge not idempotent")
	}
	if r.Histogram("x", []float64{1}) != r.Histogram("x", []float64{2, 3}) {
		t.Error("Histogram not idempotent")
	}
	r.Reset()
	if got := r.Counter("x").Value(); got != 0 {
		t.Errorf("after reset counter = %d, want fresh 0", got)
	}
}

// TestConcurrentHammer drives every metric type from many goroutines; run
// under -race this is the package's concurrency proof, and the totals
// double-check that no increment was lost.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hammer.count")
			g := r.Gauge("hammer.gauge")
			h := r.Histogram("hammer.hist", ExpBuckets(1, 2, 10))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 7))
				if i%100 == 0 {
					_ = r.Snapshot() // concurrent readers must be safe too
				}
			}
		}()
	}
	wg.Wait()
	const total = workers * perWorker
	if got := r.Counter("hammer.count").Value(); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := r.Gauge("hammer.gauge").Value(); got != total {
		t.Errorf("gauge = %v, want %d", got, total)
	}
	h := r.Histogram("hammer.hist", nil)
	if got := h.Count(); got != total {
		t.Errorf("histogram count = %d, want %d", got, total)
	}
	var bucketSum uint64
	for i := range h.buckets {
		bucketSum += h.buckets[i].Load()
	}
	if bucketSum != total {
		t.Errorf("bucket sum = %d, want %d", bucketSum, total)
	}
}

// TestShardMatchesObserve proves the shard paths (plain Observe and the
// power-of-two fast path) land every value in the same bucket as the
// histogram's atomic Observe.
func TestShardMatchesObserve(t *testing.T) {
	bounds := ExpBuckets(1, 2, 10)
	direct := NewHistogram(bounds)
	viaShard := NewHistogram(bounds)
	viaPow2 := NewHistogram(bounds)
	shard, pow2 := viaShard.Shard(), viaPow2.Shard()
	for v := uint64(0); v <= 1030; v++ {
		direct.Observe(float64(v))
		shard.Observe(float64(v))
		pow2.ObservePow2(v)
	}
	shard.Flush()
	pow2.Flush()
	for i := range direct.buckets {
		want := direct.buckets[i].Load()
		if got := viaShard.buckets[i].Load(); got != want {
			t.Errorf("shard bucket[%d] = %d, want %d", i, got, want)
		}
		if got := viaPow2.buckets[i].Load(); got != want {
			t.Errorf("pow2 bucket[%d] = %d, want %d", i, got, want)
		}
	}
	if direct.Count() != viaShard.Count() || direct.Count() != viaPow2.Count() {
		t.Errorf("counts differ: %d / %d / %d",
			direct.Count(), viaShard.Count(), viaPow2.Count())
	}
	if direct.Sum() != viaShard.Sum() || direct.Sum() != viaPow2.Sum() {
		t.Errorf("sums differ: %v / %v / %v",
			direct.Sum(), viaShard.Sum(), viaPow2.Sum())
	}
}

func TestShardFlushIdempotent(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	s := h.Shard()
	s.Observe(1)
	s.Flush()
	s.Flush() // second flush must not double-count
	if h.Count() != 1 {
		t.Errorf("count = %d, want 1", h.Count())
	}
}

func TestSnapshotText(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(3)
	r.Counter("a.count").Add(1)
	r.Gauge("rate").Set(0.25)
	r.Histogram("steps", []float64{1, 10}).Observe(5)
	got := r.Snapshot().Text()
	want := strings.Join([]string{
		"counter a.count 1",
		"counter b.count 3",
		"gauge rate 0.25",
		"histogram steps count=1 sum=5",
		"  le 1 0",
		"  le 10 1",
		"  overflow 0",
		"",
	}, "\n")
	if got != want {
		t.Errorf("Text() drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs").Add(7)
	r.Histogram("steps", []float64{2}).Observe(1)
	raw, err := r.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if len(back.Counters) != 1 || back.Counters[0].Value != 7 {
		t.Errorf("round-tripped counters = %+v", back.Counters)
	}
	if len(back.Histograms) != 1 || back.Histograms[0].Count != 1 {
		t.Errorf("round-tripped histograms = %+v", back.Histograms)
	}
}
