// Package obs is glitchlab's observability layer: a stdlib-only metrics
// registry (counters, gauges, fixed-bucket histograms) with text/JSON
// snapshot renderers, an expvar publisher and an optional net/http
// endpoint, plus a structured trace layer that emits JSONL span and event
// records with sampling and a "last N failures" ring buffer.
//
// The paper's evaluation rests on long exhaustive sweeps — the Section IV
// bit-flip campaigns behind Figure 2 and the Section V parameter scans
// behind Tables I-III — which previously ran as black boxes. This package
// gives every layer of the stack (emulator, campaign, glitcher, compiler
// pipeline) a common place to report progress, rates and timings, and is
// the substrate later sharded/parallel campaign work builds on.
//
// All metric types are safe for concurrent use. The hot paths are a single
// atomic add (Counter.Add, Gauge.Set) or a bucket search plus two atomic
// adds (Histogram.Observe); instrumented code should look metrics up once
// and cache the pointers rather than calling Registry.Counter per event.
package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits of the current value
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (compare-and-swap loop, safe under contention).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Bounds are inclusive
// upper bounds in ascending order; observations above the last bound land
// in an implicit overflow bucket.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is overflow
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// NewHistogram builds a histogram with the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sumBits, v)
}

// addFloat atomically adds delta to a float64 stored as bits.
func addFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistShard is a single-goroutine accumulation buffer for a Histogram.
// Hot loops that observe per emulated execution (the Section IV campaigns
// retire millions of runs at a few hundred nanoseconds each) observe into
// a shard at plain-memory cost and merge into the shared histogram with
// Flush at progress boundaries; readers of the histogram lag by at most
// one flush interval.
type HistShard struct {
	h       *Histogram
	buckets []uint64
	count   uint64
	sum     float64
}

// Shard returns a fresh accumulation buffer for h. Not safe for concurrent
// use; give each goroutine its own shard.
func (h *Histogram) Shard() *HistShard {
	return &HistShard{h: h, buckets: make([]uint64, len(h.buckets))}
}

// Observe records one observation into the shard (no atomics).
func (s *HistShard) Observe(v float64) {
	// Linear scan instead of binary search: campaign step counts live in
	// the first few buckets, so this exits in 1-3 comparisons.
	b := s.h.bounds
	i := 0
	for i < len(b) && v > b[i] {
		i++
	}
	s.buckets[i]++
	s.count++
	s.sum += v
}

// ObservePow2 records an integer observation into a shard whose histogram
// was built with ExpBuckets(1, 2, n): the bucket index is one bit-length
// instruction instead of a bounds scan, which matters when observing per
// emulated execution. Using it on any other bucket layout miscounts.
func (s *HistShard) ObservePow2(v uint64) {
	i := 0
	if v > 1 {
		i = bits.Len64(v - 1)
	}
	if i >= len(s.buckets) {
		i = len(s.buckets) - 1
	}
	s.buckets[i]++
	s.count++
	s.sum += float64(v)
}

// Flush merges the shard into its histogram and resets the shard.
func (s *HistShard) Flush() {
	if s.count == 0 {
		return
	}
	for i, n := range s.buckets {
		if n != 0 {
			s.h.buckets[i].Add(n)
			s.buckets[i] = 0
		}
	}
	s.h.count.Add(s.count)
	addFloat(&s.h.sumBits, s.sum)
	s.count, s.sum = 0, 0
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the bucket upper bounds.
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// ExpBuckets returns n bounds start, start*factor, start*factor^2, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// LinearBuckets returns n bounds start, start+step, start+2*step, ...
func LinearBuckets(start, step float64, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = start + float64(i)*step
	}
	return b
}

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry (or use Default).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Default is the process-wide registry the compiler pipeline and the CLIs
// record into.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Reset drops every registered metric (tests and repeated experiment runs
// within one process).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = map[string]*Counter{}
	r.gauges = map[string]*Gauge{}
	r.hists = map[string]*Histogram{}
}
