package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestMetricsEndpoint scrapes the HTTP surface the -serve flag exposes.
func TestMetricsEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("test.hits").Add(3)
	r.Gauge("test.rate").Set(0.5)
	r.Histogram("test.steps", []float64{1, 10}).Observe(4)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	body := get(t, srv.URL+"/metrics")
	for _, want := range []string{
		"counter test.hits 3",
		"gauge test.rate 0.5",
		"histogram test.steps count=1 sum=4",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	var snap Snapshot
	if err := json.Unmarshal([]byte(get(t, srv.URL+"/metrics.json")), &snap); err != nil {
		t.Fatalf("/metrics.json is not valid JSON: %v", err)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 3 {
		t.Errorf("/metrics.json counters = %+v", snap.Counters)
	}

	if body := get(t, srv.URL+"/debug/vars"); !strings.HasPrefix(strings.TrimSpace(body), "{") {
		t.Errorf("/debug/vars is not a JSON object:\n%.200s", body)
	}
	if body := get(t, srv.URL+"/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline returned nothing")
	}
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r := NewRegistry()
	r.PublishExpvar("obs_test_registry")
	r.PublishExpvar("obs_test_registry") // second publish must not panic
}
