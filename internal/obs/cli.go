package obs

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
)

// CLIFlags is the shared observability flag set of the experiment CLIs
// (glitchemu, glitchscan, glitcheval): -metrics, -trace, -serve and the
// trace tuning knobs.
type CLIFlags struct {
	Metrics   bool
	TracePath string
	ServeAddr string
	Sample    int
	RingSize  int
}

// RegisterCLIFlags registers the shared observability flags on fs.
func RegisterCLIFlags(fs *flag.FlagSet) *CLIFlags {
	f := &CLIFlags{}
	fs.BoolVar(&f.Metrics, "metrics", false,
		"print a metrics snapshot after the experiments")
	fs.StringVar(&f.TracePath, "trace", "",
		"write a JSONL execution trace to this file")
	fs.StringVar(&f.ServeAddr, "serve", "",
		"serve /metrics and /debug/pprof on this address while running")
	fs.IntVar(&f.Sample, "trace-sample", 1000,
		"keep one trace event record in every N executions")
	fs.IntVar(&f.RingSize, "trace-failures", DefaultFailureRing,
		"post-mortem ring: keep the last N failed executions in the trace")
	return f
}

// Enabled reports whether any observability output was requested.
func (f *CLIFlags) Enabled() bool {
	return f.Metrics || f.TracePath != "" || f.ServeAddr != ""
}

// Session is the running observability state of one CLI invocation.
type Session struct {
	Flags  *CLIFlags
	Reg    *Registry
	Tracer *Tracer // nil when no trace was requested

	traceFile *os.File
	srv       *http.Server
}

// Start opens the trace sink and the serve endpoint per the flags,
// recording into reg (pass Default to share the compiler pipeline's
// metrics). Always returns a usable session; Close must be called.
func (f *CLIFlags) Start(reg *Registry) (*Session, error) {
	s := &Session{Flags: f, Reg: reg}
	if f.TracePath != "" {
		file, err := os.Create(f.TracePath)
		if err != nil {
			return nil, fmt.Errorf("obs: trace sink: %w", err)
		}
		s.traceFile = file
		s.Tracer = NewTracer(file)
		s.Tracer.SetSampling(f.Sample)
		s.Tracer.SetFailureRing(f.RingSize)
	}
	if f.ServeAddr != "" {
		reg.PublishExpvar("glitchlab")
		srv, addr, err := Serve(f.ServeAddr, reg)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("obs: serve: %w", err)
		}
		s.srv = srv
		fmt.Fprintf(os.Stderr, "obs: serving /metrics and /debug/pprof on http://%s\n", addr)
	}
	return s, nil
}

// Progress returns a stderr progress printer for campaign ticks, or nil
// when no observability output was requested (keeping default runs quiet).
func (s *Session) Progress(label string) func(done, total uint64) {
	if !s.Flags.Enabled() {
		return nil
	}
	return func(done, total uint64) {
		if total == 0 {
			fmt.Fprintf(os.Stderr, "%s: %d executions\n", label, done)
			return
		}
		fmt.Fprintf(os.Stderr, "%s: %d/%d executions (%.1f%%)\n",
			label, done, total, 100*float64(done)/float64(total))
	}
}

// Close flushes the tracer (failure ring + summary), closes the trace file
// and shuts down the serve endpoint.
func (s *Session) Close() {
	s.Tracer.Close()
	if s.traceFile != nil {
		_ = s.traceFile.Close()
		s.traceFile = nil
	}
	if s.srv != nil {
		_ = s.srv.Close()
		s.srv = nil
	}
}

// DumpMetrics writes the registry snapshot to w when -metrics was given.
// The render func lets callers use the report package's table layout
// without obs importing it.
func (s *Session) DumpMetrics(w io.Writer, render func(Snapshot) string) {
	if !s.Flags.Metrics {
		return
	}
	if render == nil {
		render = func(snap Snapshot) string { return snap.Text() }
	}
	fmt.Fprintln(w, render(s.Reg.Snapshot()))
}
