package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Record is one JSONL trace line. The schema (documented in the README's
// Observability section):
//
//	{"type":"span",   "name":..., "t_us":..., "dur_us":..., "attrs":{...}}
//	{"type":"event",  "name":..., "t_us":..., "attrs":{...}}
//	{"type":"failure","name":..., "t_us":..., "attrs":{...}}
//	{"type":"summary","t_us":..., "attrs":{...}}
//
// t_us is microseconds since the tracer was created (monotonic). Span
// records carry the span's start in t_us and its duration in dur_us.
// Failure records are re-emitted from the post-mortem ring buffer when the
// tracer is closed, so the tail of the file always holds the last
// FailureRing classified-failure executions even under heavy sampling.
//
// Every written record carries the schema version in "v". Version 1
// predates the field, so a record with v of 0 is a v1 record; loaders
// (internal/obs/query) accept both.
type Record struct {
	Type  string         `json:"type"`
	V     int            `json:"v,omitempty"`
	Name  string         `json:"name,omitempty"`
	TUs   int64          `json:"t_us"`
	DurUs int64          `json:"dur_us,omitempty"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// TraceSchemaVersion is the trace record schema written by this Tracer.
// v2 added the "v" field itself.
const TraceSchemaVersion = 2

// DefaultFailureRing is the default post-mortem capture depth.
const DefaultFailureRing = 64

// Tracer emits structured trace records to a JSONL sink. A nil *Tracer is
// valid and every method on it is a no-op, so instrumentation can call
// unconditionally. All methods are safe for concurrent use.
type Tracer struct {
	mu      sync.Mutex
	w       io.Writer
	enc     *json.Encoder
	clock   func() time.Time
	start   time.Time
	every   uint64 // emit every Nth event record; 0 = emit none
	seen    uint64
	emitted uint64
	spans   uint64
	ring    []Record
	ringLen int
	next    int
	closed  bool
}

// NewTracer returns a tracer writing JSONL to w (which may be nil: records
// are counted and failures ring-buffered, but nothing is written). Sampling
// defaults to every event; tune with SetSampling.
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{
		w:     w,
		clock: time.Now,
		every: 1,
		ring:  make([]Record, DefaultFailureRing),
	}
	if w != nil {
		t.enc = json.NewEncoder(w)
	}
	t.start = t.clock()
	return t
}

// SetClock replaces the tracer's time source (tests use a fixed clock for
// golden files). It also resets the tracer's start instant.
func (t *Tracer) SetClock(clock func() time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.clock = clock
	t.start = clock()
}

// SetSampling keeps one event record in every n. n <= 0 disables event
// records entirely (spans and the failure ring are always kept).
func (t *Tracer) SetSampling(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n < 0 {
		n = 0
	}
	t.every = uint64(n)
}

// SetFailureRing resizes the post-mortem ring buffer to keep the last n
// failure records.
func (t *Tracer) SetFailureRing(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n < 0 {
		n = 0
	}
	t.ring = make([]Record, n)
	t.ringLen = 0
	t.next = 0
}

func (t *Tracer) sinceUs() int64 {
	return t.clock().Sub(t.start).Microseconds()
}

func (t *Tracer) write(rec Record) {
	if t.enc != nil && !t.closed {
		rec.V = TraceSchemaVersion
		_ = t.enc.Encode(rec) // tracing must never fail the experiment
	}
}

// Span measures one timed region.
type Span struct {
	t     *Tracer
	name  string
	attrs map[string]any
	start time.Time
	tUs   int64
}

// StartSpan opens a span; call End to record it. Attrs may be nil.
func (t *Tracer) StartSpan(name string, attrs map[string]any) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return &Span{t: t, name: name, attrs: attrs, start: t.clock(), tUs: t.sinceUs()}
}

// End records the span with its monotonic duration. Safe on a nil span.
func (s *Span) End() {
	if s == nil || s.t == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans++
	t.write(Record{
		Type:  "span",
		Name:  s.name,
		TUs:   s.tUs,
		DurUs: t.clock().Sub(s.start).Microseconds(),
		Attrs: s.attrs,
	})
}

// Event records one per-execution event, subject to sampling.
func (t *Tracer) Event(name string, attrs map[string]any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seen++
	if t.every == 0 || t.seen%t.every != 0 {
		return
	}
	t.emitted++
	t.write(Record{Type: "event", Name: name, TUs: t.sinceUs(), Attrs: attrs})
}

// Failure captures a failed execution into the post-mortem ring buffer
// (always, regardless of sampling). The ring's contents are appended to
// the sink as "failure" records when the tracer is closed.
func (t *Tracer) Failure(name string, attrs map[string]any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) == 0 {
		return
	}
	t.ring[t.next] = Record{Type: "failure", Name: name, TUs: t.sinceUs(), Attrs: attrs}
	t.next = (t.next + 1) % len(t.ring)
	if t.ringLen < len(t.ring) {
		t.ringLen++
	}
}

// Failures returns the ring buffer's contents, oldest first.
func (t *Tracer) Failures() []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.failuresLocked()
}

func (t *Tracer) failuresLocked() []Record {
	out := make([]Record, 0, t.ringLen)
	for i := 0; i < t.ringLen; i++ {
		idx := (t.next - t.ringLen + i + len(t.ring)) % len(t.ring)
		out = append(out, t.ring[idx])
	}
	return out
}

// Close flushes the failure ring and a summary record to the sink. The
// tracer is unusable afterwards. Safe on a nil tracer.
func (t *Tracer) Close() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	for _, rec := range t.failuresLocked() {
		t.write(rec)
	}
	t.write(Record{
		Type: "summary",
		TUs:  t.sinceUs(),
		Attrs: map[string]any{
			"events_seen":       t.seen,
			"events_emitted":    t.emitted,
			"spans":             t.spans,
			"failures_captured": uint64(t.ringLen),
		},
	})
	t.closed = true
}
