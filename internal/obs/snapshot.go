package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeValue is one gauge in a snapshot.
type GaugeValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// BucketValue is one histogram bucket: the count of observations at or
// below the upper bound (non-cumulative: each observation appears in
// exactly one bucket).
type BucketValue struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// HistogramValue is one histogram in a snapshot.
type HistogramValue struct {
	Name     string        `json:"name"`
	Count    uint64        `json:"count"`
	Sum      float64       `json:"sum"`
	Buckets  []BucketValue `json:"buckets"`
	Overflow uint64        `json:"overflow"` // observations above the last bound
}

// Snapshot is a point-in-time copy of a registry, sorted by name so text
// and JSON renderings are deterministic.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		hv := HistogramValue{Name: name, Count: h.Count(), Sum: h.Sum()}
		for i, b := range h.bounds {
			hv.Buckets = append(hv.Buckets, BucketValue{
				UpperBound: b,
				Count:      h.buckets[i].Load(),
			})
		}
		hv.Overflow = h.buckets[len(h.bounds)].Load()
		s.Histograms = append(s.Histograms, hv)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// fmtFloat renders a float compactly (no trailing zeros, no exponent for
// the magnitudes metrics use).
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Text renders the snapshot in a flat, line-oriented format:
//
//	counter <name> <value>
//	gauge <name> <value>
//	histogram <name> count=<n> sum=<s>
//	  le <bound> <count>
//	  overflow <count>
func (s Snapshot) Text() string {
	var sb strings.Builder
	for _, c := range s.Counters {
		fmt.Fprintf(&sb, "counter %s %d\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(&sb, "gauge %s %s\n", g.Name, fmtFloat(g.Value))
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(&sb, "histogram %s count=%d sum=%s\n", h.Name, h.Count, fmtFloat(h.Sum))
		for _, b := range h.Buckets {
			fmt.Fprintf(&sb, "  le %s %d\n", fmtFloat(b.UpperBound), b.Count)
		}
		fmt.Fprintf(&sb, "  overflow %d\n", h.Overflow)
	}
	return sb.String()
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// publishMu guards against double expvar registration, which panics.
var publishMu sync.Mutex

// PublishExpvar exposes the registry under the given expvar name (shown by
// the standard /debug/vars endpoint). Publishing the same name twice is a
// no-op rather than the package-level panic expvar.Publish raises.
func (r *Registry) PublishExpvar(name string) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
