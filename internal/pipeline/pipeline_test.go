package pipeline

import (
	"testing"

	"glitchlab/internal/emu"
	"glitchlab/internal/firmware"
)

// guardSource is a minimal while(!a)-style loop with a trigger, used to
// exercise the machine. Loop body: mov(1) adds(1) ldrb(2) cmp(1) beq(3).
const guardSource = `
	sub sp, #8
	movs r3, #0
	mov r2, sp
	strb r3, [r2, #7]
	ldr r0, trig
	movs r1, #1
	str r1, [r0]
loop:
	mov r3, sp
	adds r3, #7
	ldrb r3, [r3]
	cmp r3, #0
	beq loop
exit:
	b exit
	.align 4
trig:
	.word 0x48000028
`

func newGuardMachine(t *testing.T) *Machine {
	t.Helper()
	b, err := firmware.NewBoard()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.LoadSource(guardSource); err != nil {
		t.Fatal(err)
	}
	m := NewMachine(b)
	m.AddStopSymbol("exit")
	b.Reset()
	return m
}

func TestCleanRunLoopsForever(t *testing.T) {
	m := newGuardMachine(t)
	r := m.Run(500)
	if r.Reason != StopHung {
		t.Fatalf("clean run: %v (tag %q), want hung", r.Reason, r.Tag)
	}
	if m.Board.TriggerCount != 1 {
		t.Errorf("trigger count = %d, want 1", m.Board.TriggerCount)
	}
}

func TestSkipEventEscapesLoop(t *testing.T) {
	// Skipping the conditional branch (cycles 5-7 of the loop) must fall
	// through to exit. The skip must target the branch's issue slot: the
	// glitch lands at cycle 5, the branch's first execute cycle.
	m := newGuardMachine(t)
	m.Glitch = func(rel, window int) (Event, bool) {
		if rel == 5 {
			return Event{Kind: EventSkip}, true
		}
		return Event{}, false
	}
	r := m.Run(500)
	if r.Reason != StopHit || r.Tag != "exit" {
		t.Fatalf("skip glitch: %v (tag %q), want exit hit", r.Reason, r.Tag)
	}
}

func TestDataCorruptEscapesLoop(t *testing.T) {
	// Corrupting the LDRB's data (cycles 2-3) to a non-zero value breaks
	// while(!a).
	m := newGuardMachine(t)
	m.Glitch = func(rel, window int) (Event, bool) {
		if rel == 2 {
			return Event{Kind: EventDataCorrupt, DataResidue: true, DataValue: 0x55}, true
		}
		return Event{}, false
	}
	r := m.Run(500)
	if r.Reason != StopHit {
		t.Fatalf("data glitch: %v, want exit hit", r.Reason)
	}
	if r.Regs[3] != 0x55 {
		t.Errorf("post-mortem r3 = %#x, want 0x55", r.Regs[3])
	}
}

func TestDataCorruptZeroHasNoEffectOnWhileNotA(t *testing.T) {
	// Forcing the load to zero keeps while(!a) looping: the exit needs a
	// non-zero value.
	m := newGuardMachine(t)
	m.Glitch = func(rel, window int) (Event, bool) {
		if rel == 2 {
			return Event{Kind: EventDataCorrupt, DataMask: 0xFFFFFFFF}, true
		}
		return Event{}, false
	}
	if r := m.Run(500); r.Reason != StopHung {
		t.Fatalf("zeroing glitch: %v, want hung", r.Reason)
	}
}

func TestFetchCorruptHitsTwoSlotsLater(t *testing.T) {
	// A fetch-stage corruption at the MOV's cycle (rel 0) must corrupt
	// the instruction two issue slots later (the LDRB), not the MOV.
	// Clearing all bits turns the LDRB into an effective NOP, so R3
	// keeps the address value SP+7 — and the loop exits because the
	// address is non-zero.
	m := newGuardMachine(t)
	m.Glitch = func(rel, window int) (Event, bool) {
		if rel == 0 && window == 0 {
			return Event{Kind: EventFetchCorrupt, InstMask: 0xFFFF}, true
		}
		return Event{}, false
	}
	r := m.Run(500)
	if r.Reason != StopHit {
		t.Fatalf("fetch glitch: %v, want exit", r.Reason)
	}
	wantR3 := uint32(firmware.StackTop) - 8 + 7
	if r.Regs[3] != wantR3 {
		t.Errorf("r3 = %#x, want %#x (nop'd load leaves the address)", r.Regs[3], wantR3)
	}
}

func TestExecCorruptHitsCurrentSlot(t *testing.T) {
	// An execute-stage corruption at the branch's first cycle (rel 5)
	// zeroes the BEQ itself, falling through immediately.
	m := newGuardMachine(t)
	m.Glitch = func(rel, window int) (Event, bool) {
		if rel == 5 {
			return Event{Kind: EventExecCorrupt, InstMask: 0xFFFF}, true
		}
		return Event{}, false
	}
	if r := m.Run(500); r.Reason != StopHit {
		t.Fatalf("exec glitch: %v, want exit", r.Reason)
	}
}

func TestPCCorruptCrashes(t *testing.T) {
	m := newGuardMachine(t)
	m.Glitch = func(rel, window int) (Event, bool) {
		if rel == 1 {
			return Event{Kind: EventPCCorrupt, DataResidue: true, DataValue: 0x6000_0001}, true
		}
		return Event{}, false
	}
	r := m.Run(500)
	if r.Reason != StopFault || r.Fault != emu.FaultBadFetch {
		t.Fatalf("pc glitch: %v/%v, want bad fetch", r.Reason, r.Fault)
	}
}

func TestRegCorrupt(t *testing.T) {
	// Setting a bit in r3 right before the CMP (rel 4 is the CMP's
	// cycle; the corruption applies before that instruction executes)
	// makes while(!a) exit.
	m := newGuardMachine(t)
	m.Glitch = func(rel, window int) (Event, bool) {
		if rel == 4 {
			return Event{Kind: EventRegCorrupt, Reg: 3, DataMask: 0x10, DataSet: true}, true
		}
		return Event{}, false
	}
	r := m.Run(500)
	if r.Reason != StopHit {
		t.Fatalf("reg glitch: %v, want exit", r.Reason)
	}
	if r.Regs[3] != 0x10 {
		t.Errorf("r3 = %#x, want 0x10", r.Regs[3])
	}
}

func TestGlitchBeforeTriggerIgnored(t *testing.T) {
	// The injector must not be consulted before the trigger fires; a
	// glitch plan on "every cycle" of window -1 would otherwise corrupt
	// the setup code.
	m := newGuardMachine(t)
	calls := 0
	m.Glitch = func(rel, window int) (Event, bool) {
		calls++
		if rel < 0 || window < 0 {
			t.Fatalf("injector called with rel=%d window=%d", rel, window)
		}
		return Event{}, false
	}
	m.Run(100)
	if calls == 0 {
		t.Fatal("injector never consulted after trigger")
	}
}

func TestRunIsRepeatable(t *testing.T) {
	// Two identical glitched runs produce identical results.
	inj := func(rel, window int) (Event, bool) {
		if rel == 3 {
			return Event{Kind: EventDataCorrupt, DataResidue: true, DataValue: 0xFF}, true
		}
		return Event{}, false
	}
	m1 := newGuardMachine(t)
	m1.Glitch = inj
	r1 := m1.Run(500)
	m2 := newGuardMachine(t)
	m2.Glitch = inj
	r2 := m2.Run(500)
	if r1 != r2 {
		t.Fatalf("runs differ:\n%+v\n%+v", r1, r2)
	}
}

func TestMultiWindowIndices(t *testing.T) {
	// A firmware with two triggers must present window 0 then window 1.
	b, err := firmware.NewBoard()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.LoadSource(`
		ldr r0, trig
		movs r1, #1
		str r1, [r0]
		nop
		nop
		str r1, [r0]
		nop
	end:
		b end
		.align 4
	trig:
		.word 0x48000028
	`); err != nil {
		t.Fatal(err)
	}
	m := NewMachine(b)
	m.AddStopSymbol("end")
	b.Reset()
	seen := map[int]bool{}
	m.Glitch = func(rel, window int) (Event, bool) {
		seen[window] = true
		return Event{}, false
	}
	if r := m.Run(200); r.Reason != StopHit {
		t.Fatalf("run: %v", r.Reason)
	}
	if !seen[0] || !seen[1] {
		t.Errorf("windows seen = %v, want 0 and 1", seen)
	}
}

func TestEventKindStrings(t *testing.T) {
	// Every defined kind must render a name, not the numeric fallback —
	// EventPCCorrupt regressed to "event6" once.
	names := map[EventKind]string{
		EventNone:         "none",
		EventFetchCorrupt: "fetch-corrupt",
		EventExecCorrupt:  "exec-corrupt",
		EventDataCorrupt:  "data-corrupt",
		EventSkip:         "skip",
		EventRegCorrupt:   "reg-corrupt",
		EventPCCorrupt:    "pc-corrupt",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("EventKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestMaxStepsCutsRun(t *testing.T) {
	// The guard loop never exits cleanly; a step bound must report hung at
	// exactly that many retired instructions regardless of the cycle
	// budget, and the cut must be deterministic.
	m := newGuardMachine(t)
	m.MaxSteps = 25
	r := m.Run(1 << 40)
	if r.Reason != StopHung {
		t.Fatalf("bounded run: %v (tag %q), want hung", r.Reason, r.Tag)
	}
	if r.Steps != 25 {
		t.Errorf("steps at cut = %d, want 25", r.Steps)
	}

	// A stop reached before the bound still wins over the step check.
	m2 := newGuardMachine(t)
	m2.MaxSteps = 1 << 40
	m2.Glitch = func(rel, window int) (Event, bool) {
		if rel == 5 {
			return Event{Kind: EventSkip}, true
		}
		return Event{}, false
	}
	if r := m2.Run(500); r.Reason != StopHit || r.Tag != "exit" {
		t.Fatalf("stop vs step bound: %v (tag %q), want exit hit", r.Reason, r.Tag)
	}
}
