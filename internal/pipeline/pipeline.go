// Package pipeline models the target's three-stage (fetch / decode /
// execute) Cortex-M0 pipeline with cycle accuracy, and maps clock-glitch
// events onto pipeline stages: a glitch during clock cycle N can corrupt the
// instruction word in the fetch stage (affecting the instruction that
// executes two issue slots later), corrupt the word latched into execute,
// corrupt the data bus of an in-flight load, suppress issue entirely, or
// flip bits in the register file.
//
// The paper (Section V) stresses that on a three-stage pipeline it is hard
// to attribute a glitch to a single instruction; this model reproduces that
// ambiguity: one glitched cycle can touch both the executing instruction and
// the one being prefetched.
package pipeline

import (
	"errors"
	"fmt"
	"time"

	"glitchlab/internal/emu"
	"glitchlab/internal/firmware"
	"glitchlab/internal/isa"
)

// EventKind selects which pipeline stage a glitch corrupts.
type EventKind uint8

// Event kinds.
const (
	EventNone         EventKind = iota
	EventFetchCorrupt           // corrupt the word in the fetch stage
	EventExecCorrupt            // corrupt the word latched into execute
	EventDataCorrupt            // corrupt the data bus of an in-flight load
	EventSkip                   // suppress issue (instruction becomes a bubble)
	EventRegCorrupt             // flip bits in the register file
	EventPCCorrupt              // corrupt the fetch address / program counter
)

// String returns the event-kind name.
func (k EventKind) String() string {
	switch k {
	case EventNone:
		return "none"
	case EventFetchCorrupt:
		return "fetch-corrupt"
	case EventExecCorrupt:
		return "exec-corrupt"
	case EventDataCorrupt:
		return "data-corrupt"
	case EventSkip:
		return "skip"
	case EventRegCorrupt:
		return "reg-corrupt"
	case EventPCCorrupt:
		return "pc-corrupt"
	}
	return fmt.Sprintf("event%d", uint8(k))
}

// Event is one glitch-induced corruption.
type Event struct {
	Kind EventKind
	// InstMask is applied to the targeted instruction halfword: bits are
	// cleared (1→0, the dominant clock-glitch effect) unless InstSet.
	InstMask uint16
	InstSet  bool
	// DataMask is applied to a loaded data word or a register.
	DataMask uint32
	DataSet  bool
	// DataResidue replaces the loaded value outright with DataValue —
	// a short glitch makes the bus capture whatever residue is floating
	// on it rather than a bit-flipped version of the real value.
	DataResidue bool
	DataValue   uint32
	// Reg is the register file target for EventRegCorrupt (r0-r7).
	Reg isa.Reg
}

func (e Event) applyInst(hw uint16) uint16 {
	if e.InstSet {
		return hw | e.InstMask
	}
	return hw &^ e.InstMask
}

func (e Event) applyData(v uint32) uint32 {
	if e.DataResidue {
		return e.DataValue
	}
	if e.DataSet {
		return v | e.DataMask
	}
	return v &^ e.DataMask
}

// Injector supplies the glitch events for a run. rel is the clock cycle
// relative to the most recent trigger; window is the trigger occurrence
// index (0 for the first trigger — multi-glitch experiments see 0 and 1).
type Injector func(rel int, window int) (Event, bool)

// StopReason describes how a run ended.
type StopReason uint8

// Stop reasons.
const (
	StopHit   StopReason = iota // reached a stop symbol
	StopHung                    // cycle budget exhausted (still looping)
	StopFault                   // hardware fault
)

// String returns the stop-reason name.
func (r StopReason) String() string {
	switch r {
	case StopHit:
		return "hit"
	case StopHung:
		return "hung"
	case StopFault:
		return "fault"
	}
	return fmt.Sprintf("reason%d", uint8(r))
}

// Result summarizes one run.
type Result struct {
	Reason StopReason
	Tag    string        // stop symbol name for StopHit
	Fault  emu.FaultKind // fault kind for StopFault
	Regs   [16]uint32    // post-mortem register file
	Cycles uint64
	Steps  uint64
}

// fetchAhead is the pipeline depth between fetch and execute: with three
// stages, the word being fetched during cycle N executes two issue slots
// after the instruction executing at N.
const fetchAhead = 2

// Machine drives a board cycle-accurately with optional glitch injection.
type Machine struct {
	Board  *firmware.Board
	Stops  map[uint32]string // address -> tag; run ends when PC reaches one
	Glitch Injector          // nil for clean runs

	// MaxSteps, when non-zero, bounds the run by retired instructions in
	// addition to Run's cycle budget, reporting StopHung once the count is
	// reached. Differential harnesses use it to cut a pipeline run and a
	// functional emu.CPU.Run at exactly the same instruction, so that even
	// hung executions can be compared register for register (a cycle
	// budget cannot do that: flash-programming stalls make the
	// cycles-per-instruction ratio program-dependent).
	MaxSteps uint64

	// Replay, when non-nil, accumulates the measured cost of the
	// glitch-window mapping work (peek + cycle-to-event dispatch) the
	// machine performs per issue slot inside an active trigger window.
	// One clock-read pair per timed slot: set it only on sampled
	// attempts (the phase profiler does) and subtract Ops multiplied by
	// the calibrated clock-read cost when attributing Ns.
	Replay *ReplayProf

	windowStart uint64 // cycle at which the active trigger window began
	windowIdx   int    // trigger occurrence index (-1 before first trigger)

	step          uint64
	corruptAt     map[uint64]Event // step index -> instruction corruption
	dataCorrupt   map[uint64]Event // step index -> load-data corruption
	skipAt        map[uint64]bool
	curStepFetch  bool // first fetch of the current step already seen
	curStep       uint64
	glitchedSteps uint64
}

// NewMachine wires a machine to a board.
func NewMachine(b *firmware.Board) *Machine {
	m := &Machine{
		Board:     b,
		Stops:     map[uint32]string{},
		windowIdx: -1,
	}
	b.OnTrigger = func(cycle uint64, count int) {
		// The store retires after this hook runs; the next instruction
		// begins at the store's completion cycle. The paper's triggers
		// fire one cycle before the targeted instruction, which is the
		// store's own final cycle — so the window starts at the cycle
		// following the hook's view of time plus the store cost.
		m.windowStart = b.CPU.Cycles + 2 // str is a 2-cycle instruction
		m.windowIdx = count - 1
	}
	b.CPU.Hooks.FetchOverride = m.fetchOverride
	b.CPU.Hooks.LoadOverride = m.loadOverride
	return m
}

// AddStop registers a stop symbol.
func (m *Machine) AddStop(addr uint32, tag string) {
	m.Stops[addr] = tag
}

// AddStopSymbol registers a stop at a named program symbol.
func (m *Machine) AddStopSymbol(name string) {
	m.Stops[m.Board.MustSymbol(name)] = name
}

func (m *Machine) fetchOverride(addr uint32, hw uint16) uint16 {
	// Only the first halfword fetched in a step is the issue word.
	if m.curStepFetch {
		return hw
	}
	m.curStepFetch = true
	if m.skipAt[m.curStep] {
		return 0xbf00 // issue bubble: NOP
	}
	if ev, ok := m.corruptAt[m.curStep]; ok {
		return ev.applyInst(hw)
	}
	return hw
}

func (m *Machine) loadOverride(addr uint32, size uint32, val uint32) uint32 {
	if ev, ok := m.dataCorrupt[m.curStep]; ok {
		delete(m.dataCorrupt, m.curStep)
		return ev.applyData(val)
	}
	return val
}

// peek decodes the instruction at pc, applying any corruption already
// scheduled for the upcoming step, so that the cycle-cost estimate matches
// what will execute.
func (m *Machine) peek(pc uint32) (isa.Inst, bool) {
	cpu := m.Board.CPU
	r, ok := cpu.Mem.Region(pc, 2)
	if !ok || pc%2 != 0 {
		return isa.Inst{}, false
	}
	off := pc - r.Base
	hw := uint16(r.Data[off]) | uint16(r.Data[off+1])<<8
	if m.skipAt[m.step] {
		hw = 0xbf00
	} else if ev, ok := m.corruptAt[m.step]; ok {
		hw = ev.applyInst(hw)
	}
	var hw2 uint16
	if isa.Is32Bit(hw) {
		if r2, ok := cpu.Mem.Region(pc+2, 2); ok {
			o2 := pc + 2 - r2.Base
			hw2 = uint16(r2.Data[o2]) | uint16(r2.Data[o2+1])<<8
		}
	}
	return isa.Decode(hw, hw2), true
}

// GlitchedSteps reports how many issue slots were touched by glitch events
// in the last run (diagnostic).
func (m *Machine) GlitchedSteps() uint64 { return m.glitchedSteps }

// ReplayProf accumulates the cost of the glitch-window mapping work: Ns
// is the measured wall time, Ops the number of timed issue slots (each
// carrying one clock-read pair of instrumentation overhead).
type ReplayProf struct {
	Ns  int64
	Ops uint64
}

// Run executes until a stop symbol, a fault, or the cycle budget.
func (m *Machine) Run(maxCycles uint64) Result {
	m.resetRun()
	return m.run(maxCycles)
}

// resetRun clears the per-run glitch-mapping state.
func (m *Machine) resetRun() {
	m.step = 0
	m.windowIdx = -1
	m.windowStart = 0
	m.corruptAt = map[uint64]Event{}
	m.dataCorrupt = map[uint64]Event{}
	m.skipAt = map[uint64]bool{}
	m.glitchedSteps = 0
}

// run is the machine's main loop, continuing from the current machine and
// board state (Run and RunFrom both funnel into it).
func (m *Machine) run(maxCycles uint64) Result {
	cpu := m.Board.CPU

	for {
		pc := cpu.PC()
		if tag, ok := m.Stops[pc]; ok {
			return m.result(StopHit, tag, 0)
		}
		if cpu.Cycles >= maxCycles {
			return m.result(StopHung, "", 0)
		}
		if m.MaxSteps > 0 && cpu.Steps >= m.MaxSteps {
			return m.result(StopHung, "", 0)
		}

		// Map glitched cycles in this instruction's execute window to
		// pipeline effects.
		if m.Glitch != nil && m.windowIdx >= 0 {
			var t0 time.Time
			if m.Replay != nil {
				t0 = time.Now()
			}
			if in, ok := m.peek(pc); ok {
				cost := cpu.CostOf(in)
				start := cpu.Cycles
				for c := 0; c < cost; c++ {
					rel := int(int64(start) + int64(c) - int64(m.windowStart))
					if rel < 0 {
						continue
					}
					ev, hit := m.Glitch(rel, m.windowIdx)
					if !hit {
						continue
					}
					m.dispatch(ev)
				}
			}
			if m.Replay != nil {
				m.Replay.Ns += time.Since(t0).Nanoseconds()
				m.Replay.Ops++
			}
		}

		m.curStep = m.step
		m.curStepFetch = false
		_, err := cpu.Step()
		delete(m.corruptAt, m.step)
		delete(m.skipAt, m.step)
		delete(m.dataCorrupt, m.step)
		m.step++
		if err != nil {
			var fault *emu.Fault
			if errors.As(err, &fault) {
				return m.result(StopFault, "", fault.Kind)
			}
			return m.result(StopFault, "", emu.FaultNone)
		}
	}
}

func (m *Machine) dispatch(ev Event) {
	m.glitchedSteps++
	switch ev.Kind {
	case EventFetchCorrupt:
		// The word in the fetch stage belongs to the instruction two
		// issue slots ahead.
		if _, exists := m.corruptAt[m.step+fetchAhead]; !exists {
			m.corruptAt[m.step+fetchAhead] = ev
		}
	case EventExecCorrupt:
		if _, exists := m.corruptAt[m.step]; !exists {
			m.corruptAt[m.step] = ev
		}
	case EventDataCorrupt:
		m.dataCorrupt[m.step] = ev
	case EventSkip:
		m.skipAt[m.step] = true
	case EventRegCorrupt:
		r := ev.Reg & 7
		m.Board.CPU.R[r] = ev.applyData(m.Board.CPU.R[r])
	case EventPCCorrupt:
		pc := m.Board.CPU.R[isa.PC]
		m.Board.CPU.R[isa.PC] = ev.applyData(pc) &^ 1
	}
}

// Snapshot is a restorable capture of a machine, its CPU and its board at
// the trigger point, letting a glitch campaign replay only the post-trigger
// window instead of re-simulating the whole boot prologue per attempt.
type Snapshot struct {
	cpu         emu.CPUState
	mem         *emu.MemSnapshot
	step        uint64
	windowStart uint64
	windowIdx   int
	trigCount   int
	trigCycle   uint64
	flashWrites int
}

// SnapshotAtTrigger resets the board and runs — glitch-free — until the
// first trigger write retires, then captures a Snapshot at exactly that
// point. The capture sits at relative cycle 0 of the glitch window: the
// trigger hook sets windowStart to the trigger store's completion cycle, so
// no injector event can apply to any cycle before the snapshot (the glitch
// mapping is gated on a non-negative window index, which only the trigger
// itself establishes). The prologue is therefore injector-independent and
// RunFrom(s, ...) is byte-identical to a full Run with the same injector.
//
// It returns nil if the run stops, faults or exhausts its budgets before
// any trigger fires; callers fall back to full runs in that case.
//
// The snapshot's memory capture arms dirty-page tracking on the board's
// writable regions; from then on the board must only be re-run through
// RestoreSnapshot/RunFrom. A Board.Reset would repaint SRAM outside the
// CPU store path, invisibly to the tracking, and stale data would survive
// the next restore.
func (m *Machine) SnapshotAtTrigger(maxCycles uint64) *Snapshot {
	m.Board.Reset()
	m.resetRun()
	cpu := m.Board.CPU
	for m.windowIdx < 0 {
		if _, ok := m.Stops[cpu.PC()]; ok {
			return nil
		}
		if cpu.Cycles >= maxCycles {
			return nil
		}
		if m.MaxSteps > 0 && cpu.Steps >= m.MaxSteps {
			return nil
		}
		m.curStep = m.step
		m.curStepFetch = false
		if _, err := cpu.Step(); err != nil {
			return nil
		}
		m.step++
	}
	return &Snapshot{
		cpu:         cpu.State(),
		mem:         m.Board.Mem.Snapshot(),
		step:        m.step,
		windowStart: m.windowStart,
		windowIdx:   m.windowIdx,
		trigCount:   m.Board.TriggerCount,
		trigCycle:   m.Board.TriggerCycle,
		flashWrites: m.Board.FlashWrites,
	}
}

// Steps reports how many instructions had retired at the snapshot point;
// profilers subtract it from a replayed run's total to count only the
// instructions the replay itself executed.
func (s *Snapshot) Steps() uint64 { return s.cpu.Steps }

// RestoreSnapshot rewinds the machine, CPU, memory and board trigger
// bookkeeping to the captured trigger point.
func (m *Machine) RestoreSnapshot(s *Snapshot) {
	m.resetRun()
	m.step = s.step
	m.windowStart = s.windowStart
	m.windowIdx = s.windowIdx
	m.Board.CPU.SetState(s.cpu)
	s.mem.Restore()
	m.Board.TriggerCount = s.trigCount
	m.Board.TriggerCycle = s.trigCycle
	m.Board.FlashWrites = s.flashWrites
}

// Resume continues execution from the machine's current (restored) state.
func (m *Machine) Resume(maxCycles uint64) Result {
	return m.run(maxCycles)
}

// RunFrom restores a snapshot and runs to completion. maxCycles is the
// same absolute cycle budget a full Run would get; the cycles already spent
// reaching the snapshot count against it, so results match a full run.
func (m *Machine) RunFrom(s *Snapshot, maxCycles uint64) Result {
	m.RestoreSnapshot(s)
	return m.run(maxCycles)
}

func (m *Machine) result(reason StopReason, tag string, fault emu.FaultKind) Result {
	cpu := m.Board.CPU
	return Result{
		Reason: reason,
		Tag:    tag,
		Fault:  fault,
		Regs:   cpu.R,
		Cycles: cpu.Cycles,
		Steps:  cpu.Steps,
	}
}
