package core

import (
	"testing"

	"glitchlab/internal/firmware"
	"glitchlab/internal/glitcher"
	"glitchlab/internal/passes"
	"glitchlab/internal/pipeline"
)

// TestEvalFirmwareBootsUnderEveryDefense checks behaviour preservation:
// the evaluation firmware reaches boot_done under every defense set.
func TestEvalFirmwareBootsUnderEveryDefense(t *testing.T) {
	for _, cfg := range DefenseConfigs(EvalSensitive...) {
		if err := Verify(EvalFirmware, cfg, "boot_done", 50_000_000); err != nil {
			t.Errorf("%s: %v", cfg.Name(), err)
		}
	}
}

// TestGuardFirmwareCleanBehaviour checks the Table VI scenarios behave
// correctly when not glitched: the while loop spins forever; the if guard
// falls through to halt.
func TestGuardFirmwareCleanBehaviour(t *testing.T) {
	for _, cfg := range Table6Configs() {
		res, err := Compile(WhileNotAFirmware, cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name(), err)
		}
		r, err := RunClean(res.Image, firmware.FlashWriteCycles+30_000)
		if err != nil {
			t.Fatal(err)
		}
		if r.Reason != pipeline.StopHung {
			t.Errorf("while(!a)/%s clean run ended %v/%q, want hung",
				cfg.Name(), r.Reason, r.Tag)
		}
		if err := Verify(IfSuccessFirmware, cfg, "halt", firmware.FlashWriteCycles+30_000); err != nil {
			t.Errorf("if(a==SUCCESS)/%s: %v", cfg.Name(), err)
		}
	}
}

// TestBranchSkipDetected forces the classic glitch — suppressing the guard
// branch so the protected path executes — and checks the redundant check
// catches it.
func TestBranchSkipDetected(t *testing.T) {
	res, err := Compile(IfSuccessFirmware, passes.AllButDelay())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(res.Image)
	if err != nil {
		t.Fatal(err)
	}
	// Skip every issue slot for one cycle at a time until one lands on
	// the guard branch and diverts control into the success edge; the
	// check block must then divert to the detector.
	detected := 0
	succeeded := 0
	for cycle := 0; cycle < 120; cycle++ {
		m.Board.Reset()
		cyc := cycle
		m.Glitch = func(rel, window int) (pipeline.Event, bool) {
			if rel == cyc {
				return pipeline.Event{Kind: pipeline.EventSkip}, true
			}
			return pipeline.Event{}, false
		}
		r := m.Run(30_000)
		switch r.Tag {
		case "success":
			succeeded++
		case passes.DetectFunc:
			detected++
		}
	}
	if detected == 0 {
		t.Error("no branch-skip attempt was detected")
	}
	if succeeded > 0 {
		t.Errorf("%d single-skip attacks beat the full defense set", succeeded)
	}
}

// TestIntegrityDetectsMemoryCorruption flips a bit in the protected global
// directly (a data-corruption glitch) and checks the next load detects it.
func TestIntegrityDetectsMemoryCorruption(t *testing.T) {
	res, err := Compile(EvalFirmware, passes.Config{
		Integrity: true, Sensitive: EvalSensitive,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(res.Image)
	if err != nil {
		t.Fatal(err)
	}
	r := m.Run(1_000_000)
	if r.Tag != "boot_done" {
		t.Fatalf("boot ended %v/%q", r.Reason, r.Tag)
	}
	// Corrupt uwTick behind the firmware's back.
	addr := res.Image.GlobalAddrs["uwTick"]
	v, ok := m.Board.Mem.ReadWord(addr)
	if !ok {
		t.Fatal("uwTick unreadable")
	}
	if err := m.Board.Mem.Write(addr, []byte{
		byte(v) ^ 0x04, byte(v >> 8), byte(v >> 16), byte(v >> 24),
	}); err != nil {
		t.Fatal(err)
	}
	// The machine is parked on the boot_done stop; disarm it so the run
	// can proceed into the main loop, where the next load must detect the
	// mismatch.
	if bd, ok := res.Image.Symbol("boot_done"); ok {
		delete(m.Stops, bd)
	}
	r = m.Run(m.Board.CPU.Cycles + 100_000)
	if r.Reason != pipeline.StopHit || r.Tag != passes.DetectFunc {
		t.Fatalf("after corruption: %v/%q, want detection", r.Reason, r.Tag)
	}
}

// TestDelayRandomizesTiming checks the random-delay defense changes cycle
// timing between boots (the persisted seed increments), which is what
// breaks glitch parameter tuning.
func TestDelayRandomizesTiming(t *testing.T) {
	res, err := Compile(EvalFirmware, passes.Config{Delay: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(res.Image)
	if err != nil {
		t.Fatal(err)
	}
	var bootCycles []uint64
	var seeds []uint32
	for i := 0; i < 3; i++ {
		m.Board.Reset()
		r := m.Run(50_000_000)
		if r.Tag != "boot_done" {
			t.Fatalf("boot %d ended %v/%q", i, r.Reason, r.Tag)
		}
		bootCycles = append(bootCycles, r.Cycles)
		seeds = append(seeds, m.Board.SeedWord())
	}
	if seeds[0]+1 != seeds[1] || seeds[1]+1 != seeds[2] {
		t.Errorf("seed not incremented across boots: %v", seeds)
	}
	if bootCycles[0] == bootCycles[1] && bootCycles[1] == bootCycles[2] {
		t.Errorf("boot timing identical across boots: %v", bootCycles)
	}
}

func TestTable4Shape(t *testing.T) {
	t4, err := RunTable4()
	if err != nil {
		t.Fatal(err)
	}
	if len(t4.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(t4.Rows))
	}
	base := t4.Baseline()
	if base == 0 {
		t.Fatal("no baseline row")
	}
	byName := map[string]BootRow{}
	for _, r := range t4.Rows {
		byName[r.Name] = r
		if r.Cycles < base {
			t.Errorf("%s boots faster than baseline", r.Name)
		}
	}
	// The delay defense must dominate via its one-time flash constant,
	// and the adjusted column must remove it (paper's analysis).
	delay := byName["Delay"]
	if delay.Constant == 0 {
		t.Error("delay row has no flash constant")
	}
	if t4.Adjusted(delay) >= t4.Increase(delay) {
		t.Error("adjusted increase not below raw increase for Delay")
	}
	if byName["All"].Cycles <= byName["All\\Delay"].Cycles {
		t.Error("All should cost more than All\\Delay")
	}
	// Cheap defenses stay cheap, as in the paper.
	if t4.Increase(byName["Returns"]) > 20 {
		t.Errorf("Returns overhead %.1f%% unexpectedly high",
			t4.Increase(byName["Returns"]))
	}
}

func TestTable5Shape(t *testing.T) {
	t5, err := RunTable5()
	if err != nil {
		t.Fatal(err)
	}
	if len(t5.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(t5.Rows))
	}
	base := t5.Baseline()
	byName := map[string]SizeRow{}
	for _, r := range t5.Rows {
		byName[r.Name] = r
		if r.Sizes.Text < base.Text {
			t.Errorf("%s text smaller than baseline", r.Name)
		}
	}
	if byName["All"].Sizes.Total() <= byName["All\\Delay"].Sizes.Total() {
		t.Error("All should be bigger than All\\Delay")
	}
	// Integrity and Delay add bss (shadow word / seed state).
	if byName["Integrity"].Sizes.BSS <= base.BSS {
		t.Error("Integrity added no bss")
	}
	if byName["Delay"].Sizes.BSS <= base.BSS {
		t.Error("Delay added no bss")
	}
	// Returns only swaps constants: near-zero text growth (paper: 0.06%).
	if growth := byName["Returns"].Sizes.Text - base.Text; growth > 64 {
		t.Errorf("Returns text growth %d bytes unexpectedly large", growth)
	}
}

// TestTable6BestCaseCell runs the cheapest Table VI cell in full and
// checks the paper's headline: single-glitch attacks against the
// RS-hardened if guard are nearly always stopped, with high detection.
func TestTable6BestCaseCell(t *testing.T) {
	model := glitcher.NewModel(DefaultSeed)
	sc := Table6Scenarios()[1] // if(a==SUCCESS)
	cell, err := RunTable6Cell(model, sc, passes.AllButDelay(), AttackSingle, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Total != 11*glitcher.GridSize {
		t.Fatalf("total = %d, want %d", cell.Total, 11*glitcher.GridSize)
	}
	if cell.SuccessRate() > 0.0002 {
		t.Errorf("success rate %.6f%% too high for the best case",
			100*cell.SuccessRate())
	}
	if cell.DetectionRate() < 0.9 {
		t.Errorf("detection rate %.1f%% too low", 100*cell.DetectionRate())
	}
}

func TestDefenseConfigNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, cfg := range DefenseConfigs("x") {
		name := cfg.Name()
		if seen[name] {
			t.Errorf("duplicate config name %q", name)
		}
		seen[name] = true
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile("void main(void { }", passes.None()); err == nil {
		t.Error("syntax error accepted")
	}
	if _, err := Compile("void notmain(void) { }", passes.None()); err == nil {
		t.Error("missing main accepted")
	}
	if _, err := Compile(EvalFirmware, passes.All("nosuchvar")); err == nil {
		t.Error("unknown sensitive global accepted")
	}
}
