package core

import (
	"fmt"

	"glitchlab/internal/analyze"
	"glitchlab/internal/ir"
	"glitchlab/internal/minic"
	"glitchlab/internal/passes"
)

// AuditResult is the pre/post static-analysis pair CompileAudited wraps
// around the defense passes: Pre analyzes an untouched lowering of the
// source (no enum rewrite, no instrumentation, so it shows everything
// glitchlint can find), Post analyzes the instrumented module and emitted
// code, and Unremoved lists the Post findings an enabled pass should have
// removed — each one a defense bug.
type AuditResult struct {
	Pre       *analyze.Result
	Post      *analyze.Result
	Unremoved []analyze.Finding
}

// Err returns a non-nil error when an enabled defense failed to remove a
// finding it owns.
func (a *AuditResult) Err() error {
	if len(a.Unremoved) == 0 {
		return nil
	}
	f := a.Unremoved[0]
	return fmt.Errorf(
		"core: %d findings survived their defense pass (first: %s %s at %s: %s)",
		len(a.Unremoved), f.Rule, f.Slug, f.Location(), f.Detail)
}

// CompileAudited is Compile with the glitchlint analyzer wired around the
// defense-injection stage. The analysis options' Sensitive list defaults
// to the config's, so the pre snapshot flags the loads the integrity pass
// is about to protect. Build errors abort; audit violations do not — the
// caller decides via AuditResult.Err.
func CompileAudited(src string, cfg passes.Config,
	opts analyze.Options) (*CompileResult, *AuditResult, error) {
	if opts.Sensitive == nil {
		opts.Sensitive = cfg.Sensitive
	}
	pre, err := analyzeBaseline(src, opts)
	if err != nil {
		return nil, nil, err
	}
	res, err := Compile(src, cfg)
	if err != nil {
		return nil, nil, err
	}
	post, err := analyze.Run(
		&analyze.Target{Module: res.Module, Image: res.Image}, opts)
	if err != nil {
		return nil, nil, err
	}
	audit := &AuditResult{
		Pre:       pre,
		Post:      post,
		Unremoved: analyze.Unremoved(post, cfg),
	}
	return res, audit, nil
}

// analyzeBaseline lowers the source with no defenses at all and analyzes
// the result. A fresh parse keeps the rewriting passes from contaminating
// the baseline (RewriteEnums mutates the checked AST in place).
func analyzeBaseline(src string, opts analyze.Options) (*analyze.Result, error) {
	prog, err := minic.Parse(src)
	if err != nil {
		return nil, err
	}
	chk, err := minic.Check(prog)
	if err != nil {
		return nil, err
	}
	mod, err := ir.Lower(chk)
	if err != nil {
		return nil, err
	}
	return analyze.Run(&analyze.Target{Module: mod}, opts)
}
