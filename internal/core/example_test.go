package core_test

import (
	"fmt"

	"glitchlab/internal/core"
	"glitchlab/internal/glitcher"
	"glitchlab/internal/passes"
	"glitchlab/internal/pipeline"
)

// ExampleCompile shows the GlitchResistor pipeline: protect a firmware
// with every defense and run it cleanly on the simulated board.
func ExampleCompile() {
	src := `
	enum state { LOCKED, OPEN };
	volatile unsigned int pin;
	void main(void) {
		pin = 1234;
		if (pin == 0) {
			success();
		}
		halt();
	}
	`
	res, err := core.Compile(src, passes.All("pin"))
	if err != nil {
		fmt.Println("compile:", err)
		return
	}
	r, err := core.RunClean(res.Image, 50_000_000)
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	fmt.Printf("shadowed globals: %d\n", res.Report.ShadowedGlobals)
	fmt.Printf("clean run reached: %s\n", r.Tag)
	// Output:
	// shadowed globals: 1
	// clean run reached: halt
}

// ExampleNewMachine demonstrates a targeted glitch attempt against a
// compiled image: skip one issue slot shortly after the trigger and
// observe the defense reaction.
func ExampleNewMachine() {
	res, err := core.Compile(core.IfSuccessFirmware, passes.AllButDelay())
	if err != nil {
		fmt.Println("compile:", err)
		return
	}
	m, err := core.NewMachine(res.Image)
	if err != nil {
		fmt.Println("machine:", err)
		return
	}
	m.Board.Reset()
	m.Glitch = func(rel, window int) (pipeline.Event, bool) {
		if rel == 40 {
			return pipeline.Event{Kind: pipeline.EventSkip}, true
		}
		return pipeline.Event{}, false
	}
	r := m.Run(100_000)
	fmt.Printf("run ended at: %s\n", r.Tag)
	// Output:
	// run ended at: halt
}

// ExampleRunTable1 runs one of the paper's Table I scans.
func ExampleRunTable1() {
	results, err := core.RunTable1(glitcher.NewModel(core.DefaultSeed), 2, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, r := range results {
		fmt.Printf("%s attempts=%d\n", r.Guard, r.Attempts)
	}
	// Output:
	// while(!a) attempts=78408
	// while(a) attempts=78408
	// while(a!=0xD3B9AEC6) attempts=78408
}
