package core

import (
	"fmt"

	"glitchlab/internal/analyze"
	"glitchlab/internal/mutate"
)

// EngineRevision is bumped whenever an engine change alters any rendered
// experiment output: a campaign classification fix, a fault-model change,
// a report-layout edit, a defense-pass tweak that moves Table IV-VI
// numbers. Cached daemon results are keyed on ResultStamp, so the bump is
// what retires every result computed by the previous engine — the same
// contract analyze.RulesVersion gives the corpus-lint cache.
const EngineRevision = 1

// ResultStamp fingerprints the result-producing engines for cache keys:
// the manual EngineRevision plus the static-analysis registry version
// (eval jobs render lint findings, so a rule change must also bust them).
// Identical stamps promise byte-identical rendered output for identical
// experiment configurations.
func ResultStamp() string {
	return fmt.Sprintf("engine/v%d %s", EngineRevision, analyze.RulesVersion())
}

// Figure2Variant is one Section IV campaign configuration.
type Figure2Variant struct {
	Model       mutate.Model
	ZeroInvalid bool
}

// Figure2Variants expands a glitchemu-style model selection into the
// campaign variants to run: an empty model means the four published
// Figure 2 configurations (AND, OR, AND-with-zero-invalid, XOR), a named
// model runs alone with the given zero-invalid setting.
func Figure2Variants(model string, zeroInvalid bool) ([]Figure2Variant, error) {
	if model == "" {
		return []Figure2Variant{
			{mutate.AND, false},
			{mutate.OR, false},
			{mutate.AND, true},
			{mutate.XOR, false},
		}, nil
	}
	m, err := mutate.ParseModel(model)
	if err != nil {
		return nil, err
	}
	return []Figure2Variant{{m, zeroInvalid}}, nil
}
