package core

// EvalFirmware is the indicative STM32Cube-style firmware the overhead
// evaluation builds (paper Section VII-A): board initialization, then a
// main loop that reads a tick counter and calls success() only if the tick
// value is ever zero — designed to be impossible without a glitch. The
// tick counter is the sensitive variable; hal_ready is a constant-return
// function used in a guard; the status enum is uninitialized so the ENUM
// rewriter engages.
const EvalFirmware = `
// Indicative CubeMX-style firmware for the overhead evaluation.
enum status { STATUS_PENDING, STATUS_READY, STATUS_DONE };

volatile unsigned int uwTick;      // sensitive: the HAL tick counter
unsigned int sysclock = 48000000;
unsigned int prescaler;

unsigned int hal_ready(void) {
	return 1;
}

void hal_init(void) {
	prescaler = sysclock / 8000000;
	for (unsigned int i = 0; i < 8; i = i + 1) {
		uwTick = i + 1;
	}
}

unsigned int check_ticks(unsigned int t) {
	if (t == 0) {
		return STATUS_READY;
	}
	return STATUS_PENDING;
}

void main(void) {
	hal_init();
	if (hal_ready() == 1) {
		boot_done();
	}
	while (1) {
		unsigned int t = uwTick;
		if (check_ticks(t) == STATUS_READY) {
			success();   // impossible: uwTick is never zero
		}
		uwTick = t + 1;
	}
}
`

// EvalSensitive lists the globals the evaluation firmware marks sensitive.
var EvalSensitive = []string{"uwTick"}

// SecureBootSource is the paper's Section II motivating scenario, shared
// by the secureboot example and the glitchlint differential tests: a boot
// loader accumulates a checksum over four words of a deliberately unsigned
// image and boots only if it matches the expected signature, so only a
// glitch can reach success(). image_word is the sensitive global a
// protected build shadows.
const SecureBootSource = `
enum verdict { BAD_SIGNATURE, GOOD_SIGNATURE };

volatile unsigned int image_word;

unsigned int verify_signature(void) {
	// Accumulate a checksum over four "image words" and compare with the
	// expected signature. The image is unsigned: the check must fail.
	unsigned int sum = 0;
	for (unsigned int i = 0; i < 4; i = i + 1) {
		sum = sum ^ (image_word + i);
	}
	if (sum == 0xD3B9AEC6) {
		return GOOD_SIGNATURE;
	}
	return BAD_SIGNATURE;
}

void main(void) {
	image_word = 0x1234;
	trigger();
	if (verify_signature() == GOOD_SIGNATURE) {
		success();       // boot the unsigned firmware: the attack's goal
	}
	halt();              // refuse to boot
}
`

// SecureBootSensitive lists the secure-boot globals the integrity defense
// protects.
var SecureBootSensitive = []string{"image_word"}

// WhileNotAFirmware is Table VI's worst-case scenario: the most
// single-glitch-vulnerable guard from Section V, compiled with defenses.
// The guarded variable is volatile, which the paper notes hobbles the
// redundancy defenses (the value cannot be read twice), making this a
// lower bound on their effectiveness.
const WhileNotAFirmware = `
volatile unsigned int a;

void main(void) {
	trigger();
	while (!a) { }
	success();
}
`

// IfSuccessFirmware is Table VI's best-case scenario: a guard written the
// way real firmware guards look, comparing against an uninitialized enum
// whose values the ENUM rewriter diversifies (the paper's
// "if (a == SUCCESS)" case).
const IfSuccessFirmware = `
enum result { FAILURE, SUCCESS };

volatile unsigned int a;

void main(void) {
	a = FAILURE;
	trigger();
	if (a == SUCCESS) {
		success();
	}
	halt();
}
`
