package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"glitchlab/internal/pipeline"
)

// TestDefensesPreserveBehavior generates random programs with loops,
// branches and helper functions, compiles each under every defense
// configuration, and checks they all compute the same result. This is the
// soundness property the paper's tool must have: instrumentation may cost
// cycles and bytes, but never change what the firmware computes.
func TestDefensesPreserveBehavior(t *testing.T) {
	rng := rand.New(rand.NewSource(0xD51))
	for i := 0; i < 12; i++ {
		src := genProgram(rng)
		var want uint32
		first := true
		for _, cfg := range DefenseConfigs("state") {
			res, err := Compile(src, cfg)
			if err != nil {
				t.Fatalf("program %d under %s: %v\n%s", i, cfg.Name(), err, src)
			}
			m, err := NewMachine(res.Image)
			if err != nil {
				t.Fatal(err)
			}
			r := m.Run(200_000_000)
			if r.Reason != pipeline.StopHit || r.Tag != "halt" {
				t.Fatalf("program %d under %s ended %v/%q fault=%v\n%s",
					i, cfg.Name(), r.Reason, r.Tag, r.Fault, src)
			}
			addr := res.Image.GlobalAddrs["out"]
			got, ok := m.Board.Mem.ReadWord(addr)
			if !ok {
				t.Fatal("out unreadable")
			}
			if first {
				want = got
				first = false
				continue
			}
			if got != want {
				t.Fatalf("program %d: %s computed %#x, baseline computed %#x\n%s",
					i, cfg.Name(), got, want, src)
			}
		}
	}
}

// genProgram emits a random but terminating mini-C program that folds its
// work into the global `out`.
func genProgram(rng *rand.Rand) string {
	var sb strings.Builder
	sb.WriteString("enum phase { P0, P1, P2, P3 };\n")
	sb.WriteString("unsigned int out;\n")
	sb.WriteString("unsigned int state = 3;\n")
	fmt.Fprintf(&sb, "unsigned int seed = %#x;\n", rng.Uint32())

	// A helper with constant returns (return-code hardening candidate).
	sb.WriteString(`
unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return P1; }
	if (v % 5 == 0) { return P2; }
	return P0;
}
`)
	sb.WriteString("void main(void) {\n")
	sb.WriteString("\tunsigned int acc = seed;\n")
	nStmts := 3 + rng.Intn(4)
	for s := 0; s < nStmts; s++ {
		switch rng.Intn(4) {
		case 0: // bounded for loop
			fmt.Fprintf(&sb, "\tfor (unsigned int i%d = 0; i%d < %d; i%d = i%d + 1) {\n",
				s, s, 2+rng.Intn(6), s, s)
			fmt.Fprintf(&sb, "\t\tacc = acc * %d + i%d;\n", 3+rng.Intn(11), s)
			fmt.Fprintf(&sb, "\t\tstate = state ^ acc;\n")
			sb.WriteString("\t}\n")
		case 1: // branch on the helper
			fmt.Fprintf(&sb, "\tif (classify(acc) == P1) { acc = acc + %d; } else { acc = acc ^ %#x; }\n",
				rng.Intn(100), rng.Uint32()&0xFFFF)
		case 2: // bounded while countdown
			fmt.Fprintf(&sb, "\t{ unsigned int n%d = %d;\n", s, 1+rng.Intn(9))
			fmt.Fprintf(&sb, "\twhile (n%d != 0) { acc = acc + n%d * %d; n%d = n%d - 1; } }\n",
				s, s, 1+rng.Intn(7), s, s)
		default: // mix in the sensitive global
			fmt.Fprintf(&sb, "\tstate = state + (acc >> %d);\n", rng.Intn(16))
			sb.WriteString("\tif (state == 0) { state = 1; }\n")
		}
	}
	sb.WriteString("\tout = acc ^ state;\n")
	sb.WriteString("\thalt();\n}\n")
	return sb.String()
}
