package core

import (
	"testing"

	"glitchlab/internal/analyze"
	"glitchlab/internal/passes"
)

// TestCompileAuditedEvalFirmware asserts the pipeline hook's central
// property over the evaluation firmware: under every defense
// configuration, each enabled pass removes the findings it owns.
func TestCompileAuditedEvalFirmware(t *testing.T) {
	configs := []passes.Config{
		passes.All(EvalSensitive...),
		passes.AllButDelay(EvalSensitive...),
		{EnumRewrite: true},
		{Returns: true},
		{Integrity: true, Sensitive: EvalSensitive},
		{Branches: true},
		{Loops: true},
	}
	opts := analyze.Options{Sensitive: EvalSensitive}
	for _, cfg := range configs {
		res, audit, err := CompileAudited(EvalFirmware, cfg, opts)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name(), err)
		}
		if res.Image == nil {
			t.Fatalf("%s: no image", cfg.Name())
		}
		if err := audit.Err(); err != nil {
			t.Errorf("%s: %v", cfg.Name(), err)
		}
		if len(audit.Pre.Findings) == 0 {
			t.Errorf("%s: pre-defense analysis found nothing", cfg.Name())
		}
	}
}

// TestCompileAuditedBaselineIsStable checks the pre snapshot ignores the
// configuration: it always analyzes the untouched lowering.
func TestCompileAuditedBaselineIsStable(t *testing.T) {
	opts := analyze.Options{Sensitive: EvalSensitive}
	_, none, err := CompileAudited(EvalFirmware, passes.None(), opts)
	if err != nil {
		t.Fatal(err)
	}
	_, all, err := CompileAudited(EvalFirmware, passes.All(EvalSensitive...), opts)
	if err != nil {
		t.Fatal(err)
	}
	if none.Pre.Summary() != all.Pre.Summary() {
		t.Errorf("pre snapshot depends on config:\nnone: %s\nall:  %s",
			none.Pre.Summary(), all.Pre.Summary())
	}
	// Under the empty config nothing is instrumented, so the post image
	// analysis can only add image-level findings to the pre set.
	if len(none.Post.Findings) < len(none.Pre.Findings) {
		t.Errorf("None config removed findings: pre %d, post %d",
			len(none.Pre.Findings), len(none.Post.Findings))
	}
	if err := none.Err(); err != nil {
		t.Errorf("None config owes no findings, got %v", err)
	}
}

// TestCompileAuditedLoopFailOpen documents the loop-hardening side effect
// the fail-open rule relies on: while(!a){} success() fails open until the
// exit edge re-check moves success behind a taken edge.
func TestCompileAuditedLoopFailOpen(t *testing.T) {
	_, audit, err := CompileAudited(WhileNotAFirmware, passes.None(), analyze.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if audit.Post.RuleHits()["GL003"] == 0 {
		t.Errorf("unprotected while(!a): no GL003 finding (got %s)", audit.Post.Summary())
	}

	_, audit, err = CompileAudited(WhileNotAFirmware, passes.All(), analyze.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := audit.Err(); err != nil {
		t.Fatal(err)
	}
	if n := audit.Post.RuleHits()["GL003"]; n != 0 {
		t.Errorf("defended while(!a): %d GL003 findings remain", n)
	}
}
