// Package core is glitchlab's public facade: it ties the front end, the
// defense passes and the code generator into the GlitchResistor tool
// (Compile), and provides runners that regenerate every table and figure
// of the paper's evaluation (see experiments.go and defenses.go).
package core

import (
	"fmt"
	"time"

	"glitchlab/internal/codegen"
	"glitchlab/internal/firmware"
	"glitchlab/internal/ir"
	"glitchlab/internal/minic"
	"glitchlab/internal/obs"
	"glitchlab/internal/passes"
	"glitchlab/internal/pipeline"
)

// CompileResult is a protected (or baseline) firmware build.
type CompileResult struct {
	Image  *codegen.Image
	Module *ir.Module
	Report passes.Report
	Config passes.Config
}

// stageBuckets hold per-compile-stage wall times in microseconds.
var stageBuckets = obs.ExpBuckets(10, 4, 8)

// stage runs one Compile step and records compile.<name>.duration_us.
func stage(name string, fn func() error) error {
	start := time.Now()
	err := fn()
	obs.Default.Histogram("compile."+name+".duration_us", stageBuckets).
		Observe(float64(time.Since(start).Microseconds()))
	return err
}

// Compile runs the full GlitchResistor pipeline on mini-C source: parse,
// check, rewrite enums, lower, instrument, and generate Thumb firmware.
// Each stage's duration lands in obs.Default (compile.<stage>.duration_us),
// and successful builds publish the image's segment sizes
// (compile.image.{text,data,bss,total}_bytes) plus compile.builds_total.
func Compile(src string, cfg passes.Config) (*CompileResult, error) {
	var prog *minic.Program
	if err := stage("parse", func() (err error) {
		prog, err = minic.Parse(src)
		return err
	}); err != nil {
		return nil, err
	}
	var chk *minic.Checked
	if err := stage("check", func() (err error) {
		chk, err = minic.Check(prog)
		return err
	}); err != nil {
		return nil, err
	}
	res := &CompileResult{Config: cfg}
	if cfg.EnumRewrite {
		if err := passes.RewriteEnums(chk, &res.Report); err != nil {
			return nil, err
		}
	}
	var mod *ir.Module
	if err := stage("lower", func() (err error) {
		mod, err = ir.Lower(chk)
		return err
	}); err != nil {
		return nil, err
	}
	if err := stage("instrument", func() error {
		return passes.Instrument(mod, cfg, &res.Report)
	}); err != nil {
		return nil, err
	}
	var img *codegen.Image
	if err := stage("codegen", func() (err error) {
		img, err = codegen.Build(mod, codegen.Options{Delay: cfg.Delay})
		return err
	}); err != nil {
		return nil, err
	}
	res.Image = img
	res.Module = mod
	obs.Default.Counter("compile.builds_total").Inc()
	obs.Default.Gauge("compile.image.text_bytes").Set(float64(img.Sizes.Text))
	obs.Default.Gauge("compile.image.data_bytes").Set(float64(img.Sizes.Data))
	obs.Default.Gauge("compile.image.bss_bytes").Set(float64(img.Sizes.BSS))
	obs.Default.Gauge("compile.image.total_bytes").Set(float64(img.Sizes.Total()))
	return res, nil
}

// StopSymbols are the runtime symbols experiment machines watch for.
var StopSymbols = []string{"success", "halt", passes.DetectFunc, "boot_done"}

// NewMachine loads a compiled image onto a fresh board and returns a
// machine with the standard stop symbols armed.
func NewMachine(img *codegen.Image) (*pipeline.Machine, error) {
	b, err := firmware.NewBoard()
	if err != nil {
		return nil, err
	}
	if err := b.Load(img.Prog); err != nil {
		return nil, err
	}
	m := pipeline.NewMachine(b)
	for _, s := range StopSymbols {
		if addr, ok := img.Symbol(s); ok {
			m.AddStop(addr, s)
		}
	}
	b.Reset()
	return m, nil
}

// RunClean executes a compiled image with no glitch and returns the result.
func RunClean(img *codegen.Image, maxCycles uint64) (pipeline.Result, error) {
	m, err := NewMachine(img)
	if err != nil {
		return pipeline.Result{}, err
	}
	return m.Run(maxCycles), nil
}

// Verify builds and cleanly runs a source under a configuration, checking
// it reaches the expected stop symbol — a smoke test used by examples and
// the experiment harness before glitching anything.
func Verify(src string, cfg passes.Config, wantStop string, maxCycles uint64) error {
	res, err := Compile(src, cfg)
	if err != nil {
		return err
	}
	r, err := RunClean(res.Image, maxCycles)
	if err != nil {
		return err
	}
	if r.Reason != pipeline.StopHit || r.Tag != wantStop {
		return fmt.Errorf("core: clean run ended %v/%q, want %q (fault %v)",
			r.Reason, r.Tag, wantStop, r.Fault)
	}
	return nil
}
