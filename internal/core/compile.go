// Package core is glitchlab's public facade: it ties the front end, the
// defense passes and the code generator into the GlitchResistor tool
// (Compile), and provides runners that regenerate every table and figure
// of the paper's evaluation (see experiments.go and defenses.go).
package core

import (
	"fmt"

	"glitchlab/internal/codegen"
	"glitchlab/internal/firmware"
	"glitchlab/internal/ir"
	"glitchlab/internal/minic"
	"glitchlab/internal/passes"
	"glitchlab/internal/pipeline"
)

// CompileResult is a protected (or baseline) firmware build.
type CompileResult struct {
	Image  *codegen.Image
	Module *ir.Module
	Report passes.Report
	Config passes.Config
}

// Compile runs the full GlitchResistor pipeline on mini-C source: parse,
// check, rewrite enums, lower, instrument, and generate Thumb firmware.
func Compile(src string, cfg passes.Config) (*CompileResult, error) {
	prog, err := minic.Parse(src)
	if err != nil {
		return nil, err
	}
	chk, err := minic.Check(prog)
	if err != nil {
		return nil, err
	}
	res := &CompileResult{Config: cfg}
	if cfg.EnumRewrite {
		if err := passes.RewriteEnums(chk, &res.Report); err != nil {
			return nil, err
		}
	}
	mod, err := ir.Lower(chk)
	if err != nil {
		return nil, err
	}
	if err := passes.Instrument(mod, cfg, &res.Report); err != nil {
		return nil, err
	}
	img, err := codegen.Build(mod, codegen.Options{Delay: cfg.Delay})
	if err != nil {
		return nil, err
	}
	res.Image = img
	res.Module = mod
	return res, nil
}

// StopSymbols are the runtime symbols experiment machines watch for.
var StopSymbols = []string{"success", "halt", passes.DetectFunc, "boot_done"}

// NewMachine loads a compiled image onto a fresh board and returns a
// machine with the standard stop symbols armed.
func NewMachine(img *codegen.Image) (*pipeline.Machine, error) {
	b, err := firmware.NewBoard()
	if err != nil {
		return nil, err
	}
	if err := b.Load(img.Prog); err != nil {
		return nil, err
	}
	m := pipeline.NewMachine(b)
	for _, s := range StopSymbols {
		if addr, ok := img.Symbol(s); ok {
			m.AddStop(addr, s)
		}
	}
	b.Reset()
	return m, nil
}

// RunClean executes a compiled image with no glitch and returns the result.
func RunClean(img *codegen.Image, maxCycles uint64) (pipeline.Result, error) {
	m, err := NewMachine(img)
	if err != nil {
		return pipeline.Result{}, err
	}
	return m.Run(maxCycles), nil
}

// Verify builds and cleanly runs a source under a configuration, checking
// it reaches the expected stop symbol — a smoke test used by examples and
// the experiment harness before glitching anything.
func Verify(src string, cfg passes.Config, wantStop string, maxCycles uint64) error {
	res, err := Compile(src, cfg)
	if err != nil {
		return err
	}
	r, err := RunClean(res.Image, maxCycles)
	if err != nil {
		return err
	}
	if r.Reason != pipeline.StopHit || r.Tag != wantStop {
		return fmt.Errorf("core: clean run ended %v/%q, want %q (fault %v)",
			r.Reason, r.Tag, wantStop, r.Fault)
	}
	return nil
}
