package core

import (
	"errors"
	"fmt"
	"strings"

	"glitchlab/internal/codegen"
	"glitchlab/internal/firmware"
	"glitchlab/internal/glitcher"
	"glitchlab/internal/isa"
	"glitchlab/internal/passes"
	"glitchlab/internal/pipeline"
	"glitchlab/internal/runctl"
)

// DefenseConfigs returns the evaluation's defense matrix in the paper's
// table order: None, Branches, Delay, Integrity, Loops, Returns,
// All\Delay, All.
func DefenseConfigs(sensitive ...string) []passes.Config {
	return []passes.Config{
		passes.None(),
		{Branches: true},
		{Delay: true},
		{Integrity: true, Sensitive: sensitive},
		{Loops: true},
		{Returns: true},
		passes.AllButDelay(sensitive...),
		passes.All(sensitive...),
	}
}

// BootRow is one Table IV row: boot-time overhead for a defense set.
type BootRow struct {
	Name     string
	Cycles   uint64 // reset to boot_done
	Constant uint64 // one-time flash-update cost included in Cycles
}

// Table4Result reproduces Table IV.
type Table4Result struct {
	Rows []BootRow
}

// Baseline returns the unprotected boot cycles.
func (t *Table4Result) Baseline() uint64 {
	for _, r := range t.Rows {
		if r.Name == "None" {
			return r.Cycles
		}
	}
	return 0
}

// Increase returns a row's raw percentage increase over the baseline.
func (t *Table4Result) Increase(r BootRow) float64 {
	base := t.Baseline()
	if base == 0 {
		return 0
	}
	return 100 * (float64(r.Cycles) - float64(base)) / float64(base)
}

// Adjusted returns the percentage increase with the one-time flash
// constant removed, as the paper's "% Adjusted" column does.
func (t *Table4Result) Adjusted(r BootRow) float64 {
	base := t.Baseline()
	if base == 0 {
		return 0
	}
	return 100 * (float64(r.Cycles) - float64(r.Constant) - float64(base)) /
		float64(base)
}

// RunTable4 measures the boot-time overhead of every defense set against
// the evaluation firmware (paper Table IV).
func RunTable4() (*Table4Result, error) {
	res := &Table4Result{}
	for _, cfg := range DefenseConfigs(EvalSensitive...) {
		cr, err := Compile(EvalFirmware, cfg)
		if err != nil {
			return nil, fmt.Errorf("core: table4 %s: %w", cfg.Name(), err)
		}
		m, err := NewMachine(cr.Image)
		if err != nil {
			return nil, err
		}
		r := m.Run(50_000_000)
		if r.Reason != pipeline.StopHit || r.Tag != "boot_done" {
			return nil, fmt.Errorf("core: table4 %s boot ended %v/%q fault=%v",
				cfg.Name(), r.Reason, r.Tag, r.Fault)
		}
		res.Rows = append(res.Rows, BootRow{
			Name:     cfg.Name(),
			Cycles:   r.Cycles,
			Constant: uint64(m.Board.FlashWrites) * firmware.FlashWriteCycles,
		})
	}
	return res, nil
}

// SizeRow is one Table V row.
type SizeRow struct {
	Name  string
	Sizes codegen.Sizes
}

// Table5Result reproduces Table V.
type Table5Result struct {
	Rows []SizeRow
}

// Baseline returns the unprotected sizes.
func (t *Table5Result) Baseline() codegen.Sizes {
	for _, r := range t.Rows {
		if r.Name == "None" {
			return r.Sizes
		}
	}
	return codegen.Sizes{}
}

// RunTable5 measures the size overhead of every defense set (paper
// Table V).
func RunTable5() (*Table5Result, error) {
	res := &Table5Result{}
	for _, cfg := range DefenseConfigs(EvalSensitive...) {
		cr, err := Compile(EvalFirmware, cfg)
		if err != nil {
			return nil, fmt.Errorf("core: table5 %s: %w", cfg.Name(), err)
		}
		res.Rows = append(res.Rows, SizeRow{Name: cfg.Name(), Sizes: cr.Image.Sizes})
	}
	return res, nil
}

// Attack identifies one of Table VI's three attack shapes.
type Attack uint8

// Table VI attacks.
const (
	AttackSingle   Attack = iota + 1 // one glitched cycle, position swept 0-10
	AttackLong                       // cycles 0..N, N swept 10-100 by 10
	AttackWindowed                   // 10-cycle window, start swept 0-10
)

// String names the attack as the evaluation prints it.
func (a Attack) String() string {
	switch a {
	case AttackSingle:
		return "Single"
	case AttackLong:
		return "Long"
	case AttackWindowed:
		return "10 Cycles"
	}
	return fmt.Sprintf("attack%d", uint8(a))
}

// Attacks lists Table VI's attacks in order.
func Attacks() []Attack { return []Attack{AttackSingle, AttackLong, AttackWindowed} }

// Table6Cell is one attack's outcome against one scenario/defense build.
type Table6Cell struct {
	Total      uint64
	Successes  uint64
	Detections uint64
}

// SuccessRate returns successes/total.
func (c Table6Cell) SuccessRate() float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.Successes) / float64(c.Total)
}

// DetectionRate returns detections/(detections+successes), the paper's
// detection metric: of the glitches that did something, how many were
// caught.
func (c Table6Cell) DetectionRate() float64 {
	den := c.Detections + c.Successes
	if den == 0 {
		return 0
	}
	return float64(c.Detections) / float64(den)
}

// Scenario is a Table VI target program.
type Scenario struct {
	Name      string
	Source    string
	Sensitive []string
}

// Table6Scenarios returns the two scenarios of the paper's Table VI.
func Table6Scenarios() []Scenario {
	return []Scenario{
		{Name: "while(!a)", Source: WhileNotAFirmware},
		{Name: "if(a==SUCCESS)", Source: IfSuccessFirmware},
	}
}

// table6Settle is how long after the glitch window a run may continue
// before being classified as unaffected (still looping). Instrumented loop
// iterations are at most a few hundred cycles, so a few thousand cycles of
// settle suffice for any success or detection path to land on its symbol.
const table6Settle = 6_000

// RunTable6Cell scans one (scenario, defense, attack) cell over the full
// parameter grid. rn, when non-nil, is polled for cancellation every
// spansCheckEvery grid points and between spans; an interrupted cell
// returns its partial counts with an error wrapping runctl.ErrInterrupted
// (the caller does not checkpoint partial cells).
func RunTable6Cell(model *glitcher.Model, sc Scenario, cfg passes.Config,
	attack Attack, rn *runctl.Run) (Table6Cell, error) {
	cr, err := Compile(sc.Source, cfg)
	if err != nil {
		return Table6Cell{}, fmt.Errorf("core: table6 %s/%s: %w",
			sc.Name, cfg.Name(), err)
	}
	m, err := NewMachine(cr.Image)
	if err != nil {
		return Table6Cell{}, err
	}
	// Measure the trigger's boot offset and the guard's span once. The
	// paper sweeps 11 glitch positions over its 8-10 cycle guard; our
	// unoptimized code generator dilates a defended guard iteration to
	// tens of cycles, so the equivalent-intent sweep places the same 11
	// positions uniformly across one guard iteration (see EXPERIMENTS.md
	// for this substitution's rationale).
	bootCycles, guardSpan, err := measureGuard(m, cr.Image)
	if err != nil {
		return Table6Cell{}, fmt.Errorf("core: table6 %s/%s: %w",
			sc.Name, cfg.Name(), err)
	}

	type span struct{ from, to int }
	var spans []span
	positions := samplePositions(guardSpan)
	switch attack {
	case AttackSingle:
		for _, c := range positions {
			spans = append(spans, span{c, c + 1})
		}
	case AttackLong:
		for n := 10; n <= 100; n += 10 {
			spans = append(spans, span{0, n})
		}
	case AttackWindowed:
		for _, s := range positions {
			spans = append(spans, span{s, s + 10})
		}
	}

	var cell Table6Cell
	for _, sp := range spans {
		if err := rn.Err(); err != nil {
			return cell, err
		}
		aborted := false
		sinceCheck := 0
		glitcher.GridUntil(func(p glitcher.Params) bool {
			if sinceCheck++; sinceCheck >= spansCheckEvery {
				sinceCheck = 0
				if rn.Err() != nil {
					aborted = true
					return false
				}
			}
			cell.Total++
			// Deterministic fast path: a parameter point that delivers
			// no event anywhere in the window cannot change the run.
			any := false
			for rel := sp.from; rel < sp.to && !any; rel++ {
				_, any = model.EventInContext(p, rel, 0, rel-sp.from)
			}
			if !any {
				return true
			}
			m.Board.Reset()
			m.Glitch = model.RangePlan(p, sp.from, sp.to)
			r := m.Run(bootCycles + uint64(sp.to) + table6Settle)
			switch {
			case r.Reason == pipeline.StopHit && r.Tag == "success":
				cell.Successes++
			case r.Reason == pipeline.StopHit && r.Tag == passes.DetectFunc:
				cell.Detections++
			}
			return true
		})
		if aborted {
			return cell, rn.Err()
		}
	}
	return cell, nil
}

// spansCheckEvery is how many grid points a Table VI span scans between
// cancellation polls — frequent enough that a deadline or SIGINT lands
// within milliseconds, rare enough to stay out of the hot path.
const spansCheckEvery = 128

// samplePositions spreads the paper's 11 glitch positions uniformly over
// one guard span.
func samplePositions(span int) []int {
	if span < 11 {
		span = 11
	}
	out := make([]int, 0, 11)
	for i := 0; i <= 10; i++ {
		out = append(out, i*(span-1)/10)
	}
	return out
}

// measureGuard runs the firmware clean and reports the trigger's boot
// offset plus the guard's cycle span: for looping guards, one loop
// iteration; for straight-line guards, the trigger-to-halt distance.
func measureGuard(m *pipeline.Machine, img *codegen.Image) (boot uint64, span int, err error) {
	// Find the first loop-header block of main, if any.
	var loopAddr uint32
	for name, addr := range img.Prog.Symbols {
		if strings.HasPrefix(name, "f_main_loop") {
			if loopAddr == 0 || addr < loopAddr {
				loopAddr = addr
			}
		}
	}
	var visits []uint64
	cpu := m.Board.CPU
	prevExec := cpu.Hooks.OnExec
	cpu.Hooks.OnExec = func(addr uint32, in isa.Inst) {
		if addr == loopAddr && len(visits) < 3 {
			visits = append(visits, cpu.Cycles)
		}
	}
	m.Board.Reset()
	m.Glitch = nil
	r := m.Run(firmware.FlashWriteCycles + 80_000)
	cpu.Hooks.OnExec = prevExec
	if m.Board.TriggerCount == 0 {
		return 0, 0, fmt.Errorf("firmware never triggers")
	}
	boot = m.Board.TriggerCycle
	switch {
	case len(visits) >= 3:
		// Steady-state loop period (skip the first, partial interval).
		span = int(visits[2] - visits[1])
	case r.Reason == pipeline.StopHit:
		span = int(r.Cycles - boot)
	default:
		return 0, 0, fmt.Errorf("cannot determine guard span")
	}
	if span < 1 {
		span = 1
	}
	return boot, span, nil
}

// Table6Result holds the full defense-efficacy matrix.
type Table6Result struct {
	// Cells[scenario][config][attack].
	Cells map[string]map[string]map[Attack]Table6Cell
}

// Table6Configs returns the two defense sets Table VI evaluates.
func Table6Configs(sensitive ...string) []passes.Config {
	return []passes.Config{passes.All(sensitive...), passes.AllButDelay(sensitive...)}
}

// RunTable6 runs the complete Table VI evaluation. This is the heaviest
// experiment (about 1.25 million glitch attempts); progress can be
// observed per cell via the optional callback. rn, when non-nil, threads
// the run controller through the matrix: each (scenario, defense, attack)
// cell is a checkpointed work unit, skipped on resume and quarantined on
// panic; an interrupted run returns the cells completed so far with an
// error wrapping runctl.ErrInterrupted.
func RunTable6(model *glitcher.Model, progress func(sc, cfg string, a Attack,
	cell Table6Cell), rn *runctl.Run) (*Table6Result, error) {
	res := &Table6Result{Cells: map[string]map[string]map[Attack]Table6Cell{}}
	for _, sc := range Table6Scenarios() {
		res.Cells[sc.Name] = map[string]map[Attack]Table6Cell{}
		for _, cfg := range Table6Configs(sc.Sensitive...) {
			res.Cells[sc.Name][cfg.Name()] = map[Attack]Table6Cell{}
			for _, attack := range Attacks() {
				if err := rn.Err(); err != nil {
					return res, err
				}
				key := fmt.Sprintf("table6 scenario=%s config=%s attack=%s",
					sc.Name, cfg.Name(), attack)
				var cell Table6Cell
				if !rn.Lookup(key, &cell) {
					err := rn.Protect(key, func() error {
						c, err := RunTable6Cell(model, sc, cfg, attack, rn)
						if err != nil {
							return err
						}
						if err := rn.Complete(key, c); err != nil {
							return err
						}
						cell = c
						return nil
					})
					if err != nil {
						var pe *runctl.PanicError
						if errors.As(err, &pe) {
							// Quarantined: the cell stays absent from the
							// matrix; FinishErr names it below.
							continue
						}
						if errors.Is(err, runctl.ErrInterrupted) {
							return res, err
						}
						return nil, err
					}
				}
				res.Cells[sc.Name][cfg.Name()][attack] = cell
				if progress != nil {
					progress(sc.Name, cfg.Name(), attack, cell)
				}
			}
		}
	}
	return res, rn.FinishErr()
}
