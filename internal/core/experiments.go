package core

import (
	"glitchlab/internal/campaign"
	"glitchlab/internal/glitcher"
	"glitchlab/internal/mutate"
	"glitchlab/internal/search"
)

// DefaultSeed is the fault-model seed all published tables use, so every
// number in EXPERIMENTS.md is exactly reproducible.
const DefaultSeed = 1

// RunFigure2 executes one Figure 2 emulation campaign variant. o, when
// non-nil, instruments every execution (pass nil for a bare run). workers
// shards the campaign across goroutines; <= 1 runs serially, and the
// results are identical either way.
func RunFigure2(model mutate.Model, zeroInvalid bool, maxFlips, workers int, o *campaign.Observer) ([]campaign.CondResult, error) {
	return campaign.Run(campaign.Config{
		Model:       model,
		ZeroInvalid: zeroInvalid,
		MaxFlips:    maxFlips,
		Workers:     workers,
		Obs:         o,
	})
}

// RunUDFHardening executes the Section IV extension experiment: the same
// mutation campaign against snippets whose unreachable slots are filled
// with permanently-undefined instructions, testing the paper's hypothesis
// that "adding invalid instructions in between valid instructions would
// likely thwart many glitching attempts".
func RunUDFHardening(model mutate.Model, maxFlips, workers int, o *campaign.Observer) ([]campaign.CondResult, error) {
	return campaign.Run(campaign.Config{
		Model:    model,
		PadUDF:   true,
		MaxFlips: maxFlips,
		Workers:  workers,
		Obs:      o,
	})
}

// RunTable1 executes the single-glitch scans for all three guards against
// the given fault model (attach Model.Obs beforehand to instrument them),
// sharding each scan across workers goroutines (<= 1 for serial).
func RunTable1(m *glitcher.Model, workers int) ([]*glitcher.Table1Result, error) {
	var out []*glitcher.Table1Result
	for _, g := range glitcher.Guards() {
		r, err := m.RunTable1Workers(g, workers)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// RunTable2 executes the multi-glitch scans for all three guards.
func RunTable2(m *glitcher.Model, workers int) ([]*glitcher.Table2Result, error) {
	var out []*glitcher.Table2Result
	for _, g := range glitcher.Guards() {
		r, err := m.RunTable2Workers(g, workers)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// RunTable3 executes the long-glitch scans for all three guards.
func RunTable3(m *glitcher.Model, workers int) ([]*glitcher.Table3Result, error) {
	var out []*glitcher.Table3Result
	for _, g := range glitcher.Guards() {
		r, err := m.RunTable3Workers(g, workers)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// RunSearch executes the Section V-B optimal-parameter search against the
// two guards the paper tuned (while(a) and the large-Hamming-distance
// comparison).
func RunSearch(m *glitcher.Model) ([]*search.Result, error) {
	var out []*search.Result
	for _, g := range []glitcher.Guard{glitcher.GuardWhileA, glitcher.GuardWhileNeq} {
		s, err := search.New(m, g)
		if err != nil {
			return nil, err
		}
		out = append(out, s.Find())
	}
	return out, nil
}
