package core

import (
	"errors"

	"glitchlab/internal/campaign"
	"glitchlab/internal/glitcher"
	"glitchlab/internal/mutate"
	"glitchlab/internal/obs/profile"
	"glitchlab/internal/runctl"
	"glitchlab/internal/search"
)

// DefaultSeed is the fault-model seed all published tables use, so every
// number in EXPERIMENTS.md is exactly reproducible.
const DefaultSeed = 1

// RunFigure2 executes one Figure 2 emulation campaign variant. o, when
// non-nil, instruments every execution (pass nil for a bare run). prof,
// when non-nil, samples phase attribution for the campaign's hot path
// (several variants may share one profile; their wall-clock brackets
// sum). workers shards the campaign across goroutines; <= 1 runs
// serially, and the results are identical either way. fullRun disables
// trigger-point snapshot replay, re-simulating the harness prologue on
// every mutated execution — results are byte-identical either way (the
// ci.sh replay gate cmp-proves it on rendered output). rn, when non-nil,
// threads the run controller through the campaign: cancellation between
// work units, per-unit checkpointing with resume, and panic quarantine.
func RunFigure2(model mutate.Model, zeroInvalid bool, maxFlips, workers int, fullRun bool, o *campaign.Observer, prof *profile.Profile, rn *runctl.Run) ([]campaign.CondResult, error) {
	return campaign.Run(campaign.Config{
		Model:       model,
		ZeroInvalid: zeroInvalid,
		MaxFlips:    maxFlips,
		FullRun:     fullRun,
		Workers:     workers,
		Obs:         o,
		Profile:     prof,
		Run:         rn,
	})
}

// RunUDFHardening executes the Section IV extension experiment: the same
// mutation campaign against snippets whose unreachable slots are filled
// with permanently-undefined instructions, testing the paper's hypothesis
// that "adding invalid instructions in between valid instructions would
// likely thwart many glitching attempts".
func RunUDFHardening(model mutate.Model, maxFlips, workers int, fullRun bool, o *campaign.Observer, prof *profile.Profile, rn *runctl.Run) ([]campaign.CondResult, error) {
	return campaign.Run(campaign.Config{
		Model:    model,
		PadUDF:   true,
		MaxFlips: maxFlips,
		FullRun:  fullRun,
		Workers:  workers,
		Obs:      o,
		Profile:  prof,
		Run:      rn,
	})
}

// RunTable1 executes the single-glitch scans for all three guards against
// the given fault model (attach Model.Obs beforehand to instrument them),
// sharding each scan across workers goroutines (<= 1 for serial). With rn
// set, an interrupted run returns the tables completed so far (the partial
// table for the guard in flight is dropped; its rows live on in the
// checkpoint) plus an error wrapping runctl.ErrInterrupted, and a run with
// quarantined rows returns all tables plus a *runctl.QuarantineError.
func RunTable1(m *glitcher.Model, workers int, rn *runctl.Run) ([]*glitcher.Table1Result, error) {
	var out []*glitcher.Table1Result
	for _, g := range glitcher.Guards() {
		r, err := m.RunTable1Workers(g, workers, rn)
		if err != nil {
			if errors.Is(err, runctl.ErrInterrupted) {
				return out, err
			}
			return nil, err
		}
		out = append(out, r)
	}
	return out, rn.FinishErr()
}

// RunTable2 executes the multi-glitch scans for all three guards.
func RunTable2(m *glitcher.Model, workers int, rn *runctl.Run) ([]*glitcher.Table2Result, error) {
	var out []*glitcher.Table2Result
	for _, g := range glitcher.Guards() {
		r, err := m.RunTable2Workers(g, workers, rn)
		if err != nil {
			if errors.Is(err, runctl.ErrInterrupted) {
				return out, err
			}
			return nil, err
		}
		out = append(out, r)
	}
	return out, rn.FinishErr()
}

// RunTable3 executes the long-glitch scans for all three guards.
func RunTable3(m *glitcher.Model, workers int, rn *runctl.Run) ([]*glitcher.Table3Result, error) {
	var out []*glitcher.Table3Result
	for _, g := range glitcher.Guards() {
		r, err := m.RunTable3Workers(g, workers, rn)
		if err != nil {
			if errors.Is(err, runctl.ErrInterrupted) {
				return out, err
			}
			return nil, err
		}
		out = append(out, r)
	}
	return out, rn.FinishErr()
}

// RunSearch executes the Section V-B optimal-parameter search against the
// two guards the paper tuned (while(a) and the large-Hamming-distance
// comparison). rn adds cancellation between and inside the searches.
func RunSearch(m *glitcher.Model, rn *runctl.Run) ([]*search.Result, error) {
	var out []*search.Result
	for _, g := range []glitcher.Guard{glitcher.GuardWhileA, glitcher.GuardWhileNeq} {
		s, err := search.New(m, g)
		if err != nil {
			return nil, err
		}
		res, err := s.FindRun(rn)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}
