package report

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"glitchlab/internal/core"
	"glitchlab/internal/glitcher"
	"glitchlab/internal/mutate"
	"glitchlab/internal/runctl"
)

// killAfterUnits opens a fresh checkpoint in dir whose context is
// cancelled once n work units have completed.
func killAfterUnits(t *testing.T, dir string, m runctl.Manifest, n int64) *runctl.Run {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	rn, err := runctl.Open(ctx, dir, m, false)
	if err != nil {
		t.Fatal(err)
	}
	var done atomic.Int64
	rn.Hooks.AfterUnit = func(string) {
		if done.Add(1) == n {
			cancel()
		}
	}
	return rn
}

// TestFigure2ReportByteIdenticalAfterResume renders the Figure 2 report
// from a killed-then-resumed campaign and requires it to be byte-identical
// to the report of an uninterrupted serial run.
func TestFigure2ReportByteIdenticalAfterResume(t *testing.T) {
	const maxFlips = 3
	baseline, err := core.RunFigure2(mutate.AND, false, maxFlips, 1, false, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := Figure2(baseline, mutate.AND, false)

	dir := t.TempDir()
	manifest := runctl.Manifest{Tool: "report-test", ConfigHash: "sha256:f2", Seed: 0}
	rn := killAfterUnits(t, dir, manifest, 9)
	_, runErr := core.RunFigure2(mutate.AND, false, maxFlips, 3, false, nil, nil, rn)
	if err := rn.Close(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(runErr, runctl.ErrInterrupted) {
		t.Fatalf("killed campaign returned %v, want ErrInterrupted", runErr)
	}

	rn2, err := runctl.Open(context.Background(), dir, manifest, true)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := core.RunFigure2(mutate.AND, false, maxFlips, 2, false, nil, nil, rn2)
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if err := rn2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := Figure2(resumed, mutate.AND, false); got != want {
		t.Fatal("Figure 2 report from resumed campaign is not byte-identical to the uninterrupted run")
	}
}

// TestTable2ReportByteIdenticalAfterResume does the same for a Table II
// scan: kill a sharded scan mid-grid, resume, and require the rendered
// table to match the uninterrupted serial scan byte for byte.
func TestTable2ReportByteIdenticalAfterResume(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid scan")
	}
	m := glitcher.NewModel(7)
	serial, err := m.RunTable2(glitcher.GuardWhileA)
	if err != nil {
		t.Fatal(err)
	}
	want := Table2([]*glitcher.Table2Result{serial})

	dir := t.TempDir()
	manifest := runctl.Manifest{Tool: "report-test", ConfigHash: "sha256:t2", Seed: 7}
	rn := killAfterUnits(t, dir, manifest, 25)
	_, runErr := m.RunTable2Workers(glitcher.GuardWhileA, 4, rn)
	if err := rn.Close(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(runErr, runctl.ErrInterrupted) {
		t.Fatalf("killed scan returned %v, want ErrInterrupted", runErr)
	}

	rn2, err := runctl.Open(context.Background(), dir, manifest, true)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := m.RunTable2Workers(glitcher.GuardWhileA, 2, rn2)
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if err := rn2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := Table2([]*glitcher.Table2Result{resumed}); got != want {
		t.Fatal("Table II report from resumed scan is not byte-identical to the uninterrupted run")
	}
}
