package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"glitchlab/internal/analyze/corpus"
)

// fixedCorpusReport is a hand-built fleet report exercising every renderer
// branch: healthy units, a failed build, and an audit violation. The
// renderer reads unit summaries and totals only, so the raw builds stay
// empty here.
func fixedCorpusReport() *corpus.Report {
	rep := &corpus.Report{
		Stamp: "deadbeefdeadbeefdeadbeefdeadbeef",
		Units: []corpus.UnitReport{
			{
				Path: "unit_000.c", Hash: strings.Repeat("0a", 32),
				Summary: corpus.UnitSummary{Builds: 2, Findings: 4},
			},
			{
				Path: "unit_001.c", Hash: strings.Repeat("0b", 32),
				Summary: corpus.UnitSummary{
					Builds: 2, FailedBuilds: 1, Findings: 2, Unremoved: 2,
					Issues: []corpus.BuildIssue{
						{Config: "none", Error: "parse: unexpected token"},
						{Config: "all", Unremoved: 2},
					},
				},
			},
		},
	}
	rep.Totals = corpus.Totals{
		Units: 2, Builds: 4, FailedBuilds: 1, Findings: 6, Unremoved: 2,
		ByRule:     map[string]int{"GL001": 2, "GL002": 1, "GL004": 1, "GL007": 2},
		BySeverity: map[string]int{"high": 2, "medium": 4},
	}
	return rep
}

func TestCorpusGolden(t *testing.T) {
	got := Corpus(fixedCorpusReport())
	path := filepath.Join("testdata", "corpus.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("corpus table drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s\n(run with -update to regenerate)",
			got, want)
	}
}

func TestCorpusAllClean(t *testing.T) {
	rep := &corpus.Report{Totals: corpus.Totals{Units: 3, Builds: 24}}
	out := Corpus(rep)
	for _, want := range []string{
		"3 units × 8 configs = 24 builds, 0 findings",
		"every enabled defense pass removed the findings it owns",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("clean corpus report missing %q:\n%s", want, out)
		}
	}
}
