// Package report renders every reproduced table and figure in a layout
// mirroring the paper's, so reproduction output can be compared against
// the published numbers side by side. It also carries the paper's static
// Table VII comparison of software-based defenses.
package report

import (
	"fmt"
	"sort"
	"strings"

	"glitchlab/internal/campaign"
	"glitchlab/internal/core"
	"glitchlab/internal/glitcher"
	"glitchlab/internal/mutate"
	"glitchlab/internal/search"
)

// Figure2 renders one emulation campaign (one sub-figure of Figure 2):
// per-branch success rates and the failure histogram, as a function of the
// number of 1s in the bitmask (the paper's x-axis convention: for AND,
// 0xFFFF is unmodified; for OR and XOR, 0x0000 is).
func Figure2(results []campaign.CondResult, model mutate.Model, zeroInvalid bool) string {
	var sb strings.Builder
	title := fmt.Sprintf("Figure 2: glitch success on ARM Thumb, %s model", model)
	if zeroInvalid {
		title += " (0x0000 invalid)"
	}
	fmt.Fprintf(&sb, "%s\n%s\n", title, strings.Repeat("=", len(title)))

	fmt.Fprintf(&sb, "\nPer-branch success rate over all bit flips (k >= 1):\n")
	sorted := append([]campaign.CondResult(nil), results...)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].SuccessRate() > sorted[j].SuccessRate()
	})
	for _, r := range sorted {
		fmt.Fprintf(&sb, "  b%-3s %6.2f%%  %s\n", r.Cond, 100*r.SuccessRate(),
			bar(r.SuccessRate(), 40))
	}

	fmt.Fprintf(&sb, "\nSuccess rate by number of 1s in the bitmask (mean over branches):\n")
	fmt.Fprintf(&sb, "  %-6s %-9s %s\n", "ones", "success", "")
	maxFlips := len(results[0].ByFlips) - 1
	for k := 0; k <= maxFlips; k++ {
		var succ, total uint64
		for _, r := range results {
			succ += r.ByFlips[k].Counts[campaign.Success]
			total += r.ByFlips[k].Total
		}
		rate := 0.0
		if total > 0 {
			rate = float64(succ) / float64(total)
		}
		ones := k
		if model == mutate.AND {
			ones = 16 - k // AND masks: 1s preserve, 0s flip
		}
		label := fmt.Sprintf("%d", ones)
		if k == 0 {
			label += " (unmodified)"
		}
		fmt.Fprintf(&sb, "  %-16s %6.2f%%  %s\n", label, 100*rate, bar(rate, 40))
	}

	fmt.Fprintf(&sb, "\nOutcome histogram (all branches, k >= 1):\n")
	var totals [campaign.NumOutcomes]uint64
	var grand uint64
	for _, r := range results {
		for k := 1; k < len(r.ByFlips); k++ {
			for o, n := range r.ByFlips[k].Counts {
				totals[o] += n
				grand += n
			}
		}
	}
	for o := 0; o < campaign.NumOutcomes; o++ {
		rate := float64(totals[o]) / float64(grand)
		fmt.Fprintf(&sb, "  %-20s %8d (%5.2f%%)  %s\n",
			campaign.Outcome(o), totals[o], 100*rate, bar(rate, 40))
	}
	return sb.String()
}

// bar renders a proportional ASCII bar.
func bar(frac float64, width int) string {
	n := int(frac*float64(width) + 0.5)
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// Table1 renders one guard's single-glitch scan like the paper's Table I:
// per-cycle instruction attribution, successes, and the post-mortem
// comparator-register histogram.
func Table1(r *glitcher.Table1Result) string {
	var sb strings.Builder
	reg := fmt.Sprintf("R%d", r.Guard.ComparatorReg())
	fmt.Fprintf(&sb, "Table I: %s — successful glitches per clock cycle\n", r.Guard)
	fmt.Fprintf(&sb, "%-6s %-22s %-10s %-12s %s\n",
		"Cycle", "Instruction", "Successes", reg, "Count")
	for _, c := range r.PerCycle {
		first := true
		vals := c.SortedValues()
		if len(vals) == 0 {
			fmt.Fprintf(&sb, "%-6d %-22s %-10d %-12s %s\n",
				c.Cycle, c.Instruction, c.Successes, "-", "-")
			continue
		}
		for _, v := range vals {
			if first {
				fmt.Fprintf(&sb, "%-6d %-22s %-10d %#-12x %d\n",
					c.Cycle, c.Instruction, c.Successes, v, c.Values[v])
				first = false
			} else {
				fmt.Fprintf(&sb, "%-6s %-22s %-10s %#-12x %d\n",
					"", "", "", v, c.Values[v])
			}
		}
	}
	fmt.Fprintf(&sb, "Total  %d/%d (%.3f%%), %d unique values\n",
		r.Successes, r.Attempts, 100*r.SuccessRate(), r.UniqueValues())
	kinds := r.KindBreakdown()
	if len(kinds) > 0 {
		names := make([]string, 0, len(kinds))
		for k := range kinds {
			names = append(names, fmt.Sprintf("%v=%d", k, kinds[k]))
		}
		sort.Strings(names)
		fmt.Fprintf(&sb, "Mechanism: %s\n", strings.Join(names, " "))
	}
	return sb.String()
}

// Table2 renders the multi-glitch results like the paper's Table II.
func Table2(results []*glitcher.Table2Result) string {
	var sb strings.Builder
	sb.WriteString("Table II: successful partial and multi-glitch attacks\n")
	fmt.Fprintf(&sb, "%-6s", "Cycle")
	for _, r := range results {
		fmt.Fprintf(&sb, " | %-22s", r.Guard)
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "%-6s", "")
	for range results {
		fmt.Fprintf(&sb, " | %-10s %-11s", "Partial", "Full")
	}
	sb.WriteString("\n")
	for c := 0; c < glitcher.LoopCycles; c++ {
		fmt.Fprintf(&sb, "%-6d", c)
		for _, r := range results {
			fmt.Fprintf(&sb, " | %-10d %-11d", r.Partial[c], r.Full[c])
		}
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "%-6s", "Total")
	for _, r := range results {
		p, f := r.Totals()
		fmt.Fprintf(&sb, " | %-10d %-11d", p, f)
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "%-6s", "(%)")
	for _, r := range results {
		p, f := r.Totals()
		fmt.Fprintf(&sb, " | %-10.4f %-11.4f",
			100*float64(p)/float64(r.Attempts), 100*float64(f)/float64(r.Attempts))
	}
	sb.WriteString("\n")
	return sb.String()
}

// Table3 renders the long-glitch results like the paper's Table III.
func Table3(results []*glitcher.Table3Result) string {
	var sb strings.Builder
	sb.WriteString("Table III: successful long glitches\n")
	fmt.Fprintf(&sb, "%-8s", "Cycles")
	for _, r := range results {
		fmt.Fprintf(&sb, " %22s", r.Guard.String())
	}
	sb.WriteString("\n")
	for i := range results[0].Cycles {
		fmt.Fprintf(&sb, "0-%-6d", results[0].Cycles[i])
		for _, r := range results {
			fmt.Fprintf(&sb, " %22d", r.Successes[i])
		}
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "%-8s", "Total")
	for _, r := range results {
		fmt.Fprintf(&sb, " %22d", r.Total())
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "%-8s", "(%)")
	for _, r := range results {
		fmt.Fprintf(&sb, " %21.4f%%", 100*float64(r.Total())/float64(r.Attempts))
	}
	sb.WriteString("\n")
	return sb.String()
}

// Search renders a Section V-B parameter-search outcome.
func Search(r *search.Result) string {
	return "Section V-B optimal-parameter search\n" + r.String() + "\n"
}

// Table4 renders the boot-time overhead like the paper's Table IV.
func Table4(t *core.Table4Result) string {
	var sb strings.Builder
	sb.WriteString("Table IV: boot-time overhead (clock cycles)\n")
	fmt.Fprintf(&sb, "%-10s %12s %12s %10s %12s\n",
		"Defense", "Cycles", "% Increase", "Constant", "% Adjusted")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-10s %12d %11.2f%% %10d %11.2f%%\n",
			r.Name, r.Cycles, t.Increase(r), r.Constant, t.Adjusted(r))
	}
	return sb.String()
}

// Table5 renders the size overhead like the paper's Table V.
func Table5(t *core.Table5Result) string {
	var sb strings.Builder
	base := t.Baseline()
	pct := func(v, b int) float64 {
		if b == 0 {
			return 0
		}
		return 100 * float64(v-b) / float64(b)
	}
	sb.WriteString("Table V: size overhead (bytes)\n")
	fmt.Fprintf(&sb, "%-10s %7s %9s %6s %9s %6s %9s %7s %9s\n",
		"Defense", "text", "text(%)", "data", "data(%)", "bss", "bss(%)",
		"total", "total(%)")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-10s %7d %8.2f%% %6d %8.2f%% %6d %8.2f%% %7d %8.2f%%\n",
			r.Name,
			r.Sizes.Text, pct(r.Sizes.Text, base.Text),
			r.Sizes.Data, pct(r.Sizes.Data, base.Data),
			r.Sizes.BSS, pct(r.Sizes.BSS, base.BSS),
			r.Sizes.Total(), pct(r.Sizes.Total(), base.Total()))
	}
	return sb.String()
}

// Table6 renders the defense-efficacy matrix like the paper's Table VI.
func Table6(t *core.Table6Result) string {
	var sb strings.Builder
	sb.WriteString("Table VI: successful glitches and detections with GlitchResistor defenses\n")
	for _, sc := range core.Table6Scenarios() {
		byCfg, ok := t.Cells[sc.Name]
		if !ok {
			continue
		}
		fmt.Fprintf(&sb, "\n%s\n", sc.Name)
		for _, attack := range core.Attacks() {
			fmt.Fprintf(&sb, "  %-10s", attack)
			for _, cfgName := range []string{"All", "All\\Delay"} {
				cell := byCfg[cfgName][attack]
				fmt.Fprintf(&sb, " | %-9s total=%-7d succ=%-5d (%.5f%%) det=%-5d (%.1f%%)",
					cfgName, cell.Total, cell.Successes, 100*cell.SuccessRate(),
					cell.Detections, 100*cell.DetectionRate())
			}
			sb.WriteString("\n")
		}
	}
	return sb.String()
}
