package report

import (
	"fmt"
	"sort"
	"strings"

	"glitchlab/internal/obs/query"
)

// TraceRollup renders per-(kind, name) trace aggregates as a table.
// Duration columns are only populated for spans — events and failures
// are instantaneous records.
func TraceRollup(rows []query.RollupRow, torn bool) string {
	var sb strings.Builder
	title := "Trace rollup"
	fmt.Fprintf(&sb, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	if torn {
		sb.WriteString("note: torn final line dropped (trace writer crashed mid-append)\n")
	}
	if len(rows) == 0 {
		sb.WriteString("empty trace\n")
		return sb.String()
	}
	width := len("name")
	for _, r := range rows {
		width = max(width, len(r.Name))
	}
	fmt.Fprintf(&sb, "\n  %-7s %-*s %8s %12s %10s %10s %10s\n",
		"kind", width, "name", "count", "total", "p50", "p99", "max")
	for _, r := range rows {
		if r.Kind == "span" {
			fmt.Fprintf(&sb, "  %-7s %-*s %8d %12s %10s %10s %10s\n",
				r.Kind, width, r.Name, r.Count,
				us(r.TotalUs), us(r.P50Us), us(r.P99Us), us(r.MaxUs))
		} else {
			fmt.Fprintf(&sb, "  %-7s %-*s %8d\n", r.Kind, width, r.Name, r.Count)
		}
	}
	return sb.String()
}

// TraceCriticalPath renders the longest span chain, one indented line
// per level with each span's own (self) share.
func TraceCriticalPath(path []query.PathNode) string {
	var sb strings.Builder
	title := "Critical path"
	fmt.Fprintf(&sb, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	if len(path) == 0 {
		sb.WriteString("no spans in trace\n")
		return sb.String()
	}
	for _, n := range path {
		fmt.Fprintf(&sb, "  %s%s  %s (self %s) @%s\n",
			strings.Repeat("  ", n.Depth), n.Name, us(n.DurUs), us(n.SelfUs), us(n.TUs))
	}
	return sb.String()
}

// TraceFailures renders failure records with their enclosing span and
// nearest preceding sampled event.
func TraceFailures(fcs []query.FailureContext) string {
	var sb strings.Builder
	title := "Failure correlation"
	fmt.Fprintf(&sb, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	if len(fcs) == 0 {
		sb.WriteString("no failures in trace\n")
		return sb.String()
	}
	for _, fc := range fcs {
		fmt.Fprintf(&sb, "  %s @%s", fc.Failure.Name, us(fc.Failure.TUs))
		if len(fc.Failure.Attrs) > 0 {
			keys := make([]string, 0, len(fc.Failure.Attrs))
			for k := range fc.Failure.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, 0, len(keys))
			for _, k := range keys {
				parts = append(parts, fmt.Sprintf("%s=%v", k, fc.Failure.Attrs[k]))
			}
			fmt.Fprintf(&sb, "  {%s}", strings.Join(parts, " "))
		}
		sb.WriteByte('\n')
		if fc.Span != "" {
			fmt.Fprintf(&sb, "    in span %s @%s (%s)\n", fc.Span, us(fc.SpanTUs), us(fc.SpanDurUs))
		}
		if fc.PrevEvent != "" {
			fmt.Fprintf(&sb, "    %s after event %s\n", us(fc.PrevEventDtUs), fc.PrevEvent)
		}
	}
	return sb.String()
}

// us renders microseconds with a human unit, deterministically.
func us(v int64) string {
	switch {
	case v >= 10_000_000:
		return fmt.Sprintf("%.2fs", float64(v)/1e6)
	case v >= 10_000:
		return fmt.Sprintf("%.2fms", float64(v)/1e3)
	default:
		return fmt.Sprintf("%dµs", v)
	}
}
