package report

import (
	"strings"
	"testing"

	"glitchlab/internal/campaign"
	"glitchlab/internal/core"
	"glitchlab/internal/glitcher"
	"glitchlab/internal/mutate"
	"glitchlab/internal/search"
)

func TestFigure2Rendering(t *testing.T) {
	results, err := core.RunFigure2(mutate.AND, false, 1, 1, false, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := Figure2(results, mutate.AND, false)
	for _, want := range []string{
		"Figure 2", "and model", "beq", "bne", "Success", "Bad Fetch",
		"No Effect", "unmodified",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure2 output missing %q", want)
		}
	}
	zi := Figure2(results, mutate.AND, true)
	if !strings.Contains(zi, "0x0000 invalid") {
		t.Error("zero-invalid variant not labeled")
	}
}

func TestTable1Rendering(t *testing.T) {
	// A tiny synthetic result keeps the test fast and the layout pinned.
	r := &glitcher.Table1Result{
		Guard:     glitcher.GuardWhileNotA,
		Attempts:  78408,
		Successes: 585,
	}
	for c := 0; c < glitcher.LoopCycles; c++ {
		cc := glitcher.CycleCount{Cycle: c, Instruction: "MOV R3, SP",
			Attempts: 9801, Values: map[uint32]uint64{}}
		if c == 4 {
			cc.Successes = 585
			cc.Values[0x55] = 500
			cc.Values[0x20003FE8] = 85
		}
		r.PerCycle = append(r.PerCycle, cc)
	}
	out := Table1(r)
	for _, want := range []string{
		"while(!a)", "R3", "0x55", "0x20003fe8", "585/78408", "0.746%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable2And3Rendering(t *testing.T) {
	t2 := []*glitcher.Table2Result{{
		Guard:    glitcher.GuardWhileNotA,
		Partial:  make([]uint64, glitcher.LoopCycles),
		Full:     make([]uint64, glitcher.LoopCycles),
		Attempts: 78408,
	}}
	t2[0].Partial[3] = 124
	t2[0].Full[3] = 87
	out := Table2(t2)
	for _, want := range []string{"Partial", "Full", "124", "87", "Total"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 output missing %q", want)
		}
	}

	t3 := []*glitcher.Table3Result{{
		Guard:     glitcher.GuardWhileA,
		Cycles:    []int{10, 11},
		Successes: []uint64{96, 140},
		Attempts:  2 * glitcher.GridSize,
	}}
	out3 := Table3(t3)
	for _, want := range []string{"while(a)", "0-10", "96", "140"} {
		if !strings.Contains(out3, want) {
			t.Errorf("Table3 output missing %q", want)
		}
	}
}

func TestSearchRendering(t *testing.T) {
	r := &search.Result{
		Guard:  glitcher.GuardWhileA,
		Found:  true,
		Params: glitcher.Params{Width: -46, Offset: -39},
		Cycle:  6,
	}
	out := Search(r)
	for _, want := range []string{"V-B", "width=-46%", "cycle=6", "10/10"} {
		if !strings.Contains(out, want) {
			t.Errorf("Search output missing %q: %s", want, out)
		}
	}
}

func TestTable4And5Rendering(t *testing.T) {
	t4 := &core.Table4Result{Rows: []core.BootRow{
		{Name: "None", Cycles: 1736},
		{Name: "Delay", Cycles: 184388, Constant: 177849},
	}}
	out := Table4(t4)
	for _, want := range []string{"Defense", "None", "Delay", "177849", "% Adjusted"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table4 output missing %q", want)
		}
	}

	t5, err := core.RunTable5()
	if err != nil {
		t.Fatal(err)
	}
	out5 := Table5(t5)
	for _, want := range []string{"text", "data", "bss", "total", "All\\Delay"} {
		if !strings.Contains(out5, want) {
			t.Errorf("Table5 output missing %q", want)
		}
	}
}

func TestTable6Rendering(t *testing.T) {
	t6 := &core.Table6Result{Cells: map[string]map[string]map[core.Attack]core.Table6Cell{
		"while(!a)": {
			"All": {
				core.AttackSingle: {Total: 107811, Successes: 10, Detections: 653},
			},
			"All\\Delay": {
				core.AttackSingle: {Total: 107811, Successes: 4, Detections: 1032},
			},
		},
	}}
	out := Table6(t6)
	for _, want := range []string{"while(!a)", "Single", "653", "All\\Delay"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table6 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable7Static(t *testing.T) {
	out := Table7()
	rows := Table7Data()
	if len(rows) != 9 {
		t.Fatalf("Table VII has %d rows, want 9 (8 prior works + GlitchResistor)", len(rows))
	}
	gr := rows[len(rows)-1]
	if gr.Name != "GlitchResistor" {
		t.Fatalf("last row = %q", gr.Name)
	}
	// The paper's claim: GlitchResistor is the only row with every
	// property.
	if !(gr.Generic && gr.Extensible && gr.BackwardCompatible &&
		gr.DataDiversify && gr.DataIntegrity && gr.ControlFlow && gr.RandomDelay) {
		t.Error("GlitchResistor row not fully checked")
	}
	for _, d := range rows[:len(rows)-1] {
		if d.Generic && d.Extensible && d.BackwardCompatible && d.DataDiversify &&
			d.DataIntegrity && d.ControlFlow && d.RandomDelay {
			t.Errorf("%s matches GlitchResistor on every property", d.Name)
		}
	}
	for _, want := range []string{"SWIFT", "CFCSS", "CAMFAS", "GlitchResistor"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table7 output missing %q", want)
		}
	}
}

func TestOutcomeTotalsConsistency(t *testing.T) {
	// Figure 2 rendering must not lose runs: histogram total equals the
	// number of mutated executions.
	results, err := core.RunFigure2(mutate.AND, false, 2, 1, false, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for _, r := range results {
		for k := 1; k < len(r.ByFlips); k++ {
			want += r.ByFlips[k].Total
		}
	}
	var got uint64
	for _, r := range results {
		for k := 1; k < len(r.ByFlips); k++ {
			for _, n := range r.ByFlips[k].Counts {
				got += n
			}
		}
	}
	if got != want || got == 0 {
		t.Fatalf("histogram covers %d of %d runs", got, want)
	}
	_ = campaign.Success // document the dependency used above via counts
}

// TestParallelRendersIdentical is the end-to-end golden-equivalence check
// the parallel engines promise: the rendered Figure 2 and Table I output
// of a sharded run must be byte-identical to a serial run's.
func TestParallelRendersIdentical(t *testing.T) {
	serial, err := core.RunFigure2(mutate.AND, false, 3, 1, false, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := core.RunFigure2(mutate.AND, false, 3, 4, false, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s, p := Figure2(serial, mutate.AND, false), Figure2(parallel, mutate.AND, false); s != p {
		t.Errorf("Figure 2 render differs between workers=1 and workers=4:\n--- serial ---\n%s\n--- parallel ---\n%s", s, p)
	}

	if testing.Short() {
		return // the Table I grid scans are full-size
	}
	m := glitcher.NewModel(core.DefaultSeed)
	st, err := m.RunTable1(glitcher.GuardWhileA)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := m.RunTable1Workers(glitcher.GuardWhileA, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s, p := Table1(st), Table1(pt); s != p {
		t.Errorf("Table I render differs between serial and workers=4:\n--- serial ---\n%s\n--- parallel ---\n%s", s, p)
	}
}
