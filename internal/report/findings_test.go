package report

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"glitchlab/internal/analyze"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// fixedResult is a hand-built analyzer result so the golden file exercises
// the renderer, not the analyzer.
func fixedResult() *analyze.Result {
	return &analyze.Result{
		Findings: []analyze.Finding{
			{
				Rule: "GL001", Slug: "spof-branch", Severity: analyze.High,
				Func: "main", Block: "entry", Instr: 4,
				Detail:  "taken edge of the guard goes directly to the boot block",
				Hint:    "enable branch redundancy (-defenses branches)",
				FixedBy: "branches",
			},
			{
				Rule: "GL002", Slug: "low-hamming-const", Severity: analyze.Medium,
				Instr:  -1,
				Detail: "enum verdict values have minimum pairwise Hamming distance 1 (< 8)",
				Hint:   "diversify with Reed-Solomon codes (-defenses enums), e.g. 0xe7d25763, 0xd3b9aec6",
			},
			{
				Rule: "GL004", Slug: "unshadowed-sensitive-load", Severity: analyze.Medium,
				Func: "verify_signature", Block: "body", Instr: 1,
				Detail:  "load of sensitive global image_word is not verified against a shadow copy",
				Hint:    "enable data integrity for it (-defenses integrity -sensitive image_word)",
				FixedBy: "integrity",
			},
			{
				Rule: "GL006", Slug: "one-flip-branch", Severity: analyze.Medium,
				Func: "verify_signature", Block: "for0", Instr: -1, Addr: 0x8124,
				Detail:  "11 of 29 single-bit flips turn bcc (0xd301) into a different control transfer undetected",
				Hint:    "a redundant check behind the branch (-defenses branches) catches the diverted path",
				FixedBy: "branches",
			},
		},
		Ran: []analyze.RuleMeta{
			{ID: "GL001"}, {ID: "GL002"}, {ID: "GL003"},
			{ID: "GL004"}, {ID: "GL005"}, {ID: "GL006"},
		},
	}
}

func TestFindingsGolden(t *testing.T) {
	got := Findings(fixedResult())
	path := filepath.Join("testdata", "findings.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("findings table drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s\n(run with -update to regenerate)",
			got, want)
	}
}

func TestFindingsEmpty(t *testing.T) {
	out := Findings(&analyze.Result{
		Ran:     []analyze.RuleMeta{{ID: "GL001"}},
		Skipped: []string{"GL006"},
	})
	for _, want := range []string{"0 findings", "1 rules ran, 1 skipped", "No glitchable code shapes found."} {
		if !strings.Contains(out, want) {
			t.Errorf("empty findings table missing %q:\n%s", want, out)
		}
	}
}
