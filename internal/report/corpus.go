package report

import (
	"fmt"
	"sort"
	"strings"

	"glitchlab/internal/analyze/corpus"
)

// Corpus renders a fleet-lint report: the corpus-level rollup, the
// per-rule totals, and the units that failed to build or left audit
// violations. Per-finding detail stays in the JSON report — at corpus
// scale the table is the product.
func Corpus(rep *corpus.Report) string {
	var sb strings.Builder
	t := rep.Totals
	title := fmt.Sprintf("glitchlint corpus: %d units × %d configs = %d builds, %d findings",
		t.Units, builds(t), t.Builds, t.Findings)
	fmt.Fprintf(&sb, "%s\n%s\n", title, strings.Repeat("=", len(title)))

	if len(t.ByRule) > 0 {
		fmt.Fprintf(&sb, "\n%-6s %10s\n", "Rule", "Findings")
		rules := make([]string, 0, len(t.ByRule))
		for id := range t.ByRule {
			rules = append(rules, id)
		}
		sort.Strings(rules)
		for _, id := range rules {
			fmt.Fprintf(&sb, "%-6s %10d\n", id, t.ByRule[id])
		}
	}
	if len(t.BySeverity) > 0 {
		fmt.Fprintf(&sb, "\n%-8s %10s\n", "Severity", "Findings")
		for _, sev := range []string{"high", "medium", "low", "info"} {
			if n, ok := t.BySeverity[sev]; ok {
				fmt.Fprintf(&sb, "%-8s %10d\n", sev, n)
			}
		}
	}

	var failed, owed []string
	for _, u := range rep.Units {
		for _, is := range u.Summary.Issues {
			if is.Error != "" {
				failed = append(failed, fmt.Sprintf("  %s [%s]: %s", u.Path, is.Config, is.Error))
			}
			if is.Unremoved > 0 {
				owed = append(owed, fmt.Sprintf("  %s [%s]: %d findings survived their defense pass",
					u.Path, is.Config, is.Unremoved))
			}
		}
	}
	if len(failed) > 0 {
		fmt.Fprintf(&sb, "\nFailed builds (%d):\n%s\n", len(failed), strings.Join(failed, "\n"))
	}
	if len(owed) > 0 {
		fmt.Fprintf(&sb, "\nAudit violations (%d builds):\n%s\n", len(owed), strings.Join(owed, "\n"))
	}
	if len(failed) == 0 && len(owed) == 0 {
		sb.WriteString("\nAll builds compiled; every enabled defense pass removed the findings it owns.\n")
	}
	return sb.String()
}

// builds returns configs-per-unit for the title line, tolerating an empty
// corpus.
func builds(t corpus.Totals) int {
	if t.Units == 0 {
		return 0
	}
	return t.Builds / t.Units
}
