package report

import (
	"fmt"
	"strings"

	"glitchlab/internal/obs/profile"
)

// Profile renders a phase-attribution report as a readable table: one row
// per phase with its share of the sampled time and the extrapolated total,
// followed by the coverage line comparing the extrapolation to the
// measured wall clock. The layout is deterministic for a given report.
func Profile(r profile.Report) string {
	var sb strings.Builder
	title := "Phase attribution"
	fmt.Fprintf(&sb, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	if r.Execs == 0 {
		sb.WriteString("no executions profiled\n")
		return sb.String()
	}
	fmt.Fprintf(&sb, "executions %d, sampled %d (1 in %d)\n\n",
		r.Execs, r.Sampled, r.SampleEvery)

	width := len("phase")
	for _, ph := range r.Phases {
		width = max(width, len(ph.Phase))
	}
	fmt.Fprintf(&sb, "  %-*s %9s %12s %14s\n", width, "phase", "share", "sampled", "est total")
	for _, ph := range r.Phases {
		fmt.Fprintf(&sb, "  %-*s %8.1f%% %12s %14s\n",
			width, ph.Phase, ph.SharePct, dur(ph.SampledNs), dur(ph.EstNs))
	}
	fmt.Fprintf(&sb, "\nwall clock %s, attributed %s (coverage %.1f%%)\n",
		dur(r.WallNs), dur(r.EstTotalNs), r.CoveragePct)
	fmt.Fprintf(&sb, "calibration: clock read %dns, decode unit %dns\n",
		r.ClockNs, r.DecodeNs)
	return sb.String()
}

// dur renders nanoseconds with a human unit, deterministically.
func dur(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
