package report

import (
	"fmt"
	"strings"

	"glitchlab/internal/analyze"
)

// Findings renders a glitchlint result as a table in the same style as the
// paper's evaluation tables, followed by one remediation hint per rule.
func Findings(res *analyze.Result) string {
	var sb strings.Builder
	title := fmt.Sprintf("glitchlint: %d findings (%d rules ran, %d skipped)",
		len(res.Findings), len(res.Ran), len(res.Skipped))
	fmt.Fprintf(&sb, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	if len(res.Findings) == 0 {
		sb.WriteString("\nNo glitchable code shapes found.\n")
		return sb.String()
	}

	locW := len("Location")
	for i := range res.Findings {
		if l := len(res.Findings[i].Location()); l > locW {
			locW = l
		}
	}
	fmt.Fprintf(&sb, "\n%-6s %-8s %-*s %s\n", "Rule", "Severity", locW, "Location", "Finding")
	for i := range res.Findings {
		f := &res.Findings[i]
		fmt.Fprintf(&sb, "%-6s %-8s %-*s %s\n",
			f.Rule, f.Severity, locW, f.Location(), f.Detail)
	}

	sb.WriteString("\nRemediation:\n")
	seen := map[string]bool{}
	for i := range res.Findings {
		f := &res.Findings[i]
		if seen[f.Rule] || f.Hint == "" {
			continue
		}
		seen[f.Rule] = true
		fmt.Fprintf(&sb, "  %s %s: %s\n", f.Rule, f.Slug, f.Hint)
	}
	return sb.String()
}
