package report

import (
	"os"
	"path/filepath"
	"testing"

	"glitchlab/internal/obs"
)

// fixedSnapshot builds a registry with one metric of each kind so the
// golden file exercises every branch of the renderer.
func fixedSnapshot() obs.Snapshot {
	r := obs.NewRegistry()
	r.Counter("campaign.outcome.success").Add(1660)
	r.Counter("campaign.runs_total").Add(3932160)
	r.Gauge("scan.grid.coverage").Set(0.815)
	r.Gauge("compile.image.text_bytes").Set(612)
	h := r.Histogram("campaign.steps", obs.ExpBuckets(1, 4, 4))
	h.Observe(3)
	h.Observe(17)
	h.Observe(1000)
	return r.Snapshot()
}

func TestMetricsGolden(t *testing.T) {
	got := Metrics(fixedSnapshot())
	path := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("metrics table drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s\n(run with -update to regenerate)",
			got, want)
	}
}

func TestMetricsEmptySnapshot(t *testing.T) {
	got := Metrics(obs.Snapshot{})
	if got == "" {
		t.Fatal("empty snapshot renders nothing")
	}
}
