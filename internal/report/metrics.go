package report

import (
	"fmt"
	"strconv"
	"strings"

	"glitchlab/internal/obs"
)

// Metrics renders a registry snapshot as a readable table: counters, then
// gauges, then histograms, each sorted by name. It is the -metrics output
// of the experiment CLIs; the layout is deterministic so runs can be
// diffed (and golden-tested).
func Metrics(s obs.Snapshot) string {
	var sb strings.Builder
	title := "Metrics snapshot"
	fmt.Fprintf(&sb, "%s\n%s\n", title, strings.Repeat("=", len(title)))

	width := 0
	for _, c := range s.Counters {
		width = max(width, len(c.Name))
	}
	for _, g := range s.Gauges {
		width = max(width, len(g.Name))
	}

	if len(s.Counters) > 0 {
		fmt.Fprintf(&sb, "\nCounters:\n")
		for _, c := range s.Counters {
			fmt.Fprintf(&sb, "  %-*s %12d\n", width, c.Name, c.Value)
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintf(&sb, "\nGauges:\n")
		for _, g := range s.Gauges {
			fmt.Fprintf(&sb, "  %-*s %12s\n", width, g.Name, num(g.Value))
		}
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintf(&sb, "\nHistograms:\n")
		for _, h := range s.Histograms {
			fmt.Fprintf(&sb, "  %s  count=%d sum=%s\n", h.Name, h.Count, num(h.Sum))
			for _, b := range h.Buckets {
				fmt.Fprintf(&sb, "    le %-10s %12d\n", num(b.UpperBound), b.Count)
			}
			if h.Overflow > 0 {
				fmt.Fprintf(&sb, "    %-13s %12d\n", "overflow", h.Overflow)
			}
		}
	}
	return sb.String()
}

// num formats a float compactly and deterministically (no trailing zeros,
// integers without a decimal point).
func num(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
