package report

import (
	"strings"
	"testing"
)

func TestJobsEmpty(t *testing.T) {
	out := Jobs(nil)
	if !strings.Contains(out, "glitchd jobs") || !strings.Contains(out, "(none)") {
		t.Errorf("empty table missing header or placeholder:\n%s", out)
	}
}

func TestJobsRendersRowsAndNotes(t *testing.T) {
	out := Jobs([]JobRow{
		{ID: "j000001", Kind: "campaign", State: "done", Units: 42, Bytes: 1234},
		{ID: "j000002", Kind: "scan", State: "done", Cached: true, Bytes: 99},
		{ID: "j000003", Kind: "eval", State: "running", Units: 3, Resumed: true},
		{ID: "j000004", Kind: "scan", State: "failed", Err: "boom\nsecond line"},
	})
	for _, want := range []string{
		"j000001", "campaign", "1234B",
		"j000002", "cache-hit",
		"j000003", "resumed",
		"j000004", "error: boom",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "second line") {
		t.Errorf("error note should keep only the first line:\n%s", out)
	}
}
