package report

import (
	"fmt"
	"strings"
)

// JobRow is one glitchd job in the status table. The serving layer maps
// its job store onto this neutral row type so report does not depend on
// internal/serve (which imports report for result rendering).
type JobRow struct {
	ID      string
	Kind    string
	State   string
	Units   uint64
	Cached  bool
	Resumed bool
	Bytes   int64
	Err     string
}

// Jobs renders the daemon job table (GET /v1/jobs?format=text).
func Jobs(rows []JobRow) string {
	var sb strings.Builder
	sb.WriteString("glitchd jobs\n")
	sb.WriteString("============\n")
	if len(rows) == 0 {
		sb.WriteString("(none)\n")
		return sb.String()
	}
	fmt.Fprintf(&sb, "%-8s  %-8s  %-11s  %8s  %9s  %s\n",
		"id", "kind", "state", "units", "result", "notes")
	for _, r := range rows {
		var notes []string
		if r.Cached {
			notes = append(notes, "cache-hit")
		}
		if r.Resumed {
			notes = append(notes, "resumed")
		}
		if r.Err != "" {
			notes = append(notes, "error: "+firstLine(r.Err))
		}
		result := "-"
		if r.Bytes > 0 {
			result = fmt.Sprintf("%dB", r.Bytes)
		}
		fmt.Fprintf(&sb, "%-8s  %-8s  %-11s  %8d  %9s  %s\n",
			r.ID, r.Kind, r.State, r.Units, result, strings.Join(notes, ", "))
	}
	return sb.String()
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
