package report

import (
	"fmt"
	"strings"
)

// Defense is one row of the paper's Table VII: a software-based glitching
// defense and the properties the paper compares.
type Defense struct {
	Name               string
	Generic            bool // applies beyond one algorithm/application
	Extensible         bool // new defenses can be added to the framework
	BackwardCompatible bool // no whole-program source rewrite required
	DataDiversify      bool // constant diversification
	DataIntegrity      bool
	ControlFlow        bool // control-flow hardening
	RandomDelay        bool
}

// Table7Data reproduces the paper's Table VII verbatim: the comparison of
// GlitchResistor against prior software-based defenses.
func Table7Data() []Defense {
	return []Defense{
		{Name: "Data Encoding [37],[14]", Generic: false, Extensible: false,
			BackwardCompatible: false, DataDiversify: true, DataIntegrity: true,
			ControlFlow: false, RandomDelay: false},
		{Name: "CAMFAS [17]", Generic: true, Extensible: false,
			BackwardCompatible: true, DataDiversify: false, DataIntegrity: true,
			ControlFlow: false, RandomDelay: false},
		{Name: "Loop Hardening [60]", Generic: false, Extensible: false,
			BackwardCompatible: true, DataDiversify: false, DataIntegrity: false,
			ControlFlow: true, RandomDelay: false},
		{Name: "IIR [58]", Generic: false, Extensible: false,
			BackwardCompatible: false, DataDiversify: false, DataIntegrity: true,
			ControlFlow: false, RandomDelay: false},
		{Name: "CountCompile [11]", Generic: true, Extensible: false,
			BackwardCompatible: true, DataDiversify: false, DataIntegrity: false,
			ControlFlow: true, RandomDelay: false},
		{Name: "CountC [36]", Generic: false, Extensible: false,
			BackwardCompatible: false, DataDiversify: false, DataIntegrity: false,
			ControlFlow: true, RandomDelay: false},
		{Name: "SWIFT [63]", Generic: true, Extensible: false,
			BackwardCompatible: true, DataDiversify: false, DataIntegrity: true,
			ControlFlow: true, RandomDelay: false},
		{Name: "CFCSS [55]", Generic: true, Extensible: false,
			BackwardCompatible: true, DataDiversify: false, DataIntegrity: false,
			ControlFlow: true, RandomDelay: false},
		{Name: "GlitchResistor", Generic: true, Extensible: true,
			BackwardCompatible: true, DataDiversify: true, DataIntegrity: true,
			ControlFlow: true, RandomDelay: true},
	}
}

func mark(b bool) string {
	if b {
		return "+"
	}
	return "-"
}

// Table7 renders the comparison table.
func Table7() string {
	var sb strings.Builder
	sb.WriteString("Table VII: comparison of software-based glitching defenses\n")
	fmt.Fprintf(&sb, "%-26s %-7s %-10s %-9s %-9s %-9s %-8s %-6s\n",
		"Defense", "Generic", "Extensible", "BackCompat",
		"DataDiv", "Integrity", "CtrlFlow", "Delay")
	for _, d := range Table7Data() {
		fmt.Fprintf(&sb, "%-26s %-7s %-10s %-9s %-9s %-9s %-8s %-6s\n",
			d.Name, mark(d.Generic), mark(d.Extensible),
			mark(d.BackwardCompatible), mark(d.DataDiversify),
			mark(d.DataIntegrity), mark(d.ControlFlow), mark(d.RandomDelay))
	}
	return sb.String()
}
