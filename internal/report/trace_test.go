package report

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"glitchlab/internal/campaign"
	"glitchlab/internal/core"
	"glitchlab/internal/mutate"
	"glitchlab/internal/obs"
	"glitchlab/internal/obs/query"
)

// traceCampaign runs one instrumented AND k=0..2 campaign with a
// constant tracer clock (every t_us and dur_us is zero, removing the
// only schedule-dependent part of a trace record) and full sampling, and
// returns the loaded trace plus the run's metrics snapshot.
func traceCampaign(t *testing.T, workers int) (*query.Trace, obs.Snapshot) {
	t.Helper()
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	tr := obs.NewTracer(&buf)
	tr.SetClock(func() time.Time { return time.Unix(1700000000, 0) })
	tr.SetSampling(1)
	tr.SetFailureRing(4096) // larger than the campaign's failure count
	o := campaign.NewObserver(reg, tr)
	if _, err := core.RunFigure2(mutate.AND, false, 2, workers, false, o, nil, nil); err != nil {
		t.Fatal(err)
	}
	tr.Close()
	trace, err := query.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return trace, reg.Snapshot()
}

// TestTraceAnalyticsSerialParallelIdentical pins the glitchtrace
// analytics to the campaign engine's golden-equivalence contract: the
// same seeded campaign run serially and worker-sharded must produce
// byte-identical rollup and critical-path renderings (the records arrive
// in a different order, but the analytics are order-independent), an
// identical failure count, and metrics snapshots whose diff is empty.
func TestTraceAnalyticsSerialParallelIdentical(t *testing.T) {
	serialTrace, serialSnap := traceCampaign(t, 1)
	parallelTrace, parallelSnap := traceCampaign(t, 4)

	serialRollup := TraceRollup(serialTrace.Rollup(), serialTrace.Torn)
	parallelRollup := TraceRollup(parallelTrace.Rollup(), parallelTrace.Torn)
	if serialRollup != parallelRollup {
		t.Errorf("rollup differs serial vs workers:\n--- serial ---\n%s--- parallel ---\n%s",
			serialRollup, parallelRollup)
	}

	serialPath := TraceCriticalPath(serialTrace.CriticalPath())
	parallelPath := TraceCriticalPath(parallelTrace.CriticalPath())
	if serialPath != parallelPath {
		t.Errorf("critical path differs serial vs workers:\n--- serial ---\n%s--- parallel ---\n%s",
			serialPath, parallelPath)
	}

	if s, p := len(serialTrace.CorrelateFailures()), len(parallelTrace.CorrelateFailures()); s != p {
		t.Errorf("failure count differs: serial %d, parallel %d", s, p)
	}

	d := obs.SnapshotDiff(serialSnap, parallelSnap)
	if changed := d.Changed(); len(changed) != 0 {
		t.Errorf("metrics snapshots differ serial vs workers: %+v", changed)
	}

	// Golden-pin the rollup and critical path so the renderings (and the
	// campaign's record population) cannot drift silently.
	checkGolden(t, "tracerollup.golden", serialRollup)
	checkGolden(t, "tracecritical.golden", serialPath)
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted:\n--- got ---\n%s--- want ---\n%s(run with -update to regenerate)",
			name, got, want)
	}
}
