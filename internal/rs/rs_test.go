package rs

import (
	"testing"
	"testing/quick"
)

func TestFieldTables(t *testing.T) {
	f := newField()
	// exp and log are inverse on [1,255].
	for v := 1; v < 256; v++ {
		if f.exp[f.log[v]] != byte(v) {
			t.Fatalf("exp(log(%d)) = %d", v, f.exp[f.log[v]])
		}
	}
	// Multiplication properties.
	if f.mul(0, 7) != 0 || f.mul(7, 0) != 0 {
		t.Error("multiplication by zero")
	}
	if f.mul(1, 99) != 99 {
		t.Error("multiplicative identity")
	}
	// x * x = x^2 under 0x11d: 2*2=4, 0x80*2 = 0x100 ^ 0x11d = 0x1d.
	if f.mul(2, 2) != 4 {
		t.Error("2*2 != 4")
	}
	if f.mul(0x80, 2) != 0x1d {
		t.Errorf("0x80*2 = %#x, want 0x1d", f.mul(0x80, 2))
	}
}

func TestFieldMulCommutativeAssociative(t *testing.T) {
	f := newField()
	fn := func(a, b, c byte) bool {
		if f.mul(a, b) != f.mul(b, a) {
			return false
		}
		return f.mul(f.mul(a, b), c) == f.mul(a, f.mul(b, c))
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeIsLinear(t *testing.T) {
	// RS encoding over GF(2^8) is linear: E(a xor b) == E(a) xor E(b).
	enc, err := NewEncoder(4)
	if err != nil {
		t.Fatal(err)
	}
	fn := func(a0, a1, b0, b1 byte) bool {
		ea := enc.Encode([]byte{a0, a1})
		eb := enc.Encode([]byte{b0, b1})
		ex := enc.Encode([]byte{a0 ^ b0, a1 ^ b1})
		for i := range ex {
			if ex[i] != ea[i]^eb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeZeroMessage(t *testing.T) {
	enc, err := NewEncoder(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range enc.Encode([]byte{0, 0}) {
		if b != 0 {
			t.Fatal("zero message must encode to zero parity")
		}
	}
}

// TestPaperConstants pins the reproduction's most direct validation: the
// paper's Section V "large Hamming distance" experiment compares
// a = 0xE7D25763 against 0xD3B9AEC6 — and those are exactly the codes this
// encoder generates for indices 1 and 2. The paper drew its test constants
// from GlitchResistor's own Reed-Solomon configuration (two-byte message,
// four-byte ECC over GF(2^8)/0x11d), which this package reimplements
// byte-for-byte.
func TestPaperConstants(t *testing.T) {
	vals, err := Codes(2)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 0xE7D25763 {
		t.Errorf("code[1] = %#x, want 0xE7D25763 (the paper's initial a)", vals[0])
	}
	if vals[1] != 0xD3B9AEC6 {
		t.Errorf("code[2] = %#x, want 0xD3B9AEC6 (the paper's comparator)", vals[1])
	}
}

func TestCodesPairwiseDistance(t *testing.T) {
	// The paper claims the generated sets ensure a minimum pairwise
	// Hamming distance of 8; verify up to the full single-byte index
	// range and a healthy margin for small ENUM-sized sets.
	for _, tt := range []struct {
		count   int
		minDist int
	}{
		{2, 16}, {8, 10}, {16, 10}, {64, 10}, {256, 8},
	} {
		vals, err := Codes(tt.count)
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != tt.count {
			t.Fatalf("Codes(%d) returned %d values", tt.count, len(vals))
		}
		if d := MinPairwiseDistance(vals); d < tt.minDist {
			t.Errorf("Codes(%d) min distance %d, want >= %d", tt.count, d, tt.minDist)
		}
	}
}

func TestCodesDistinctAndNonTrivial(t *testing.T) {
	vals, err := Codes(512)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint32]bool{}
	for i, v := range vals {
		if seen[v] {
			t.Fatalf("duplicate code at index %d: %#x", i+1, v)
		}
		seen[v] = true
		if v == 0 || v == uint32(i+1) {
			t.Errorf("code %d is trivial: %#x", i+1, v)
		}
	}
}

func TestCodesErrors(t *testing.T) {
	if _, err := Codes(0); err == nil {
		t.Error("Codes(0) succeeded")
	}
	if _, err := Codes(1<<16 + 1); err == nil {
		t.Error("Codes(65537) succeeded")
	}
	if _, err := NewEncoder(0); err == nil {
		t.Error("NewEncoder(0) succeeded")
	}
	if _, err := NewEncoder(255); err == nil {
		t.Error("NewEncoder(255) succeeded")
	}
}

func TestMinPairwiseDistance(t *testing.T) {
	if d := MinPairwiseDistance([]uint32{0}); d != 32 {
		t.Errorf("single value distance = %d, want 32", d)
	}
	if d := MinPairwiseDistance([]uint32{0, 1}); d != 1 {
		t.Errorf("distance = %d, want 1", d)
	}
	if d := MinPairwiseDistance([]uint32{0, 0xF, 0xFF}); d != 4 {
		t.Errorf("distance = %d, want 4", d)
	}
}
