// Package rs implements Reed-Solomon encoding over GF(2^8), the substrate
// GlitchResistor's constant-diversification defenses use to generate sets
// of values with large pairwise Hamming distance (paper Section VI-A): a
// two-byte message (the value's index) is encoded with a four-byte ECC, and
// the ECC becomes the diversified constant. The paper reports a minimum
// pairwise Hamming distance of 8 for the generated sets.
package rs

import (
	"fmt"
	"math/bits"
)

// primitivePoly is the conventional GF(2^8) reduction polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11d).
const primitivePoly = 0x11d

// field holds the GF(2^8) log/antilog tables.
type field struct {
	exp [512]byte
	log [256]byte
}

func newField() *field {
	f := &field{}
	x := 1
	for i := 0; i < 255; i++ {
		f.exp[i] = byte(x)
		f.log[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= primitivePoly
		}
	}
	for i := 255; i < 512; i++ {
		f.exp[i] = f.exp[i-255]
	}
	return f
}

func (f *field) mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[int(f.log[a])+int(f.log[b])]
}

// Encoder computes Reed-Solomon parity bytes of a fixed length.
type Encoder struct {
	f      *field
	eccLen int
	gen    []byte // generator polynomial, monic, degree eccLen
}

// NewEncoder returns an encoder producing eccLen parity bytes.
func NewEncoder(eccLen int) (*Encoder, error) {
	if eccLen < 1 || eccLen > 254 {
		return nil, fmt.Errorf("rs: ecc length %d out of range [1,254]", eccLen)
	}
	f := newField()
	// g(x) = (x - a^0)(x - a^1)...(x - a^(eccLen-1)), descending degree.
	gen := []byte{1}
	for i := 0; i < eccLen; i++ {
		gen = mulPoly(f, gen, []byte{1, f.exp[i]})
	}
	return &Encoder{f: f, eccLen: eccLen, gen: gen}, nil
}

// mulPoly multiplies polynomials with coefficients in descending degree
// order.
func mulPoly(f *field, a, b []byte) []byte {
	out := make([]byte, len(a)+len(b)-1)
	for i, ca := range a {
		for j, cb := range b {
			out[i+j] ^= f.mul(ca, cb)
		}
	}
	return out
}

// Encode returns the eccLen parity bytes for msg (systematic encoding:
// the remainder of msg·x^eccLen divided by the generator).
func (e *Encoder) Encode(msg []byte) []byte {
	rem := make([]byte, e.eccLen)
	for _, m := range msg {
		factor := m ^ rem[0]
		copy(rem, rem[1:])
		rem[e.eccLen-1] = 0
		if factor == 0 {
			continue
		}
		for i := 0; i < e.eccLen; i++ {
			// gen[0] is the monic leading coefficient.
			rem[i] ^= e.f.mul(e.gen[i+1], factor)
		}
	}
	return rem
}

// Codes generates `count` diversified 32-bit constants: for each index i in
// [1, count], the two-byte message {lo, hi} is encoded and its four parity
// bytes become the value, exactly as GlitchResistor's ENUM rewriter and
// return-code hardener do.
func Codes(count int) ([]uint32, error) {
	if count < 1 || count > 1<<16 {
		return nil, fmt.Errorf("rs: count %d out of range [1, 65536]", count)
	}
	enc, err := NewEncoder(4)
	if err != nil {
		return nil, err
	}
	out := make([]uint32, count)
	for i := 1; i <= count; i++ {
		ecc := enc.Encode([]byte{byte(i), byte(i >> 8)})
		out[i-1] = uint32(ecc[0]) | uint32(ecc[1])<<8 |
			uint32(ecc[2])<<16 | uint32(ecc[3])<<24
	}
	return out, nil
}

// MinPairwiseDistance returns the minimum pairwise Hamming distance of the
// values (and 32 for a single value, the distance to nothing).
func MinPairwiseDistance(values []uint32) int {
	minDist := 33
	for i := 0; i < len(values); i++ {
		for j := i + 1; j < len(values); j++ {
			if d := bits.OnesCount32(values[i] ^ values[j]); d < minDist {
				minDist = d
			}
		}
	}
	if minDist == 33 {
		return 32
	}
	return minDist
}
