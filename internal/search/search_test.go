package search

import (
	"testing"

	"glitchlab/internal/glitcher"
)

func TestFindReliableParameters(t *testing.T) {
	// Section V-B: the search must locate a single-cycle glitch with
	// 10/10 reliability against both while(a) and the large-Hamming
	// comparison, as the paper's tuning did.
	m := glitcher.NewModel(1)
	for _, g := range []glitcher.Guard{glitcher.GuardWhileA, glitcher.GuardWhileNeq} {
		s, err := New(m, g)
		if err != nil {
			t.Fatal(err)
		}
		res := s.Find()
		if !res.Found {
			t.Fatalf("%v: %s", g, res)
		}
		if res.Cycle < 0 || res.Cycle >= 10 {
			t.Errorf("%v: cycle %d out of range", g, res.Cycle)
		}
		if res.Successes < Confirmations {
			t.Errorf("%v: only %d successes recorded", g, res.Successes)
		}
		// Re-verify the winning parameters independently.
		tgt, err := glitcher.NewTarget(g, g.SingleLoopSource())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < Confirmations; i++ {
			r := tgt.Attempt(m.Plan(res.Params, res.Cycle))
			if r.Tag != "exit" {
				t.Fatalf("%v: winning params failed on confirmation %d", g, i)
			}
		}
	}
}

func TestFindIsDeterministic(t *testing.T) {
	m := glitcher.NewModel(3)
	s1, err := New(m, glitcher.GuardWhileA)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(m, glitcher.GuardWhileA)
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := s1.Find(), s2.Find()
	if r1.Found != r2.Found || r1.Params != r2.Params || r1.Cycle != r2.Cycle ||
		r1.Attempts != r2.Attempts {
		t.Fatalf("search not deterministic: %s vs %s", r1, r2)
	}
}

func TestExhaustCountsSuccesses(t *testing.T) {
	m := glitcher.NewModel(1)
	s, err := New(m, glitcher.GuardWhileA)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Exhaust()
	if res.Attempts != glitcher.GridSize {
		t.Fatalf("attempts = %d, want %d", res.Attempts, glitcher.GridSize)
	}
	if res.CoarseHits == 0 {
		t.Fatal("coarse scan found no successes")
	}
	if res.CoarseHits != res.Successes {
		t.Fatalf("hits %d != successes %d", res.CoarseHits, res.Successes)
	}
}
