package search

import (
	"testing"

	"glitchlab/internal/glitcher"
)

func TestFindReliableParameters(t *testing.T) {
	// Section V-B: the search must locate a single-cycle glitch with
	// 10/10 reliability against both while(a) and the large-Hamming
	// comparison, as the paper's tuning did.
	m := glitcher.NewModel(1)
	for _, g := range []glitcher.Guard{glitcher.GuardWhileA, glitcher.GuardWhileNeq} {
		s, err := New(m, g)
		if err != nil {
			t.Fatal(err)
		}
		res := s.Find()
		if !res.Found {
			t.Fatalf("%v: %s", g, res)
		}
		if res.Cycle < 0 || res.Cycle >= glitcher.LoopCycles {
			t.Errorf("%v: cycle %d out of range", g, res.Cycle)
		}
		if res.Successes < Confirmations {
			t.Errorf("%v: only %d successes recorded", g, res.Successes)
		}
		// Re-verify the winning parameters independently.
		tgt, err := glitcher.NewTarget(g, g.SingleLoopSource())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < Confirmations; i++ {
			r := tgt.Attempt(m.Plan(res.Params, res.Cycle))
			if r.Tag != "exit" {
				t.Fatalf("%v: winning params failed on confirmation %d", g, i)
			}
		}
	}
}

func TestFindIsDeterministic(t *testing.T) {
	m := glitcher.NewModel(3)
	s1, err := New(m, glitcher.GuardWhileA)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(m, glitcher.GuardWhileA)
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := s1.Find(), s2.Find()
	if r1.Found != r2.Found || r1.Params != r2.Params || r1.Cycle != r2.Cycle ||
		r1.Attempts != r2.Attempts {
		t.Fatalf("search not deterministic: %s vs %s", r1, r2)
	}
}

// TestFindCycleWithinLoop is the regression test for the phase-2 clamp:
// the narrowing loop used to iterate up to coarseCycles (10), two cycles
// past the 8-cycle loop, and a plan at cycle >= LoopCycles aliases into
// the next loop iteration (the pipeline's relative clock never wraps). A
// winning cycle must therefore always lie inside the first iteration.
func TestFindCycleWithinLoop(t *testing.T) {
	seeds := uint64(5)
	if testing.Short() {
		seeds = 1
	}
	for seed := uint64(1); seed <= seeds; seed++ {
		m := glitcher.NewModel(seed)
		for _, g := range []glitcher.Guard{
			glitcher.GuardWhileNotA, glitcher.GuardWhileA, glitcher.GuardWhileNeq,
		} {
			s, err := New(m, g)
			if err != nil {
				t.Fatal(err)
			}
			res := s.Find()
			if !res.Found {
				continue
			}
			if res.Cycle >= glitcher.LoopCycles {
				t.Errorf("seed %d %v: winning cycle %d aliases past the %d-cycle loop",
					seed, g, res.Cycle, glitcher.LoopCycles)
			}
		}
	}
}

// TestFindStopsAfterSuccess is the regression test for the full-grid
// iteration bug: Find used to keep walking the remaining parameter points
// after locating a reliable point, burning one coarse attempt on each. A
// successful search must attempt strictly fewer points than an
// exhaustive coarse scan of the whole grid plus the narrowing overhead.
func TestFindStopsAfterSuccess(t *testing.T) {
	if testing.Short() {
		t.Skip("full-grid coarse scan")
	}
	m := glitcher.NewModel(1)
	s, err := New(m, glitcher.GuardWhileA)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Find()
	if !res.Found {
		t.Fatalf("no reliable point found: %s", res)
	}
	e, err := New(m, glitcher.GuardWhileA)
	if err != nil {
		t.Fatal(err)
	}
	exhaust := e.Exhaust()
	if res.Attempts >= exhaust.Attempts {
		t.Errorf("Find fired %d attempts, not fewer than the %d of a full coarse scan — grid not stopped on success",
			res.Attempts, exhaust.Attempts)
	}
}

func TestExhaustCountsSuccesses(t *testing.T) {
	m := glitcher.NewModel(1)
	s, err := New(m, glitcher.GuardWhileA)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Exhaust()
	if res.Attempts != glitcher.GridSize {
		t.Fatalf("attempts = %d, want %d", res.Attempts, glitcher.GridSize)
	}
	if res.CoarseHits == 0 {
		t.Fatal("coarse scan found no successes")
	}
	if res.CoarseHits != res.Successes {
		t.Fatalf("hits %d != successes %d", res.CoarseHits, res.Successes)
	}
}

func TestExhaustWorkersMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full-grid coarse scans")
	}
	m := glitcher.NewModel(1)
	s, err := New(m, glitcher.GuardWhileA)
	if err != nil {
		t.Fatal(err)
	}
	serial := s.Exhaust()
	for _, workers := range []int{2, 4} {
		ps, err := New(m, glitcher.GuardWhileA)
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := ps.ExhaustWorkers(workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		if parallel.Attempts != serial.Attempts ||
			parallel.Successes != serial.Successes ||
			parallel.CoarseHits != serial.CoarseHits ||
			parallel.Found != serial.Found {
			t.Errorf("workers=%d: got %d/%d/%d found=%v, want %d/%d/%d found=%v",
				workers, parallel.Attempts, parallel.Successes, parallel.CoarseHits,
				parallel.Found, serial.Attempts, serial.Successes, serial.CoarseHits,
				serial.Found)
		}
	}
}
