// Package search implements the paper's Section V-B algorithm for locating
// optimal glitch parameters against an unprotected conditional branch: scan
// the (width, offset) grid with a coarse 10-cycle glitch covering the whole
// loop, then recursively narrow the temporal precision for the successful
// points until a parameter set achieves a 100% success rate (10 out of 10
// attempts).
package search

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"glitchlab/internal/glitcher"
	"glitchlab/internal/pipeline"
	"glitchlab/internal/runctl"
)

// Confirmations is the reliability bar: the paper requires 10/10 successes.
const Confirmations = 10

// coarseCycles is the width of the initial glitch, covering every
// instruction in the loop (the paper starts with a 10-cycle clock glitch).
const coarseCycles = 10

// Result reports the outcome of a parameter search.
type Result struct {
	Guard  glitcher.Guard
	Found  bool
	Params glitcher.Params // winning parameter point
	Cycle  int             // winning single clock cycle

	// Attempts and Successes count every glitch fired during the search,
	// like the paper's "7,031 successful glitches out of 36,869".
	Attempts  uint64
	Successes uint64
	// CoarseHits counts parameter points that succeeded in the coarse
	// phase.
	CoarseHits uint64
	// Elapsed is the wall-clock duration of the search. It is
	// diagnostic only and deliberately absent from String: rendered
	// results must be byte-identical across runs, resumes and daemon
	// replays, and wall time never is.
	Elapsed time.Duration
}

// String summarizes the result in the paper's terms.
func (r *Result) String() string {
	if !r.Found {
		return fmt.Sprintf("%s: no reliable parameters found (%d successes in %d attempts)",
			r.Guard, r.Successes, r.Attempts)
	}
	return fmt.Sprintf(
		"%s: width=%d%% offset=%d%% cycle=%d reliable %d/%d (%d successes in %d attempts)",
		r.Guard, r.Params.Width, r.Params.Offset, r.Cycle,
		Confirmations, Confirmations, r.Successes, r.Attempts)
}

// Searcher runs parameter searches against one guard.
type Searcher struct {
	Model  *glitcher.Model
	Guard  glitcher.Guard
	target *glitcher.Target
}

// New prepares a searcher for the guard.
func New(m *glitcher.Model, g glitcher.Guard) (*Searcher, error) {
	t, err := glitcher.NewTarget(g, g.SingleLoopSource())
	if err != nil {
		return nil, err
	}
	m.Obs.AttachTarget(t)
	return &Searcher{Model: m, Guard: g, target: t}, nil
}

func (s *Searcher) attempt(p glitcher.Params, inj pipeline.Injector, res *Result) bool {
	res.Attempts++
	r := s.target.Attempt(inj)
	s.Model.Obs.Attempt(p, r)
	if r.Reason == pipeline.StopHit {
		res.Successes++
		return true
	}
	return false
}

// Find scans for parameters achieving Confirmations/Confirmations
// reliability with a single-cycle glitch. It returns a Result whether or
// not a reliable point was found.
func (s *Searcher) Find() *Result {
	res, _ := s.FindRun(nil)
	return res
}

// FindRun is Find under a run controller: rn's cancellation is polled at
// every grid point, and an interrupted search returns the partial Result
// accumulated so far together with an error wrapping
// runctl.ErrInterrupted. The search itself is not checkpointed — its
// early-stop walk is seconds long, far below the checkpoint-unit
// granularity of the exhaustive scans.
func (s *Searcher) FindRun(rn *runctl.Run) (*Result, error) {
	res := &Result{Guard: s.Guard}
	start := time.Now()
	defer func() { res.Elapsed = time.Since(start) }()
	defer s.Model.Obs.Span("search.find", map[string]any{
		"guard": s.Guard.String(),
	}).End()

	glitcher.GridUntil(func(p glitcher.Params) bool {
		if rn.Err() != nil {
			return false
		}
		// Phase 1: coarse glitch across the whole loop.
		if !s.attempt(p, s.Model.RangePlan(p, 0, coarseCycles), res) {
			return true
		}
		res.CoarseHits++
		s.Model.Obs.Event("search.coarse_hit", map[string]any{
			"guard": s.Guard.String(), "width": p.Width, "offset": p.Offset,
		})
		// Phase 2: narrow to each individual clock cycle. The loop is one
		// guard iteration long: the pipeline's relative clock never wraps,
		// so a single-cycle plan at LoopCycles or beyond would alias into
		// the NEXT loop iteration's early cycles — the coarse window is
		// wider (coarseCycles > LoopCycles) only to guarantee full
		// coverage of the first iteration, not because later single
		// cycles are meaningful.
		for cycle := 0; cycle < glitcher.LoopCycles; cycle++ {
			if !s.attempt(p, s.Model.Plan(p, cycle), res) {
				continue
			}
			// Phase 3: confirm reliability 10/10.
			reliable := true
			for i := 1; i < Confirmations; i++ {
				if !s.attempt(p, s.Model.Plan(p, cycle), res) {
					reliable = false
					break
				}
			}
			if reliable {
				res.Found = true
				res.Params = p
				res.Cycle = cycle
				s.Model.Obs.Event("search.reliable", map[string]any{
					"guard": s.Guard.String(), "width": p.Width,
					"offset": p.Offset, "cycle": cycle,
				})
				// Stop the grid scan: iterating the remaining parameter
				// points after success would only inflate Attempts.
				return false
			}
		}
		return true
	})
	return res, rn.Err()
}

// Exhaust runs the coarse phase over the whole grid without early exit,
// counting every success — used to reproduce the paper's search-cost
// numbers (success counts across the full scan).
func (s *Searcher) Exhaust() *Result {
	res, _ := s.ExhaustWorkers(1, nil)
	return res
}

// exhaustRow is one width row's share of the exhaustive coarse scan — the
// checkpointed work unit. Fields are exported so rows JSON-round-trip
// exactly.
type exhaustRow struct {
	Attempts, Successes, CoarseHits uint64
}

// attemptSink is the per-attempt observation target: the model's serial
// observer or a worker's shard (both nil-safe).
type attemptSink interface {
	Attempt(p glitcher.Params, r pipeline.Result)
}

// ExhaustWorkers is Exhaust sharded across workers goroutines: the grid
// is split into width rows, each scanned on a private cloned Target with
// a private observer shard, and the per-row counts are summed — Attempts,
// Successes and CoarseHits are identical to the serial scan's. workers <=
// 1 runs the rows serially on the Searcher's own target.
//
// rn, when non-nil, threads the run controller through the scan: rows
// already in the checkpoint are skipped, completed rows are checkpointed,
// a panicking row is quarantined (the target rebuilt, the scan continues)
// and cancellation is polled between rows; an interrupted scan returns
// the counts of the completed rows with an error wrapping
// runctl.ErrInterrupted.
func (s *Searcher) ExhaustWorkers(workers int, rn *runctl.Run) (*Result, error) {
	res := &Result{Guard: s.Guard}
	start := time.Now()
	defer s.Model.Obs.Span("search.exhaust", map[string]any{
		"guard": s.Guard.String(),
	}).End()

	const rows = 2*glitcher.ParamRange + 1
	rowKey := func(ri int) string {
		return fmt.Sprintf("exhaust guard=%s width=%d", s.Guard, ri-glitcher.ParamRange)
	}
	rowRes := make([]exhaustRow, rows)
	haveRow := make([]bool, rows)
	var pending []int
	for ri := 0; ri < rows; ri++ {
		if rn.Lookup(rowKey(ri), &rowRes[ri]) {
			haveRow[ri] = true
			continue
		}
		pending = append(pending, ri)
	}

	scanRow := func(tgt *glitcher.Target, sink attemptSink, ri int) error {
		key := rowKey(ri)
		return rn.Protect(key, func() error {
			var row exhaustRow
			lo := ri - glitcher.ParamRange
			glitcher.GridBand(lo, lo+1, func(p glitcher.Params) bool {
				row.Attempts++
				r := tgt.Attempt(s.Model.RangePlan(p, 0, coarseCycles))
				sink.Attempt(p, r)
				if r.Reason == pipeline.StopHit {
					row.Successes++
					row.CoarseHits++
				}
				return true
			})
			if err := rn.Complete(key, row); err != nil {
				return err
			}
			rowRes[ri] = row
			haveRow[ri] = true
			return nil
		})
	}

	if workers <= 1 {
		tgt := s.target
		for _, ri := range pending {
			if rn.Err() != nil {
				break
			}
			if err := scanRow(tgt, s.Model.Obs, ri); err != nil {
				var pe *runctl.PanicError
				if errors.As(err, &pe) {
					// The board may be wedged mid-attempt; clone a fresh
					// one and leave the row quarantined.
					ws, nerr := New(s.Model, s.Guard)
					if nerr != nil {
						return nil, nerr
					}
					tgt = ws.target
					continue
				}
				return nil, err
			}
		}
	} else {
		if workers > len(pending) {
			workers = len(pending)
		}
		var next atomic.Int64
		var firstErr atomic.Pointer[error]
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ws, err := New(s.Model, s.Guard)
				if err != nil {
					firstErr.CompareAndSwap(nil, &err)
					return
				}
				shard := s.Model.Obs.Shard()
				defer shard.Flush()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(pending) || firstErr.Load() != nil || rn.Err() != nil {
						return
					}
					if err := scanRow(ws.target, shard, pending[i]); err != nil {
						var pe *runctl.PanicError
						if errors.As(err, &pe) {
							if ws, err = New(s.Model, s.Guard); err != nil {
								firstErr.CompareAndSwap(nil, &err)
								return
							}
							continue
						}
						firstErr.CompareAndSwap(nil, &err)
						return
					}
				}
			}()
		}
		wg.Wait()
		if errp := firstErr.Load(); errp != nil {
			return nil, *errp
		}
	}

	for ri, row := range rowRes {
		if !haveRow[ri] {
			continue
		}
		res.Attempts += row.Attempts
		res.Successes += row.Successes
		res.CoarseHits += row.CoarseHits
	}
	res.Elapsed = time.Since(start)
	res.Found = res.CoarseHits > 0
	return res, rn.Err()
}
