// Package search implements the paper's Section V-B algorithm for locating
// optimal glitch parameters against an unprotected conditional branch: scan
// the (width, offset) grid with a coarse 10-cycle glitch covering the whole
// loop, then recursively narrow the temporal precision for the successful
// points until a parameter set achieves a 100% success rate (10 out of 10
// attempts).
package search

import (
	"fmt"
	"sync"
	"time"

	"glitchlab/internal/glitcher"
	"glitchlab/internal/pipeline"
)

// Confirmations is the reliability bar: the paper requires 10/10 successes.
const Confirmations = 10

// coarseCycles is the width of the initial glitch, covering every
// instruction in the loop (the paper starts with a 10-cycle clock glitch).
const coarseCycles = 10

// Result reports the outcome of a parameter search.
type Result struct {
	Guard  glitcher.Guard
	Found  bool
	Params glitcher.Params // winning parameter point
	Cycle  int             // winning single clock cycle

	// Attempts and Successes count every glitch fired during the search,
	// like the paper's "7,031 successful glitches out of 36,869".
	Attempts  uint64
	Successes uint64
	// CoarseHits counts parameter points that succeeded in the coarse
	// phase.
	CoarseHits uint64
	// Elapsed is the wall-clock duration of the search.
	Elapsed time.Duration
}

// String summarizes the result in the paper's terms.
func (r *Result) String() string {
	if !r.Found {
		return fmt.Sprintf("%s: no reliable parameters found (%d successes in %d attempts)",
			r.Guard, r.Successes, r.Attempts)
	}
	return fmt.Sprintf(
		"%s: width=%d%% offset=%d%% cycle=%d reliable %d/%d (%d successes in %d attempts, %s)",
		r.Guard, r.Params.Width, r.Params.Offset, r.Cycle,
		Confirmations, Confirmations, r.Successes, r.Attempts, r.Elapsed)
}

// Searcher runs parameter searches against one guard.
type Searcher struct {
	Model  *glitcher.Model
	Guard  glitcher.Guard
	target *glitcher.Target
}

// New prepares a searcher for the guard.
func New(m *glitcher.Model, g glitcher.Guard) (*Searcher, error) {
	t, err := glitcher.NewTarget(g, g.SingleLoopSource())
	if err != nil {
		return nil, err
	}
	m.Obs.AttachTarget(t)
	return &Searcher{Model: m, Guard: g, target: t}, nil
}

func (s *Searcher) attempt(p glitcher.Params, inj pipeline.Injector, res *Result) bool {
	res.Attempts++
	r := s.target.Attempt(inj)
	s.Model.Obs.Attempt(p, r)
	if r.Reason == pipeline.StopHit {
		res.Successes++
		return true
	}
	return false
}

// Find scans for parameters achieving Confirmations/Confirmations
// reliability with a single-cycle glitch. It returns a Result whether or
// not a reliable point was found.
func (s *Searcher) Find() *Result {
	res := &Result{Guard: s.Guard}
	start := time.Now()
	defer func() { res.Elapsed = time.Since(start) }()
	defer s.Model.Obs.Span("search.find", map[string]any{
		"guard": s.Guard.String(),
	}).End()

	glitcher.GridUntil(func(p glitcher.Params) bool {
		// Phase 1: coarse glitch across the whole loop.
		if !s.attempt(p, s.Model.RangePlan(p, 0, coarseCycles), res) {
			return true
		}
		res.CoarseHits++
		s.Model.Obs.Event("search.coarse_hit", map[string]any{
			"guard": s.Guard.String(), "width": p.Width, "offset": p.Offset,
		})
		// Phase 2: narrow to each individual clock cycle. The loop is one
		// guard iteration long: the pipeline's relative clock never wraps,
		// so a single-cycle plan at LoopCycles or beyond would alias into
		// the NEXT loop iteration's early cycles — the coarse window is
		// wider (coarseCycles > LoopCycles) only to guarantee full
		// coverage of the first iteration, not because later single
		// cycles are meaningful.
		for cycle := 0; cycle < glitcher.LoopCycles; cycle++ {
			if !s.attempt(p, s.Model.Plan(p, cycle), res) {
				continue
			}
			// Phase 3: confirm reliability 10/10.
			reliable := true
			for i := 1; i < Confirmations; i++ {
				if !s.attempt(p, s.Model.Plan(p, cycle), res) {
					reliable = false
					break
				}
			}
			if reliable {
				res.Found = true
				res.Params = p
				res.Cycle = cycle
				s.Model.Obs.Event("search.reliable", map[string]any{
					"guard": s.Guard.String(), "width": p.Width,
					"offset": p.Offset, "cycle": cycle,
				})
				// Stop the grid scan: iterating the remaining parameter
				// points after success would only inflate Attempts.
				return false
			}
		}
		return true
	})
	return res
}

// Exhaust runs the coarse phase over the whole grid without early exit,
// counting every success — used to reproduce the paper's search-cost
// numbers (success counts across the full scan).
func (s *Searcher) Exhaust() *Result {
	res, _ := s.ExhaustWorkers(1)
	return res
}

// ExhaustWorkers is Exhaust sharded across workers goroutines: the grid
// is split into contiguous width bands, each scanned by a worker with its
// own cloned Target and observer shard, and the per-band counts are
// summed — Attempts, Successes and CoarseHits are identical to the
// serial scan's. workers <= 1 runs the serial path on the Searcher's own
// target.
func (s *Searcher) ExhaustWorkers(workers int) (*Result, error) {
	res := &Result{Guard: s.Guard}
	start := time.Now()
	defer s.Model.Obs.Span("search.exhaust", map[string]any{
		"guard": s.Guard.String(),
	}).End()

	bands := glitcher.WidthBands(workers)
	if len(bands) == 1 {
		glitcher.Grid(func(p glitcher.Params) {
			if s.attempt(p, s.Model.RangePlan(p, 0, coarseCycles), res) {
				res.CoarseHits++
			}
		})
	} else {
		parts := make([]Result, len(bands))
		errs := make([]error, len(bands))
		var wg sync.WaitGroup
		for bi, band := range bands {
			wg.Add(1)
			go func(bi, lo, hi int) {
				defer wg.Done()
				ws, err := New(s.Model, s.Guard)
				if err != nil {
					errs[bi] = err
					return
				}
				shard := s.Model.Obs.Shard()
				defer shard.Flush()
				part := &parts[bi]
				glitcher.GridBand(lo, hi, func(p glitcher.Params) bool {
					part.Attempts++
					r := ws.target.Attempt(s.Model.RangePlan(p, 0, coarseCycles))
					shard.Attempt(p, r)
					if r.Reason == pipeline.StopHit {
						part.Successes++
						part.CoarseHits++
					}
					return true
				})
			}(bi, band[0], band[1])
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		for _, part := range parts {
			res.Attempts += part.Attempts
			res.Successes += part.Successes
			res.CoarseHits += part.CoarseHits
		}
	}
	res.Elapsed = time.Since(start)
	res.Found = res.CoarseHits > 0
	return res, nil
}
