package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGlitchdHammer is the satellite load test (ci.sh runs it under
// -race): a tiny admission queue is flooded with concurrent mixed
// submissions while scrapers hammer the observability endpoints. Over-cap
// submissions must be rejected promptly with 429 — never hung — the
// health endpoint must stay consistent mid-flight, and a second wave of
// identical submissions must be served entirely from the result cache.
func TestGlitchdHammer(t *testing.T) {
	extraSlow, wave := 2, 12
	if !testing.Short() {
		extraSlow, wave = 4, 32
	}
	const queueCap = 3

	d := openTestDaemon(t, Config{QueueCap: queueCap, Executors: 2, CacheBytes: 4 << 20})
	srv := startServer(t, d)
	client := &http.Client{Timeout: 60 * time.Second}

	slow := func(seed int) Spec { // ~200ms of engine work per job
		return Spec{Kind: KindScan, Exp: "table1a", Seed: uint64(seed + 1)}
	}
	post := func(spec Spec) (int, submitResponse) {
		t.Helper()
		resp, err := client.Post(srv.URL+"/v1/jobs", "application/json",
			strings.NewReader(specJSON(t, spec)))
		if err != nil {
			t.Fatalf("submission hung or failed: %v", err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		var sub submitResponse
		_ = json.Unmarshal(raw, &sub)
		return resp.StatusCode, sub
	}

	// Mid-flight scrapers: the shared mux keeps serving, and the health
	// numbers never violate the admission invariants.
	stop := make(chan struct{})
	var scrapes atomic.Int64
	var scrapeWG sync.WaitGroup
	for _, path := range []string{"/metrics", "/healthz", "/v1/jobs", "/v1/jobs?format=text"} {
		scrapeWG.Add(1)
		go func(path string) {
			defer scrapeWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get(srv.URL + path)
				if err != nil {
					t.Errorf("scrape %s: %v", path, err)
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("scrape %s = %d mid-flight", path, resp.StatusCode)
					return
				}
				if path == "/healthz" {
					var h struct {
						Queued   int `json:"queued"`
						Running  int `json:"running"`
						QueueCap int `json:"queue_cap"`
					}
					if err := json.Unmarshal(raw, &h); err != nil {
						t.Errorf("healthz JSON: %v", err)
						return
					}
					if h.Queued+h.Running > h.QueueCap || h.Running > 2 {
						t.Errorf("healthz inconsistent mid-flight: %+v", h)
						return
					}
				}
				scrapes.Add(1)
				time.Sleep(time.Millisecond)
			}
		}(path)
	}

	// Phase 1 — deterministic backpressure: queueCap+2 distinct slow jobs
	// submitted back-to-back; the queue is full long before any finishes.
	var phase1 []Spec
	for i := 0; i < queueCap+extraSlow; i++ {
		phase1 = append(phase1, slow(i))
	}
	admitted, rejected := 0, 0
	for _, spec := range phase1 {
		switch code, _ := post(spec); code {
		case http.StatusAccepted:
			admitted++
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Fatalf("phase 1 submission returned %d", code)
		}
	}
	if admitted < queueCap || rejected == 0 {
		t.Fatalf("phase 1: admitted %d rejected %d with cap %d; queue-full backpressure broken",
			admitted, rejected, queueCap)
	}

	// Phase 2 — concurrent mixed flood. Every response must be a prompt
	// 200 (hit/coalesced), 202 (admitted) or 429 (full); anything else —
	// including a hang — fails.
	pool := []Spec{campaignSpec, evalSpec, scanSpec,
		{Kind: KindCampaign, Model: "or", MaxFlips: 1}, slow(0), slow(1)}
	var n202, n200hit, n200coal, n429 atomic.Int64
	var jobIDs sync.Map
	var floodWG sync.WaitGroup
	for i := 0; i < wave; i++ {
		floodWG.Add(1)
		go func(i int) {
			defer floodWG.Done()
			code, sub := post(pool[i%len(pool)])
			switch {
			case code == http.StatusAccepted:
				n202.Add(1)
				jobIDs.Store(sub.Job.ID, struct{}{})
			case code == http.StatusOK && sub.CacheHit:
				n200hit.Add(1)
			case code == http.StatusOK && sub.Coalesced:
				n200coal.Add(1)
				jobIDs.Store(sub.Job.ID, struct{}{})
			case code == http.StatusTooManyRequests:
				n429.Add(1)
			default:
				t.Errorf("flood submission %d returned %d (hit=%v coalesced=%v)",
					i, code, sub.CacheHit, sub.Coalesced)
			}
		}(i)
	}
	floodWG.Wait()
	if got := n202.Load() + n200hit.Load() + n200coal.Load() + n429.Load(); got != int64(wave) {
		t.Fatalf("flood accounting: %d classified of %d", got, wave)
	}

	// Drain everything admitted so far.
	jobIDs.Range(func(key, _ any) bool {
		if !d.WaitTerminal(key.(string), waitTimeout) {
			t.Fatalf("job %s never finished", key)
		}
		return true
	})

	// Phase 3 — second wave: every distinct spec retried until it has
	// executed once, then asserted to hit the cache with identical bytes.
	distinct := append(append([]Spec(nil), phase1...), pool...)
	bodies := map[string][]byte{}
	for _, spec := range distinct {
		key := mustNormalize(t, spec).CacheKey(d.Stamp())
		if _, dup := bodies[key]; dup {
			continue
		}
		var id string
		for { // a client following Retry-After
			code, sub := post(spec)
			if code == http.StatusTooManyRequests {
				time.Sleep(20 * time.Millisecond)
				continue
			}
			id = sub.Job.ID
			break
		}
		if !d.WaitTerminal(id, waitTimeout) {
			t.Fatalf("job %s never finished", id)
		}
		body, err := d.Result(id)
		if err != nil {
			t.Fatalf("result %s: %v", id, err)
		}
		bodies[key] = body
	}
	hits := 0
	for key, want := range bodies {
		var spec Spec
		for _, s := range distinct {
			if mustNormalize(t, s).CacheKey(d.Stamp()) == key {
				spec = s
				break
			}
		}
		code, sub := post(spec)
		if code != http.StatusOK || !sub.CacheHit {
			t.Errorf("second wave %+v: code %d hit %v, want cached", spec, code, sub.CacheHit)
			continue
		}
		hits++
		got, err := d.Result(sub.Job.ID)
		if err != nil || !bytes.Equal(got, want) {
			t.Errorf("second wave %+v served %d bytes (err %v), want %d byte-identical",
				spec, len(got), err, len(want))
		}
	}
	if hits != len(bodies) {
		t.Errorf("second-wave cache-hit ratio %d/%d, want 100%%", hits, len(bodies))
	}

	close(stop)
	scrapeWG.Wait()
	if scrapes.Load() == 0 {
		t.Error("scrapers never completed a read mid-flight")
	}

	// Final ledger: the daemon's counters reconcile with what clients saw,
	// nothing failed, and the queue fully drained.
	reg := d.Registry()
	if n := reg.Counter(MetricJobsFailed).Value(); n != 0 {
		t.Errorf("%d jobs failed under load", n)
	}
	if sub, done := reg.Counter(MetricJobsSubmitted).Value(), reg.Counter(MetricJobsCompleted).Value(); sub != done {
		t.Errorf("submitted %d != completed %d after drain", sub, done)
	}
	if q, r := reg.Gauge(MetricQueueDepth).Value(), reg.Gauge(MetricJobsRunning).Value(); q != 0 || r != 0 {
		t.Errorf("queue_depth %v / running %v after drain, want 0/0", q, r)
	}
	if n := reg.Counter(MetricJobsRejected).Value(); n < uint64(rejected) {
		t.Errorf("rejected counter %d < %d observed 429s", n, rejected)
	}
	if n := reg.Gauge(MetricCacheEntries).Value(); int(n) != len(bodies) {
		t.Errorf("cache holds %v entries, want %d (one per distinct spec)", n, len(bodies))
	}
}
