package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// capturedSleeps swaps the client's real wait for an instant, recorded
// one, so retry tests assert on the exact delays without wall time.
type capturedSleeps struct {
	mu sync.Mutex
	ds []time.Duration
}

func (c *capturedSleeps) sleep(_ context.Context, d time.Duration) error {
	c.mu.Lock()
	c.ds = append(c.ds, d)
	c.mu.Unlock()
	return nil
}

func (c *capturedSleeps) all() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.ds...)
}

func newTestClient(t *testing.T, srv *httptest.Server, cfg Config) (*Client, *capturedSleeps) {
	t.Helper()
	cap := &capturedSleeps{}
	cfg.BaseURL = srv.URL
	cfg.sleep = cap.sleep
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c, cap
}

func submissionJSON(id string) string {
	return fmt.Sprintf(`{"job":{"id":%q,"state":"queued"}}`, id)
}

func TestSubmitRetriesRetryAfter(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
		case 2:
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
		default:
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprint(w, submissionJSON("j000001"))
		}
	}))
	defer srv.Close()

	c, slept := newTestClient(t, srv, Config{BaseDelay: 10 * time.Millisecond, MaxDelay: 2 * time.Second})
	sub, err := c.Submit(context.Background(), map[string]string{"kind": "scan", "exp": "search"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if sub.Job.ID != "j000001" {
		t.Fatalf("job id %q", sub.Job.ID)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("attempts = %d, want 3 (429 then 503 then 202)", n)
	}
	ds := slept.all()
	if len(ds) != 2 {
		t.Fatalf("sleeps = %v, want 2", ds)
	}
	for i, d := range ds {
		// Retry-After 1s dominates the 10ms exponential base; the jitter
		// lands in (500ms, 1s].
		if d <= 500*time.Millisecond || d > time.Second {
			t.Fatalf("sleep %d = %v, want in (500ms, 1s] honoring Retry-After", i, d)
		}
	}
}

func TestRetryAfterCappedAtMaxDelay(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "3600") // a confused server
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, submissionJSON("j1"))
	}))
	defer srv.Close()

	c, slept := newTestClient(t, srv, Config{BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond})
	if _, err := c.Submit(context.Background(), map[string]string{}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ds := slept.all()
	if len(ds) != 1 || ds[0] > 50*time.Millisecond {
		t.Fatalf("sleeps = %v, want one sleep capped at MaxDelay", ds)
	}
}

func TestBackoffDeterministicPerSeed(t *testing.T) {
	mk := func(seed uint64) []time.Duration {
		c, err := New(Config{BaseURL: "http://x", JitterSeed: seed,
			BaseDelay: 10 * time.Millisecond, MaxDelay: time.Second})
		if err != nil {
			t.Fatal(err)
		}
		var ds []time.Duration
		for a := 0; a < 10; a++ {
			ds = append(ds, c.delay(a, 0))
		}
		return ds
	}
	a, b, other := mk(7), mk(7), mk(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at attempt %d: %v vs %v", i, a[i], b[i])
		}
		lo := 10 * time.Millisecond << uint(i) / 2
		hi := 10 * time.Millisecond << uint(i)
		if hi > time.Second || hi <= 0 {
			hi = time.Second
			lo = hi / 2
		}
		if a[i] <= lo || a[i] > hi {
			t.Fatalf("attempt %d delay %v outside (%v, %v]", i, a[i], lo, hi)
		}
	}
	same := true
	for i := range a {
		if a[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter sequences")
	}
}

func TestMaxAttemptsBoundsRetries(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()

	c, _ := newTestClient(t, srv, Config{MaxAttempts: 3, BaseDelay: time.Millisecond})
	_, err := c.Submit(context.Background(), map[string]string{})
	if err == nil || !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Fatalf("err = %v, want giving-up error", err)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("attempts = %d, want 3", n)
	}
}

func TestContextDeadlineBoundsRetryLoop(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c, err := New(Config{BaseURL: srv.URL, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	_, err = c.Submit(ctx, map[string]string{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestNonRetryable4xxSurfacesImmediately(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":"invalid job spec"}`)
	}))
	defer srv.Close()

	c, slept := newTestClient(t, srv, Config{})
	_, err := c.Submit(context.Background(), map[string]string{"kind": "nope"})
	var ae *apiError
	if !errors.As(err, &ae) || ae.Code != http.StatusBadRequest {
		t.Fatalf("err = %v, want apiError 400", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("attempts = %d, want 1 (400 is not retryable)", n)
	}
	if ds := slept.all(); len(ds) != 0 {
		t.Fatalf("slept %v on a non-retryable error", ds)
	}
}

// fakeDaemon scripts the job API surface Run exercises: each submission
// mints the next job id, and per-job result responses are scripted.
type fakeDaemon struct {
	mu      sync.Mutex
	submits int
	// results maps job id to a queue of canned responses.
	results map[string][]fakeResp
}

type fakeResp struct {
	code int
	body string
}

func (f *fakeDaemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, _ *http.Request) {
		f.mu.Lock()
		f.submits++
		id := fmt.Sprintf("j%06d", f.submits)
		f.mu.Unlock()
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, submissionJSON(id))
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		f.mu.Lock()
		q := f.results[id]
		var resp fakeResp
		if len(q) == 0 {
			resp = fakeResp{code: http.StatusNotFound, body: `{"error":"unknown job"}`}
		} else {
			resp = q[0]
			if len(q) > 1 {
				f.results[id] = q[1:]
			}
		}
		f.mu.Unlock()
		w.WriteHeader(resp.code)
		fmt.Fprint(w, resp.body)
	})
	return mux
}

func TestRunResubmitsWhenJobVanishes(t *testing.T) {
	// First job 404s (daemon lost its state); the resubmission completes.
	f := &fakeDaemon{results: map[string][]fakeResp{
		"j000002": {{code: http.StatusOK, body: "payload\n"}},
	}}
	srv := httptest.NewServer(f.handler())
	defer srv.Close()

	c, _ := newTestClient(t, srv, Config{MaxAttempts: 5})
	body, err := c.Run(context.Background(), map[string]string{"kind": "scan"})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if string(body) != "payload\n" {
		t.Fatalf("body %q", body)
	}
	if f.submits != 2 {
		t.Fatalf("submits = %d, want 2 (resubmit after 404)", f.submits)
	}
}

func TestRunResubmitsRetryableFailure(t *testing.T) {
	retryableStatus := `{"id":"j000001","state":"failed","error":"chaos write: input/output error","retryable":true}`
	f := &fakeDaemon{results: map[string][]fakeResp{
		"j000001": {{code: http.StatusConflict, body: retryableStatus}},
		"j000002": {{code: http.StatusOK, body: "ok\n"}},
	}}
	srv := httptest.NewServer(f.handler())
	defer srv.Close()

	c, _ := newTestClient(t, srv, Config{MaxAttempts: 5})
	body, err := c.Run(context.Background(), map[string]string{"kind": "scan"})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if string(body) != "ok\n" || f.submits != 2 {
		t.Fatalf("body %q after %d submits, want ok after 2", body, f.submits)
	}
}

func TestRunSurfacesPermanentFailure(t *testing.T) {
	permanent := `{"id":"j000001","state":"failed","error":"unknown model \"nand\""}`
	f := &fakeDaemon{results: map[string][]fakeResp{
		"j000001": {{code: http.StatusConflict, body: permanent}},
	}}
	srv := httptest.NewServer(f.handler())
	defer srv.Close()

	c, _ := newTestClient(t, srv, Config{MaxAttempts: 5})
	_, err := c.Run(context.Background(), map[string]string{"kind": "campaign", "model": "nand"})
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("err = %v, want *JobError", err)
	}
	if je.JobID != "j000001" || !strings.Contains(je.Message, "nand") {
		t.Fatalf("JobError = %+v", je)
	}
	if f.submits != 1 {
		t.Fatalf("submits = %d, want 1 (permanent failures are not retried)", f.submits)
	}
}

// eventsDaemon mirrors the server's paging contract (clamp past-end,
// snap mid-record offsets back to a boundary) over a fixed stream.
type eventsDaemon struct {
	stream []byte
	state  string
	mu     sync.Mutex
}

func (e *eventsDaemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		e.mu.Lock()
		data := append([]byte(nil), e.stream...)
		e.mu.Unlock()
		offset, _ := strconv.ParseInt(r.URL.Query().Get("offset"), 10, 64)
		if offset > int64(len(data)) {
			offset = int64(len(data))
		}
		if offset > 0 && offset < int64(len(data)) && data[offset-1] != '\n' {
			for offset > 0 && data[offset-1] != '\n' {
				offset--
			}
		}
		chunk := data[offset:]
		w.Header().Set(NextOffsetHeader, strconv.FormatInt(offset+int64(len(chunk)), 10))
		_, _ = w.Write(chunk)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, _ *http.Request) {
		e.mu.Lock()
		state := e.state
		e.mu.Unlock()
		fmt.Fprintf(w, `{"id":"j1","state":%q}`, state)
	})
	return mux
}

func TestEventsStreamAndResume(t *testing.T) {
	e := &eventsDaemon{
		stream: []byte(`{"n":1}` + "\n" + `{"n":2}` + "\n" + `{"n":3}` + "\n"),
		state:  "done",
	}
	srv := httptest.NewServer(e.handler())
	defer srv.Close()

	c, _ := newTestClient(t, srv, Config{})
	var got []string
	next, err := c.Events(context.Background(), "j1", 0, func(ev Event) error {
		got = append(got, string(ev))
		return nil
	})
	if err != nil {
		t.Fatalf("Events: %v", err)
	}
	if next != int64(len(e.stream)) {
		t.Fatalf("next = %d, want %d", next, len(e.stream))
	}
	if len(got) != 3 || got[0] != `{"n":1}` || got[2] != `{"n":3}` {
		t.Fatalf("records = %v", got)
	}

	// Resume mid-record (offset 10 is inside record 2): the server snaps
	// back to the record boundary, so record 2 arrives whole (a duplicate
	// of nothing here — we start fresh) and never torn.
	got = got[:0]
	next, err = c.Events(context.Background(), "j1", 10, func(ev Event) error {
		got = append(got, string(ev))
		return nil
	})
	if err != nil {
		t.Fatalf("Events resume: %v", err)
	}
	if len(got) != 2 || got[0] != `{"n":2}` {
		t.Fatalf("resumed records = %v, want whole records from the boundary", got)
	}
	if next != int64(len(e.stream)) {
		t.Fatalf("resumed next = %d, want %d", next, len(e.stream))
	}

	// Resume past the end (the stream shrank under us): explicit empty
	// page, terminal job, clean return at the clamped offset.
	next, err = c.Events(context.Background(), "j1", int64(len(e.stream))+500, func(Event) error {
		t.Fatal("no records expected past end")
		return nil
	})
	if err != nil || next != int64(len(e.stream)) {
		t.Fatalf("past-end resume: next=%d err=%v", next, err)
	}
}
