package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"glitchlab/internal/chaos"
	"glitchlab/internal/obs"
	"glitchlab/internal/serve"
)

// TestClientHammerUnderChaos is the end-to-end resilience proof: a pool
// of concurrent clients drives a mixed job load through a daemon whose
// filesystem injects seeded ENOSPC/EIO/torn-write/dropped-fsync faults,
// behind a deliberately tiny admission queue. Jobs fail retryably, the
// daemon may degrade and recover, submissions bounce off 429/503 — and
// every client must still complete every job with bytes identical to a
// direct fault-free engine run. Run under -race in CI.
func TestClientHammerUnderChaos(t *testing.T) {
	specs := []serve.Spec{
		{Kind: serve.KindCampaign, Model: "and", MaxFlips: 2},
		{Kind: serve.KindCampaign, Model: "xor", MaxFlips: 2},
		{Kind: serve.KindScan, Exp: "search"},
		{Kind: serve.KindEval, Exp: "table5"},
	}
	goldens := make([][]byte, len(specs))
	for i, s := range specs {
		n, err := s.Normalize()
		if err != nil {
			t.Fatalf("normalize %d: %v", i, err)
		}
		var buf bytes.Buffer
		if err := serve.Exec(n, serve.Env{Workers: 1}, &buf); err != nil {
			t.Fatalf("golden %d: %v", i, err)
		}
		goldens[i] = buf.Bytes()
	}

	inj := chaos.NewInjector(chaos.OS{}, chaos.Seeded{Seed: 42, Every: 31}).WithSeed(42)
	d, err := serve.Open(serve.Config{
		StateDir:      t.TempDir(),
		FS:            inj,
		QueueCap:      3, // small on purpose: clients must absorb 429s
		Executors:     2,
		Reg:           obs.NewRegistry(),
		ProbeInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer d.Close()
	mux := d.Registry().Mux()
	d.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	clients := 4
	rounds := 3
	if testing.Short() {
		clients, rounds = 2, 2
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	errc := make(chan error, clients*rounds*len(specs))
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := New(Config{
				BaseURL:    srv.URL,
				BaseDelay:  2 * time.Millisecond,
				MaxDelay:   100 * time.Millisecond,
				JitterSeed: uint64(ci + 1), // decorrelated herd
			})
			if err != nil {
				errc <- err
				return
			}
			for r := 0; r < rounds; r++ {
				for si := range specs {
					i := (si + ci + r) % len(specs)
					body, err := c.Run(ctx, specs[i])
					if err != nil {
						errc <- fmt.Errorf("client %d round %d spec %d: %w", ci, r, i, err)
						return
					}
					if !bytes.Equal(body, goldens[i]) {
						errc <- fmt.Errorf("client %d round %d spec %d: %d bytes, want %d (corrupt result)",
							ci, r, i, len(body), len(goldens[i]))
						return
					}
				}
			}
		}(ci)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	// The stream surface under the same chaos: submit once more, follow
	// the event stream to terminal, and require every record to be whole,
	// parseable JSON (torn tails and mid-record offsets never leak).
	c, err := New(Config{BaseURL: srv.URL, BaseDelay: 2 * time.Millisecond,
		MaxDelay: 100 * time.Millisecond, JitterSeed: 99})
	if err != nil {
		t.Fatal(err)
	}
	// Event records are written best-effort under chaos (a faulted append
	// drops the record, never tears it), so a cache-hit job's single
	// record can legitimately be lost — resubmit until one stream has
	// records; every record that does arrive must be whole.
	records := 0
	for attempt := 0; records == 0 && attempt < 20; attempt++ {
		sub, err := c.Submit(ctx, specs[0])
		if err != nil {
			t.Fatalf("stream submit: %v", err)
		}
		if _, err := c.Events(ctx, sub.Job.ID, 0, func(ev Event) error {
			var rec map[string]any
			if jerr := json.Unmarshal(ev, &rec); jerr != nil {
				return fmt.Errorf("torn/unparseable event record %q: %w", ev, jerr)
			}
			records++
			return nil
		}); err != nil {
			t.Fatalf("Events: %v", err)
		}
	}
	if records == 0 {
		t.Fatal("event stream delivered no records in 20 attempts")
	}
	t.Logf("hammer: %d clients x %d rounds x %d specs completed; %d event records streamed; %v fs ops",
		clients, rounds, len(specs), records, inj.Ops())
}
