// Package client is the resilient Go client for a glitchd daemon. It
// wraps the HTTP job API with the retry discipline a flaky network and a
// fault-riddled daemon demand:
//
//   - capped exponential backoff with seeded, deterministic jitter, so a
//     thundering herd of clients decorrelates without any shared state;
//   - Retry-After honored on 429 (queue full) and 503 (draining or
//     degraded), capped at MaxDelay;
//   - idempotent resubmission: glitchd keys results by the normalized
//     spec + engine stamp, so resubmitting an identical spec either
//     coalesces onto the in-flight job or hits the result cache —
//     retrying a Submit can never double-execute;
//   - retryable-failure awareness: a job that failed on a disk fault
//     (Status.Retryable) is resubmitted, one that failed on its spec is
//     surfaced immediately as a *JobError;
//   - event-stream resume: Events re-reads from the last byte offset the
//     server acknowledged, accepting the server's backward snap to a
//     record boundary after a daemon crash rewrote the stream.
//
// Every method takes a context; deadlines and cancellation bound the
// whole retry loop, not just one attempt.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// NextOffsetHeader mirrors serve.NextOffsetHeader (the package does not
// import serve: the client must stay usable against a remote daemon
// without linking the engines).
const NextOffsetHeader = "X-Glitchd-Next-Offset"

// Config shapes a Client. Zero values select the documented defaults.
type Config struct {
	// BaseURL of the daemon, e.g. "http://127.0.0.1:8473". Required.
	BaseURL string
	// HTTP is the underlying client. Default http.DefaultClient.
	HTTP *http.Client
	// BaseDelay seeds the exponential backoff (doubling per retry).
	// Default 50ms.
	BaseDelay time.Duration
	// MaxDelay caps each backoff step and any server Retry-After hint.
	// Default 2s.
	MaxDelay time.Duration
	// MaxAttempts bounds retries per operation; 0 means retry until the
	// context expires.
	MaxAttempts int
	// JitterSeed makes the jitter sequence deterministic for tests; 0
	// derives a constant default (clients decorrelate by seed choice).
	JitterSeed uint64

	// sleep replaces the retry delay (tests capture and skip waits).
	sleep func(ctx context.Context, d time.Duration) error
}

// Client talks to one glitchd daemon. Safe for concurrent use; the
// jitter draw is the only mutable state and is seeded per call chain.
type Client struct {
	cfg Config
}

// New validates cfg and returns a Client.
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("client: Config.BaseURL is required")
	}
	cfg.BaseURL = strings.TrimRight(cfg.BaseURL, "/")
	if cfg.HTTP == nil {
		cfg.HTTP = http.DefaultClient
	}
	if cfg.BaseDelay <= 0 {
		cfg.BaseDelay = 50 * time.Millisecond
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 2 * time.Second
	}
	if cfg.JitterSeed == 0 {
		cfg.JitterSeed = 0x9E3779B97F4A7C15
	}
	if cfg.sleep == nil {
		cfg.sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		}
	}
	return &Client{cfg: cfg}, nil
}

// Status is the wire view of a job (mirror of serve.Status).
type Status struct {
	ID          string          `json:"id"`
	Kind        string          `json:"kind"`
	State       string          `json:"state"`
	Spec        json.RawMessage `json:"spec"`
	Key         string          `json:"key"`
	UnitsDone   uint64          `json:"units_done"`
	UnitsLoaded uint64          `json:"units_loaded,omitempty"`
	CacheHit    bool            `json:"cache_hit,omitempty"`
	Resumed     bool            `json:"resumed,omitempty"`
	ResultSize  int64           `json:"result_size,omitempty"`
	Error       string          `json:"error,omitempty"`
	Retryable   bool            `json:"retryable,omitempty"`
}

// Terminal reports whether the state is final for the serving daemon.
func (s Status) Terminal() bool { return s.State == "done" || s.State == "failed" }

// Submission is the decoded POST /v1/jobs response.
type Submission struct {
	Job       Status `json:"job"`
	CacheHit  bool   `json:"cache_hit,omitempty"`
	Coalesced bool   `json:"coalesced,omitempty"`
}

// JobError is a permanent job failure: the daemon executed (or rejected)
// the spec and the failure is attributable to it, not the environment.
type JobError struct {
	JobID   string
	Message string
}

func (e *JobError) Error() string {
	return fmt.Sprintf("client: job %s failed: %s", e.JobID, e.Message)
}

// apiError is a non-2xx response that is not worth retrying.
type apiError struct {
	Code int
	Body string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("client: HTTP %d: %s", e.Code, strings.TrimSpace(e.Body))
}

// retryDecision classifies one attempt's outcome.
type retryDecision struct {
	retry bool
	// after is the server's Retry-After hint (0 = none).
	after time.Duration
}

// jitter is one step of the client's deterministic backoff sequence: a
// stateless mix of (seed, attempt), same construction as chaos.Mix (kept
// local so the client does not link the injector).
func jitter(seed, n uint64) uint64 {
	x := seed ^ (n+1)*0x9E3779B97F4A7C15
	x = x*6364136223846793005 + 1442695040888963407
	x ^= x >> 29
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 32
	return x
}

// delay computes the attempt-th backoff: exponential from BaseDelay,
// capped at MaxDelay, jittered into (d/2, d]. A server Retry-After hint
// overrides the exponential base when larger, still capped at MaxDelay —
// the cap keeps a confused server from stalling the client forever.
func (c *Client) delay(attempt int, after time.Duration) time.Duration {
	d := c.cfg.BaseDelay << uint(attempt)
	if d > c.cfg.MaxDelay || d <= 0 {
		d = c.cfg.MaxDelay
	}
	if after > d {
		d = min(after, c.cfg.MaxDelay)
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(jitter(c.cfg.JitterSeed, uint64(attempt))%uint64(half)) + 1
}

// do runs one request with the retry loop: transport errors, 429, 503
// and 5xx retry with backoff; other 4xx surface immediately. body is
// re-sent on every attempt.
func (c *Client) do(ctx context.Context, method, path string, body []byte) (*http.Response, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if c.cfg.MaxAttempts > 0 && attempt >= c.cfg.MaxAttempts {
			return nil, fmt.Errorf("client: giving up after %d attempts: %w",
				attempt, lastErr)
		}
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return nil, fmt.Errorf("client: %w (last error: %v)", err, lastErr)
			}
			return nil, err
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.cfg.BaseURL+path, rd)
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.cfg.HTTP.Do(req)
		dec := retryDecision{}
		switch {
		case err != nil:
			// Transport error: the daemon may be restarting mid-drain.
			lastErr = err
			dec.retry = true
		case resp.StatusCode == http.StatusTooManyRequests,
			resp.StatusCode == http.StatusServiceUnavailable,
			resp.StatusCode >= 500:
			b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			lastErr = &apiError{Code: resp.StatusCode, Body: string(b)}
			dec.retry = true
			if s := resp.Header.Get("Retry-After"); s != "" {
				if secs, perr := strconv.Atoi(s); perr == nil && secs >= 0 {
					dec.after = time.Duration(secs) * time.Second
				}
			}
		default:
			return resp, nil
		}
		if !dec.retry {
			return nil, lastErr
		}
		if err := c.cfg.sleep(ctx, c.delay(attempt, dec.after)); err != nil {
			return nil, fmt.Errorf("client: %w (last error: %v)", err, lastErr)
		}
	}
}

// decode consumes resp as JSON into v, treating non-2xx as an apiError.
func decode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return &apiError{Code: resp.StatusCode, Body: string(b)}
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// Submit posts spec (any JSON-marshalable value mirroring serve.Spec)
// and returns the submission. Retries are idempotent by cache-key
// construction: an identical spec coalesces or cache-hits server-side.
func (c *Client) Submit(ctx context.Context, spec any) (Submission, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return Submission{}, fmt.Errorf("client: marshal spec: %w", err)
	}
	resp, err := c.do(ctx, http.MethodPost, "/v1/jobs", body)
	if err != nil {
		return Submission{}, err
	}
	var sub Submission
	if err := decode(resp, &sub); err != nil {
		return Submission{}, err
	}
	return sub, nil
}

// Status fetches a job's current status.
func (c *Client) Status(ctx context.Context, jobID string) (Status, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+jobID, nil)
	if err != nil {
		return Status{}, err
	}
	var st Status
	if err := decode(resp, &st); err != nil {
		return Status{}, err
	}
	return st, nil
}

// errGone signals Result's caller that the job vanished (daemon state
// loss); Run resubmits.
var errGone = errors.New("client: job is gone")

// Result blocks until jobID finishes and returns its rendered bytes.
// A failed job surfaces as *JobError; a retryable failure or a vanished
// job returns an error Run knows to resubmit on.
func (c *Client) Result(ctx context.Context, jobID string) ([]byte, error) {
	for {
		resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+jobID+"/result?wait=1", nil)
		if err != nil {
			return nil, err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			defer resp.Body.Close()
			return io.ReadAll(resp.Body)
		case http.StatusNotFound:
			resp.Body.Close()
			return nil, fmt.Errorf("%w: %s", errGone, jobID)
		case http.StatusConflict:
			// Not done yet: the body is the job status.
			var st Status
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				resp.Body.Close()
				return nil, fmt.Errorf("client: job %s status: %w", jobID, err)
			}
			resp.Body.Close()
			if st.State == "failed" {
				if st.Retryable {
					return nil, fmt.Errorf("%w: job %s failed retryably: %s",
						errGone, jobID, st.Error)
				}
				return nil, &JobError{JobID: jobID, Message: st.Error}
			}
			// queued / running / interrupted: wait and poll again.
			if err := c.cfg.sleep(ctx, c.delay(0, 0)); err != nil {
				return nil, err
			}
		default:
			b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			return nil, &apiError{Code: resp.StatusCode, Body: string(b)}
		}
	}
}

// Run submits spec and drives it to completion: submit (with backoff),
// wait for the result, and resubmit when the job is lost or failed
// retryably (daemon crash, disk faults). Identical specs are idempotent
// server-side, so the loop can never double-execute work. Permanent
// failures surface as *JobError.
func (c *Client) Run(ctx context.Context, spec any) ([]byte, error) {
	for attempt := 0; ; attempt++ {
		if c.cfg.MaxAttempts > 0 && attempt >= c.cfg.MaxAttempts {
			return nil, fmt.Errorf("client: giving up after %d submissions", attempt)
		}
		sub, err := c.Submit(ctx, spec)
		if err != nil {
			return nil, err
		}
		body, err := c.Result(ctx, sub.Job.ID)
		if err == nil {
			return body, nil
		}
		var je *JobError
		if errors.As(err, &je) {
			return nil, je
		}
		if !errors.Is(err, errGone) {
			return nil, err
		}
		if serr := c.cfg.sleep(ctx, c.delay(attempt, 0)); serr != nil {
			return nil, serr
		}
	}
}

// Event is one decoded JSONL record from a job's event stream.
type Event = json.RawMessage

// Events streams a job's event records from offset, invoking fn per
// record, until the job is terminal and the stream is drained. It
// returns the final offset; resume a broken stream by passing that
// offset back in. The server may snap a post-crash offset backward to a
// record boundary, so fn can see a record twice — delivery is
// at-least-once, never torn.
func (c *Client) Events(ctx context.Context, jobID string, offset int64, fn func(Event) error) (int64, error) {
	for {
		path := fmt.Sprintf("/v1/jobs/%s/events?offset=%d&wait=1", jobID, offset)
		resp, err := c.do(ctx, http.MethodGet, path, nil)
		if err != nil {
			return offset, err
		}
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			return offset, &apiError{Code: resp.StatusCode, Body: string(b)}
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return offset, err
		}
		next := offset
		if s := resp.Header.Get(NextOffsetHeader); s != "" {
			if v, perr := strconv.ParseInt(s, 10, 64); perr == nil {
				next = v
			}
		}
		for _, line := range bytes.Split(body, []byte("\n")) {
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			if err := fn(Event(append([]byte(nil), line...))); err != nil {
				return next, err
			}
		}
		offset = next
		if len(body) == 0 {
			// Empty page: done if the job is terminal, else keep polling.
			st, err := c.Status(ctx, jobID)
			if err != nil {
				return offset, err
			}
			if st.Terminal() {
				return offset, nil
			}
			if err := c.cfg.sleep(ctx, c.delay(0, 0)); err != nil {
				return offset, err
			}
		}
	}
}
