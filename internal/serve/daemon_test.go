package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"glitchlab/internal/obs"
	"glitchlab/internal/runctl"
)

// Cheap specs covering all three job kinds (each well under a second).
var (
	campaignSpec = Spec{Kind: KindCampaign, Model: "and", MaxFlips: 2}
	scanSpec     = Spec{Kind: KindScan, Exp: "search"}
	evalSpec     = Spec{Kind: KindEval, Exp: "table5"}
)

const waitTimeout = 30 * time.Second

// golden runs a spec directly through Exec — the CLI path — and caches
// the bytes; daemon results must match these byte for byte.
var (
	goldenMu    sync.Mutex
	goldenByKey = map[string][]byte{}
)

func golden(t *testing.T, spec Spec) []byte {
	t.Helper()
	n := mustNormalize(t, spec)
	key := n.CacheKey("golden")
	goldenMu.Lock()
	defer goldenMu.Unlock()
	if body, ok := goldenByKey[key]; ok {
		return body
	}
	var buf bytes.Buffer
	if err := Exec(n, Env{Workers: 1}, &buf); err != nil {
		t.Fatalf("direct Exec(%+v): %v", n, err)
	}
	goldenByKey[key] = buf.Bytes()
	return buf.Bytes()
}

// openTestDaemon starts a daemon with an isolated registry and closes it
// with the test. Mutating cfg fields before the call customizes it.
func openTestDaemon(t *testing.T, cfg Config) *Daemon {
	t.Helper()
	if cfg.StateDir == "" {
		cfg.StateDir = t.TempDir()
	}
	if cfg.Reg == nil {
		cfg.Reg = obs.NewRegistry()
	}
	d, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func startServer(t *testing.T, d *Daemon) *httptest.Server {
	t.Helper()
	mux := d.Registry().Mux()
	d.Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func postJob(t *testing.T, srv *httptest.Server, body string) (int, submitResponse, string) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var sub submitResponse
	_ = json.Unmarshal(raw, &sub)
	return resp.StatusCode, sub, string(raw)
}

func getBody(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, raw
}

func specJSON(t *testing.T, spec Spec) string {
	t.Helper()
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestDaemonHTTPEndToEnd is the satellite e2e suite: submit, poll status,
// stream events and fetch the result over HTTP for all three job kinds,
// asserting the result bytes are identical to a direct engine run.
func TestDaemonHTTPEndToEnd(t *testing.T) {
	d := openTestDaemon(t, Config{})
	srv := startServer(t, d)

	kinds := []struct {
		name string
		spec Spec
	}{
		{"campaign", campaignSpec},
		{"scan", scanSpec},
		{"eval", evalSpec},
	}
	ids := make([]string, len(kinds))
	for i, k := range kinds {
		code, sub, raw := postJob(t, srv, specJSON(t, k.spec))
		if code != http.StatusAccepted {
			t.Fatalf("%s: POST = %d, want 202; body %s", k.name, code, raw)
		}
		if sub.CacheHit || sub.Coalesced {
			t.Fatalf("%s: fresh submission flagged cache_hit/coalesced: %s", k.name, raw)
		}
		ids[i] = sub.Job.ID
	}

	for i, k := range kinds {
		id := ids[i]
		want := golden(t, k.spec)

		// Result with ?wait= blocks until done and returns the bytes.
		code, _, body := getBody(t, srv.URL+"/v1/jobs/"+id+"/result?wait=1")
		if code != http.StatusOK {
			t.Fatalf("%s: result = %d, body %s", k.name, code, body)
		}
		if !bytes.Equal(body, want) {
			t.Errorf("%s: daemon result differs from direct engine run (%d vs %d bytes)",
				k.name, len(body), len(want))
		}

		// Status reflects the finished job.
		code, _, raw := getBody(t, srv.URL+"/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("%s: status = %d", k.name, code)
		}
		var st Status
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("%s: status JSON: %v", k.name, err)
		}
		if st.State != StateDone || st.ResultSize != int64(len(want)) || st.Kind != k.spec.Kind {
			t.Errorf("%s: status = %+v, want done with %d result bytes", k.name, st, len(want))
		}

		// Event stream: whole JSONL records, lifecycle markers, and offset
		// paging via the next-offset header.
		code, hdr, events := getBody(t, srv.URL+"/v1/jobs/"+id+"/events")
		if code != http.StatusOK || len(events) == 0 {
			t.Fatalf("%s: events = %d (%d bytes)", k.name, code, len(events))
		}
		var names []string
		for _, line := range bytes.Split(bytes.TrimSuffix(events, []byte("\n")), []byte("\n")) {
			var rec struct {
				Name string `json:"name"`
			}
			if err := json.Unmarshal(line, &rec); err != nil {
				t.Fatalf("%s: torn or invalid event record %q: %v", k.name, line, err)
			}
			names = append(names, rec.Name)
		}
		joined := strings.Join(names, " ")
		for _, want := range []string{"job.queued", "job.start", "job.done"} {
			if !strings.Contains(joined, want) {
				t.Errorf("%s: event stream missing %s (got %s)", k.name, want, joined)
			}
		}
		next := hdr.Get(NextOffsetHeader)
		if off, err := strconv.Atoi(next); err != nil || off != len(events) {
			t.Errorf("%s: next offset %q, want %d", k.name, next, len(events))
		}
		code, hdr2, tail := getBody(t, srv.URL+"/v1/jobs/"+id+"/events?offset="+next)
		if code != http.StatusOK || len(tail) != 0 || hdr2.Get(NextOffsetHeader) != next {
			t.Errorf("%s: paged events = %d, %d bytes, next %q; want empty at same offset",
				k.name, code, len(tail), hdr2.Get(NextOffsetHeader))
		}

		// Per-job metric deltas are available once the job executed.
		code, _, diff := getBody(t, srv.URL+"/v1/jobs/"+id+"/metrics")
		if code != http.StatusOK || !json.Valid(diff) {
			t.Errorf("%s: metrics = %d, valid JSON %v", k.name, code, json.Valid(diff))
		}
	}

	// Campaign jobs checkpoint per work unit; the status must say so.
	code, _, raw := getBody(t, srv.URL+"/v1/jobs/"+ids[0])
	var st Status
	if code != http.StatusOK || json.Unmarshal(raw, &st) != nil {
		t.Fatalf("campaign status = %d %s", code, raw)
	}
	if st.UnitsDone == 0 {
		t.Error("campaign job reported zero completed work units")
	}

	// Job list, both encodings.
	code, _, raw = getBody(t, srv.URL+"/v1/jobs")
	var list struct {
		Jobs []Status `json:"jobs"`
	}
	if code != http.StatusOK || json.Unmarshal(raw, &list) != nil || len(list.Jobs) != 3 {
		t.Errorf("job list = %d with %d jobs, want 3", code, len(list.Jobs))
	}
	code, _, text := getBody(t, srv.URL+"/v1/jobs?format=text")
	if code != http.StatusOK || !strings.Contains(string(text), ids[0]) {
		t.Errorf("text job list = %d, missing %s:\n%s", code, ids[0], text)
	}

	// Health: everything drained, stamp published.
	code, _, raw = getBody(t, srv.URL+"/healthz")
	var health struct {
		OK       bool   `json:"ok"`
		Queued   int    `json:"queued"`
		Running  int    `json:"running"`
		QueueCap int    `json:"queue_cap"`
		Stamp    string `json:"stamp"`
	}
	if code != http.StatusOK || json.Unmarshal(raw, &health) != nil {
		t.Fatalf("healthz = %d %s", code, raw)
	}
	if !health.OK || health.Queued != 0 || health.Running != 0 || health.Stamp != d.Stamp() {
		t.Errorf("healthz = %+v, want drained and stamped", health)
	}

	// The shared mux also serves the obs endpoints with daemon metrics.
	code, _, metrics := getBody(t, srv.URL+"/metrics")
	if code != http.StatusOK || !strings.Contains(string(metrics), MetricJobsSubmitted) {
		t.Errorf("/metrics = %d, missing %s", code, MetricJobsSubmitted)
	}
}

// TestDaemonHTTPErrors covers the API's failure contract: malformed
// submissions are 400, unknown jobs 404, and an unfinished job's result
// is 409 with a status body saying what state it is in.
func TestDaemonHTTPErrors(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	t.Cleanup(release) // before the daemon Close cleanup, so executors drain
	d := openTestDaemon(t, Config{UnitHook: func(string, string) {
		<-gate
	}})
	srv := startServer(t, d)

	for _, bad := range []string{
		`{"kind":"bake"}`,
		`{"kind":"scan","exp":"table9"}`,
		`{"kind":"campaign","workers":4}`, // unknown field
		`not json`,
	} {
		if code, _, raw := postJob(t, srv, bad); code != http.StatusBadRequest {
			t.Errorf("POST %s = %d, want 400; body %s", bad, code, raw)
		}
	}

	for _, path := range []string{
		"/v1/jobs/j999999", "/v1/jobs/j999999/result",
		"/v1/jobs/j999999/events", "/v1/jobs/j999999/metrics",
	} {
		if code, _, _ := getBody(t, srv.URL+path); code != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, code)
		}
	}

	// A held-open job: result without wait is 409 and reports the state.
	code, sub, _ := postJob(t, srv, specJSON(t, campaignSpec))
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d, want 202", code)
	}
	code, _, raw := getBody(t, srv.URL+"/v1/jobs/"+sub.Job.ID+"/result")
	if code != http.StatusConflict {
		t.Fatalf("result of unfinished job = %d, want 409", code)
	}
	var st Status
	if err := json.Unmarshal(raw, &st); err != nil || st.State.Terminal() {
		t.Errorf("409 body = %s, want a non-terminal status", raw)
	}
	release()
	if !d.WaitTerminal(sub.Job.ID, waitTimeout) {
		t.Fatal("job did not finish after release")
	}
}

// TestDaemonFailedJobDurable plants a drifted runctl manifest under the
// predictable first job ID so execution fails deterministically, then
// checks the failure is recorded durably: the API reports it, and a
// restarted daemon does not retry it.
func TestDaemonFailedJobDurable(t *testing.T) {
	state := t.TempDir()
	runDir := state + "/jobs/j000001/run"
	rn, err := runctl.Open(context.Background(), runDir,
		runctl.Manifest{Tool: "glitchemu", ConfigHash: "drifted"}, false)
	if err != nil {
		t.Fatal(err)
	}
	rn.Close()

	reg := obs.NewRegistry()
	d := openTestDaemon(t, Config{StateDir: state, Reg: reg})
	res, err := d.Submit(campaignSpec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Job.ID != "j000001" {
		t.Fatalf("first job ID = %s, want j000001", res.Job.ID)
	}
	if !d.WaitTerminal(res.Job.ID, waitTimeout) {
		t.Fatal("job did not reach a terminal state")
	}
	st := res.Job.Status()
	if st.State != StateFailed || st.Error == "" {
		t.Fatalf("status = %+v, want failed with an error", st)
	}
	if _, err := d.Result(res.Job.ID); err == nil {
		t.Error("Result of a failed job must error")
	}
	d.Close()

	d2 := openTestDaemon(t, Config{StateDir: state, Reg: obs.NewRegistry()})
	j2, ok := d2.Job("j000001")
	if !ok {
		t.Fatal("failed job lost across restart")
	}
	if st2 := j2.Status(); st2.State != StateFailed || st2.Error != st.Error {
		t.Errorf("recovered status = %+v, want the recorded failure %q", st2, st.Error)
	}
	if n := d2.Registry().Counter(MetricJobsResumed).Value(); n != 0 {
		t.Errorf("failed job was re-enqueued %d times, want 0 (no retry of deterministic failures)", n)
	}
}

// TestDaemonQueueFull: admission beyond QueueCap is rejected with
// ErrQueueFull (HTTP 429) while distinct jobs hold the queue.
func TestDaemonQueueFull(t *testing.T) {
	gate := make(chan struct{})
	t.Cleanup(func() {
		select {
		case <-gate:
		default:
			close(gate)
		}
	})
	d := openTestDaemon(t, Config{QueueCap: 2, Executors: 1, UnitHook: func(string, string) {
		<-gate
	}})
	srv := startServer(t, d)

	ids := make([]string, 0, 2)
	for i := 0; i < 2; i++ {
		spec := Spec{Kind: KindCampaign, Model: "and", MaxFlips: i + 1}
		code, sub, raw := postJob(t, srv, specJSON(t, spec))
		if code != http.StatusAccepted {
			t.Fatalf("submission %d = %d, body %s", i, code, raw)
		}
		ids = append(ids, sub.Job.ID)
	}
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(specJSON(t, Spec{Kind: KindCampaign, Model: "xor", MaxFlips: 1})))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap submission = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if n := d.Registry().Counter(MetricJobsRejected).Value(); n != 1 {
		t.Errorf("rejected counter = %d, want 1", n)
	}
	close(gate)
	for _, id := range ids {
		if !d.WaitTerminal(id, waitTimeout) {
			t.Fatalf("job %s did not drain", id)
		}
	}
}

// TestDaemonJobWorkersDefault pins the per-job worker budget contract:
// the budget splits GOMAXPROCS across executors, floored at one.
func TestDaemonJobWorkersDefault(t *testing.T) {
	over := 2 * runtime.GOMAXPROCS(0) // more executors than cores
	d := openTestDaemon(t, Config{Executors: over})
	if d.cfg.JobWorkers != 1 {
		t.Errorf("JobWorkers = %d with %d executors, want floor of 1", d.cfg.JobWorkers, over)
	}
	d2 := openTestDaemon(t, Config{Executors: 1, JobWorkers: 3})
	if d2.cfg.JobWorkers != 3 {
		t.Errorf("explicit JobWorkers = %d, want 3", d2.cfg.JobWorkers)
	}
}
