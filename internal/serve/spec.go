package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"glitchlab/internal/core"
	"glitchlab/internal/runctl"
)

// Job kinds: each maps onto one of the batch experiment CLIs.
const (
	KindCampaign = "campaign" // glitchemu: Section IV emulation campaigns
	KindScan     = "scan"     // glitchscan: Section V scans and the V-B search
	KindEval     = "eval"     // glitcheval: Section VII defense evaluation
)

// ResultSchemaVersion identifies the daemon's result encoding (the
// rendered report bytes plus the job file layout). It is folded into
// every cache key together with core.ResultStamp, so bumping either
// retires all cached results (see Stamp).
const ResultSchemaVersion = 1

// Stamp is the daemon-mode schema/version fingerprint folded into every
// result-cache key: a cached body is only ever served to a submission
// made under the identical stamp, so engine or schema changes bust stale
// results exactly like analyze.RulesVersion does for the corpus-lint
// cache.
func Stamp() string {
	return fmt.Sprintf("glitchd/v%d %s", ResultSchemaVersion, core.ResultStamp())
}

// Spec is one job submission: an experiment configuration with the exact
// expressive power of the batch CLIs' result-shaping flags. Execution
// knobs (worker count, full-run) are deliberately absent — they never
// change result bytes, so they belong to the daemon, not the job
// identity.
type Spec struct {
	// Kind selects the engine: campaign, scan or eval.
	Kind string `json:"kind"`

	// Exp selects the experiment within scan (table1a, table1b, table1c,
	// table1, table2, table3, search, all) and eval (table4, table5,
	// table6, table7, lint, figure2, all). Empty means all.
	Exp string `json:"exp,omitempty"`

	// Campaign shape (also eval's figure2 experiment): mutation model
	// (and, or, xor; empty = the four published Figure 2 variants),
	// the zero-is-invalid refinement, UDF padding, and the flip budget
	// (0 = the full 16-bit sweep).
	Model       string `json:"model,omitempty"`
	ZeroInvalid bool   `json:"zero_invalid,omitempty"`
	PadUDF      bool   `json:"pad_udf,omitempty"`
	MaxFlips    int    `json:"max_flips,omitempty"`

	// Seed is the fault-model seed for scan and eval jobs (0 = the
	// published core.DefaultSeed).
	Seed uint64 `json:"seed,omitempty"`
}

var scanExps = map[string]bool{
	"table1a": true, "table1b": true, "table1c": true, "table1": true,
	"table2": true, "table3": true, "search": true, "all": true,
}

var evalExps = map[string]bool{
	"table4": true, "table5": true, "table6": true, "table7": true,
	"lint": true, "figure2": true, "all": true,
}

// Normalize validates the spec and canonicalizes it: defaults are made
// explicit and fields the kind ignores are zeroed, so two submissions
// that cannot differ in output never differ in cache key. The returned
// spec is the job's identity; the receiver is unchanged.
func (s Spec) Normalize() (Spec, error) {
	n := s
	switch s.Kind {
	case KindCampaign:
		if _, err := core.Figure2Variants(s.Model, s.ZeroInvalid); err != nil {
			return n, err
		}
		if n.MaxFlips <= 0 || n.MaxFlips > 16 {
			n.MaxFlips = 16
		}
		if n.Model == "" {
			// The four published variants fix zero-invalid themselves.
			n.ZeroInvalid = false
		}
		n.Exp = ""
		n.Seed = 0 // campaigns are exhaustive; no fault-model seed
	case KindScan:
		if n.Exp == "" {
			n.Exp = "all"
		}
		if !scanExps[n.Exp] {
			return n, fmt.Errorf("serve: unknown scan experiment %q", s.Exp)
		}
		if n.Seed == 0 {
			n.Seed = core.DefaultSeed
		}
		n.Model, n.ZeroInvalid, n.PadUDF, n.MaxFlips = "", false, false, 0
	case KindEval:
		if n.Exp == "" {
			n.Exp = "all"
		}
		if !evalExps[n.Exp] {
			return n, fmt.Errorf("serve: unknown eval experiment %q", s.Exp)
		}
		// The fault-model seed only shapes Table VI; zero it elsewhere so
		// seed-only-different submissions of seed-blind experiments share
		// one cache entry.
		if n.Exp == "table6" || n.Exp == "all" {
			if n.Seed == 0 {
				n.Seed = core.DefaultSeed
			}
		} else {
			n.Seed = 0
		}
		n.PadUDF = false
		if n.Exp == "figure2" {
			if n.Model == "" {
				n.Model = "and"
			}
			if _, err := core.Figure2Variants(n.Model, n.ZeroInvalid); err != nil {
				return n, err
			}
			if n.MaxFlips <= 0 || n.MaxFlips > 16 {
				n.MaxFlips = 16
			}
		} else {
			n.Model, n.ZeroInvalid, n.MaxFlips = "", false, 0
		}
	default:
		return n, fmt.Errorf("serve: unknown job kind %q (want campaign, scan or eval)", s.Kind)
	}
	return n, nil
}

// ConfigHash is the runctl manifest fingerprint for a normalized spec. It
// hashes exactly the per-kind structs the batch CLIs hash, so a job run
// directory is mutually resumable with the equivalent CLI invocation.
func (s Spec) ConfigHash() string {
	switch s.Kind {
	case KindCampaign:
		return runctl.ConfigHash(struct {
			Model       string
			ZeroInvalid bool
			PadUDF      bool
			MaxFlips    int
		}{s.Model, s.ZeroInvalid, s.PadUDF, s.MaxFlips})
	case KindScan:
		return runctl.ConfigHash(struct {
			Exp  string
			Seed uint64
		}{s.Exp, s.Seed})
	default:
		return runctl.ConfigHash(struct {
			Exp         string
			Seed        uint64
			Model       string
			ZeroInvalid bool
			MaxFlips    int
		}{s.Exp, s.Seed, s.Model, s.ZeroInvalid, s.MaxFlips})
	}
}

// CacheKey derives the result-cache key for a normalized spec under the
// given schema/engine stamp: sha256 over the stamp and the canonical spec
// JSON. Any single config-field change, and any stamp change, yields a
// different key.
func (s Spec) CacheKey(stamp string) string {
	data, err := json.Marshal(s)
	if err != nil {
		// Spec is a plain struct of marshalable fields; this cannot
		// happen, but a panic here must not take the daemon down.
		data = []byte(fmt.Sprintf("%+v", s))
	}
	h := sha256.New()
	h.Write([]byte(stamp))
	h.Write([]byte{0})
	h.Write(data)
	return hex.EncodeToString(h.Sum(nil))
}

// ToolName is the runctl manifest tool string for the spec's kind, shared
// between the daemon and a hypothetical CLI resume of the same directory.
func (s Spec) ToolName() string {
	switch s.Kind {
	case KindCampaign:
		return "glitchemu"
	case KindScan:
		return "glitchscan"
	default:
		return "glitcheval"
	}
}
