package serve

import (
	"bytes"
	"sync"
	"testing"

	"glitchlab/internal/obs"
)

// TestDaemonCacheHitByteIdentical: resubmitting an identical spec — even
// in a different raw form — is served from the result cache with exactly
// the bytes the first execution produced, without running the engines
// again. A single changed config field misses and executes fresh.
func TestDaemonCacheHitByteIdentical(t *testing.T) {
	d := openTestDaemon(t, Config{})

	first, err := d.Submit(campaignSpec)
	if err != nil {
		t.Fatal(err)
	}
	if !d.WaitTerminal(first.Job.ID, waitTimeout) {
		t.Fatal("first job did not finish")
	}
	want, err := d.Result(first.Job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, golden(t, campaignSpec)) {
		t.Fatal("executed result differs from direct engine run")
	}
	executed := d.Registry().Counter(MetricJobsCompleted).Value()

	// Same job in a different raw spelling: Seed is ignored by campaigns
	// and normalized away, so this must hit.
	hit, err := d.Submit(Spec{Kind: KindCampaign, Model: "and", MaxFlips: 2, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit {
		t.Fatal("identical resubmission missed the cache")
	}
	if hit.Job.ID == first.Job.ID {
		t.Error("cache hit reused the original job ID; want a new born-done job")
	}
	if st := hit.Job.Status(); st.State != StateDone || !st.CacheHit {
		t.Errorf("cache-hit status = %+v, want done+cache_hit", st)
	}
	got, err := d.Result(hit.Job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("cache hit served %d bytes, want the original %d byte-identically",
			len(got), len(want))
	}
	if hits := d.Registry().Counter(MetricCacheHits).Value(); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}

	// One changed field (the flip budget): miss, fresh execution.
	miss, err := d.Submit(Spec{Kind: KindCampaign, Model: "and", MaxFlips: 3})
	if err != nil {
		t.Fatal(err)
	}
	if miss.CacheHit || miss.Coalesced {
		t.Fatal("changed spec must not hit the cache")
	}
	if !d.WaitTerminal(miss.Job.ID, waitTimeout) {
		t.Fatal("changed job did not finish")
	}
	if n := d.Registry().Counter(MetricJobsCompleted).Value(); n != executed+2 {
		t.Errorf("completed = %d, want %d (cache-hit job counts, engines ran once more)",
			n, executed+2)
	}
}

// TestDaemonCoalescing: concurrent identical submissions while the first
// is in flight all join that one execution — one engine run, one job.
func TestDaemonCoalescing(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	t.Cleanup(release)
	d := openTestDaemon(t, Config{UnitHook: func(string, string) {
		<-gate // hold the first job at its first checkpoint
	}})

	first, err := d.Submit(campaignSpec)
	if err != nil {
		t.Fatal(err)
	}

	const dups = 8
	var wg sync.WaitGroup
	results := make([]SubmitResult, dups)
	for i := 0; i < dups; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := d.Submit(Spec{Kind: KindCampaign, Model: "and", MaxFlips: 2, Seed: uint64(i)})
			if err != nil {
				t.Errorf("duplicate submit %d: %v", i, err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if !r.Coalesced || r.Job == nil || r.Job.ID != first.Job.ID {
			t.Errorf("duplicate %d: coalesced=%v job=%v, want the in-flight job %s",
				i, r.Coalesced, r.Job, first.Job.ID)
		}
	}
	release()
	if !d.WaitTerminal(first.Job.ID, waitTimeout) {
		t.Fatal("coalesced job did not finish")
	}
	body, err := d.Result(first.Job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, golden(t, campaignSpec)) {
		t.Error("coalesced result differs from direct engine run")
	}
	reg := d.Registry()
	if n := reg.Counter(MetricJobsCoalesced).Value(); n != dups {
		t.Errorf("coalesced counter = %d, want %d", n, dups)
	}
	if n := reg.Counter(MetricJobsSubmitted).Value(); n != 1 {
		t.Errorf("submitted counter = %d, want 1 (duplicates joined, not admitted)", n)
	}
}

// TestDaemonCacheEvictionNeverStaleOrTruncated: under a cap that fits
// only one result, eviction churns, but every served result — hit or
// re-executed — is the complete correct bytes for its spec.
func TestDaemonCacheEvictionNeverStaleOrTruncated(t *testing.T) {
	specA := campaignSpec
	specB := Spec{Kind: KindCampaign, Model: "xor", MaxFlips: 2}
	wantA, wantB := golden(t, specA), golden(t, specB)

	// Fits either result alone, never both.
	capBytes := int64(max(len(wantA), len(wantB)) + 16)
	if capBytes >= int64(len(wantA)+len(wantB)) {
		t.Fatalf("test premise broken: cap %d holds both results (%d + %d)",
			capBytes, len(wantA), len(wantB))
	}
	d := openTestDaemon(t, Config{CacheBytes: capBytes})

	run := func(spec Spec, want []byte, wantHit bool) {
		t.Helper()
		res, err := d.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.CacheHit != wantHit {
			t.Fatalf("Submit(%+v): cacheHit = %v, want %v", spec, res.CacheHit, wantHit)
		}
		if !d.WaitTerminal(res.Job.ID, waitTimeout) {
			t.Fatal("job did not finish")
		}
		got, err := d.Result(res.Job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("Submit(%+v) served %d bytes, want %d byte-identical (stale or truncated)",
				spec, len(got), len(want))
		}
	}

	run(specA, wantA, false) // A cached
	run(specB, wantB, false) // B cached, A evicted
	run(specB, wantB, true)  // still resident
	run(specA, wantA, false) // evicted -> full re-execution, not staleness
	run(specA, wantA, true)  // and now resident again (B evicted)
	if n := d.Registry().Counter(MetricCacheEvicted).Value(); n == 0 {
		t.Error("tiny cache cap never evicted; test did not exercise eviction")
	}
	if got := d.cache.Size(); got > capBytes {
		t.Errorf("cache size %d exceeds cap %d", got, capBytes)
	}
}

// TestDaemonStampInvalidation is the satellite-6 regression: the
// schema/engine stamp is folded into every cache key, so a daemon
// restarted under a new stamp must not serve results computed under the
// old one — neither from memory nor by recovering them from disk.
func TestDaemonStampInvalidation(t *testing.T) {
	state := t.TempDir()
	const stampA = "glitchd/test stamp-A"
	const stampB = "glitchd/test stamp-B"

	d1 := openTestDaemon(t, Config{StateDir: state, StampOverride: stampA})
	res, err := d1.Submit(campaignSpec)
	if err != nil {
		t.Fatal(err)
	}
	if !d1.WaitTerminal(res.Job.ID, waitTimeout) {
		t.Fatal("job did not finish")
	}
	want, _ := d1.Result(res.Job.ID)
	if hit, _ := d1.Submit(campaignSpec); !hit.CacheHit {
		t.Fatal("same-stamp resubmission missed")
	}
	d1.Close()

	// Restart under a new stamp: recovery must NOT repopulate the cache
	// from the old jobs' results, and the resubmission must re-execute.
	d2 := openTestDaemon(t, Config{StateDir: state, StampOverride: stampB, Reg: obs.NewRegistry()})
	if n := d2.cache.Len(); n != 0 {
		t.Fatalf("cache recovered %d stale entries across a stamp change", n)
	}
	res2, err := d2.Submit(campaignSpec)
	if err != nil {
		t.Fatal(err)
	}
	if res2.CacheHit || res2.Coalesced {
		t.Fatal("stamp change must invalidate the cached result")
	}
	if !d2.WaitTerminal(res2.Job.ID, waitTimeout) {
		t.Fatal("re-execution did not finish")
	}
	got, _ := d2.Result(res2.Job.ID)
	if !bytes.Equal(got, want) {
		t.Error("re-executed result differs (engines changed without a stamp change?)")
	}
	d2.Close()

	// Restart back under the original stamp: the old results are valid
	// again and recovery repopulates the cache from them.
	d3 := openTestDaemon(t, Config{StateDir: state, StampOverride: stampA, Reg: obs.NewRegistry()})
	if hit, err := d3.Submit(campaignSpec); err != nil || !hit.CacheHit {
		t.Errorf("matching-stamp restart should serve from the recovered cache (hit=%v err=%v)",
			hit.CacheHit, err)
	}
}
