package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"glitchlab/internal/chaos"
	"glitchlab/internal/obs"
)

// crashDaemonRun runs one daemon lifetime over state with a power loss
// injected at filesystem op n: open, submit spec, wait, close. Every step
// is best-effort — the crash can land anywhere, including inside Open —
// and the injector rolls the real directory back to the durable image at
// the crash op. What it must never do is serve corrupt bytes: a job that
// reports done must match want exactly.
func crashDaemonRun(t *testing.T, state string, n uint64, spec Spec, want []byte) {
	t.Helper()
	inj := chaos.NewInjector(chaos.OS{}, chaos.FaultAt(n, chaos.FaultCrash)).WithSeed(n | 1)
	d, err := Open(Config{StateDir: state, FS: inj, Executors: 1, Reg: obs.NewRegistry()})
	if err != nil {
		if !chaos.IsDiskFault(err) {
			t.Fatalf("crash@op%d: Open failed non-loudly: %v", n, err)
		}
		return
	}
	defer d.Close()
	res, err := d.Submit(spec)
	if err != nil {
		if !chaos.IsDiskFault(err) {
			t.Fatalf("crash@op%d: Submit failed non-loudly: %v", n, err)
		}
		return
	}
	if d.WaitTerminal(res.Job.ID, waitTimeout) {
		if j, ok := d.Job(res.Job.ID); ok && j.State() == StateDone {
			if body, err := d.Result(res.Job.ID); err == nil && !bytes.Equal(body, want) {
				t.Fatalf("crash@op%d: daemon served corrupt result (%d bytes, want %d)",
					n, len(body), len(want))
			}
		}
	}
}

// reopenCleanAndVerify restarts a daemon over a possibly fault-riddled
// state directory with the real filesystem, drains whatever recovery
// re-enqueued, resubmits spec and requires the result byte-identical to
// the golden run. This is the crash-consistency contract: resume to the
// exact bytes or refuse loudly, never silent corruption.
func reopenCleanAndVerify(t *testing.T, state string, spec Spec, want []byte) {
	t.Helper()
	d := openTestDaemon(t, Config{StateDir: state, Executors: 1})
	for _, j := range d.Jobs() {
		d.WaitTerminal(j.ID, waitTimeout)
	}
	res, err := d.Submit(spec)
	if err != nil {
		t.Fatalf("clean resubmit: %v", err)
	}
	if !d.WaitTerminal(res.Job.ID, waitTimeout) {
		t.Fatalf("clean resubmit did not finish")
	}
	j, _ := d.Job(res.Job.ID)
	if j.State() != StateDone {
		t.Fatalf("clean resubmit ended %s: %s", j.State(), j.Status().Error)
	}
	body, err := d.Result(res.Job.ID)
	if err != nil {
		t.Fatalf("clean resubmit result: %v", err)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("clean resubmit result differs from golden (%d bytes, want %d)",
			len(body), len(want))
	}
}

// TestDaemonCrashOpSweep is the tentpole crash-consistency sweep at the
// daemon layer: simulate a power loss at every k-th filesystem operation
// of a full submit-execute-persist lifetime, then restart over the
// rolled-back state directory with a healthy disk and require the
// resubmitted spec to produce golden bytes.
func TestDaemonCrashOpSweep(t *testing.T) {
	want := golden(t, campaignSpec)

	// Probe the fault-free op count with a counting (nil-schedule) injector.
	probeState := t.TempDir()
	probe := chaos.NewInjector(chaos.OS{}, nil)
	d, err := Open(Config{StateDir: probeState, FS: probe, Executors: 1, Reg: obs.NewRegistry()})
	if err != nil {
		t.Fatalf("probe Open: %v", err)
	}
	res, err := d.Submit(campaignSpec)
	if err != nil {
		t.Fatalf("probe Submit: %v", err)
	}
	if !d.WaitTerminal(res.Job.ID, waitTimeout) {
		t.Fatal("probe job did not finish")
	}
	d.Close()
	total := probe.Ops()
	if total < 20 {
		t.Fatalf("probe counted only %d fs ops; injector not threaded through the daemon?", total)
	}

	points := 32
	if testing.Short() {
		points = 6
	}
	stride := total / uint64(points)
	if stride == 0 {
		stride = 1
	}
	swept := 0
	for n := uint64(0); n < total; n += stride {
		state := t.TempDir()
		crashDaemonRun(t, state, n, campaignSpec, want)
		reopenCleanAndVerify(t, state, campaignSpec, want)
		swept++
	}
	t.Logf("swept %d crash points over %d fs ops", swept, total)
}

// TestDaemonSeededFaultSweep drives full daemon lifetimes under seeded
// mixed-fault schedules (ENOSPC, EIO, torn writes, dropped fsyncs —
// everything but crashes, so errors surface as op failures rather than
// rollbacks). Jobs may fail, but only loudly and classified retryable;
// a clean restart over the battered state dir must still reach golden.
func TestDaemonSeededFaultSweep(t *testing.T) {
	want := golden(t, campaignSpec)
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	for seed := 1; seed <= seeds; seed++ {
		state := t.TempDir()
		inj := chaos.NewInjector(chaos.OS{},
			chaos.Seeded{Seed: uint64(seed), Every: 13}).WithSeed(uint64(seed))
		d, err := Open(Config{StateDir: state, FS: inj, Executors: 1,
			Reg: obs.NewRegistry(), DegradeAfter: -1})
		if err != nil {
			if !chaos.IsDiskFault(err) {
				t.Fatalf("seed %d: Open failed non-loudly: %v", seed, err)
			}
			reopenCleanAndVerify(t, state, campaignSpec, want)
			continue
		}
		res, err := d.Submit(campaignSpec)
		if err == nil && d.WaitTerminal(res.Job.ID, waitTimeout) {
			j, _ := d.Job(res.Job.ID)
			switch j.State() {
			case StateDone:
				if body, rerr := d.Result(res.Job.ID); rerr == nil && !bytes.Equal(body, want) {
					t.Fatalf("seed %d: corrupt result under faults", seed)
				}
			case StateFailed:
				if !j.Status().Retryable {
					t.Fatalf("seed %d: disk-fault failure not marked retryable: %s",
						seed, j.Status().Error)
				}
			}
		} else if err != nil && !chaos.IsDiskFault(err) {
			t.Fatalf("seed %d: Submit failed non-loudly: %v", seed, err)
		}
		d.Close()
		reopenCleanAndVerify(t, state, campaignSpec, want)
	}
}

// TestDaemonDegradedMode exercises the graceful-degradation state
// machine end to end with a runtime-switchable fault: persistent disk
// faults trip degraded mode (503 + Retry-After over HTTP, healthz
// "degraded"), cached results keep being served from memory, and the
// first successful probe write recovers the daemon.
func TestDaemonDegradedMode(t *testing.T) {
	var tg chaos.Toggle
	inj := chaos.NewInjector(chaos.OS{}, &tg).WithSeed(1)
	d := openTestDaemon(t, Config{
		StateDir: t.TempDir(), FS: inj, Executors: 1,
		DegradeAfter: 2, ProbeInterval: time.Millisecond,
	})
	srv := startServer(t, d)

	// Healthy phase: complete a campaign so its result is cached.
	res, err := d.Submit(campaignSpec)
	if err != nil {
		t.Fatalf("healthy Submit: %v", err)
	}
	if !d.WaitTerminal(res.Job.ID, waitTimeout) {
		t.Fatal("healthy job did not finish")
	}
	want, err := d.Result(res.Job.ID)
	if err != nil {
		t.Fatalf("healthy Result: %v", err)
	}

	// Disk goes bad: fresh submissions fail with classified disk faults
	// until DegradeAfter consecutive persist failures trip degraded mode.
	tg.Set(chaos.FaultEIO)
	tripped := false
	for i := 0; i < 20; i++ {
		_, err := d.Submit(scanSpec)
		if errors.Is(err, ErrDegraded) {
			tripped = true
			break
		}
		if err == nil {
			t.Fatal("Submit succeeded through a fully faulted disk")
		}
		if !chaos.IsDiskFault(err) {
			t.Fatalf("Submit failed non-loudly: %v", err)
		}
	}
	if !tripped || !d.Degraded() {
		t.Fatalf("daemon never degraded (tripped=%v Degraded=%v)", tripped, d.Degraded())
	}
	if n := d.Registry().Counter(MetricDiskFaults).Value(); n < 2 {
		t.Fatalf("disk-fault counter = %v, want >= 2", n)
	}

	// HTTP surface: 503 + Retry-After, healthz reports degraded.
	code, _, raw := postJob(t, srv, specJSON(t, evalSpec))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded submit = %d (%s), want 503", code, raw)
	}
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(specJSON(t, evalSpec)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded 503 missing Retry-After")
	}
	resp.Body.Close()
	if got := healthStatus(t, srv); got != "degraded" {
		t.Fatalf("healthz status = %q, want degraded", got)
	}

	// Cached specs are still served while degraded, straight from memory.
	hit, err := d.Submit(campaignSpec)
	if err != nil {
		t.Fatalf("cached Submit while degraded: %v", err)
	}
	if !hit.CacheHit {
		t.Fatal("identical spec not served from cache while degraded")
	}
	body, err := d.Result(hit.Job.ID)
	if err != nil {
		t.Fatalf("cached Result while degraded: %v", err)
	}
	if !bytes.Equal(body, want) {
		t.Fatal("cached result differs while degraded")
	}

	// Disk heals: the next submission's probe write succeeds and the
	// daemon recovers (the probe is rate-limited, so allow a few tries).
	tg.Set(chaos.FaultNone)
	var rec SubmitResult
	for i := 0; i < 200; i++ {
		rec, err = d.Submit(scanSpec)
		if err == nil {
			break
		}
		if !errors.Is(err, ErrDegraded) {
			t.Fatalf("recovery Submit: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("daemon never recovered: %v", err)
	}
	if d.Degraded() {
		t.Fatal("Degraded() still true after successful admission")
	}
	if !d.WaitTerminal(rec.Job.ID, waitTimeout) {
		t.Fatal("post-recovery job did not finish")
	}
	got, err := d.Result(rec.Job.ID)
	if err != nil {
		t.Fatalf("post-recovery Result: %v", err)
	}
	if !bytes.Equal(got, golden(t, scanSpec)) {
		t.Fatal("post-recovery result differs from golden")
	}
	if got := healthStatus(t, srv); got != "ok" {
		t.Fatalf("healthz status = %q after recovery, want ok", got)
	}
}

func healthStatus(t *testing.T, srv *httptest.Server) string {
	t.Helper()
	code, _, raw := getBody(t, srv.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	var h struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(raw, &h); err != nil {
		t.Fatalf("healthz body: %v", err)
	}
	return h.Status
}

// TestSubmitDiskFault503 pins the HTTP mapping for an environmental
// submit failure: a disk fault while persisting a fresh job is 503 +
// Retry-After (back off and resubmit), never 400 (the spec is fine).
// Degraded mode is disabled so this is the raw single-fault path.
func TestSubmitDiskFault503(t *testing.T) {
	var tg chaos.Toggle
	inj := chaos.NewInjector(chaos.OS{}, &tg).WithSeed(1)
	d := openTestDaemon(t, Config{
		StateDir: t.TempDir(), FS: inj, Executors: 1, DegradeAfter: -1,
	})
	srv := startServer(t, d)

	tg.Set(chaos.FaultEIO)
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(specJSON(t, scanSpec)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("disk-fault submit = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("disk-fault 503 missing Retry-After")
	}

	// Disk heals: the identical spec is admitted and completes.
	tg.Set(chaos.FaultNone)
	code, sub, raw := postJob(t, srv, specJSON(t, scanSpec))
	if code != http.StatusAccepted {
		t.Fatalf("post-heal submit = %d (%s), want 202", code, raw)
	}
	if !d.WaitTerminal(sub.Job.ID, waitTimeout) {
		t.Fatal("post-heal job did not finish")
	}
}

// TestDaemonDrain503 covers the SIGTERM drain window: after BeginDrain
// every new submission is rejected with ErrDraining (503 + Retry-After
// over HTTP) while status, results and health stay readable.
func TestDaemonDrain503(t *testing.T) {
	d := openTestDaemon(t, Config{})
	srv := startServer(t, d)

	res, err := d.Submit(campaignSpec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if !d.WaitTerminal(res.Job.ID, waitTimeout) {
		t.Fatal("job did not finish")
	}

	d.BeginDrain()
	if _, err := d.Submit(scanSpec); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit while draining = %v, want ErrDraining", err)
	}
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(specJSON(t, scanSpec)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining 503 missing Retry-After")
	}
	if got := healthStatus(t, srv); got != "draining" {
		t.Fatalf("healthz status = %q, want draining", got)
	}

	// Reads survive the drain: the finished job's result is still served.
	code, _, body := getBody(t, fmt.Sprintf("%s/v1/jobs/%s/result", srv.URL, res.Job.ID))
	if code != http.StatusOK {
		t.Fatalf("result during drain = %d", code)
	}
	if !bytes.Equal(body, golden(t, campaignSpec)) {
		t.Fatal("result during drain differs from golden")
	}
}

// waitStableEvents blocks until the job's event stream stops growing:
// WaitTerminal returns on the state flip, but the tracer's final flush
// (and the trailing job.done record) land just after it.
func waitStableEvents(t *testing.T, path string) []byte {
	t.Helper()
	var prev []byte
	for i := 0; i < 500; i++ {
		data, _ := os.ReadFile(path)
		if len(data) > 0 && data[len(data)-1] == '\n' && bytes.Equal(data, prev) {
			return data
		}
		prev = append(prev[:0], data...)
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("event stream %s never stabilized (%d bytes)", path, len(prev))
	return nil
}

// TestEventsOffsetBoundaries pins the event-stream paging contract at
// every boundary: offset == len and offset > len answer an explicit
// empty page carrying the current end as the next offset, and an offset
// landing mid-record snaps back to the preceding record boundary so
// clients only ever receive whole records.
func TestEventsOffsetBoundaries(t *testing.T) {
	d := openTestDaemon(t, Config{})
	srv := startServer(t, d)

	res, err := d.Submit(campaignSpec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if !d.WaitTerminal(res.Job.ID, waitTimeout) {
		t.Fatal("job did not finish")
	}
	waitStableEvents(t, d.EventsPath(res.Job.ID))
	base := fmt.Sprintf("%s/v1/jobs/%s/events", srv.URL, res.Job.ID)

	code, hdr, full := getBody(t, base)
	if code != http.StatusOK {
		t.Fatalf("events = %d", code)
	}
	end, err := strconv.ParseInt(hdr.Get(NextOffsetHeader), 10, 64)
	if err != nil || end != int64(len(full)) {
		t.Fatalf("next offset %q, want %d", hdr.Get(NextOffsetHeader), len(full))
	}
	if len(full) == 0 || full[len(full)-1] != '\n' {
		t.Fatalf("event stream empty or torn (%d bytes)", len(full))
	}

	// offset == len: explicit empty page, next offset unchanged.
	code, hdr, body := getBody(t, fmt.Sprintf("%s?offset=%d", base, end))
	if code != http.StatusOK || len(body) != 0 {
		t.Fatalf("offset==len: code %d, %d bytes, want empty 200", code, len(body))
	}
	if got := hdr.Get(NextOffsetHeader); got != strconv.FormatInt(end, 10) {
		t.Fatalf("offset==len next = %q, want %d", got, end)
	}

	// offset > len (a crash shrank the stream under the client): same
	// explicit empty page, next offset clamped back to the real end.
	code, hdr, body = getBody(t, fmt.Sprintf("%s?offset=%d", base, end+4096))
	if code != http.StatusOK || len(body) != 0 {
		t.Fatalf("offset>len: code %d, %d bytes, want empty 200", code, len(body))
	}
	if got := hdr.Get(NextOffsetHeader); got != strconv.FormatInt(end, 10) {
		t.Fatalf("offset>len next = %q, want %d", got, end)
	}

	// Mid-record offset snaps backward to the record boundary.
	first := bytes.IndexByte(full, '\n')
	if first < 0 || first+3 >= len(full) {
		t.Fatalf("stream too short for a mid-record probe (%d bytes)", len(full))
	}
	mid := int64(first + 3) // 2 bytes into the second record
	code, hdr, body = getBody(t, fmt.Sprintf("%s?offset=%d", base, mid))
	if code != http.StatusOK {
		t.Fatalf("mid-record = %d", code)
	}
	if !bytes.Equal(body, full[first+1:]) {
		t.Fatalf("mid-record offset %d did not snap to boundary %d", mid, first+1)
	}
	if got := hdr.Get(NextOffsetHeader); got != strconv.FormatInt(end, 10) {
		t.Fatalf("mid-record next = %q, want %d", got, end)
	}

	// An offset already on a boundary is served as-is.
	code, _, body = getBody(t, fmt.Sprintf("%s?offset=%d", base, first+1))
	if code != http.StatusOK || !bytes.Equal(body, full[first+1:]) {
		t.Fatal("boundary offset not served verbatim")
	}
}

// TestDaemonEventsTornTailTruncation proves a torn final event line —
// what a mid-append power loss leaves behind — is dropped before the
// stream is appended to again, so offsets always land between whole
// records and readers never see a partial record.
func TestDaemonEventsTornTailTruncation(t *testing.T) {
	d := openTestDaemon(t, Config{})
	srv := startServer(t, d)

	res, err := d.Submit(campaignSpec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if !d.WaitTerminal(res.Job.ID, waitTimeout) {
		t.Fatal("job did not finish")
	}
	path := d.EventsPath(res.Job.ID)
	clean := waitStableEvents(t, path)

	// Tear the tail the way a power loss would: a partial record, no
	// trailing newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(`{"type":"event","name":"job.tor`)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// The HTTP reader trims the torn tail even before truncation.
	code, _, body := getBody(t, fmt.Sprintf("%s/v1/jobs/%s/events", srv.URL, res.Job.ID))
	if code != http.StatusOK || !bytes.Equal(body, clean) {
		t.Fatalf("torn tail leaked to a reader (code %d, %d bytes, want %d)",
			code, len(body), len(clean))
	}

	d.truncateTornEvents(res.Job.ID)
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, clean) {
		t.Fatalf("truncateTornEvents left %d bytes, want %d", len(got), len(clean))
	}
	// Idempotent on a clean stream.
	d.truncateTornEvents(res.Job.ID)
	if again, _ := os.ReadFile(path); !bytes.Equal(again, clean) {
		t.Fatal("truncateTornEvents modified a clean stream")
	}

	// Sweep the tear across every byte boundary of the final record: any
	// strict prefix is dropped to the preceding boundary, the whole
	// record (with its newline) survives untouched.
	boundary := lastNewline(clean[:len(clean)-1]) // start of the final record
	tail := clean[boundary:]
	for k := 0; k <= len(tail); k++ {
		torn := clean[:boundary+k]
		if err := os.WriteFile(path, torn, 0o666); err != nil {
			t.Fatal(err)
		}
		d.truncateTornEvents(res.Job.ID)
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		want := clean[:boundary]
		if k == len(tail) {
			want = clean
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("tear at byte %d/%d: kept %d bytes, want %d",
				k, len(tail), len(got), len(want))
		}
	}
}
