package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"glitchlab/internal/chaos"
	"glitchlab/internal/obs"
	"glitchlab/internal/runctl"
)

// ErrQueueFull is returned by Submit when the bounded admission queue is
// at capacity; the HTTP layer maps it to 429 Too Many Requests.
var ErrQueueFull = errors.New("serve: job queue is full")

// ErrDraining is returned by Submit after BeginDrain: the daemon is
// shutting down and admits nothing new. The HTTP layer maps it to 503 +
// Retry-After so a well-behaved client waits for the restarted daemon.
var ErrDraining = errors.New("serve: daemon is draining")

// ErrDegraded is returned by Submit while the daemon is in degraded mode:
// persistent disk faults have made new work pointless, so fresh jobs are
// rejected with 503 + Retry-After while cached results keep being served.
// The daemon probes the state dir and recovers on the first success.
var ErrDegraded = errors.New("serve: daemon is degraded (persistent disk faults)")

// Config shapes a Daemon. Zero values select the documented defaults.
type Config struct {
	// StateDir is the daemon's durable root: every job lives in
	// StateDir/jobs/<id> with its spec, runctl checkpoint directory,
	// event stream and result. Required.
	StateDir string
	// QueueCap bounds admission: at most this many client-submitted jobs
	// may be queued or running at once; excess submissions are rejected
	// with ErrQueueFull (HTTP 429). Default 8. Jobs re-enqueued by
	// restart recovery bypass the cap — they were admitted once already.
	QueueCap int
	// Executors is the number of jobs executed concurrently. Default 2.
	Executors int
	// JobWorkers is the per-job worker budget handed to the engines.
	// Default GOMAXPROCS/Executors, at least 1 — on the 2-vCPU reference
	// host two executors each run their job serially instead of two jobs
	// fighting over two cores with four shards each.
	JobWorkers int
	// CacheBytes bounds the completed-result cache (LRU eviction).
	// Default 64 MiB; <= 0 disables caching.
	CacheBytes int64
	// Reg receives daemon and engine metrics. Default obs.Default (which
	// is also where runctl reports checkpoint metrics).
	Reg *obs.Registry
	// StampOverride replaces the schema/engine cache stamp (tests use it
	// to prove stale cached results are busted). Default Stamp().
	StampOverride string
	// UnitHook, when non-nil, runs after every durably checkpointed work
	// unit of every job (tests inject crashes here, reusing the runctl
	// kill-after-prefix pattern).
	UnitHook func(jobID, unit string)
	// FS is the filesystem all durable state goes through. Default
	// chaos.OS{} (the real one); chaos tests pass a *chaos.Injector.
	FS chaos.FS
	// DegradeAfter is how many consecutive disk-fault persistence failures
	// flip the daemon to degraded mode. Default 3; < 0 disables degraded
	// mode entirely.
	DegradeAfter int
	// ProbeInterval rate-limits the degraded daemon's recovery probes (a
	// small atomic write to the state dir on Submit). Default 250ms.
	ProbeInterval time.Duration
}

// SubmitResult is the outcome of one submission.
type SubmitResult struct {
	Job *Job
	// CacheHit: the result was served from the completed-result cache;
	// the job was born done without executing.
	CacheHit bool
	// Coalesced: an identical submission was already queued or running;
	// Job is that existing job and no new execution was admitted.
	Coalesced bool
}

// Daemon is the campaign-as-a-service engine host: a bounded job queue in
// front of executor goroutines running Exec under runctl checkpoints,
// with durable per-job state, a stamped LRU result cache and restart
// recovery of every in-flight job.
type Daemon struct {
	cfg   Config
	stamp string
	reg   *obs.Registry
	cache *Cache
	fs    chaos.FS

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	draining atomic.Bool
	degraded atomic.Bool

	mu          sync.Mutex
	cond        *sync.Cond
	queue       []*Job
	jobs        map[string]*Job
	order       []*Job          // submission order
	activeByKey map[string]*Job // queued or running, by cache key
	nextSeq     int
	queued      int
	running     int

	// faultMu guards the degraded-mode tracker separately from d.mu:
	// notePersist runs inside persist calls that may themselves hold d.mu
	// (newJobLocked).
	faultMu     sync.Mutex
	faultStreak int       // consecutive disk-fault persistence failures
	lastProbe   time.Time // last degraded-mode recovery probe

	submitted, completed, failed, rejected, coalesced, resumed *obs.Counter
	diskFaults, rejectedBusy                                   *obs.Counter
	queueDepth, runningG, degradedG                            *obs.Gauge
}

type jobMeta struct {
	ID    string `json:"id"`
	Seq   int    `json:"seq"`
	Spec  Spec   `json:"spec"`
	Key   string `json:"key"`
	Stamp string `json:"stamp"`
}

// Open starts a daemon over cfg.StateDir, recovering every job a previous
// process left behind: completed jobs repopulate the result cache (when
// their stamp still matches), failed jobs keep their recorded error, and
// queued or interrupted jobs are re-enqueued to resume from their runctl
// checkpoints.
func Open(cfg Config) (*Daemon, error) {
	if cfg.StateDir == "" {
		return nil, errors.New("serve: Config.StateDir is required")
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 8
	}
	if cfg.Executors <= 0 {
		cfg.Executors = 2
	}
	if cfg.JobWorkers <= 0 {
		cfg.JobWorkers = max(1, runtime.GOMAXPROCS(0)/cfg.Executors)
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.Reg == nil {
		cfg.Reg = obs.Default
	}
	if cfg.FS == nil {
		cfg.FS = chaos.OS{}
	}
	if cfg.DegradeAfter == 0 {
		cfg.DegradeAfter = 3
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 250 * time.Millisecond
	}
	stamp := cfg.StampOverride
	if stamp == "" {
		stamp = Stamp()
	}
	if err := cfg.FS.MkdirAll(filepath.Join(cfg.StateDir, "jobs"), 0o777); err != nil {
		return nil, fmt.Errorf("serve: state dir: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	d := &Daemon{
		cfg:          cfg,
		stamp:        stamp,
		reg:          cfg.Reg,
		cache:        NewCache(cfg.CacheBytes, cfg.Reg),
		fs:           cfg.FS,
		ctx:          ctx,
		cancel:       cancel,
		jobs:         map[string]*Job{},
		activeByKey:  map[string]*Job{},
		nextSeq:      1,
		submitted:    cfg.Reg.Counter(MetricJobsSubmitted),
		completed:    cfg.Reg.Counter(MetricJobsCompleted),
		failed:       cfg.Reg.Counter(MetricJobsFailed),
		rejected:     cfg.Reg.Counter(MetricJobsRejected),
		coalesced:    cfg.Reg.Counter(MetricJobsCoalesced),
		resumed:      cfg.Reg.Counter(MetricJobsResumed),
		diskFaults:   cfg.Reg.Counter(MetricDiskFaults),
		rejectedBusy: cfg.Reg.Counter(MetricJobsRejectedBusy),
		queueDepth:   cfg.Reg.Gauge(MetricQueueDepth),
		runningG:     cfg.Reg.Gauge(MetricJobsRunning),
		degradedG:    cfg.Reg.Gauge(MetricDegraded),
	}
	d.cond = sync.NewCond(&d.mu)
	if err := d.recover(); err != nil {
		cancel()
		return nil, err
	}
	for i := 0; i < cfg.Executors; i++ {
		d.wg.Add(1)
		go d.executor()
	}
	return d, nil
}

// Stamp returns the schema/engine stamp the daemon keys its cache with.
func (d *Daemon) Stamp() string { return d.stamp }

// Registry returns the daemon's metrics registry.
func (d *Daemon) Registry() *obs.Registry { return d.reg }

func (d *Daemon) jobDir(id string) string {
	return filepath.Join(d.cfg.StateDir, "jobs", id)
}
func (d *Daemon) metaPath(id string) string   { return filepath.Join(d.jobDir(id), "meta.json") }
func (d *Daemon) runDir(id string) string     { return filepath.Join(d.jobDir(id), "run") }
func (d *Daemon) resultPath(id string) string { return filepath.Join(d.jobDir(id), "result.txt") }
func (d *Daemon) errorPath(id string) string  { return filepath.Join(d.jobDir(id), "error.txt") }

// retryablePath marks a failed job whose error was a disk fault rather
// than a deterministic one: a client may resubmit the identical spec.
func (d *Daemon) retryablePath(id string) string {
	return filepath.Join(d.jobDir(id), "retryable")
}

// EventsPath returns the job's JSONL event-stream file.
func (d *Daemon) EventsPath(id string) string {
	return filepath.Join(d.jobDir(id), "events.jsonl")
}

// recover enumerates StateDir/jobs and rebuilds the in-memory store.
func (d *Daemon) recover() error {
	root := filepath.Join(d.cfg.StateDir, "jobs")
	entries, err := d.fs.ReadDir(root)
	if err != nil {
		return fmt.Errorf("serve: recover: %w", err)
	}
	var metas []jobMeta
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		data, err := d.fs.ReadFile(filepath.Join(root, e.Name(), "meta.json"))
		if errors.Is(err, os.ErrNotExist) {
			continue // job dir created but never persisted; abandon it
		}
		if err != nil {
			// A meta file that exists but cannot be read is a disk fault,
			// not an abandoned job: silently dropping it would forget a
			// recoverable job. Fail loudly and let the operator retry.
			return fmt.Errorf("serve: recover %s: %w", e.Name(), err)
		}
		var m jobMeta
		if err := json.Unmarshal(data, &m); err != nil || m.ID != e.Name() {
			fmt.Fprintf(os.Stderr, "serve: skipping corrupt job dir %s\n", e.Name())
			continue
		}
		metas = append(metas, m)
	}
	sort.Slice(metas, func(i, j int) bool { return metas[i].Seq < metas[j].Seq })
	for _, m := range metas {
		j := &Job{ID: m.ID, Seq: m.Seq, Spec: m.Spec, Key: m.Key, Stamp: m.Stamp}
		if m.Seq >= d.nextSeq {
			d.nextSeq = m.Seq + 1
		}
		d.jobs[j.ID] = j
		d.order = append(d.order, j)
		switch {
		case d.exists(d.resultPath(j.ID)):
			body, err := d.fs.ReadFile(d.resultPath(j.ID))
			if err == nil {
				j.resultSize = int64(len(body))
				if j.Stamp == d.stamp {
					d.cache.Put(j.Key, body)
				}
			}
			j.state = StateDone
		case d.exists(d.errorPath(j.ID)):
			msg, _ := d.fs.ReadFile(d.errorPath(j.ID))
			j.state = StateFailed
			j.err = strings.TrimSpace(string(msg))
			j.retryable = d.exists(d.retryablePath(j.ID))
		default:
			// Queued or in flight when the previous daemon died: its
			// checkpoint (if any) resumes, its event stream appends.
			j.state = StateQueued
			j.resumed = true
			d.queue = append(d.queue, j)
			d.queued++
			if j.Stamp == d.stamp {
				d.activeByKey[j.Key] = j
			}
			d.resumed.Inc()
		}
	}
	d.queueDepth.Set(float64(d.queued))
	return nil
}

func (d *Daemon) exists(path string) bool {
	_, err := d.fs.Stat(path)
	return err == nil
}

// BeginDrain rejects every subsequent submission with ErrDraining (503 +
// Retry-After over HTTP) while existing jobs keep executing and results
// keep being served. Call it on SIGTERM before Close so late clients get
// a back-off hint instead of a connection error.
func (d *Daemon) BeginDrain() {
	if d.draining.CompareAndSwap(false, true) {
		d.jobEventGlobal("daemon.draining")
	}
}

// Draining reports whether BeginDrain has been called.
func (d *Daemon) Draining() bool { return d.draining.Load() }

// Degraded reports whether persistent disk faults have flipped the
// daemon to degraded mode.
func (d *Daemon) Degraded() bool { return d.degraded.Load() }

// jobEventGlobal is a stderr note for daemon-level state changes (no job
// stream to attach them to).
func (d *Daemon) jobEventGlobal(what string) {
	fmt.Fprintf(os.Stderr, "serve: %s\n", what)
}

// notePersist feeds the degraded-mode fault tracker with the outcome of
// one durable-state write. Any success resets the streak and recovers;
// DegradeAfter consecutive disk faults trip degraded mode.
func (d *Daemon) notePersist(err error) {
	if err == nil {
		d.faultMu.Lock()
		d.faultStreak = 0
		d.faultMu.Unlock()
		if d.degraded.CompareAndSwap(true, false) {
			d.degradedG.Set(0)
			d.jobEventGlobal("daemon.recovered (disk writes succeeding again)")
		}
		return
	}
	if !chaos.IsDiskFault(err) {
		return
	}
	d.diskFaults.Inc()
	d.faultMu.Lock()
	d.faultStreak++
	trip := d.cfg.DegradeAfter > 0 && d.faultStreak >= d.cfg.DegradeAfter
	d.faultMu.Unlock()
	if trip && d.degraded.CompareAndSwap(false, true) {
		d.degradedG.Set(1)
		d.jobEventGlobal("daemon.degraded (persistent disk faults; rejecting new jobs)")
	}
}

// persist is WriteFileAtomic through the daemon's filesystem, feeding the
// degraded-mode tracker.
func (d *Daemon) persist(path string, data []byte) error {
	err := runctl.WriteFileAtomicFS(d.fs, path, data, 0o666)
	d.notePersist(err)
	return err
}

// probeDegraded attempts one rate-limited recovery probe: a small atomic
// write to the state dir. On success the notePersist inside recovers the
// daemon. Reports whether the daemon is (still) degraded afterwards.
func (d *Daemon) probeDegraded() bool {
	if !d.degraded.Load() {
		return false
	}
	d.faultMu.Lock()
	due := time.Since(d.lastProbe) >= d.cfg.ProbeInterval
	if due {
		d.lastProbe = time.Now()
	}
	d.faultMu.Unlock()
	if due {
		_ = d.persist(filepath.Join(d.cfg.StateDir, ".probe"), []byte("probe\n"))
	}
	return d.degraded.Load()
}

// Submit admits one job. The spec is normalized first; identical
// submissions (same normalized spec under the same stamp) are served from
// the result cache byte-identically, or coalesced onto the in-flight
// execution if one exists. Fresh work is admitted only while the bounded
// queue has room (ErrQueueFull otherwise), the daemon is not draining
// (ErrDraining) and not degraded by persistent disk faults (ErrDegraded —
// cache hits for already-completed specs are still served).
func (d *Daemon) Submit(spec Spec) (SubmitResult, error) {
	if d.draining.Load() {
		d.rejectedBusy.Inc()
		return SubmitResult{}, ErrDraining
	}
	n, err := spec.Normalize()
	if err != nil {
		return SubmitResult{}, err
	}
	key := n.CacheKey(d.stamp)

	d.mu.Lock()
	// A finished job may briefly linger in activeByKey (execute marks it
	// done before releasing it); never coalesce onto a terminal job — the
	// cache below already holds its result.
	if active, ok := d.activeByKey[key]; ok && !active.State().Terminal() {
		d.coalesced.Inc()
		d.mu.Unlock()
		return SubmitResult{Job: active, Coalesced: true}, nil
	}
	if body, ok := d.cache.Get(key); ok {
		j, err := d.newJobLocked(n, key)
		if err != nil && !chaos.IsDiskFault(err) {
			d.mu.Unlock()
			return SubmitResult{}, err
		}
		// On a disk fault the job stays in-memory only (it will not
		// survive a restart) — a degraded daemon keeps serving cached
		// results, which is the whole point of degraded mode.
		j.state = StateDone
		j.cacheHit = true
		j.resultSize = int64(len(body))
		d.submitted.Inc()
		d.completed.Inc()
		d.mu.Unlock()
		if err == nil {
			// Persist the served result so the job survives a restart like
			// any executed one. The body bytes are exactly the cached ones;
			// handleResult falls back to the cache if this write is lost.
			_ = d.persist(d.resultPath(j.ID), body)
		}
		d.jobEvent(j, "job.cache_hit", map[string]any{"key": j.Key, "bytes": len(body)})
		return SubmitResult{Job: j, CacheHit: true}, nil
	}
	if d.degraded.Load() {
		d.mu.Unlock()
		if d.probeDegraded() {
			d.rejectedBusy.Inc()
			return SubmitResult{}, ErrDegraded
		}
		d.mu.Lock() // probe write succeeded: recovered, admit as usual
	}
	if d.queued+d.running >= d.cfg.QueueCap {
		d.rejected.Inc()
		d.mu.Unlock()
		return SubmitResult{}, ErrQueueFull
	}
	j, err := d.newJobLocked(n, key)
	if err != nil {
		d.mu.Unlock()
		return SubmitResult{}, err
	}
	j.state = StateQueued
	d.activeByKey[key] = j
	d.queue = append(d.queue, j)
	d.queued++
	d.queueDepth.Set(float64(d.queued))
	d.submitted.Inc()
	d.cond.Signal()
	d.mu.Unlock()
	d.jobEvent(j, "job.queued", map[string]any{"kind": j.Spec.Kind, "key": j.Key})
	return SubmitResult{Job: j}, nil
}

// newJobLocked allocates the next job, persists its meta record and
// registers it. On a disk-fault persist failure the job is still
// registered in memory and returned alongside the error, so cache hits
// can be served through a broken disk; other errors return a nil job.
// Caller holds d.mu.
func (d *Daemon) newJobLocked(spec Spec, key string) (*Job, error) {
	seq := d.nextSeq
	d.nextSeq++
	j := &Job{
		ID:    fmt.Sprintf("j%06d", seq),
		Seq:   seq,
		Spec:  spec,
		Key:   key,
		Stamp: d.stamp,
	}
	meta, err := json.MarshalIndent(jobMeta{
		ID: j.ID, Seq: j.Seq, Spec: j.Spec, Key: j.Key, Stamp: j.Stamp,
	}, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := d.fs.MkdirAll(d.jobDir(j.ID), 0o777); err != nil {
		d.notePersist(err)
		if !chaos.IsDiskFault(err) {
			return nil, fmt.Errorf("serve: job dir: %w", err)
		}
		d.jobs[j.ID] = j
		d.order = append(d.order, j)
		return j, err
	}
	if err := d.persist(d.metaPath(j.ID), append(meta, '\n')); err != nil {
		if !chaos.IsDiskFault(err) {
			return nil, err
		}
		d.jobs[j.ID] = j
		d.order = append(d.order, j)
		return j, err
	}
	d.jobs[j.ID] = j
	d.order = append(d.order, j)
	return j, nil
}

// Job looks a job up by ID.
func (d *Daemon) Job(id string) (*Job, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := d.jobs[id]
	return j, ok
}

// Jobs returns every job in submission order.
func (d *Daemon) Jobs() []*Job {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]*Job(nil), d.order...)
}

// Result returns a completed job's rendered result bytes.
func (d *Daemon) Result(id string) ([]byte, error) {
	j, ok := d.Job(id)
	if !ok {
		return nil, fmt.Errorf("serve: unknown job %s", id)
	}
	if s := j.State(); s != StateDone {
		return nil, fmt.Errorf("serve: job %s is %s, not done", id, s)
	}
	body, err := d.fs.ReadFile(d.resultPath(id))
	if err != nil {
		// The result file may be unreadable (disk fault) or absent (cache
		// hit persisted best-effort while degraded); the stamped cache
		// holds the identical bytes.
		if cached, ok := d.cache.Get(j.Key); ok {
			return cached, nil
		}
		return nil, err
	}
	return body, nil
}

// WaitTerminal blocks until the job reaches done or failed, polling its
// state, or until timeout; it reports whether the job finished in time.
func (d *Daemon) WaitTerminal(id string, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		j, ok := d.Job(id)
		if !ok {
			return false
		}
		if j.State().Terminal() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// executor pulls queued jobs until the daemon context is canceled.
func (d *Daemon) executor() {
	defer d.wg.Done()
	for {
		d.mu.Lock()
		for len(d.queue) == 0 && d.ctx.Err() == nil {
			d.cond.Wait()
		}
		if d.ctx.Err() != nil {
			d.mu.Unlock()
			return
		}
		j := d.queue[0]
		d.queue = d.queue[1:]
		d.queued--
		d.running++
		d.queueDepth.Set(float64(d.queued))
		d.runningG.Set(float64(d.running))
		d.mu.Unlock()

		d.execute(j)

		d.mu.Lock()
		d.running--
		d.runningG.Set(float64(d.running))
		d.mu.Unlock()
	}
}

// execute runs one job under its runctl checkpoint and publishes the
// outcome (result file + cache, error file, or interrupted-for-resume).
func (d *Daemon) execute(j *Job) {
	j.setState(StateRunning)

	// A crash mid-append can leave a torn final event line; truncate to
	// the last record boundary before resuming the append so readers (and
	// their byte offsets) only ever see whole records.
	d.truncateTornEvents(j.ID)
	evFile, err := d.fs.OpenFile(d.EventsPath(j.ID),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		d.fail(j, nil, fmt.Errorf("event stream: %w", err))
		return
	}
	tracer := obs.NewTracer(evFile)
	tracer.SetSampling(1)
	closeEvents := func() {
		tracer.Close()
		_ = evFile.Close()
	}

	before := d.reg.Snapshot()
	j.mu.Lock()
	j.before, j.hasBefore = before, true
	j.mu.Unlock()

	resumed := runctl.HasCheckpointFS(d.fs, d.runDir(j.ID))
	tracer.Event("job.start", map[string]any{
		"id": j.ID, "kind": j.Spec.Kind, "resume": resumed,
	})
	rn, err := runctl.OpenFS(d.ctx, d.fs, d.runDir(j.ID), runctl.Manifest{
		Tool:       j.Spec.ToolName(),
		ConfigHash: j.Spec.ConfigHash(),
		Seed:       j.Spec.Seed,
	}, resumed)
	if err != nil {
		d.fail(j, closeEvents, err)
		return
	}
	rn.Tracer = tracer
	loaded := uint64(rn.Loaded())
	j.unitsLoaded.Store(loaded)
	j.unitsDone.Store(loaded)
	rn.Hooks.AfterUnit = func(unit string) {
		j.unitsDone.Add(1)
		tracer.Event("job.unit", map[string]any{"unit": unit})
		if d.cfg.UnitHook != nil {
			d.cfg.UnitHook(j.ID, unit)
		}
	}

	var buf bytes.Buffer
	execErr := Exec(j.Spec, Env{
		Workers: d.cfg.JobWorkers,
		Reg:     d.reg,
		Tracer:  tracer,
		Run:     rn,
	}, &buf)
	if cerr := rn.Close(); execErr == nil {
		execErr = cerr
	}

	after := d.reg.Snapshot()
	j.mu.Lock()
	j.after, j.hasAfter = after, true
	j.mu.Unlock()

	if errors.Is(execErr, runctl.ErrInterrupted) {
		// Daemon drain: the checkpoint holds every completed unit; a
		// restarted daemon re-enqueues this job and resumes it.
		j.setState(StateInterrupted)
		tracer.Event("job.interrupted", map[string]any{
			"units_done": j.unitsDone.Load(),
		})
		closeEvents()
		return
	}
	if execErr != nil {
		d.fail(j, closeEvents, execErr)
		return
	}

	body := buf.Bytes()
	if err := d.persist(d.resultPath(j.ID), body); err != nil {
		d.fail(j, closeEvents, err)
		return
	}
	if j.Stamp == d.stamp {
		d.cache.Put(j.Key, body)
	}
	j.mu.Lock()
	j.state = StateDone
	j.resultSize = int64(len(body))
	j.mu.Unlock()
	d.completed.Inc()
	tracer.Event("job.done", map[string]any{
		"bytes": len(body), "units_done": j.unitsDone.Load(),
	})
	closeEvents()
	d.release(j)
}

// fail marks a job failed and records the error durably so a restarted
// daemon does not retry a deterministic failure. Disk-fault failures are
// marked retryable — the job's inputs are fine, the environment was not —
// so a client may safely resubmit the identical spec.
func (d *Daemon) fail(j *Job, closeEvents func(), err error) {
	msg := err.Error()
	retryable := chaos.IsDiskFault(err)
	_ = d.persist(d.errorPath(j.ID), []byte(msg+"\n"))
	if retryable {
		// Best-effort: if the disk is broken this write fails too, and a
		// restarted daemon re-enqueues the job anyway (no error file).
		_ = d.persist(d.retryablePath(j.ID), []byte("disk fault\n"))
	}
	j.mu.Lock()
	j.state = StateFailed
	j.err = msg
	j.retryable = retryable
	j.mu.Unlock()
	d.failed.Inc()
	d.jobEvent(j, "job.failed", map[string]any{"error": msg})
	if closeEvents != nil {
		closeEvents()
	}
	d.release(j)
}

// release drops the job's in-flight coalescing registration.
func (d *Daemon) release(j *Job) {
	d.mu.Lock()
	if d.activeByKey[j.Key] == j {
		delete(d.activeByKey, j.Key)
	}
	d.mu.Unlock()
}

// jobEvent appends one standalone lifecycle record to the job's event
// stream outside an execution window (submission, cache hits, failures
// before the tracer opened). Record shape matches the obs tracer's.
func (d *Daemon) jobEvent(j *Job, name string, attrs map[string]any) {
	f, err := d.fs.OpenFile(d.EventsPath(j.ID),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return
	}
	rec := map[string]any{
		"type": "event", "v": obs.TraceSchemaVersion, "name": name,
		"t_us": 0, "attrs": attrs,
	}
	if data, err := json.Marshal(rec); err == nil {
		_, _ = f.Write(append(data, '\n'))
	}
	_ = f.Close()
}

// truncateTornEvents drops a torn final line a crash mid-append left in
// the job's event stream, so resumed appends continue on a record
// boundary and byte offsets handed to clients always land between whole
// records.
func (d *Daemon) truncateTornEvents(id string) {
	path := d.EventsPath(id)
	data, err := d.fs.ReadFile(path)
	if err != nil || len(data) == 0 || data[len(data)-1] == '\n' {
		return
	}
	_ = d.fs.Truncate(path, int64(lastNewline(data)))
}

// Close drains the daemon: the context is canceled, executors finish at
// the next work-unit boundary (in-flight jobs checkpoint and are marked
// interrupted for the next process), and the call returns once every
// executor has exited. Safe to call more than once.
func (d *Daemon) Close() error {
	d.cancel()
	d.mu.Lock()
	d.cond.Broadcast()
	d.mu.Unlock()
	d.wg.Wait()
	return nil
}
