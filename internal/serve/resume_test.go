package serve

import (
	"bytes"
	"math/rand"
	"sync/atomic"
	"testing"

	"glitchlab/internal/obs"
)

// TestDaemonCrashResumeByteIdentical is the satellite crash/resume
// property test: submit a mixed batch, kill the daemon after a random
// prefix of checkpointed work units (the runctl kill-after-prefix
// pattern), restart it over the same state directory — possibly killing
// it again — and require every job to complete with results
// byte-identical to an uninterrupted run.
func TestDaemonCrashResumeByteIdentical(t *testing.T) {
	specs := []Spec{
		campaignSpec, // 42 units
		{Kind: KindCampaign, Model: "xor", MaxFlips: 2}, // 42 units
		evalSpec, // checkpoint-less; reruns from scratch
	}
	goldens := make([][]byte, len(specs))
	for i, s := range specs {
		goldens[i] = golden(t, s)
	}

	// Kill points below 40 guarantee neither 42-unit campaign finished.
	kills := [][]int{{3, 27}, {1}, {40}}
	if !testing.Short() {
		rng := rand.New(rand.NewSource(11))
		kills = append(kills, [][]int{
			{rng.Intn(40) + 1},
			{rng.Intn(20) + 1, rng.Intn(20) + 1}, // crash the restarted daemon too
		}...)
	}

	for trial, killAfters := range kills {
		state := t.TempDir()

		// First daemon: submit everything, crash after killAfters[0] units.
		ids := make([]string, len(specs))
		d, killed := crashAfterUnits(t, state, killAfters[0])
		for i, s := range specs {
			res, err := d.Submit(s)
			if err != nil {
				t.Fatalf("trial %d: submit %d: %v", trial, i, err)
			}
			ids[i] = res.Job.ID
		}
		<-killed // the hook's kill has fully drained the daemon

		interrupted := 0
		for _, id := range ids {
			j, ok := d.Job(id)
			if !ok {
				t.Fatalf("trial %d: job %s lost", trial, id)
			}
			if !j.State().Terminal() {
				interrupted++
			}
		}
		if interrupted == 0 {
			t.Fatalf("trial %d: crash after %d units interrupted nothing", trial, killAfters[0])
		}

		// Restart (and possibly crash again) before the final drain.
		for _, ka := range killAfters[1:] {
			_, killed2 := crashAfterUnits(t, state, ka)
			<-killed2
		}
		d3 := openTestDaemon(t, Config{StateDir: state, Reg: obs.NewRegistry()})
		if n := d3.Registry().Counter(MetricJobsResumed).Value(); n == 0 {
			t.Fatalf("trial %d: restarted daemon re-enqueued no jobs", trial)
		}

		resumedWithCheckpoint := false
		for i, id := range ids {
			if !d3.WaitTerminal(id, waitTimeout) {
				t.Fatalf("trial %d: job %s never completed after restart", trial, id)
			}
			j, _ := d3.Job(id)
			st := j.Status()
			if st.State != StateDone {
				t.Fatalf("trial %d: job %s = %+v, want done", trial, id, st)
			}
			if st.Resumed && st.UnitsLoaded > 0 {
				resumedWithCheckpoint = true
			}
			got, err := d3.Result(id)
			if err != nil {
				t.Fatalf("trial %d: result %s: %v", trial, id, err)
			}
			if !bytes.Equal(got, goldens[i]) {
				t.Errorf("trial %d: job %s resumed to %d bytes, want %d byte-identical to an uninterrupted run",
					trial, id, len(got), len(goldens[i]))
			}
		}
		if !resumedWithCheckpoint {
			t.Errorf("trial %d: no job resumed from a non-empty checkpoint; the crash exercised nothing", trial)
		}

		// Completed-after-resume results entered the cache like any others.
		for i, s := range specs {
			hit, err := d3.Submit(s)
			if err != nil || !hit.CacheHit {
				t.Errorf("trial %d: post-resume resubmission of spec %d: hit=%v err=%v",
					trial, i, hit.CacheHit, err)
			}
		}
		d3.Close()
	}
}

// crashAfterUnits opens a daemon over state that kills itself (context
// cancel, exactly what SIGTERM does in cmd/glitchd) once n work units
// have been durably checkpointed across all jobs. The returned channel
// closes when the self-kill has fully drained; callers must receive from
// it before inspecting state — n must therefore be below the number of
// units the daemon will checkpoint, or the kill never fires.
func crashAfterUnits(t *testing.T, state string, n int) (*Daemon, <-chan struct{}) {
	t.Helper()
	// A restarted daemon re-enqueues recovered jobs inside Open, so the
	// hook can fire before Open even returns; hand the daemon over through
	// a channel rather than a captured variable.
	ready := make(chan *Daemon, 1)
	killed := make(chan struct{})
	var units atomic.Int64
	d := openTestDaemon(t, Config{
		StateDir: state,
		Reg:      obs.NewRegistry(),
		UnitHook: func(string, string) {
			if units.Add(1) == int64(n) {
				dd := <-ready
				// Cancel synchronously so executors stop at the very next
				// unit boundary: under load, an async-only Close lets the
				// engines overshoot the kill point far enough to finish
				// every job, leaving the restart nothing to resume. The
				// blocking drain still needs its own goroutine (Close
				// waits for the executor running this hook).
				dd.cancel()
				go func() {
					dd.Close()
					close(killed)
				}()
			}
		},
	})
	ready <- d
	return d, killed
}
