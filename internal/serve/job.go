package serve

import (
	"sync"
	"sync/atomic"

	"glitchlab/internal/obs"
)

// State is a job's lifecycle position. Terminal states are done and
// failed; interrupted marks a job whose daemon drained mid-run (its
// checkpoint is durable and a restarted daemon re-enqueues it).
type State string

const (
	StateQueued      State = "queued"
	StateRunning     State = "running"
	StateDone        State = "done"
	StateFailed      State = "failed"
	StateInterrupted State = "interrupted"
)

// Terminal reports whether the state is final for this daemon process.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed }

// Job is one submitted experiment: its normalized spec, identity and
// mutable execution state. All mutation goes through the daemon.
type Job struct {
	ID   string `json:"id"`
	Seq  int    `json:"seq"`
	Spec Spec   `json:"spec"`
	// Key is the stamped result-cache key; Stamp is the schema/engine
	// stamp the job was submitted under.
	Key   string `json:"key"`
	Stamp string `json:"stamp"`

	unitsDone   atomic.Uint64 // completed work units, including resumed ones
	unitsLoaded atomic.Uint64 // units restored from the checkpoint on open

	mu         sync.Mutex
	state      State
	err        string
	retryable  bool  // the failure was a disk fault, not a bad spec
	cacheHit   bool  // served from the result cache without executing
	resumed    bool  // re-enqueued from a previous daemon process
	resultSize int64 // bytes of the rendered result, once done
	// Metric snapshots bracketing the execution (obs.SnapshotDiff input):
	// before is taken when the job starts, after when it finishes.
	before, after obs.Snapshot
	hasBefore     bool
	hasAfter      bool
}

// Status is the wire view of a job.
type Status struct {
	ID          string `json:"id"`
	Kind        string `json:"kind"`
	State       State  `json:"state"`
	Spec        Spec   `json:"spec"`
	Key         string `json:"key"`
	UnitsDone   uint64 `json:"units_done"`
	UnitsLoaded uint64 `json:"units_loaded,omitempty"`
	CacheHit    bool   `json:"cache_hit,omitempty"`
	Resumed     bool   `json:"resumed,omitempty"`
	ResultSize  int64  `json:"result_size,omitempty"`
	Error       string `json:"error,omitempty"`
	// Retryable marks a failure caused by the environment (disk faults)
	// rather than the spec: resubmitting the identical spec is safe and
	// may succeed.
	Retryable bool `json:"retryable,omitempty"`
}

// Status snapshots the job for the API.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID:          j.ID,
		Kind:        j.Spec.Kind,
		State:       j.state,
		Spec:        j.Spec,
		Key:         j.Key,
		UnitsDone:   j.unitsDone.Load(),
		UnitsLoaded: j.unitsLoaded.Load(),
		CacheHit:    j.cacheHit,
		Resumed:     j.resumed,
		ResultSize:  j.resultSize,
		Error:       j.err,
		Retryable:   j.retryable,
	}
}

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

func (j *Job) setState(s State) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
}

// MetricsDiff returns the registry deltas attributable to the job's
// execution window: before-vs-after for finished jobs, before-vs-now for
// running ones. With several executors the window overlaps concurrent
// jobs' work — on a single-executor daemon the attribution is exact. The
// bool is false until the job has started executing.
func (j *Job) MetricsDiff(now func() obs.Snapshot) (obs.Diff, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.hasBefore {
		return obs.Diff{}, false
	}
	if j.hasAfter {
		return obs.SnapshotDiff(j.before, j.after), true
	}
	return obs.SnapshotDiff(j.before, now()), true
}
