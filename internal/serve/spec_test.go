package serve

import (
	"strings"
	"testing"

	"glitchlab/internal/core"
)

func mustNormalize(t *testing.T, s Spec) Spec {
	t.Helper()
	n, err := s.Normalize()
	if err != nil {
		t.Fatalf("Normalize(%+v): %v", s, err)
	}
	return n
}

func TestNormalizeDefaults(t *testing.T) {
	cases := []struct {
		name string
		in   Spec
		want Spec
	}{
		{
			name: "campaign flip budget defaults to the full sweep",
			in:   Spec{Kind: KindCampaign, Model: "and"},
			want: Spec{Kind: KindCampaign, Model: "and", MaxFlips: 16},
		},
		{
			name: "campaign out-of-range flip budget clamps to the full sweep",
			in:   Spec{Kind: KindCampaign, Model: "and", MaxFlips: 40},
			want: Spec{Kind: KindCampaign, Model: "and", MaxFlips: 16},
		},
		{
			name: "campaign ignores scan/eval fields",
			in:   Spec{Kind: KindCampaign, Model: "xor", MaxFlips: 2, Exp: "table1a", Seed: 9},
			want: Spec{Kind: KindCampaign, Model: "xor", MaxFlips: 2},
		},
		{
			name: "all-variants campaign ignores zero-invalid",
			in:   Spec{Kind: KindCampaign, ZeroInvalid: true, MaxFlips: 2},
			want: Spec{Kind: KindCampaign, MaxFlips: 2},
		},
		{
			name: "scan defaults exp and seed",
			in:   Spec{Kind: KindScan},
			want: Spec{Kind: KindScan, Exp: "all", Seed: core.DefaultSeed},
		},
		{
			name: "scan ignores campaign fields",
			in:   Spec{Kind: KindScan, Exp: "search", Seed: 7, Model: "and", ZeroInvalid: true, PadUDF: true, MaxFlips: 3},
			want: Spec{Kind: KindScan, Exp: "search", Seed: 7},
		},
		{
			name: "eval zeroes the seed for seed-blind experiments",
			in:   Spec{Kind: KindEval, Exp: "table5", Seed: 7},
			want: Spec{Kind: KindEval, Exp: "table5"},
		},
		{
			name: "eval keeps the seed for table6",
			in:   Spec{Kind: KindEval, Exp: "table6", Seed: 7},
			want: Spec{Kind: KindEval, Exp: "table6", Seed: 7},
		},
		{
			name: "eval defaults the seed for all",
			in:   Spec{Kind: KindEval, Exp: "all"},
			want: Spec{Kind: KindEval, Exp: "all", Seed: core.DefaultSeed},
		},
		{
			name: "eval figure2 defaults the campaign shape",
			in:   Spec{Kind: KindEval, Exp: "figure2"},
			want: Spec{Kind: KindEval, Exp: "figure2", Model: "and", MaxFlips: 16},
		},
		{
			name: "eval non-figure2 ignores campaign fields",
			in:   Spec{Kind: KindEval, Exp: "lint", Model: "xor", ZeroInvalid: true, MaxFlips: 4},
			want: Spec{Kind: KindEval, Exp: "lint"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := mustNormalize(t, tc.in)
			if got != tc.want {
				t.Errorf("Normalize(%+v) = %+v, want %+v", tc.in, got, tc.want)
			}
		})
	}
}

func TestNormalizeIsIdempotent(t *testing.T) {
	specs := []Spec{
		{Kind: KindCampaign, MaxFlips: 3},
		{Kind: KindScan, Exp: "table2", Seed: 5},
		{Kind: KindEval, Exp: "figure2", Model: "or", ZeroInvalid: true, MaxFlips: 2},
	}
	for _, s := range specs {
		once := mustNormalize(t, s)
		twice := mustNormalize(t, once)
		if once != twice {
			t.Errorf("Normalize not idempotent: %+v -> %+v", once, twice)
		}
	}
}

func TestNormalizeErrors(t *testing.T) {
	bad := []Spec{
		{Kind: "bake"},
		{Kind: ""},
		{Kind: KindCampaign, Model: "nand"},
		{Kind: KindScan, Exp: "table9"},
		{Kind: KindScan, Exp: "figure2"}, // eval experiment, wrong kind
		{Kind: KindEval, Exp: "tableX"},
		{Kind: KindEval, Exp: "figure2", Model: "nand"},
	}
	for _, s := range bad {
		if _, err := s.Normalize(); err == nil {
			t.Errorf("Normalize(%+v): want error, got nil", s)
		}
	}
}

// TestCacheKeyFieldSensitivity is the satellite cache-correctness core:
// any single result-shaping field change must change the key, and fields
// a kind ignores must not.
func TestCacheKeyFieldSensitivity(t *testing.T) {
	const stamp = "glitchd/v1 test"
	base := mustNormalize(t, Spec{Kind: KindCampaign, Model: "and", MaxFlips: 4})
	variants := []Spec{
		{Kind: KindCampaign, Model: "or", MaxFlips: 4},
		{Kind: KindCampaign, Model: "and", ZeroInvalid: true, MaxFlips: 4},
		{Kind: KindCampaign, Model: "and", PadUDF: true, MaxFlips: 4},
		{Kind: KindCampaign, Model: "and", MaxFlips: 5},
		{Kind: KindCampaign, MaxFlips: 4}, // all four variants vs one model
		{Kind: KindScan, Exp: "table1a"},
		{Kind: KindScan, Exp: "table1b"},
		{Kind: KindScan, Exp: "table1a", Seed: 7},
		{Kind: KindEval, Exp: "table5"},
		{Kind: KindEval, Exp: "table6"},
		{Kind: KindEval, Exp: "table6", Seed: 7},
		{Kind: KindEval, Exp: "figure2", Model: "and", MaxFlips: 4},
	}
	seen := map[string]Spec{base.CacheKey(stamp): base}
	for _, v := range variants {
		n := mustNormalize(t, v)
		key := n.CacheKey(stamp)
		if prev, dup := seen[key]; dup {
			t.Errorf("cache key collision: %+v and %+v share %s", prev, n, key)
		}
		seen[key] = n
	}
}

// TestCacheKeyIgnoresNormalizedAwayFields: submissions that cannot differ
// in output share one key, so the cache coalesces them.
func TestCacheKeyIgnoresNormalizedAwayFields(t *testing.T) {
	const stamp = "glitchd/v1 test"
	pairs := [][2]Spec{
		{{Kind: KindCampaign, Model: "and"}, {Kind: KindCampaign, Model: "and", MaxFlips: 16, Seed: 9}},
		{{Kind: KindCampaign, ZeroInvalid: true}, {Kind: KindCampaign}},
		{{Kind: KindScan}, {Kind: KindScan, Exp: "all", Seed: core.DefaultSeed, Model: "xor"}},
		{{Kind: KindEval, Exp: "table5", Seed: 3}, {Kind: KindEval, Exp: "table5", Seed: 8}},
		{{Kind: KindEval, Exp: "lint", MaxFlips: 2}, {Kind: KindEval, Exp: "lint"}},
	}
	for _, p := range pairs {
		a := mustNormalize(t, p[0]).CacheKey(stamp)
		b := mustNormalize(t, p[1]).CacheKey(stamp)
		if a != b {
			t.Errorf("specs %+v and %+v should share a cache key", p[0], p[1])
		}
	}
}

// TestCacheKeyStampChange is the satellite-6 invalidation contract: the
// same spec under a different schema/engine stamp must miss.
func TestCacheKeyStampChange(t *testing.T) {
	n := mustNormalize(t, Spec{Kind: KindScan, Exp: "search"})
	if n.CacheKey("glitchd/v1 engine/v1 rules/a") == n.CacheKey("glitchd/v1 engine/v1 rules/b") {
		t.Error("rules-version change must change the cache key")
	}
	if n.CacheKey("glitchd/v1 engine/v1 r") == n.CacheKey("glitchd/v2 engine/v1 r") {
		t.Error("daemon schema version change must change the cache key")
	}
}

func TestStampCoversEngineAndRules(t *testing.T) {
	s := Stamp()
	if !strings.HasPrefix(s, "glitchd/v1 ") {
		t.Errorf("Stamp() = %q, want glitchd/v1 prefix", s)
	}
	if !strings.Contains(s, core.ResultStamp()) {
		t.Errorf("Stamp() = %q must embed core.ResultStamp() = %q", s, core.ResultStamp())
	}
}

func TestConfigHashSharedWithCLI(t *testing.T) {
	// Normalization-equivalent submissions must produce one config hash, so
	// the daemon job directory is resumable as one run.
	a := mustNormalize(t, Spec{Kind: KindCampaign, Model: "and"})
	b := mustNormalize(t, Spec{Kind: KindCampaign, Model: "and", MaxFlips: 16})
	if a.ConfigHash() != b.ConfigHash() {
		t.Error("equivalent campaign specs must share a config hash")
	}
	c := mustNormalize(t, Spec{Kind: KindScan, Exp: "search", Seed: 2})
	if a.ConfigHash() == c.ConfigHash() {
		t.Error("campaign and scan hashes should differ")
	}
}

func TestToolName(t *testing.T) {
	for spec, want := range map[Spec]string{
		{Kind: KindCampaign}: "glitchemu",
		{Kind: KindScan}:     "glitchscan",
		{Kind: KindEval}:     "glitcheval",
	} {
		if got := spec.ToolName(); got != want {
			t.Errorf("ToolName(%s) = %q, want %q", spec.Kind, got, want)
		}
	}
}
