// Package serve is glitchlab's serving layer: it turns the three batch
// experiment CLIs (glitchemu, glitchscan, glitcheval) into one
// multi-tenant backend. Spec names an experiment configuration, Exec runs
// it flag-free through the same engines and renderers the CLIs use (so
// daemon results are byte-identical to direct CLI runs by construction),
// and Daemon queues, executes, checkpoints, streams and caches jobs over
// HTTP.
package serve

import (
	"fmt"
	"io"

	"glitchlab/internal/analyze"
	"glitchlab/internal/campaign"
	"glitchlab/internal/core"
	"glitchlab/internal/glitcher"
	"glitchlab/internal/mutate"
	"glitchlab/internal/obs"
	"glitchlab/internal/obs/profile"
	"glitchlab/internal/passes"
	"glitchlab/internal/report"
	"glitchlab/internal/runctl"
)

// Env is the execution environment for one job: everything that shapes
// how a spec runs but never what its results say. The CLIs build one from
// their flags; the daemon builds one per job with its worker budget and
// per-job tracer.
type Env struct {
	// Workers shards the engines across goroutines (<= 1 runs serially;
	// results are identical either way).
	Workers int
	// FullRun disables trigger-point snapshot replay (slower,
	// byte-identical results).
	FullRun bool
	// Reg, when non-nil, receives engine metrics and enables the campaign
	// and scan observers, exactly like the CLIs' -metrics/-trace/-serve.
	Reg *obs.Registry
	// Tracer, when non-nil, receives span/event records.
	Tracer *obs.Tracer
	// Progress, when non-nil, returns a per-campaign progress sink.
	Progress func(label string) func(done, total uint64)
	// Prof, when non-nil, samples phase attribution on the hot path.
	Prof *profile.Profile
	// EvalProgress, when non-nil, receives Table VI per-cell progress.
	EvalProgress func(sc, cfg string, a core.Attack, cell core.Table6Cell)
	// Run threads the run controller through the engines: cancellation,
	// checkpoint/resume and panic quarantine. May be nil.
	Run *runctl.Run
}

func (e Env) campaignObserver(label string) *campaign.Observer {
	if e.Reg == nil {
		return nil
	}
	o := campaign.NewObserver(e.Reg, e.Tracer)
	if e.Progress != nil {
		o.OnProgress(0, e.Progress(label))
	}
	return o
}

// Exec runs one normalized spec and renders its results to w with the
// exact bytes the equivalent CLI invocation writes to its -out file. It
// is the single engine entry point shared by the CLIs and the daemon.
func Exec(spec Spec, env Env, w io.Writer) error {
	switch spec.Kind {
	case KindCampaign:
		return execCampaign(spec, env, w)
	case KindScan:
		return execScan(spec, env, w)
	case KindEval:
		return execEval(spec, env, w)
	default:
		return fmt.Errorf("serve: unknown job kind %q", spec.Kind)
	}
}

func execCampaign(spec Spec, env Env, w io.Writer) error {
	variants, err := core.Figure2Variants(spec.Model, spec.ZeroInvalid)
	if err != nil {
		return err
	}
	for _, v := range variants {
		o := env.campaignObserver("campaign " + v.Model.String())
		var results []campaign.CondResult
		var err error
		if spec.PadUDF {
			results, err = core.RunUDFHardening(v.Model, spec.MaxFlips, env.Workers,
				env.FullRun, o, env.Prof, env.Run)
		} else {
			results, err = core.RunFigure2(v.Model, v.ZeroInvalid, spec.MaxFlips,
				env.Workers, env.FullRun, o, env.Prof, env.Run)
		}
		if err != nil {
			return err
		}
		fmt.Fprintln(w, report.Figure2(results, v.Model, v.ZeroInvalid))
	}
	return nil
}

func execScan(spec Spec, env Env, w io.Writer) error {
	m := glitcher.NewModel(spec.Seed)
	m.FullRun = env.FullRun
	if env.Reg != nil {
		m.Obs = glitcher.NewObs(env.Reg, env.Tracer)
	}
	m.Prof = env.Prof
	workers, rn := env.Workers, env.Run
	wantT1 := map[string]int{"table1a": 0, "table1b": 1, "table1c": 2}
	switch spec.Exp {
	case "table1a", "table1b", "table1c":
		results, err := core.RunTable1(m, workers, rn)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, report.Table1(results[wantT1[spec.Exp]]))
		return nil
	case "table1":
		return printTable1(m, workers, rn, w)
	case "table2":
		return printTable2(m, workers, rn, w)
	case "table3":
		return printTable3(m, workers, rn, w)
	case "search":
		return printSearch(m, rn, w)
	case "all":
		if err := printTable1(m, workers, rn, w); err != nil {
			return err
		}
		if err := printTable2(m, workers, rn, w); err != nil {
			return err
		}
		if err := printTable3(m, workers, rn, w); err != nil {
			return err
		}
		return printSearch(m, rn, w)
	default:
		return fmt.Errorf("unknown experiment %q", spec.Exp)
	}
}

func printTable1(m *glitcher.Model, workers int, rn *runctl.Run, w io.Writer) error {
	results, err := core.RunTable1(m, workers, rn)
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Fprintln(w, report.Table1(r))
	}
	return nil
}

func printTable2(m *glitcher.Model, workers int, rn *runctl.Run, w io.Writer) error {
	results, err := core.RunTable2(m, workers, rn)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, report.Table2(results))
	return nil
}

func printTable3(m *glitcher.Model, workers int, rn *runctl.Run, w io.Writer) error {
	results, err := core.RunTable3(m, workers, rn)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, report.Table3(results))
	return nil
}

func printSearch(m *glitcher.Model, rn *runctl.Run, w io.Writer) error {
	results, err := core.RunSearch(m, rn)
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Fprintln(w, report.Search(r))
	}
	return nil
}

func execEval(spec Spec, env Env, w io.Writer) error {
	runT4 := func() error {
		t4, err := core.RunTable4()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, report.Table4(t4))
		return nil
	}
	runT5 := func() error {
		t5, err := core.RunTable5()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, report.Table5(t5))
		return nil
	}
	runT6 := func() error {
		m := glitcher.NewModel(spec.Seed)
		if env.Reg != nil {
			m.Obs = glitcher.NewObs(env.Reg, env.Tracer)
		}
		t6, err := core.RunTable6(m, env.EvalProgress, env.Run)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, report.Table6(t6))
		return nil
	}
	runLint := func() error {
		_, audit, err := core.CompileAudited(core.EvalFirmware,
			passes.All(core.EvalSensitive...),
			analyze.Options{Sensitive: core.EvalSensitive})
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "Static triage of the evaluation firmware (unprotected):")
		fmt.Fprintln(w, report.Findings(audit.Pre))
		fmt.Fprintln(w, "After the full defense set:")
		fmt.Fprintln(w, report.Findings(audit.Post))
		return audit.Err()
	}
	runFig2 := func() error {
		model, err := mutate.ParseModel(spec.Model)
		if err != nil {
			return err
		}
		o := env.campaignObserver("figure2 " + model.String())
		results, err := core.RunFigure2(model, spec.ZeroInvalid, spec.MaxFlips,
			env.Workers, env.FullRun, o, nil, env.Run)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, report.Figure2(results, model, spec.ZeroInvalid))
		return nil
	}

	switch spec.Exp {
	case "table4":
		return runT4()
	case "table5":
		return runT5()
	case "table6":
		return runT6()
	case "table7":
		fmt.Fprintln(w, report.Table7())
		return nil
	case "lint":
		return runLint()
	case "figure2":
		return runFig2()
	case "all":
		if err := runLint(); err != nil {
			return err
		}
		if err := runT4(); err != nil {
			return err
		}
		if err := runT5(); err != nil {
			return err
		}
		if err := runT6(); err != nil {
			return err
		}
		fmt.Fprintln(w, report.Table7())
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", spec.Exp)
	}
}
