package serve

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"glitchlab/internal/obs"
)

func TestCacheRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCache(1<<20, reg)
	body := []byte("Figure 2 (AND model)\nresults\n")
	c.Put("k1", body)
	got, ok := c.Get("k1")
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("Get(k1) = %q, %v; want the stored body", got, ok)
	}
	if _, ok := c.Get("k2"); ok {
		t.Fatal("Get(k2) hit on a key never stored")
	}
	if h := reg.Counter(MetricCacheHits).Value(); h != 1 {
		t.Errorf("cache hits = %d, want 1", h)
	}
	if m := reg.Counter(MetricCacheMisses).Value(); m != 1 {
		t.Errorf("cache misses = %d, want 1", m)
	}
}

// TestCacheLRUEviction: under a tiny cap the least-recently-used entry is
// the one evicted, survivors are served whole, and a Get refreshes
// recency.
func TestCacheLRUEviction(t *testing.T) {
	reg := obs.NewRegistry()
	bodyA := bytes.Repeat([]byte("a"), 100)
	bodyB := bytes.Repeat([]byte("b"), 100)
	bodyC := bytes.Repeat([]byte("c"), 100)
	c := NewCache(250, reg) // fits two 100-byte entries, not three
	c.Put("a", bodyA)
	c.Put("b", bodyB)
	if _, ok := c.Get("a"); !ok { // promote a: b is now LRU
		t.Fatal("a missing before eviction")
	}
	c.Put("c", bodyC)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted as LRU")
	}
	for key, want := range map[string][]byte{"a": bodyA, "c": bodyC} {
		got, ok := c.Get(key)
		if !ok {
			t.Errorf("%s evicted, want kept", key)
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s served %d bytes, want %d byte-identical", key, len(got), len(want))
		}
	}
	if ev := reg.Counter(MetricCacheEvicted).Value(); ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
	if c.Len() != 2 || c.Size() != 200 {
		t.Errorf("Len/Size = %d/%d, want 2/200", c.Len(), c.Size())
	}
}

func TestCacheOversizedBodyNotStored(t *testing.T) {
	c := NewCache(10, obs.NewRegistry())
	c.Put("big", bytes.Repeat([]byte("x"), 11))
	if _, ok := c.Get("big"); ok {
		t.Error("a body larger than the cache must not be stored (truncation hazard)")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d, want 0", c.Len())
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0, obs.NewRegistry())
	c.Put("k", []byte("body"))
	if _, ok := c.Get("k"); ok {
		t.Error("cache with size cap 0 must store nothing")
	}
}

func TestCacheDuplicatePutKeepsFirst(t *testing.T) {
	c := NewCache(1<<10, obs.NewRegistry())
	c.Put("k", []byte("first"))
	c.Put("k", []byte("first")) // same key promises same bytes
	if c.Len() != 1 || c.Size() != int64(len("first")) {
		t.Errorf("Len/Size = %d/%d after duplicate put, want 1/%d", c.Len(), c.Size(), len("first"))
	}
}

// TestCacheConcurrentNeverStaleOrTruncated hammers a small cache from
// many goroutines with -race and checks the core contract: every hit is
// the complete, correct body for its key, even while eviction churns.
func TestCacheConcurrentNeverStaleOrTruncated(t *testing.T) {
	c := NewCache(450, obs.NewRegistry())
	bodyFor := func(i int) []byte {
		return bytes.Repeat([]byte{byte('a' + i)}, 50+10*i)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 200; iter++ {
				i := (g + iter) % 8
				key := fmt.Sprintf("k%d", i)
				if body, ok := c.Get(key); ok {
					if !bytes.Equal(body, bodyFor(i)) {
						t.Errorf("stale or truncated hit for %s: %d bytes", key, len(body))
						return
					}
				} else {
					c.Put(key, bodyFor(i))
				}
			}
		}(g)
	}
	wg.Wait()
}
