package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"glitchlab/internal/chaos"
	"glitchlab/internal/report"
)

// NextOffsetHeader carries the byte offset an event-stream client passes
// back as ?offset= to read only records it has not seen yet.
const NextOffsetHeader = "X-Glitchd-Next-Offset"

// maxWait bounds server-side blocking on ?wait= parameters so a stuck
// client cannot pin a handler goroutine forever.
const maxWait = 30 * time.Second

// Register mounts the daemon's API on mux (typically the obs registry mux,
// so /metrics, pprof and the job API share one listener):
//
//	POST /v1/jobs               submit a Spec; 202 fresh, 200 cache hit or
//	                            coalesced, 400 invalid, 429 queue full
//	GET  /v1/jobs               job list (JSON; ?format=text for a table)
//	GET  /v1/jobs/{id}          job status
//	GET  /v1/jobs/{id}/result   rendered result bytes (?wait=1 blocks
//	                            until the job finishes); 409 until done
//	GET  /v1/jobs/{id}/events   JSONL event stream from ?offset= with the
//	                            next offset in X-Glitchd-Next-Offset;
//	                            ?wait=1 long-polls for new records
//	GET  /v1/jobs/{id}/metrics  per-job obs.SnapshotDiff deltas (JSON;
//	                            ?format=text for the diff rendering)
//	GET  /healthz               liveness + queue occupancy
func (d *Daemon) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/jobs", d.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", d.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", d.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", d.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", d.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/metrics", d.handleMetrics)
	mux.HandleFunc("GET /healthz", d.handleHealth)
}

// Handler returns a standalone handler serving only the daemon API.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	d.Register(mux)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// submitResponse is the POST /v1/jobs body.
type submitResponse struct {
	Job       Status `json:"job"`
	CacheHit  bool   `json:"cache_hit,omitempty"`
	Coalesced bool   `json:"coalesced,omitempty"`
}

func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid job spec: %w", err))
		return
	}
	res, err := d.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining), errors.Is(err, ErrDegraded):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil && chaos.IsDiskFault(err):
		// An environmental failure, not a spec problem: the client should
		// back off and resubmit, exactly as for a degraded daemon.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	code := http.StatusAccepted
	if res.CacheHit || res.Coalesced {
		code = http.StatusOK
	}
	writeJSON(w, code, submitResponse{
		Job:       res.Job.Status(),
		CacheHit:  res.CacheHit,
		Coalesced: res.Coalesced,
	})
}

func (d *Daemon) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := d.Jobs()
	if r.URL.Query().Get("format") == "text" {
		rows := make([]report.JobRow, len(jobs))
		for i, j := range jobs {
			s := j.Status()
			rows[i] = report.JobRow{
				ID: s.ID, Kind: s.Kind, State: string(s.State),
				Units: s.UnitsDone, Cached: s.CacheHit, Resumed: s.Resumed,
				Bytes: s.ResultSize, Err: s.Error,
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = io.WriteString(w, report.Jobs(rows))
		return
	}
	statuses := make([]Status, len(jobs))
	for i, j := range jobs {
		statuses[i] = j.Status()
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": statuses})
}

func (d *Daemon) lookup(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := d.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return nil, false
	}
	return j, true
}

func (d *Daemon) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := d.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (d *Daemon) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := d.lookup(w, r)
	if !ok {
		return
	}
	if r.URL.Query().Get("wait") != "" {
		d.WaitTerminal(j.ID, maxWait)
	}
	if j.State() != StateDone {
		// Not (yet) done: the status body says whether to retry (queued,
		// running, interrupted) or give up (failed, with the error).
		writeJSON(w, http.StatusConflict, j.Status())
		return
	}
	// Result falls back to the stamped cache when the file itself is
	// unreadable (disk fault, or a cache hit that could not persist while
	// the daemon was degraded).
	body, err := d.Result(j.ID)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write(body)
}

func (d *Daemon) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := d.lookup(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	offset, _ := strconv.ParseInt(q.Get("offset"), 10, 64)
	if offset < 0 {
		offset = 0
	}
	wait := q.Get("wait") != ""
	deadline := time.Now().Add(maxWait)
	var chunk []byte
	for {
		data, err := d.fs.ReadFile(d.EventsPath(j.ID))
		if err != nil && !errors.Is(err, os.ErrNotExist) {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		// An offset past end-of-stream is not an error: a daemon crash can
		// shrink the stream under a resuming client, so clamp to the end
		// and answer with an explicit empty page + next-offset.
		if offset > int64(len(data)) {
			offset = int64(len(data))
		}
		// An offset landing mid-record (the stream was rewritten after a
		// crash) snaps back to the preceding record boundary: clients
		// always receive whole records, at the price of a duplicate.
		if offset > 0 && offset < int64(len(data)) && data[offset-1] != '\n' {
			offset = int64(lastNewline(data[:offset]))
		}
		chunk = data[offset:]
		// Serve whole records only: a concurrent append can land between
		// the final newline and the read; trim any torn tail line.
		if n := lastNewline(chunk); n < len(chunk) {
			chunk = chunk[:n]
		}
		if len(chunk) > 0 || !wait || j.State().Terminal() ||
			time.Now().After(deadline) || r.Context().Err() != nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set(NextOffsetHeader, strconv.FormatInt(offset+int64(len(chunk)), 10))
	_, _ = w.Write(chunk)
}

// lastNewline returns the index just past the final newline in b (0 when
// b holds no complete line).
func lastNewline(b []byte) int {
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] == '\n' {
			return i + 1
		}
	}
	return 0
}

func (d *Daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	j, ok := d.lookup(w, r)
	if !ok {
		return
	}
	diff, ok := j.MetricsDiff(d.reg.Snapshot)
	if !ok {
		writeError(w, http.StatusConflict,
			fmt.Errorf("job %s has not started executing", j.ID))
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = io.WriteString(w, diff.Text())
		return
	}
	data, err := diff.JSON()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}

func (d *Daemon) handleHealth(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	queued, running := d.queued, d.running
	d.mu.Unlock()
	status := "ok"
	switch {
	case d.draining.Load():
		status = "draining"
	case d.degraded.Load():
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ok": status == "ok", "status": status,
		"queued": queued, "running": running,
		"queue_cap": d.cfg.QueueCap, "stamp": d.stamp,
		"cache_entries": d.cache.Len(), "cache_bytes": d.cache.Size(),
	})
}
