package serve

import (
	"container/list"
	"sync"

	"glitchlab/internal/obs"
)

// Metric names the serving layer maintains.
const (
	MetricJobsSubmitted = "serve.jobs_submitted_total"
	MetricJobsCompleted = "serve.jobs_completed_total"
	MetricJobsFailed    = "serve.jobs_failed_total"
	MetricJobsRejected  = "serve.jobs_rejected_total"  // 429 admission rejections
	MetricJobsCoalesced = "serve.jobs_coalesced_total" // joined an in-flight identical job
	MetricJobsResumed   = "serve.jobs_resumed_total"   // re-enqueued after a daemon restart
	MetricQueueDepth    = "serve.queue_depth"          // queued, not yet running
	MetricJobsRunning   = "serve.jobs_running"
	MetricCacheHits     = "serve.cache_hits_total"
	MetricCacheMisses   = "serve.cache_misses_total"
	MetricCacheEvicted  = "serve.cache_evictions_total"
	MetricCacheBytes    = "serve.cache_bytes"
	MetricCacheEntries  = "serve.cache_entries"
	// Robustness metrics: disk faults observed on durable-state writes,
	// the degraded-mode gauge (0/1), and 503 rejections while degraded or
	// draining (the 429 queue-cap rejections stay in jobs_rejected_total).
	MetricDiskFaults       = "serve.disk_faults_total"
	MetricDegraded         = "serve.degraded"
	MetricJobsRejectedBusy = "serve.jobs_rejected_unavailable_total"
)

// Cache is the completed-result cache: rendered report bytes keyed by the
// stamped spec cache key, bounded by total byte size with LRU eviction.
// Entries are immutable once inserted — Get hands out the stored slice
// and callers must not modify it — so a hit is served byte-identically to
// the execution that populated it, never stale (keys change with any
// config field or stamp change) and never truncated (entries are evicted
// whole or not at all).
type Cache struct {
	mu      sync.Mutex
	maxSize int64
	size    int64
	order   *list.List // front = most recently used; values are *centry
	entries map[string]*list.Element

	hits, misses, evictions *obs.Counter
	bytes, count            *obs.Gauge
}

type centry struct {
	key  string
	body []byte
}

// NewCache returns a cache holding at most maxSize bytes of result bodies
// (<= 0 disables caching entirely), reporting into reg.
func NewCache(maxSize int64, reg *obs.Registry) *Cache {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Cache{
		maxSize:   maxSize,
		order:     list.New(),
		entries:   map[string]*list.Element{},
		hits:      reg.Counter(MetricCacheHits),
		misses:    reg.Counter(MetricCacheMisses),
		evictions: reg.Counter(MetricCacheEvicted),
		bytes:     reg.Gauge(MetricCacheBytes),
		count:     reg.Gauge(MetricCacheEntries),
	}
}

// Get returns the cached body for key, marking it most recently used.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*centry).body, true
}

// Put inserts body under key, evicting least-recently-used entries until
// it fits. A body larger than the whole cache is not stored at all —
// storing a truncation would violate the byte-identical contract.
func (c *Cache) Put(key string, body []byte) {
	if int64(len(body)) > c.maxSize {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// Same key means same stamp and config, which promises the same
		// bytes; keep the existing entry.
		c.order.MoveToFront(el)
		return
	}
	for c.size+int64(len(body)) > c.maxSize {
		last := c.order.Back()
		if last == nil {
			break
		}
		ev := last.Value.(*centry)
		c.order.Remove(last)
		delete(c.entries, ev.key)
		c.size -= int64(len(ev.body))
		c.evictions.Inc()
	}
	c.entries[key] = c.order.PushFront(&centry{key: key, body: body})
	c.size += int64(len(body))
	c.bytes.Set(float64(c.size))
	c.count.Set(float64(len(c.entries)))
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Size returns the total cached body bytes.
func (c *Cache) Size() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}
