package glitcher

import (
	"glitchlab/internal/emu"
	"glitchlab/internal/obs"
	"glitchlab/internal/pipeline"
)

// Metric names the scan observer maintains.
const (
	MetricAttempts   = "scan.attempts_total"
	MetricSuccesses  = "scan.successes_total"
	MetricSteps      = "scan.steps_retired_total"
	MetricGridPoints = "scan.grid.points"         // parameter points per cycle (constant)
	MetricGridTried  = "scan.grid.tried_points"   // distinct cells attempted so far
	MetricGridHit    = "scan.grid.success_points" // distinct cells with >= 1 success
	MetricCoverage   = "scan.grid.coverage"       // tried / points
	MetricBestRate   = "scan.grid.best_rate"      // best per-cell success rate
	MetricBestWidth  = "scan.grid.best_width"     // width of the best cell
	MetricBestOffset = "scan.grid.best_offset"    // offset of the best cell
	metricFaults     = "emu.faults."              // shared namespace with campaign
)

// Obs instruments parameter-space scans and searches: attempt/success
// counters, per-(width, offset)-cell success-rate accounting with summary
// coverage gauges, emulator fault counters, and trace records. Attach one
// to Model.Obs before running scans; a nil *Obs disables instrumentation.
// Obs is not safe for concurrent scans (the scan drivers are sequential).
type Obs struct {
	reg    *obs.Registry
	tracer *obs.Tracer

	attempts  *obs.Counter
	successes *obs.Counter
	steps     *obs.Counter

	points, tried, hit              *obs.Gauge
	coverage                        *obs.Gauge
	bestRate, bestWidth, bestOffset *obs.Gauge

	cellTries [GridSize]uint32
	cellHits  [GridSize]uint32
	nTried    int
	nHit      int
	best      float64
}

// NewObs builds a scan observer recording into reg and, when tracer is
// non-nil, emitting trace records.
func NewObs(reg *obs.Registry, tracer *obs.Tracer) *Obs {
	o := &Obs{
		reg:        reg,
		tracer:     tracer,
		attempts:   reg.Counter(MetricAttempts),
		successes:  reg.Counter(MetricSuccesses),
		steps:      reg.Counter(MetricSteps),
		points:     reg.Gauge(MetricGridPoints),
		tried:      reg.Gauge(MetricGridTried),
		hit:        reg.Gauge(MetricGridHit),
		coverage:   reg.Gauge(MetricCoverage),
		bestRate:   reg.Gauge(MetricBestRate),
		bestWidth:  reg.Gauge(MetricBestWidth),
		bestOffset: reg.Gauge(MetricBestOffset),
	}
	o.points.Set(GridSize)
	return o
}

// cellIndex maps a parameter point to its heatmap slot.
func cellIndex(p Params) int {
	return (p.Width+ParamRange)*(2*ParamRange+1) + (p.Offset + ParamRange)
}

// AttachTarget wires the observer's fault counters into a target's CPU.
func (o *Obs) AttachTarget(t *Target) {
	if o == nil {
		return
	}
	t.Board.CPU.Hooks.OnFault = func(f *emu.Fault) {
		o.reg.Counter(metricFaults + metricSegment(f.Kind.String())).Inc()
	}
}

// metricSegment lowercases a display name into a metric-name segment.
func metricSegment(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c == ' ' {
			b[i] = '_'
		}
	}
	return string(b)
}

// Attempt accounts one glitch attempt at parameter point p.
func (o *Obs) Attempt(p Params, r pipeline.Result) {
	if o == nil {
		return
	}
	o.attempts.Inc()
	o.steps.Add(r.Steps)
	i := cellIndex(p)
	if o.cellTries[i] == 0 {
		o.nTried++
		o.tried.Set(float64(o.nTried))
		o.coverage.Set(float64(o.nTried) / GridSize)
	}
	o.cellTries[i]++
	success := r.Reason == pipeline.StopHit
	if success {
		o.successes.Inc()
		if o.cellHits[i] == 0 {
			o.nHit++
			o.hit.Set(float64(o.nHit))
		}
		o.cellHits[i]++
	}
	// Track the best cell seen so far (rates can decay as a cell gathers
	// failed attempts; the gauge is "best ever observed", which is what a
	// live dashboard wants during a scan).
	if rate := float64(o.cellHits[i]) / float64(o.cellTries[i]); rate > o.best {
		o.best = rate
		o.bestRate.Set(rate)
		o.bestWidth.Set(float64(p.Width))
		o.bestOffset.Set(float64(p.Offset))
	}
	if o.tracer != nil && (success || r.Reason == pipeline.StopFault) {
		attrs := map[string]any{
			"width":  p.Width,
			"offset": p.Offset,
			"reason": r.Reason.String(),
			"steps":  r.Steps,
			"cycles": r.Cycles,
		}
		if success {
			attrs["tag"] = r.Tag
			o.tracer.Event("scan.success", attrs)
		} else {
			attrs["fault"] = r.Fault.String()
			o.tracer.Failure("scan.attempt", attrs)
		}
	}
}

// NoEffect accounts a parameter point the deterministic model proves
// cannot disturb the run: the scan skips the emulation, but the paper's
// hardware rig would have burned a real attempt there, and the scan
// results count it, so the observer must too.
func (o *Obs) NoEffect(p Params) {
	if o == nil {
		return
	}
	o.attempts.Inc()
	i := cellIndex(p)
	if o.cellTries[i] == 0 {
		o.nTried++
		o.tried.Set(float64(o.nTried))
		o.coverage.Set(float64(o.nTried) / GridSize)
	}
	o.cellTries[i]++
}

// CellRate returns the observed success rate of one (width, offset) cell
// and the number of attempts behind it.
func (o *Obs) CellRate(p Params) (rate float64, attempts uint64) {
	if o == nil {
		return 0, 0
	}
	i := cellIndex(p)
	if o.cellTries[i] == 0 {
		return 0, 0
	}
	return float64(o.cellHits[i]) / float64(o.cellTries[i]), uint64(o.cellTries[i])
}

// Span opens a tracer span (nil-safe).
func (o *Obs) Span(name string, attrs map[string]any) *obs.Span {
	if o == nil {
		return nil
	}
	return o.tracer.StartSpan(name, attrs)
}

// Event emits a tracer event (nil-safe).
func (o *Obs) Event(name string, attrs map[string]any) {
	if o == nil {
		return
	}
	o.tracer.Event(name, attrs)
}

// guardAttrs is the common span attribute set for per-guard scans.
func guardAttrs(g Guard) map[string]any {
	return map[string]any{"guard": g.String()}
}
