package glitcher

import (
	"sync"

	"glitchlab/internal/emu"
	"glitchlab/internal/obs"
	"glitchlab/internal/pipeline"
)

// Metric names the scan observer maintains.
const (
	MetricAttempts   = "scan.attempts_total"
	MetricSuccesses  = "scan.successes_total"
	MetricSteps      = "scan.steps_retired_total"
	MetricGridPoints = "scan.grid.points"         // parameter points per cycle (constant)
	MetricGridTried  = "scan.grid.tried_points"   // distinct cells attempted so far
	MetricGridHit    = "scan.grid.success_points" // distinct cells with >= 1 success
	MetricCoverage   = "scan.grid.coverage"       // tried / points
	MetricBestRate   = "scan.grid.best_rate"      // best per-cell success rate
	MetricBestWidth  = "scan.grid.best_width"     // width of the best cell
	MetricBestOffset = "scan.grid.best_offset"    // offset of the best cell
	metricFaults     = "emu.faults."              // shared namespace with campaign
)

// Obs instruments parameter-space scans and searches: attempt/success
// counters, per-(width, offset)-cell success-rate accounting with summary
// coverage gauges, emulator fault counters, and trace records. Attach one
// to Model.Obs before running scans; a nil *Obs disables instrumentation.
// Obs itself is single-goroutine (the serial scan drivers call it
// directly); sharded scans give every worker its own ObsShard, whose
// Flush merges into the parent under mu — the only lock on the scan path.
type Obs struct {
	reg    *obs.Registry
	tracer *obs.Tracer
	mu     sync.Mutex // guards the cell fields during shard merges

	attempts  *obs.Counter
	successes *obs.Counter
	steps     *obs.Counter

	points, tried, hit              *obs.Gauge
	coverage                        *obs.Gauge
	bestRate, bestWidth, bestOffset *obs.Gauge

	cellTries [GridSize]uint32
	cellHits  [GridSize]uint32
	nTried    int
	nHit      int
	best      float64
}

// NewObs builds a scan observer recording into reg and, when tracer is
// non-nil, emitting trace records.
func NewObs(reg *obs.Registry, tracer *obs.Tracer) *Obs {
	o := &Obs{
		reg:        reg,
		tracer:     tracer,
		attempts:   reg.Counter(MetricAttempts),
		successes:  reg.Counter(MetricSuccesses),
		steps:      reg.Counter(MetricSteps),
		points:     reg.Gauge(MetricGridPoints),
		tried:      reg.Gauge(MetricGridTried),
		hit:        reg.Gauge(MetricGridHit),
		coverage:   reg.Gauge(MetricCoverage),
		bestRate:   reg.Gauge(MetricBestRate),
		bestWidth:  reg.Gauge(MetricBestWidth),
		bestOffset: reg.Gauge(MetricBestOffset),
	}
	o.points.Set(GridSize)
	return o
}

// cellIndex maps a parameter point to its heatmap slot.
func cellIndex(p Params) int {
	return (p.Width+ParamRange)*(2*ParamRange+1) + (p.Offset + ParamRange)
}

// AttachTarget wires the observer's fault counters into a target's CPU.
func (o *Obs) AttachTarget(t *Target) {
	if o == nil {
		return
	}
	t.Board.CPU.Hooks.OnFault = func(f *emu.Fault) {
		o.reg.Counter(metricFaults + metricSegment(f.Kind.String())).Inc()
	}
}

// metricSegment lowercases a display name into a metric-name segment.
func metricSegment(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c == ' ' {
			b[i] = '_'
		}
	}
	return string(b)
}

// Attempt accounts one glitch attempt at parameter point p.
func (o *Obs) Attempt(p Params, r pipeline.Result) {
	if o == nil {
		return
	}
	o.attempts.Inc()
	o.steps.Add(r.Steps)
	i := cellIndex(p)
	if o.cellTries[i] == 0 {
		o.nTried++
		o.tried.Set(float64(o.nTried))
		o.coverage.Set(float64(o.nTried) / GridSize)
	}
	o.cellTries[i]++
	success := r.Reason == pipeline.StopHit
	if success {
		o.successes.Inc()
		if o.cellHits[i] == 0 {
			o.nHit++
			o.hit.Set(float64(o.nHit))
		}
		o.cellHits[i]++
	}
	// Track the best cell seen so far (rates can decay as a cell gathers
	// failed attempts; the gauge is "best ever observed", which is what a
	// live dashboard wants during a scan).
	if rate := float64(o.cellHits[i]) / float64(o.cellTries[i]); rate > o.best {
		o.best = rate
		o.bestRate.Set(rate)
		o.bestWidth.Set(float64(p.Width))
		o.bestOffset.Set(float64(p.Offset))
	}
	o.trace(p, r, success)
}

// trace emits the per-attempt trace records (successes and faults). The
// tracer is safe for concurrent use, so shards call this directly.
func (o *Obs) trace(p Params, r pipeline.Result, success bool) {
	if o.tracer == nil || (!success && r.Reason != pipeline.StopFault) {
		return
	}
	attrs := map[string]any{
		"width":  p.Width,
		"offset": p.Offset,
		"reason": r.Reason.String(),
		"steps":  r.Steps,
		"cycles": r.Cycles,
	}
	if success {
		attrs["tag"] = r.Tag
		o.tracer.Event("scan.success", attrs)
	} else {
		attrs["fault"] = r.Fault.String()
		o.tracer.Failure("scan.attempt", attrs)
	}
}

// NoEffect accounts a parameter point the deterministic model proves
// cannot disturb the run: the scan skips the emulation, but the paper's
// hardware rig would have burned a real attempt there, and the scan
// results count it, so the observer must too.
func (o *Obs) NoEffect(p Params) {
	if o == nil {
		return
	}
	o.attempts.Inc()
	i := cellIndex(p)
	if o.cellTries[i] == 0 {
		o.nTried++
		o.tried.Set(float64(o.nTried))
		o.coverage.Set(float64(o.nTried) / GridSize)
	}
	o.cellTries[i]++
}

// CellRate returns the observed success rate of one (width, offset) cell
// and the number of attempts behind it.
func (o *Obs) CellRate(p Params) (rate float64, attempts uint64) {
	if o == nil {
		return 0, 0
	}
	i := cellIndex(p)
	if o.cellTries[i] == 0 {
		return 0, 0
	}
	return float64(o.cellHits[i]) / float64(o.cellTries[i]), uint64(o.cellTries[i])
}

// Span opens a tracer span (nil-safe).
func (o *Obs) Span(name string, attrs map[string]any) *obs.Span {
	if o == nil {
		return nil
	}
	return o.tracer.StartSpan(name, attrs)
}

// Event emits a tracer event (nil-safe).
func (o *Obs) Event(name string, attrs map[string]any) {
	if o == nil {
		return
	}
	o.tracer.Event(name, attrs)
}

// guardAttrs is the common span attribute set for per-guard scans.
func guardAttrs(g Guard) map[string]any {
	return map[string]any{"guard": g.String()}
}

// cellParams is the inverse of cellIndex.
func cellParams(i int) Params {
	side := 2*ParamRange + 1
	return Params{Width: i/side - ParamRange, Offset: i%side - ParamRange}
}

// ObsShard is a per-worker observation buffer for sharded scans, built on
// the same batching idea as obs.HistShard: the per-attempt path writes
// plain worker-local memory, and Flush merges everything into the parent
// Obs in one locked pass. Because every attempt lands in exactly one
// shard and every shard is flushed before a sharded scan returns, the
// flushed counters and coverage gauges equal the serial scan's exactly.
// A nil *ObsShard (from a nil parent) disables instrumentation.
type ObsShard struct {
	o                   *Obs
	attempts, successes uint64
	steps               uint64
	cellTries, cellHits []uint32
}

// Shard returns a fresh worker-local observation buffer, or nil when o is
// nil. Not safe for concurrent use; give each worker its own shard.
func (o *Obs) Shard() *ObsShard {
	if o == nil {
		return nil
	}
	return &ObsShard{
		o:         o,
		cellTries: make([]uint32, GridSize),
		cellHits:  make([]uint32, GridSize),
	}
}

// Attempt accounts one glitch attempt at parameter point p.
func (s *ObsShard) Attempt(p Params, r pipeline.Result) {
	if s == nil {
		return
	}
	s.attempts++
	s.steps += r.Steps
	i := cellIndex(p)
	s.cellTries[i]++
	success := r.Reason == pipeline.StopHit
	if success {
		s.successes++
		s.cellHits[i]++
	}
	s.o.trace(p, r, success)
}

// NoEffect accounts a parameter point the model proves cannot disturb the
// run (see Obs.NoEffect).
func (s *ObsShard) NoEffect(p Params) {
	if s == nil {
		return
	}
	s.attempts++
	s.cellTries[cellIndex(p)]++
}

// Flush merges the shard into its parent Obs and resets the shard. The
// shared counters take batched atomic adds; the cell heatmap, coverage
// gauges and best-cell gauges are updated under the parent's merge lock.
// The best-cell gauge is evaluated at merge granularity, so its transient
// trajectory can differ from a serial scan's (a cell's rate is seen after
// a whole band of attempts, not after each one); the final coverage and
// tried/hit cell counts are exact.
func (s *ObsShard) Flush() {
	if s == nil {
		return
	}
	o := s.o
	if s.attempts != 0 {
		o.attempts.Add(s.attempts)
	}
	if s.successes != 0 {
		o.successes.Add(s.successes)
	}
	if s.steps != 0 {
		o.steps.Add(s.steps)
	}
	o.mu.Lock()
	for i, n := range s.cellTries {
		if n == 0 {
			continue
		}
		if o.cellTries[i] == 0 {
			o.nTried++
		}
		o.cellTries[i] += n
		if h := s.cellHits[i]; h != 0 {
			if o.cellHits[i] == 0 {
				o.nHit++
			}
			o.cellHits[i] += h
		}
		if rate := float64(o.cellHits[i]) / float64(o.cellTries[i]); rate > o.best {
			p := cellParams(i)
			o.best = rate
			o.bestRate.Set(rate)
			o.bestWidth.Set(float64(p.Width))
			o.bestOffset.Set(float64(p.Offset))
		}
	}
	o.tried.Set(float64(o.nTried))
	o.coverage.Set(float64(o.nTried) / GridSize)
	o.hit.Set(float64(o.nHit))
	o.mu.Unlock()
	s.attempts, s.successes, s.steps = 0, 0, 0
	for i := range s.cellTries {
		s.cellTries[i], s.cellHits[i] = 0, 0
	}
}
