package glitcher

import (
	"testing"

	"glitchlab/internal/pipeline"
)

func TestGridSize(t *testing.T) {
	n := 0
	seen := map[Params]bool{}
	Grid(func(p Params) {
		n++
		if seen[p] {
			t.Fatalf("duplicate grid point %+v", p)
		}
		seen[p] = true
		if p.Width < -ParamRange || p.Width > ParamRange ||
			p.Offset < -ParamRange || p.Offset > ParamRange {
			t.Fatalf("grid point out of range: %+v", p)
		}
	})
	if n != GridSize || GridSize != 9801 {
		t.Fatalf("grid has %d points, want 9801", n)
	}
}

func TestStrengthBounds(t *testing.T) {
	m := NewModel(1)
	Grid(func(p Params) {
		s := m.strength(p)
		if s < 0 || s > 1 {
			t.Fatalf("strength(%+v) = %f", p, s)
		}
	})
}

func TestModelDeterminism(t *testing.T) {
	m1 := NewModel(42)
	m2 := NewModel(42)
	Grid(func(p Params) {
		for rel := 0; rel < 8; rel += 3 {
			e1, ok1 := m1.EventAt(p, rel, 0)
			e2, ok2 := m2.EventAt(p, rel, 0)
			if ok1 != ok2 || e1 != e2 {
				t.Fatalf("model not deterministic at %+v rel=%d", p, rel)
			}
		}
	})
}

func TestSeedChangesLandscape(t *testing.T) {
	m1 := NewModel(1)
	m2 := NewModel(2)
	diff := 0
	Grid(func(p Params) {
		_, ok1 := m1.EventAt(p, 0, 0)
		_, ok2 := m2.EventAt(p, 0, 0)
		if ok1 != ok2 {
			diff++
		}
	})
	if diff == 0 {
		t.Fatal("different seeds produced identical event landscapes")
	}
}

func TestSecondWindowRepeatsFirst(t *testing.T) {
	// When the generator recovers, the second delivery of the same
	// glitch must produce the identical corruption — the physical basis
	// of the paper's multi-glitch experiment.
	m := NewModel(7)
	checked := 0
	Grid(func(p Params) {
		e0, ok0 := m.EventAt(p, 4, 0)
		e1, ok1 := m.EventAt(p, 4, 1)
		if !ok0 || !ok1 {
			return
		}
		checked++
		if e0 != e1 {
			t.Fatalf("window 1 event differs at %+v: %+v vs %+v", p, e0, e1)
		}
	})
	if checked == 0 {
		t.Fatal("no parameter point delivered in both windows")
	}
}

func TestRechargeGatesSecondWindow(t *testing.T) {
	m := NewModel(7)
	var first, second int
	Grid(func(p Params) {
		if _, ok := m.EventAt(p, 4, 0); ok {
			first++
		}
		if _, ok := m.EventAt(p, 4, 1); ok {
			second++
		}
	})
	if first == 0 {
		t.Fatal("no events in first window")
	}
	ratio := float64(second) / float64(first)
	if ratio > m.Recharge+0.15 || ratio < m.Recharge-0.15 {
		t.Errorf("second/first window delivery ratio = %.2f, want ~%.2f",
			ratio, m.Recharge)
	}
}

func TestSustainedPhysicsDiffers(t *testing.T) {
	// Sustained collapse events must force loads to zero rather than
	// capture residue.
	m := NewModel(7)
	residue, starved := 0, 0
	Grid(func(p Params) {
		if m.character(p) != charCollapse {
			return
		}
		if ev, ok := m.EventInContext(p, 5, 0, 0); ok &&
			ev.Kind == pipeline.EventDataCorrupt && ev.DataResidue {
			residue++
		}
		if ev, ok := m.EventInContext(p, 5, 0, 5); ok &&
			ev.Kind == pipeline.EventDataCorrupt {
			if ev.DataResidue {
				t.Fatalf("sustained collapse at %+v still captures residue", p)
			}
			if ev.DataMask == 0xFFFFFFFF && !ev.DataSet {
				starved++
			}
		}
	})
	if residue == 0 || starved == 0 {
		t.Fatalf("residue=%d starved=%d; expected both behaviours", residue, starved)
	}
}

func TestResidueValuesComeFromPalette(t *testing.T) {
	baseline := map[uint32]bool{
		0x55: true, 0xFF: true, 0x68: true, 0x21: true, 0x08: true,
		0x20003FE8: true, 0x48000028: true, 0x48000028 ^ 0x6000432F: true,
	}
	for h := uint64(0); h < 4096; h++ {
		v := residueValue(h)
		if baseline[v] {
			continue
		}
		// Allow single-bit decay of a palette value.
		ok := false
		for b := range baseline {
			x := b ^ v
			if x != 0 && x&(x-1) == 0 {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("residueValue(%d) = %#x not near palette", h, v)
		}
	}
}

func TestGuardSourcesAssembleAndHang(t *testing.T) {
	for _, g := range Guards() {
		for name, src := range map[string]string{
			"single": g.SingleLoopSource(),
			"double": g.DoubleLoopSource(),
			"long":   g.LongGlitchSource(),
		} {
			tgt, err := NewTarget(g, src)
			if err != nil {
				t.Fatalf("%v %s: %v", g, name, err)
			}
			if r := tgt.CleanRun(); r.Reason != pipeline.StopHung {
				t.Errorf("%v %s clean run: %v, want hung", g, name, r.Reason)
			}
		}
	}
}

func TestComparatorRegs(t *testing.T) {
	if GuardWhileNotA.ComparatorReg() != 3 || GuardWhileA.ComparatorReg() != 3 {
		t.Error("byte guards compare in R3")
	}
	if GuardWhileNeq.ComparatorReg() != 2 {
		t.Error("word guard compares in R2")
	}
}

// TestTable1Headline runs the full Table I scans and checks the paper's
// headline orderings: while(!a) is the most vulnerable guard and while(a)
// the most resilient, with sub-percent absolute rates.
func TestTable1Headline(t *testing.T) {
	if testing.Short() {
		t.Skip("full parameter scan")
	}
	m := NewModel(1)
	rates := map[Guard]float64{}
	for _, g := range Guards() {
		res, err := m.RunTable1(g)
		if err != nil {
			t.Fatal(err)
		}
		if res.Attempts != LoopCycles*GridSize {
			t.Fatalf("%v attempts = %d, want %d", g, res.Attempts, LoopCycles*GridSize)
		}
		rates[g] = res.SuccessRate()
		if rates[g] <= 0 || rates[g] > 0.03 {
			t.Errorf("%v success rate %.4f%% outside sub-percent band", g, 100*rates[g])
		}
		if res.UniqueValues() < 2 {
			t.Errorf("%v post-mortem values not diverse: %d", g, res.UniqueValues())
		}
	}
	if !(rates[GuardWhileNotA] > rates[GuardWhileNeq] &&
		rates[GuardWhileNeq] > rates[GuardWhileA]) {
		t.Errorf("guard vulnerability ordering wrong: %v", rates)
	}
	// The paper: while(!a) was 2x more susceptible than while(a).
	if rates[GuardWhileNotA] < 2*rates[GuardWhileA] {
		t.Errorf("while(!a) %.4f%% not ~2x while(a) %.4f%%",
			100*rates[GuardWhileNotA], 100*rates[GuardWhileA])
	}
}

// TestTable2MultiGlitchHarder verifies the paper's Section V-C claim: a
// full multi-glitch is meaningfully harder than a partial one.
func TestTable2MultiGlitchHarder(t *testing.T) {
	if testing.Short() {
		t.Skip("full parameter scan")
	}
	m := NewModel(1)
	for _, g := range Guards() {
		res, err := m.RunTable2(g)
		if err != nil {
			t.Fatal(err)
		}
		partial, full := res.Totals()
		if full == 0 {
			t.Errorf("%v: no full multi-glitches at all", g)
			continue
		}
		if full >= partial+full {
			t.Errorf("%v: full (%d) not rarer than attempts succeeding once (%d)",
				g, full, partial+full)
		}
		// Reduction factor vs single-glitch success, paper: 1.6x-6x.
		factor := float64(partial+full) / float64(full)
		if factor < 1.2 || factor > 12 {
			t.Errorf("%v: multi-glitch reduction factor %.1fx outside plausible band", g, factor)
		}
	}
}

// TestTable3LongGlitchInversion verifies the paper's Section V-D finding:
// long glitches help against while(a) but hurt against while(!a).
func TestTable3LongGlitchInversion(t *testing.T) {
	if testing.Short() {
		t.Skip("full parameter scan")
	}
	m := NewModel(1)
	longRates := map[Guard]float64{}
	singleRates := map[Guard]float64{}
	for _, g := range Guards() {
		r3, err := m.RunTable3(g)
		if err != nil {
			t.Fatal(err)
		}
		longRates[g] = float64(r3.Total()) / float64(r3.Attempts)
		r1, err := m.RunTable1(g)
		if err != nil {
			t.Fatal(err)
		}
		singleRates[g] = r1.SuccessRate()
	}
	if longRates[GuardWhileA] <= longRates[GuardWhileNotA] {
		t.Errorf("long glitch should favor while(a): %v", longRates)
	}
	if longRates[GuardWhileNotA] >= singleRates[GuardWhileNotA] {
		t.Errorf("while(!a) long rate %.4f should drop below single rate %.4f",
			longRates[GuardWhileNotA], singleRates[GuardWhileNotA])
	}
	if longRates[GuardWhileA] <= 3*singleRates[GuardWhileA] {
		t.Errorf("while(a) long rate %.4f should rise well above single rate %.4f",
			longRates[GuardWhileA], singleRates[GuardWhileA])
	}
}

// TestTable1KindAttribution checks the mechanism analysis: every success
// is attributed to exactly one corruption kind, and while(!a)'s successes
// include data-bus corruptions (the paper's "register data corrupted"
// mechanism) while pure instruction effects appear too.
func TestTable1KindAttribution(t *testing.T) {
	if testing.Short() {
		t.Skip("full parameter scan")
	}
	m := NewModel(1)
	res, err := m.RunTable1(GuardWhileNotA)
	if err != nil {
		t.Fatal(err)
	}
	kinds := res.KindBreakdown()
	var sum uint64
	for _, n := range kinds {
		sum += n
	}
	if sum != res.Successes {
		t.Fatalf("attributed %d of %d successes", sum, res.Successes)
	}
	if kinds[pipeline.EventDataCorrupt] == 0 {
		t.Error("no data-corruption successes against while(!a)")
	}
	if kinds[pipeline.EventFetchCorrupt]+kinds[pipeline.EventExecCorrupt]+
		kinds[pipeline.EventSkip] == 0 {
		t.Error("no instruction-level successes against while(!a)")
	}
}
