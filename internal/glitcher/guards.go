package glitcher

import "fmt"

// Guard identifies one of the paper's three branch guards (Section V-A).
type Guard uint8

// The three guards, in the order the paper's tables present them.
const (
	GuardWhileNotA Guard = iota + 1 // while(!a), a = 0: exits on any non-zero a
	GuardWhileA                     // while(a), a = 1: exits only on a == 0
	GuardWhileNeq                   // while(a != 0xD3B9AEC6), a = 0xE7D25763
)

// String returns the guard's C spelling as used in the paper.
func (g Guard) String() string {
	switch g {
	case GuardWhileNotA:
		return "while(!a)"
	case GuardWhileA:
		return "while(a)"
	case GuardWhileNeq:
		return "while(a!=0xD3B9AEC6)"
	}
	return fmt.Sprintf("guard%d", uint8(g))
}

// ComparatorReg returns the register the paper inspects post-mortem for
// this guard (R3 for the byte guards, R2 for the word guard).
func (g Guard) ComparatorReg() int {
	if g == GuardWhileNeq {
		return 2
	}
	return 3
}

// The magic constant and initial value for GuardWhileNeq, from the paper.
const (
	NeqMagic   = 0xD3B9AEC6
	NeqInitial = 0xE7D25763
)

// loopBody returns the guard's loop assembly, matching the paper's
// disassembly cycle-for-cycle. Labels are suffixed so two copies can be
// placed in one program.
func (g Guard) loopBody(suffix string) string {
	switch g {
	case GuardWhileNotA:
		// Cycle map: MOV(1) ADDS(1) LDRB(2) CMP(1) BEQ(3) = 8 cycles,
		// as in Table Ia.
		return fmt.Sprintf(`
loop%[1]s:
	mov r3, sp
	adds r3, #7
	ldrb r3, [r3]
	cmp r3, #0
	beq loop%[1]s
`, suffix)
	case GuardWhileA:
		return fmt.Sprintf(`
loop%[1]s:
	mov r3, sp
	adds r3, #7
	ldrb r3, [r3]
	cmp r3, #0
	bne loop%[1]s
`, suffix)
	case GuardWhileNeq:
		// LDR(2) LDR-lit(2) CMP(1) BNE(3) = 8 cycles, as in Table Ic.
		return fmt.Sprintf(`
loop%[1]s:
	ldr r2, [sp, #0x10]
	ldr r3, lit_magic
	cmp r2, r3
	bne loop%[1]s
`, suffix)
	}
	return ""
}

// setup returns the assembly that initializes the guarded variable.
func (g Guard) setup() string {
	switch g {
	case GuardWhileNotA:
		return `
	sub sp, #8
	movs r3, #0
	mov r2, sp
	strb r3, [r2, #7]      ; a = 0
`
	case GuardWhileA:
		return `
	sub sp, #8
	movs r3, #1
	mov r2, sp
	strb r3, [r2, #7]      ; a = 1
`
	case GuardWhileNeq:
		return `
	sub sp, #0x18
	ldr r3, lit_initial
	str r3, [sp, #0x10]    ; a = 0xE7D25763
`
	}
	return ""
}

func (g Guard) literals() string {
	if g != GuardWhileNeq {
		return ""
	}
	return fmt.Sprintf(`
	.align 4
lit_magic:
	.word %#x
lit_initial:
	.word %#x
`, uint32(NeqMagic), uint32(NeqInitial))
}

const triggerAsm = `
	ldr r0, lit_trigger
	movs r1, #1
	str r1, [r0]           ; raise the trigger GPIO
`

const triggerLiteral = `
	.align 4
lit_trigger:
	.word 0x48000028
`

// SingleLoopSource builds the Table I firmware: initialize, trigger, spin
// in the guard loop; a successful glitch falls through to the exit label.
func (g Guard) SingleLoopSource() string {
	return g.setup() + triggerAsm + g.loopBody("") + `
exit:
	b exit
` + g.literals() + triggerLiteral
}

// DoubleLoopSource builds the Table II firmware: two identical guard loops
// back-to-back, each preceded by its own trigger, exactly as the paper's
// multi-glitch experiment re-arms the ChipWhisperer between loops.
func (g Guard) DoubleLoopSource() string {
	return g.setup() + triggerAsm + g.loopBody("1") + triggerAsm +
		g.loopBody("2") + `
exit:
	b exit
` + g.literals() + triggerLiteral
}

// LongGlitchSource builds the Table III firmware: two subsequent guard
// loops after a single trigger; the long glitch must carry execution
// through both.
func (g Guard) LongGlitchSource() string {
	return g.setup() + triggerAsm + g.loopBody("1") + g.loopBody("2") + `
exit:
	b exit
` + g.literals() + triggerLiteral
}

// Guards lists the three guards in table order.
func Guards() []Guard {
	return []Guard{GuardWhileNotA, GuardWhileA, GuardWhileNeq}
}
