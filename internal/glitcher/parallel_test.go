package glitcher

import (
	"reflect"
	"testing"

	"glitchlab/internal/obs"
)

func TestWidthBandsPartitionGrid(t *testing.T) {
	rows := 2*ParamRange + 1
	for _, n := range []int{1, 2, 3, 4, 7, 8, rows, rows + 50} {
		bands := WidthBands(n)
		want := n
		if want > rows {
			want = rows
		}
		if len(bands) != want {
			t.Fatalf("WidthBands(%d) returned %d bands, want %d", n, len(bands), want)
		}
		lo := -ParamRange
		covered := 0
		for _, b := range bands {
			if b[0] != lo {
				t.Fatalf("WidthBands(%d): band starts at %d, want %d (gap or overlap)", n, b[0], lo)
			}
			size := b[1] - b[0]
			if size < 1 {
				t.Fatalf("WidthBands(%d): empty band %v", n, b)
			}
			covered += size
			lo = b[1]
		}
		if lo != ParamRange+1 || covered != rows {
			t.Fatalf("WidthBands(%d) covers %d rows ending at %d, want %d ending at %d",
				n, covered, lo, rows, ParamRange+1)
		}
		// Near-equal: sizes differ by at most one row.
		min, max := rows, 0
		for _, b := range bands {
			if s := b[1] - b[0]; s < min {
				min = s
			} else if s > max {
				max = s
			}
		}
		if max > min+1 {
			t.Fatalf("WidthBands(%d): band sizes range %d..%d, want spread <= 1", n, min, max)
		}
	}
}

func TestGridUntilStops(t *testing.T) {
	n := 0
	full := GridUntil(func(p Params) bool {
		n++
		return n < 100
	})
	if full || n != 100 {
		t.Fatalf("GridUntil visited %d points (full=%v), want exactly 100 then stop", n, full)
	}
	n = 0
	if !GridUntil(func(Params) bool { n++; return true }) || n != GridSize {
		t.Fatalf("GridUntil without cancel visited %d points, want %d", n, GridSize)
	}
}

func TestGridBandMatchesGridOrder(t *testing.T) {
	var whole, banded []Params
	Grid(func(p Params) { whole = append(whole, p) })
	for _, b := range WidthBands(4) {
		GridBand(b[0], b[1], func(p Params) bool {
			banded = append(banded, p)
			return true
		})
	}
	if !reflect.DeepEqual(whole, banded) {
		t.Fatal("concatenated WidthBands(4) traversal differs from Grid order")
	}
}

// scanCounters are the observer metrics that must match exactly between a
// serial scan and a sharded one. (The best-cell gauges are excluded by
// design: the serial scan tracks "best rate ever observed" per attempt,
// while shards evaluate cells at merge granularity.)
var scanCounters = []string{
	MetricAttempts, MetricSuccesses, MetricSteps,
	MetricGridTried, MetricGridHit, MetricCoverage,
}

func newScanObs() (*Obs, *obs.Registry) {
	reg := obs.NewRegistry()
	return NewObs(reg, nil), reg
}

func checkScanCounters(t *testing.T, label string, sreg, preg *obs.Registry) {
	t.Helper()
	ss, ps := sreg.Snapshot(), preg.Snapshot()
	sm := map[string]float64{}
	for _, c := range ss.Counters {
		sm[c.Name] = float64(c.Value)
	}
	for _, g := range ss.Gauges {
		sm[g.Name] = g.Value
	}
	pm := map[string]float64{}
	for _, c := range ps.Counters {
		pm[c.Name] = float64(c.Value)
	}
	for _, g := range ps.Gauges {
		pm[g.Name] = g.Value
	}
	for _, name := range scanCounters {
		if sm[name] != pm[name] {
			t.Errorf("%s: %s = %v sharded, want %v (serial)", label, name, pm[name], sm[name])
		}
	}
}

// TestTable1WorkersMatchesSerial is the scan-side golden-equivalence
// contract: a band-sharded Table I scan must reproduce the serial result
// field for field, and the flushed observer counters must match exactly.
func TestTable1WorkersMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid scan")
	}
	m := NewModel(7)
	sobs, sreg := newScanObs()
	m.Obs = sobs
	serial, err := m.RunTable1(GuardWhileA)
	if err != nil {
		t.Fatal(err)
	}
	pobs, preg := newScanObs()
	m.Obs = pobs
	parallel, err := m.RunTable1Workers(GuardWhileA, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("sharded Table I differs from serial")
	}
	checkScanCounters(t, "table1", sreg, preg)
}

func TestTable2WorkersMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid scan")
	}
	m := NewModel(7)
	serial, err := m.RunTable2(GuardWhileNeq)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := m.RunTable2Workers(GuardWhileNeq, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("sharded Table II differs from serial")
	}
}

func TestTable3WorkersMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid scan")
	}
	m := NewModel(7)
	serial, err := m.RunTable3(GuardWhileNotA)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := m.RunTable3Workers(GuardWhileNotA, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("sharded Table III differs from serial")
	}
}

// TestObsShardFlushMatchesSerial feeds the same attempt stream through a
// serial Obs and through several shards, and requires identical counter
// and heatmap state after the flush.
func TestObsShardFlushMatchesSerial(t *testing.T) {
	m := NewModel(11)
	tgt, err := NewTarget(GuardWhileA, GuardWhileA.SingleLoopSource())
	if err != nil {
		t.Fatal(err)
	}

	sobs, sreg := newScanObs()
	pobs, preg := newScanObs()
	shards := []*ObsShard{pobs.Shard(), pobs.Shard(), pobs.Shard()}

	i := 0
	GridBand(-ParamRange, -ParamRange+6, func(p Params) bool {
		if _, hit := m.EventAt(p, 4, 0); !hit {
			sobs.NoEffect(p)
			shards[i%len(shards)].NoEffect(p)
		} else {
			r := tgt.Attempt(m.Plan(p, 4))
			sobs.Attempt(p, r)
			shards[i%len(shards)].Attempt(p, r)
		}
		i++
		return true
	})
	for _, s := range shards {
		s.Flush()
	}
	checkScanCounters(t, "shard flush", sreg, preg)
	Grid(func(p Params) {
		sr, sa := sobs.CellRate(p)
		pr, pa := pobs.CellRate(p)
		if sr != pr || sa != pa {
			t.Fatalf("cell %+v: shard-merged rate %v/%d, serial %v/%d", p, pr, pa, sr, sa)
		}
	})
}
