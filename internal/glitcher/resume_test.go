package glitcher

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"glitchlab/internal/runctl"
)

// TestTable2ResumeByteIdentical kills a sharded Table II scan after a
// prefix of completed width rows (via injected cancellation), resumes it
// from the checkpoint with a different worker count, and requires the
// merged result to be deeply equal to an uninterrupted serial scan.
func TestTable2ResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid scan")
	}
	m := NewModel(7)
	serial, err := m.RunTable2(GuardWhileNeq)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	manifest := runctl.Manifest{Tool: "glitcher-test", ConfigHash: "sha256:t2", Seed: 7}
	ctx, cancel := context.WithCancel(context.Background())
	rn, err := runctl.Open(ctx, dir, manifest, false)
	if err != nil {
		t.Fatal(err)
	}
	const killAfter = 37 // rows out of 99
	var done atomic.Int64
	rn.Hooks.AfterUnit = func(string) {
		if done.Add(1) == killAfter {
			cancel()
		}
	}
	_, runErr := m.RunTable2Workers(GuardWhileNeq, 3, rn)
	cancel()
	if err := rn.Close(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(runErr, runctl.ErrInterrupted) {
		t.Fatalf("killed scan returned %v, want ErrInterrupted", runErr)
	}

	rn2, err := runctl.Open(context.Background(), dir, manifest, true)
	if err != nil {
		t.Fatal(err)
	}
	if rn2.Loaded() < killAfter {
		t.Fatalf("checkpoint lost rows: loaded %d, completed at least %d", rn2.Loaded(), killAfter)
	}
	resumed, err := m.RunTable2Workers(GuardWhileNeq, 2, rn2)
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if err := rn2.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, serial) {
		t.Fatal("resumed Table II differs from uninterrupted serial scan")
	}
}
