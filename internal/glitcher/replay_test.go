package glitcher

import (
	"reflect"
	"testing"

	"glitchlab/internal/pipeline"
)

// newTargetPair builds a replaying target and a full-run target over the
// same firmware source.
func newTargetPair(t *testing.T, g Guard, src string) (replay, full *Target) {
	t.Helper()
	replay, err := NewTarget(g, src)
	if err != nil {
		t.Fatal(err)
	}
	full, err = NewTarget(g, src)
	if err != nil {
		t.Fatal(err)
	}
	full.FullRun = true
	return replay, full
}

// TestAttemptReplayMatchesFullRun pins per-attempt equivalence between the
// trigger-point snapshot/replay engine and from-reset full runs: for every
// guard, a sampled set of grid points across all loop cycles (single- and
// double-loop firmware, plus long-glitch range plans) must produce
// identical pipeline results — stop reason, tag, fault, registers, cycle
// and step counters — and identical board trigger counts, which is what
// the Table II partial/full classification reads after each attempt.
func TestAttemptReplayMatchesFullRun(t *testing.T) {
	m := NewModel(1)
	stride := 13
	if testing.Short() {
		stride = 41
	}
	for _, g := range Guards() {
		check := func(src, what string, plan func(p Params, cycle int) pipeline.Injector) {
			replay, full := newTargetPair(t, g, src)
			i := 0
			Grid(func(p Params) {
				i++
				if i%stride != 0 {
					return
				}
				for cycle := 0; cycle < LoopCycles; cycle += 3 {
					inj := plan(p, cycle)
					rr := replay.Attempt(inj)
					fr := full.Attempt(inj)
					if !reflect.DeepEqual(rr, fr) {
						t.Fatalf("%v %s p=%+v cycle=%d: replay result %+v != full-run %+v",
							g, what, p, cycle, rr, fr)
					}
					if rt, ft := replay.Board.TriggerCount, full.Board.TriggerCount; rt != ft {
						t.Fatalf("%v %s p=%+v cycle=%d: trigger count %d != %d",
							g, what, p, cycle, rt, ft)
					}
				}
			})
		}
		check(g.SingleLoopSource(), "single", func(p Params, cycle int) pipeline.Injector {
			return m.Plan(p, cycle)
		})
		check(g.DoubleLoopSource(), "double", func(p Params, cycle int) pipeline.Injector {
			return m.Plan(p, cycle)
		})
		check(g.LongGlitchSource(), "long", func(p Params, cycle int) pipeline.Injector {
			return m.RangePlan(p, 0, 10+cycle)
		})
	}
}

// TestTable2ReplayMatchesFullRunScan pins scan-level equivalence: a whole
// Table II multi-glitch scan driven with full runs must equal the default
// replayed scan, per cycle and in total.
func TestTable2ReplayMatchesFullRunScan(t *testing.T) {
	if testing.Short() {
		t.Skip("full parameter scan")
	}
	m := NewModel(1)
	want, err := m.RunTable2(GuardWhileNotA)
	if err != nil {
		t.Fatal(err)
	}
	mf := NewModel(1)
	mf.FullRun = true
	got, err := mf.RunTable2(GuardWhileNotA)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("full-run Table II scan differs from replayed scan:\nfull   %+v\nreplay %+v", got, want)
	}
}
