package glitcher

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"glitchlab/internal/firmware"
	"glitchlab/internal/obs/profile"
	"glitchlab/internal/pipeline"
	"glitchlab/internal/runctl"
)

// LoopCycles is the length of one guard-loop iteration in clock cycles (all
// three guards compile to 8-cycle loops, as in the paper's Table I).
const LoopCycles = 8

// attemptBudget bounds one glitch attempt in clock cycles. The guards loop
// forever; once the glitch window has passed with no effect the attempt is
// classified as unsuccessful.
const attemptBudget = 600

// Target is a board loaded with one guard firmware, ready for repeated
// glitch attempts.
type Target struct {
	Guard   Guard
	Board   *firmware.Board
	Machine *pipeline.Machine

	// Prof, when non-nil, samples phase attribution for attempts on this
	// target (one timed attempt in every sampling interval; the rest pay
	// one increment). Scan workers each set their own shard.
	Prof *profile.Shard

	// FullRun disables trigger-point snapshot/replay, re-simulating the
	// boot prologue on every attempt. Results are byte-identical either
	// way (the prologue is injector-independent — see
	// pipeline.SnapshotAtTrigger); the flag exists so the equivalence is
	// checkable end to end.
	FullRun bool

	// snap is the lazily captured trigger-point snapshot every replayed
	// attempt restores; snapTried makes the capture happen once even when
	// it fails (a firmware that never triggers falls back to full runs).
	snap      *pipeline.Snapshot
	snapTried bool
}

// NewTarget assembles and loads src (one of the guard source builders) and
// registers the exit label as the success stop.
func NewTarget(g Guard, src string) (*Target, error) {
	b, err := firmware.NewBoard()
	if err != nil {
		return nil, err
	}
	if _, err := b.LoadSource(src); err != nil {
		return nil, fmt.Errorf("glitcher: %s firmware: %w", g, err)
	}
	m := pipeline.NewMachine(b)
	m.AddStopSymbol("exit")
	return &Target{Guard: g, Board: b, Machine: m}, nil
}

// snapshot returns the target's trigger-point snapshot, capturing it on
// first use. It returns nil — meaning "run fully" — when FullRun is set or
// when the firmware never raises its trigger within the attempt budget.
func (t *Target) snapshot() *pipeline.Snapshot {
	if t.FullRun {
		return nil
	}
	if !t.snapTried {
		t.snapTried = true
		t.snap = t.Machine.SnapshotAtTrigger(attemptBudget)
	}
	return t.snap
}

// Attempt rewinds the board to the trigger point (or resets it, on the
// full-run path) and runs one glitch attempt.
func (t *Target) Attempt(inj pipeline.Injector) pipeline.Result {
	if t.Prof.Sample() {
		return t.attemptProfiled(inj)
	}
	t.Machine.Glitch = inj
	if s := t.snapshot(); s != nil {
		return t.Machine.RunFrom(s, attemptBudget)
	}
	t.Board.Reset()
	return t.Machine.Run(attemptBudget)
}

// attemptProfiled is Attempt with phase timing: the snapshot restore (or
// board reset, on the full-run path) is the assemble phase and the machine
// run the execute phase, out of which the pipeline's glitch-window mapping
// (measured via pipeline.ReplayProf, corrected for its own clock-read
// overhead) and the calibrated decode share are split. Scan outcome
// bookkeeping happens in the scan drivers and is not attributed — it is a
// few map updates per success.
func (t *Target) attemptProfiled(inj pipeline.Injector) pipeline.Result {
	s := t.snapshot()
	tm := t.Prof.Start()
	t.Machine.Glitch = inj
	if s != nil {
		t.Machine.RestoreSnapshot(s)
	} else {
		t.Board.Reset()
	}
	tm.Mark(profile.PhaseAssemble)
	var rp pipeline.ReplayProf
	t.Machine.Replay = &rp
	var r pipeline.Result
	if s != nil {
		r = t.Machine.Resume(attemptBudget)
	} else {
		r = t.Machine.Run(attemptBudget)
	}
	t.Machine.Replay = nil
	execNs := tm.Mark(profile.PhaseExecute)
	// The per-slot replay measurement itself costs a time.Now/Since pair
	// per timed slot, all of it inside the execute mark just taken;
	// remove that instrumentation overhead before splitting the real
	// work out.
	execNs -= t.Prof.Discount(profile.PhaseExecute,
		int64(rp.Ops)*t.Prof.PairOverheadNs(), execNs)
	replayNs := rp.Ns - int64(rp.Ops)*t.Prof.ClockOverheadNs()
	moved := t.Prof.Split(profile.PhaseExecute, profile.PhaseReplay, replayNs, execNs)
	steps := r.Steps
	if s != nil {
		steps -= s.Steps() // prologue instructions were not re-executed
	}
	t.Prof.Split(profile.PhaseExecute, profile.PhaseDecode,
		t.Prof.DecodeEst(steps), execNs-moved)
	return r
}

// CleanRun verifies the firmware loops forever when not glitched.
func (t *Target) CleanRun() pipeline.Result {
	return t.Attempt(nil)
}

// CycleCount aggregates Table I's per-clock-cycle statistics.
type CycleCount struct {
	Cycle       int
	Instruction string // which instruction occupies this cycle
	Attempts    uint64
	Successes   uint64
	Values      map[uint32]uint64 // post-mortem comparator values on success
	// ByKind attributes each success to the physical corruption that the
	// glitch delivered — the mechanism analysis the paper performs by
	// hand in Section V-A (register data corrupted vs. execution
	// corrupted).
	ByKind map[pipeline.EventKind]uint64
}

// SortedValues returns the observed comparator values ordered by value.
func (c *CycleCount) SortedValues() []uint32 {
	vals := make([]uint32, 0, len(c.Values))
	for v := range c.Values {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// cycleInstruction maps a relative clock cycle to the instruction the
// paper's tables attribute it to.
func (g Guard) cycleInstruction(cycle int) string {
	switch g {
	case GuardWhileNotA, GuardWhileA:
		names := []string{
			"MOV R3, SP", "ADDS R3, #7", "LDRB R3, [R3]", "LDRB R3, [R3]",
			"CMP R3, #0", "Bcc .loop", "Bcc .loop", "Bcc .loop",
		}
		if cycle < len(names) {
			n := names[cycle]
			if n == "Bcc .loop" {
				if g == GuardWhileNotA {
					return "BEQ .loop"
				}
				return "BNE .loop"
			}
			return n
		}
	case GuardWhileNeq:
		names := []string{
			"LDR R2, [SP,#0x10]", "LDR R2, [SP,#0x10]",
			"LDR R3, =0xD3B9AEC6", "LDR R3, =0xD3B9AEC6",
			"CMP R2, R3", "BNE .loop", "BNE .loop", "BNE .loop",
		}
		if cycle < len(names) {
			return names[cycle]
		}
	}
	return fmt.Sprintf("cycle %d", cycle)
}

// Table1Result is one guard's single-glitch scan (Table I a/b/c).
type Table1Result struct {
	Guard     Guard
	PerCycle  []CycleCount
	Attempts  uint64
	Successes uint64
}

// SuccessRate returns the overall success fraction.
func (r *Table1Result) SuccessRate() float64 {
	if r.Attempts == 0 {
		return 0
	}
	return float64(r.Successes) / float64(r.Attempts)
}

// KindBreakdown sums success attributions across all cycles.
func (r *Table1Result) KindBreakdown() map[pipeline.EventKind]uint64 {
	out := map[pipeline.EventKind]uint64{}
	for _, c := range r.PerCycle {
		for k, n := range c.ByKind {
			out[k] += n
		}
	}
	return out
}

// UniqueValues counts distinct post-mortem comparator values across all
// cycles (the paper reports e.g. "12 unique").
func (r *Table1Result) UniqueValues() int {
	set := map[uint32]bool{}
	for _, c := range r.PerCycle {
		for v := range c.Values {
			set[v] = true
		}
	}
	return len(set)
}

// scanObs is the per-attempt observation sink: the serial *Obs or a
// sharded worker's *ObsShard. Both are nil-safe, so a bare scan passes a
// typed nil straight through.
type scanObs interface {
	Attempt(p Params, r pipeline.Result)
	NoEffect(p Params)
}

// scanCycleBand runs the Table I body for one clock cycle over the width
// band [lo, hi), returning the band's partial per-cycle counts. It is the
// shared kernel of the serial and sharded single-glitch scans.
func (m *Model) scanCycleBand(t *Target, cycle, lo, hi int, sink scanObs) CycleCount {
	cmpReg := t.Guard.ComparatorReg()
	cc := CycleCount{
		Cycle:       cycle,
		Instruction: t.Guard.cycleInstruction(cycle),
		Values:      map[uint32]uint64{},
		ByKind:      map[pipeline.EventKind]uint64{},
	}
	GridBand(lo, hi, func(p Params) bool {
		cc.Attempts++
		// The model is deterministic, so a parameter point that
		// produces no event at this cycle cannot affect the run;
		// skip the emulation (identical outcome, less time).
		ev, hit := m.EventAt(p, cycle, 0)
		if !hit {
			sink.NoEffect(p)
			return true
		}
		r := t.Attempt(m.Plan(p, cycle))
		sink.Attempt(p, r)
		if r.Reason == pipeline.StopHit {
			cc.Successes++
			cc.Values[r.Regs[cmpReg]]++
			cc.ByKind[ev.Kind]++
		}
		return true
	})
	return cc
}

// merge adds a band's partial counts into cc (which must be for the same
// cycle).
func (c *CycleCount) merge(part CycleCount) {
	c.Attempts += part.Attempts
	c.Successes += part.Successes
	for v, n := range part.Values {
		c.Values[v] += n
	}
	for k, n := range part.ByKind {
		c.ByKind[k] += n
	}
}

// addCycle appends one cycle's counts to the table.
func (r *Table1Result) addCycle(cc CycleCount) {
	r.Attempts += cc.Attempts
	r.Successes += cc.Successes
	r.PerCycle = append(r.PerCycle, cc)
}

// RunTable1 performs the paper's Table I scan for one guard: for each of
// the loop's clock cycles, every (width, offset) pair is attempted once.
func (m *Model) RunTable1(g Guard) (*Table1Result, error) {
	return m.RunTable1Workers(g, 1, nil)
}

// RunTable1Workers is RunTable1 sharded across workers goroutines: the
// parameter grid is partitioned into width rows, each worker scans rows
// across every clock cycle on its own cloned Target, and the per-cycle
// counts merge by addition — the result is identical to the serial scan,
// per-cycle and in total. rn, when non-nil, adds cancellation,
// per-row checkpointing and panic quarantine (see runBands); on
// interruption the partial table covering the completed rows is returned
// alongside the error.
func (m *Model) RunTable1Workers(g Guard, workers int, rn *runctl.Run) (*Table1Result, error) {
	defer m.Obs.Span("scan.table1", guardAttrs(g)).End()
	merged, err := runBands(m, g, g.SingleLoopSource(), workers, rn, "table1",
		LoopCycles,
		func(cycle int) CycleCount {
			return CycleCount{
				Cycle:       cycle,
				Instruction: g.cycleInstruction(cycle),
				Values:      map[uint32]uint64{},
				ByKind:      map[pipeline.EventKind]uint64{},
			}
		},
		func(t *Target, lo, hi int, sink scanObs) []CycleCount {
			parts := make([]CycleCount, 0, LoopCycles)
			for cycle := 0; cycle < LoopCycles; cycle++ {
				parts = append(parts, m.scanCycleBand(t, cycle, lo, hi, sink))
			}
			return parts
		},
		func(dst *CycleCount, part CycleCount) { dst.merge(part) })
	if err != nil && !errors.Is(err, runctl.ErrInterrupted) {
		return nil, err
	}
	res := &Table1Result{Guard: g}
	for _, cc := range merged {
		res.addCycle(cc)
	}
	return res, err
}

// runBands drives one guard scan over the grid, sharded by width rows: a
// row (one width, every offset, every cell) is the unit of work, pulled by
// workers goroutines, each with its own Target (boards are mutable, so
// none is ever shared) and its own observer shard, flushed before the
// merge. scan must return one cell per scanned unit (cycle or range
// index), in the same order for every row; rows are summed ascending with
// mergeCell into cells seeded by newCell, which makes the final counts
// independent of the worker count — and of how a checkpointed run was
// split across interruptions, since the unit is a property of the grid,
// not of the schedule.
//
// rn, when non-nil, threads the run controller through the scan: rows are
// skipped when the checkpoint already holds them, checkpointed when they
// complete, and quarantined (target rebuilt, scan continues) when they
// panic; cancellation is polled between rows. An interrupted scan returns
// the merge of the completed rows together with the wrapped
// runctl.ErrInterrupted.
func runBands[T any](m *Model, g Guard, src string, workers int,
	rn *runctl.Run, exp string, cells int, newCell func(i int) T,
	scan func(t *Target, lo, hi int, sink scanObs) []T,
	mergeCell func(dst *T, part T)) ([]T, error) {

	m.Prof.Begin()
	defer m.Prof.End()

	const rows = 2*ParamRange + 1
	rowKey := func(ri int) string {
		return fmt.Sprintf("%s guard=%s width=%d", exp, g, ri-ParamRange)
	}

	// Each row slot is written by exactly one worker (or restored here from
	// the checkpoint before any worker starts), so no locking is needed.
	rowCells := make([][]T, rows)
	haveRow := make([]bool, rows)
	var pending []int
	for ri := 0; ri < rows; ri++ {
		var loaded []T
		if rn.Lookup(rowKey(ri), &loaded) && len(loaded) == cells {
			rowCells[ri] = loaded
			haveRow[ri] = true
			continue
		}
		pending = append(pending, ri)
	}

	scanRow := func(t *Target, ri int, sink scanObs) error {
		key := rowKey(ri)
		return rn.Protect(key, func() error {
			lo := ri - ParamRange
			part := scan(t, lo, lo+1, sink)
			if err := rn.Complete(key, part); err != nil {
				return err
			}
			rowCells[ri] = part
			haveRow[ri] = true
			return nil
		})
	}

	assemble := func() []T {
		merged := make([]T, cells)
		for i := range merged {
			merged[i] = newCell(i)
		}
		for ri := 0; ri < rows; ri++ {
			if !haveRow[ri] {
				continue
			}
			for i := range merged {
				mergeCell(&merged[i], rowCells[ri][i])
			}
		}
		return merged
	}

	if workers <= 1 {
		psh := m.Prof.Shard()
		defer psh.Flush()
		var t *Target
		for _, ri := range pending {
			if err := rn.Err(); err != nil {
				return assemble(), err
			}
			if t == nil {
				var err error
				if t, err = NewTarget(g, src); err != nil {
					return nil, err
				}
				t.FullRun = m.FullRun
				m.Obs.AttachTarget(t)
				t.Prof = psh
			}
			if err := scanRow(t, ri, m.Obs); err != nil {
				var pe *runctl.PanicError
				if errors.As(err, &pe) {
					// The board may be wedged mid-attempt; rebuild it for
					// the next row and leave this one quarantined.
					t = nil
					continue
				}
				return nil, err
			}
		}
		return assemble(), rn.Err()
	}

	if workers > len(pending) {
		workers = len(pending)
	}
	var next atomic.Int64
	var firstErr atomic.Pointer[error]
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t, err := NewTarget(g, src)
			if err != nil {
				firstErr.CompareAndSwap(nil, &err)
				return
			}
			t.FullRun = m.FullRun
			m.Obs.AttachTarget(t)
			shard := m.Obs.Shard()
			defer shard.Flush()
			psh := m.Prof.Shard()
			defer psh.Flush()
			t.Prof = psh
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pending) || firstErr.Load() != nil || rn.Err() != nil {
					return
				}
				if err := scanRow(t, pending[i], shard); err != nil {
					var pe *runctl.PanicError
					if errors.As(err, &pe) {
						t, err = NewTarget(g, src)
						if err != nil {
							firstErr.CompareAndSwap(nil, &err)
							return
						}
						t.FullRun = m.FullRun
						m.Obs.AttachTarget(t)
						t.Prof = psh
						continue
					}
					firstErr.CompareAndSwap(nil, &err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if errp := firstErr.Load(); errp != nil {
		return nil, *errp
	}
	return assemble(), rn.Err()
}

// Table2Result is one guard's multi-glitch scan (Table II).
type Table2Result struct {
	Guard    Guard
	Partial  []uint64 // per cycle: first glitch succeeded, second failed
	Full     []uint64 // per cycle: both glitches succeeded
	Attempts uint64
}

// Totals returns the summed partial and full counts.
func (r *Table2Result) Totals() (partial, full uint64) {
	for i := range r.Partial {
		partial += r.Partial[i]
		full += r.Full[i]
	}
	return partial, full
}

// table2Cell is one (cycle, band) slice of the multi-glitch scan. Fields
// are exported so checkpointed rows JSON-round-trip exactly.
type table2Cell struct {
	Attempts, Partial, Full uint64
}

// scanTable2Band runs the Table II body for one clock cycle over the
// width band [lo, hi).
func (m *Model) scanTable2Band(t *Target, cycle, lo, hi int, sink scanObs) table2Cell {
	var cell table2Cell
	GridBand(lo, hi, func(p Params) bool {
		cell.Attempts++
		// No event in the first window means the first loop can never be
		// escaped — neither partial nor full.
		if _, hit := m.EventAt(p, cycle, 0); !hit {
			sink.NoEffect(p)
			return true
		}
		r := t.Attempt(m.Plan(p, cycle))
		sink.Attempt(p, r)
		switch {
		case r.Reason == pipeline.StopHit:
			cell.Full++
		case t.Board.TriggerCount >= 2:
			// The second trigger fired, so the first loop was escaped — a
			// partial glitch.
			cell.Partial++
		}
		return true
	})
	return cell
}

// RunTable2 performs the multi-glitch experiment: two identical loops, each
// with its own trigger; the same glitch parameters are delivered in both
// windows.
func (m *Model) RunTable2(g Guard) (*Table2Result, error) {
	return m.RunTable2Workers(g, 1, nil)
}

// RunTable2Workers is RunTable2 sharded across width rows (see
// RunTable1Workers); the per-cycle partial/full counts are identical to
// the serial scan's. rn adds cancellation, checkpointing and quarantine.
func (m *Model) RunTable2Workers(g Guard, workers int, rn *runctl.Run) (*Table2Result, error) {
	defer m.Obs.Span("scan.table2", guardAttrs(g)).End()
	merged, err := runBands(m, g, g.DoubleLoopSource(), workers, rn, "table2",
		LoopCycles,
		func(int) table2Cell { return table2Cell{} },
		func(t *Target, lo, hi int, sink scanObs) []table2Cell {
			parts := make([]table2Cell, 0, LoopCycles)
			for cycle := 0; cycle < LoopCycles; cycle++ {
				parts = append(parts, m.scanTable2Band(t, cycle, lo, hi, sink))
			}
			return parts
		},
		func(dst *table2Cell, part table2Cell) {
			dst.Attempts += part.Attempts
			dst.Partial += part.Partial
			dst.Full += part.Full
		})
	if err != nil && !errors.Is(err, runctl.ErrInterrupted) {
		return nil, err
	}
	res := &Table2Result{
		Guard:   g,
		Partial: make([]uint64, LoopCycles),
		Full:    make([]uint64, LoopCycles),
	}
	for cycle, cell := range merged {
		res.Attempts += cell.Attempts
		res.Partial[cycle] = cell.Partial
		res.Full[cycle] = cell.Full
	}
	return res, err
}

// Table3Result is one guard's long-glitch scan (Table III).
type Table3Result struct {
	Guard     Guard
	Cycles    []int    // inclusive end of each glitched range [0, n)
	Successes []uint64 // per range
	Attempts  uint64
}

// Total returns the summed successes.
func (r *Table3Result) Total() uint64 {
	var n uint64
	for _, s := range r.Successes {
		n += s
	}
	return n
}

// longGlitchRanges returns the inclusive range bound n for each long-glitch
// scan index: the paper glitches every cycle in [0, n) for n in [10, 20].
func longGlitchRanges() []int {
	ns := make([]int, 0, 11)
	for n := 10; n <= 20; n++ {
		ns = append(ns, n)
	}
	return ns
}

// table3Cell is one (range, band) slice of the long-glitch scan. Fields
// are exported so checkpointed rows JSON-round-trip exactly.
type table3Cell struct {
	Attempts, Successes uint64
}

// scanTable3Band runs the Table III body for one glitched range [0, n)
// over the width band [lo, hi).
func (m *Model) scanTable3Band(t *Target, n, lo, hi int, sink scanObs) table3Cell {
	var cell table3Cell
	GridBand(lo, hi, func(p Params) bool {
		cell.Attempts++
		any := false
		for rel := 0; rel < n && !any; rel++ {
			_, any = m.EventAt(p, rel, 0)
		}
		if !any {
			sink.NoEffect(p)
			return true
		}
		r := t.Attempt(m.RangePlan(p, 0, n))
		sink.Attempt(p, r)
		if r.Reason == pipeline.StopHit {
			cell.Successes++
		}
		return true
	})
	return cell
}

// RunTable3 performs the long-glitch experiment: a glitch is inserted at
// every clock cycle from the trigger up to n, for n in [10, 20], against
// two subsequent loops.
func (m *Model) RunTable3(g Guard) (*Table3Result, error) {
	return m.RunTable3Workers(g, 1, nil)
}

// RunTable3Workers is RunTable3 sharded across width rows (see
// RunTable1Workers); the per-range success counts are identical to the
// serial scan's. rn adds cancellation, checkpointing and quarantine.
func (m *Model) RunTable3Workers(g Guard, workers int, rn *runctl.Run) (*Table3Result, error) {
	defer m.Obs.Span("scan.table3", guardAttrs(g)).End()
	ns := longGlitchRanges()
	merged, err := runBands(m, g, g.LongGlitchSource(), workers, rn, "table3",
		len(ns),
		func(int) table3Cell { return table3Cell{} },
		func(t *Target, lo, hi int, sink scanObs) []table3Cell {
			parts := make([]table3Cell, 0, len(ns))
			for _, n := range ns {
				parts = append(parts, m.scanTable3Band(t, n, lo, hi, sink))
			}
			return parts
		},
		func(dst *table3Cell, part table3Cell) {
			dst.Attempts += part.Attempts
			dst.Successes += part.Successes
		})
	if err != nil && !errors.Is(err, runctl.ErrInterrupted) {
		return nil, err
	}
	res := &Table3Result{Guard: g}
	for i, cell := range merged {
		res.Attempts += cell.Attempts
		res.Cycles = append(res.Cycles, ns[i])
		res.Successes = append(res.Successes, cell.Successes)
	}
	return res, err
}
