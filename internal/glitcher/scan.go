package glitcher

import (
	"fmt"
	"sort"

	"glitchlab/internal/firmware"
	"glitchlab/internal/pipeline"
)

// LoopCycles is the length of one guard-loop iteration in clock cycles (all
// three guards compile to 8-cycle loops, as in the paper's Table I).
const LoopCycles = 8

// attemptBudget bounds one glitch attempt in clock cycles. The guards loop
// forever; once the glitch window has passed with no effect the attempt is
// classified as unsuccessful.
const attemptBudget = 600

// Target is a board loaded with one guard firmware, ready for repeated
// glitch attempts.
type Target struct {
	Guard   Guard
	Board   *firmware.Board
	Machine *pipeline.Machine
}

// NewTarget assembles and loads src (one of the guard source builders) and
// registers the exit label as the success stop.
func NewTarget(g Guard, src string) (*Target, error) {
	b, err := firmware.NewBoard()
	if err != nil {
		return nil, err
	}
	if _, err := b.LoadSource(src); err != nil {
		return nil, fmt.Errorf("glitcher: %s firmware: %w", g, err)
	}
	m := pipeline.NewMachine(b)
	m.AddStopSymbol("exit")
	return &Target{Guard: g, Board: b, Machine: m}, nil
}

// Attempt resets the board and runs one glitch attempt.
func (t *Target) Attempt(inj pipeline.Injector) pipeline.Result {
	t.Board.Reset()
	t.Machine.Glitch = inj
	return t.Machine.Run(attemptBudget)
}

// CleanRun verifies the firmware loops forever when not glitched.
func (t *Target) CleanRun() pipeline.Result {
	return t.Attempt(nil)
}

// CycleCount aggregates Table I's per-clock-cycle statistics.
type CycleCount struct {
	Cycle       int
	Instruction string // which instruction occupies this cycle
	Attempts    uint64
	Successes   uint64
	Values      map[uint32]uint64 // post-mortem comparator values on success
	// ByKind attributes each success to the physical corruption that the
	// glitch delivered — the mechanism analysis the paper performs by
	// hand in Section V-A (register data corrupted vs. execution
	// corrupted).
	ByKind map[pipeline.EventKind]uint64
}

// SortedValues returns the observed comparator values ordered by value.
func (c *CycleCount) SortedValues() []uint32 {
	vals := make([]uint32, 0, len(c.Values))
	for v := range c.Values {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// cycleInstruction maps a relative clock cycle to the instruction the
// paper's tables attribute it to.
func (g Guard) cycleInstruction(cycle int) string {
	switch g {
	case GuardWhileNotA, GuardWhileA:
		names := []string{
			"MOV R3, SP", "ADDS R3, #7", "LDRB R3, [R3]", "LDRB R3, [R3]",
			"CMP R3, #0", "Bcc .loop", "Bcc .loop", "Bcc .loop",
		}
		if cycle < len(names) {
			n := names[cycle]
			if n == "Bcc .loop" {
				if g == GuardWhileNotA {
					return "BEQ .loop"
				}
				return "BNE .loop"
			}
			return n
		}
	case GuardWhileNeq:
		names := []string{
			"LDR R2, [SP,#0x10]", "LDR R2, [SP,#0x10]",
			"LDR R3, =0xD3B9AEC6", "LDR R3, =0xD3B9AEC6",
			"CMP R2, R3", "BNE .loop", "BNE .loop", "BNE .loop",
		}
		if cycle < len(names) {
			return names[cycle]
		}
	}
	return fmt.Sprintf("cycle %d", cycle)
}

// Table1Result is one guard's single-glitch scan (Table I a/b/c).
type Table1Result struct {
	Guard     Guard
	PerCycle  []CycleCount
	Attempts  uint64
	Successes uint64
}

// SuccessRate returns the overall success fraction.
func (r *Table1Result) SuccessRate() float64 {
	if r.Attempts == 0 {
		return 0
	}
	return float64(r.Successes) / float64(r.Attempts)
}

// KindBreakdown sums success attributions across all cycles.
func (r *Table1Result) KindBreakdown() map[pipeline.EventKind]uint64 {
	out := map[pipeline.EventKind]uint64{}
	for _, c := range r.PerCycle {
		for k, n := range c.ByKind {
			out[k] += n
		}
	}
	return out
}

// UniqueValues counts distinct post-mortem comparator values across all
// cycles (the paper reports e.g. "12 unique").
func (r *Table1Result) UniqueValues() int {
	set := map[uint32]bool{}
	for _, c := range r.PerCycle {
		for v := range c.Values {
			set[v] = true
		}
	}
	return len(set)
}

// RunTable1 performs the paper's Table I scan for one guard: for each of
// the loop's clock cycles, every (width, offset) pair is attempted once.
func (m *Model) RunTable1(g Guard) (*Table1Result, error) {
	t, err := NewTarget(g, g.SingleLoopSource())
	if err != nil {
		return nil, err
	}
	m.Obs.AttachTarget(t)
	defer m.Obs.Span("scan.table1", guardAttrs(g)).End()
	res := &Table1Result{Guard: g}
	cmpReg := g.ComparatorReg()
	for cycle := 0; cycle < LoopCycles; cycle++ {
		cc := CycleCount{
			Cycle:       cycle,
			Instruction: g.cycleInstruction(cycle),
			Values:      map[uint32]uint64{},
			ByKind:      map[pipeline.EventKind]uint64{},
		}
		Grid(func(p Params) {
			cc.Attempts++
			// The model is deterministic, so a parameter point that
			// produces no event at this cycle cannot affect the run;
			// skip the emulation (identical outcome, less time).
			ev, hit := m.EventAt(p, cycle, 0)
			if !hit {
				m.Obs.NoEffect(p)
				return
			}
			r := t.Attempt(m.Plan(p, cycle))
			m.Obs.Attempt(p, r)
			if r.Reason == pipeline.StopHit {
				cc.Successes++
				cc.Values[r.Regs[cmpReg]]++
				cc.ByKind[ev.Kind]++
			}
		})
		res.Attempts += cc.Attempts
		res.Successes += cc.Successes
		res.PerCycle = append(res.PerCycle, cc)
	}
	return res, nil
}

// Table2Result is one guard's multi-glitch scan (Table II).
type Table2Result struct {
	Guard    Guard
	Partial  []uint64 // per cycle: first glitch succeeded, second failed
	Full     []uint64 // per cycle: both glitches succeeded
	Attempts uint64
}

// Totals returns the summed partial and full counts.
func (r *Table2Result) Totals() (partial, full uint64) {
	for i := range r.Partial {
		partial += r.Partial[i]
		full += r.Full[i]
	}
	return partial, full
}

// RunTable2 performs the multi-glitch experiment: two identical loops, each
// with its own trigger; the same glitch parameters are delivered in both
// windows.
func (m *Model) RunTable2(g Guard) (*Table2Result, error) {
	t, err := NewTarget(g, g.DoubleLoopSource())
	if err != nil {
		return nil, err
	}
	m.Obs.AttachTarget(t)
	defer m.Obs.Span("scan.table2", guardAttrs(g)).End()
	res := &Table2Result{
		Guard:   g,
		Partial: make([]uint64, LoopCycles),
		Full:    make([]uint64, LoopCycles),
	}
	for cycle := 0; cycle < LoopCycles; cycle++ {
		Grid(func(p Params) {
			res.Attempts++
			// No event in the first window means the first loop can
			// never be escaped — neither partial nor full.
			if _, hit := m.EventAt(p, cycle, 0); !hit {
				m.Obs.NoEffect(p)
				return
			}
			r := t.Attempt(m.Plan(p, cycle))
			m.Obs.Attempt(p, r)
			switch {
			case r.Reason == pipeline.StopHit:
				res.Full[cycle]++
			case t.Board.TriggerCount >= 2:
				// The second trigger fired, so the first loop was
				// escaped — a partial glitch.
				res.Partial[cycle]++
			}
		})
	}
	return res, nil
}

// Table3Result is one guard's long-glitch scan (Table III).
type Table3Result struct {
	Guard     Guard
	Cycles    []int    // inclusive end of each glitched range [0, n)
	Successes []uint64 // per range
	Attempts  uint64
}

// Total returns the summed successes.
func (r *Table3Result) Total() uint64 {
	var n uint64
	for _, s := range r.Successes {
		n += s
	}
	return n
}

// RunTable3 performs the long-glitch experiment: a glitch is inserted at
// every clock cycle from the trigger up to n, for n in [10, 20], against
// two subsequent loops.
func (m *Model) RunTable3(g Guard) (*Table3Result, error) {
	t, err := NewTarget(g, g.LongGlitchSource())
	if err != nil {
		return nil, err
	}
	m.Obs.AttachTarget(t)
	defer m.Obs.Span("scan.table3", guardAttrs(g)).End()
	res := &Table3Result{Guard: g}
	for n := 10; n <= 20; n++ {
		var succ uint64
		Grid(func(p Params) {
			res.Attempts++
			any := false
			for rel := 0; rel < n && !any; rel++ {
				_, any = m.EventAt(p, rel, 0)
			}
			if !any {
				m.Obs.NoEffect(p)
				return
			}
			r := t.Attempt(m.RangePlan(p, 0, n))
			m.Obs.Attempt(p, r)
			if r.Reason == pipeline.StopHit {
				succ++
			}
		})
		res.Cycles = append(res.Cycles, n)
		res.Successes = append(res.Successes, succ)
	}
	return res, nil
}
