// Package glitcher reproduces the paper's Section V ChipWhisperer
// experiments against a simulated target: a deterministic clock-glitch
// physics model over the paper's parameter space (width and offset, each
// swept over [-49%, +49%] of a clock period, giving the paper's 9,801
// attempts per clock cycle), plus scan drivers for single-glitch (Table I),
// multi-glitch (Table II), long-glitch (Table III) and windowed attacks
// (Table VI).
//
// Figure 1 of the paper defines the three clock-glitch parameters this
// package models: the offset from the trigger (which clock cycle is hit),
// the offset into the clock cycle, and the width of the inserted edge.
//
// The model is deterministic: a given (seed, width, offset, cycle, window)
// always produces the same corruption. This mirrors the paper's laboratory
// setup, where a perfect trigger makes a tuned glitch reproducible
// (Section V-B finds parameters with 10/10 reliability). "Probability"
// materializes as the fraction of the parameter grid that produces a given
// effect, exactly as in the paper's exhaustive scans. Bit flips are
// strongly biased 1→0, the dominant physical effect of clock and voltage
// glitching reported by the paper and its references.
package glitcher

import (
	"math"

	"glitchlab/internal/isa"
	"glitchlab/internal/obs/profile"
	"glitchlab/internal/pipeline"
)

// ParamRange is the half-width of the scanned parameter grid: width and
// offset each range over [-ParamRange, +ParamRange] percent.
const ParamRange = 49

// GridSize is the number of (width, offset) pairs per clock cycle —
// the paper's 9,801 glitching attempts per cycle.
const GridSize = (2*ParamRange + 1) * (2*ParamRange + 1)

// Params identifies one point in the glitch parameter space.
type Params struct {
	Width  int // percent of clock period, -49..49
	Offset int // percent into the clock cycle, -49..49
}

// Model is the deterministic clock-glitch fault model.
type Model struct {
	// Seed diversifies the whole landscape; experiments fix it so tables
	// are exactly reproducible.
	Seed uint64
	// Recharge is the probability that a second glitch in quick
	// succession (window > 0) is physically delivered, modeling the
	// glitch generator's recovery limits that make multi-glitches harder
	// (paper Section V-C).
	Recharge float64

	// Obs, when non-nil, instruments every scan and search driven through
	// this model (attempt/success counters, grid coverage, trace records).
	Obs *Obs

	// Prof, when non-nil, samples phase attribution for every attempt
	// driven through this model's scans: board reset (assemble), the
	// pipeline's glitch-window mapping (trigger-replay) and the emulated
	// run (execute, with the decode share split out by calibrated unit
	// cost). Each scan worker records into its own shard.
	Prof *profile.Profile

	// FullRun makes every scan target re-simulate the boot prologue on
	// each attempt instead of replaying from the trigger-point snapshot.
	// Scan results are byte-identical either way; the flag exists so that
	// equivalence stays checkable end to end (ci.sh compares the two).
	FullRun bool
}

// NewModel returns a model with the calibration used throughout the
// reproduction (documented in DESIGN.md).
func NewModel(seed uint64) *Model {
	return &Model{Seed: seed, Recharge: 0.45}
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (m *Model) hash(p Params, rel, window int, salt uint64) uint64 {
	h := m.Seed
	h = splitmix(h ^ uint64(uint32(p.Width))<<32 ^ uint64(uint32(p.Offset)))
	h = splitmix(h ^ uint64(uint32(rel))<<16 ^ uint64(uint32(window)))
	return splitmix(h ^ salt)
}

func u01(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// strength computes the effectiveness landscape for a parameter point:
// a narrow ridge in width (glitches too narrow do nothing, too wide reset
// the chip more often than they corrupt it) modulated by the intra-cycle
// offset. Matches the paper's observation that only a small, tunable part
// of the parameter space produces useful faults.
func (m *Model) strength(p Params) float64 {
	wn := math.Abs(float64(p.Width)) / ParamRange
	on := float64(p.Offset) / ParamRange

	// Width ridge centred at 78% of the maximum width.
	wr := math.Exp(-math.Pow((wn-0.78)/0.13, 2))
	// Offset response: strongest when the edge lands late in the cycle
	// (near the capturing clock edge), with a secondary early lobe.
	or := 0.75*math.Exp(-math.Pow((on-0.55)/0.28, 2)) +
		0.45*math.Exp(-math.Pow((on+0.6)/0.22, 2))
	// Per-point character jitter: real boards have fine structure the
	// smooth ridges do not capture.
	j := 0.55 + 0.9*u01(m.hash(p, -1, -1, 0xC0FFEE))
	s := wr * or * j
	if s > 1 {
		s = 1
	}
	return s
}

// eventProbability scales strength into a per-cycle corruption chance.
const eventProbability = 0.6

// character classifies a parameter point's dominant physical effect. Real
// glitch waveforms have a personality: a given (width, offset) reliably
// disturbs the same part of the chip — some points starve the bus (loads
// "fail" toward zero), others corrupt the fetch path. This coherence is
// what makes long glitches behave qualitatively differently from a string
// of independent single glitches (paper Section V-D).
type character uint8

const (
	charFetch    character = iota // corrupts instruction fetch/issue
	charCollapse                  // starves the data bus: loads fail low
	charMixed                     // a bit of everything
)

func (m *Model) character(p Params) character {
	d := u01(m.hash(p, -2, -2, 0xCAA2AC7E))
	switch {
	case d < 0.42:
		return charFetch
	case d < 0.82:
		return charCollapse
	default:
		return charMixed
	}
}

// EventAt returns the corruption event for a glitch delivered at relative
// clock cycle rel in trigger window `window`, or false if this parameter
// point does not disturb that cycle.
//
// The event content is independent of the window index: re-delivering the
// same glitch against identical code produces the same corruption, which is
// why the paper's multi-glitch success (Table II) is gated mainly by the
// glitch generator's recovery, modeled by Recharge, rather than by a fresh
// roll of the dice.
func (m *Model) EventAt(p Params, rel, window int) (pipeline.Event, bool) {
	return m.EventInContext(p, rel, window, 0)
}

// EventInContext is EventAt for a glitch that has already been sustained
// for `sustained` preceding consecutive cycles (long-glitch attacks).
// Sustained glitching changes the physics qualitatively, per the paper's
// Section V-D hypotheses:
//
//   - a starved data bus no longer captures residue, it discharges: loads
//     fail toward zero (which is what lets long glitches break while(a));
//   - the fetch path accumulates corruption into the fetch address itself,
//     so execution tends to fly away and crash (which is why while(!a),
//     the easiest single-glitch target, resists long glitches).
func (m *Model) EventInContext(p Params, rel, window, sustained int) (pipeline.Event, bool) {
	if window > 0 {
		// Back-to-back glitches: the generator may not have recovered.
		if u01(m.hash(p, rel, window, 0x12EC4A26)) > m.Recharge {
			return pipeline.Event{}, false
		}
	}
	s := m.strength(p)
	if u01(m.hash(p, rel, 0, 0x0EB0E147)) > s*eventProbability {
		return pipeline.Event{}, false
	}

	h := m.hash(p, rel, 0, 0x5EED0E47)
	kindDraw := u01(h)
	hm := splitmix(h)

	// The point's character dominates the effect; a minority of events
	// deviate (per-cycle electrical noise).
	switch m.character(p) {
	case charCollapse:
		if kindDraw < 0.80 {
			if sustained >= 2 {
				// Fully starved bus: the load reads zero.
				return pipeline.Event{
					Kind:     pipeline.EventDataCorrupt,
					DataMask: 0xFFFFFFFF,
				}, true
			}
			// A short starvation captures floating residue.
			if u01(splitmix(hm^0x44)) < 0.70 {
				return pipeline.Event{
					Kind:        pipeline.EventDataCorrupt,
					DataResidue: true,
					DataValue:   residueValue(splitmix(hm ^ 0x66)),
				}, true
			}
			return pipeline.Event{
				Kind:     pipeline.EventDataCorrupt,
				DataMask: m.dataMask(hm),
				DataSet:  u01(splitmix(hm^0xC)) < 0.06,
			}, true
		}
	case charFetch:
		if kindDraw < 0.80 {
			pcChance := 0.45 * float64(sustained-1)
			if pcChance > 0.9 {
				pcChance = 0.9
			}
			if sustained >= 2 && u01(splitmix(hm^0x55)) < pcChance {
				// Accumulated fetch-path corruption hits the fetch
				// address itself: the core flies off to a garbage
				// address, which on this memory map is almost always
				// unmapped — the "irrecoverable corruption" the paper
				// credits for long-glitch failures.
				return pipeline.Event{
					Kind:        pipeline.EventPCCorrupt,
					DataResidue: true,
					DataValue:   uint32(splitmix(hm ^ 0x77)),
				}, true
			}
			return pipeline.Event{
				Kind:     pipeline.EventFetchCorrupt,
				InstMask: m.instMask(hm),
				InstSet:  u01(splitmix(hm^0xA)) < 0.08, // rare 0→1 flips
			}, true
		}
	}

	// Mixed character, or the deviating 20% of focused points.
	switch d := u01(splitmix(h ^ 0x31)); {
	case d < 0.35:
		return pipeline.Event{
			Kind:     pipeline.EventExecCorrupt,
			InstMask: m.instMask(hm),
			InstSet:  u01(splitmix(hm^0xB)) < 0.08,
		}, true
	case d < 0.65:
		return pipeline.Event{
			Kind:     pipeline.EventFetchCorrupt,
			InstMask: m.instMask(hm),
			InstSet:  u01(splitmix(hm^0xA)) < 0.08,
		}, true
	case d < 0.82:
		return pipeline.Event{
			Kind:     pipeline.EventDataCorrupt,
			DataMask: m.dataMask(hm),
			DataSet:  u01(splitmix(hm^0xC)) < 0.10,
		}, true
	case d < 0.93:
		if sustained >= 3 {
			// A sustained storm does not produce clean bubbles; the
			// pipeline control state itself is corrupted.
			return pipeline.Event{
				Kind:        pipeline.EventPCCorrupt,
				DataResidue: true,
				DataValue:   uint32(splitmix(hm ^ 0x88)),
			}, true
		}
		return pipeline.Event{Kind: pipeline.EventSkip}, true
	default:
		return pipeline.Event{
			Kind:     pipeline.EventRegCorrupt,
			Reg:      isa.Reg(hm>>40) & 7,
			DataMask: m.dataMask(splitmix(hm ^ 0xD)),
			DataSet:  u01(splitmix(hm^0xE)) < 0.10,
		}, true
	}
}

// instMask picks 1-6 instruction bits with a geometric bias toward few.
func (m *Model) instMask(h uint64) uint16 {
	n := 1
	for d := u01(splitmix(h ^ 0x1111)); n < 6 && d < math.Pow(0.45, float64(n)); n++ {
	}
	var mask uint16
	x := h
	for i := 0; i < n; i++ {
		x = splitmix(x)
		mask |= 1 << (x % 16)
	}
	return mask
}

// residueValue picks what a starved bus captures. Real buses float to a
// small set of characteristic values — alternating-bit patterns, all-ones,
// and echoes of recent traffic such as the stack pointer or the peripheral
// address just written (the paper's Table I observes exactly this residue:
// 0x55, 0x68, 0xFF, 0x20003FE8, mixes of 0x48000028).
func residueValue(h uint64) uint32 {
	palette := [...]uint32{
		0x55, 0x55, 0x55, // dominant alternating-bit residue
		0xFF, 0xFF,
		0x68, 0x21, 0x08,
		0x20003FE8,              // stack pointer echo
		0x48000028,              // trigger GPIO address echo
		0x48000028 ^ 0x6000432F, // partially decayed address mix
	}
	v := palette[h%uint64(len(palette))]
	// Occasionally a couple of residue bits have already decayed.
	if h>>32&0xf == 0 {
		v &^= 1 << (h >> 36 % 32)
	}
	return v
}

// dataMask corrupts a data word: usually a few bits, sometimes a full bus
// collapse (the load "fails" and the captured value is forced toward zero
// — the mechanism the paper hypothesizes behind long-glitch successes
// against while(a)).
func (m *Model) dataMask(h uint64) uint32 {
	if u01(splitmix(h^0x2222)) < 0.28 {
		return 0xFFFFFFFF // bus collapse
	}
	n := 1 + int(splitmix(h^0x3333)%4)
	var mask uint32
	x := h
	for i := 0; i < n; i++ {
		x = splitmix(x)
		mask |= 1 << (x % 32)
	}
	return mask
}

// Plan builds a pipeline.Injector that delivers this model's events on the
// given set of relative cycles (the same plan re-arms for every trigger
// window, as the ChipWhisperer does).
func (m *Model) Plan(p Params, cycles ...int) pipeline.Injector {
	if len(cycles) == 1 {
		only := cycles[0]
		return func(rel, window int) (pipeline.Event, bool) {
			if rel != only {
				return pipeline.Event{}, false
			}
			return m.EventAt(p, rel, window)
		}
	}
	set := make(map[int]bool, len(cycles))
	for _, c := range cycles {
		set[c] = true
	}
	return func(rel, window int) (pipeline.Event, bool) {
		if !set[rel] {
			return pipeline.Event{}, false
		}
		return m.EventAt(p, rel, window)
	}
}

// RangePlan delivers events on every relative cycle in [from, to) — the
// long-glitch attack of Table III and the windowed attack of Table VI.
// Cycles deep inside the range see the sustained-glitch physics.
func (m *Model) RangePlan(p Params, from, to int) pipeline.Injector {
	return func(rel, window int) (pipeline.Event, bool) {
		if rel < from || rel >= to {
			return pipeline.Event{}, false
		}
		return m.EventInContext(p, rel, window, rel-from)
	}
}

// Grid iterates the full (width, offset) parameter grid in deterministic
// order, calling fn for each point.
func Grid(fn func(p Params)) {
	GridBand(-ParamRange, ParamRange+1, func(p Params) bool {
		fn(p)
		return true
	})
}

// GridUntil iterates the grid in Grid's deterministic order but stops as
// soon as fn returns false — the cancel signal searches use so a found
// parameter point does not cost the rest of the grid. It reports whether
// the full grid was visited.
func GridUntil(fn func(p Params) bool) bool {
	return GridBand(-ParamRange, ParamRange+1, fn)
}

// GridBand iterates the width rows lo <= width < hi of the grid (every
// offset of each row, in Grid's order within the band) until fn returns
// false. Contiguous bands are the unit sharded scans partition the grid
// by: each worker owns whole rows, so no parameter point is ever visited
// twice and band results merge by simple addition. It reports whether the
// whole band was visited.
func GridBand(lo, hi int, fn func(p Params) bool) bool {
	for w := lo; w < hi; w++ {
		for o := -ParamRange; o <= ParamRange; o++ {
			if !fn(Params{Width: w, Offset: o}) {
				return false
			}
		}
	}
	return true
}

// WidthBands partitions the grid's 2*ParamRange+1 width rows into at most
// n contiguous, near-equal [lo, hi) bands covering the grid exactly.
func WidthBands(n int) [][2]int {
	rows := 2*ParamRange + 1
	if n > rows {
		n = rows
	}
	if n < 1 {
		n = 1
	}
	bands := make([][2]int, 0, n)
	lo := -ParamRange
	for i := 0; i < n; i++ {
		// Distribute the remainder one row at a time so band sizes differ
		// by at most one.
		size := rows / n
		if i < rows%n {
			size++
		}
		bands = append(bands, [2]int{lo, lo + size})
		lo += size
	}
	return bands
}
