package isa

// Is32Bit reports whether hw is the first halfword of a 32-bit Thumb
// instruction (top five bits 0b11101, 0b11110 or 0b11111).
func Is32Bit(hw uint16) bool {
	return hw>>11 >= 0b11101
}

// Decode decodes a Thumb instruction. hw is the first (or only) halfword;
// hw2 is the second halfword, used only when Is32Bit(hw) is true. Instructions
// the architecture leaves undefined decode to an Inst with Op == OpInvalid
// (the emulator turns those into invalid-instruction faults); Decode itself
// never fails so that mutation campaigns can probe the whole encoding space.
//
// 16-bit encodings resolve through the precomputed total decode table (see
// decode_table.go): one bounds-check-free array load instead of the switch
// tree, which is what makes a mutated execution's decode cost ~free.
func Decode(hw, hw2 uint16) Inst {
	if Is32Bit(hw) {
		return decode32(hw, hw2)
	}
	return decodeTable[hw]
}

func decode16(hw uint16) Inst {
	switch hw >> 13 {
	case 0b000:
		op := (hw >> 11) & 3
		if op != 3 {
			// Shift by immediate. LSL #0 is MOVS rd, rm; keep it as
			// LSL so that 0x0000 naturally decodes to "movs r0, r0"
			// semantics, as the paper notes.
			ops := [3]Op{OpLSLImm, OpLSRImm, OpASRImm}
			return Inst{
				Op:  ops[op],
				Rd:  Reg(hw & 7),
				Rm:  Reg((hw >> 3) & 7),
				Imm: uint32((hw >> 6) & 31),
			}
		}
		// Add/subtract register or 3-bit immediate.
		sub := hw&(1<<9) != 0
		imm := hw&(1<<10) != 0
		in := Inst{
			Rd: Reg(hw & 7),
			Rn: Reg((hw >> 3) & 7),
		}
		switch {
		case !imm && !sub:
			in.Op, in.Rm = OpADDReg, Reg((hw>>6)&7)
		case !imm && sub:
			in.Op, in.Rm = OpSUBReg, Reg((hw>>6)&7)
		case imm && !sub:
			in.Op, in.Imm = OpADDImm3, uint32((hw>>6)&7)
		default:
			in.Op, in.Imm = OpSUBImm3, uint32((hw>>6)&7)
		}
		return in
	case 0b001:
		r := Reg((hw >> 8) & 7)
		imm := uint32(hw & 0xff)
		switch (hw >> 11) & 3 {
		case 0:
			return Inst{Op: OpMOVImm, Rd: r, Imm: imm}
		case 1:
			return Inst{Op: OpCMPImm, Rn: r, Imm: imm}
		case 2:
			return Inst{Op: OpADDImm8, Rd: r, Imm: imm}
		default:
			return Inst{Op: OpSUBImm8, Rd: r, Imm: imm}
		}
	case 0b010:
		return decode010(hw)
	case 0b011:
		// STR/LDR and STRB/LDRB with 5-bit immediate offset.
		rd := Reg(hw & 7)
		rn := Reg((hw >> 3) & 7)
		imm := uint32((hw >> 6) & 31)
		byteOp := hw&(1<<12) != 0
		load := hw&(1<<11) != 0
		switch {
		case !byteOp && !load:
			return Inst{Op: OpSTRImm, Rd: rd, Rn: rn, Imm: imm * 4}
		case !byteOp && load:
			return Inst{Op: OpLDRImm, Rd: rd, Rn: rn, Imm: imm * 4}
		case byteOp && !load:
			return Inst{Op: OpSTRBImm, Rd: rd, Rn: rn, Imm: imm}
		default:
			return Inst{Op: OpLDRBImm, Rd: rd, Rn: rn, Imm: imm}
		}
	case 0b100:
		rd := Reg(hw & 7)
		if hw&(1<<12) == 0 {
			// STRH/LDRH immediate.
			rn := Reg((hw >> 3) & 7)
			imm := uint32((hw>>6)&31) * 2
			if hw&(1<<11) == 0 {
				return Inst{Op: OpSTRHImm, Rd: rd, Rn: rn, Imm: imm}
			}
			return Inst{Op: OpLDRHImm, Rd: rd, Rn: rn, Imm: imm}
		}
		// SP-relative load/store.
		rd = Reg((hw >> 8) & 7)
		imm := uint32(hw&0xff) * 4
		if hw&(1<<11) == 0 {
			return Inst{Op: OpSTRSP, Rd: rd, Imm: imm}
		}
		return Inst{Op: OpLDRSP, Rd: rd, Imm: imm}
	case 0b101:
		if hw&(1<<12) == 0 {
			// ADR / ADD rd, sp.
			rd := Reg((hw >> 8) & 7)
			imm := uint32(hw&0xff) * 4
			if hw&(1<<11) == 0 {
				return Inst{Op: OpADR, Rd: rd, Imm: imm}
			}
			return Inst{Op: OpADDSP, Rd: rd, Imm: imm}
		}
		return decodeMisc(hw)
	case 0b110:
		if hw&(1<<12) == 0 {
			// STM/LDM.
			in := Inst{Rn: Reg((hw >> 8) & 7), Regs: hw & 0xff}
			if hw&(1<<11) == 0 {
				in.Op = OpSTM
			} else {
				in.Op = OpLDM
			}
			if in.Regs == 0 {
				in.Op = OpInvalid // empty register list is unpredictable
			}
			return in
		}
		// Conditional branch, UDF, SVC.
		cond := (hw >> 8) & 0xf
		imm := uint32(hw & 0xff)
		switch cond {
		case 14:
			return Inst{Op: OpUDF, Imm: imm}
		case 15:
			return Inst{Op: OpSVC, Imm: imm}
		default:
			return Inst{Op: OpBCond, Cond: Cond(cond), Imm: imm}
		}
	default: // 0b111
		if hw>>11 == 0b11100 {
			return Inst{Op: OpB, Imm: uint32(hw & 0x7ff)}
		}
		// First halfword of a 32-bit instruction; handled by Decode.
		return Inst{Op: OpInvalid}
	}
}

// decode010 handles the 0b010 prefix: data-processing register,
// hi-register operations, BX/BLX, PC-literal loads, and register-offset
// load/stores.
func decode010(hw uint16) Inst {
	switch {
	case hw>>10 == 0b010000:
		rd := Reg(hw & 7)
		rm := Reg((hw >> 3) & 7)
		ops := [16]Op{
			OpAND, OpEOR, OpLSLReg, OpLSRReg, OpASRReg, OpADC, OpSBC,
			OpRORReg, OpTST, OpRSB, OpCMPReg, OpCMN, OpORR, OpMUL,
			OpBIC, OpMVN,
		}
		op := ops[(hw>>6)&0xf]
		in := Inst{Op: op, Rd: rd, Rm: rm}
		switch op {
		case OpTST, OpCMPReg, OpCMN:
			in.Rn, in.Rd = rd, 0
		case OpRSB:
			in.Rn = rm
			in.Rm = 0
		}
		return in
	case hw>>10 == 0b010001:
		op := (hw >> 8) & 3
		rm := Reg((hw >> 3) & 0xf)
		rdn := Reg(hw&7) | Reg((hw>>7)&1)<<3
		switch op {
		case 0:
			return Inst{Op: OpADDHi, Rd: rdn, Rn: rdn, Rm: rm}
		case 1:
			if rdn < 8 && rm < 8 {
				return Inst{Op: OpInvalid} // unpredictable in v6-M
			}
			return Inst{Op: OpCMPHi, Rn: rdn, Rm: rm}
		case 2:
			return Inst{Op: OpMOVHi, Rd: rdn, Rm: rm}
		default:
			if hw&7 != 0 {
				return Inst{Op: OpInvalid}
			}
			if hw&(1<<7) == 0 {
				return Inst{Op: OpBX, Rm: rm}
			}
			return Inst{Op: OpBLX, Rm: rm}
		}
	case hw>>11 == 0b01001:
		return Inst{
			Op:  OpLDRLit,
			Rd:  Reg((hw >> 8) & 7),
			Imm: uint32(hw&0xff) * 4,
		}
	default:
		// Register-offset load/store, opcode in bits [11:9].
		ops := [8]Op{
			OpSTRReg, OpSTRHReg, OpSTRBReg, OpLDRSB,
			OpLDRReg, OpLDRHReg, OpLDRBReg, OpLDRSH,
		}
		return Inst{
			Op: ops[(hw>>9)&7],
			Rd: Reg(hw & 7),
			Rn: Reg((hw >> 3) & 7),
			Rm: Reg((hw >> 6) & 7),
		}
	}
}

// decodeMisc handles the 0b1011 miscellaneous space.
func decodeMisc(hw uint16) Inst {
	switch {
	case hw>>8 == 0b10110000:
		imm := uint32(hw&0x7f) * 4
		if hw&(1<<7) == 0 {
			return Inst{Op: OpADDSPImm, Imm: imm}
		}
		return Inst{Op: OpSUBSPImm, Imm: imm}
	case hw>>8 == 0b10110010:
		rd := Reg(hw & 7)
		rm := Reg((hw >> 3) & 7)
		ops := [4]Op{OpSXTH, OpSXTB, OpUXTH, OpUXTB}
		return Inst{Op: ops[(hw>>6)&3], Rd: rd, Rm: rm}
	case hw>>9 == 0b1011010:
		regs := hw & 0xff
		if hw&(1<<8) != 0 {
			regs |= 1 << 8 // M bit: push LR
		}
		if regs == 0 {
			return Inst{Op: OpInvalid}
		}
		return Inst{Op: OpPUSH, Regs: regs}
	case hw>>9 == 0b1011110:
		regs := hw & 0xff
		if hw&(1<<8) != 0 {
			regs |= 1 << 8 // P bit: pop PC
		}
		if regs == 0 {
			return Inst{Op: OpInvalid}
		}
		return Inst{Op: OpPOP, Regs: regs}
	case hw>>5 == 0b10110110011: // CPS
		return Inst{Op: OpCPS}
	case hw>>6 == 0b1011101000:
		return Inst{Op: OpREV, Rd: Reg(hw & 7), Rm: Reg((hw >> 3) & 7)}
	case hw>>6 == 0b1011101001:
		return Inst{Op: OpREV16, Rd: Reg(hw & 7), Rm: Reg((hw >> 3) & 7)}
	case hw>>6 == 0b1011101011:
		return Inst{Op: OpREVSH, Rd: Reg(hw & 7), Rm: Reg((hw >> 3) & 7)}
	case hw>>8 == 0b10111110:
		return Inst{Op: OpBKPT, Imm: uint32(hw & 0xff)}
	case hw>>8 == 0b10111111:
		if hw&0xf != 0 {
			return Inst{Op: OpInvalid} // IT is ARMv7-only
		}
		if (hw>>4)&0xf > 4 {
			return Inst{Op: OpInvalid} // beyond SEV: unallocated hint
		}
		return Inst{Op: OpNOP}
	default:
		return Inst{Op: OpInvalid}
	}
}

// decode32 decodes the ARMv6-M 32-bit space. Only BL is given semantics;
// the rest of the space (barriers, MRS/MSR) is not reachable from the
// campaigns and decodes as invalid.
func decode32(hw, hw2 uint16) Inst {
	raw := uint32(hw)<<16 | uint32(hw2)
	if hw>>11 == 0b11110 && hw2>>14 == 0b11 && hw2&(1<<12) != 0 {
		// BL: imm32 = SignExtend(S:I1:I2:imm10:imm11:'0', 25).
		s := uint32(hw>>10) & 1
		j1 := uint32(hw2>>13) & 1
		j2 := uint32(hw2>>11) & 1
		i1 := ^(j1 ^ s) & 1
		i2 := ^(j2 ^ s) & 1
		imm10 := uint32(hw & 0x3ff)
		imm11 := uint32(hw2 & 0x7ff)
		imm := s<<24 | i1<<23 | i2<<22 | imm10<<12 | imm11<<1
		imm = uint32(int32(imm<<7) >> 7) // sign-extend from bit 24
		return Inst{Op: OpBL, Imm: imm, Size: 4, Raw: raw}
	}
	return Inst{Op: OpInvalid, Size: 4, Raw: raw}
}
