// Package isa implements the ARMv6-M Thumb (16-bit) instruction set used by
// the glitching campaigns: instruction encodings, a decoder, an encoder, a
// two-pass assembler, and a disassembler.
//
// The subset is the complete Thumb-16 encoding space of ARMv6-M (plus the
// 32-bit BL pair), which is what the paper's Figure 2 campaign exhaustively
// perturbs. Fidelity to the documented encodings matters: the campaign's
// results are a property of the encoding itself, so every 16-bit pattern must
// decode (or fail to decode) exactly as the architecture manual specifies.
package isa

import "fmt"

// Reg is an ARM core register number (R0..R15).
type Reg uint8

// Core register names. SP, LR and PC are architectural aliases.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	SP // R13
	LR // R14
	PC // R15
)

// String returns the canonical assembler name of the register.
func (r Reg) String() string {
	switch r {
	case SP:
		return "sp"
	case LR:
		return "lr"
	case PC:
		return "pc"
	default:
		return fmt.Sprintf("r%d", uint8(r))
	}
}

// Flags holds the APSR condition flags.
type Flags struct {
	N bool // negative
	Z bool // zero
	C bool // carry
	V bool // overflow
}

// String renders the flags in NZCV order, e.g. "nZCv".
func (f Flags) String() string {
	b := []byte{'n', 'z', 'c', 'v'}
	if f.N {
		b[0] = 'N'
	}
	if f.Z {
		b[1] = 'Z'
	}
	if f.C {
		b[2] = 'C'
	}
	if f.V {
		b[3] = 'V'
	}
	return string(b)
}

// Cond is an ARM condition code as encoded in conditional branches.
type Cond uint8

// Condition codes in encoding order. AL is the always condition used by
// unconditional instructions and is not encodable in a conditional branch
// (encoding 14 is UDF, 15 is SVC).
const (
	EQ Cond = iota // equal (Z)
	NE             // not equal (!Z)
	CS             // carry set / unsigned higher or same (C)
	CC             // carry clear / unsigned lower (!C)
	MI             // minus / negative (N)
	PL             // plus / positive or zero (!N)
	VS             // overflow (V)
	VC             // no overflow (!V)
	HI             // unsigned higher (C && !Z)
	LS             // unsigned lower or same (!C || Z)
	GE             // signed greater or equal (N == V)
	LT             // signed less (N != V)
	GT             // signed greater (!Z && N == V)
	LE             // signed less or equal (Z || N != V)
	AL             // always
)

var condNames = [...]string{
	"eq", "ne", "cs", "cc", "mi", "pl", "vs", "vc",
	"hi", "ls", "ge", "lt", "gt", "le", "al",
}

// String returns the condition mnemonic suffix.
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond%d", uint8(c))
}

// Holds reports whether the condition passes for the given flags.
func (c Cond) Holds(f Flags) bool {
	switch c {
	case EQ:
		return f.Z
	case NE:
		return !f.Z
	case CS:
		return f.C
	case CC:
		return !f.C
	case MI:
		return f.N
	case PL:
		return !f.N
	case VS:
		return f.V
	case VC:
		return !f.V
	case HI:
		return f.C && !f.Z
	case LS:
		return !f.C || f.Z
	case GE:
		return f.N == f.V
	case LT:
		return f.N != f.V
	case GT:
		return !f.Z && f.N == f.V
	case LE:
		return f.Z || f.N != f.V
	default:
		return true
	}
}

// BranchConds lists the 14 encodable conditional-branch conditions, in the
// order the paper's Figure 2 enumerates them.
func BranchConds() []Cond {
	return []Cond{EQ, NE, CS, CC, MI, PL, VS, VC, HI, LS, GE, LT, GT, LE}
}
