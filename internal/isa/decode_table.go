package isa

// decodeTable is the precomputed total decode of the 16-bit Thumb encoding
// space: decodeTable[hw] == decode16(hw) with Size/Raw filled in, for every
// possible halfword. Thumb-16 is a 2^16 space, so total precomputation is
// ~2 MiB once per process and turns the mutation campaigns' hottest
// operation — decoding an arbitrary perturbed halfword — into a single
// array load. The index is a uint16, so the load compiles without a bounds
// check. 32-bit prefixes (Is32Bit) never reach the table: Decode routes
// them to the functional decode32 path, which needs the second halfword.
//
// decode16 stays as the generative definition; the table is verified
// against it field for field over the whole space by the difftest oracle
// in decode_table_test.go.
var decodeTable [1 << 16]Inst

func init() {
	for hw := 0; hw < 1<<16; hw++ {
		in := decode16(uint16(hw))
		in.Size = 2
		in.Raw = uint32(hw)
		decodeTable[hw] = in
	}
}
