package isa

import "fmt"

// EncodeError reports an instruction that cannot be encoded, typically
// because an operand is out of range for the Thumb-16 encoding.
type EncodeError struct {
	Inst   Inst
	Reason string
}

func (e *EncodeError) Error() string {
	return fmt.Sprintf("isa: cannot encode %s: %s", e.Inst.Op, e.Reason)
}

func imm5ok(v uint32) bool      { return v < 32 }
func imm8ok(v uint32) bool      { return v < 256 }
func fits(v, limit uint32) bool { return v < limit }

func scaled(v uint32, s uint32) (uint16, bool) {
	if v%s != 0 {
		return 0, false
	}
	return uint16(v / s), true
}

// Encode produces the 16-bit encoding of a Thumb-16 instruction. BL is not
// encodable here (it is 32-bit); use EncodeBL.
func Encode(in Inst) (uint16, error) {
	bad := func(reason string) (uint16, error) {
		return 0, &EncodeError{Inst: in, Reason: reason}
	}
	reg3 := func(r Reg) uint16 { return uint16(r) & 7 }

	switch in.Op {
	case OpLSLImm, OpLSRImm, OpASRImm:
		if in.Rd >= 8 || in.Rm >= 8 || !imm5ok(in.Imm) {
			return bad("operands out of range")
		}
		op := map[Op]uint16{OpLSLImm: 0, OpLSRImm: 1, OpASRImm: 2}[in.Op]
		return op<<11 | uint16(in.Imm)<<6 | reg3(in.Rm)<<3 | reg3(in.Rd), nil
	case OpADDReg, OpSUBReg:
		if in.Rd >= 8 || in.Rn >= 8 || in.Rm >= 8 {
			return bad("registers must be r0-r7")
		}
		base := uint16(0b0001100) << 9
		if in.Op == OpSUBReg {
			base = 0b0001101 << 9
		}
		return base | reg3(in.Rm)<<6 | reg3(in.Rn)<<3 | reg3(in.Rd), nil
	case OpADDImm3, OpSUBImm3:
		if in.Rd >= 8 || in.Rn >= 8 || !fits(in.Imm, 8) {
			return bad("operands out of range")
		}
		base := uint16(0b0001110) << 9
		if in.Op == OpSUBImm3 {
			base = 0b0001111 << 9
		}
		return base | uint16(in.Imm)<<6 | reg3(in.Rn)<<3 | reg3(in.Rd), nil
	case OpMOVImm, OpADDImm8, OpSUBImm8:
		if in.Rd >= 8 || !imm8ok(in.Imm) {
			return bad("operands out of range")
		}
		op := map[Op]uint16{OpMOVImm: 0, OpADDImm8: 2, OpSUBImm8: 3}[in.Op]
		return 0b001<<13 | op<<11 | reg3(in.Rd)<<8 | uint16(in.Imm), nil
	case OpCMPImm:
		if in.Rn >= 8 || !imm8ok(in.Imm) {
			return bad("operands out of range")
		}
		return 0b001<<13 | 1<<11 | reg3(in.Rn)<<8 | uint16(in.Imm), nil
	case OpAND, OpEOR, OpLSLReg, OpLSRReg, OpASRReg, OpADC, OpSBC, OpRORReg,
		OpTST, OpRSB, OpCMPReg, OpCMN, OpORR, OpMUL, OpBIC, OpMVN:
		codes := map[Op]uint16{
			OpAND: 0, OpEOR: 1, OpLSLReg: 2, OpLSRReg: 3, OpASRReg: 4,
			OpADC: 5, OpSBC: 6, OpRORReg: 7, OpTST: 8, OpRSB: 9,
			OpCMPReg: 10, OpCMN: 11, OpORR: 12, OpMUL: 13, OpBIC: 14,
			OpMVN: 15,
		}
		rd, rm := in.Rd, in.Rm
		switch in.Op {
		case OpTST, OpCMPReg, OpCMN:
			rd = in.Rn
		case OpRSB:
			rm = in.Rn
		}
		if rd >= 8 || rm >= 8 {
			return bad("registers must be r0-r7")
		}
		return 0b010000<<10 | codes[in.Op]<<6 | reg3(rm)<<3 | reg3(rd), nil
	case OpADDHi, OpMOVHi:
		op := uint16(0)
		if in.Op == OpMOVHi {
			op = 2
		}
		d := uint16(in.Rd>>3) & 1
		return 0b010001<<10 | op<<8 | d<<7 | uint16(in.Rm&0xf)<<3 |
			reg3(in.Rd), nil
	case OpCMPHi:
		if in.Rn < 8 && in.Rm < 8 {
			return bad("cmp hi requires a high register")
		}
		d := uint16(in.Rn>>3) & 1
		return 0b010001<<10 | 1<<8 | d<<7 | uint16(in.Rm&0xf)<<3 |
			reg3(in.Rn), nil
	case OpBX:
		return 0b010001<<10 | 3<<8 | uint16(in.Rm&0xf)<<3, nil
	case OpBLX:
		return 0b010001<<10 | 3<<8 | 1<<7 | uint16(in.Rm&0xf)<<3, nil
	case OpLDRLit:
		v, ok := scaled(in.Imm, 4)
		if in.Rd >= 8 || !ok || v > 255 {
			return bad("operands out of range")
		}
		return 0b01001<<11 | reg3(in.Rd)<<8 | v, nil
	case OpSTRReg, OpSTRHReg, OpSTRBReg, OpLDRSB, OpLDRReg, OpLDRHReg,
		OpLDRBReg, OpLDRSH:
		if in.Rd >= 8 || in.Rn >= 8 || in.Rm >= 8 {
			return bad("registers must be r0-r7")
		}
		codes := map[Op]uint16{
			OpSTRReg: 0, OpSTRHReg: 1, OpSTRBReg: 2, OpLDRSB: 3,
			OpLDRReg: 4, OpLDRHReg: 5, OpLDRBReg: 6, OpLDRSH: 7,
		}
		return 0b0101<<12 | codes[in.Op]<<9 | reg3(in.Rm)<<6 |
			reg3(in.Rn)<<3 | reg3(in.Rd), nil
	case OpSTRImm, OpLDRImm:
		v, ok := scaled(in.Imm, 4)
		if in.Rd >= 8 || in.Rn >= 8 || !ok || !imm5ok(uint32(v)) {
			return bad("operands out of range")
		}
		l := uint16(0)
		if in.Op == OpLDRImm {
			l = 1
		}
		return 0b0110<<12 | l<<11 | v<<6 | reg3(in.Rn)<<3 | reg3(in.Rd), nil
	case OpSTRBImm, OpLDRBImm:
		if in.Rd >= 8 || in.Rn >= 8 || !imm5ok(in.Imm) {
			return bad("operands out of range")
		}
		l := uint16(0)
		if in.Op == OpLDRBImm {
			l = 1
		}
		return 0b0111<<12 | l<<11 | uint16(in.Imm)<<6 | reg3(in.Rn)<<3 |
			reg3(in.Rd), nil
	case OpSTRHImm, OpLDRHImm:
		v, ok := scaled(in.Imm, 2)
		if in.Rd >= 8 || in.Rn >= 8 || !ok || !imm5ok(uint32(v)) {
			return bad("operands out of range")
		}
		l := uint16(0)
		if in.Op == OpLDRHImm {
			l = 1
		}
		return 0b1000<<12 | l<<11 | v<<6 | reg3(in.Rn)<<3 | reg3(in.Rd), nil
	case OpSTRSP, OpLDRSP:
		v, ok := scaled(in.Imm, 4)
		if in.Rd >= 8 || !ok || v > 255 {
			return bad("operands out of range")
		}
		l := uint16(0)
		if in.Op == OpLDRSP {
			l = 1
		}
		return 0b1001<<12 | l<<11 | reg3(in.Rd)<<8 | v, nil
	case OpADR, OpADDSP:
		v, ok := scaled(in.Imm, 4)
		if in.Rd >= 8 || !ok || v > 255 {
			return bad("operands out of range")
		}
		s := uint16(0)
		if in.Op == OpADDSP {
			s = 1
		}
		return 0b1010<<12 | s<<11 | reg3(in.Rd)<<8 | v, nil
	case OpADDSPImm, OpSUBSPImm:
		v, ok := scaled(in.Imm, 4)
		if !ok || v > 127 {
			return bad("operands out of range")
		}
		s := uint16(0)
		if in.Op == OpSUBSPImm {
			s = 1
		}
		return 0b10110000<<8 | s<<7 | v, nil
	case OpSXTH, OpSXTB, OpUXTH, OpUXTB:
		if in.Rd >= 8 || in.Rm >= 8 {
			return bad("registers must be r0-r7")
		}
		codes := map[Op]uint16{OpSXTH: 0, OpSXTB: 1, OpUXTH: 2, OpUXTB: 3}
		return 0b10110010<<8 | codes[in.Op]<<6 | reg3(in.Rm)<<3 |
			reg3(in.Rd), nil
	case OpREV, OpREV16, OpREVSH:
		if in.Rd >= 8 || in.Rm >= 8 {
			return bad("registers must be r0-r7")
		}
		codes := map[Op]uint16{OpREV: 0b00, OpREV16: 0b01, OpREVSH: 0b11}
		return 0b1011101000<<6 | codes[in.Op]<<6 | reg3(in.Rm)<<3 |
			reg3(in.Rd), nil
	case OpPUSH:
		if in.Regs == 0 || in.Regs>>9 != 0 {
			return bad("register list out of range")
		}
		return 0b1011010<<9 | (in.Regs>>8)<<8 | in.Regs&0xff, nil
	case OpPOP:
		if in.Regs == 0 || in.Regs>>9 != 0 {
			return bad("register list out of range")
		}
		return 0b1011110<<9 | (in.Regs>>8)<<8 | in.Regs&0xff, nil
	case OpSTM, OpLDM:
		if in.Rn >= 8 || in.Regs == 0 || in.Regs>>8 != 0 {
			return bad("operands out of range")
		}
		l := uint16(0)
		if in.Op == OpLDM {
			l = 1
		}
		return 0b1100<<12 | l<<11 | reg3(in.Rn)<<8 | in.Regs, nil
	case OpBKPT:
		if !imm8ok(in.Imm) {
			return bad("imm out of range")
		}
		return 0b10111110<<8 | uint16(in.Imm), nil
	case OpNOP:
		return 0xbf00, nil
	case OpBCond:
		if in.Cond >= AL || !imm8ok(in.Imm) {
			return bad("operands out of range")
		}
		return 0b1101<<12 | uint16(in.Cond)<<8 | uint16(in.Imm), nil
	case OpUDF:
		if !imm8ok(in.Imm) {
			return bad("imm out of range")
		}
		return 0b11011110<<8 | uint16(in.Imm), nil
	case OpSVC:
		if !imm8ok(in.Imm) {
			return bad("imm out of range")
		}
		return 0b11011111<<8 | uint16(in.Imm), nil
	case OpB:
		if in.Imm>>11 != 0 {
			return bad("offset out of range")
		}
		return 0b11100<<11 | uint16(in.Imm), nil
	default:
		return bad("not a 16-bit encodable operation")
	}
}

// EncodeBL encodes a 32-bit BL with the given byte offset (relative to the
// instruction's PC, i.e. address+4). The offset must be even and within
// +/-16 MiB.
func EncodeBL(offset int32) (uint16, uint16, error) {
	if offset%2 != 0 || offset < -(1<<24) || offset >= 1<<24 {
		return 0, 0, &EncodeError{
			Inst:   Inst{Op: OpBL, Imm: uint32(offset)},
			Reason: "offset out of range",
		}
	}
	v := uint32(offset)
	s := (v >> 24) & 1
	i1 := (v >> 23) & 1
	i2 := (v >> 22) & 1
	imm10 := (v >> 12) & 0x3ff
	imm11 := (v >> 1) & 0x7ff
	j1 := (^(i1 ^ s)) & 1
	j2 := (^(i2 ^ s)) & 1
	hw1 := uint16(0b11110<<11 | s<<10 | imm10)
	hw2 := uint16(0b11<<14 | j1<<13 | 1<<12 | j2<<11 | imm11)
	return hw1, hw2, nil
}
