package isa

import (
	"bytes"
	"testing"
)

func mustAssemble(t *testing.T, base uint32, src string) *Program {
	t.Helper()
	p, err := Assemble(base, src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func TestAssembleBasics(t *testing.T) {
	p := mustAssemble(t, 0, `
		movs r0, #0xaa   ; set marker
	loop:
		cmp r3, #0
		beq loop
		b done
	done:
		nop
	`)
	want := []byte{
		0xaa, 0x20, // movs r0, #0xaa
		0x00, 0x2b, // cmp r3, #0
		0xfd, 0xd0, // beq loop (-6 bytes => imm8 = -3 & 0xff)
		0xff, 0xe7, // b done (-2 => imm11 = 0x7ff)
		0x00, 0xbf, // nop
	}
	if !bytes.Equal(p.Code, want) {
		t.Fatalf("code = % x, want % x", p.Code, want)
	}
	if addr, ok := p.SymbolAddr("done"); !ok || addr != 8 {
		t.Errorf("done = %#x, %v; want 0x8", addr, ok)
	}
	if len(p.InstAddrs) != 5 {
		t.Errorf("InstAddrs = %v, want 5 entries", p.InstAddrs)
	}
}

func TestAssembleDisassembleAgree(t *testing.T) {
	// Every assembled instruction must decode back to the operation the
	// source named.
	src := []struct {
		line string
		op   Op
	}{
		{"movs r1, #5", OpMOVImm},
		{"movs r1, r2", OpLSLImm},
		{"mov r8, r1", OpMOVHi},
		{"cmp r1, #0xff", OpCMPImm},
		{"cmp r1, r2", OpCMPReg},
		{"cmp r8, r2", OpCMPHi},
		{"adds r1, r2, r3", OpADDReg},
		{"adds r1, r2, #4", OpADDImm3},
		{"adds r1, #200", OpADDImm8},
		{"subs r1, r2, r3", OpSUBReg},
		{"subs r1, #9", OpSUBImm8},
		{"add sp, #16", OpADDSPImm},
		{"sub sp, #16", OpSUBSPImm},
		{"add r1, sp, #8", OpADDSP},
		{"lsls r1, r2, #3", OpLSLImm},
		{"lsrs r1, r2, #3", OpLSRImm},
		{"asrs r1, r2, #3", OpASRImm},
		{"lsls r1, r2", OpLSLReg},
		{"ands r1, r2", OpAND},
		{"eors r1, r2", OpEOR},
		{"orrs r1, r2", OpORR},
		{"bics r1, r2", OpBIC},
		{"mvns r1, r2", OpMVN},
		{"muls r1, r2", OpMUL},
		{"adcs r1, r2", OpADC},
		{"sbcs r1, r2", OpSBC},
		{"rors r1, r2", OpRORReg},
		{"tst r1, r2", OpTST},
		{"cmn r1, r2", OpCMN},
		{"negs r1, r2", OpRSB},
		{"ldr r1, [r2, #4]", OpLDRImm},
		{"ldr r1, [r2, r3]", OpLDRReg},
		{"ldr r1, [sp, #4]", OpLDRSP},
		{"ldr r1, [pc, #8]", OpLDRLit},
		{"ldrb r1, [r2, #4]", OpLDRBImm},
		{"ldrh r1, [r2, #4]", OpLDRHImm},
		{"ldrsb r1, [r2, r3]", OpLDRSB},
		{"ldrsh r1, [r2, r3]", OpLDRSH},
		{"str r1, [r2, #4]", OpSTRImm},
		{"str r1, [sp, #4]", OpSTRSP},
		{"strb r1, [r2]", OpSTRBImm},
		{"strh r1, [r2, #2]", OpSTRHImm},
		{"push {r4, r5, lr}", OpPUSH},
		{"pop {r4, r5, pc}", OpPOP},
		{"stmia r0!, {r1, r2}", OpSTM},
		{"ldmia r0!, {r1, r2}", OpLDM},
		{"sxtb r1, r2", OpSXTB},
		{"uxth r1, r2", OpUXTH},
		{"rev r1, r2", OpREV},
		{"bx lr", OpBX},
		{"blx r3", OpBLX},
		{"bkpt 0", OpBKPT},
		{"svc 1", OpSVC},
		{"udf 0", OpUDF},
		{"nop", OpNOP},
	}
	for _, tt := range src {
		p := mustAssemble(t, 0, tt.line)
		if len(p.Code) != 2 {
			t.Fatalf("%q: %d bytes, want 2", tt.line, len(p.Code))
		}
		hw := uint16(p.Code[0]) | uint16(p.Code[1])<<8
		in := Decode(hw, 0)
		if in.Op != tt.op {
			t.Errorf("%q decoded to %v (%v), want %v", tt.line, in.Op, in, tt.op)
		}
	}
}

func TestAssembleLiteralPool(t *testing.T) {
	p := mustAssemble(t, 0x100, `
		ldr r2, =0xd3b9aec6
		nop
	loop:
		b loop
	`)
	// ldr(2) + nop(2) + b(2) + pad(2) + literal(4) = 12 bytes.
	if len(p.Code) != 12 {
		t.Fatalf("code length = %d, want 12: % x", len(p.Code), p.Code)
	}
	lit := uint32(p.Code[8]) | uint32(p.Code[9])<<8 |
		uint32(p.Code[10])<<16 | uint32(p.Code[11])<<24
	if lit != 0xd3b9aec6 {
		t.Errorf("literal = %#x, want 0xd3b9aec6", lit)
	}
	in := Decode(uint16(p.Code[0])|uint16(p.Code[1])<<8, 0)
	if in.Op != OpLDRLit {
		t.Fatalf("first inst = %v, want ldr literal", in)
	}
	// Effective address: align(0x100+4,4) + imm = 0x104 + 4 = 0x108.
	if got := ((uint32(0x100) + 4) &^ 3) + in.Imm; got != 0x108 {
		t.Errorf("literal address = %#x, want 0x108", got)
	}
}

func TestAssembleBL(t *testing.T) {
	p := mustAssemble(t, 0, `
		bl func
		nop
	func:
		bx lr
	`)
	hw1 := uint16(p.Code[0]) | uint16(p.Code[1])<<8
	hw2 := uint16(p.Code[2]) | uint16(p.Code[3])<<8
	in := Decode(hw1, hw2)
	if in.Op != OpBL {
		t.Fatalf("decoded %v, want bl", in)
	}
	if got := in.BranchTarget(0); got != 6 {
		t.Errorf("bl target = %#x, want 6", got)
	}
}

func TestAssembleWordDirective(t *testing.T) {
	p := mustAssemble(t, 0, `
	data:
		.word 0xdeadbeef, 42
		.hword 0x1234
		.byte 0xff
	`)
	want := []byte{0xef, 0xbe, 0xad, 0xde, 42, 0, 0, 0, 0x34, 0x12, 0xff}
	if !bytes.Equal(p.Code, want) {
		t.Fatalf("code = % x, want % x", p.Code, want)
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"bogus r0, r1",
		"movs r9, #1",      // high register with movs imm
		"adds r1, #999",    // imm8 overflow
		"beq nosuchlabel",  // undefined label
		"ldr r1, [r2, #5]", // unscaled word offset
		"push {}",
		"b",
	}
	for _, src := range bad {
		if _, err := Assemble(0, src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestAssembleConditionalRange(t *testing.T) {
	// 127 instructions forward is within range (254 bytes).
	src := "beq far\n"
	for i := 0; i < 126; i++ {
		src += "nop\n"
	}
	src += "far: nop\n"
	if _, err := Assemble(0, src); err != nil {
		t.Fatalf("in-range branch failed: %v", err)
	}
	// One more NOP pushes it out of range.
	src = "beq far\n"
	for i := 0; i < 129; i++ {
		src += "nop\n"
	}
	src += "far: nop\n"
	if _, err := Assemble(0, src); err == nil {
		t.Fatal("out-of-range branch assembled")
	}
}
