package isa

import "testing"

// vec is one hand-assembled probe of the decoder.
type vec struct {
	hw, hw2 uint16
	want    Op
}

// decodeGroups tables every Thumb-16 encoding group the decoder knows, with
// at least one accepted vector per group and, for every group that contains
// architecturally-undefined encodings, at least one rejected vector that
// must classify as OpInvalid. Groups whose encoding space is total (every
// bit pattern is a defined instruction) say so explicitly instead of
// carrying an impossible reject.
var decodeGroups = []struct {
	name    string
	total   bool // every encoding in the group is defined
	accepts []vec
	rejects []vec
}{
	{
		name:  "shift-imm",
		total: true,
		accepts: []vec{
			{hw: 0x0000, want: OpLSLImm}, // lsls r0, r0, #0 (movs r0, r0)
			{hw: 0x0800, want: OpLSRImm},
			{hw: 0x1000, want: OpASRImm},
		},
	},
	{
		name:  "addsub3",
		total: true,
		accepts: []vec{
			{hw: 0x1800, want: OpADDReg},
			{hw: 0x1A00, want: OpSUBReg},
			{hw: 0x1C00, want: OpADDImm3},
			{hw: 0x1E00, want: OpSUBImm3},
		},
	},
	{
		name:  "imm8",
		total: true,
		accepts: []vec{
			{hw: 0x2000, want: OpMOVImm},
			{hw: 0x2800, want: OpCMPImm},
			{hw: 0x3000, want: OpADDImm8},
			{hw: 0x3800, want: OpSUBImm8},
		},
	},
	{
		name:  "dp-register",
		total: true,
		accepts: []vec{
			{hw: 0x4000, want: OpAND},
			{hw: 0x4040, want: OpEOR},
			{hw: 0x4080, want: OpLSLReg},
			{hw: 0x40C0, want: OpLSRReg},
			{hw: 0x4100, want: OpASRReg},
			{hw: 0x4140, want: OpADC},
			{hw: 0x4180, want: OpSBC},
			{hw: 0x41C0, want: OpRORReg},
			{hw: 0x4200, want: OpTST},
			{hw: 0x4240, want: OpRSB},
			{hw: 0x4280, want: OpCMPReg},
			{hw: 0x42C0, want: OpCMN},
			{hw: 0x4300, want: OpORR},
			{hw: 0x4340, want: OpMUL},
			{hw: 0x4380, want: OpBIC},
			{hw: 0x43C0, want: OpMVN},
		},
	},
	{
		name: "hi-register",
		accepts: []vec{
			{hw: 0x4440, want: OpADDHi}, // add r0, r8
			{hw: 0x4540, want: OpCMPHi}, // cmp r0, r8
			{hw: 0x4600, want: OpMOVHi},
			{hw: 0x4700, want: OpBX},
			{hw: 0x4780, want: OpBLX},
		},
		rejects: []vec{
			{hw: 0x4500, want: OpInvalid}, // cmp with both registers low
			{hw: 0x4701, want: OpInvalid}, // bx with nonzero low bits
		},
	},
	{
		name:    "ldr-literal",
		total:   true,
		accepts: []vec{{hw: 0x4800, want: OpLDRLit}},
	},
	{
		name:  "mem-register",
		total: true,
		accepts: []vec{
			{hw: 0x5000, want: OpSTRReg},
			{hw: 0x5200, want: OpSTRHReg},
			{hw: 0x5400, want: OpSTRBReg},
			{hw: 0x5600, want: OpLDRSB},
			{hw: 0x5800, want: OpLDRReg},
			{hw: 0x5A00, want: OpLDRHReg},
			{hw: 0x5C00, want: OpLDRBReg},
			{hw: 0x5E00, want: OpLDRSH},
		},
	},
	{
		name:  "mem-imm5",
		total: true,
		accepts: []vec{
			{hw: 0x6000, want: OpSTRImm},
			{hw: 0x6800, want: OpLDRImm},
			{hw: 0x7000, want: OpSTRBImm},
			{hw: 0x7800, want: OpLDRBImm},
			{hw: 0x8000, want: OpSTRHImm},
			{hw: 0x8800, want: OpLDRHImm},
		},
	},
	{
		name:  "sp-relative",
		total: true,
		accepts: []vec{
			{hw: 0x9000, want: OpSTRSP},
			{hw: 0x9800, want: OpLDRSP},
		},
	},
	{
		name:  "adr-addsp",
		total: true,
		accepts: []vec{
			{hw: 0xA000, want: OpADR},
			{hw: 0xA800, want: OpADDSP},
		},
	},
	{
		name:  "misc-sp-adjust",
		total: true,
		accepts: []vec{
			{hw: 0xB000, want: OpADDSPImm},
			{hw: 0xB080, want: OpSUBSPImm},
		},
	},
	{
		name:  "misc-extend",
		total: true,
		accepts: []vec{
			{hw: 0xB200, want: OpSXTH},
			{hw: 0xB240, want: OpSXTB},
			{hw: 0xB280, want: OpUXTH},
			{hw: 0xB2C0, want: OpUXTB},
		},
	},
	{
		name: "misc-push-pop",
		accepts: []vec{
			{hw: 0xB401, want: OpPUSH}, // push {r0}
			{hw: 0xB500, want: OpPUSH}, // push {lr}
			{hw: 0xBC01, want: OpPOP},
			{hw: 0xBD00, want: OpPOP}, // pop {pc}
		},
		rejects: []vec{
			{hw: 0xB400, want: OpInvalid}, // empty register list
			{hw: 0xBC00, want: OpInvalid},
		},
	},
	{
		name:    "misc-cps",
		total:   true,
		accepts: []vec{{hw: 0xB662, want: OpCPS}},
	},
	{
		name:  "misc-rev",
		total: true,
		accepts: []vec{
			{hw: 0xBA00, want: OpREV},
			{hw: 0xBA40, want: OpREV16},
			{hw: 0xBAC0, want: OpREVSH},
		},
	},
	{
		name:    "misc-bkpt",
		total:   true,
		accepts: []vec{{hw: 0xBE00, want: OpBKPT}},
	},
	{
		name: "misc-hints",
		accepts: []vec{
			{hw: 0xBF00, want: OpNOP},
			{hw: 0xBF40, want: OpNOP}, // SEV executes as NOP
		},
		rejects: []vec{
			{hw: 0xBF01, want: OpInvalid}, // IT is ARMv7-only
			{hw: 0xBF50, want: OpInvalid}, // hint beyond SEV: unallocated
		},
	},
	{
		name:    "misc-unallocated",
		accepts: []vec{{hw: 0xB000, want: OpADDSPImm}}, // group is pure holes; neighbour accept
		rejects: []vec{
			{hw: 0xB100, want: OpInvalid},
			{hw: 0xB900, want: OpInvalid},
			{hw: 0xB680, want: OpInvalid},
		},
	},
	{
		name: "stm-ldm",
		accepts: []vec{
			{hw: 0xC001, want: OpSTM},
			{hw: 0xC801, want: OpLDM},
		},
		rejects: []vec{
			{hw: 0xC000, want: OpInvalid}, // empty register list
			{hw: 0xC800, want: OpInvalid},
		},
	},
	{
		name:  "cond-branch",
		total: true,
		accepts: []vec{
			{hw: 0xD000, want: OpBCond},
			{hw: 0xDD00, want: OpBCond},
			{hw: 0xDE00, want: OpUDF},
			{hw: 0xDF00, want: OpSVC},
		},
	},
	{
		name:    "uncond-branch",
		total:   true,
		accepts: []vec{{hw: 0xE000, want: OpB}},
	},
	{
		name:    "wide",
		accepts: []vec{{hw: 0xF000, hw2: 0xF800, want: OpBL}},
		rejects: []vec{
			{hw: 0xF000, hw2: 0x0000, want: OpInvalid}, // second halfword not BL-shaped
			{hw: 0xE800, hw2: 0x0000, want: OpInvalid}, // 0b11101 space: undefined in v6-M
			{hw: 0xF800, hw2: 0xF800, want: OpInvalid}, // 0b11111 space
		},
	},
}

// TestDecodeGroupCoverage drives every encoding group through at least one
// accepted and (where the group has holes) one rejected vector.
func TestDecodeGroupCoverage(t *testing.T) {
	for _, g := range decodeGroups {
		t.Run(g.name, func(t *testing.T) {
			if len(g.accepts) == 0 {
				t.Fatal("group has no accept vectors")
			}
			if !g.total && len(g.rejects) == 0 {
				t.Fatal("group is not total but has no reject vectors")
			}
			for _, v := range g.accepts {
				in := Decode(v.hw, v.hw2)
				if in.Op != v.want {
					t.Errorf("Decode(%#04x, %#04x).Op = %v, want %v", v.hw, v.hw2, in.Op, v.want)
				}
			}
			for _, v := range g.rejects {
				in := Decode(v.hw, v.hw2)
				if in.Op != OpInvalid {
					t.Errorf("Decode(%#04x, %#04x).Op = %v, want OpInvalid", v.hw, v.hw2, in.Op)
				}
			}
		})
	}
}

// TestDecodeOpReachability sweeps the entire 16-bit space plus the table's
// wide vectors and checks every operation in the instruction set is reached
// by some defined encoding — a new Op with no decode path, or a decode path
// the table misses, fails here.
func TestDecodeOpReachability(t *testing.T) {
	seen := map[Op]bool{}
	for hw := 0; hw <= 0xFFFF; hw++ {
		if Is32Bit(uint16(hw)) {
			continue
		}
		seen[Decode(uint16(hw), 0).Op] = true
	}
	for _, g := range decodeGroups {
		for _, v := range g.accepts {
			seen[Decode(v.hw, v.hw2).Op] = true
		}
	}
	for op := OpInvalid + 1; op <= OpBL; op++ {
		if !seen[op] {
			t.Errorf("op %v is not reachable from any decoded encoding", op)
		}
	}
}
