package isa

import (
	"fmt"
	"strings"
)

// memOperand is a parsed "[rn]", "[rn, #imm]" or "[rn, rm]" operand.
type memOperand struct {
	base   Reg
	index  Reg
	hasIdx bool
	imm    uint32
}

func parseMem(s string) (memOperand, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return memOperand{}, fmt.Errorf("bad memory operand %q", s)
	}
	parts := strings.Split(s[1:len(s)-1], ",")
	base, ok := parseReg(strings.TrimSpace(parts[0]))
	if !ok {
		return memOperand{}, fmt.Errorf("bad base register in %q", s)
	}
	m := memOperand{base: base}
	if len(parts) == 1 {
		return m, nil
	}
	if len(parts) != 2 {
		return memOperand{}, fmt.Errorf("bad memory operand %q", s)
	}
	second := strings.TrimSpace(parts[1])
	if r, ok := parseReg(second); ok {
		m.index, m.hasIdx = r, true
		return m, nil
	}
	imm, err := parseImmValue(second)
	if err != nil {
		return memOperand{}, err
	}
	m.imm = imm
	return m, nil
}

var condByName = func() map[string]Cond {
	m := make(map[string]Cond, 14)
	for _, c := range BranchConds() {
		m[c.String()] = c
	}
	m["hs"] = CS
	m["lo"] = CC
	return m
}()

// parseInst converts a mnemonic and operand strings into an instruction,
// possibly carrying an unresolved label reference.
func parseInst(mnem string, ops []string) (parsedInst, error) {
	arity := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%s expects %d operands, got %d", mnem, n, len(ops))
		}
		return nil
	}
	reg := func(i int) (Reg, error) {
		r, ok := parseReg(ops[i])
		if !ok {
			return 0, fmt.Errorf("bad register %q", ops[i])
		}
		return r, nil
	}
	imm := func(i int) (uint32, error) { return parseImmValue(ops[i]) }

	// Conditional branches: b + condition suffix.
	if strings.HasPrefix(mnem, "b") && len(mnem) == 3 {
		if cond, ok := condByName[mnem[1:]]; ok {
			if err := arity(1); err != nil {
				return parsedInst{}, err
			}
			return parsedInst{
				inst:   Inst{Op: OpBCond, Cond: cond},
				target: ops[0],
			}, nil
		}
	}

	switch mnem {
	case "nop":
		return parsedInst{inst: Inst{Op: OpNOP}}, nil
	case "b":
		if err := arity(1); err != nil {
			return parsedInst{}, err
		}
		return parsedInst{inst: Inst{Op: OpB}, target: ops[0]}, nil
	case "bl":
		if err := arity(1); err != nil {
			return parsedInst{}, err
		}
		return parsedInst{inst: Inst{Op: OpBL}, target: ops[0]}, nil
	case "bx", "blx":
		if err := arity(1); err != nil {
			return parsedInst{}, err
		}
		r, err := reg(0)
		if err != nil {
			return parsedInst{}, err
		}
		op := OpBX
		if mnem == "blx" {
			op = OpBLX
		}
		return parsedInst{inst: Inst{Op: op, Rm: r}}, nil
	case "bkpt", "svc", "udf":
		if err := arity(1); err != nil {
			return parsedInst{}, err
		}
		v, err := imm(0)
		if err != nil {
			return parsedInst{}, err
		}
		op := map[string]Op{"bkpt": OpBKPT, "svc": OpSVC, "udf": OpUDF}[mnem]
		return parsedInst{inst: Inst{Op: op, Imm: v}}, nil
	case "push", "pop":
		if err := arity(1); err != nil {
			return parsedInst{}, err
		}
		regs, special, err := parseRegList(ops[0])
		if err != nil {
			return parsedInst{}, err
		}
		if special {
			regs |= 1 << 8
		}
		op := OpPUSH
		if mnem == "pop" {
			op = OpPOP
		}
		return parsedInst{inst: Inst{Op: op, Regs: regs}}, nil
	case "stmia", "ldmia", "stm", "ldm":
		if err := arity(2); err != nil {
			return parsedInst{}, err
		}
		rn, ok := parseReg(strings.TrimSuffix(strings.TrimSpace(ops[0]), "!"))
		if !ok {
			return parsedInst{}, fmt.Errorf("bad base register %q", ops[0])
		}
		regs, special, err := parseRegList(ops[1])
		if err != nil || special {
			return parsedInst{}, fmt.Errorf("bad register list %q", ops[1])
		}
		op := OpSTM
		if strings.HasPrefix(mnem, "ld") {
			op = OpLDM
		}
		return parsedInst{inst: Inst{Op: op, Rn: rn, Regs: regs}}, nil
	case "movs", "mov":
		if err := arity(2); err != nil {
			return parsedInst{}, err
		}
		rd, err := reg(0)
		if err != nil {
			return parsedInst{}, err
		}
		if rm, ok := parseReg(ops[1]); ok {
			if mnem == "mov" {
				return parsedInst{inst: Inst{Op: OpMOVHi, Rd: rd, Rm: rm}}, nil
			}
			// movs rd, rm encodes as lsls rd, rm, #0.
			return parsedInst{inst: Inst{Op: OpLSLImm, Rd: rd, Rm: rm}}, nil
		}
		v, err := imm(1)
		if err != nil {
			return parsedInst{}, err
		}
		return parsedInst{inst: Inst{Op: OpMOVImm, Rd: rd, Imm: v}}, nil
	case "cmp":
		if err := arity(2); err != nil {
			return parsedInst{}, err
		}
		rn, err := reg(0)
		if err != nil {
			return parsedInst{}, err
		}
		if rm, ok := parseReg(ops[1]); ok {
			if rn >= 8 || rm >= 8 {
				return parsedInst{inst: Inst{Op: OpCMPHi, Rn: rn, Rm: rm}}, nil
			}
			return parsedInst{inst: Inst{Op: OpCMPReg, Rn: rn, Rm: rm}}, nil
		}
		v, err := imm(1)
		if err != nil {
			return parsedInst{}, err
		}
		return parsedInst{inst: Inst{Op: OpCMPImm, Rn: rn, Imm: v}}, nil
	case "cmn", "tst":
		if err := arity(2); err != nil {
			return parsedInst{}, err
		}
		rn, err := reg(0)
		if err != nil {
			return parsedInst{}, err
		}
		rm, err := reg(1)
		if err != nil {
			return parsedInst{}, err
		}
		op := OpCMN
		if mnem == "tst" {
			op = OpTST
		}
		return parsedInst{inst: Inst{Op: op, Rn: rn, Rm: rm}}, nil
	case "adds", "subs", "add", "sub":
		return parseAddSub(mnem, ops)
	case "lsls", "lsrs", "asrs":
		ops3 := map[string]struct{ immOp, regOp Op }{
			"lsls": {OpLSLImm, OpLSLReg},
			"lsrs": {OpLSRImm, OpLSRReg},
			"asrs": {OpASRImm, OpASRReg},
		}[mnem]
		switch len(ops) {
		case 2:
			rd, err := reg(0)
			if err != nil {
				return parsedInst{}, err
			}
			rm, err := reg(1)
			if err != nil {
				return parsedInst{}, err
			}
			return parsedInst{inst: Inst{Op: ops3.regOp, Rd: rd, Rm: rm}}, nil
		case 3:
			rd, err := reg(0)
			if err != nil {
				return parsedInst{}, err
			}
			rm, err := reg(1)
			if err != nil {
				return parsedInst{}, err
			}
			v, err := imm(2)
			if err != nil {
				return parsedInst{}, err
			}
			return parsedInst{inst: Inst{Op: ops3.immOp, Rd: rd, Rm: rm, Imm: v}}, nil
		default:
			return parsedInst{}, fmt.Errorf("%s expects 2 or 3 operands", mnem)
		}
	case "ands", "eors", "adcs", "sbcs", "rors", "orrs", "muls", "bics", "mvns":
		if err := arity(2); err != nil {
			return parsedInst{}, err
		}
		rd, err := reg(0)
		if err != nil {
			return parsedInst{}, err
		}
		rm, err := reg(1)
		if err != nil {
			return parsedInst{}, err
		}
		op := map[string]Op{
			"ands": OpAND, "eors": OpEOR, "adcs": OpADC, "sbcs": OpSBC,
			"rors": OpRORReg, "orrs": OpORR, "muls": OpMUL, "bics": OpBIC,
			"mvns": OpMVN,
		}[mnem]
		return parsedInst{inst: Inst{Op: op, Rd: rd, Rm: rm}}, nil
	case "rsbs", "negs":
		// rsbs rd, rn, #0 / negs rd, rn.
		if len(ops) != 2 && len(ops) != 3 {
			return parsedInst{}, fmt.Errorf("%s expects 2 or 3 operands", mnem)
		}
		rd, err := reg(0)
		if err != nil {
			return parsedInst{}, err
		}
		rn, err := reg(1)
		if err != nil {
			return parsedInst{}, err
		}
		return parsedInst{inst: Inst{Op: OpRSB, Rd: rd, Rn: rn}}, nil
	case "sxth", "sxtb", "uxth", "uxtb", "rev", "rev16", "revsh":
		if err := arity(2); err != nil {
			return parsedInst{}, err
		}
		rd, err := reg(0)
		if err != nil {
			return parsedInst{}, err
		}
		rm, err := reg(1)
		if err != nil {
			return parsedInst{}, err
		}
		op := map[string]Op{
			"sxth": OpSXTH, "sxtb": OpSXTB, "uxth": OpUXTH, "uxtb": OpUXTB,
			"rev": OpREV, "rev16": OpREV16, "revsh": OpREVSH,
		}[mnem]
		return parsedInst{inst: Inst{Op: op, Rd: rd, Rm: rm}}, nil
	case "adr":
		if err := arity(2); err != nil {
			return parsedInst{}, err
		}
		rd, err := reg(0)
		if err != nil {
			return parsedInst{}, err
		}
		return parsedInst{inst: Inst{Op: OpADR, Rd: rd}, target: ops[1]}, nil
	case "ldr", "ldrb", "ldrh", "ldrsb", "ldrsh", "str", "strb", "strh":
		return parseLoadStore(mnem, ops)
	default:
		return parsedInst{}, fmt.Errorf("unknown mnemonic %q", mnem)
	}
}

func parseAddSub(mnem string, ops []string) (parsedInst, error) {
	isSub := strings.HasPrefix(mnem, "sub")
	// add/sub sp, #imm.
	if len(ops) == 2 {
		if r, ok := parseReg(ops[0]); ok && r == SP {
			v, err := parseImmValue(ops[1])
			if err != nil {
				return parsedInst{}, err
			}
			op := OpADDSPImm
			if isSub {
				op = OpSUBSPImm
			}
			return parsedInst{inst: Inst{Op: op, Imm: v}}, nil
		}
	}
	rd, ok := parseReg(ops[0])
	if !ok {
		return parsedInst{}, fmt.Errorf("bad register %q", ops[0])
	}
	switch len(ops) {
	case 2:
		// adds rd, #imm8 | add rd, rm (hi) | adds rd, rd, rm.
		if rm, ok := parseReg(ops[1]); ok {
			if isSub {
				return parsedInst{inst: Inst{Op: OpSUBReg, Rd: rd, Rn: rd, Rm: rm}}, nil
			}
			if mnem == "add" || rd >= 8 || rm >= 8 {
				return parsedInst{inst: Inst{Op: OpADDHi, Rd: rd, Rn: rd, Rm: rm}}, nil
			}
			return parsedInst{inst: Inst{Op: OpADDReg, Rd: rd, Rn: rd, Rm: rm}}, nil
		}
		v, err := parseImmValue(ops[1])
		if err != nil {
			return parsedInst{}, err
		}
		op := OpADDImm8
		if isSub {
			op = OpSUBImm8
		}
		return parsedInst{inst: Inst{Op: op, Rd: rd, Imm: v}}, nil
	case 3:
		rn, ok := parseReg(ops[1])
		if !ok {
			return parsedInst{}, fmt.Errorf("bad register %q", ops[1])
		}
		if rm, ok := parseReg(ops[2]); ok {
			op := OpADDReg
			if isSub {
				op = OpSUBReg
			}
			return parsedInst{inst: Inst{Op: op, Rd: rd, Rn: rn, Rm: rm}}, nil
		}
		v, err := parseImmValue(ops[2])
		if err != nil {
			return parsedInst{}, err
		}
		if rn == SP && !isSub {
			return parsedInst{inst: Inst{Op: OpADDSP, Rd: rd, Imm: v}}, nil
		}
		if rn == PC && !isSub {
			return parsedInst{inst: Inst{Op: OpADR, Rd: rd, Imm: v}}, nil
		}
		if rd == rn && v > 7 {
			op := OpADDImm8
			if isSub {
				op = OpSUBImm8
			}
			return parsedInst{inst: Inst{Op: op, Rd: rd, Imm: v}}, nil
		}
		op := OpADDImm3
		if isSub {
			op = OpSUBImm3
		}
		return parsedInst{inst: Inst{Op: op, Rd: rd, Rn: rn, Imm: v}}, nil
	default:
		return parsedInst{}, fmt.Errorf("%s expects 2 or 3 operands", mnem)
	}
}

func parseLoadStore(mnem string, ops []string) (parsedInst, error) {
	if len(ops) != 2 {
		return parsedInst{}, fmt.Errorf("%s expects 2 operands", mnem)
	}
	rd, ok := parseReg(ops[0])
	if !ok {
		return parsedInst{}, fmt.Errorf("bad register %q", ops[0])
	}
	second := strings.TrimSpace(ops[1])

	// ldr rd, =imm or ldr rd, =label.
	if strings.HasPrefix(second, "=") {
		if mnem != "ldr" {
			return parsedInst{}, fmt.Errorf("= literal only valid with ldr")
		}
		arg := strings.TrimSpace(second[1:])
		p := parsedInst{inst: Inst{Op: OpLDRLit, Rd: rd}, isLit: true}
		if v, err := parseImmValue(arg); err == nil {
			p.litVal = v
			return p, nil
		}
		if isIdent(arg) {
			p.litSym = arg
			return p, nil
		}
		return parsedInst{}, fmt.Errorf("bad literal %q", arg)
	}
	// ldr rd, label (pc-relative literal).
	if !strings.HasPrefix(second, "[") {
		if mnem != "ldr" {
			return parsedInst{}, fmt.Errorf("label operand only valid with ldr")
		}
		return parsedInst{inst: Inst{Op: OpLDRLit, Rd: rd}, target: second}, nil
	}

	m, err := parseMem(second)
	if err != nil {
		return parsedInst{}, err
	}
	if m.hasIdx {
		op, ok := map[string]Op{
			"str": OpSTRReg, "strh": OpSTRHReg, "strb": OpSTRBReg,
			"ldrsb": OpLDRSB, "ldr": OpLDRReg, "ldrh": OpLDRHReg,
			"ldrb": OpLDRBReg, "ldrsh": OpLDRSH,
		}[mnem]
		if !ok {
			return parsedInst{}, fmt.Errorf("bad addressing mode for %s", mnem)
		}
		return parsedInst{inst: Inst{Op: op, Rd: rd, Rn: m.base, Rm: m.index}}, nil
	}
	switch m.base {
	case SP:
		var op Op
		switch mnem {
		case "ldr":
			op = OpLDRSP
		case "str":
			op = OpSTRSP
		default:
			return parsedInst{}, fmt.Errorf("sp-relative %s not encodable", mnem)
		}
		return parsedInst{inst: Inst{Op: op, Rd: rd, Imm: m.imm}}, nil
	case PC:
		if mnem != "ldr" {
			return parsedInst{}, fmt.Errorf("pc-relative %s not encodable", mnem)
		}
		return parsedInst{inst: Inst{Op: OpLDRLit, Rd: rd, Imm: m.imm}}, nil
	default:
		op, ok := map[string]Op{
			"str": OpSTRImm, "ldr": OpLDRImm, "strb": OpSTRBImm,
			"ldrb": OpLDRBImm, "strh": OpSTRHImm, "ldrh": OpLDRHImm,
		}[mnem]
		if !ok {
			return parsedInst{}, fmt.Errorf("bad addressing mode for %s", mnem)
		}
		return parsedInst{inst: Inst{Op: op, Rd: rd, Rn: m.base, Imm: m.imm}}, nil
	}
}
