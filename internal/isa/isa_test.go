package isa

import (
	"testing"
	"testing/quick"
)

func TestCondHolds(t *testing.T) {
	f := func(n, z, c, v bool) Flags { return Flags{N: n, Z: z, C: c, V: v} }
	tests := []struct {
		cond  Cond
		flags Flags
		want  bool
	}{
		{EQ, f(false, true, false, false), true},
		{EQ, f(false, false, false, false), false},
		{NE, f(false, false, false, false), true},
		{CS, f(false, false, true, false), true},
		{CC, f(false, false, true, false), false},
		{MI, f(true, false, false, false), true},
		{PL, f(true, false, false, false), false},
		{VS, f(false, false, false, true), true},
		{VC, f(false, false, false, true), false},
		{HI, f(false, false, true, false), true},
		{HI, f(false, true, true, false), false},
		{LS, f(false, true, true, false), true},
		{LS, f(false, false, false, false), true},
		{GE, f(true, false, false, true), true},
		{GE, f(true, false, false, false), false},
		{LT, f(true, false, false, false), true},
		{GT, f(false, false, false, false), true},
		{GT, f(false, true, false, false), false},
		{LE, f(false, true, false, false), true},
		{LE, f(true, false, false, true), false},
		{AL, f(true, true, true, true), true},
	}
	for _, tt := range tests {
		if got := tt.cond.Holds(tt.flags); got != tt.want {
			t.Errorf("%v.Holds(%v) = %v, want %v", tt.cond, tt.flags, got, tt.want)
		}
	}
}

func TestCondComplements(t *testing.T) {
	// Adjacent condition pairs (EQ/NE, CS/CC, ...) must be complementary
	// for every flag combination.
	for flags := 0; flags < 16; flags++ {
		f := Flags{
			N: flags&8 != 0, Z: flags&4 != 0,
			C: flags&2 != 0, V: flags&1 != 0,
		}
		for c := EQ; c < AL; c += 2 {
			if c.Holds(f) == (c + 1).Holds(f) {
				t.Errorf("%v and %v both %v for flags %v",
					c, c+1, c.Holds(f), f)
			}
		}
	}
}

func TestDecodeKnownEncodings(t *testing.T) {
	tests := []struct {
		hw   uint16
		want string
	}{
		{0x0000, "lsls r0, r0, #0"}, // all-zero word: effectively movs r0, r0
		{0x20aa, "movs r0, #170"},
		{0x2b00, "cmp r3, #0"},
		{0x3307, "adds r3, #7"},
		{0x781b, "ldrb r3, [r3, #0]"},
		{0x466b, "mov r3, sp"},
		{0xd000, "beq .+4"},
		{0xd1fe, "bne .+0"}, // branch-to-self
		{0xe7fe, "b .+0"},
		{0xb580, "push {r7, lr}"},
		{0xbd80, "pop {r7, pc}"},
		{0xbf00, "nop"},
		{0x4770, "bx lr"},
		{0xdeff, "udf #255"},
		{0xdf01, "svc #1"},
		{0x1880, "adds r0, r0, r2"},
		{0x4288, "cmp r0, r1"},
		{0x9801, "ldr r0, [sp, #4]"},
		{0x4801, "ldr r0, [pc, #4]"},
		{0xb082, "sub sp, #8"},
		{0xc807, "ldmia r0!, {r0, r1, r2}"},
	}
	for _, tt := range tests {
		in := Decode(tt.hw, 0)
		if got := in.String(); got != tt.want {
			t.Errorf("Decode(%#04x) = %q, want %q", tt.hw, got, tt.want)
		}
	}
}

func TestDecodeInvalid(t *testing.T) {
	invalid := []uint16{
		0xbf01, // IT-style hint (ARMv7 only)
		0xb100, // CBZ (ARMv7 only)
		0xba80, // unallocated misc
		0x4508, // cmp r0, r1 hi form with two low regs (unpredictable)
	}
	for _, hw := range invalid {
		if in := Decode(hw, 0); in.Op != OpInvalid {
			t.Errorf("Decode(%#04x) = %v, want invalid", hw, in)
		}
	}
}

// TestDecodeEncodeRoundTrip checks that for every 16-bit pattern that
// decodes to a valid instruction, re-encoding produces an encoding that
// decodes identically (encoding aliases such as hint variants may legally
// fail to encode, but must not encode to something different).
func TestDecodeEncodeRoundTrip(t *testing.T) {
	valid := 0
	for hw := 0; hw < 0x10000; hw++ {
		if Is32Bit(uint16(hw)) {
			continue
		}
		in := Decode(uint16(hw), 0)
		if in.Op == OpInvalid {
			continue
		}
		valid++
		enc, err := Encode(in)
		if err != nil {
			// Lossy aliases (hints, CPS) are allowed to fail.
			if in.Op == OpCPS {
				continue
			}
			if in.Op == OpNOP && hw != 0xbf00 {
				continue
			}
			t.Fatalf("Encode(Decode(%#04x)) failed: %v", hw, err)
		}
		back := Decode(enc, 0)
		back.Raw = in.Raw // Raw differs for aliases; compare semantics
		in2 := in
		in2.Raw = back.Raw
		if back != in2 {
			t.Fatalf("round trip %#04x -> %v -> %#04x -> %v", hw, in, enc, back)
		}
	}
	if valid < 40000 {
		t.Errorf("only %d of 65536 encodings decoded as valid; decoder too strict", valid)
	}
}

func TestBLRoundTrip(t *testing.T) {
	f := func(raw int32) bool {
		off := (raw % (1 << 23)) * 2
		hw1, hw2, err := EncodeBL(off)
		if err != nil {
			return false
		}
		in := Decode(hw1, hw2)
		return in.Op == OpBL && int32(in.Imm) == off && in.Size == 4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBranchTarget(t *testing.T) {
	// beq with imm8 = 1 at address 0x100 branches to 0x100 + 4 + 2.
	in := Inst{Op: OpBCond, Cond: EQ, Imm: 1}
	if got := in.BranchTarget(0x100); got != 0x106 {
		t.Errorf("BranchTarget = %#x, want 0x106", got)
	}
	// Backwards branch: imm8 = 0xfb (-5) => target = pc+4-10.
	in.Imm = 0xfb
	if got := in.BranchTarget(0x100); got != 0x100+4-10 {
		t.Errorf("backwards BranchTarget = %#x, want %#x", got, 0x100+4-10)
	}
	// Unconditional branch-to-self: imm11 = 0x7fe.
	b := Inst{Op: OpB, Imm: 0x7fe}
	if got := b.BranchTarget(0x200); got != 0x200 {
		t.Errorf("b-to-self target = %#x, want 0x200", got)
	}
}

func TestBranchCondsComplete(t *testing.T) {
	conds := BranchConds()
	if len(conds) != 14 {
		t.Fatalf("BranchConds() has %d entries, want 14", len(conds))
	}
	seen := map[Cond]bool{}
	for _, c := range conds {
		if seen[c] {
			t.Errorf("duplicate condition %v", c)
		}
		seen[c] = true
		if c >= AL {
			t.Errorf("condition %v not encodable in a conditional branch", c)
		}
	}
}
