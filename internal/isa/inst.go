package isa

import (
	"fmt"
	"strings"
)

// Op identifies a decoded Thumb operation.
type Op uint8

// Thumb-16 (plus BL) operations. The names follow the unified assembler
// mnemonics; flag-setting forms carry the S suffix implicitly (all Thumb-16
// data-processing instructions outside the hi-register group set flags).
const (
	OpInvalid Op = iota
	OpLSLImm     // lsls rd, rm, #imm5
	OpLSRImm     // lsrs rd, rm, #imm5
	OpASRImm     // asrs rd, rm, #imm5
	OpADDReg     // adds rd, rn, rm
	OpSUBReg     // subs rd, rn, rm
	OpADDImm3    // adds rd, rn, #imm3
	OpSUBImm3    // subs rd, rn, #imm3
	OpMOVImm     // movs rd, #imm8
	OpCMPImm     // cmp rn, #imm8
	OpADDImm8    // adds rd, #imm8
	OpSUBImm8    // subs rd, #imm8

	// Data-processing, register (format 4).
	OpAND // ands rd, rm
	OpEOR // eors rd, rm
	OpLSLReg
	OpLSRReg
	OpASRReg
	OpADC
	OpSBC
	OpRORReg
	OpTST
	OpRSB // rsbs rd, rn, #0 (NEG)
	OpCMPReg
	OpCMN
	OpORR
	OpMUL
	OpBIC
	OpMVN

	// Hi-register operations and branch-exchange (format 5).
	OpADDHi // add rd, rm (no flags)
	OpCMPHi // cmp rn, rm
	OpMOVHi // mov rd, rm (no flags)
	OpBX
	OpBLX

	OpLDRLit // ldr rd, [pc, #imm8*4]

	// Load/store register offset (format 7/8).
	OpSTRReg
	OpSTRHReg
	OpSTRBReg
	OpLDRSB
	OpLDRReg
	OpLDRHReg
	OpLDRBReg
	OpLDRSH

	// Load/store immediate offset (formats 9/10).
	OpSTRImm  // str rd, [rn, #imm5*4]
	OpLDRImm  // ldr rd, [rn, #imm5*4]
	OpSTRBImm // strb rd, [rn, #imm5]
	OpLDRBImm // ldrb rd, [rn, #imm5]
	OpSTRHImm // strh rd, [rn, #imm5*2]
	OpLDRHImm // ldrh rd, [rn, #imm5*2]

	OpSTRSP // str rd, [sp, #imm8*4]
	OpLDRSP // ldr rd, [sp, #imm8*4]
	OpADR   // add rd, pc, #imm8*4
	OpADDSP // add rd, sp, #imm8*4

	OpADDSPImm // add sp, #imm7*4
	OpSUBSPImm // sub sp, #imm7*4

	OpSXTH
	OpSXTB
	OpUXTH
	OpUXTB
	OpREV
	OpREV16
	OpREVSH
	OpPUSH
	OpPOP
	OpBKPT
	OpNOP // hint family: nop/yield/wfe/wfi/sev all execute as nop here
	OpCPS
	OpSTM // stmia rn!, {reglist}
	OpLDM // ldmia rn!, {reglist}

	OpBCond // b<cond> label
	OpUDF   // permanently undefined (0xDExx)
	OpSVC

	OpB  // unconditional branch, 11-bit offset
	OpBL // 32-bit branch with link
)

var opNames = map[Op]string{
	OpInvalid: "<invalid>",
	OpLSLImm:  "lsls", OpLSRImm: "lsrs", OpASRImm: "asrs",
	OpADDReg: "adds", OpSUBReg: "subs", OpADDImm3: "adds", OpSUBImm3: "subs",
	OpMOVImm: "movs", OpCMPImm: "cmp", OpADDImm8: "adds", OpSUBImm8: "subs",
	OpAND: "ands", OpEOR: "eors", OpLSLReg: "lsls", OpLSRReg: "lsrs",
	OpASRReg: "asrs", OpADC: "adcs", OpSBC: "sbcs", OpRORReg: "rors",
	OpTST: "tst", OpRSB: "rsbs", OpCMPReg: "cmp", OpCMN: "cmn",
	OpORR: "orrs", OpMUL: "muls", OpBIC: "bics", OpMVN: "mvns",
	OpADDHi: "add", OpCMPHi: "cmp", OpMOVHi: "mov", OpBX: "bx", OpBLX: "blx",
	OpLDRLit: "ldr",
	OpSTRReg: "str", OpSTRHReg: "strh", OpSTRBReg: "strb", OpLDRSB: "ldrsb",
	OpLDRReg: "ldr", OpLDRHReg: "ldrh", OpLDRBReg: "ldrb", OpLDRSH: "ldrsh",
	OpSTRImm: "str", OpLDRImm: "ldr", OpSTRBImm: "strb", OpLDRBImm: "ldrb",
	OpSTRHImm: "strh", OpLDRHImm: "ldrh",
	OpSTRSP: "str", OpLDRSP: "ldr", OpADR: "adr", OpADDSP: "add",
	OpADDSPImm: "add", OpSUBSPImm: "sub",
	OpSXTH: "sxth", OpSXTB: "sxtb", OpUXTH: "uxth", OpUXTB: "uxtb",
	OpREV: "rev", OpREV16: "rev16", OpREVSH: "revsh",
	OpPUSH: "push", OpPOP: "pop", OpBKPT: "bkpt", OpNOP: "nop", OpCPS: "cps",
	OpSTM: "stmia", OpLDM: "ldmia",
	OpBCond: "b", OpUDF: "udf", OpSVC: "svc",
	OpB: "b", OpBL: "bl",
}

// String returns the base mnemonic for the operation.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// IsLoad reports whether the operation reads data memory.
func (o Op) IsLoad() bool {
	switch o {
	case OpLDRLit, OpLDRSB, OpLDRReg, OpLDRHReg, OpLDRBReg, OpLDRSH,
		OpLDRImm, OpLDRBImm, OpLDRHImm, OpLDRSP, OpPOP, OpLDM:
		return true
	}
	return false
}

// IsStore reports whether the operation writes data memory.
func (o Op) IsStore() bool {
	switch o {
	case OpSTRReg, OpSTRHReg, OpSTRBReg, OpSTRImm, OpSTRBImm, OpSTRHImm,
		OpSTRSP, OpPUSH, OpSTM:
		return true
	}
	return false
}

// IsBranch reports whether the operation can redirect control flow.
func (o Op) IsBranch() bool {
	switch o {
	case OpBCond, OpB, OpBL, OpBX, OpBLX:
		return true
	}
	return false
}

// Inst is a decoded Thumb instruction.
type Inst struct {
	Op   Op
	Rd   Reg    // destination (or source for stores, Rn for CMP-style)
	Rn   Reg    // first source
	Rm   Reg    // second source
	Imm  uint32 // immediate, already scaled where the encoding scales it
	Cond Cond   // for OpBCond
	Regs uint16 // register list for push/pop (bit 8 = LR/PC)
	Size int    // encoded size in bytes (2 or 4)
	Raw  uint32 // raw encoding (low 16 bits, or full 32 for BL)
}

// BranchTarget returns the branch destination for a PC-relative branch,
// given the address of the instruction. It panics for non-PC-relative ops;
// callers must check Op first.
func (i Inst) BranchTarget(addr uint32) uint32 {
	pc := addr + 4 // Thumb PC reads as instruction address + 4
	switch i.Op {
	case OpBCond:
		off := int32(int8(uint8(i.Imm))) * 2
		return uint32(int32(pc) + off)
	case OpB:
		off := int32(i.Imm<<21) >> 20 // sign-extend 11 bits, scale by 2
		return uint32(int32(pc) + off)
	case OpBL:
		return uint32(int32(pc) + int32(i.Imm))
	}
	panic(fmt.Sprintf("isa: BranchTarget on %v", i.Op))
}

// String disassembles the instruction (address-independent; PC-relative
// targets are rendered as ".+off" style offsets).
func (i Inst) String() string {
	switch i.Op {
	case OpInvalid:
		return fmt.Sprintf("<invalid 0x%04x>", i.Raw)
	case OpLSLImm, OpLSRImm, OpASRImm:
		return fmt.Sprintf("%s %s, %s, #%d", i.Op, i.Rd, i.Rm, i.Imm)
	case OpADDReg, OpSUBReg:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Rn, i.Rm)
	case OpADDImm3, OpSUBImm3:
		return fmt.Sprintf("%s %s, %s, #%d", i.Op, i.Rd, i.Rn, i.Imm)
	case OpMOVImm, OpADDImm8, OpSUBImm8:
		return fmt.Sprintf("%s %s, #%d", i.Op, i.Rd, i.Imm)
	case OpCMPImm:
		return fmt.Sprintf("%s %s, #%d", i.Op, i.Rn, i.Imm)
	case OpAND, OpEOR, OpLSLReg, OpLSRReg, OpASRReg, OpADC, OpSBC, OpRORReg,
		OpORR, OpMUL, OpBIC, OpMVN:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rd, i.Rm)
	case OpTST, OpCMPReg, OpCMN:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rn, i.Rm)
	case OpRSB:
		return fmt.Sprintf("%s %s, %s, #0", i.Op, i.Rd, i.Rn)
	case OpADDHi, OpMOVHi:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rd, i.Rm)
	case OpCMPHi:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rn, i.Rm)
	case OpBX, OpBLX:
		return fmt.Sprintf("%s %s", i.Op, i.Rm)
	case OpLDRLit:
		return fmt.Sprintf("%s %s, [pc, #%d]", i.Op, i.Rd, i.Imm)
	case OpSTRReg, OpSTRHReg, OpSTRBReg, OpLDRSB, OpLDRReg, OpLDRHReg,
		OpLDRBReg, OpLDRSH:
		return fmt.Sprintf("%s %s, [%s, %s]", i.Op, i.Rd, i.Rn, i.Rm)
	case OpSTRImm, OpLDRImm, OpSTRBImm, OpLDRBImm, OpSTRHImm, OpLDRHImm:
		return fmt.Sprintf("%s %s, [%s, #%d]", i.Op, i.Rd, i.Rn, i.Imm)
	case OpSTRSP, OpLDRSP:
		return fmt.Sprintf("%s %s, [sp, #%d]", i.Op, i.Rd, i.Imm)
	case OpADR:
		return fmt.Sprintf("%s %s, pc, #%d", "add", i.Rd, i.Imm)
	case OpADDSP:
		return fmt.Sprintf("%s %s, sp, #%d", i.Op, i.Rd, i.Imm)
	case OpADDSPImm, OpSUBSPImm:
		return fmt.Sprintf("%s sp, #%d", i.Op, i.Imm)
	case OpSXTH, OpSXTB, OpUXTH, OpUXTB, OpREV, OpREV16, OpREVSH:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rd, i.Rm)
	case OpPUSH, OpPOP:
		return fmt.Sprintf("%s {%s}", i.Op, regListString(i.Op, i.Regs))
	case OpSTM, OpLDM:
		return fmt.Sprintf("%s %s!, {%s}", i.Op, i.Rn, regListString(i.Op, i.Regs))
	case OpBKPT, OpSVC, OpUDF:
		return fmt.Sprintf("%s #%d", i.Op, i.Imm)
	case OpNOP, OpCPS:
		return i.Op.String()
	case OpBCond:
		return fmt.Sprintf("b%s .%+d", i.Cond, int32(int8(uint8(i.Imm)))*2+4)
	case OpB:
		return fmt.Sprintf("b .%+d", (int32(i.Imm<<21)>>20)+4)
	case OpBL:
		return fmt.Sprintf("bl .%+d", int32(i.Imm)+4)
	}
	return i.Op.String()
}

func regListString(op Op, regs uint16) string {
	var parts []string
	for r := 0; r < 8; r++ {
		if regs&(1<<r) != 0 {
			parts = append(parts, Reg(r).String())
		}
	}
	if regs&(1<<8) != 0 {
		if op == OpPUSH {
			parts = append(parts, "lr")
		} else {
			parts = append(parts, "pc")
		}
	}
	return strings.Join(parts, ", ")
}
