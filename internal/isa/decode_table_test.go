package isa

import "testing"

// TestDecodeTableTotalOracle is the exhaustive difftest oracle for the
// precomputed decode table: for every one of the 65536 possible halfwords,
// the table entry must equal the generative decode16 result with Size and
// Raw filled in exactly as the pre-table Decode did. Inst is a comparable
// struct, so == covers every field (Op, Rd, Rn, Rm, Imm, Cond, Regs, Size,
// Raw).
func TestDecodeTableTotalOracle(t *testing.T) {
	for hw := 0; hw < 1<<16; hw++ {
		want := decode16(uint16(hw))
		want.Size = 2
		want.Raw = uint32(hw)
		if got := decodeTable[hw]; got != want {
			t.Fatalf("decodeTable[%#04x] = %+v, want decode16 result %+v", hw, got, want)
		}
	}
}

// TestDecodeUsesTable pins the public entry point to the table for 16-bit
// encodings and to the functional decode32 path for 32-bit prefixes: the
// campaigns depend on Decode(hw, 0) being exactly the table load.
func TestDecodeUsesTable(t *testing.T) {
	for hw := 0; hw < 1<<16; hw++ {
		h := uint16(hw)
		got := Decode(h, 0)
		if Is32Bit(h) {
			want := decode32(h, 0)
			if got != want {
				t.Fatalf("Decode(%#04x, 0) = %+v, want decode32 result %+v", hw, got, want)
			}
			continue
		}
		if got != decodeTable[hw] {
			t.Fatalf("Decode(%#04x, 0) = %+v, want table entry %+v", hw, got, decodeTable[hw])
		}
	}
}
