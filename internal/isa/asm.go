package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// AsmError reports an assembly failure with its source line number.
type AsmError struct {
	Line int
	Msg  string
}

func (e *AsmError) Error() string {
	return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg)
}

// Program is the output of the assembler: machine code plus symbol and
// per-instruction location information.
type Program struct {
	Base    uint32            // load address of Code[0]
	Code    []byte            // little-endian machine code and data
	Symbols map[string]uint32 // label -> address
	// InstAddrs lists the address of every assembled instruction, in
	// program order (data directives excluded). Campaigns use it to find
	// the instruction under test.
	InstAddrs []uint32
}

// SymbolAddr returns the address of a label defined in the program.
func (p *Program) SymbolAddr(name string) (uint32, bool) {
	a, ok := p.Symbols[name]
	return a, ok
}

// InstAt decodes the instruction stored at addr. ok is false when addr is
// unaligned, outside the program, or a 32-bit encoding is truncated. The
// caller is responsible for addr pointing at code rather than data
// (Program.InstAddrs lists the instruction addresses).
func (p *Program) InstAt(addr uint32) (Inst, bool) {
	if addr < p.Base || addr%2 != 0 {
		return Inst{}, false
	}
	off := int(addr - p.Base)
	if off+2 > len(p.Code) {
		return Inst{}, false
	}
	hw := uint16(p.Code[off]) | uint16(p.Code[off+1])<<8
	var hw2 uint16
	if Is32Bit(hw) {
		if off+4 > len(p.Code) {
			return Inst{}, false
		}
		hw2 = uint16(p.Code[off+2]) | uint16(p.Code[off+3])<<8
	}
	return Decode(hw, hw2), true
}

type asmItem struct {
	line   int
	addr   uint32
	inst   *Inst  // nil for data items
	isBL   bool   // 32-bit BL
	target string // branch target label or ldr=... literal label
	litVal uint32 // for ldr rd, =imm
	litSym string // for ldr rd, =symbol (address literal)
	isLit  bool
	data   []byte // raw data (.word etc.)
	symRef string // data word to be patched with a symbol address
}

type assembler struct {
	base   uint32
	pc     uint32
	items  []*asmItem
	labels map[string]uint32
	lits   []*asmItem // pending ldr rd, =imm items awaiting a pool
}

// Assemble translates Thumb assembly source into machine code loaded at
// base. Supported syntax: one instruction, label ("name:") or directive per
// line; comments start with ";", "@" or "//"; directives are .word, .hword,
// .byte, .space, .align and .pool; "ldr rd, =imm" allocates a literal-pool
// entry (flushed at .pool or end of program).
func Assemble(base uint32, src string) (*Program, error) {
	a := &assembler{base: base, pc: base, labels: map[string]uint32{}}
	for num, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		if err := a.line(num+1, line); err != nil {
			return nil, err
		}
	}
	a.flushPool(0)
	return a.finish()
}

func stripComment(s string) string {
	for _, marker := range []string{";", "@", "//"} {
		if i := strings.Index(s, marker); i >= 0 {
			s = s[:i]
		}
	}
	return strings.TrimSpace(s)
}

func (a *assembler) line(num int, line string) error {
	for {
		colon := strings.Index(line, ":")
		if colon < 0 {
			break
		}
		label := strings.TrimSpace(line[:colon])
		if !isIdent(label) {
			return &AsmError{num, fmt.Sprintf("bad label %q", label)}
		}
		if _, dup := a.labels[label]; dup {
			return &AsmError{num, fmt.Sprintf("duplicate label %q", label)}
		}
		a.labels[label] = a.pc
		line = strings.TrimSpace(line[colon+1:])
	}
	if line == "" {
		return nil
	}
	if strings.HasPrefix(line, ".") {
		return a.directive(num, line)
	}
	return a.instruction(num, line)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == '.' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func (a *assembler) directive(num int, line string) error {
	fields := strings.Fields(line)
	dir := fields[0]
	args := strings.TrimSpace(strings.TrimPrefix(line, dir))
	switch dir {
	case ".word", ".hword", ".byte":
		size := map[string]int{".word": 4, ".hword": 2, ".byte": 1}[dir]
		for _, part := range splitOperands(args) {
			v, err := parseImmValue(part)
			if err != nil {
				return &AsmError{num, err.Error()}
			}
			data := make([]byte, size)
			for i := 0; i < size; i++ {
				data[i] = byte(v >> (8 * i))
			}
			a.emitData(num, data)
		}
		return nil
	case ".space":
		n, err := parseImmValue(args)
		if err != nil {
			return &AsmError{num, err.Error()}
		}
		a.emitData(num, make([]byte, n))
		return nil
	case ".align":
		n := uint32(4)
		if args != "" {
			v, err := parseImmValue(args)
			if err != nil {
				return &AsmError{num, err.Error()}
			}
			n = v
		}
		if pad := (n - a.pc%n) % n; pad > 0 {
			a.emitData(num, make([]byte, pad))
		}
		return nil
	case ".pool":
		a.flushPool(num)
		return nil
	default:
		return &AsmError{num, fmt.Sprintf("unknown directive %q", dir)}
	}
}

func (a *assembler) emitData(num int, data []byte) {
	a.items = append(a.items, &asmItem{line: num, addr: a.pc, data: data})
	a.pc += uint32(len(data))
}

func (a *assembler) emitInst(num int, in Inst, target string) {
	it := &asmItem{line: num, addr: a.pc, inst: &in, target: target}
	a.items = append(a.items, it)
	a.pc += 2
}

// flushPool emits pending literal-pool words, word-aligned.
func (a *assembler) flushPool(num int) {
	if len(a.lits) == 0 {
		return
	}
	if a.pc%4 != 0 {
		a.emitData(num, make([]byte, 2))
	}
	for _, lit := range a.lits {
		name := fmt.Sprintf(".lit.%d", len(a.labels))
		a.labels[name] = a.pc
		lit.target = name
		v := lit.litVal
		a.emitData(num, []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
		if lit.litSym != "" {
			a.items[len(a.items)-1].symRef = lit.litSym
		}
	}
	a.lits = nil
}

func (a *assembler) finish() (*Program, error) {
	p := &Program{Base: a.base, Symbols: a.labels}
	for _, it := range a.items {
		switch {
		case it.data != nil:
			if it.symRef != "" {
				tgt, ok := a.labels[it.symRef]
				if !ok {
					return nil, &AsmError{it.line, "undefined symbol " + it.symRef}
				}
				it.data[0] = byte(tgt)
				it.data[1] = byte(tgt >> 8)
				it.data[2] = byte(tgt >> 16)
				it.data[3] = byte(tgt >> 24)
			}
			p.Code = append(p.Code, it.data...)
		case it.isBL:
			tgt, ok := a.labels[it.target]
			if !ok {
				return nil, &AsmError{it.line, "undefined label " + it.target}
			}
			off := int32(tgt) - int32(it.addr+4)
			hw1, hw2, err := EncodeBL(off)
			if err != nil {
				return nil, &AsmError{it.line, err.Error()}
			}
			p.Code = append(p.Code, byte(hw1), byte(hw1>>8), byte(hw2), byte(hw2>>8))
			p.InstAddrs = append(p.InstAddrs, it.addr)
		default:
			in := *it.inst
			if it.target != "" {
				tgt, ok := a.labels[it.target]
				if !ok {
					return nil, &AsmError{it.line, "undefined label " + it.target}
				}
				if err := resolveTarget(&in, it.addr, tgt); err != nil {
					return nil, &AsmError{it.line, err.Error()}
				}
			}
			hw, err := Encode(in)
			if err != nil {
				return nil, &AsmError{it.line, err.Error()}
			}
			p.Code = append(p.Code, byte(hw), byte(hw>>8))
			p.InstAddrs = append(p.InstAddrs, it.addr)
		}
	}
	return p, nil
}

func resolveTarget(in *Inst, addr, tgt uint32) error {
	switch in.Op {
	case OpBCond:
		off := int32(tgt) - int32(addr+4)
		if off%2 != 0 || off < -256 || off > 254 {
			return fmt.Errorf("conditional branch target out of range (%d)", off)
		}
		in.Imm = uint32(uint8(off / 2))
	case OpB:
		off := int32(tgt) - int32(addr+4)
		if off%2 != 0 || off < -2048 || off > 2046 {
			return fmt.Errorf("branch target out of range (%d)", off)
		}
		in.Imm = uint32(off/2) & 0x7ff
	case OpLDRLit:
		pcBase := (addr + 4) &^ 3
		if tgt < pcBase || (tgt-pcBase)%4 != 0 || tgt-pcBase > 1020 {
			return fmt.Errorf("literal out of range")
		}
		in.Imm = tgt - pcBase
	case OpADR:
		pcBase := (addr + 4) &^ 3
		if tgt < pcBase || (tgt-pcBase)%4 != 0 || tgt-pcBase > 1020 {
			return fmt.Errorf("adr target out of range")
		}
		in.Imm = tgt - pcBase
	default:
		return fmt.Errorf("label operand not allowed for %s", in.Op)
	}
	return nil
}

// BL items are 4 bytes, so emitInst cannot be used.
func (a *assembler) emitBL(num int, target string) {
	it := &asmItem{line: num, addr: a.pc, isBL: true, target: target}
	a.items = append(a.items, it)
	a.pc += 4
}

func (a *assembler) instruction(num int, line string) error {
	mnem, rest, _ := strings.Cut(line, " ")
	mnem = strings.ToLower(strings.TrimSpace(mnem))
	ops := splitOperands(rest)
	parsed, err := parseInst(mnem, ops)
	if err != nil {
		return &AsmError{num, err.Error()}
	}
	switch {
	case parsed.inst.Op == OpBL:
		a.emitBL(num, parsed.target)
	case parsed.isLit:
		// ldr rd, =imm — allocate pool entry, resolved like a label.
		in := parsed.inst
		it := &asmItem{
			line: num, addr: a.pc, inst: &in,
			isLit: true, litVal: parsed.litVal, litSym: parsed.litSym,
		}
		a.items = append(a.items, it)
		a.lits = append(a.lits, it)
		a.pc += 2
	default:
		a.emitInst(num, parsed.inst, parsed.target)
	}
	return nil
}

// parsedInst is the result of parsing one instruction line.
type parsedInst struct {
	inst   Inst
	target string // label reference, resolved in pass 2
	isLit  bool   // ldr rd, =imm pseudo-instruction
	litVal uint32
	litSym string // ldr rd, =symbol: pool word patched to the address
}

// splitOperands splits an operand string on commas that are not inside
// brackets or braces.
func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var out []string
	depth := 0
	start := 0
	for i, r := range s {
		switch r {
		case '[', '{':
			depth++
		case ']', '}':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

func parseReg(s string) (Reg, bool) {
	switch strings.ToLower(s) {
	case "sp", "r13":
		return SP, true
	case "lr", "r14":
		return LR, true
	case "pc", "r15":
		return PC, true
	}
	if len(s) >= 2 && (s[0] == 'r' || s[0] == 'R') {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n <= 15 {
			return Reg(n), true
		}
	}
	return 0, false
}

func parseImmValue(s string) (uint32, error) {
	s = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(s), "#"))
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	v, err := strconv.ParseUint(s, 0, 32)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	if neg {
		return uint32(-int32(uint32(v))), nil
	}
	return uint32(v), nil
}

func parseRegList(s string) (uint16, bool, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "{") || !strings.HasSuffix(s, "}") {
		return 0, false, fmt.Errorf("bad register list %q", s)
	}
	var regs uint16
	special := false
	for _, part := range strings.Split(s[1:len(s)-1], ",") {
		part = strings.TrimSpace(part)
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			rl, ok1 := parseReg(lo)
			rh, ok2 := parseReg(strings.TrimSpace(hi))
			if !ok1 || !ok2 || rl > rh || rh > 7 {
				return 0, false, fmt.Errorf("bad register range %q", part)
			}
			for r := rl; r <= rh; r++ {
				regs |= 1 << r
			}
			continue
		}
		r, ok := parseReg(part)
		if !ok {
			return 0, false, fmt.Errorf("bad register %q", part)
		}
		switch {
		case r <= 7:
			regs |= 1 << r
		case r == LR || r == PC:
			special = true
		default:
			return 0, false, fmt.Errorf("register %s not allowed in list", r)
		}
	}
	return regs, special, nil
}
