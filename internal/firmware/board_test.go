package firmware

import (
	"testing"

	"glitchlab/internal/isa"
)

func newBoard(t *testing.T) *Board {
	t.Helper()
	b, err := NewBoard()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBoardMemoryMap(t *testing.T) {
	b := newBoard(t)
	for _, probe := range []struct {
		name string
		addr uint32
	}{
		{"flash", FlashBase},
		{"sram", RAMBase},
		{"gpio", GPIOBase},
		{"trigger", TriggerAddr},
		{"seed", SeedAddr},
	} {
		if _, ok := b.Mem.Region(probe.addr, 4); !ok {
			t.Errorf("%s at %#x not mapped", probe.name, probe.addr)
		}
	}
	if _, ok := b.Mem.Region(0x6000_0000, 4); ok {
		t.Error("unmapped hole is mapped")
	}
}

func TestBoardResetState(t *testing.T) {
	b := newBoard(t)
	b.Reset()
	if b.CPU.R[isa.SP] != StackTop {
		t.Errorf("sp = %#x, want %#x", b.CPU.R[isa.SP], uint32(StackTop))
	}
	if b.CPU.PC() != FlashBase {
		t.Errorf("pc = %#x, want %#x", b.CPU.PC(), uint32(FlashBase))
	}
}

func TestPowerUpPatternDeterministicAndNonZero(t *testing.T) {
	b1 := newBoard(t)
	b2 := newBoard(t)
	b1.Reset()
	b2.Reset()
	r1, _ := b1.Mem.Region(RAMBase, 4)
	r2, _ := b2.Mem.Region(RAMBase, 4)
	zero := 0
	for i := range r1.Data {
		if r1.Data[i] != r2.Data[i] {
			t.Fatalf("power-up pattern differs at %d", i)
		}
		if r1.Data[i] == 0 {
			zero++
		}
	}
	// Around 1/256 of bytes should be zero; far more would mean the
	// stack residue is unrealistically empty.
	if zero > len(r1.Data)/64 {
		t.Errorf("%d of %d power-up bytes are zero", zero, len(r1.Data))
	}
}

func TestTriggerObservation(t *testing.T) {
	b := newBoard(t)
	if _, err := b.LoadSource(`
		ldr r0, trig
		movs r1, #1
		str r1, [r0]
	end:
		b end
		.align 4
	trig:
		.word 0x48000028
	`); err != nil {
		t.Fatal(err)
	}
	var hookCycle uint64
	var hookCount int
	b.OnTrigger = func(cycle uint64, count int) {
		hookCycle, hookCount = cycle, count
	}
	b.Reset()
	end := b.MustSymbol("end")
	if err := b.CPU.Run(end, 100); err != nil {
		t.Fatal(err)
	}
	if b.TriggerCount != 1 || hookCount != 1 {
		t.Errorf("trigger count = %d (hook %d), want 1", b.TriggerCount, hookCount)
	}
	// ldr(2) + movs(1) executed before the str began.
	if hookCycle != 3 {
		t.Errorf("trigger hook cycle = %d, want 3", hookCycle)
	}
}

func TestFlashWriteCharged(t *testing.T) {
	b := newBoard(t)
	if _, err := b.LoadSource(`
		ldr r0, seedaddr
		movs r1, #7
		str r1, [r0]
	end:
		b end
		.align 4
	seedaddr:
		.word 0x0800fc00
	`); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := b.CPU.Run(b.MustSymbol("end"), 100); err != nil {
		t.Fatal(err)
	}
	if b.FlashWrites != 1 {
		t.Fatalf("flash writes = %d, want 1", b.FlashWrites)
	}
	if b.CPU.Cycles < FlashWriteCycles {
		t.Errorf("cycles = %d, want >= %d (flash latency)", b.CPU.Cycles, FlashWriteCycles)
	}
	if got := b.SeedWord(); got != 7 {
		t.Errorf("seed word = %d, want 7", got)
	}
	// Flash survives reset.
	b.Reset()
	if got := b.SeedWord(); got != 7 {
		t.Errorf("seed word after reset = %d, want 7", got)
	}
}

func TestLoadRejectsOutOfFlash(t *testing.T) {
	b := newBoard(t)
	p, err := isa.Assemble(RAMBase, "nop")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Load(p); err == nil {
		t.Error("loading a RAM-based image into flash succeeded")
	}
}
