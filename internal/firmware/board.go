// Package firmware models the target board the paper glitches: an
// STM32-style Cortex-M0 microcontroller with flash, SRAM, a GPIO port used
// as the glitch trigger, and a flash-programming interface whose latency
// dominates the random-delay defense's boot cost.
//
// The memory map follows the paper's observed values: SP boots to the top
// of a 16 KiB SRAM at 0x2000_0000 (so the stacked values the paper reports,
// e.g. 0x20003FE8, arise naturally) and the trigger GPIO output data
// register is at 0x4800_0028.
package firmware

import (
	"fmt"

	"glitchlab/internal/emu"
	"glitchlab/internal/isa"
)

// Memory map constants.
const (
	FlashBase = 0x0800_0000
	FlashSize = 0x0001_0000 // 64 KiB
	RAMBase   = 0x2000_0000
	RAMSize   = 0x0000_4000 // 16 KiB
	StackTop  = RAMBase + RAMSize
	GPIOBase  = 0x4800_0000
	GPIOSize  = 0x0000_0400
	// TriggerAddr is the GPIO output data register the firmware writes to
	// raise the glitcher's trigger line (the paper's 0x48000028).
	TriggerAddr = GPIOBase + 0x28

	// SeedAddr is the flash word holding the random-delay defense's
	// persisted PRNG seed (last page of flash).
	SeedAddr = FlashBase + FlashSize - 0x400

	// FlashWriteCycles models the stall for programming one flash word
	// including the page-erase the seed update needs. STM32F3 flash
	// programming plus erase takes multiple milliseconds; at 48 MHz and
	// with the HAL's polling loops the paper measured a constant cost of
	// ~178k cycles for the seed update, which this reproduces.
	FlashWriteCycles = 88900
)

// Board is a reset-able microcontroller model.
type Board struct {
	Mem   *emu.Memory
	CPU   *emu.CPU
	flash *emu.Region

	prog *isa.Program

	// TriggerCount is the number of trigger writes observed since reset.
	TriggerCount int
	// TriggerCycle is the CPU cycle at which the most recent trigger
	// write retired.
	TriggerCycle uint64
	// OnTrigger, if set, is called at each trigger write.
	OnTrigger func(cycle uint64, count int)

	// FlashWrites counts stores into the flash region since reset (each
	// is charged FlashWriteCycles).
	FlashWrites int
}

// NewBoard creates a board with the standard memory map.
func NewBoard() (*Board, error) {
	mem := emu.NewMemory()
	// Flash is writable so the seed-update code can program it; writes
	// are charged the programming latency via the store hook.
	flash, err := mem.Map("flash", FlashBase, FlashSize,
		emu.PermRead|emu.PermWrite|emu.PermExec)
	if err != nil {
		return nil, err
	}
	if _, err := mem.Map("sram", RAMBase, RAMSize, emu.PermRead|emu.PermWrite); err != nil {
		return nil, err
	}
	if _, err := mem.Map("gpio", GPIOBase, GPIOSize, emu.PermRead|emu.PermWrite); err != nil {
		return nil, err
	}
	b := &Board{Mem: mem, CPU: emu.New(mem), flash: flash}
	b.CPU.Hooks.OnStore = b.onStore
	return b, nil
}

func (b *Board) onStore(addr, size, val uint32) {
	switch {
	case addr == TriggerAddr:
		b.TriggerCount++
		b.TriggerCycle = b.CPU.Cycles
		if b.OnTrigger != nil {
			b.OnTrigger(b.CPU.Cycles, b.TriggerCount)
		}
	case addr >= FlashBase && addr < FlashBase+FlashSize:
		b.FlashWrites++
		b.CPU.Cycles += FlashWriteCycles
	}
}

// Load writes a program image into flash. The program must be based within
// the flash region.
func (b *Board) Load(prog *isa.Program) error {
	if prog.Base < FlashBase || prog.Base+uint32(len(prog.Code)) > FlashBase+FlashSize {
		return fmt.Errorf("firmware: program at %#x does not fit in flash", prog.Base)
	}
	if err := b.Mem.Write(prog.Base, prog.Code); err != nil {
		return err
	}
	b.prog = prog
	return nil
}

// LoadSource assembles src at the flash base and loads it.
func (b *Board) LoadSource(src string) (*isa.Program, error) {
	prog, err := isa.Assemble(FlashBase, src)
	if err != nil {
		return nil, err
	}
	if err := b.Load(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// Reset returns the CPU to its boot state (SP at the top of SRAM, PC at the
// flash base), restores SRAM to its power-up pattern and clears trigger
// bookkeeping. Flash contents are preserved, as on real hardware.
//
// SRAM is deliberately not zeroed: real SRAM powers up holding
// pseudo-random garbage, and the paper's post-mortem register values
// (0x55, 0x68, 0xFF, ...) are stack residue read by corrupted loads. A
// zero-filled SRAM would make while(!a) artificially glitch-resistant,
// because wrong-address loads would all return zero. Firmware that needs
// zeroed memory zeroes its own .bss, exactly as on hardware.
func (b *Board) Reset() {
	b.CPU.Reset(StackTop, FlashBase)
	b.TriggerCount = 0
	b.TriggerCycle = 0
	b.FlashWrites = 0
	if ram, ok := b.Mem.Region(RAMBase, 4); ok {
		fillPowerUpPattern(ram.Data)
	}
	if gpio, ok := b.Mem.Region(GPIOBase, 4); ok {
		for i := range gpio.Data {
			gpio.Data[i] = 0
		}
	}
}

// fillPowerUpPattern writes the deterministic power-up garbage pattern.
// A fixed seed keeps every experiment exactly reproducible while giving
// the stack realistic non-zero residue.
func fillPowerUpPattern(data []byte) {
	x := uint64(0x5eed0f2a)
	for i := range data {
		x += 0x9e3779b97f4a7c15
		z := (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		data[i] = byte(z ^ (z >> 31))
	}
}

// Symbol returns a program symbol's address.
func (b *Board) Symbol(name string) (uint32, bool) {
	if b.prog == nil {
		return 0, false
	}
	return b.prog.SymbolAddr(name)
}

// MustSymbol is Symbol for symbols the caller knows exist; it panics on
// missing symbols, indicating a programming error in experiment setup.
func (b *Board) MustSymbol(name string) uint32 {
	a, ok := b.Symbol(name)
	if !ok {
		panic(fmt.Sprintf("firmware: undefined symbol %q", name))
	}
	return a
}

// SeedWord reads the persisted PRNG seed from flash.
func (b *Board) SeedWord() uint32 {
	v, _ := b.Mem.ReadWord(SeedAddr)
	return v
}
