package analyze_test

import (
	"strings"
	"testing"

	"glitchlab/internal/analyze"
	"glitchlab/internal/codegen"
	"glitchlab/internal/ir"
	"glitchlab/internal/isa"
	"glitchlab/internal/minic"
	"glitchlab/internal/passes"
)

// build compiles mini-C through lowering and instrumentation, optionally
// assembling an image, without going through the core facade.
func build(t *testing.T, src string, cfg passes.Config, withImage bool) *analyze.Target {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	chk, err := minic.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	var rep passes.Report
	if cfg.EnumRewrite {
		if err := passes.RewriteEnums(chk, &rep); err != nil {
			t.Fatal(err)
		}
	}
	mod, err := ir.Lower(chk)
	if err != nil {
		t.Fatal(err)
	}
	if err := passes.Instrument(mod, cfg, &rep); err != nil {
		t.Fatal(err)
	}
	tgt := &analyze.Target{Module: mod}
	if withImage {
		img, err := codegen.Build(mod, codegen.Options{Delay: cfg.Delay})
		if err != nil {
			t.Fatal(err)
		}
		tgt.Image = img
	}
	return tgt
}

func run(t *testing.T, tgt *analyze.Target, opts analyze.Options) *analyze.Result {
	t.Helper()
	res, err := analyze.Run(tgt, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// ruleFindings filters a result to one rule ID.
func ruleFindings(res *analyze.Result, id string) []analyze.Finding {
	var out []analyze.Finding
	for _, f := range res.Findings {
		if f.Rule == id {
			out = append(out, f)
		}
	}
	return out
}

const guardSrc = `
volatile unsigned int a;

void main(void) {
	unsigned int x = 5;
	while (x > 0) {
		x = x - 1;
	}
	if (x == a) {
		success();
	}
	halt();
}
`

func TestSPOFBranchRule(t *testing.T) {
	res := run(t, build(t, guardSrc, passes.None(), false), analyze.Options{})
	got := ruleFindings(res, "GL001")
	if len(got) < 2 {
		t.Fatalf("GL001 on unprotected guards: %d findings, want >= 2 (loop + if)", len(got))
	}
	for _, f := range got {
		if f.FixedBy != "branches" || f.Func != "main" || f.Block == "" {
			t.Errorf("GL001 finding malformed: %+v", f)
		}
	}

	hardened := run(t, build(t, guardSrc,
		passes.Config{Branches: true}, false), analyze.Options{})
	if left := ruleFindings(hardened, "GL001"); len(left) != 0 {
		t.Errorf("GL001 after branch hardening: %d findings remain: %v", len(left), left)
	}
}

func TestLoopExitRule(t *testing.T) {
	res := run(t, build(t, guardSrc, passes.None(), false), analyze.Options{})
	got := ruleFindings(res, "GL005")
	if len(got) != 1 {
		t.Fatalf("GL005 on unprotected loop: %d findings, want 1", len(got))
	}
	if got[0].FixedBy != "loops" {
		t.Errorf("GL005 FixedBy = %q, want loops", got[0].FixedBy)
	}

	hardened := run(t, build(t, guardSrc,
		passes.Config{Loops: true}, false), analyze.Options{})
	if left := ruleFindings(hardened, "GL005"); len(left) != 0 {
		t.Errorf("GL005 after loop hardening: %d findings remain: %v", len(left), left)
	}
}

const enumSrc = `
enum status { IDLE, ARMED, FIRED };

volatile unsigned int a;

unsigned int state(void) {
	if (a == 1) {
		return ARMED;
	}
	return IDLE;
}

void main(void) {
	if (state() == ARMED) {
		success();
	}
	halt();
}
`

func TestLowHammingRule(t *testing.T) {
	res := run(t, build(t, enumSrc, passes.None(), false), analyze.Options{})
	got := ruleFindings(res, "GL002")
	if len(got) != 2 {
		t.Fatalf("GL002 on sequential enum + 0/1 returns: %d findings, want 2", len(got))
	}
	var sawEnum, sawReturns bool
	for _, f := range got {
		switch f.FixedBy {
		case "enums":
			sawEnum = true
			if !strings.Contains(f.Hint, "0x") {
				t.Errorf("enum hint lacks RS suggestions: %q", f.Hint)
			}
		case "returns":
			sawReturns = true
			if f.Func != "state" {
				t.Errorf("returns finding on %q, want state", f.Func)
			}
		}
	}
	if !sawEnum || !sawReturns {
		t.Fatalf("GL002 variants: enum=%v returns=%v, want both", sawEnum, sawReturns)
	}

	// Each sub-shape is cleared by its own pass.
	fixed := run(t, build(t, enumSrc,
		passes.Config{EnumRewrite: true, Returns: true}, false), analyze.Options{})
	if left := ruleFindings(fixed, "GL002"); len(left) != 0 {
		t.Errorf("GL002 after enums+returns: %d findings remain: %v", len(left), left)
	}
}

func TestFailOpenRule(t *testing.T) {
	const failOpenSrc = `
volatile unsigned int bad;

void main(void) {
	if (bad) {
		halt();
	}
	success();
}
`
	res := run(t, build(t, failOpenSrc, passes.None(), false), analyze.Options{})
	if got := ruleFindings(res, "GL003"); len(got) != 1 {
		t.Fatalf("GL003 on fail-open guard: %d findings, want 1", len(got))
	}

	// The fail-closed version keeps the privileged call behind the taken
	// edge and must not be flagged.
	const failClosedSrc = `
volatile unsigned int ok;

void main(void) {
	if (ok) {
		success();
	}
	halt();
}
`
	res = run(t, build(t, failClosedSrc, passes.None(), false), analyze.Options{})
	if got := ruleFindings(res, "GL003"); len(got) != 0 {
		t.Fatalf("GL003 on fail-closed guard: %v, want none", got)
	}

	// Loop-exit fail-open: escaping while(!a) boots. Loop hardening moves
	// the exit behind a check block's taken edge, clearing the finding.
	const loopSrc = `
volatile unsigned int a;

void main(void) {
	while (!a) { }
	success();
}
`
	res = run(t, build(t, loopSrc, passes.None(), false), analyze.Options{})
	if got := ruleFindings(res, "GL003"); len(got) != 1 {
		t.Fatalf("GL003 on while(!a) exit: %d findings, want 1", len(got))
	}
	res = run(t, build(t, loopSrc, passes.Config{Loops: true}, false), analyze.Options{})
	if got := ruleFindings(res, "GL003"); len(got) != 0 {
		t.Fatalf("GL003 after loop hardening: %v, want none", got)
	}
}

const sensitiveSrc = `
volatile unsigned int uwTick;

void main(void) {
	while (1) {
		unsigned int t = uwTick;
		if (t == 0) {
			success();
		}
		uwTick = t + 1;
	}
}
`

func TestUnshadowedLoadRule(t *testing.T) {
	opts := analyze.Options{Sensitive: []string{"uwTick"}}
	res := run(t, build(t, sensitiveSrc, passes.None(), false), opts)
	got := ruleFindings(res, "GL004")
	if len(got) != 1 {
		t.Fatalf("GL004 on unshadowed load: %d findings, want 1", len(got))
	}
	if got[0].FixedBy != "integrity" {
		t.Errorf("GL004 FixedBy = %q, want integrity", got[0].FixedBy)
	}

	// Without the sensitive list nothing marks the global, so the rule
	// has nothing to check.
	res = run(t, build(t, sensitiveSrc, passes.None(), false), analyze.Options{})
	if len(ruleFindings(res, "GL004")) != 0 {
		t.Error("GL004 fired with no sensitive configuration")
	}

	protected := build(t, sensitiveSrc,
		passes.Config{Integrity: true, Sensitive: []string{"uwTick"}}, false)
	res = run(t, protected, opts)
	if left := ruleFindings(res, "GL004"); len(left) != 0 {
		t.Errorf("GL004 after integrity: %d findings remain: %v", len(left), left)
	}
}

func TestOneFlipBranchRule(t *testing.T) {
	res := run(t, build(t, guardSrc, passes.None(), true), analyze.Options{})
	got := ruleFindings(res, "GL006")
	if len(got) == 0 {
		t.Fatal("GL006 found no one-flip-vulnerable branch encodings in an unprotected image")
	}
	for _, f := range got {
		if f.Addr == 0 || f.Func == "" || f.Block == "" {
			t.Errorf("GL006 finding lacks location: %+v", f)
		}
	}

	hardened := run(t, build(t, guardSrc,
		passes.Config{Branches: true, Loops: true}, true), analyze.Options{})
	if left := ruleFindings(hardened, "GL006"); len(left) != 0 {
		t.Errorf("GL006 after branch+loop hardening: %d remain: %v", len(left), left)
	}
}

func TestImageRuleSkippedWithoutImage(t *testing.T) {
	res := run(t, build(t, guardSrc, passes.None(), false), analyze.Options{})
	found := false
	for _, id := range res.Skipped {
		if id == "GL006" {
			found = true
		}
	}
	if !found {
		t.Errorf("Skipped = %v, want GL006 listed on an image-less target", res.Skipped)
	}
	for _, m := range res.Ran {
		if m.ID == "GL006" {
			t.Error("GL006 reported as ran without an image")
		}
	}
}

func TestDisabledRules(t *testing.T) {
	res := run(t, build(t, guardSrc, passes.None(), false),
		analyze.Options{Disabled: []string{"GL001", "unhardened-loop-exit"}})
	if n := len(ruleFindings(res, "GL001")) + len(ruleFindings(res, "GL005")); n != 0 {
		t.Errorf("disabled rules still produced %d findings", n)
	}
	if len(res.Skipped) < 2 {
		t.Errorf("Skipped = %v, want both disabled rules listed", res.Skipped)
	}
}

func TestUnremoved(t *testing.T) {
	// Analyzing an unprotected module and claiming every pass ran must
	// surface the pass-owned findings as violations.
	res := run(t, build(t, guardSrc, passes.None(), false), analyze.Options{})
	violations := analyze.Unremoved(res, passes.All())
	if len(violations) == 0 {
		t.Fatal("Unremoved found nothing on an unprotected module under an all-passes config")
	}
	for _, f := range violations {
		if f.FixedBy == "" {
			t.Errorf("finding with no owning pass reported as unremoved: %+v", f)
		}
	}
	// Under the empty config nothing is owed.
	if v := analyze.Unremoved(res, passes.None()); len(v) != 0 {
		t.Errorf("Unremoved under None = %d findings, want 0", len(v))
	}
}

func TestResultAccessors(t *testing.T) {
	res := run(t, build(t, guardSrc, passes.None(), true), analyze.Options{})
	if sev := res.MaxSeverity(); sev != analyze.High {
		t.Errorf("MaxSeverity = %v, want high (GL001 present)", sev)
	}
	sum := res.Summary()
	for _, id := range res.DistinctRules() {
		if !strings.Contains(sum, id) {
			t.Errorf("Summary %q missing rule %s", sum, id)
		}
	}
	data, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"rule": "GL001"`, `"severity": "high"`, `"fixed_by": "branches"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JSON output missing %q", want)
		}
	}
}

// asmTarget assembles a hand-written code fragment into a Target whose
// module has a single main/entry block, so image rules can attribute
// addresses through the f_main_entry span. The success label marks the
// start of the (excluded) runtime, as codegen's layout does.
func asmTarget(t *testing.T, body string) *analyze.Target {
	t.Helper()
	prog, err := isa.Assemble(0x0800_0000, "main:\nf_main_entry:\n"+body+"\nsuccess:\n	nop\n")
	if err != nil {
		t.Fatal(err)
	}
	f := &ir.Func{Name: "main", Blocks: []*ir.Block{{
		Name:   "entry",
		Instrs: []*ir.Instr{{Op: ir.OpRet, A: ir.NoValue}},
	}}}
	return &analyze.Target{
		Module: &ir.Module{Funcs: []*ir.Func{f}},
		Image:  &codegen.Image{Prog: prog},
	}
}

func TestIndirectFlowRule(t *testing.T) {
	// Every compiled function returns through pop {r7, pc} — an unchecked
	// stack-loaded PC — so the unprotected build must flag GL007, and no
	// current defense pass removes it.
	res := run(t, build(t, guardSrc, passes.None(), true), analyze.Options{})
	got := ruleFindings(res, "GL007")
	if len(got) == 0 {
		t.Fatal("GL007 found no unchecked indirect transfers in a compiled image")
	}
	for _, f := range got {
		if f.Addr == 0 || f.Func == "" {
			t.Errorf("GL007 finding lacks location: %+v", f)
		}
		if f.FixedBy != "cfi" {
			t.Errorf("GL007 FixedBy = %q, want cfi (the future CFI pass)", f.FixedBy)
		}
	}
	defended := run(t, build(t, guardSrc, passes.All(), true), analyze.Options{})
	if len(ruleFindings(defended, "GL007")) == 0 {
		t.Error("GL007 disappeared under the current defenses, but none validates indirect targets")
	}
	// No enabled pass owns GL007 yet, so Unremoved must not claim it.
	for _, f := range analyze.Unremoved(defended, passes.All()) {
		if f.Rule == "GL007" {
			t.Errorf("GL007 reported as unremoved under a config with no CFI pass: %+v", f)
		}
	}
}

func TestIndirectFlowShapes(t *testing.T) {
	cases := []struct {
		name string
		body string
		want int
	}{
		{"bx unchecked", "	bx r3", 1},
		{"blx unchecked", "	blx r4", 1},
		{"pop into pc", "	pop {r7, pc}", 1},
		{"bx after cmp on target", "	cmp r3, #0\n	bx r3", 0},
		{"bx after cmp reg on target", "	cmp r0, r3\n	bx r3", 0},
		{"bx after cmp on other reg", "	cmp r0, #0\n	bx r3", 1},
		{"pop without pc", "	pop {r4, r7}", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := run(t, asmTarget(t, tc.body), analyze.Options{})
			if got := len(ruleFindings(res, "GL007")); got != tc.want {
				t.Errorf("GL007 on %q: %d findings, want %d", tc.body, got, tc.want)
			}
		})
	}
}

func TestSortFindingsDeterministic(t *testing.T) {
	want := []analyze.Finding{
		{Rule: "GL001", Func: "boot", Block: "entry", Instr: 2},
		{Rule: "GL001", Func: "boot", Block: "loop", Instr: 0},
		{Rule: "GL001", Func: "main", Block: "entry", Instr: 2},
		{Rule: "GL002", Detail: "enum mode", Instr: -1},
		{Rule: "GL002", Detail: "return codes of classify", Instr: -1},
		{Rule: "GL006", Func: "main", Block: "entry", Instr: -1, Addr: 0x8000010},
		{Rule: "GL006", Func: "main", Block: "entry", Instr: -1, Addr: 0x8000020},
	}
	// Feed the sorter from map iteration — the canonical source of
	// nondeterministic order — many times; the output must never vary.
	for trial := 0; trial < 50; trial++ {
		byKey := map[int]analyze.Finding{}
		for i, f := range want {
			byKey[i*7+trial] = f
		}
		var got []analyze.Finding
		for _, f := range byKey {
			got = append(got, f)
		}
		analyze.SortFindings(got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: position %d = %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestRunOutputStable renders the same target twice and requires identical
// bytes — the property corpus aggregation and golden files build on.
func TestRunOutputStable(t *testing.T) {
	tgt := build(t, guardSrc, passes.None(), true)
	a, err := analyze.Run(tgt, analyze.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := analyze.Run(tgt, analyze.Options{})
	if err != nil {
		t.Fatal(err)
	}
	aj, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Error("two runs over the same target rendered different JSON")
	}
}

func TestSeverityJSONRoundTrip(t *testing.T) {
	for _, sev := range []analyze.Severity{analyze.Info, analyze.Low, analyze.Medium, analyze.High} {
		data, err := sev.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var back analyze.Severity
		if err := back.UnmarshalJSON(data); err != nil {
			t.Fatal(err)
		}
		if back != sev {
			t.Errorf("severity %v round-tripped to %v", sev, back)
		}
	}
	var s analyze.Severity
	if err := s.UnmarshalJSON([]byte(`"fatal"`)); err == nil {
		t.Error("UnmarshalJSON accepted an unknown severity")
	}
}

func TestRulesVersionTracksRegistry(t *testing.T) {
	v := analyze.RulesVersion()
	for _, r := range analyze.Rules() {
		if !strings.Contains(v, r.Meta().ID) {
			t.Errorf("RulesVersion %q missing rule %s", v, r.Meta().ID)
		}
	}
	if !strings.Contains(v, "rev") {
		t.Errorf("RulesVersion %q carries no revision counter", v)
	}
}

func TestParseSeverity(t *testing.T) {
	for _, sev := range []analyze.Severity{analyze.Info, analyze.Low, analyze.Medium, analyze.High} {
		back, err := analyze.ParseSeverity(sev.String())
		if err != nil || back != sev {
			t.Errorf("ParseSeverity(%q) = %v, %v", sev.String(), back, err)
		}
	}
	if _, err := analyze.ParseSeverity("fatal"); err == nil {
		t.Error("ParseSeverity accepted an unknown name")
	}
}
