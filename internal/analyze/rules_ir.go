package analyze

import (
	"fmt"
	"strings"

	"glitchlab/internal/ir"
	"glitchlab/internal/passes"
	"glitchlab/internal/rs"
)

// isGRBlock reports whether every instruction in b was inserted by a
// defense pass.
func isGRBlock(b *ir.Block) bool {
	if len(b.Instrs) == 0 {
		return false
	}
	for _, in := range b.Instrs {
		if !in.GR {
			return false
		}
	}
	return true
}

// isRecheckBlock reports whether the named block is a GR redundant-check
// block: entirely pass-inserted, terminated by a conditional branch whose
// disagree edge goes to the detect block.
func isRecheckBlock(f *ir.Func, name string) bool {
	b, ok := f.Block(name)
	if !ok || !isGRBlock(b) {
		return false
	}
	term := b.Term()
	return term != nil && term.Op == ir.OpCondBr && term.FalseBlk == passes.DetectBlock
}

// spofBranch is GL001: a conditional branch whose taken edge leads straight
// to its target with no complemented re-check is a single point of failure
// — one corrupted compare or branch encoding decides the outcome alone
// (paper Section VI-B, branch redundancy).
type spofBranch struct{}

func (spofBranch) Meta() RuleMeta {
	return RuleMeta{
		ID: "GL001", Slug: "spof-branch",
		Doc: "conditional branch with no complemented re-check on the " +
			"taken edge (single point of failure)",
		Severity: High, FixedBy: "branches",
	}
}

func (r spofBranch) Analyze(t *Target, opts *Options) []Finding {
	var out []Finding
	for _, f := range t.Module.Funcs {
		for _, b := range f.Blocks {
			term := b.Term()
			if term == nil || term.Op != ir.OpCondBr || term.GR {
				continue
			}
			if isRecheckBlock(f, term.TrueBlk) {
				continue
			}
			fd := r.Meta().finding()
			fd.Func, fd.Block, fd.Instr = f.Name, b.Name, len(b.Instrs)-1
			fd.Detail = fmt.Sprintf(
				"taken edge of %q goes directly to %q: one glitched compare or branch decides the outcome",
				term, term.TrueBlk)
			fd.Hint = "enable branch redundancy (-defenses branches) to re-check the condition in complemented form"
			out = append(out, fd)
		}
	}
	return out
}

// loopExit is GL005: a loop guard whose exit edge is unchecked — glitching
// the guard once escapes the loop, the paper's while(!ready) anti-pattern
// (Section VI-B, loop hardening).
type loopExit struct{}

func (loopExit) Meta() RuleMeta {
	return RuleMeta{
		ID: "GL005", Slug: "unhardened-loop-exit",
		Doc:      "loop guard with no re-check on the exit edge",
		Severity: Medium, FixedBy: "loops",
	}
}

func (r loopExit) Analyze(t *Target, opts *Options) []Finding {
	var out []Finding
	for _, f := range t.Module.Funcs {
		for _, b := range f.Blocks {
			if !b.IsLoopHeader {
				continue
			}
			term := b.Term()
			if term == nil || term.Op != ir.OpCondBr || term.GR {
				continue
			}
			if isRecheckBlock(f, term.FalseBlk) {
				continue
			}
			fd := r.Meta().finding()
			fd.Func, fd.Block, fd.Instr = f.Name, b.Name, len(b.Instrs)-1
			fd.Detail = fmt.Sprintf(
				"loop exit edge of %q leaves to %q unchecked: one glitch escapes the loop",
				term, term.FalseBlk)
			fd.Hint = "enable loop hardening (-defenses loops) to re-check the guard on the exit edge"
			out = append(out, fd)
		}
	}
	return out
}

// lowHamming is GL002: security-relevant constant sets — enum values and
// constant-return codes — whose pairwise Hamming distance is small enough
// that few bit flips turn one valid value into another (paper Section VI-B,
// constant diversification).
type lowHamming struct{}

func (lowHamming) Meta() RuleMeta {
	return RuleMeta{
		ID: "GL002", Slug: "low-hamming-const",
		Doc: "enum or return-code constant set with pairwise Hamming " +
			"distance below the threshold",
		Severity: Medium, FixedBy: "enums",
	}
}

func (r lowHamming) Analyze(t *Target, opts *Options) []Finding {
	var out []Finding
	for _, e := range t.Module.Enums {
		if len(e.Values) < 2 {
			continue
		}
		d := rs.MinPairwiseDistance(e.Values)
		if d >= opts.MinHamming {
			continue
		}
		fd := r.Meta().finding()
		fd.Detail = fmt.Sprintf(
			"enum %s values have minimum pairwise Hamming distance %d (< %d): few flips map one member onto another",
			e.Name, d, opts.MinHamming)
		fd.Hint = suggestCodes(len(e.Values), "-defenses enums")
		out = append(out, fd)
	}
	for _, set := range passes.ReturnConstSets(t.Module) {
		if len(set.Values) < 2 {
			continue
		}
		d := rs.MinPairwiseDistance(set.Values)
		if d >= opts.MinHamming {
			continue
		}
		fd := r.Meta().finding()
		fd.Func = set.Func
		fd.FixedBy = "returns"
		fd.Detail = fmt.Sprintf(
			"return codes of %s have minimum pairwise Hamming distance %d (< %d)",
			set.Func, d, opts.MinHamming)
		if set.Hardenable {
			fd.Hint = suggestCodes(len(set.Values), "-defenses returns")
		} else {
			// A call site uses the result outside constant equality
			// comparisons, so the defense will skip this function.
			fd.FixedBy = ""
			fd.Hint = "call sites disqualify automatic hardening; diversify the return constants manually"
		}
		out = append(out, fd)
	}
	return out
}

// suggestCodes renders a replacement suggestion from the Reed-Solomon
// coder the defenses use.
func suggestCodes(count int, flag string) string {
	codes, err := rs.Codes(count)
	if err != nil {
		return fmt.Sprintf("diversify the constants (%s)", flag)
	}
	if len(codes) > 4 {
		codes = codes[:4]
	}
	parts := make([]string, len(codes))
	for i, c := range codes {
		parts[i] = fmt.Sprintf("%#08x", c)
	}
	return fmt.Sprintf("diversify with Reed-Solomon codes (%s), e.g. %s",
		flag, strings.Join(parts, ", "))
}

// failOpen is GL003: the privileged call is reachable from the function
// entry through fall-through edges alone (jumps and branch-not-taken
// edges), so the code fails open — corruption that skips or falls through
// guards reaches it (the paper's Section II secure-boot anti-pattern; the
// fix is writing the guard so privilege requires taken edges).
type failOpen struct{}

func (failOpen) Meta() RuleMeta {
	return RuleMeta{
		ID: "GL003", Slug: "fail-open-default",
		Doc: "privileged call reachable from entry via fall-through " +
			"(not-taken) edges alone",
		Severity: High,
	}
}

func (r failOpen) Analyze(t *Target, opts *Options) []Finding {
	priv := map[string]bool{}
	for _, name := range opts.Privileged {
		priv[name] = true
	}
	var out []Finding
	for _, f := range t.Module.Funcs {
		if len(f.Blocks) == 0 {
			continue
		}
		// Walk only the edges a fall-through-biased corruption follows:
		// unconditional jumps and the not-taken side of conditionals.
		reached := map[string]bool{f.Blocks[0].Name: true}
		work := []string{f.Blocks[0].Name}
		for len(work) > 0 {
			b, ok := f.Block(work[len(work)-1])
			work = work[:len(work)-1]
			if !ok {
				continue
			}
			term := b.Term()
			if term == nil {
				continue
			}
			var next []string
			switch term.Op {
			case ir.OpJmp:
				next = []string{term.Target}
			case ir.OpCondBr:
				next = []string{term.FalseBlk}
			}
			for _, n := range next {
				if !reached[n] {
					reached[n] = true
					work = append(work, n)
				}
			}
		}
		for _, b := range f.Blocks {
			if !reached[b.Name] {
				continue
			}
			for i, in := range b.Instrs {
				if in.Op != ir.OpCall || !priv[in.Callee] {
					continue
				}
				fd := r.Meta().finding()
				fd.Func, fd.Block, fd.Instr = f.Name, b.Name, i
				fd.Detail = fmt.Sprintf(
					"privileged call %s() is on the fall-through path from entry: the code fails open",
					in.Callee)
				fd.Hint = "invert the guard so the privileged path requires a taken edge (or harden the loop exit it escapes through)"
				out = append(out, fd)
			}
		}
	}
	return out
}

// unshadowedLoad is GL004: a load of a sensitive global that is not
// followed by verification against its inverted shadow copy — a single
// corrupted load (or a direct memory fault) goes undetected (paper
// Section VI-B, data integrity).
type unshadowedLoad struct{}

func (unshadowedLoad) Meta() RuleMeta {
	return RuleMeta{
		ID: "GL004", Slug: "unshadowed-sensitive-load",
		Doc:      "load of a sensitive global without shadow verification",
		Severity: Medium, FixedBy: "integrity",
	}
}

func (r unshadowedLoad) Analyze(t *Target, opts *Options) []Finding {
	sens := map[string]bool{}
	for _, name := range opts.Sensitive {
		sens[name] = true
	}
	for _, g := range t.Module.Globals {
		if g.Sensitive {
			sens[g.Name] = true
		}
	}
	var out []Finding
	for _, f := range t.Module.Funcs {
		for _, b := range f.Blocks {
			for i, in := range b.Instrs {
				if in.Op != ir.OpLoadG || in.GR || !sens[in.GName] {
					continue
				}
				if shadowVerified(t.Module, b, i) {
					continue
				}
				fd := r.Meta().finding()
				fd.Func, fd.Block, fd.Instr = f.Name, b.Name, i
				fd.Detail = fmt.Sprintf(
					"load of sensitive global %s is not verified against a shadow copy",
					in.GName)
				fd.Hint = fmt.Sprintf(
					"enable data integrity for it (-defenses integrity -sensitive %s)",
					in.GName)
				out = append(out, fd)
			}
		}
	}
	return out
}

// shadowVerified reports whether the load at b.Instrs[i] is immediately
// followed by pass-inserted verification that reads its shadow global.
func shadowVerified(m *ir.Module, b *ir.Block, i int) bool {
	g, ok := m.Global(b.Instrs[i].GName)
	if !ok || g.Shadow == "" {
		return false
	}
	for j := i + 1; j < len(b.Instrs); j++ {
		in := b.Instrs[j]
		if !in.GR {
			return false // verification must precede any further real code
		}
		if in.Op == ir.OpLoadG && in.GName == g.Shadow {
			return true
		}
	}
	return false
}
