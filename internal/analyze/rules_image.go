package analyze

import (
	"fmt"
	"sort"

	"glitchlab/internal/ir"
	"glitchlab/internal/isa"
)

// oneFlipBranch is GL006: an emitted conditional-branch encoding in an
// unprotected block that a single bit flip under a hardware fault model
// turns into a different control transfer (a different condition or
// target, an unconditional branch, or silent fall-through) — the static
// counterpart of the Section IV emulation campaign, which found exactly
// these one-flip corruptions dominating glitch successes.
type oneFlipBranch struct{}

func (oneFlipBranch) Meta() RuleMeta {
	return RuleMeta{
		ID: "GL006", Slug: "one-flip-branch",
		Doc: "emitted branch encoding one bit flip away from a " +
			"different control transfer, with no redundant check",
		Severity: Medium, NeedsImage: true, FixedBy: "branches",
	}
}

func (r oneFlipBranch) Analyze(t *Target, opts *Options) []Finding {
	prog := t.Image.Prog
	spans := buildSpans(t.Module, prog)
	var out []Finding
	for _, addr := range prog.InstAddrs {
		in, ok := prog.InstAt(addr)
		if !ok || in.Op != isa.OpBCond {
			continue
		}
		sp := spans.locate(addr)
		if sp == nil || sp.covered {
			// Boot/runtime code, or a block a redundant check backs up.
			continue
		}
		hw := uint16(in.Raw)
		// The halfword after the branch: if a flip turns the branch into
		// a 32-bit prefix, the CPU pairs it with this word.
		var next uint16
		if off := int(addr - prog.Base); off+4 <= len(prog.Code) {
			next = uint16(prog.Code[off+2]) | uint16(prog.Code[off+3])<<8
		}
		total, silent := 0, 0
		for _, model := range opts.Models {
			for bit := 0; bit < 16; bit++ {
				mut := model.Apply(hw, 1<<bit)
				if mut == hw {
					continue
				}
				total++
				if silentTransfer(in, mut, next) {
					silent++
				}
			}
		}
		if silent == 0 {
			continue
		}
		fd := r.Meta().finding()
		fd.Func, fd.Block, fd.Addr = sp.fn, sp.blk, addr
		fd.Detail = fmt.Sprintf(
			"%d of %d single-bit flips turn %s (%#04x) into a different control transfer undetected",
			silent, total, in, hw)
		fd.Hint = "a redundant check behind the branch (-defenses branches) catches the diverted path"
		out = append(out, fd)
	}
	return out
}

// silentTransfer reports whether the mutated encoding changes the
// branch's control transfer without raising a fault the CPU would detect.
// next is the halfword following the branch in memory.
func silentTransfer(orig isa.Inst, mut, next uint16) bool {
	if isa.Is32Bit(mut) {
		// Became a 32-bit prefix: silent only if pairing with the next
		// word forms a valid BL that carries control away.
		return isa.Decode(mut, next).Op == isa.OpBL
	}
	d := isa.Decode(mut, 0)
	switch d.Op {
	case isa.OpInvalid, isa.OpUDF, isa.OpSVC, isa.OpBKPT:
		return false // faults or traps: detected, not silent
	case isa.OpBCond:
		return d.Cond != orig.Cond || d.Imm != orig.Imm
	default:
		// Unconditional branches jump away; anything else (a data op)
		// silently falls through where the branch should have decided.
		return true
	}
}

// span attributes an address range of the emitted code to an IR block.
type span struct {
	addr    uint32
	fn, blk string
	covered bool
}

type spanIndex struct {
	spans []span
	lo    uint32 // first function's start
	hi    uint32 // end of the last function (start of the runtime)
}

// buildSpans maps emitted code addresses back to IR blocks using the
// per-block labels the code generator emits (f_<func>_<block>), and marks
// blocks whose control flow a GR check already guards.
func buildSpans(m *ir.Module, prog *isa.Program) *spanIndex {
	idx := &spanIndex{}
	if end, ok := prog.SymbolAddr("success"); ok {
		idx.hi = end // the runtime follows the last function
	}
	first := true
	for _, f := range m.Funcs {
		if start, ok := prog.SymbolAddr(f.Name); ok && (first || start < idx.lo) {
			idx.lo = start
			first = false
		}
		for _, b := range f.Blocks {
			addr, ok := prog.SymbolAddr(fmt.Sprintf("f_%s_%s", f.Name, b.Name))
			if !ok {
				continue
			}
			idx.spans = append(idx.spans, span{
				addr: addr, fn: f.Name, blk: b.Name,
				covered: blockCovered(f, b),
			})
		}
	}
	sort.Slice(idx.spans, func(i, j int) bool {
		return idx.spans[i].addr < idx.spans[j].addr
	})
	return idx
}

// locate returns the block span containing addr, or nil for boot or
// runtime code.
func (idx *spanIndex) locate(addr uint32) *span {
	if addr < idx.lo || (idx.hi != 0 && addr >= idx.hi) {
		return nil
	}
	i := sort.Search(len(idx.spans), func(i int) bool {
		return idx.spans[i].addr > addr
	})
	if i == 0 {
		return nil
	}
	return &idx.spans[i-1]
}

// blockCovered reports whether a corrupted branch inside b is backed up by
// pass-inserted redundancy: the block is itself GR-inserted (check blocks
// verify each other by construction), its terminator is a GR verification
// branching to detect on disagreement, or its taken edge re-enters a GR
// check block.
func blockCovered(f *ir.Func, b *ir.Block) bool {
	if isGRBlock(b) {
		return true
	}
	term := b.Term()
	if term == nil || term.Op != ir.OpCondBr {
		return false
	}
	if term.GR {
		// Integrity verification inserted mid-block: its conditional
		// branch is itself the redundant check.
		return true
	}
	return isRecheckBlock(f, term.TrueBlk)
}
