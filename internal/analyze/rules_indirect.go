package analyze

import (
	"fmt"

	"glitchlab/internal/isa"
)

// indirectFlow is GL007: an indirect or computed control transfer in the
// emitted code — a BX/BLX through a register, or a POP that loads the
// program counter from the stack — with no check of the transfer target
// beforehand. A glitch that corrupts the register, the stacked return
// address, or the load itself diverts control without any architectural
// fault, and none of GlitchResistor's defenses re-validate the destination.
// This is the shape the fault-CFI successor literature (FIPAC,
// SCRAMBLE-CFI) protects with running control-flow signatures; the finding
// is attributed to the future "cfi" pass (ROADMAP item 4) so that pass can
// claim it through Unremoved once it exists.
type indirectFlow struct{}

func (indirectFlow) Meta() RuleMeta {
	return RuleMeta{
		ID: "GL007", Slug: "unchecked-indirect-flow",
		Doc: "indirect control transfer (bx/blx reg, pop into pc) with " +
			"no preceding target check",
		Severity: Medium, NeedsImage: true, FixedBy: "cfi",
	}
}

// checkWindow is how many emitted instructions before an indirect transfer
// the rule scans for a comparison involving the target register. A CFI
// epilogue validates the target immediately before transferring, so a
// short window recognizes it without crediting unrelated compares.
const checkWindow = 4

func (r indirectFlow) Analyze(t *Target, opts *Options) []Finding {
	prog := t.Image.Prog
	spans := buildSpans(t.Module, prog)
	var out []Finding
	for i, addr := range prog.InstAddrs {
		in, ok := prog.InstAt(addr)
		if !ok {
			continue
		}
		var detail string
		switch {
		case in.Op == isa.OpBX || in.Op == isa.OpBLX:
			if targetChecked(prog, i, in.Rm) {
				continue
			}
			detail = fmt.Sprintf(
				"%s transfers control through %s with no preceding check of the target",
				in, in.Rm)
		case in.Op == isa.OpPOP && in.Regs&(1<<8) != 0:
			detail = fmt.Sprintf(
				"%s loads the program counter from the stack unverified: a corrupted return address diverts control silently",
				in)
		default:
			continue
		}
		sp := spans.locate(addr)
		if sp == nil {
			continue // boot or runtime code, not the audited module
		}
		fd := r.Meta().finding()
		fd.Func, fd.Block, fd.Addr = sp.fn, sp.blk, addr
		fd.Detail = detail
		fd.Hint = "no current pass validates indirect targets; a control-flow-integrity " +
			"pass (running-signature CFI) is required to detect diverted transfers"
		out = append(out, fd)
	}
	return out
}

// targetChecked reports whether one of the checkWindow instructions
// preceding index i in the emitted stream compares the named register —
// the shape a CFI-style epilogue uses to validate an indirect target
// before transferring through it.
func targetChecked(prog *isa.Program, i int, target isa.Reg) bool {
	for j := i - 1; j >= 0 && j >= i-checkWindow; j-- {
		in, ok := prog.InstAt(prog.InstAddrs[j])
		if !ok {
			continue
		}
		switch in.Op {
		case isa.OpCMPImm:
			if in.Rn == target {
				return true
			}
		case isa.OpCMPReg, isa.OpCMPHi:
			if in.Rn == target || in.Rm == target {
				return true
			}
		}
	}
	return false
}
