// Package corpus is fleet glitchlint: it walks a directory tree of mini-C
// firmware units, compiles and lints every unit under a matrix of defense
// configurations, and aggregates one deterministic JSON report — the
// "secure-boot firmware CI" surface the single-program linter cannot
// serve. Re-lints are incremental: per-unit findings are cached under a
// content-hash key (see cache.go), so touching one file out of hundreds
// re-lints exactly that file.
//
// Determinism is the load-bearing contract: the same corpus produces
// byte-identical reports whether the lint ran cold or from a warm cache,
// serially or sharded across workers. Cache hit/miss statistics therefore
// live outside the report (Stats, obs counters), never inside it.
package corpus

import (
	"context"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"glitchlab/internal/analyze"
	"glitchlab/internal/core"
	"glitchlab/internal/obs"
	"glitchlab/internal/passes"
	"glitchlab/internal/runctl"
)

// Options configures one fleet lint.
type Options struct {
	// Root is the directory walked (recursively) for *.c units.
	Root string
	// Configs is the defense matrix each unit is linted under. Default:
	// the paper's full evaluation matrix, core.DefenseConfigs(Sensitive).
	Configs []passes.Config
	// Analyze tunes the per-unit analyzer (sensitive globals, disabled
	// rules, …) exactly as the single-program linter does.
	Analyze analyze.Options
	// Workers shards units across goroutines; <= 1 lints serially. Output
	// is byte-identical either way.
	Workers int
	// CachePath persists per-unit findings across runs; "" disables the
	// cache.
	CachePath string
	// RulesVersion overrides the rule-set version folded into the cache
	// stamp. Default analyze.RulesVersion(); tests use it to prove a rule
	// edit invalidates cached entries.
	RulesVersion string
	// Progress, when set, is called after each unit completes (under a
	// lock: it may be called from worker goroutines, but never
	// concurrently).
	Progress func(done, total int)
	// Obs receives the corpus counters; default obs.Default.
	Obs *obs.Registry
}

// withDefaults resolves unset options.
func (o Options) withDefaults() Options {
	if o.Configs == nil {
		o.Configs = core.DefenseConfigs(o.Analyze.Sensitive...)
	}
	if o.RulesVersion == "" {
		o.RulesVersion = analyze.RulesVersion()
	}
	if o.Obs == nil {
		o.Obs = obs.Default
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	return o
}

// BuildReport is one unit linted under one defense configuration.
type BuildReport struct {
	Config string `json:"config"`
	// Error records a build or analysis failure; Findings is empty then.
	Error string `json:"error,omitempty"`
	// Unremoved counts findings an enabled defense pass should have
	// removed — each one a defense bug (see analyze.Unremoved).
	Unremoved int               `json:"unremoved"`
	Findings  []analyze.Finding `json:"findings"`
}

// BuildIssue is one build worth surfacing in the fleet summary: it failed,
// or an enabled defense pass left findings it owns.
type BuildIssue struct {
	Config    string `json:"config"`
	Error     string `json:"error,omitempty"`
	Unremoved int    `json:"unremoved,omitempty"`
}

// UnitSummary is a unit's precomputed aggregate, cached alongside the raw
// builds so totals and rendering never decode per-finding detail.
type UnitSummary struct {
	Builds       int            `json:"builds"`
	FailedBuilds int            `json:"failed_builds"`
	Findings     int            `json:"findings"`
	Unremoved    int            `json:"unremoved"`
	ByRule       map[string]int `json:"by_rule,omitempty"`
	BySeverity   map[string]int `json:"by_severity,omitempty"`
	Issues       []BuildIssue   `json:"issues,omitempty"`
}

// UnitReport is one firmware unit's lint across the whole defense matrix.
// Builds holds the marshaled []BuildReport verbatim — on a warm run it is
// spliced from the cache byte-for-byte, which is both why warm reports are
// guaranteed identical to cold ones and why warm lints skip finding-level
// decoding entirely. Use DecodeBuilds for typed access.
type UnitReport struct {
	// Path is slash-separated and relative to the corpus root.
	Path string `json:"path"`
	// Hash is the hex SHA-256 of the unit source.
	Hash   string          `json:"hash"`
	Builds json.RawMessage `json:"builds"`
	// Summary feeds Totals and the human renderer; the JSON schema keeps
	// per-unit aggregates out (they are derivable from builds).
	Summary UnitSummary `json:"-"`
}

// DecodeBuilds decodes the unit's per-configuration build reports.
func (u *UnitReport) DecodeBuilds() ([]BuildReport, error) {
	var builds []BuildReport
	if err := json.Unmarshal(u.Builds, &builds); err != nil {
		return nil, fmt.Errorf("corpus: unit %s: %w", u.Path, err)
	}
	return builds, nil
}

// Totals is the corpus-level rollup.
type Totals struct {
	Units        int `json:"units"`
	Builds       int `json:"builds"`
	FailedBuilds int `json:"failed_builds"`
	Findings     int `json:"findings"`
	Unremoved    int `json:"unremoved"`
	// ByRule counts findings per rule ID across every (unit, config)
	// build; BySeverity rolls the same findings up by severity name.
	ByRule     map[string]int `json:"by_rule"`
	BySeverity map[string]int `json:"by_severity"`
}

// Report is the deterministic fleet-lint artifact. Two runs over the same
// corpus with the same options render byte-identical JSON regardless of
// cache state or worker count.
type Report struct {
	// Stamp identifies the rule-set version and option matrix the
	// findings were produced under (the cache stamp, see Stamp).
	Stamp  string       `json:"stamp"`
	Units  []UnitReport `json:"units"`
	Totals Totals       `json:"totals"`
}

// Stats describes how a lint executed. It is intentionally not part of
// Report: cold and warm runs differ here and nowhere else.
type Stats struct {
	Units        int
	CacheHits    int
	CacheMisses  int
	FailedBuilds int
}

// String renders the stats line the CLI prints to stderr.
func (s Stats) String() string {
	return fmt.Sprintf("units=%d cache_hits=%d cache_misses=%d failed_builds=%d",
		s.Units, s.CacheHits, s.CacheMisses, s.FailedBuilds)
}

// Result pairs the report with its execution stats.
type Result struct {
	Report *Report
	Stats  Stats
}

// Lint walks the corpus and lints every unit, consulting and updating the
// cache when one is configured. On context cancellation the cache is
// flushed with every unit completed so far and the error wraps
// runctl.ErrInterrupted — a re-run with the same cache resumes where the
// lint stopped and still produces the byte-identical full report.
func Lint(ctx context.Context, o Options) (*Result, error) {
	o = o.withDefaults()
	units, err := walk(o.Root)
	if err != nil {
		return nil, err
	}
	if len(units) == 0 {
		return nil, fmt.Errorf("corpus: no *.c units under %s", o.Root)
	}
	stamp := Stamp(o.RulesVersion, o.Configs, o.Analyze)
	cached := loadCache(o.CachePath, stamp)

	reports := make([]*UnitReport, len(units))
	keys := make([]string, len(units))
	entries := make([]*cacheEntry, len(units))
	var hits, misses, done atomic.Int64
	var progressMu sync.Mutex

	lintOne := func(i int) error {
		data, err := os.ReadFile(filepath.Join(o.Root, filepath.FromSlash(units[i])))
		if err != nil {
			return fmt.Errorf("corpus: %w", err)
		}
		key := unitKey(stamp, data)
		keys[i] = key
		entry, ok := cached[key]
		if ok {
			hits.Add(1)
		} else {
			misses.Add(1)
			entry, err = lintUnit(string(data), o.Configs, o.Analyze)
			if err != nil {
				return err
			}
		}
		entries[i] = entry
		reports[i] = &UnitReport{
			Path: units[i], Hash: entry.Hash,
			Builds: entry.Builds, Summary: entry.Summary,
		}
		if o.Progress != nil {
			progressMu.Lock()
			o.Progress(int(done.Add(1)), len(units))
			progressMu.Unlock()
		} else {
			done.Add(1)
		}
		return nil
	}

	lintErr := forEachUnit(ctx, o.Workers, len(units), lintOne)

	// Persist what completed — misses just computed and hits still in
	// use — pruning entries for units that vanished or changed. An
	// interrupted run keeps its partial progress this way. A fully-warm
	// run with nothing pruned skips the rewrite: re-serializing an
	// unchanged multi-megabyte cache would dominate warm lint time.
	if o.CachePath != "" {
		keep := make(map[string]*cacheEntry, len(units))
		for i, e := range entries {
			if e != nil {
				keep[keys[i]] = e
			}
		}
		if lintErr != nil {
			// Interrupted: the keys of unprocessed units were never
			// computed, so pruning would evict entries that are still
			// valid. Merge the partial progress into the old cache.
			for k, e := range cached {
				if _, ok := keep[k]; !ok {
					keep[k] = e
				}
			}
		}
		if misses.Load() > 0 || len(keep) != len(cached) {
			if err := saveCache(o.CachePath, stamp, keep); err != nil && lintErr == nil {
				lintErr = err
			}
		}
	}

	stats := Stats{
		Units:       len(units),
		CacheHits:   int(hits.Load()),
		CacheMisses: int(misses.Load()),
	}
	if lintErr != nil {
		return &Result{Stats: stats}, lintErr
	}

	rep := &Report{Stamp: stamp, Units: make([]UnitReport, len(units))}
	for i, ur := range reports {
		rep.Units[i] = *ur
	}
	rep.Totals = totals(rep.Units)
	stats.FailedBuilds = rep.Totals.FailedBuilds
	observe(o.Obs, rep, stats)
	return &Result{Report: rep, Stats: stats}, nil
}

// forEachUnit runs fn(i) for every unit index, serially or across workers,
// stopping at context cancellation. The first fn error wins; cancellation
// is reported wrapping runctl.ErrInterrupted.
func forEachUnit(ctx context.Context, workers, n int, fn func(int) error) error {
	interrupted := func() error {
		return fmt.Errorf("corpus: lint interrupted (%w): %v",
			runctl.ErrInterrupted, ctx.Err())
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return interrupted()
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
		firstEr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				if err := fn(i); err != nil {
					errOnce.Do(func() { firstEr = err })
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return firstEr
	}
	if ctx.Err() != nil {
		return interrupted()
	}
	return nil
}

// walk collects the corpus units: every *.c file under root, as sorted
// slash-separated relative paths.
func walk(root string) ([]string, error) {
	var units []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(d.Name(), ".c") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		units = append(units, filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("corpus: walk %s: %w", root, err)
	}
	sort.Strings(units)
	return units, nil
}

// lintUnit compiles and analyzes one unit under every configuration of
// the matrix, returning the cache entry: the marshaled build reports plus
// their aggregate summary.
func lintUnit(src string, cfgs []passes.Config, aopts analyze.Options) (*cacheEntry, error) {
	var builds []BuildReport
	for _, cfg := range cfgs {
		br := BuildReport{Config: cfg.Name(), Findings: []analyze.Finding{}}
		res, err := core.Compile(src, cfg)
		if err != nil {
			br.Error = err.Error()
		} else {
			ares, err := analyze.Run(
				&analyze.Target{Module: res.Module, Image: res.Image}, aopts)
			if err != nil {
				br.Error = err.Error()
			} else {
				if ares.Findings != nil {
					br.Findings = ares.Findings
				}
				br.Unremoved = len(analyze.Unremoved(ares, cfg))
			}
		}
		builds = append(builds, br)
	}
	raw, err := json.Marshal(builds)
	if err != nil {
		return nil, fmt.Errorf("corpus: encode builds: %w", err)
	}
	return &cacheEntry{
		Hash: sourceHash(src), Summary: summarize(builds), Builds: raw,
	}, nil
}

// summarize aggregates one unit's builds into its summary.
func summarize(builds []BuildReport) UnitSummary {
	s := UnitSummary{Builds: len(builds)}
	for _, b := range builds {
		if b.Error != "" {
			s.FailedBuilds++
		}
		s.Findings += len(b.Findings)
		s.Unremoved += b.Unremoved
		for _, f := range b.Findings {
			if s.ByRule == nil {
				s.ByRule = map[string]int{}
				s.BySeverity = map[string]int{}
			}
			s.ByRule[f.Rule]++
			s.BySeverity[f.Severity.String()]++
		}
		if b.Error != "" || b.Unremoved > 0 {
			s.Issues = append(s.Issues, BuildIssue{
				Config: b.Config, Error: b.Error, Unremoved: b.Unremoved,
			})
		}
	}
	return s
}

// totals aggregates the corpus rollup from the per-unit summaries.
func totals(units []UnitReport) Totals {
	t := Totals{
		Units:      len(units),
		ByRule:     map[string]int{},
		BySeverity: map[string]int{},
	}
	for _, u := range units {
		s := u.Summary
		t.Builds += s.Builds
		t.FailedBuilds += s.FailedBuilds
		t.Findings += s.Findings
		t.Unremoved += s.Unremoved
		for rule, n := range s.ByRule {
			t.ByRule[rule] += n
		}
		for sev, n := range s.BySeverity {
			t.BySeverity[sev] += n
		}
	}
	return t
}

// observe publishes the run's counters: units linted, cache traffic, and
// per-rule finding totals.
func observe(reg *obs.Registry, rep *Report, stats Stats) {
	reg.Counter("corpus.units_total").Add(uint64(stats.Units))
	reg.Counter("corpus.units_linted_total").Add(uint64(stats.CacheMisses))
	reg.Counter("corpus.cache_hits_total").Add(uint64(stats.CacheHits))
	reg.Counter("corpus.cache_misses_total").Add(uint64(stats.CacheMisses))
	reg.Counter("corpus.builds_total").Add(uint64(rep.Totals.Builds))
	reg.Counter("corpus.failed_builds_total").Add(uint64(rep.Totals.FailedBuilds))
	reg.Counter("corpus.findings_total").Add(uint64(rep.Totals.Findings))
	for rule, n := range rep.Totals.ByRule {
		reg.Counter("corpus.findings." + rule + "_total").Add(uint64(n))
	}
}
