// difftest corpus unit 107 (GenMiniC seed 108); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 1;
unsigned int seed = 0xef799c98;

unsigned int classify(unsigned int v) {
	if (v % 4 == 0) { return M0; }
	if (v % 3 == 1) { return M0; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M1) { acc = acc + 182; }
	else { acc = acc ^ 0x1b6f; }
	trigger();
	acc = acc | 0x8000;
	state = state + (acc & 0xef);
	if (state == 0) { state = 1; }
	out = acc ^ state;
	halt();
}
