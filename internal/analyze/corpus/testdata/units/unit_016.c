// difftest corpus unit 016 (GenMiniC seed 17); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 7;
unsigned int seed = 0x644d7af7;

unsigned int classify(unsigned int v) {
	if (v % 4 == 0) { return M0; }
	if (v % 3 == 1) { return M0; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	{ unsigned int n0 = 7;
	while (n0 != 0) { acc = acc + n0 * 5; n0 = n0 - 1; } }
	{ unsigned int n1 = 8;
	while (n1 != 0) { acc = acc + n1 * 1; n1 = n1 - 1; } }
	if (classify(acc) == M2) { acc = acc + 198; }
	else { acc = acc ^ 0x6417; }
	out = acc ^ state;
	halt();
}
