// difftest corpus unit 019 (GenMiniC seed 20); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 1;
unsigned int seed = 0xbe83e51;

unsigned int classify(unsigned int v) {
	if (v % 4 == 0) { return M4; }
	if (v % 2 == 1) { return M3; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	for (unsigned int i0 = 0; i0 < 7; i0 = i0 + 1) {
		acc = acc * 10 + i0;
		state = state ^ (acc >> 6);
	}
	{ unsigned int n1 = 3;
	while (n1 != 0) { acc = acc + n1 * 4; n1 = n1 - 1; } }
	for (unsigned int i2 = 0; i2 < 8; i2 = i2 + 1) {
		acc = acc * 7 + i2;
		state = state ^ (acc >> 6);
	}
	out = acc ^ state;
	halt();
}
