// difftest corpus unit 083 (GenMiniC seed 84); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 6;
unsigned int seed = 0x5c4afe4b;

unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return M0; }
	if (v % 2 == 1) { return M3; }
	return M4;
}
void main(void) {
	unsigned int acc = seed;
	acc = (acc % 7) * 5 + (acc & 0xffff) / 9;
	acc = (acc % 5) * 4 + (acc & 0xffff) / 6;
	trigger();
	acc = acc | 0x200000;
	acc = (acc % 9) * 9 + (acc & 0xffff) / 4;
	out = acc ^ state;
	halt();
}
