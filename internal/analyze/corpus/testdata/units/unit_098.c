// difftest corpus unit 098 (GenMiniC seed 99); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 4;
unsigned int seed = 0xabfcf085;

unsigned int classify(unsigned int v) {
	if (v % 4 == 0) { return M3; }
	if (v % 4 == 1) { return M1; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	for (unsigned int i0 = 0; i0 < 7; i0 = i0 + 1) {
		acc = acc * 9 + i0;
		state = state ^ (acc >> 10);
	}
	trigger();
	acc = acc | 0x8;
	state = state + (acc & 0x89);
	if (state == 0) { state = 1; }
	if (classify(acc) == M2) { acc = acc + 154; }
	else { acc = acc ^ 0x6bb3; }
	out = acc ^ state;
	halt();
}
