// difftest corpus unit 028 (GenMiniC seed 29); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 4;
unsigned int seed = 0xce928565;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M2; }
	if (v % 3 == 1) { return M0; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	acc = (acc % 2) * 4 + (acc & 0xffff) / 9;
	{ unsigned int n1 = 1;
	while (n1 != 0) { acc = acc + n1 * 3; n1 = n1 - 1; } }
	trigger();
	acc = acc | 0x80;
	{ unsigned int n3 = 9;
	while (n3 != 0) { acc = acc + n3 * 6; n3 = n3 - 1; } }
	{ unsigned int n4 = 2;
	while (n4 != 0) { acc = acc + n4 * 1; n4 = n4 - 1; } }
	acc = (acc % 7) * 9 + (acc & 0xffff) / 9;
	out = acc ^ state;
	halt();
}
