// difftest corpus unit 047 (GenMiniC seed 48); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 7;
unsigned int seed = 0x2f820093;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M0; }
	if (v % 6 == 1) { return M3; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M2) { acc = acc + 169; }
	else { acc = acc ^ 0x34f5; }
	acc = (acc % 9) * 7 + (acc & 0xffff) / 4;
	{ unsigned int n2 = 3;
	while (n2 != 0) { acc = acc + n2 * 3; n2 = n2 - 1; } }
	out = acc ^ state;
	halt();
}
