// difftest corpus unit 108 (GenMiniC seed 109); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 2;
unsigned int seed = 0xd26c76c2;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M3; }
	if (v % 6 == 1) { return M1; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	state = state + (acc & 0x49);
	if (state == 0) { state = 1; }
	acc = (acc % 9) * 8 + (acc & 0xffff) / 3;
	trigger();
	acc = acc | 0x8000;
	for (unsigned int i3 = 0; i3 < 4; i3 = i3 + 1) {
		acc = acc * 8 + i3;
		state = state ^ (acc >> 6);
	}
	out = acc ^ state;
	halt();
}
