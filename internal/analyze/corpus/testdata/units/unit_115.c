// difftest corpus unit 115 (GenMiniC seed 116); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 3;
unsigned int seed = 0xc71da141;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M2; }
	if (v % 5 == 1) { return M2; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M0) { acc = acc + 88; }
	else { acc = acc ^ 0x80a; }
	acc = (acc % 5) * 8 + (acc & 0xffff) / 2;
	{ unsigned int n2 = 3;
	while (n2 != 0) { acc = acc + n2 * 1; n2 = n2 - 1; } }
	{ unsigned int n3 = 4;
	while (n3 != 0) { acc = acc + n3 * 5; n3 = n3 - 1; } }
	out = acc ^ state;
	halt();
}
