// difftest corpus unit 012 (GenMiniC seed 13); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 6;
unsigned int seed = 0x127767de;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M1; }
	if (v % 6 == 1) { return M2; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	for (unsigned int i0 = 0; i0 < 7; i0 = i0 + 1) {
		acc = acc * 3 + i0;
		state = state ^ (acc >> 14);
	}
	state = state + (acc & 0x29);
	if (state == 0) { state = 1; }
	acc = (acc % 9) * 3 + (acc & 0xffff) / 6;
	out = acc ^ state;
	halt();
}
