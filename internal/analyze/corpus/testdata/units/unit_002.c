// difftest corpus unit 002 (GenMiniC seed 3); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 4;
unsigned int seed = 0xf12453c1;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M0; }
	if (v % 4 == 1) { return M0; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	state = state + (acc & 0x44);
	if (state == 0) { state = 1; }
	for (unsigned int i1 = 0; i1 < 4; i1 = i1 + 1) {
		acc = acc * 15 + i1;
		state = state ^ (acc >> 14);
	}
	trigger();
	acc = acc | 0x4000000;
	out = acc ^ state;
	halt();
}
