// difftest corpus unit 020 (GenMiniC seed 21); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 3;
unsigned int seed = 0xeed9cca6;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M1; }
	if (v % 3 == 1) { return M1; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	acc = (acc % 4) * 6 + (acc & 0xffff) / 2;
	if (classify(acc) == M2) { acc = acc + 40; }
	else { acc = acc ^ 0xbbef; }
	trigger();
	acc = acc | 0x40;
	out = acc ^ state;
	halt();
}
