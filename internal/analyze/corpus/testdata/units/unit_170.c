// difftest corpus unit 170 (GenMiniC seed 171); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 6;
unsigned int seed = 0x74f124bc;

unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return M0; }
	if (v % 6 == 1) { return M2; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	trigger();
	acc = acc | 0x20000000;
	{ unsigned int n1 = 6;
	while (n1 != 0) { acc = acc + n1 * 5; n1 = n1 - 1; } }
	{ unsigned int n2 = 4;
	while (n2 != 0) { acc = acc + n2 * 4; n2 = n2 - 1; } }
	trigger();
	acc = acc | 0x10;
	out = acc ^ state;
	halt();
}
