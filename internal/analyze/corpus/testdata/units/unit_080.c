// difftest corpus unit 080 (GenMiniC seed 81); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 1;
unsigned int seed = 0xaed12ef3;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M3; }
	if (v % 2 == 1) { return M4; }
	return M3;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M0) { acc = acc + 92; }
	else { acc = acc ^ 0x3232; }
	for (unsigned int i1 = 0; i1 < 3; i1 = i1 + 1) {
		acc = acc * 7 + i1;
		state = state ^ (acc >> 6);
	}
	trigger();
	acc = acc | 0x2;
	out = acc ^ state;
	halt();
}
