// difftest corpus unit 013 (GenMiniC seed 14); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 4;
unsigned int seed = 0x75f79607;

unsigned int classify(unsigned int v) {
	if (v % 5 == 0) { return M0; }
	if (v % 6 == 1) { return M0; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	{ unsigned int n0 = 5;
	while (n0 != 0) { acc = acc + n0 * 5; n0 = n0 - 1; } }
	trigger();
	acc = acc | 0x40000;
	{ unsigned int n2 = 6;
	while (n2 != 0) { acc = acc + n2 * 2; n2 = n2 - 1; } }
	if (classify(acc) == M0) { acc = acc + 91; }
	else { acc = acc ^ 0xb004; }
	state = state + (acc & 0x73);
	if (state == 0) { state = 1; }
	trigger();
	acc = acc | 0x20000;
	out = acc ^ state;
	halt();
}
