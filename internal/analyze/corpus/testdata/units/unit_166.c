// difftest corpus unit 166 (GenMiniC seed 167); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 1;
unsigned int seed = 0x284f5f9b;

unsigned int classify(unsigned int v) {
	if (v % 4 == 0) { return M2; }
	if (v % 5 == 1) { return M1; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	trigger();
	acc = acc | 0x10;
	{ unsigned int n1 = 9;
	while (n1 != 0) { acc = acc + n1 * 3; n1 = n1 - 1; } }
	acc = (acc % 7) * 3 + (acc & 0xffff) / 4;
	state = state + (acc & 0x2b);
	if (state == 0) { state = 1; }
	out = acc ^ state;
	halt();
}
