// difftest corpus unit 140 (GenMiniC seed 141); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 2;
unsigned int seed = 0xe43b8f8;

unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return M2; }
	if (v % 6 == 1) { return M0; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	{ unsigned int n0 = 3;
	while (n0 != 0) { acc = acc + n0 * 4; n0 = n0 - 1; } }
	state = state + (acc & 0xaf);
	if (state == 0) { state = 1; }
	acc = (acc % 7) * 9 + (acc & 0xffff) / 5;
	trigger();
	acc = acc | 0x80000;
	for (unsigned int i4 = 0; i4 < 2; i4 = i4 + 1) {
		acc = acc * 14 + i4;
		state = state ^ (acc >> 1);
	}
	out = acc ^ state;
	halt();
}
