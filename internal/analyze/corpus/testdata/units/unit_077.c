// difftest corpus unit 077 (GenMiniC seed 78); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 5;
unsigned int seed = 0x88b79124;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M3; }
	if (v % 5 == 1) { return M2; }
	return M3;
}
void main(void) {
	unsigned int acc = seed;
	{ unsigned int n0 = 5;
	while (n0 != 0) { acc = acc + n0 * 6; n0 = n0 - 1; } }
	trigger();
	acc = acc | 0x4;
	state = state + (acc & 0xb0);
	if (state == 0) { state = 1; }
	acc = (acc % 5) * 9 + (acc & 0xffff) / 4;
	out = acc ^ state;
	halt();
}
