// difftest corpus unit 034 (GenMiniC seed 35); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 1;
unsigned int seed = 0x63ef39e8;

unsigned int classify(unsigned int v) {
	if (v % 4 == 0) { return M2; }
	if (v % 5 == 1) { return M2; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M2) { acc = acc + 145; }
	else { acc = acc ^ 0x843b; }
	acc = (acc % 3) * 4 + (acc & 0xffff) / 6;
	state = state + (acc & 0x79);
	if (state == 0) { state = 1; }
	out = acc ^ state;
	halt();
}
