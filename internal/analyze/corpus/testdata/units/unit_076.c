// difftest corpus unit 076 (GenMiniC seed 77); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 4;
unsigned int seed = 0x23a45f1b;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M2; }
	if (v % 5 == 1) { return M0; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	acc = (acc % 4) * 9 + (acc & 0xffff) / 8;
	state = state + (acc & 0x42);
	if (state == 0) { state = 1; }
	trigger();
	acc = acc | 0x1;
	out = acc ^ state;
	halt();
}
