// difftest corpus unit 137 (GenMiniC seed 138); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 3;
unsigned int seed = 0x6820214c;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M4; }
	if (v % 3 == 1) { return M4; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	acc = (acc % 6) * 9 + (acc & 0xffff) / 5;
	state = state + (acc & 0xc2);
	if (state == 0) { state = 1; }
	for (unsigned int i2 = 0; i2 < 2; i2 = i2 + 1) {
		acc = acc * 4 + i2;
		state = state ^ (acc >> 4);
	}
	state = state + (acc & 0x0);
	if (state == 0) { state = 1; }
	out = acc ^ state;
	halt();
}
