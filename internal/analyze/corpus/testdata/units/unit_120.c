// difftest corpus unit 120 (GenMiniC seed 121); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 7;
unsigned int seed = 0xfd6fcac3;

unsigned int classify(unsigned int v) {
	if (v % 4 == 0) { return M0; }
	if (v % 6 == 1) { return M0; }
	return M3;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M0) { acc = acc + 15; }
	else { acc = acc ^ 0xfbd0; }
	acc = (acc % 7) * 7 + (acc & 0xffff) / 6;
	{ unsigned int n2 = 6;
	while (n2 != 0) { acc = acc + n2 * 2; n2 = n2 - 1; } }
	for (unsigned int i3 = 0; i3 < 5; i3 = i3 + 1) {
		acc = acc * 9 + i3;
		state = state ^ (acc >> 11);
	}
	out = acc ^ state;
	halt();
}
