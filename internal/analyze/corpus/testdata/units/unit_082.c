// difftest corpus unit 082 (GenMiniC seed 83); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 6;
unsigned int seed = 0xb84fbf26;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M0; }
	if (v % 5 == 1) { return M2; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	acc = (acc % 7) * 9 + (acc & 0xffff) / 8;
	trigger();
	acc = acc | 0x1;
	if (classify(acc) == M0) { acc = acc + 140; }
	else { acc = acc ^ 0xa661; }
	out = acc ^ state;
	halt();
}
