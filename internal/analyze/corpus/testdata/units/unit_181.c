// difftest corpus unit 181 (GenMiniC seed 182); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 6;
unsigned int seed = 0x3fe61b31;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M3; }
	if (v % 5 == 1) { return M2; }
	return M3;
}
void main(void) {
	unsigned int acc = seed;
	for (unsigned int i0 = 0; i0 < 4; i0 = i0 + 1) {
		acc = acc * 12 + i0;
		state = state ^ (acc >> 8);
	}
	acc = (acc % 2) * 3 + (acc & 0xffff) / 1;
	acc = (acc % 9) * 3 + (acc & 0xffff) / 6;
	state = state + (acc & 0xe5);
	if (state == 0) { state = 1; }
	out = acc ^ state;
	halt();
}
