// difftest corpus unit 087 (GenMiniC seed 88); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 6;
unsigned int seed = 0xa6e2f15f;

unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return M2; }
	if (v % 4 == 1) { return M2; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	for (unsigned int i0 = 0; i0 < 2; i0 = i0 + 1) {
		acc = acc * 8 + i0;
		state = state ^ (acc >> 1);
	}
	state = state + (acc & 0x86);
	if (state == 0) { state = 1; }
	trigger();
	acc = acc | 0x8;
	out = acc ^ state;
	halt();
}
