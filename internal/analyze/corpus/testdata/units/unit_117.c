// difftest corpus unit 117 (GenMiniC seed 118); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 1;
unsigned int seed = 0xda5a933;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M3; }
	if (v % 2 == 1) { return M4; }
	return M4;
}
void main(void) {
	unsigned int acc = seed;
	state = state + (acc & 0x38);
	if (state == 0) { state = 1; }
	state = state + (acc & 0xf);
	if (state == 0) { state = 1; }
	acc = (acc % 5) * 6 + (acc & 0xffff) / 9;
	for (unsigned int i3 = 0; i3 < 5; i3 = i3 + 1) {
		acc = acc * 7 + i3;
		state = state ^ (acc >> 14);
	}
	trigger();
	acc = acc | 0x4000000;
	out = acc ^ state;
	halt();
}
