// difftest corpus unit 142 (GenMiniC seed 143); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 1;
unsigned int seed = 0x543a90ee;

unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return M2; }
	if (v % 6 == 1) { return M0; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	acc = (acc % 4) * 5 + (acc & 0xffff) / 6;
	acc = (acc % 4) * 4 + (acc & 0xffff) / 7;
	state = state + (acc & 0xdf);
	if (state == 0) { state = 1; }
	if (classify(acc) == M3) { acc = acc + 108; }
	else { acc = acc ^ 0x3050; }
	state = state + (acc & 0x76);
	if (state == 0) { state = 1; }
	out = acc ^ state;
	halt();
}
