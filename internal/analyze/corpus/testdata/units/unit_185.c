// difftest corpus unit 185 (GenMiniC seed 186); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 4;
unsigned int seed = 0xccf30859;

unsigned int classify(unsigned int v) {
	if (v % 5 == 0) { return M1; }
	if (v % 3 == 1) { return M2; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M0) { acc = acc + 51; }
	else { acc = acc ^ 0xd452; }
	acc = (acc % 4) * 11 + (acc & 0xffff) / 2;
	{ unsigned int n2 = 8;
	while (n2 != 0) { acc = acc + n2 * 5; n2 = n2 - 1; } }
	state = state + (acc & 0x96);
	if (state == 0) { state = 1; }
	{ unsigned int n4 = 8;
	while (n4 != 0) { acc = acc + n4 * 2; n4 = n4 - 1; } }
	out = acc ^ state;
	halt();
}
