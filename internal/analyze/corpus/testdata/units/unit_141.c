// difftest corpus unit 141 (GenMiniC seed 142); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 1;
unsigned int seed = 0xf0b44f24;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M1; }
	if (v % 5 == 1) { return M0; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	{ unsigned int n0 = 2;
	while (n0 != 0) { acc = acc + n0 * 4; n0 = n0 - 1; } }
	for (unsigned int i1 = 0; i1 < 2; i1 = i1 + 1) {
		acc = acc * 15 + i1;
		state = state ^ (acc >> 4);
	}
	for (unsigned int i2 = 0; i2 < 5; i2 = i2 + 1) {
		acc = acc * 6 + i2;
		state = state ^ (acc >> 5);
	}
	acc = (acc % 10) * 8 + (acc & 0xffff) / 6;
	out = acc ^ state;
	halt();
}
