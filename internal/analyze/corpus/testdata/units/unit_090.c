// difftest corpus unit 090 (GenMiniC seed 91); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 4;
unsigned int seed = 0x944173d0;

unsigned int classify(unsigned int v) {
	if (v % 4 == 0) { return M2; }
	if (v % 3 == 1) { return M1; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M0) { acc = acc + 126; }
	else { acc = acc ^ 0xd5a3; }
	for (unsigned int i1 = 0; i1 < 7; i1 = i1 + 1) {
		acc = acc * 8 + i1;
		state = state ^ (acc >> 1);
	}
	state = state + (acc & 0x4f);
	if (state == 0) { state = 1; }
	acc = (acc % 9) * 3 + (acc & 0xffff) / 3;
	out = acc ^ state;
	halt();
}
