// difftest corpus unit 061 (GenMiniC seed 62); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 6;
unsigned int seed = 0xdd0d4dc4;

unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return M4; }
	if (v % 2 == 1) { return M0; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	state = state + (acc & 0xf2);
	if (state == 0) { state = 1; }
	if (classify(acc) == M5) { acc = acc + 2; }
	else { acc = acc ^ 0xdc30; }
	trigger();
	acc = acc | 0x2000000;
	out = acc ^ state;
	halt();
}
