// difftest corpus unit 003 (GenMiniC seed 4); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 2;
unsigned int seed = 0x583e5ceb;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M1; }
	if (v % 4 == 1) { return M0; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	for (unsigned int i0 = 0; i0 < 3; i0 = i0 + 1) {
		acc = acc * 10 + i0;
		state = state ^ (acc >> 3);
	}
	trigger();
	acc = acc | 0x400;
	acc = (acc % 4) * 7 + (acc & 0xffff) / 3;
	{ unsigned int n3 = 8;
	while (n3 != 0) { acc = acc + n3 * 5; n3 = n3 - 1; } }
	if (classify(acc) == M0) { acc = acc + 57; }
	else { acc = acc ^ 0xc894; }
	{ unsigned int n5 = 8;
	while (n5 != 0) { acc = acc + n5 * 4; n5 = n5 - 1; } }
	out = acc ^ state;
	halt();
}
