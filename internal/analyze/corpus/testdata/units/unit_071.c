// difftest corpus unit 071 (GenMiniC seed 72); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 5;
unsigned int seed = 0xf35404e1;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M2; }
	if (v % 6 == 1) { return M0; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	acc = (acc % 8) * 7 + (acc & 0xffff) / 8;
	for (unsigned int i1 = 0; i1 < 2; i1 = i1 + 1) {
		acc = acc * 9 + i1;
		state = state ^ (acc >> 4);
	}
	{ unsigned int n2 = 8;
	while (n2 != 0) { acc = acc + n2 * 5; n2 = n2 - 1; } }
	state = state + (acc & 0x70);
	if (state == 0) { state = 1; }
	out = acc ^ state;
	halt();
}
