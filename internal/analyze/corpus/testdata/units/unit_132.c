// difftest corpus unit 132 (GenMiniC seed 133); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 4;
unsigned int seed = 0x65c87312;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M0; }
	if (v % 5 == 1) { return M2; }
	return M3;
}
void main(void) {
	unsigned int acc = seed;
	{ unsigned int n0 = 2;
	while (n0 != 0) { acc = acc + n0 * 1; n0 = n0 - 1; } }
	for (unsigned int i1 = 0; i1 < 5; i1 = i1 + 1) {
		acc = acc * 7 + i1;
		state = state ^ (acc >> 8);
	}
	for (unsigned int i2 = 0; i2 < 3; i2 = i2 + 1) {
		acc = acc * 11 + i2;
		state = state ^ (acc >> 1);
	}
	for (unsigned int i3 = 0; i3 < 2; i3 = i3 + 1) {
		acc = acc * 5 + i3;
		state = state ^ (acc >> 4);
	}
	out = acc ^ state;
	halt();
}
