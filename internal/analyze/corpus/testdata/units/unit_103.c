// difftest corpus unit 103 (GenMiniC seed 104); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 1;
unsigned int seed = 0x9e268f08;

unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return M0; }
	if (v % 6 == 1) { return M2; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	trigger();
	acc = acc | 0x400000;
	state = state + (acc & 0x8c);
	if (state == 0) { state = 1; }
	state = state + (acc & 0xc5);
	if (state == 0) { state = 1; }
	trigger();
	acc = acc | 0x40000;
	out = acc ^ state;
	halt();
}
