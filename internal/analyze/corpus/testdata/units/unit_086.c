// difftest corpus unit 086 (GenMiniC seed 87); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 2;
unsigned int seed = 0x437a2436;

unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return M5; }
	if (v % 6 == 1) { return M1; }
	return M5;
}
void main(void) {
	unsigned int acc = seed;
	{ unsigned int n0 = 5;
	while (n0 != 0) { acc = acc + n0 * 3; n0 = n0 - 1; } }
	{ unsigned int n1 = 1;
	while (n1 != 0) { acc = acc + n1 * 3; n1 = n1 - 1; } }
	for (unsigned int i2 = 0; i2 < 8; i2 = i2 + 1) {
		acc = acc * 11 + i2;
		state = state ^ (acc >> 12);
	}
	{ unsigned int n3 = 9;
	while (n3 != 0) { acc = acc + n3 * 3; n3 = n3 - 1; } }
	out = acc ^ state;
	halt();
}
