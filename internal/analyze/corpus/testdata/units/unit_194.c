// difftest corpus unit 194 (GenMiniC seed 195); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 6;
unsigned int seed = 0x47f72e2c;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M1; }
	if (v % 4 == 1) { return M2; }
	return M5;
}
void main(void) {
	unsigned int acc = seed;
	acc = (acc % 3) * 4 + (acc & 0xffff) / 4;
	trigger();
	acc = acc | 0x100000;
	if (classify(acc) == M1) { acc = acc + 51; }
	else { acc = acc ^ 0x867f; }
	trigger();
	acc = acc | 0x1000;
	for (unsigned int i4 = 0; i4 < 7; i4 = i4 + 1) {
		acc = acc * 7 + i4;
		state = state ^ (acc >> 9);
	}
	if (classify(acc) == M2) { acc = acc + 198; }
	else { acc = acc ^ 0x3b52; }
	out = acc ^ state;
	halt();
}
