// difftest corpus unit 033 (GenMiniC seed 34); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 3;
unsigned int seed = 0xbee710be;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M3; }
	if (v % 2 == 1) { return M2; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	state = state + (acc & 0xce);
	if (state == 0) { state = 1; }
	{ unsigned int n1 = 7;
	while (n1 != 0) { acc = acc + n1 * 3; n1 = n1 - 1; } }
	{ unsigned int n2 = 1;
	while (n2 != 0) { acc = acc + n2 * 1; n2 = n2 - 1; } }
	trigger();
	acc = acc | 0x10000000;
	out = acc ^ state;
	halt();
}
