// difftest corpus unit 029 (GenMiniC seed 30); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 4;
unsigned int seed = 0x324cbbae;

unsigned int classify(unsigned int v) {
	if (v % 5 == 0) { return M1; }
	if (v % 4 == 1) { return M2; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	for (unsigned int i0 = 0; i0 < 4; i0 = i0 + 1) {
		acc = acc * 3 + i0;
		state = state ^ (acc >> 7);
	}
	acc = (acc % 3) * 7 + (acc & 0xffff) / 4;
	if (classify(acc) == M0) { acc = acc + 196; }
	else { acc = acc ^ 0x69dd; }
	for (unsigned int i3 = 0; i3 < 5; i3 = i3 + 1) {
		acc = acc * 8 + i3;
		state = state ^ (acc >> 3);
	}
	out = acc ^ state;
	halt();
}
