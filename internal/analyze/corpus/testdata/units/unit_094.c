// difftest corpus unit 094 (GenMiniC seed 95); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 2;
unsigned int seed = 0x2363f6ef;

unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return M4; }
	if (v % 5 == 1) { return M2; }
	return M3;
}
void main(void) {
	unsigned int acc = seed;
	{ unsigned int n0 = 2;
	while (n0 != 0) { acc = acc + n0 * 5; n0 = n0 - 1; } }
	acc = (acc % 6) * 11 + (acc & 0xffff) / 2;
	acc = (acc % 6) * 9 + (acc & 0xffff) / 6;
	{ unsigned int n3 = 9;
	while (n3 != 0) { acc = acc + n3 * 4; n3 = n3 - 1; } }
	out = acc ^ state;
	halt();
}
