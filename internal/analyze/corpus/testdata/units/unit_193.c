// difftest corpus unit 193 (GenMiniC seed 194); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 7;
unsigned int seed = 0xa8c1e503;

unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return M3; }
	if (v % 5 == 1) { return M3; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	state = state + (acc & 0xdd);
	if (state == 0) { state = 1; }
	if (classify(acc) == M0) { acc = acc + 57; }
	else { acc = acc ^ 0x9434; }
	acc = (acc % 5) * 7 + (acc & 0xffff) / 6;
	for (unsigned int i3 = 0; i3 < 6; i3 = i3 + 1) {
		acc = acc * 15 + i3;
		state = state ^ (acc >> 7);
	}
	if (classify(acc) == M2) { acc = acc + 28; }
	else { acc = acc ^ 0xfa78; }
	out = acc ^ state;
	halt();
}
