// difftest corpus unit 110 (GenMiniC seed 111); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 4;
unsigned int seed = 0xd57f39a8;

unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return M0; }
	if (v % 5 == 1) { return M1; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	state = state + (acc & 0xe4);
	if (state == 0) { state = 1; }
	trigger();
	acc = acc | 0x8000;
	trigger();
	acc = acc | 0x10000000;
	out = acc ^ state;
	halt();
}
