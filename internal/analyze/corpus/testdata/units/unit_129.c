// difftest corpus unit 129 (GenMiniC seed 130); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 5;
unsigned int seed = 0x782d6aa3;

unsigned int classify(unsigned int v) {
	if (v % 5 == 0) { return M2; }
	if (v % 5 == 1) { return M1; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	acc = (acc % 6) * 11 + (acc & 0xffff) / 1;
	{ unsigned int n1 = 2;
	while (n1 != 0) { acc = acc + n1 * 5; n1 = n1 - 1; } }
	trigger();
	acc = acc | 0x800000;
	trigger();
	acc = acc | 0x800;
	for (unsigned int i4 = 0; i4 < 2; i4 = i4 + 1) {
		acc = acc * 5 + i4;
		state = state ^ (acc >> 13);
	}
	out = acc ^ state;
	halt();
}
