// difftest corpus unit 067 (GenMiniC seed 68); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 5;
unsigned int seed = 0x70b15d4b;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M1; }
	if (v % 6 == 1) { return M1; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	trigger();
	acc = acc | 0x20000;
	if (classify(acc) == M4) { acc = acc + 160; }
	else { acc = acc ^ 0x746e; }
	for (unsigned int i2 = 0; i2 < 3; i2 = i2 + 1) {
		acc = acc * 7 + i2;
		state = state ^ (acc >> 3);
	}
	trigger();
	acc = acc | 0x10000000;
	out = acc ^ state;
	halt();
}
