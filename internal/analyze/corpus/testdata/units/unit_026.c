// difftest corpus unit 026 (GenMiniC seed 27); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 2;
unsigned int seed = 0x83f15332;

unsigned int classify(unsigned int v) {
	if (v % 5 == 0) { return M0; }
	if (v % 6 == 1) { return M4; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M3) { acc = acc + 22; }
	else { acc = acc ^ 0x5280; }
	{ unsigned int n1 = 9;
	while (n1 != 0) { acc = acc + n1 * 5; n1 = n1 - 1; } }
	trigger();
	acc = acc | 0x4000000;
	if (classify(acc) == M2) { acc = acc + 153; }
	else { acc = acc ^ 0x8430; }
	acc = (acc % 5) * 3 + (acc & 0xffff) / 6;
	if (classify(acc) == M1) { acc = acc + 161; }
	else { acc = acc ^ 0xb7a9; }
	out = acc ^ state;
	halt();
}
