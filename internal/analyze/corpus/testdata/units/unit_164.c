// difftest corpus unit 164 (GenMiniC seed 165); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 1;
unsigned int seed = 0xe1412f79;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M1; }
	if (v % 3 == 1) { return M0; }
	return M3;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M1) { acc = acc + 57; }
	else { acc = acc ^ 0xcadd; }
	acc = (acc % 3) * 10 + (acc & 0xffff) / 9;
	state = state + (acc & 0xf8);
	if (state == 0) { state = 1; }
	for (unsigned int i3 = 0; i3 < 6; i3 = i3 + 1) {
		acc = acc * 15 + i3;
		state = state ^ (acc >> 15);
	}
	out = acc ^ state;
	halt();
}
