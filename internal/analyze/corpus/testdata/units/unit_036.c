// difftest corpus unit 036 (GenMiniC seed 37); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 3;
unsigned int seed = 0xa683560d;

unsigned int classify(unsigned int v) {
	if (v % 5 == 0) { return M0; }
	if (v % 2 == 1) { return M1; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M0) { acc = acc + 128; }
	else { acc = acc ^ 0x3e20; }
	trigger();
	acc = acc | 0x200;
	trigger();
	acc = acc | 0x400000;
	if (classify(acc) == M3) { acc = acc + 31; }
	else { acc = acc ^ 0x47ba; }
	if (classify(acc) == M4) { acc = acc + 7; }
	else { acc = acc ^ 0xfb87; }
	{ unsigned int n5 = 5;
	while (n5 != 0) { acc = acc + n5 * 2; n5 = n5 - 1; } }
	out = acc ^ state;
	halt();
}
