// difftest corpus unit 001 (GenMiniC seed 2); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 2;
unsigned int seed = 0xd2e51b8;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M4; }
	if (v % 6 == 1) { return M0; }
	return M4;
}
void main(void) {
	unsigned int acc = seed;
	for (unsigned int i0 = 0; i0 < 7; i0 = i0 + 1) {
		acc = acc * 3 + i0;
		state = state ^ (acc >> 1);
	}
	acc = (acc % 4) * 5 + (acc & 0xffff) / 2;
	for (unsigned int i2 = 0; i2 < 8; i2 = i2 + 1) {
		acc = acc * 4 + i2;
		state = state ^ (acc >> 6);
	}
	for (unsigned int i3 = 0; i3 < 5; i3 = i3 + 1) {
		acc = acc * 15 + i3;
		state = state ^ (acc >> 6);
	}
	state = state + (acc & 0xbf);
	if (state == 0) { state = 1; }
	state = state + (acc & 0x89);
	if (state == 0) { state = 1; }
	out = acc ^ state;
	halt();
}
