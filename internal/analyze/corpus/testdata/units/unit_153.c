// difftest corpus unit 153 (GenMiniC seed 154); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 4;
unsigned int seed = 0x1a4604f3;

unsigned int classify(unsigned int v) {
	if (v % 4 == 0) { return M4; }
	if (v % 5 == 1) { return M5; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	for (unsigned int i0 = 0; i0 < 3; i0 = i0 + 1) {
		acc = acc * 3 + i0;
		state = state ^ (acc >> 1);
	}
	trigger();
	acc = acc | 0x2;
	trigger();
	acc = acc | 0x2000;
	{ unsigned int n3 = 8;
	while (n3 != 0) { acc = acc + n3 * 4; n3 = n3 - 1; } }
	{ unsigned int n4 = 9;
	while (n4 != 0) { acc = acc + n4 * 6; n4 = n4 - 1; } }
	out = acc ^ state;
	halt();
}
