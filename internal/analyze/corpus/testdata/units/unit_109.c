// difftest corpus unit 109 (GenMiniC seed 110); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 4;
unsigned int seed = 0x31fb148e;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M2; }
	if (v % 6 == 1) { return M0; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	acc = (acc % 5) * 11 + (acc & 0xffff) / 9;
	acc = (acc % 4) * 4 + (acc & 0xffff) / 3;
	state = state + (acc & 0xc3);
	if (state == 0) { state = 1; }
	trigger();
	acc = acc | 0x1000000;
	out = acc ^ state;
	halt();
}
