// difftest corpus unit 043 (GenMiniC seed 44); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 7;
unsigned int seed = 0xdeb1e4fb;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M0; }
	if (v % 2 == 1) { return M3; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	for (unsigned int i0 = 0; i0 < 8; i0 = i0 + 1) {
		acc = acc * 6 + i0;
		state = state ^ (acc >> 10);
	}
	for (unsigned int i1 = 0; i1 < 6; i1 = i1 + 1) {
		acc = acc * 7 + i1;
		state = state ^ (acc >> 11);
	}
	state = state + (acc & 0x77);
	if (state == 0) { state = 1; }
	for (unsigned int i3 = 0; i3 < 8; i3 = i3 + 1) {
		acc = acc * 6 + i3;
		state = state ^ (acc >> 12);
	}
	for (unsigned int i4 = 0; i4 < 5; i4 = i4 + 1) {
		acc = acc * 14 + i4;
		state = state ^ (acc >> 9);
	}
	if (classify(acc) == M0) { acc = acc + 40; }
	else { acc = acc ^ 0x7e35; }
	out = acc ^ state;
	halt();
}
