// difftest corpus unit 092 (GenMiniC seed 93); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 2;
unsigned int seed = 0xd74b7ac2;

unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return M4; }
	if (v % 4 == 1) { return M0; }
	return M5;
}
void main(void) {
	unsigned int acc = seed;
	acc = (acc % 2) * 4 + (acc & 0xffff) / 4;
	for (unsigned int i1 = 0; i1 < 6; i1 = i1 + 1) {
		acc = acc * 7 + i1;
		state = state ^ (acc >> 15);
	}
	acc = (acc % 2) * 6 + (acc & 0xffff) / 1;
	{ unsigned int n3 = 7;
	while (n3 != 0) { acc = acc + n3 * 6; n3 = n3 - 1; } }
	out = acc ^ state;
	halt();
}
