// difftest corpus unit 168 (GenMiniC seed 169); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 1;
unsigned int seed = 0x31e1428a;

unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return M0; }
	if (v % 2 == 1) { return M3; }
	return M3;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M0) { acc = acc + 25; }
	else { acc = acc ^ 0xe6cf; }
	for (unsigned int i1 = 0; i1 < 5; i1 = i1 + 1) {
		acc = acc * 9 + i1;
		state = state ^ (acc >> 5);
	}
	for (unsigned int i2 = 0; i2 < 2; i2 = i2 + 1) {
		acc = acc * 12 + i2;
		state = state ^ (acc >> 13);
	}
	trigger();
	acc = acc | 0x2000000;
	out = acc ^ state;
	halt();
}
