// difftest corpus unit 041 (GenMiniC seed 42); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 3;
unsigned int seed = 0x9aa5e508;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M1; }
	if (v % 5 == 1) { return M1; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M1) { acc = acc + 168; }
	else { acc = acc ^ 0x3dcf; }
	acc = (acc % 7) * 3 + (acc & 0xffff) / 9;
	trigger();
	acc = acc | 0x8000;
	out = acc ^ state;
	halt();
}
