// difftest corpus unit 085 (GenMiniC seed 86); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 4;
unsigned int seed = 0xa05a242d;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M1; }
	if (v % 3 == 1) { return M0; }
	return M4;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M0) { acc = acc + 64; }
	else { acc = acc ^ 0xc5fd; }
	if (classify(acc) == M3) { acc = acc + 84; }
	else { acc = acc ^ 0xa3e7; }
	trigger();
	acc = acc | 0x10;
	acc = (acc % 2) * 3 + (acc & 0xffff) / 7;
	trigger();
	acc = acc | 0x200000;
	out = acc ^ state;
	halt();
}
