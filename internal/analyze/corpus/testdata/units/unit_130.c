// difftest corpus unit 130 (GenMiniC seed 131); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 2;
unsigned int seed = 0x1fafbce0;

unsigned int classify(unsigned int v) {
	if (v % 5 == 0) { return M0; }
	if (v % 5 == 1) { return M1; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	for (unsigned int i0 = 0; i0 < 7; i0 = i0 + 1) {
		acc = acc * 4 + i0;
		state = state ^ (acc >> 3);
	}
	acc = (acc % 6) * 10 + (acc & 0xffff) / 3;
	if (classify(acc) == M1) { acc = acc + 119; }
	else { acc = acc ^ 0xc424; }
	acc = (acc % 3) * 6 + (acc & 0xffff) / 7;
	out = acc ^ state;
	halt();
}
