// difftest corpus unit 172 (GenMiniC seed 173); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 7;
unsigned int seed = 0xbcf79021;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M4; }
	if (v % 3 == 1) { return M2; }
	return M3;
}
void main(void) {
	unsigned int acc = seed;
	trigger();
	acc = acc | 0x10000000;
	if (classify(acc) == M3) { acc = acc + 108; }
	else { acc = acc ^ 0x88ec; }
	trigger();
	acc = acc | 0x800;
	state = state + (acc & 0xde);
	if (state == 0) { state = 1; }
	out = acc ^ state;
	halt();
}
