// difftest corpus unit 014 (GenMiniC seed 15); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 3;
unsigned int seed = 0x193cc010;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M5; }
	if (v % 2 == 1) { return M5; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	acc = (acc % 9) * 8 + (acc & 0xffff) / 3;
	for (unsigned int i1 = 0; i1 < 5; i1 = i1 + 1) {
		acc = acc * 10 + i1;
		state = state ^ (acc >> 3);
	}
	for (unsigned int i2 = 0; i2 < 4; i2 = i2 + 1) {
		acc = acc * 13 + i2;
		state = state ^ (acc >> 3);
	}
	{ unsigned int n3 = 5;
	while (n3 != 0) { acc = acc + n3 * 1; n3 = n3 - 1; } }
	out = acc ^ state;
	halt();
}
