// difftest corpus unit 190 (GenMiniC seed 191); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 3;
unsigned int seed = 0xbb9c2f14;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M3; }
	if (v % 3 == 1) { return M0; }
	return M3;
}
void main(void) {
	unsigned int acc = seed;
	for (unsigned int i0 = 0; i0 < 7; i0 = i0 + 1) {
		acc = acc * 3 + i0;
		state = state ^ (acc >> 15);
	}
	if (classify(acc) == M0) { acc = acc + 34; }
	else { acc = acc ^ 0xc5d1; }
	if (classify(acc) == M0) { acc = acc + 27; }
	else { acc = acc ^ 0xd7f3; }
	for (unsigned int i3 = 0; i3 < 2; i3 = i3 + 1) {
		acc = acc * 13 + i3;
		state = state ^ (acc >> 7);
	}
	{ unsigned int n4 = 3;
	while (n4 != 0) { acc = acc + n4 * 3; n4 = n4 - 1; } }
	{ unsigned int n5 = 1;
	while (n5 != 0) { acc = acc + n5 * 6; n5 = n5 - 1; } }
	out = acc ^ state;
	halt();
}
