// difftest corpus unit 118 (GenMiniC seed 119); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 2;
unsigned int seed = 0xf52d6e5d;

unsigned int classify(unsigned int v) {
	if (v % 5 == 0) { return M1; }
	if (v % 6 == 1) { return M3; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	state = state + (acc & 0x6a);
	if (state == 0) { state = 1; }
	acc = (acc % 6) * 9 + (acc & 0xffff) / 5;
	for (unsigned int i2 = 0; i2 < 2; i2 = i2 + 1) {
		acc = acc * 14 + i2;
		state = state ^ (acc >> 4);
	}
	{ unsigned int n3 = 4;
	while (n3 != 0) { acc = acc + n3 * 7; n3 = n3 - 1; } }
	out = acc ^ state;
	halt();
}
