// difftest corpus unit 095 (GenMiniC seed 96); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 3;
unsigned int seed = 0x8671440a;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M3; }
	if (v % 6 == 1) { return M1; }
	return M3;
}
void main(void) {
	unsigned int acc = seed;
	{ unsigned int n0 = 9;
	while (n0 != 0) { acc = acc + n0 * 2; n0 = n0 - 1; } }
	acc = (acc % 4) * 7 + (acc & 0xffff) / 2;
	for (unsigned int i2 = 0; i2 < 6; i2 = i2 + 1) {
		acc = acc * 11 + i2;
		state = state ^ (acc >> 11);
	}
	out = acc ^ state;
	halt();
}
