// difftest corpus unit 161 (GenMiniC seed 162); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 7;
unsigned int seed = 0x39e59fda;

unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return M1; }
	if (v % 2 == 1) { return M2; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	state = state + (acc & 0x9);
	if (state == 0) { state = 1; }
	state = state + (acc & 0x20);
	if (state == 0) { state = 1; }
	state = state + (acc & 0xeb);
	if (state == 0) { state = 1; }
	trigger();
	acc = acc | 0x100;
	acc = (acc % 7) * 10 + (acc & 0xffff) / 5;
	out = acc ^ state;
	halt();
}
