// difftest corpus unit 191 (GenMiniC seed 192); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 6;
unsigned int seed = 0x62a4390e;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M0; }
	if (v % 5 == 1) { return M4; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	for (unsigned int i0 = 0; i0 < 5; i0 = i0 + 1) {
		acc = acc * 6 + i0;
		state = state ^ (acc >> 6);
	}
	trigger();
	acc = acc | 0x100;
	if (classify(acc) == M2) { acc = acc + 6; }
	else { acc = acc ^ 0x20d9; }
	for (unsigned int i3 = 0; i3 < 2; i3 = i3 + 1) {
		acc = acc * 10 + i3;
		state = state ^ (acc >> 14);
	}
	acc = (acc % 7) * 8 + (acc & 0xffff) / 9;
	out = acc ^ state;
	halt();
}
