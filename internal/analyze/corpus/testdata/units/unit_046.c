// difftest corpus unit 046 (GenMiniC seed 47); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 2;
unsigned int seed = 0xcd006a66;

unsigned int classify(unsigned int v) {
	if (v % 4 == 0) { return M1; }
	if (v % 6 == 1) { return M1; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M0) { acc = acc + 134; }
	else { acc = acc ^ 0x8539; }
	for (unsigned int i1 = 0; i1 < 4; i1 = i1 + 1) {
		acc = acc * 7 + i1;
		state = state ^ (acc >> 1);
	}
	acc = (acc % 10) * 8 + (acc & 0xffff) / 8;
	out = acc ^ state;
	halt();
}
