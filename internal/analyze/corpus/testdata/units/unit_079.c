// difftest corpus unit 079 (GenMiniC seed 80); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 1;
unsigned int seed = 0xcb44b59b;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M1; }
	if (v % 2 == 1) { return M0; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	{ unsigned int n0 = 2;
	while (n0 != 0) { acc = acc + n0 * 1; n0 = n0 - 1; } }
	acc = (acc % 4) * 7 + (acc & 0xffff) / 3;
	trigger();
	acc = acc | 0x4;
	trigger();
	acc = acc | 0x400;
	out = acc ^ state;
	halt();
}
