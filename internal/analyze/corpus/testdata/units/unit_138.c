// difftest corpus unit 138 (GenMiniC seed 139); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 1;
unsigned int seed = 0xcb1d0194;

unsigned int classify(unsigned int v) {
	if (v % 5 == 0) { return M0; }
	if (v % 2 == 1) { return M2; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	acc = (acc % 3) * 3 + (acc & 0xffff) / 4;
	{ unsigned int n1 = 9;
	while (n1 != 0) { acc = acc + n1 * 4; n1 = n1 - 1; } }
	acc = (acc % 8) * 7 + (acc & 0xffff) / 4;
	trigger();
	acc = acc | 0x4000000;
	{ unsigned int n4 = 7;
	while (n4 != 0) { acc = acc + n4 * 5; n4 = n4 - 1; } }
	out = acc ^ state;
	halt();
}
