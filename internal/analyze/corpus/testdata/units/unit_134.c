// difftest corpus unit 134 (GenMiniC seed 135); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 7;
unsigned int seed = 0xa886a205;

unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return M1; }
	if (v % 3 == 1) { return M2; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	for (unsigned int i0 = 0; i0 < 5; i0 = i0 + 1) {
		acc = acc * 6 + i0;
		state = state ^ (acc >> 9);
	}
	state = state + (acc & 0xe0);
	if (state == 0) { state = 1; }
	trigger();
	acc = acc | 0x100;
	state = state + (acc & 0x1);
	if (state == 0) { state = 1; }
	{ unsigned int n4 = 1;
	while (n4 != 0) { acc = acc + n4 * 6; n4 = n4 - 1; } }
	out = acc ^ state;
	halt();
}
