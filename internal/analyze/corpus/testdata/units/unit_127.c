// difftest corpus unit 127 (GenMiniC seed 128); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 5;
unsigned int seed = 0x30249971;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M3; }
	if (v % 3 == 1) { return M4; }
	return M5;
}
void main(void) {
	unsigned int acc = seed;
	for (unsigned int i0 = 0; i0 < 4; i0 = i0 + 1) {
		acc = acc * 14 + i0;
		state = state ^ (acc >> 0);
	}
	if (classify(acc) == M3) { acc = acc + 85; }
	else { acc = acc ^ 0x8258; }
	trigger();
	acc = acc | 0x4000;
	trigger();
	acc = acc | 0x8000000;
	out = acc ^ state;
	halt();
}
