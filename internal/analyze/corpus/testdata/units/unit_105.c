// difftest corpus unit 105 (GenMiniC seed 106); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 1;
unsigned int seed = 0xa562dd66;

unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return M0; }
	if (v % 3 == 1) { return M0; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	state = state + (acc & 0xa3);
	if (state == 0) { state = 1; }
	state = state + (acc & 0xf1);
	if (state == 0) { state = 1; }
	acc = (acc % 4) * 4 + (acc & 0xffff) / 4;
	out = acc ^ state;
	halt();
}
