// difftest corpus unit 030 (GenMiniC seed 31); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 2;
unsigned int seed = 0x10d67cc8;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M1; }
	if (v % 6 == 1) { return M1; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	for (unsigned int i0 = 0; i0 < 7; i0 = i0 + 1) {
		acc = acc * 12 + i0;
		state = state ^ (acc >> 9);
	}
	state = state + (acc & 0x95);
	if (state == 0) { state = 1; }
	for (unsigned int i2 = 0; i2 < 8; i2 = i2 + 1) {
		acc = acc * 11 + i2;
		state = state ^ (acc >> 8);
	}
	out = acc ^ state;
	halt();
}
