// difftest corpus unit 182 (GenMiniC seed 183); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 5;
unsigned int seed = 0xdff59e3b;

unsigned int classify(unsigned int v) {
	if (v % 4 == 0) { return M2; }
	if (v % 4 == 1) { return M2; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M0) { acc = acc + 110; }
	else { acc = acc ^ 0xdab5; }
	{ unsigned int n1 = 8;
	while (n1 != 0) { acc = acc + n1 * 6; n1 = n1 - 1; } }
	if (classify(acc) == M1) { acc = acc + 106; }
	else { acc = acc ^ 0x58ea; }
	if (classify(acc) == M0) { acc = acc + 95; }
	else { acc = acc ^ 0x884a; }
	state = state + (acc & 0x68);
	if (state == 0) { state = 1; }
	out = acc ^ state;
	halt();
}
