// difftest corpus unit 074 (GenMiniC seed 75); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 4;
unsigned int seed = 0xd89d3639;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M3; }
	if (v % 3 == 1) { return M3; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	{ unsigned int n0 = 5;
	while (n0 != 0) { acc = acc + n0 * 6; n0 = n0 - 1; } }
	{ unsigned int n1 = 4;
	while (n1 != 0) { acc = acc + n1 * 6; n1 = n1 - 1; } }
	state = state + (acc & 0xe3);
	if (state == 0) { state = 1; }
	out = acc ^ state;
	halt();
}
