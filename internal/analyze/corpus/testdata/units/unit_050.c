// difftest corpus unit 050 (GenMiniC seed 51); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 5;
unsigned int seed = 0x5597af80;

unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return M0; }
	if (v % 6 == 1) { return M4; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	state = state + (acc & 0xe2);
	if (state == 0) { state = 1; }
	acc = (acc % 6) * 4 + (acc & 0xffff) / 1;
	state = state + (acc & 0xee);
	if (state == 0) { state = 1; }
	state = state + (acc & 0x44);
	if (state == 0) { state = 1; }
	out = acc ^ state;
	halt();
}
