// difftest corpus unit 096 (GenMiniC seed 97); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 1;
unsigned int seed = 0x6a779053;

unsigned int classify(unsigned int v) {
	if (v % 5 == 0) { return M0; }
	if (v % 3 == 1) { return M2; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M0) { acc = acc + 98; }
	else { acc = acc ^ 0x93a; }
	{ unsigned int n1 = 8;
	while (n1 != 0) { acc = acc + n1 * 7; n1 = n1 - 1; } }
	if (classify(acc) == M1) { acc = acc + 146; }
	else { acc = acc ^ 0xa8dc; }
	for (unsigned int i3 = 0; i3 < 4; i3 = i3 + 1) {
		acc = acc * 5 + i3;
		state = state ^ (acc >> 1);
	}
	out = acc ^ state;
	halt();
}
