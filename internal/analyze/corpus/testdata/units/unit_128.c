// difftest corpus unit 128 (GenMiniC seed 129); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 3;
unsigned int seed = 0x151d5b79;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M1; }
	if (v % 5 == 1) { return M2; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	acc = (acc % 3) * 5 + (acc & 0xffff) / 2;
	trigger();
	acc = acc | 0x80000;
	{ unsigned int n2 = 1;
	while (n2 != 0) { acc = acc + n2 * 3; n2 = n2 - 1; } }
	acc = (acc % 8) * 11 + (acc & 0xffff) / 1;
	out = acc ^ state;
	halt();
}
