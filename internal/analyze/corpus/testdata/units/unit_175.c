// difftest corpus unit 175 (GenMiniC seed 176); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 4;
unsigned int seed = 0xaa83997e;

unsigned int classify(unsigned int v) {
	if (v % 4 == 0) { return M0; }
	if (v % 6 == 1) { return M3; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	trigger();
	acc = acc | 0x800;
	if (classify(acc) == M4) { acc = acc + 25; }
	else { acc = acc ^ 0xfd88; }
	for (unsigned int i2 = 0; i2 < 2; i2 = i2 + 1) {
		acc = acc * 3 + i2;
		state = state ^ (acc >> 2);
	}
	trigger();
	acc = acc | 0x8;
	out = acc ^ state;
	halt();
}
