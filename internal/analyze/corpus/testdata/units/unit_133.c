// difftest corpus unit 133 (GenMiniC seed 134); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 4;
unsigned int seed = 0x4d0843a;

unsigned int classify(unsigned int v) {
	if (v % 5 == 0) { return M2; }
	if (v % 4 == 1) { return M2; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M2) { acc = acc + 136; }
	else { acc = acc ^ 0xdad8; }
	for (unsigned int i1 = 0; i1 < 4; i1 = i1 + 1) {
		acc = acc * 10 + i1;
		state = state ^ (acc >> 1);
	}
	{ unsigned int n2 = 7;
	while (n2 != 0) { acc = acc + n2 * 7; n2 = n2 - 1; } }
	out = acc ^ state;
	halt();
}
