// difftest corpus unit 131 (GenMiniC seed 132); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 2;
unsigned int seed = 0xc33ba909;

unsigned int classify(unsigned int v) {
	if (v % 5 == 0) { return M1; }
	if (v % 4 == 1) { return M2; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M4) { acc = acc + 22; }
	else { acc = acc ^ 0xe2f3; }
	trigger();
	acc = acc | 0x4;
	acc = (acc % 2) * 9 + (acc & 0xffff) / 7;
	out = acc ^ state;
	halt();
}
