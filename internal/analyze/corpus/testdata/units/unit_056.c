// difftest corpus unit 056 (GenMiniC seed 57); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 4;
unsigned int seed = 0xeac3d742;

unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return M0; }
	if (v % 2 == 1) { return M1; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M0) { acc = acc + 22; }
	else { acc = acc ^ 0xacae; }
	{ unsigned int n1 = 5;
	while (n1 != 0) { acc = acc + n1 * 4; n1 = n1 - 1; } }
	state = state + (acc & 0x44);
	if (state == 0) { state = 1; }
	if (classify(acc) == M1) { acc = acc + 175; }
	else { acc = acc ^ 0x4972; }
	out = acc ^ state;
	halt();
}
