// difftest corpus unit 124 (GenMiniC seed 125); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 6;
unsigned int seed = 0x8a022668;

unsigned int classify(unsigned int v) {
	if (v % 5 == 0) { return M1; }
	if (v % 5 == 1) { return M2; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M1) { acc = acc + 89; }
	else { acc = acc ^ 0xc901; }
	if (classify(acc) == M1) { acc = acc + 22; }
	else { acc = acc ^ 0xa43c; }
	{ unsigned int n2 = 4;
	while (n2 != 0) { acc = acc + n2 * 2; n2 = n2 - 1; } }
	out = acc ^ state;
	halt();
}
