// difftest corpus unit 126 (GenMiniC seed 127); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 2;
unsigned int seed = 0xd11b1f46;

unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return M0; }
	if (v % 6 == 1) { return M3; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	trigger();
	acc = acc | 0x100;
	trigger();
	acc = acc | 0x4;
	for (unsigned int i2 = 0; i2 < 7; i2 = i2 + 1) {
		acc = acc * 6 + i2;
		state = state ^ (acc >> 12);
	}
	out = acc ^ state;
	halt();
}
