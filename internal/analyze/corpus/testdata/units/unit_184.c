// difftest corpus unit 184 (GenMiniC seed 185); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 2;
unsigned int seed = 0x257f1032;

unsigned int classify(unsigned int v) {
	if (v % 4 == 0) { return M2; }
	if (v % 6 == 1) { return M1; }
	return M3;
}
void main(void) {
	unsigned int acc = seed;
	trigger();
	acc = acc | 0x1000000;
	{ unsigned int n1 = 2;
	while (n1 != 0) { acc = acc + n1 * 7; n1 = n1 - 1; } }
	for (unsigned int i2 = 0; i2 < 5; i2 = i2 + 1) {
		acc = acc * 11 + i2;
		state = state ^ (acc >> 1);
	}
	for (unsigned int i3 = 0; i3 < 5; i3 = i3 + 1) {
		acc = acc * 7 + i3;
		state = state ^ (acc >> 6);
	}
	trigger();
	acc = acc | 0x2000;
	out = acc ^ state;
	halt();
}
