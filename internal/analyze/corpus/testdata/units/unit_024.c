// difftest corpus unit 024 (GenMiniC seed 25); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 4;
unsigned int seed = 0x3beb684b;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M1; }
	if (v % 5 == 1) { return M2; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M2) { acc = acc + 25; }
	else { acc = acc ^ 0xc6fc; }
	if (classify(acc) == M0) { acc = acc + 38; }
	else { acc = acc ^ 0x4c3c; }
	state = state + (acc & 0xfc);
	if (state == 0) { state = 1; }
	trigger();
	acc = acc | 0x80000000;
	state = state + (acc & 0xe3);
	if (state == 0) { state = 1; }
	trigger();
	acc = acc | 0x1000000;
	out = acc ^ state;
	halt();
}
