// difftest corpus unit 005 (GenMiniC seed 6); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 7;
unsigned int seed = 0x9e56d950;

unsigned int classify(unsigned int v) {
	if (v % 4 == 0) { return M0; }
	if (v % 4 == 1) { return M2; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	state = state + (acc & 0xca);
	if (state == 0) { state = 1; }
	if (classify(acc) == M2) { acc = acc + 76; }
	else { acc = acc ^ 0x84f7; }
	trigger();
	acc = acc | 0x1000000;
	state = state + (acc & 0x92);
	if (state == 0) { state = 1; }
	if (classify(acc) == M2) { acc = acc + 46; }
	else { acc = acc ^ 0x59dd; }
	state = state + (acc & 0x94);
	if (state == 0) { state = 1; }
	out = acc ^ state;
	halt();
}
