// difftest corpus unit 187 (GenMiniC seed 188); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 7;
unsigned int seed = 0x13959f7d;

unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return M0; }
	if (v % 4 == 1) { return M0; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	acc = (acc % 3) * 4 + (acc & 0xffff) / 7;
	for (unsigned int i1 = 0; i1 < 3; i1 = i1 + 1) {
		acc = acc * 13 + i1;
		state = state ^ (acc >> 2);
	}
	if (classify(acc) == M0) { acc = acc + 7; }
	else { acc = acc ^ 0xe53b; }
	if (classify(acc) == M1) { acc = acc + 101; }
	else { acc = acc ^ 0xf37; }
	state = state + (acc & 0x59);
	if (state == 0) { state = 1; }
	out = acc ^ state;
	halt();
}
