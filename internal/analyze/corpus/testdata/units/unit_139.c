// difftest corpus unit 139 (GenMiniC seed 140); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 6;
unsigned int seed = 0xaf395bbe;

unsigned int classify(unsigned int v) {
	if (v % 4 == 0) { return M2; }
	if (v % 2 == 1) { return M0; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	acc = (acc % 6) * 4 + (acc & 0xffff) / 8;
	{ unsigned int n1 = 1;
	while (n1 != 0) { acc = acc + n1 * 1; n1 = n1 - 1; } }
	trigger();
	acc = acc | 0x20000;
	{ unsigned int n3 = 5;
	while (n3 != 0) { acc = acc + n3 * 4; n3 = n3 - 1; } }
	out = acc ^ state;
	halt();
}
