// difftest corpus unit 135 (GenMiniC seed 136); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 1;
unsigned int seed = 0xc10881a;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M4; }
	if (v % 5 == 1) { return M1; }
	return M4;
}
void main(void) {
	unsigned int acc = seed;
	{ unsigned int n0 = 7;
	while (n0 != 0) { acc = acc + n0 * 7; n0 = n0 - 1; } }
	for (unsigned int i1 = 0; i1 < 8; i1 = i1 + 1) {
		acc = acc * 3 + i1;
		state = state ^ (acc >> 15);
	}
	state = state + (acc & 0x96);
	if (state == 0) { state = 1; }
	out = acc ^ state;
	halt();
}
