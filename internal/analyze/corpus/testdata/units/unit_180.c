// difftest corpus unit 180 (GenMiniC seed 181); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 4;
unsigned int seed = 0x9ce4d0d7;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M0; }
	if (v % 2 == 1) { return M3; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M3) { acc = acc + 23; }
	else { acc = acc ^ 0xb4a7; }
	state = state + (acc & 0x8d);
	if (state == 0) { state = 1; }
	{ unsigned int n2 = 8;
	while (n2 != 0) { acc = acc + n2 * 3; n2 = n2 - 1; } }
	acc = (acc % 8) * 4 + (acc & 0xffff) / 5;
	acc = (acc % 3) * 7 + (acc & 0xffff) / 2;
	out = acc ^ state;
	halt();
}
