// difftest corpus unit 188 (GenMiniC seed 189); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 1;
unsigned int seed = 0x74910da2;

unsigned int classify(unsigned int v) {
	if (v % 5 == 0) { return M1; }
	if (v % 6 == 1) { return M3; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	state = state + (acc & 0xbd);
	if (state == 0) { state = 1; }
	acc = (acc % 8) * 10 + (acc & 0xffff) / 6;
	trigger();
	acc = acc | 0x4000000;
	for (unsigned int i3 = 0; i3 < 5; i3 = i3 + 1) {
		acc = acc * 15 + i3;
		state = state ^ (acc >> 15);
	}
	acc = (acc % 7) * 4 + (acc & 0xffff) / 7;
	if (classify(acc) == M0) { acc = acc + 20; }
	else { acc = acc ^ 0x5779; }
	out = acc ^ state;
	halt();
}
