// difftest corpus unit 157 (GenMiniC seed 158); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 5;
unsigned int seed = 0xacd5b885;

unsigned int classify(unsigned int v) {
	if (v % 4 == 0) { return M4; }
	if (v % 4 == 1) { return M1; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M1) { acc = acc + 76; }
	else { acc = acc ^ 0x522d; }
	acc = (acc % 10) * 7 + (acc & 0xffff) / 3;
	{ unsigned int n2 = 3;
	while (n2 != 0) { acc = acc + n2 * 2; n2 = n2 - 1; } }
	if (classify(acc) == M0) { acc = acc + 66; }
	else { acc = acc ^ 0x588b; }
	for (unsigned int i4 = 0; i4 < 3; i4 = i4 + 1) {
		acc = acc * 9 + i4;
		state = state ^ (acc >> 5);
	}
	out = acc ^ state;
	halt();
}
