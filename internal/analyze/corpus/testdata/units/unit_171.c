// difftest corpus unit 171 (GenMiniC seed 172); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 5;
unsigned int seed = 0x59f171d6;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M1; }
	if (v % 3 == 1) { return M0; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	trigger();
	acc = acc | 0x100000;
	state = state + (acc & 0x91);
	if (state == 0) { state = 1; }
	trigger();
	acc = acc | 0x10000000;
	acc = (acc % 7) * 9 + (acc & 0xffff) / 1;
	if (classify(acc) == M2) { acc = acc + 78; }
	else { acc = acc ^ 0x36e; }
	out = acc ^ state;
	halt();
}
