// difftest corpus unit 065 (GenMiniC seed 66); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 5;
unsigned int seed = 0x6db76d55;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M1; }
	if (v % 4 == 1) { return M1; }
	return M3;
}
void main(void) {
	unsigned int acc = seed;
	trigger();
	acc = acc | 0x100000;
	if (classify(acc) == M3) { acc = acc + 163; }
	else { acc = acc ^ 0x8300; }
	state = state + (acc & 0xfe);
	if (state == 0) { state = 1; }
	out = acc ^ state;
	halt();
}
