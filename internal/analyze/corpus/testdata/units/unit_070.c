// difftest corpus unit 070 (GenMiniC seed 71); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 6;
unsigned int seed = 0x9051d697;

unsigned int classify(unsigned int v) {
	if (v % 4 == 0) { return M4; }
	if (v % 6 == 1) { return M2; }
	return M4;
}
void main(void) {
	unsigned int acc = seed;
	acc = (acc % 10) * 7 + (acc & 0xffff) / 8;
	state = state + (acc & 0x6);
	if (state == 0) { state = 1; }
	if (classify(acc) == M1) { acc = acc + 94; }
	else { acc = acc ^ 0xb443; }
	acc = (acc % 10) * 11 + (acc & 0xffff) / 2;
	if (classify(acc) == M5) { acc = acc + 140; }
	else { acc = acc ^ 0x8c71; }
	state = state + (acc & 0x81);
	if (state == 0) { state = 1; }
	out = acc ^ state;
	halt();
}
