// difftest corpus unit 045 (GenMiniC seed 46); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 2;
unsigned int seed = 0x29eb7e1d;

unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return M5; }
	if (v % 6 == 1) { return M4; }
	return M5;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M1) { acc = acc + 25; }
	else { acc = acc ^ 0x62d0; }
	for (unsigned int i1 = 0; i1 < 4; i1 = i1 + 1) {
		acc = acc * 8 + i1;
		state = state ^ (acc >> 10);
	}
	trigger();
	acc = acc | 0x80;
	acc = (acc % 4) * 11 + (acc & 0xffff) / 6;
	for (unsigned int i4 = 0; i4 < 4; i4 = i4 + 1) {
		acc = acc * 9 + i4;
		state = state ^ (acc >> 12);
	}
	for (unsigned int i5 = 0; i5 < 8; i5 = i5 + 1) {
		acc = acc * 9 + i5;
		state = state ^ (acc >> 8);
	}
	out = acc ^ state;
	halt();
}
