// difftest corpus unit 113 (GenMiniC seed 114); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 7;
unsigned int seed = 0xc5058c23;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M3; }
	if (v % 4 == 1) { return M0; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	trigger();
	acc = acc | 0x20;
	acc = (acc % 7) * 8 + (acc & 0xffff) / 1;
	if (classify(acc) == M2) { acc = acc + 185; }
	else { acc = acc ^ 0xae70; }
	trigger();
	acc = acc | 0x100;
	out = acc ^ state;
	halt();
}
