// difftest corpus unit 031 (GenMiniC seed 32); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 7;
unsigned int seed = 0x73da46cb;

unsigned int classify(unsigned int v) {
	if (v % 5 == 0) { return M1; }
	if (v % 2 == 1) { return M1; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	acc = (acc % 4) * 4 + (acc & 0xffff) / 3;
	if (classify(acc) == M2) { acc = acc + 131; }
	else { acc = acc ^ 0x6984; }
	{ unsigned int n2 = 7;
	while (n2 != 0) { acc = acc + n2 * 5; n2 = n2 - 1; } }
	state = state + (acc & 0x76);
	if (state == 0) { state = 1; }
	out = acc ^ state;
	halt();
}
