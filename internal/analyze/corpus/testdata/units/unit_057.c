// difftest corpus unit 057 (GenMiniC seed 58); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 6;
unsigned int seed = 0x52462e6f;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M2; }
	if (v % 6 == 1) { return M2; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	trigger();
	acc = acc | 0x20000;
	if (classify(acc) == M4) { acc = acc + 62; }
	else { acc = acc ^ 0xa521; }
	state = state + (acc & 0x47);
	if (state == 0) { state = 1; }
	out = acc ^ state;
	halt();
}
