// difftest corpus unit 023 (GenMiniC seed 24); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 5;
unsigned int seed = 0x9c776222;

unsigned int classify(unsigned int v) {
	if (v % 4 == 0) { return M0; }
	if (v % 4 == 1) { return M1; }
	return M3;
}
void main(void) {
	unsigned int acc = seed;
	for (unsigned int i0 = 0; i0 < 3; i0 = i0 + 1) {
		acc = acc * 14 + i0;
		state = state ^ (acc >> 0);
	}
	for (unsigned int i1 = 0; i1 < 8; i1 = i1 + 1) {
		acc = acc * 5 + i1;
		state = state ^ (acc >> 7);
	}
	acc = (acc % 6) * 11 + (acc & 0xffff) / 3;
	out = acc ^ state;
	halt();
}
