// difftest corpus unit 145 (GenMiniC seed 146); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 6;
unsigned int seed = 0x43ce1a3b;

unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return M4; }
	if (v % 2 == 1) { return M3; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	for (unsigned int i0 = 0; i0 < 6; i0 = i0 + 1) {
		acc = acc * 12 + i0;
		state = state ^ (acc >> 10);
	}
	{ unsigned int n1 = 2;
	while (n1 != 0) { acc = acc + n1 * 4; n1 = n1 - 1; } }
	{ unsigned int n2 = 4;
	while (n2 != 0) { acc = acc + n2 * 5; n2 = n2 - 1; } }
	if (classify(acc) == M2) { acc = acc + 24; }
	else { acc = acc ^ 0x1a1a; }
	out = acc ^ state;
	halt();
}
