// difftest corpus unit 091 (GenMiniC seed 92); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 2;
unsigned int seed = 0x33c93ef9;

unsigned int classify(unsigned int v) {
	if (v % 5 == 0) { return M4; }
	if (v % 5 == 1) { return M3; }
	return M3;
}
void main(void) {
	unsigned int acc = seed;
	{ unsigned int n0 = 9;
	while (n0 != 0) { acc = acc + n0 * 6; n0 = n0 - 1; } }
	for (unsigned int i1 = 0; i1 < 3; i1 = i1 + 1) {
		acc = acc * 8 + i1;
		state = state ^ (acc >> 8);
	}
	{ unsigned int n2 = 7;
	while (n2 != 0) { acc = acc + n2 * 3; n2 = n2 - 1; } }
	out = acc ^ state;
	halt();
}
