// difftest corpus unit 155 (GenMiniC seed 156); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 7;
unsigned int seed = 0x6651d565;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M1; }
	if (v % 3 == 1) { return M3; }
	return M5;
}
void main(void) {
	unsigned int acc = seed;
	trigger();
	acc = acc | 0x40000000;
	acc = (acc % 9) * 10 + (acc & 0xffff) / 8;
	acc = (acc % 7) * 11 + (acc & 0xffff) / 8;
	{ unsigned int n3 = 6;
	while (n3 != 0) { acc = acc + n3 * 1; n3 = n3 - 1; } }
	out = acc ^ state;
	halt();
}
