// difftest corpus unit 042 (GenMiniC seed 43); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 7;
unsigned int seed = 0x7ba36ed1;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M2; }
	if (v % 3 == 1) { return M2; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	trigger();
	acc = acc | 0x2;
	{ unsigned int n1 = 6;
	while (n1 != 0) { acc = acc + n1 * 1; n1 = n1 - 1; } }
	if (classify(acc) == M1) { acc = acc + 101; }
	else { acc = acc ^ 0x1609; }
	out = acc ^ state;
	halt();
}
