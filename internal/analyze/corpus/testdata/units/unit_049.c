// difftest corpus unit 049 (GenMiniC seed 50); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 6;
unsigned int seed = 0x729675c6;

unsigned int classify(unsigned int v) {
	if (v % 4 == 0) { return M3; }
	if (v % 3 == 1) { return M2; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	state = state + (acc & 0x7b);
	if (state == 0) { state = 1; }
	trigger();
	acc = acc | 0x20000000;
	trigger();
	acc = acc | 0x20000000;
	out = acc ^ state;
	halt();
}
