// difftest corpus unit 008 (GenMiniC seed 9); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 4;
unsigned int seed = 0x85c7564d;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M2; }
	if (v % 2 == 1) { return M3; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	{ unsigned int n0 = 6;
	while (n0 != 0) { acc = acc + n0 * 3; n0 = n0 - 1; } }
	trigger();
	acc = acc | 0x1;
	if (classify(acc) == M2) { acc = acc + 16; }
	else { acc = acc ^ 0x80be; }
	out = acc ^ state;
	halt();
}
