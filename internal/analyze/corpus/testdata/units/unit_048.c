// difftest corpus unit 048 (GenMiniC seed 49); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 2;
unsigned int seed = 0xf17f49d;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M1; }
	if (v % 6 == 1) { return M4; }
	return M4;
}
void main(void) {
	unsigned int acc = seed;
	trigger();
	acc = acc | 0x200000;
	for (unsigned int i1 = 0; i1 < 3; i1 = i1 + 1) {
		acc = acc * 13 + i1;
		state = state ^ (acc >> 5);
	}
	state = state + (acc & 0xd1);
	if (state == 0) { state = 1; }
	out = acc ^ state;
	halt();
}
