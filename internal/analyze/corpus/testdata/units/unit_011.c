// difftest corpus unit 011 (GenMiniC seed 12); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 4;
unsigned int seed = 0x33ed9195;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M2; }
	if (v % 6 == 1) { return M3; }
	return M3;
}
void main(void) {
	unsigned int acc = seed;
	{ unsigned int n0 = 4;
	while (n0 != 0) { acc = acc + n0 * 6; n0 = n0 - 1; } }
	trigger();
	acc = acc | 0x10000000;
	acc = (acc % 10) * 9 + (acc & 0xffff) / 2;
	state = state + (acc & 0x8c);
	if (state == 0) { state = 1; }
	if (classify(acc) == M1) { acc = acc + 161; }
	else { acc = acc ^ 0xc33d; }
	if (classify(acc) == M2) { acc = acc + 158; }
	else { acc = acc ^ 0x33a1; }
	out = acc ^ state;
	halt();
}
