// difftest corpus unit 075 (GenMiniC seed 76); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 7;
unsigned int seed = 0x7c9c5bf0;

unsigned int classify(unsigned int v) {
	if (v % 4 == 0) { return M4; }
	if (v % 3 == 1) { return M4; }
	return M3;
}
void main(void) {
	unsigned int acc = seed;
	for (unsigned int i0 = 0; i0 < 6; i0 = i0 + 1) {
		acc = acc * 15 + i0;
		state = state ^ (acc >> 3);
	}
	acc = (acc % 4) * 4 + (acc & 0xffff) / 5;
	acc = (acc % 5) * 11 + (acc & 0xffff) / 2;
	trigger();
	acc = acc | 0x20000;
	out = acc ^ state;
	halt();
}
