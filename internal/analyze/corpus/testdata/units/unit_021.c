// difftest corpus unit 021 (GenMiniC seed 22); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 2;
unsigned int seed = 0x55f9caf0;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M2; }
	if (v % 2 == 1) { return M3; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	acc = (acc % 7) * 11 + (acc & 0xffff) / 4;
	trigger();
	acc = acc | 0x1;
	for (unsigned int i2 = 0; i2 < 5; i2 = i2 + 1) {
		acc = acc * 12 + i2;
		state = state ^ (acc >> 15);
	}
	out = acc ^ state;
	halt();
}
