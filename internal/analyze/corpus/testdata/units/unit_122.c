// difftest corpus unit 122 (GenMiniC seed 123); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 4;
unsigned int seed = 0x3ffe0036;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M5; }
	if (v % 6 == 1) { return M5; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	trigger();
	acc = acc | 0x800;
	{ unsigned int n1 = 4;
	while (n1 != 0) { acc = acc + n1 * 4; n1 = n1 - 1; } }
	{ unsigned int n2 = 8;
	while (n2 != 0) { acc = acc + n2 * 5; n2 = n2 - 1; } }
	trigger();
	acc = acc | 0x100000;
	out = acc ^ state;
	halt();
}
