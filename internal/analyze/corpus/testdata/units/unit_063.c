// difftest corpus unit 063 (GenMiniC seed 64); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 1;
unsigned int seed = 0x27933232;

unsigned int classify(unsigned int v) {
	if (v % 5 == 0) { return M4; }
	if (v % 6 == 1) { return M0; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	acc = (acc % 7) * 7 + (acc & 0xffff) / 8;
	for (unsigned int i1 = 0; i1 < 3; i1 = i1 + 1) {
		acc = acc * 8 + i1;
		state = state ^ (acc >> 0);
	}
	for (unsigned int i2 = 0; i2 < 8; i2 = i2 + 1) {
		acc = acc * 12 + i2;
		state = state ^ (acc >> 4);
	}
	out = acc ^ state;
	halt();
}
