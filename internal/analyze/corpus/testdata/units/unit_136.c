// difftest corpus unit 136 (GenMiniC seed 137); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 3;
unsigned int seed = 0xef8c0e22;

unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return M1; }
	if (v % 3 == 1) { return M2; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	trigger();
	acc = acc | 0x800000;
	if (classify(acc) == M1) { acc = acc + 124; }
	else { acc = acc ^ 0x2eca; }
	trigger();
	acc = acc | 0x800000;
	acc = (acc % 9) * 10 + (acc & 0xffff) / 6;
	out = acc ^ state;
	halt();
}
