// difftest corpus unit 114 (GenMiniC seed 115); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 5;
unsigned int seed = 0x681f5f4d;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M3; }
	if (v % 4 == 1) { return M1; }
	return M3;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M4) { acc = acc + 123; }
	else { acc = acc ^ 0x6760; }
	state = state + (acc & 0x7);
	if (state == 0) { state = 1; }
	{ unsigned int n2 = 9;
	while (n2 != 0) { acc = acc + n2 * 1; n2 = n2 - 1; } }
	if (classify(acc) == M4) { acc = acc + 76; }
	else { acc = acc ^ 0xa9b2; }
	out = acc ^ state;
	halt();
}
