// difftest corpus unit 198 (GenMiniC seed 199); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 6;
unsigned int seed = 0x9b0fa7bd;

unsigned int classify(unsigned int v) {
	if (v % 5 == 0) { return M2; }
	if (v % 2 == 1) { return M4; }
	return M3;
}
void main(void) {
	unsigned int acc = seed;
	acc = (acc % 9) * 5 + (acc & 0xffff) / 1;
	if (classify(acc) == M1) { acc = acc + 37; }
	else { acc = acc ^ 0x68c9; }
	acc = (acc % 6) * 10 + (acc & 0xffff) / 1;
	for (unsigned int i3 = 0; i3 < 3; i3 = i3 + 1) {
		acc = acc * 5 + i3;
		state = state ^ (acc >> 13);
	}
	out = acc ^ state;
	halt();
}
