// difftest corpus unit 163 (GenMiniC seed 164); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 4;
unsigned int seed = 0x41ff994f;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M2; }
	if (v % 6 == 1) { return M2; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	trigger();
	acc = acc | 0x20000;
	trigger();
	acc = acc | 0x40000;
	for (unsigned int i2 = 0; i2 < 7; i2 = i2 + 1) {
		acc = acc * 6 + i2;
		state = state ^ (acc >> 8);
	}
	if (classify(acc) == M0) { acc = acc + 24; }
	else { acc = acc ^ 0x1f1b; }
	state = state + (acc & 0xe6);
	if (state == 0) { state = 1; }
	out = acc ^ state;
	halt();
}
