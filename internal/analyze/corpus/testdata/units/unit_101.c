// difftest corpus unit 101 (GenMiniC seed 102); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 2;
unsigned int seed = 0x5a0e1fd4;

unsigned int classify(unsigned int v) {
	if (v % 5 == 0) { return M3; }
	if (v % 6 == 1) { return M1; }
	return M4;
}
void main(void) {
	unsigned int acc = seed;
	trigger();
	acc = acc | 0x200000;
	if (classify(acc) == M2) { acc = acc + 123; }
	else { acc = acc ^ 0x34a0; }
	if (classify(acc) == M2) { acc = acc + 134; }
	else { acc = acc ^ 0x6bdd; }
	state = state + (acc & 0x60);
	if (state == 0) { state = 1; }
	out = acc ^ state;
	halt();
}
