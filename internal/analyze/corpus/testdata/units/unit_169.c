// difftest corpus unit 169 (GenMiniC seed 170); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 1;
unsigned int seed = 0x15e80ab3;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M3; }
	if (v % 3 == 1) { return M1; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	trigger();
	acc = acc | 0x100;
	{ unsigned int n1 = 2;
	while (n1 != 0) { acc = acc + n1 * 7; n1 = n1 - 1; } }
	state = state + (acc & 0x7);
	if (state == 0) { state = 1; }
	acc = (acc % 10) * 7 + (acc & 0xffff) / 7;
	acc = (acc % 2) * 9 + (acc & 0xffff) / 1;
	out = acc ^ state;
	halt();
}
