// difftest corpus unit 051 (GenMiniC seed 52); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 3;
unsigned int seed = 0xbe9995a9;

unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return M1; }
	if (v % 2 == 1) { return M0; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	{ unsigned int n0 = 9;
	while (n0 != 0) { acc = acc + n0 * 3; n0 = n0 - 1; } }
	trigger();
	acc = acc | 0x2000;
	{ unsigned int n2 = 2;
	while (n2 != 0) { acc = acc + n2 * 3; n2 = n2 - 1; } }
	out = acc ^ state;
	halt();
}
