// difftest corpus unit 162 (GenMiniC seed 163); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 7;
unsigned int seed = 0x9e845a06;

unsigned int classify(unsigned int v) {
	if (v % 5 == 0) { return M2; }
	if (v % 3 == 1) { return M0; }
	return M4;
}
void main(void) {
	unsigned int acc = seed;
	acc = (acc % 2) * 4 + (acc & 0xffff) / 6;
	trigger();
	acc = acc | 0x10000;
	if (classify(acc) == M0) { acc = acc + 99; }
	else { acc = acc ^ 0x3a5a; }
	for (unsigned int i3 = 0; i3 < 8; i3 = i3 + 1) {
		acc = acc * 9 + i3;
		state = state ^ (acc >> 15);
	}
	out = acc ^ state;
	halt();
}
