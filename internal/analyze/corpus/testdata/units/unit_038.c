// difftest corpus unit 038 (GenMiniC seed 39); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 2;
unsigned int seed = 0xec7d5781;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M1; }
	if (v % 4 == 1) { return M1; }
	return M3;
}
void main(void) {
	unsigned int acc = seed;
	acc = (acc % 4) * 4 + (acc & 0xffff) / 5;
	for (unsigned int i1 = 0; i1 < 2; i1 = i1 + 1) {
		acc = acc * 9 + i1;
		state = state ^ (acc >> 13);
	}
	trigger();
	acc = acc | 0x1000000;
	{ unsigned int n3 = 6;
	while (n3 != 0) { acc = acc + n3 * 1; n3 = n3 - 1; } }
	trigger();
	acc = acc | 0x10;
	state = state + (acc & 0x36);
	if (state == 0) { state = 1; }
	out = acc ^ state;
	halt();
}
