// difftest corpus unit 119 (GenMiniC seed 120); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 5;
unsigned int seed = 0x586ea867;

unsigned int classify(unsigned int v) {
	if (v % 5 == 0) { return M1; }
	if (v % 6 == 1) { return M2; }
	return M4;
}
void main(void) {
	unsigned int acc = seed;
	state = state + (acc & 0xb2);
	if (state == 0) { state = 1; }
	for (unsigned int i1 = 0; i1 < 5; i1 = i1 + 1) {
		acc = acc * 8 + i1;
		state = state ^ (acc >> 6);
	}
	for (unsigned int i2 = 0; i2 < 7; i2 = i2 + 1) {
		acc = acc * 7 + i2;
		state = state ^ (acc >> 10);
	}
	acc = (acc % 4) * 8 + (acc & 0xffff) / 4;
	state = state + (acc & 0xea);
	if (state == 0) { state = 1; }
	out = acc ^ state;
	halt();
}
