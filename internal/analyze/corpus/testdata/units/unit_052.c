// difftest corpus unit 052 (GenMiniC seed 53); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 3;
unsigned int seed = 0x619773ae;

unsigned int classify(unsigned int v) {
	if (v % 5 == 0) { return M2; }
	if (v % 3 == 1) { return M3; }
	return M3;
}
void main(void) {
	unsigned int acc = seed;
	state = state + (acc & 0xe4);
	if (state == 0) { state = 1; }
	{ unsigned int n1 = 7;
	while (n1 != 0) { acc = acc + n1 * 1; n1 = n1 - 1; } }
	acc = (acc % 7) * 5 + (acc & 0xffff) / 6;
	state = state + (acc & 0xf0);
	if (state == 0) { state = 1; }
	out = acc ^ state;
	halt();
}
