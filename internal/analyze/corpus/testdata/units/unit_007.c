// difftest corpus unit 007 (GenMiniC seed 8); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 2;
unsigned int seed = 0xe0dd8083;

unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return M1; }
	if (v % 3 == 1) { return M1; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	for (unsigned int i0 = 0; i0 < 8; i0 = i0 + 1) {
		acc = acc * 9 + i0;
		state = state ^ (acc >> 12);
	}
	for (unsigned int i1 = 0; i1 < 2; i1 = i1 + 1) {
		acc = acc * 12 + i1;
		state = state ^ (acc >> 8);
	}
	for (unsigned int i2 = 0; i2 < 4; i2 = i2 + 1) {
		acc = acc * 4 + i2;
		state = state ^ (acc >> 5);
	}
	for (unsigned int i3 = 0; i3 < 7; i3 = i3 + 1) {
		acc = acc * 13 + i3;
		state = state ^ (acc >> 11);
	}
	acc = (acc % 5) * 6 + (acc & 0xffff) / 9;
	{ unsigned int n5 = 5;
	while (n5 != 0) { acc = acc + n5 * 2; n5 = n5 - 1; } }
	out = acc ^ state;
	halt();
}
