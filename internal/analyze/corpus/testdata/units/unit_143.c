// difftest corpus unit 143 (GenMiniC seed 144); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 6;
unsigned int seed = 0xfbbb3b17;

unsigned int classify(unsigned int v) {
	if (v % 5 == 0) { return M1; }
	if (v % 2 == 1) { return M2; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	for (unsigned int i0 = 0; i0 < 7; i0 = i0 + 1) {
		acc = acc * 6 + i0;
		state = state ^ (acc >> 4);
	}
	if (classify(acc) == M0) { acc = acc + 76; }
	else { acc = acc ^ 0x7936; }
	acc = (acc % 7) * 7 + (acc & 0xffff) / 7;
	trigger();
	acc = acc | 0x1000;
	out = acc ^ state;
	halt();
}
