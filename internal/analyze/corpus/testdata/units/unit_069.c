// difftest corpus unit 069 (GenMiniC seed 70); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 4;
unsigned int seed = 0xa8bd507f;

unsigned int classify(unsigned int v) {
	if (v % 4 == 0) { return M2; }
	if (v % 2 == 1) { return M3; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	state = state + (acc & 0x18);
	if (state == 0) { state = 1; }
	acc = (acc % 2) * 3 + (acc & 0xffff) / 8;
	state = state + (acc & 0xa9);
	if (state == 0) { state = 1; }
	out = acc ^ state;
	halt();
}
