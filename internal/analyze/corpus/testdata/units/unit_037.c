// difftest corpus unit 037 (GenMiniC seed 38); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 3;
unsigned int seed = 0x49fd9057;

unsigned int classify(unsigned int v) {
	if (v % 4 == 0) { return M2; }
	if (v % 5 == 1) { return M2; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	state = state + (acc & 0xa7);
	if (state == 0) { state = 1; }
	trigger();
	acc = acc | 0x8000;
	if (classify(acc) == M1) { acc = acc + 167; }
	else { acc = acc ^ 0xd04e; }
	out = acc ^ state;
	halt();
}
