// difftest corpus unit 154 (GenMiniC seed 155); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 7;
unsigned int seed = 0xbec87b1c;

unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return M0; }
	if (v % 5 == 1) { return M0; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M1) { acc = acc + 15; }
	else { acc = acc ^ 0x54e; }
	acc = (acc % 8) * 6 + (acc & 0xffff) / 5;
	trigger();
	acc = acc | 0x4000000;
	for (unsigned int i3 = 0; i3 < 7; i3 = i3 + 1) {
		acc = acc * 8 + i3;
		state = state ^ (acc >> 4);
	}
	out = acc ^ state;
	halt();
}
