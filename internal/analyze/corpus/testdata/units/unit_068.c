// difftest corpus unit 068 (GenMiniC seed 69); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 5;
unsigned int seed = 0x453ff075;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M1; }
	if (v % 6 == 1) { return M0; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	for (unsigned int i0 = 0; i0 < 2; i0 = i0 + 1) {
		acc = acc * 3 + i0;
		state = state ^ (acc >> 5);
	}
	state = state + (acc & 0x61);
	if (state == 0) { state = 1; }
	{ unsigned int n2 = 1;
	while (n2 != 0) { acc = acc + n2 * 4; n2 = n2 - 1; } }
	if (classify(acc) == M0) { acc = acc + 197; }
	else { acc = acc ^ 0xce6; }
	state = state + (acc & 0x47);
	if (state == 0) { state = 1; }
	{ unsigned int n5 = 2;
	while (n5 != 0) { acc = acc + n5 * 5; n5 = n5 - 1; } }
	out = acc ^ state;
	halt();
}
