// difftest corpus unit 179 (GenMiniC seed 180); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 3;
unsigned int seed = 0x38471a8f;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M4; }
	if (v % 2 == 1) { return M4; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	state = state + (acc & 0xcf);
	if (state == 0) { state = 1; }
	{ unsigned int n1 = 2;
	while (n1 != 0) { acc = acc + n1 * 6; n1 = n1 - 1; } }
	state = state + (acc & 0xfc);
	if (state == 0) { state = 1; }
	if (classify(acc) == M5) { acc = acc + 119; }
	else { acc = acc ^ 0x44ff; }
	out = acc ^ state;
	halt();
}
