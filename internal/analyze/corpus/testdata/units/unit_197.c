// difftest corpus unit 197 (GenMiniC seed 198); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 1;
unsigned int seed = 0x37899c98;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M1; }
	if (v % 4 == 1) { return M1; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M1) { acc = acc + 36; }
	else { acc = acc ^ 0x2a13; }
	for (unsigned int i1 = 0; i1 < 8; i1 = i1 + 1) {
		acc = acc * 3 + i1;
		state = state ^ (acc >> 13);
	}
	acc = (acc % 2) * 5 + (acc & 0xffff) / 2;
	state = state + (acc & 0x71);
	if (state == 0) { state = 1; }
	acc = (acc % 2) * 11 + (acc & 0xffff) / 2;
	out = acc ^ state;
	halt();
}
