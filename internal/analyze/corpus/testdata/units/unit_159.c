// difftest corpus unit 159 (GenMiniC seed 160); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 3;
unsigned int seed = 0xeed95477;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M3; }
	if (v % 5 == 1) { return M1; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	state = state + (acc & 0xd1);
	if (state == 0) { state = 1; }
	acc = (acc % 7) * 9 + (acc & 0xffff) / 3;
	acc = (acc % 10) * 3 + (acc & 0xffff) / 1;
	for (unsigned int i3 = 0; i3 < 3; i3 = i3 + 1) {
		acc = acc * 12 + i3;
		state = state ^ (acc >> 9);
	}
	state = state + (acc & 0x2c);
	if (state == 0) { state = 1; }
	out = acc ^ state;
	halt();
}
