// difftest corpus unit 150 (GenMiniC seed 151); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 4;
unsigned int seed = 0x34258a03;

unsigned int classify(unsigned int v) {
	if (v % 5 == 0) { return M3; }
	if (v % 5 == 1) { return M4; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	{ unsigned int n0 = 3;
	while (n0 != 0) { acc = acc + n0 * 1; n0 = n0 - 1; } }
	for (unsigned int i1 = 0; i1 < 8; i1 = i1 + 1) {
		acc = acc * 11 + i1;
		state = state ^ (acc >> 5);
	}
	trigger();
	acc = acc | 0x10000;
	trigger();
	acc = acc | 0x10;
	{ unsigned int n4 = 1;
	while (n4 != 0) { acc = acc + n4 * 7; n4 = n4 - 1; } }
	out = acc ^ state;
	halt();
}
