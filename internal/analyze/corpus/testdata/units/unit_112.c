// difftest corpus unit 112 (GenMiniC seed 113); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 3;
unsigned int seed = 0x217b8dd9;

unsigned int classify(unsigned int v) {
	if (v % 4 == 0) { return M0; }
	if (v % 4 == 1) { return M2; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	state = state + (acc & 0x7b);
	if (state == 0) { state = 1; }
	state = state + (acc & 0x64);
	if (state == 0) { state = 1; }
	acc = (acc % 10) * 6 + (acc & 0xffff) / 2;
	out = acc ^ state;
	halt();
}
