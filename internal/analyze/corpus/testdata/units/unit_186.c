// difftest corpus unit 186 (GenMiniC seed 187); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 6;
unsigned int seed = 0x30967954;

unsigned int classify(unsigned int v) {
	if (v % 4 == 0) { return M0; }
	if (v % 3 == 1) { return M1; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	state = state + (acc & 0x87);
	if (state == 0) { state = 1; }
	state = state + (acc & 0x9f);
	if (state == 0) { state = 1; }
	{ unsigned int n2 = 9;
	while (n2 != 0) { acc = acc + n2 * 4; n2 = n2 - 1; } }
	trigger();
	acc = acc | 0x40;
	if (classify(acc) == M1) { acc = acc + 66; }
	else { acc = acc ^ 0xa998; }
	out = acc ^ state;
	halt();
}
