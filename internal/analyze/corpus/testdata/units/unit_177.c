// difftest corpus unit 177 (GenMiniC seed 178); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 7;
unsigned int seed = 0xed95135c;

unsigned int classify(unsigned int v) {
	if (v % 4 == 0) { return M0; }
	if (v % 5 == 1) { return M2; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	state = state + (acc & 0x99);
	if (state == 0) { state = 1; }
	if (classify(acc) == M2) { acc = acc + 134; }
	else { acc = acc ^ 0x9732; }
	state = state + (acc & 0xaf);
	if (state == 0) { state = 1; }
	if (classify(acc) == M1) { acc = acc + 178; }
	else { acc = acc ^ 0xc4c4; }
	out = acc ^ state;
	halt();
}
