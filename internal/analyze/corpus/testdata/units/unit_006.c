// difftest corpus unit 006 (GenMiniC seed 7); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 7;
unsigned int seed = 0x3dcb935a;

unsigned int classify(unsigned int v) {
	if (v % 5 == 0) { return M3; }
	if (v % 4 == 1) { return M2; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	for (unsigned int i0 = 0; i0 < 6; i0 = i0 + 1) {
		acc = acc * 4 + i0;
		state = state ^ (acc >> 10);
	}
	{ unsigned int n1 = 8;
	while (n1 != 0) { acc = acc + n1 * 3; n1 = n1 - 1; } }
	acc = (acc % 5) * 8 + (acc & 0xffff) / 9;
	out = acc ^ state;
	halt();
}
