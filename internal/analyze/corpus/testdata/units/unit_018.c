// difftest corpus unit 018 (GenMiniC seed 19); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 2;
unsigned int seed = 0xa8583728;

unsigned int classify(unsigned int v) {
	if (v % 5 == 0) { return M2; }
	if (v % 2 == 1) { return M0; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	acc = (acc % 7) * 5 + (acc & 0xffff) / 9;
	trigger();
	acc = acc | 0x80000;
	{ unsigned int n2 = 9;
	while (n2 != 0) { acc = acc + n2 * 4; n2 = n2 - 1; } }
	out = acc ^ state;
	halt();
}
