// difftest corpus unit 010 (GenMiniC seed 11); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 1;
unsigned int seed = 0xd0e3786a;

unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return M1; }
	if (v % 6 == 1) { return M1; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	for (unsigned int i0 = 0; i0 < 2; i0 = i0 + 1) {
		acc = acc * 4 + i0;
		state = state ^ (acc >> 11);
	}
	if (classify(acc) == M1) { acc = acc + 110; }
	else { acc = acc ^ 0x656c; }
	for (unsigned int i2 = 0; i2 < 2; i2 = i2 + 1) {
		acc = acc * 6 + i2;
		state = state ^ (acc >> 11);
	}
	out = acc ^ state;
	halt();
}
