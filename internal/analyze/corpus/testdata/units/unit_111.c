// difftest corpus unit 111 (GenMiniC seed 112); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 1;
unsigned int seed = 0x7a057bb2;

unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return M1; }
	if (v % 6 == 1) { return M0; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	state = state + (acc & 0x33);
	if (state == 0) { state = 1; }
	acc = (acc % 4) * 8 + (acc & 0xffff) / 2;
	trigger();
	acc = acc | 0x2000;
	acc = (acc % 3) * 6 + (acc & 0xffff) / 1;
	out = acc ^ state;
	halt();
}
