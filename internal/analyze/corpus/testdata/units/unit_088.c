// difftest corpus unit 088 (GenMiniC seed 89); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 7;
unsigned int seed = 0x8e7b73ad;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M3; }
	if (v % 2 == 1) { return M1; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	trigger();
	acc = acc | 0x800000;
	for (unsigned int i1 = 0; i1 < 8; i1 = i1 + 1) {
		acc = acc * 6 + i1;
		state = state ^ (acc >> 12);
	}
	if (classify(acc) == M2) { acc = acc + 3; }
	else { acc = acc ^ 0xcab3; }
	state = state + (acc & 0x2c);
	if (state == 0) { state = 1; }
	out = acc ^ state;
	halt();
}
