// difftest corpus unit 158 (GenMiniC seed 159); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 1;
unsigned int seed = 0xbe31aae;

unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return M4; }
	if (v % 5 == 1) { return M5; }
	return M4;
}
void main(void) {
	unsigned int acc = seed;
	for (unsigned int i0 = 0; i0 < 4; i0 = i0 + 1) {
		acc = acc * 8 + i0;
		state = state ^ (acc >> 11);
	}
	{ unsigned int n1 = 5;
	while (n1 != 0) { acc = acc + n1 * 2; n1 = n1 - 1; } }
	state = state + (acc & 0x27);
	if (state == 0) { state = 1; }
	for (unsigned int i3 = 0; i3 < 4; i3 = i3 + 1) {
		acc = acc * 15 + i3;
		state = state ^ (acc >> 0);
	}
	out = acc ^ state;
	halt();
}
