// difftest corpus unit 066 (GenMiniC seed 67); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 6;
unsigned int seed = 0xd479b7f;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M0; }
	if (v % 2 == 1) { return M0; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	acc = (acc % 4) * 7 + (acc & 0xffff) / 2;
	{ unsigned int n1 = 6;
	while (n1 != 0) { acc = acc + n1 * 6; n1 = n1 - 1; } }
	acc = (acc % 5) * 6 + (acc & 0xffff) / 6;
	for (unsigned int i3 = 0; i3 < 8; i3 = i3 + 1) {
		acc = acc * 14 + i3;
		state = state ^ (acc >> 11);
	}
	state = state + (acc & 0x75);
	if (state == 0) { state = 1; }
	for (unsigned int i5 = 0; i5 < 2; i5 = i5 + 1) {
		acc = acc * 4 + i5;
		state = state ^ (acc >> 13);
	}
	out = acc ^ state;
	halt();
}
