// difftest corpus unit 146 (GenMiniC seed 147); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 4;
unsigned int seed = 0xe2e7a25e;

unsigned int classify(unsigned int v) {
	if (v % 4 == 0) { return M0; }
	if (v % 2 == 1) { return M0; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	for (unsigned int i0 = 0; i0 < 6; i0 = i0 + 1) {
		acc = acc * 10 + i0;
		state = state ^ (acc >> 8);
	}
	state = state + (acc & 0x97);
	if (state == 0) { state = 1; }
	acc = (acc % 10) * 7 + (acc & 0xffff) / 7;
	{ unsigned int n3 = 1;
	while (n3 != 0) { acc = acc + n3 * 6; n3 = n3 - 1; } }
	trigger();
	acc = acc | 0x1000000;
	out = acc ^ state;
	halt();
}
