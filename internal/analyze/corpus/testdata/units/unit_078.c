// difftest corpus unit 078 (GenMiniC seed 79); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 3;
unsigned int seed = 0x6bbca751;

unsigned int classify(unsigned int v) {
	if (v % 5 == 0) { return M0; }
	if (v % 3 == 1) { return M4; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	acc = (acc % 7) * 5 + (acc & 0xffff) / 2;
	acc = (acc % 10) * 9 + (acc & 0xffff) / 1;
	state = state + (acc & 0x33);
	if (state == 0) { state = 1; }
	out = acc ^ state;
	halt();
}
