// difftest corpus unit 022 (GenMiniC seed 23); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 2;
unsigned int seed = 0x38d75e1a;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M3; }
	if (v % 2 == 1) { return M5; }
	return M3;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M2) { acc = acc + 63; }
	else { acc = acc ^ 0xf457; }
	if (classify(acc) == M0) { acc = acc + 87; }
	else { acc = acc ^ 0x589d; }
	trigger();
	acc = acc | 0x200000;
	state = state + (acc & 0x12);
	if (state == 0) { state = 1; }
	trigger();
	acc = acc | 0x2;
	state = state + (acc & 0x4e);
	if (state == 0) { state = 1; }
	out = acc ^ state;
	halt();
}
