// difftest corpus unit 123 (GenMiniC seed 124); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 3;
unsigned int seed = 0xe39da83f;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M3; }
	if (v % 5 == 1) { return M3; }
	return M3;
}
void main(void) {
	unsigned int acc = seed;
	state = state + (acc & 0xa6);
	if (state == 0) { state = 1; }
	if (classify(acc) == M2) { acc = acc + 190; }
	else { acc = acc ^ 0x6b20; }
	acc = (acc % 6) * 4 + (acc & 0xffff) / 3;
	acc = (acc % 10) * 11 + (acc & 0xffff) / 4;
	out = acc ^ state;
	halt();
}
