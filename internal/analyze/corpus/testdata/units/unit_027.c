// difftest corpus unit 027 (GenMiniC seed 28); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 7;
unsigned int seed = 0x2b92513b;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M2; }
	if (v % 2 == 1) { return M1; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	{ unsigned int n0 = 8;
	while (n0 != 0) { acc = acc + n0 * 7; n0 = n0 - 1; } }
	if (classify(acc) == M2) { acc = acc + 62; }
	else { acc = acc ^ 0x45d9; }
	acc = (acc % 5) * 5 + (acc & 0xffff) / 9;
	out = acc ^ state;
	halt();
}
