// difftest corpus unit 174 (GenMiniC seed 175); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 4;
unsigned int seed = 0x7ff5256;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M0; }
	if (v % 6 == 1) { return M1; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	state = state + (acc & 0xae);
	if (state == 0) { state = 1; }
	{ unsigned int n1 = 2;
	while (n1 != 0) { acc = acc + n1 * 1; n1 = n1 - 1; } }
	state = state + (acc & 0x4);
	if (state == 0) { state = 1; }
	state = state + (acc & 0x78);
	if (state == 0) { state = 1; }
	{ unsigned int n4 = 2;
	while (n4 != 0) { acc = acc + n4 * 2; n4 = n4 - 1; } }
	out = acc ^ state;
	halt();
}
