// difftest corpus unit 017 (GenMiniC seed 18); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 2;
unsigned int seed = 0x8d0111f;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M3; }
	if (v % 4 == 1) { return M2; }
	return M3;
}
void main(void) {
	unsigned int acc = seed;
	{ unsigned int n0 = 8;
	while (n0 != 0) { acc = acc + n0 * 3; n0 = n0 - 1; } }
	for (unsigned int i1 = 0; i1 < 5; i1 = i1 + 1) {
		acc = acc * 6 + i1;
		state = state ^ (acc >> 2);
	}
	acc = (acc % 4) * 9 + (acc & 0xffff) / 5;
	for (unsigned int i3 = 0; i3 < 7; i3 = i3 + 1) {
		acc = acc * 5 + i3;
		state = state ^ (acc >> 5);
	}
	if (classify(acc) == M5) { acc = acc + 198; }
	else { acc = acc ^ 0xcb75; }
	state = state + (acc & 0x3c);
	if (state == 0) { state = 1; }
	out = acc ^ state;
	halt();
}
