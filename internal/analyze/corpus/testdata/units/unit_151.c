// difftest corpus unit 151 (GenMiniC seed 152); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 3;
unsigned int seed = 0x173a8bc1;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M0; }
	if (v % 2 == 1) { return M0; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	state = state + (acc & 0xab);
	if (state == 0) { state = 1; }
	state = state + (acc & 0xe4);
	if (state == 0) { state = 1; }
	{ unsigned int n2 = 3;
	while (n2 != 0) { acc = acc + n2 * 6; n2 = n2 - 1; } }
	if (classify(acc) == M1) { acc = acc + 184; }
	else { acc = acc ^ 0xf7ed; }
	out = acc ^ state;
	halt();
}
