// difftest corpus unit 025 (GenMiniC seed 26); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 4;
unsigned int seed = 0xe07eb206;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M3; }
	if (v % 5 == 1) { return M1; }
	return M3;
}
void main(void) {
	unsigned int acc = seed;
	trigger();
	acc = acc | 0x8;
	acc = (acc % 3) * 11 + (acc & 0xffff) / 6;
	for (unsigned int i2 = 0; i2 < 7; i2 = i2 + 1) {
		acc = acc * 12 + i2;
		state = state ^ (acc >> 3);
	}
	out = acc ^ state;
	halt();
}
