// difftest corpus unit 060 (GenMiniC seed 61); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 6;
unsigned int seed = 0x7993cd9a;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M0; }
	if (v % 5 == 1) { return M3; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	trigger();
	acc = acc | 0x20;
	state = state + (acc & 0x5f);
	if (state == 0) { state = 1; }
	for (unsigned int i2 = 0; i2 < 2; i2 = i2 + 1) {
		acc = acc * 10 + i2;
		state = state ^ (acc >> 1);
	}
	if (classify(acc) == M3) { acc = acc + 174; }
	else { acc = acc ^ 0x74dd; }
	out = acc ^ state;
	halt();
}
