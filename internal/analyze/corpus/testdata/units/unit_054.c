// difftest corpus unit 054 (GenMiniC seed 55); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 6;
unsigned int seed = 0xa4af571f;

unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return M0; }
	if (v % 3 == 1) { return M1; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	state = state + (acc & 0x9b);
	if (state == 0) { state = 1; }
	{ unsigned int n1 = 1;
	while (n1 != 0) { acc = acc + n1 * 3; n1 = n1 - 1; } }
	for (unsigned int i2 = 0; i2 < 6; i2 = i2 + 1) {
		acc = acc * 14 + i2;
		state = state ^ (acc >> 13);
	}
	{ unsigned int n3 = 2;
	while (n3 != 0) { acc = acc + n3 * 2; n3 = n3 - 1; } }
	out = acc ^ state;
	halt();
}
