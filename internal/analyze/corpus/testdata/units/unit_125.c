// difftest corpus unit 125 (GenMiniC seed 126); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 1;
unsigned int seed = 0xed1bb17d;

unsigned int classify(unsigned int v) {
	if (v % 4 == 0) { return M2; }
	if (v % 2 == 1) { return M0; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	state = state + (acc & 0x40);
	if (state == 0) { state = 1; }
	acc = (acc % 9) * 8 + (acc & 0xffff) / 1;
	state = state + (acc & 0x6b);
	if (state == 0) { state = 1; }
	trigger();
	acc = acc | 0x80;
	state = state + (acc & 0x44);
	if (state == 0) { state = 1; }
	out = acc ^ state;
	halt();
}
