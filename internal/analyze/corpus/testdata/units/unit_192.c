// difftest corpus unit 192 (GenMiniC seed 193); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 1;
unsigned int seed = 0x52fdb37;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M2; }
	if (v % 4 == 1) { return M2; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	{ unsigned int n0 = 5;
	while (n0 != 0) { acc = acc + n0 * 3; n0 = n0 - 1; } }
	acc = (acc % 9) * 7 + (acc & 0xffff) / 7;
	state = state + (acc & 0xf2);
	if (state == 0) { state = 1; }
	trigger();
	acc = acc | 0x40;
	if (classify(acc) == M2) { acc = acc + 131; }
	else { acc = acc ^ 0x5f92; }
	out = acc ^ state;
	halt();
}
