// difftest corpus unit 199 (GenMiniC seed 200); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 7;
unsigned int seed = 0x7ea60dc7;

unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return M4; }
	if (v % 6 == 1) { return M5; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M4) { acc = acc + 166; }
	else { acc = acc ^ 0xcc77; }
	for (unsigned int i1 = 0; i1 < 8; i1 = i1 + 1) {
		acc = acc * 8 + i1;
		state = state ^ (acc >> 12);
	}
	if (classify(acc) == M1) { acc = acc + 109; }
	else { acc = acc ^ 0x6fa; }
	state = state + (acc & 0xd4);
	if (state == 0) { state = 1; }
	for (unsigned int i4 = 0; i4 < 6; i4 = i4 + 1) {
		acc = acc * 6 + i4;
		state = state ^ (acc >> 10);
	}
	out = acc ^ state;
	halt();
}
