// difftest corpus unit 156 (GenMiniC seed 157); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 7;
unsigned int seed = 0x9e5527b;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M2; }
	if (v % 5 == 1) { return M0; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M0) { acc = acc + 104; }
	else { acc = acc ^ 0xf3b2; }
	{ unsigned int n1 = 1;
	while (n1 != 0) { acc = acc + n1 * 6; n1 = n1 - 1; } }
	{ unsigned int n2 = 3;
	while (n2 != 0) { acc = acc + n2 * 6; n2 = n2 - 1; } }
	out = acc ^ state;
	halt();
}
