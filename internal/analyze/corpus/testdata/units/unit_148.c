// difftest corpus unit 148 (GenMiniC seed 149); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 5;
unsigned int seed = 0xe9f009d2;

unsigned int classify(unsigned int v) {
	if (v % 3 == 0) { return M4; }
	if (v % 2 == 1) { return M2; }
	return M5;
}
void main(void) {
	unsigned int acc = seed;
	{ unsigned int n0 = 9;
	while (n0 != 0) { acc = acc + n0 * 1; n0 = n0 - 1; } }
	trigger();
	acc = acc | 0x4;
	trigger();
	acc = acc | 0x8000;
	if (classify(acc) == M0) { acc = acc + 33; }
	else { acc = acc ^ 0xe302; }
	for (unsigned int i4 = 0; i4 < 4; i4 = i4 + 1) {
		acc = acc * 7 + i4;
		state = state ^ (acc >> 1);
	}
	out = acc ^ state;
	halt();
}
