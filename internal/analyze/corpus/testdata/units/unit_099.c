// difftest corpus unit 099 (GenMiniC seed 100); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 2;
unsigned int seed = 0xf7917b1;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M2; }
	if (v % 4 == 1) { return M1; }
	return M3;
}
void main(void) {
	unsigned int acc = seed;
	trigger();
	acc = acc | 0x2000000;
	for (unsigned int i1 = 0; i1 < 7; i1 = i1 + 1) {
		acc = acc * 15 + i1;
		state = state ^ (acc >> 11);
	}
	for (unsigned int i2 = 0; i2 < 7; i2 = i2 + 1) {
		acc = acc * 9 + i2;
		state = state ^ (acc >> 15);
	}
	out = acc ^ state;
	halt();
}
