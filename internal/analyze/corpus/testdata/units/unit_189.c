// difftest corpus unit 189 (GenMiniC seed 190); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 7;
unsigned int seed = 0x579517eb;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M4; }
	if (v % 4 == 1) { return M4; }
	return M5;
}
void main(void) {
	unsigned int acc = seed;
	for (unsigned int i0 = 0; i0 < 5; i0 = i0 + 1) {
		acc = acc * 15 + i0;
		state = state ^ (acc >> 15);
	}
	state = state + (acc & 0xa1);
	if (state == 0) { state = 1; }
	acc = (acc % 10) * 4 + (acc & 0xffff) / 3;
	for (unsigned int i3 = 0; i3 < 5; i3 = i3 + 1) {
		acc = acc * 14 + i3;
		state = state ^ (acc >> 13);
	}
	for (unsigned int i4 = 0; i4 < 8; i4 = i4 + 1) {
		acc = acc * 7 + i4;
		state = state ^ (acc >> 10);
	}
	out = acc ^ state;
	halt();
}
