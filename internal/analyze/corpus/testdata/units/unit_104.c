// difftest corpus unit 104 (GenMiniC seed 105); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 5;
unsigned int seed = 0x41d0a92c;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M0; }
	if (v % 3 == 1) { return M4; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	acc = (acc % 8) * 9 + (acc & 0xffff) / 9;
	acc = (acc % 9) * 3 + (acc & 0xffff) / 6;
	state = state + (acc & 0x7a);
	if (state == 0) { state = 1; }
	acc = (acc % 9) * 9 + (acc & 0xffff) / 7;
	out = acc ^ state;
	halt();
}
