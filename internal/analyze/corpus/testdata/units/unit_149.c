// difftest corpus unit 149 (GenMiniC seed 150); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 7;
unsigned int seed = 0xd11d0fdb;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M2; }
	if (v % 2 == 1) { return M0; }
	return M3;
}
void main(void) {
	unsigned int acc = seed;
	acc = (acc % 5) * 3 + (acc & 0xffff) / 6;
	state = state + (acc & 0x32);
	if (state == 0) { state = 1; }
	{ unsigned int n2 = 7;
	while (n2 != 0) { acc = acc + n2 * 6; n2 = n2 - 1; } }
	for (unsigned int i3 = 0; i3 < 3; i3 = i3 + 1) {
		acc = acc * 6 + i3;
		state = state ^ (acc >> 2);
	}
	out = acc ^ state;
	halt();
}
