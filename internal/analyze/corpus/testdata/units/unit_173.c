// difftest corpus unit 173 (GenMiniC seed 174); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4, M5 };
unsigned int out;
unsigned int state = 5;
unsigned int seed = 0x64757c4c;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M4; }
	if (v % 4 == 1) { return M2; }
	return M2;
}
void main(void) {
	unsigned int acc = seed;
	{ unsigned int n0 = 3;
	while (n0 != 0) { acc = acc + n0 * 5; n0 = n0 - 1; } }
	acc = (acc % 7) * 5 + (acc & 0xffff) / 1;
	for (unsigned int i2 = 0; i2 < 5; i2 = i2 + 1) {
		acc = acc * 13 + i2;
		state = state ^ (acc >> 1);
	}
	{ unsigned int n3 = 7;
	while (n3 != 0) { acc = acc + n3 * 7; n3 = n3 - 1; } }
	for (unsigned int i4 = 0; i4 < 7; i4 = i4 + 1) {
		acc = acc * 10 + i4;
		state = state ^ (acc >> 12);
	}
	out = acc ^ state;
	halt();
}
