// difftest corpus unit 183 (GenMiniC seed 184); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3 };
unsigned int out;
unsigned int state = 5;
unsigned int seed = 0x82f24668;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M3; }
	if (v % 4 == 1) { return M3; }
	return M1;
}
void main(void) {
	unsigned int acc = seed;
	if (classify(acc) == M2) { acc = acc + 196; }
	else { acc = acc ^ 0x91ae; }
	if (classify(acc) == M3) { acc = acc + 53; }
	else { acc = acc ^ 0xca99; }
	trigger();
	acc = acc | 0x4000000;
	acc = (acc % 8) * 9 + (acc & 0xffff) / 6;
	out = acc ^ state;
	halt();
}
