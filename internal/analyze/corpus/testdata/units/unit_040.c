// difftest corpus unit 040 (GenMiniC seed 41); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2 };
unsigned int out;
unsigned int state = 7;
unsigned int seed = 0x3794d3e3;

unsigned int classify(unsigned int v) {
	if (v % 5 == 0) { return M2; }
	if (v % 2 == 1) { return M2; }
	return M0;
}
void main(void) {
	unsigned int acc = seed;
	acc = (acc % 3) * 6 + (acc & 0xffff) / 6;
	if (classify(acc) == M2) { acc = acc + 77; }
	else { acc = acc ^ 0xeed9; }
	acc = (acc % 2) * 10 + (acc & 0xffff) / 9;
	acc = (acc % 7) * 6 + (acc & 0xffff) / 9;
	acc = (acc % 2) * 6 + (acc & 0xffff) / 8;
	acc = (acc % 7) * 9 + (acc & 0xffff) / 9;
	out = acc ^ state;
	halt();
}
