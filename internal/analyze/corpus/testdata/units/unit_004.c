// difftest corpus unit 004 (GenMiniC seed 5); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 1;
unsigned int seed = 0xfab90333;

unsigned int classify(unsigned int v) {
	if (v % 2 == 0) { return M1; }
	if (v % 4 == 1) { return M1; }
	return M4;
}
void main(void) {
	unsigned int acc = seed;
	{ unsigned int n0 = 6;
	while (n0 != 0) { acc = acc + n0 * 2; n0 = n0 - 1; } }
	trigger();
	acc = acc | 0x10000000;
	{ unsigned int n2 = 1;
	while (n2 != 0) { acc = acc + n2 * 4; n2 = n2 - 1; } }
	out = acc ^ state;
	halt();
}
