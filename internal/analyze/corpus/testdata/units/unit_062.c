// difftest corpus unit 062 (GenMiniC seed 63); regenerate with
// glitchlint -corpus <dir> -gen <n> -gen-seed 1 — do not edit.
enum mode { M0, M1, M2, M3, M4 };
unsigned int out;
unsigned int state = 4;
unsigned int seed = 0x809d83e9;

unsigned int classify(unsigned int v) {
	if (v % 6 == 0) { return M4; }
	if (v % 5 == 1) { return M2; }
	return M3;
}
void main(void) {
	unsigned int acc = seed;
	acc = (acc % 9) * 8 + (acc & 0xffff) / 3;
	{ unsigned int n1 = 7;
	while (n1 != 0) { acc = acc + n1 * 5; n1 = n1 - 1; } }
	for (unsigned int i2 = 0; i2 < 3; i2 = i2 + 1) {
		acc = acc * 5 + i2;
		state = state ^ (acc >> 9);
	}
	{ unsigned int n3 = 5;
	while (n3 != 0) { acc = acc + n3 * 3; n3 = n3 - 1; } }
	out = acc ^ state;
	halt();
}
